// Regenerates Table IV: GAUC and NDCG@10 on TAIL queries for the three
// industrial datasets, with each model's improvement ratio over LightGCN.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/string_util.h"

using namespace garcia;

int main() {
  bench::PrintBanner("Table IV",
                     "GAUC / NDCG@10 on tail queries (industrial datasets), "
                     "improvement over LightGCN in parentheses.");

  for (data::DatasetId id : data::IndustrialDatasets()) {
    data::Scenario s = data::GeneratePreset(id, bench::BenchScale());
    std::printf("--- %s ---\n", data::DatasetName(id).c_str());

    // LightGCN is the reference model of this table; run it first.
    std::vector<std::string> order = {"Wide&Deep", "LightGCN", "KGAT",
                                      "SGL",       "SimSGL",   "GARCIA"};
    double ref_gauc = 0.0, ref_ndcg = 0.0;
    core::Table t({"Model", "GAUC", "NDCG@10"});
    // First pass: LightGCN reference.
    auto ref = bench::RunModel("LightGCN", s, bench::PresetTrainConfig(id));
    ref_gauc = ref.tail.gauc;
    ref_ndcg = ref.tail.ndcg_at_10;
    for (const auto& name : order) {
      eval::SlicedMetrics m =
          name == "LightGCN"
              ? ref
              : bench::RunModel(name, s, bench::PresetTrainConfig(id));
      auto cell = [&](double v, double r) {
        if (name == "LightGCN") return core::FormatFixed(v, 4) + " (-)";
        return core::FormatFixed(v, 4) + " " + bench::Delta(v, r);
      };
      t.AddRow({name, cell(m.tail.gauc, ref_gauc),
                cell(m.tail.ndcg_at_10, ref_ndcg)});
    }
    std::fputs(t.ToAscii().c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Paper reference (Table IV): GARCIA has the best tail GAUC and "
      "NDCG@10 on all three windows (e.g. Sep. A GAUC 0.7103 = +7.84%% "
      "over LightGCN, NDCG@10 0.8596 = +2.26%%); Wide&Deep falls far "
      "below the reference.\n");
  return 0;
}
