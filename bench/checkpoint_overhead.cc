// Checkpoint overhead of crash-safe training (DESIGN.md §5h): trains
// GARCIA on the Software preset with checkpoint_every_steps in {0, 10,
// 100} and reports wall-clock, steps/sec, and the overhead relative to
// the uncheckpointed run, plus the write/restore latency and on-disk size
// of one generation. Checkpointing is observation-only — every swept run
// follows the bit-identical trajectory — so the overhead is pure
// snapshot+serialize+fsync cost.
//
// `checkpoint_overhead --json` additionally writes the sweep to
// BENCH_checkpoint.json in the working directory.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/string_util.h"
#include "core/table.h"
#include "data/presets.h"
#include "models/garcia_model.h"
#include "train/checkpoint.h"

using namespace garcia;

namespace {

constexpr const char* kDir = "/tmp/garcia_bench_checkpoint";
constexpr int kLatencyReps = 20;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Completed optimizer steps of one GARCIA Fit under `cfg` on `s`.
uint64_t TotalSteps(const models::TrainConfig& cfg, const data::Scenario& s) {
  const uint64_t pretrain_per =
      std::max<uint64_t>(1, cfg.max_batches_per_epoch / 2);
  uint64_t finetune_per = (s.train.size() + cfg.batch_size - 1) /
                          cfg.batch_size;
  if (cfg.max_batches_per_epoch > 0) {
    finetune_per = std::min<uint64_t>(finetune_per, cfg.max_batches_per_epoch);
  }
  return cfg.pretrain_epochs * pretrain_per +
         cfg.finetune_epochs * finetune_per;
}

struct SweepPoint {
  uint64_t every_steps = 0;
  double wall_s = 0.0;
  double steps_per_sec = 0.0;
  double overhead_pct = 0.0;
  uint64_t generations_written = 0;
};

SweepPoint RunPoint(models::TrainConfig cfg, const data::Scenario& s,
                    uint64_t every) {
  std::filesystem::remove_all(kDir);
  cfg.checkpoint_dir = every > 0 ? kDir : "";
  cfg.checkpoint_every_steps = every;
  const auto t0 = std::chrono::steady_clock::now();
  models::GarciaModel model(cfg);
  model.Fit(s);
  SweepPoint p;
  p.every_steps = every;
  p.wall_s = SecondsSince(t0);
  const uint64_t steps = TotalSteps(cfg, s);
  p.steps_per_sec = steps / p.wall_s;
  p.generations_written = every > 0 ? steps / every : 0;
  return p;
}

struct FileLatency {
  uint64_t bytes = 0;
  double save_ms = 0.0;
  double load_ms = 0.0;
};

/// Save/load latency of the newest generation left by the last sweep run.
FileLatency MeasureFileLatency() {
  FileLatency out;
  const auto steps = train::ListCheckpointSteps(kDir);
  if (steps.empty()) return out;
  const std::string path =
      std::string(kDir) + "/" + train::CheckpointFileName(steps.back());
  auto loaded = train::LoadCheckpoint(path);
  if (!loaded.ok()) return out;
  out.bytes = std::filesystem::file_size(path);

  const std::string probe = std::string(kDir) + "/latency_probe.gck";
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kLatencyReps; ++i) {
    (void)train::SaveCheckpoint(probe, *loaded);
  }
  out.save_ms = SecondsSince(t0) * 1000.0 / kLatencyReps;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kLatencyReps; ++i) {
    (void)train::LoadCheckpoint(probe);
  }
  out.load_ms = SecondsSince(t0) * 1000.0 / kLatencyReps;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool emit_json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  bench::PrintBanner("checkpoint_overhead",
                     "Crash-safe training: steps/sec overhead of atomic "
                     "checkpointing and per-generation write/restore cost");

  const data::Scenario s = data::GeneratePreset(
      data::DatasetId::kSoftware, bench::BenchScale());
  models::TrainConfig cfg = bench::PresetTrainConfig(data::DatasetId::kSoftware);
  std::printf("dataset: Software x%.2f (%zu train examples, %llu steps)\n\n",
              bench::BenchScale(), s.train.size(),
              static_cast<unsigned long long>(TotalSteps(cfg, s)));

  // One untimed run so the baseline point doesn't absorb allocator and
  // page-cache warm-up.
  (void)RunPoint(cfg, s, 0);

  std::vector<SweepPoint> sweep;
  for (uint64_t every : {uint64_t{0}, uint64_t{100}, uint64_t{10}}) {
    sweep.push_back(RunPoint(cfg, s, every));
  }
  // The every=10 run ran last, so its generations are on disk for the
  // file-latency probe.
  const FileLatency file = MeasureFileLatency();

  const double base = sweep.front().steps_per_sec;
  for (SweepPoint& p : sweep) {
    p.overhead_pct = 100.0 * (base / p.steps_per_sec - 1.0);
  }

  core::Table t({"every_steps", "wall (s)", "steps/s", "overhead", "writes"});
  for (const SweepPoint& p : sweep) {
    t.AddRow({p.every_steps == 0 ? "off" : core::StrFormat("%llu",
                  static_cast<unsigned long long>(p.every_steps)),
              core::StrFormat("%.2f", p.wall_s),
              core::StrFormat("%.1f", p.steps_per_sec),
              core::StrFormat("%+.1f%%", p.overhead_pct),
              core::StrFormat("%llu", static_cast<unsigned long long>(
                                          p.generations_written))});
  }
  std::fputs(t.ToAscii().c_str(), stdout);
  std::printf("\ngeneration file: %llu bytes, save %.2f ms, load %.2f ms "
              "(avg of %d)\n",
              static_cast<unsigned long long>(file.bytes), file.save_ms,
              file.load_ms, kLatencyReps);

  if (emit_json) {
    std::string json = "{\n  \"bench\": \"checkpoint_overhead\",\n  \"sweep\": [\n";
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& p = sweep[i];
      json += core::StrFormat(
          "    {\"every_steps\": %llu, \"wall_s\": %.3f, "
          "\"steps_per_sec\": %.2f, \"overhead_pct\": %.2f, \"writes\": "
          "%llu}%s\n",
          static_cast<unsigned long long>(p.every_steps), p.wall_s,
          p.steps_per_sec, p.overhead_pct,
          static_cast<unsigned long long>(p.generations_written),
          i + 1 == sweep.size() ? "" : ",");
    }
    json += core::StrFormat(
        "  ],\n  \"generation_file\": {\"bytes\": %llu, \"save_ms\": %.3f, "
        "\"load_ms\": %.3f}\n}\n",
        static_cast<unsigned long long>(file.bytes), file.save_ms,
        file.load_ms);
    std::ofstream("BENCH_checkpoint.json") << json;
    std::printf("wrote BENCH_checkpoint.json\n");
  }
  std::filesystem::remove_all(kDir);
  return 0;
}
