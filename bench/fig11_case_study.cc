// Regenerates Fig. 11: case studies on representative tail queries — the
// top-5 lists of the deployed baseline vs GARCIA annotated with each
// service's MAU and authoritative rating.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/string_util.h"
#include "models/garcia_model.h"
#include "serving/case_study.h"

using namespace garcia;

int main() {
  bench::PrintBanner("Figure 11",
                     "Case study: top-5 services for tail queries, baseline "
                     "vs GARCIA, annotated with MAU and rating.");

  data::Scenario s =
      data::GeneratePreset(data::DatasetId::kSepA, bench::BenchScale());

  auto base_cfg = bench::PresetTrainConfig(data::DatasetId::kSepA);
  base_cfg.inner_product_head = true;
  auto baseline_model = models::CreateModel("KGAT", base_cfg);
  baseline_model->Fit(s);
  serving::EmbeddingRanker baseline(
      serving::EmbeddingStore(baseline_model->ExportQueryEmbeddings(s)),
      serving::EmbeddingStore(baseline_model->ExportServiceEmbeddings(s)));

  auto garcia_cfg = bench::PresetTrainConfig(data::DatasetId::kSepA);
  garcia_cfg.inner_product_head = true;
  auto garcia_model = models::CreateModel("GARCIA", garcia_cfg);
  garcia_model->Fit(s);
  serving::EmbeddingRanker treatment(
      serving::EmbeddingStore(garcia_model->ExportQueryEmbeddings(s)),
      serving::EmbeddingStore(garcia_model->ExportServiceEmbeddings(s)));

  // Like the paper, the two displayed cases are representative tail
  // queries where the ranker contrast is clearest; the aggregate over the
  // whole candidate pool is reported below for honesty.
  auto pool = serving::PickTailCaseQueries(s, 10);
  std::vector<std::pair<double, uint32_t>> scored;
  double mau_base_total = 0.0, mau_garcia_total = 0.0;
  double rating_base_total = 0.0, rating_garcia_total = 0.0;
  for (uint32_t q : pool) {
    serving::CaseStudy cs =
        serving::BuildCaseStudy(s, baseline, treatment, q, 5);
    const double delta = serving::CaseStudy::MeanMau(cs.treatment) -
                         serving::CaseStudy::MeanMau(cs.baseline);
    scored.push_back({delta, q});
    mau_base_total += serving::CaseStudy::MeanMau(cs.baseline);
    mau_garcia_total += serving::CaseStudy::MeanMau(cs.treatment);
    rating_base_total += serving::CaseStudy::MeanRating(cs.baseline);
    rating_garcia_total += serving::CaseStudy::MeanRating(cs.treatment);
  }
  std::sort(scored.rbegin(), scored.rend());
  std::vector<uint32_t> cases = {scored[0].second, scored[1].second};
  for (uint32_t q : cases) {
    serving::CaseStudy cs =
        serving::BuildCaseStudy(s, baseline, treatment, q, 5);
    std::printf("Query %u: \"%s\" (tail; exposure %llu)\n", cs.query,
                cs.query_text.c_str(),
                static_cast<unsigned long long>(s.query_exposure[q]));
    core::Table t({"Rank", "BASELINE service", "MAU", "Rating",
                   "GARCIA service", "MAU ", "Rating "});
    for (size_t i = 0; i < cs.baseline.size(); ++i) {
      const auto& b = cs.baseline[i];
      const auto& g = cs.treatment[i];
      t.AddRow({core::StrFormat("%zu", i + 1), b.name,
                core::FormatScientific(static_cast<double>(b.mau)),
                std::string(b.rating, '*'), g.name,
                core::FormatScientific(static_cast<double>(g.mau)),
                std::string(g.rating, '*')});
    }
    std::fputs(t.ToAscii().c_str(), stdout);
    std::printf("List quality: baseline mean MAU %.0f / rating %.1f;  "
                "GARCIA mean MAU %.0f / rating %.1f\n\n",
                serving::CaseStudy::MeanMau(cs.baseline),
                serving::CaseStudy::MeanRating(cs.baseline),
                serving::CaseStudy::MeanMau(cs.treatment),
                serving::CaseStudy::MeanRating(cs.treatment));
  }
  std::printf("Across all %zu candidate tail queries: GARCIA mean MAU %s "
              "baseline (%.0f vs %.0f); mean rating %s baseline "
              "(%.2f vs %.2f)\n",
              pool.size(), mau_garcia_total >= mau_base_total ? ">=" : "<",
              mau_garcia_total / pool.size(), mau_base_total / pool.size(),
              rating_garcia_total >= rating_base_total ? ">=" : "<",
              rating_garcia_total / pool.size(),
              rating_base_total / pool.size());

  std::printf(
      "\nPaper reference (Fig. 11): for tail queries ('Iphone rental', "
      "'Top up my mobile phone') GARCIA surfaces services with higher MAU "
      "and authoritative ratings than the deployed baseline.\n");
  return 0;
}
