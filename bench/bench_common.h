// Copyright (c) 2026 GARCIA reproduction authors.
// Shared helpers for the per-table / per-figure benchmark binaries.
//
// Every binary regenerates one artifact of the paper's evaluation section
// and prints it in the paper's layout, with the paper's published values
// quoted alongside where useful. Because the substrate is a ~1000x-smaller
// synthetic scenario (see DESIGN.md §2), absolute numbers differ from the
// paper; the reproduced object is the SHAPE: orderings, relative margins
// and sweep curvature. EXPERIMENTS.md records paper-vs-measured per
// artifact.
//
// Environment knobs:
//   GARCIA_BENCH_SCALE    dataset scale multiplier (default 0.4)
//   GARCIA_BENCH_SEED     training seed (default 7)
//   GARCIA_BENCH_THREADS  kernel execution threads (default 0 = serial);
//                         parallel runs are bit-identical to serial, so this
//                         only changes wall-clock

#ifndef GARCIA_BENCH_BENCH_COMMON_H_
#define GARCIA_BENCH_BENCH_COMMON_H_

#include <string>

#include "core/table.h"
#include "data/presets.h"
#include "eval/metrics.h"
#include "models/common.h"
#include "models/registry.h"

namespace garcia::bench {

/// Dataset scale for this run (see header comment).
double BenchScale();

/// The shared hyper-parameter set (paper Sec. V-B3, scaled).
models::TrainConfig DefaultTrainConfig();

/// DefaultTrainConfig specialized to a dataset preset: the larger presets
/// (the industrial Sep. windows, Video game, Music) train on sampled
/// minibatch blocks (`sample_fanout = 8`, DESIGN.md §5e — bit-verified
/// against full-graph training, so flipping it only trades exact gradients
/// for per-step cost); the smallest preset (Software) keeps full-graph
/// encoding. GARCIA_BENCH_FANOUT overrides for every preset (0 = full
/// graph).
models::TrainConfig PresetTrainConfig(data::DatasetId id);

/// Prints the bench banner: artifact id, description, scale.
void PrintBanner(const std::string& artifact, const std::string& what);

/// Trains `model_name` on `scenario` and evaluates on its test split.
eval::SlicedMetrics RunModel(const std::string& model_name,
                             const data::Scenario& scenario,
                             const models::TrainConfig& config);

/// "93.57%"-style percentage.
std::string Pct(double fraction, int decimals = 2);

/// Signed percentage delta "(+2.50%)".
std::string Delta(double ours, double best_baseline);

}  // namespace garcia::bench

#endif  // GARCIA_BENCH_BENCH_COMMON_H_
