// Regenerates Table I: dataset statistics — head/tail query shares,
// head/tail search-PV shares (industrial only; the paper omits PV for the
// public sets), and train/validation/test sizes.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/string_util.h"
#include "data/stats.h"

using namespace garcia;

int main() {
  bench::PrintBanner(
      "Table I", "Dataset statistics: query/PV shares and split sizes.");

  core::Table t({"Dataset", "Head queries", "Tail queries", "Head PV",
                 "Tail PV", "# Train", "# Validation", "# Test"});
  for (data::DatasetId id : data::AllDatasets()) {
    data::Scenario s = data::GeneratePreset(id, bench::BenchScale());
    data::DatasetStats st = data::ComputeDatasetStats(s);
    const bool industrial =
        id == data::DatasetId::kSepA || id == data::DatasetId::kSepB ||
        id == data::DatasetId::kSepC;
    t.AddRow({data::DatasetName(id), bench::Pct(st.head_query_share),
              bench::Pct(st.tail_query_share),
              industrial ? bench::Pct(st.head_pv_share) : "-",
              industrial ? bench::Pct(st.tail_pv_share) : "-",
              core::FormatScientific(static_cast<double>(st.num_train)),
              core::FormatScientific(static_cast<double>(st.num_validation)),
              core::FormatScientific(static_cast<double>(st.num_test))});
  }
  std::fputs(t.ToAscii().c_str(), stdout);

  std::printf(
      "\nPaper reference (Table I): industrial head queries 1.18%%-1.51%% "
      "with 93.57%%-94.07%% of search PV; public head queries 10.95%% "
      "(Software), 3.62%% (Video game), 3.63%% (Music).\n");
  return 0;
}
