// Regenerates Table III: AUC of all six models on Head / Tail / Overall
// slices across the six datasets, with GARCIA's delta vs the best baseline.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/string_util.h"

using namespace garcia;

int main() {
  bench::PrintBanner("Table III",
                     "AUC comparison with baselines on all six datasets "
                     "(Head / Tail / Overall).");

  for (data::DatasetId id : data::AllDatasets()) {
    data::Scenario s = data::GeneratePreset(id, bench::BenchScale());
    std::printf("--- %s ---\n", data::DatasetName(id).c_str());
    core::Table t({"Model", "Head", "Tail", "Overall"});
    double best_head = 0.0, best_tail = 0.0, best_overall = 0.0;
    eval::SlicedMetrics garcia_metrics;
    for (const auto& name : models::AllModelNames()) {
      auto m = bench::RunModel(name, s, bench::PresetTrainConfig(id));
      if (name == "GARCIA") {
        garcia_metrics = m;
        t.AddRow({name,
                  core::FormatFixed(m.head.auc, 4) + " " +
                      bench::Delta(m.head.auc, best_head),
                  core::FormatFixed(m.tail.auc, 4) + " " +
                      bench::Delta(m.tail.auc, best_tail),
                  core::FormatFixed(m.overall.auc, 4) + " " +
                      bench::Delta(m.overall.auc, best_overall)});
      } else {
        best_head = std::max(best_head, m.head.auc);
        best_tail = std::max(best_tail, m.tail.auc);
        best_overall = std::max(best_overall, m.overall.auc);
        t.AddNumericRow(name, {m.head.auc, m.tail.auc, m.overall.auc}, 4);
      }
    }
    std::fputs(t.ToAscii().c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Paper reference (Table III): GARCIA beats every baseline on every "
      "dataset and slice (e.g. Sep. A tail 0.8285, +2.50%% over the best "
      "baseline), with the largest margins on the tail slice; Wide&Deep is "
      "weakest; CL-augmented GNNs and KGAT sit between.\n");
  return 0;
}
