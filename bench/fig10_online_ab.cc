// Regenerates Fig. 10: simulated online A/B bucket test over 7 days.
// Baseline arm: the deployed KGAT-augmented baseline's embeddings.
// Treatment arm: GARCIA trained with the online inner-product head
// (Sec. V-F1) so its embeddings are retrieval-compatible.
// Users are the scenario's latent ground-truth click model (DESIGN.md §2).

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "core/string_util.h"
#include "models/contrastive.h"
#include "models/garcia_model.h"
#include "serving/ab_test.h"
#include "serving/resilient_ranker.h"

using namespace garcia;

namespace {

/// Yesterday's dump: the newest fraction of query ids is not in it yet
/// (cold-start tail queries appear at the end of the id space).
serving::EmbeddingStore TruncatedSnapshot(const core::Matrix& fresh,
                                          double keep_fraction) {
  const size_t keep = static_cast<size_t>(
      static_cast<double>(fresh.rows()) * keep_fraction);
  core::Matrix stale(keep, fresh.cols());
  for (size_t i = 0; i < keep; ++i) stale.CopyRowFrom(fresh, i, i);
  return serving::EmbeddingStore(std::move(stale));
}

/// Wraps exported embeddings with the full degradation chain.
std::unique_ptr<serving::ResilientRanker> MakeResilientArm(
    const data::Scenario& s, const core::Matrix& query_emb,
    const core::Matrix& service_emb) {
  auto arm = std::make_unique<serving::ResilientRanker>(
      serving::EmbeddingStore(query_emb), serving::EmbeddingStore(service_emb));
  arm->SetStaleSnapshot(TruncatedSnapshot(query_emb, 0.8));
  arm->SetHeadAnchors(models::AnchorHeadOf(models::MineKtclAnchors(s),
                                           s.num_queries()));
  std::vector<std::string> service_names;
  for (const auto& meta : s.services) service_names.push_back(meta.name);
  arm->SetTextFallback(
      std::make_shared<serving::TextRanker>(s.query_text, service_names));
  std::vector<double> popularity;
  for (const auto& meta : s.services) {
    popularity.push_back(static_cast<double>(meta.mau));
  }
  arm->SetPopularityFallback(
      std::make_shared<serving::PopularityRanker>(popularity));
  return arm;
}

}  // namespace

int main() {
  bench::PrintBanner("Figure 10",
                     "Online A/B simulation: CTR and Valid CTR improvement "
                     "of GARCIA over the deployed baseline, per day.");

  data::Scenario s =
      data::GeneratePreset(data::DatasetId::kSepA, bench::BenchScale());

  // Both arms use the inner-product head so exported embeddings match the
  // online scoring function.
  auto base_cfg = bench::PresetTrainConfig(data::DatasetId::kSepA);
  base_cfg.inner_product_head = true;
  auto baseline_model = models::CreateModel("KGAT", base_cfg);
  baseline_model->Fit(s);
  serving::EmbeddingRanker baseline(
      serving::EmbeddingStore(baseline_model->ExportQueryEmbeddings(s)),
      serving::EmbeddingStore(baseline_model->ExportServiceEmbeddings(s)));

  auto garcia_cfg = bench::PresetTrainConfig(data::DatasetId::kSepA);
  garcia_cfg.inner_product_head = true;
  auto garcia_model = models::CreateModel("GARCIA", garcia_cfg);
  garcia_model->Fit(s);
  serving::EmbeddingRanker treatment(
      serving::EmbeddingStore(garcia_model->ExportQueryEmbeddings(s)),
      serving::EmbeddingStore(garcia_model->ExportServiceEmbeddings(s)));

  serving::AbTestConfig ab;
  ab.num_days = 7;  // paper: 2022/10/01 - 2022/10/07
  serving::AbTestResult r = serving::RunAbTest(s, baseline, treatment, ab);

  core::Table t({"Day", "Baseline CTR", "GARCIA CTR", "CTR impr.",
                 "Baseline VCTR", "GARCIA VCTR", "VCTR impr."});
  for (size_t d = 0; d < ab.num_days; ++d) {
    t.AddRow({core::StrFormat("10/%02zu", d + 1),
              bench::Pct(r.baseline[d].ctr), bench::Pct(r.treatment[d].ctr),
              bench::Pct(r.CtrImprovement(d)),
              bench::Pct(r.baseline[d].valid_ctr),
              bench::Pct(r.treatment[d].valid_ctr),
              bench::Pct(r.ValidCtrImprovement(d))});
  }
  std::fputs(t.ToAscii().c_str(), stdout);
  std::printf("\nMean absolute improvement: CTR %s, Valid CTR %s\n",
              bench::Pct(r.MeanCtrImprovement()).c_str(),
              bench::Pct(r.MeanValidCtrImprovement()).c_str());

  std::printf(
      "\nPaper reference (Fig. 10): consistent positive improvement on all "
      "7 days; overall absolute improvement +0.79%% CTR and +0.60%% Valid "
      "CTR over the deployed KGAT-augmented baseline.\n");

  // ---- Extension: Valid CTR under injected faults (ISSUE 1) ----
  // Both arms are wrapped in the full degradation chain (fresh -> stale ->
  // head anchor -> text -> popularity); the fault rate scales transient
  // failures, cold-start misses, bit flips and latency spikes together.
  bench::PrintBanner("Figure 10b (extension)",
                     "Valid CTR as a function of injected fault rate: the "
                     "degradation chain under failure.");
  auto base_res = MakeResilientArm(s, baseline_model->ExportQueryEmbeddings(s),
                                   baseline_model->ExportServiceEmbeddings(s));
  auto garcia_res = MakeResilientArm(s, garcia_model->ExportQueryEmbeddings(s),
                                     garcia_model->ExportServiceEmbeddings(s));

  core::Table ft({"Fault rate", "GARCIA VCTR", "VCTR impr.", "Served",
                  "Fresh serve", "Mean depth", "Breaker opens"});
  for (double rate : {0.0, 0.05, 0.10, 0.20, 0.40}) {
    serving::FaultProfile profile;
    profile.seed = 97;
    profile.lookup_failure_rate = rate;
    profile.missing_id_rate = rate / 2;
    profile.bit_flip_rate = rate / 4;
    profile.latency_spike_rate = rate / 4;
    serving::AbTestConfig fab;
    fab.num_days = 3;
    fab.fault_profile = &profile;
    serving::AbTestResult fr =
        serving::RunAbTest(s, *base_res, *garcia_res, fab);
    const serving::ServingHealth h = garcia_res->health();
    double vctr = 0.0;
    for (const auto& day : fr.treatment) vctr += day.valid_ctr;
    vctr /= static_cast<double>(fr.treatment.size());
    const uint64_t served_total =
        h.served_at_tier[0] + h.served_at_tier[1] + h.served_at_tier[2] +
        h.served_at_tier[3] + h.served_at_tier[4];
    ft.AddRow({bench::Pct(rate, 0), bench::Pct(vctr),
               bench::Pct(fr.MeanValidCtrImprovement()),
               core::StrFormat("%llu/%llu",
                               static_cast<unsigned long long>(served_total),
                               static_cast<unsigned long long>(h.requests)),
               bench::Pct(h.FreshServeRate()),
               core::StrFormat("%.3f", h.MeanFallbackDepth()),
               core::StrFormat("%llu", static_cast<unsigned long long>(
                                           h.breaker_to_open))});
  }
  std::fputs(ft.ToAscii().c_str(), stdout);
  std::printf(
      "\nEvery request is served (no aborts); as the fault rate grows, "
      "requests slide down the chain and Valid CTR degrades gracefully "
      "instead of the service failing.\n");
  return 0;
}
