// Regenerates Fig. 10: simulated online A/B bucket test over 7 days.
// Baseline arm: the deployed KGAT-augmented baseline's embeddings.
// Treatment arm: GARCIA trained with the online inner-product head
// (Sec. V-F1) so its embeddings are retrieval-compatible.
// Users are the scenario's latent ground-truth click model (DESIGN.md §2).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/string_util.h"
#include "models/garcia_model.h"
#include "serving/ab_test.h"

using namespace garcia;

int main() {
  bench::PrintBanner("Figure 10",
                     "Online A/B simulation: CTR and Valid CTR improvement "
                     "of GARCIA over the deployed baseline, per day.");

  data::Scenario s =
      data::GeneratePreset(data::DatasetId::kSepA, bench::BenchScale());

  // Both arms use the inner-product head so exported embeddings match the
  // online scoring function.
  auto base_cfg = bench::DefaultTrainConfig();
  base_cfg.inner_product_head = true;
  auto baseline_model = models::CreateModel("KGAT", base_cfg);
  baseline_model->Fit(s);
  serving::EmbeddingRanker baseline(
      serving::EmbeddingStore(baseline_model->ExportQueryEmbeddings(s)),
      serving::EmbeddingStore(baseline_model->ExportServiceEmbeddings(s)));

  auto garcia_cfg = bench::DefaultTrainConfig();
  garcia_cfg.inner_product_head = true;
  auto garcia_model = models::CreateModel("GARCIA", garcia_cfg);
  garcia_model->Fit(s);
  serving::EmbeddingRanker treatment(
      serving::EmbeddingStore(garcia_model->ExportQueryEmbeddings(s)),
      serving::EmbeddingStore(garcia_model->ExportServiceEmbeddings(s)));

  serving::AbTestConfig ab;
  ab.num_days = 7;  // paper: 2022/10/01 - 2022/10/07
  serving::AbTestResult r = serving::RunAbTest(s, baseline, treatment, ab);

  core::Table t({"Day", "Baseline CTR", "GARCIA CTR", "CTR impr.",
                 "Baseline VCTR", "GARCIA VCTR", "VCTR impr."});
  for (size_t d = 0; d < ab.num_days; ++d) {
    t.AddRow({core::StrFormat("10/%02zu", d + 1),
              bench::Pct(r.baseline[d].ctr), bench::Pct(r.treatment[d].ctr),
              bench::Pct(r.CtrImprovement(d)),
              bench::Pct(r.baseline[d].valid_ctr),
              bench::Pct(r.treatment[d].valid_ctr),
              bench::Pct(r.ValidCtrImprovement(d))});
  }
  std::fputs(t.ToAscii().c_str(), stdout);
  std::printf("\nMean absolute improvement: CTR %s, Valid CTR %s\n",
              bench::Pct(r.MeanCtrImprovement()).c_str(),
              bench::Pct(r.MeanValidCtrImprovement()).c_str());

  std::printf(
      "\nPaper reference (Fig. 10): consistent positive improvement on all "
      "7 days; overall absolute improvement +0.79%% CTR and +0.60%% Valid "
      "CTR over the deployed KGAT-augmented baseline.\n");
  return 0;
}
