// Recall/QPS tradeoff of the IVF retrieval index (DESIGN.md §5k): sweeps
// nlist x nprobe over a clustered synthetic catalog, reporting recall@10
// against the brute-force oracle and single-thread query throughput, with
// the oracle-equivalence gate enforced — at nprobe == nlist every ranked
// list must be BIT-IDENTICAL to core::kernels::TopKDot, and the binary
// exits nonzero if any query diverges.
//
// `retrieval_recall --json` additionally writes the sweep to
// BENCH_retrieval.json in the working directory (EXPERIMENTS.md records
// the trajectory). GARCIA_BENCH_REPEATS overrides the timing repeat count
// (default 3; check.sh's ASan smoke uses 1).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/matrix.h"
#include "core/rng.h"
#include "core/string_util.h"
#include "core/table.h"
#include "serving/ivf_index.h"
#include "serving/ranking_service.h"

using namespace garcia;

namespace {

constexpr size_t kNumServices = 20000;
constexpr size_t kNumClusters = 128;  // catalog geometry, not the quantizer
constexpr size_t kDim = 64;
constexpr size_t kNumQueries = 400;
constexpr size_t kTopK = 10;
constexpr uint64_t kSeed = 515;

int Repeats() {
  const char* env = std::getenv("GARCIA_BENCH_REPEATS");
  if (env != nullptr && std::atoi(env) > 0) return std::atoi(env);
  return 3;
}

/// Clustered catalog: services concentrate around intention-tree-like
/// centers; queries embed near catalog points (the trained query tower
/// maps queries into the service space). The geometry IVF exists for.
core::Matrix MakeCatalog(core::Rng* rng) {
  core::Matrix centers = core::Matrix::Randn(kNumClusters, kDim, rng, 0.0f, 4.0f);
  core::Matrix catalog(kNumServices, kDim);
  for (size_t i = 0; i < kNumServices; ++i) {
    const size_t c = i % kNumClusters;
    float* row = catalog.row(i);
    for (size_t j = 0; j < kDim; ++j) {
      row[j] = centers.at(c, j) + static_cast<float>(rng->Normal()) * 0.3f;
    }
  }
  return catalog;
}

core::Matrix MakeQueries(const core::Matrix& catalog, core::Rng* rng) {
  core::Matrix queries(kNumQueries, kDim);
  for (size_t q = 0; q < kNumQueries; ++q) {
    const float* anchor =
        catalog.row(rng->UniformInt(uint64_t{kNumServices}));
    float* row = queries.row(q);
    for (size_t j = 0; j < kDim; ++j) {
      row[j] = anchor[j] + static_cast<float>(rng->Normal()) * 0.3f;
    }
  }
  return queries;
}

double RecallAgainst(const serving::RankedList& truth,
                     const serving::RankedList& got) {
  if (truth.empty()) return 1.0;
  std::set<uint32_t> truth_ids;
  for (const auto& [id, s] : truth) truth_ids.insert(id);
  size_t hit = 0;
  for (const auto& [id, s] : got) hit += truth_ids.count(id);
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

struct SweepPoint {
  size_t nlist = 0;
  size_t nprobe = 0;
  double recall = 0.0;
  double qps = 0.0;
  bool full_probe = false;
  bool bit_identical = true;  // only meaningful when full_probe
};

/// nprobe values for one nlist: powers of two up to nlist, nlist included.
std::vector<size_t> NprobeSweep(size_t nlist) {
  std::vector<size_t> probes;
  for (size_t p = 1; p < nlist; p *= 2) probes.push_back(p);
  probes.push_back(nlist);
  return probes;
}

}  // namespace

int main(int argc, char** argv) {
  bool write_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) write_json = true;
  }
  const int repeats = Repeats();

  std::printf(
      "IVF recall/QPS sweep: %zu services in %zu clusters, dim %zu, "
      "%zu queries, recall@%zu vs the brute-force oracle.\n",
      kNumServices, kNumClusters, kDim, kNumQueries, kTopK);

  core::Rng rng(kSeed);
  const core::Matrix catalog = MakeCatalog(&rng);
  const core::Matrix queries = MakeQueries(catalog, &rng);

  // Brute-force oracle: ground truth for recall, QPS baseline, and the
  // byte-equality reference for the full-probe gate.
  std::vector<serving::RankedList> truth(kNumQueries);
  double brute_secs = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t q = 0; q < kNumQueries; ++q) {
      truth[q] = serving::TopKInnerProduct(core::SerialExecution(),
                                           queries.row(q), kDim, catalog, kTopK);
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (rep == 0 || secs < brute_secs) brute_secs = secs;
  }
  const double brute_qps = static_cast<double>(kNumQueries) / brute_secs;
  std::printf("Brute-force scan: %.0f QPS (single thread).\n", brute_qps);

  // Index builds are thread-count-invariant; build on all cores.
  const size_t hw =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  core::ExecutionContext build_ctx(hw);

  std::vector<SweepPoint> sweep;
  bool gate_ok = true;
  for (size_t nlist : {size_t{64}, size_t{128}, size_t{256}}) {
    serving::RetrievalConfig cfg;
    cfg.mode = serving::RetrievalMode::kIvf;
    cfg.nlist = nlist;
    const serving::IvfIndex index =
        serving::IvfIndex::Build(catalog, cfg, build_ctx);
    for (size_t nprobe : NprobeSweep(nlist)) {
      SweepPoint point;
      point.nlist = nlist;
      point.nprobe = nprobe;
      point.full_probe = nprobe == nlist;
      std::vector<serving::RankedList> results(kNumQueries);
      double best_secs = 0.0;
      for (int rep = 0; rep < repeats; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        for (size_t q = 0; q < kNumQueries; ++q) {
          results[q] = index.Query(core::SerialExecution(), queries.row(q),
                                   kTopK, nprobe);
        }
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        if (rep == 0 || secs < best_secs) best_secs = secs;
      }
      point.qps = static_cast<double>(kNumQueries) / best_secs;
      double recall_total = 0.0;
      for (size_t q = 0; q < kNumQueries; ++q) {
        recall_total += RecallAgainst(truth[q], results[q]);
        if (point.full_probe && results[q] != truth[q]) {
          point.bit_identical = false;  // oracle-equivalence gate
        }
      }
      point.recall = recall_total / static_cast<double>(kNumQueries);
      if (point.full_probe && !point.bit_identical) gate_ok = false;
      sweep.push_back(point);
    }
  }

  core::Table t({"nlist", "nprobe", "recall@10", "QPS", "vs brute", "gate"});
  for (const SweepPoint& p : sweep) {
    t.AddRow({core::StrFormat("%zu", p.nlist),
              core::StrFormat("%zu", p.nprobe),
              core::StrFormat("%.4f", p.recall),
              core::StrFormat("%.0f", p.qps),
              core::StrFormat("%.2fx", p.qps / brute_qps),
              p.full_probe ? (p.bit_identical ? "exact" : "DIVERGED") : "-"});
  }
  std::fputs(t.ToAscii().c_str(), stdout);

  if (write_json) {
    std::string json = core::StrFormat(
        "{\n  \"benchmark\": \"retrieval_recall\",\n"
        "  \"num_services\": %zu,\n  \"num_clusters\": %zu,\n"
        "  \"dim\": %zu,\n  \"num_queries\": %zu,\n  \"top_k\": %zu,\n"
        "  \"brute_force_qps\": %.1f,\n  \"sweep\": [\n",
        kNumServices, kNumClusters, kDim, kNumQueries, kTopK, brute_qps);
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& p = sweep[i];
      json += core::StrFormat(
          "    {\"nlist\": %zu, \"nprobe\": %zu, \"recall_at_10\": %.4f, "
          "\"qps\": %.1f, \"speedup_vs_brute\": %.2f, "
          "\"full_probe_bit_identical\": %s}%s\n",
          p.nlist, p.nprobe, p.recall, p.qps, p.qps / brute_qps,
          p.full_probe ? (p.bit_identical ? "true" : "false") : "null",
          i + 1 == sweep.size() ? "" : ",");
    }
    json += "  ]\n}\n";
    std::FILE* f = std::fopen("BENCH_retrieval.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_retrieval.json\n");
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("Wrote BENCH_retrieval.json\n");
  }

  if (!gate_ok) {
    std::fprintf(stderr,
                 "FULL-PROBE GATE FAILED: nprobe == nlist diverged from the "
                 "brute-force oracle\n");
    return 1;
  }
  std::printf("Full-probe gate: every nprobe == nlist sweep point "
              "bit-identical to the oracle.\n");
  return 0;
}
