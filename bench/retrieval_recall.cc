// Recall/QPS tradeoff of the IVF retrieval index, float vs SQ8-quantized
// lists (DESIGN.md §5k / §5l): sweeps mode x nlist x nprobe over a
// clustered synthetic catalog, reporting recall@10 against the brute-force
// oracle, single-thread query throughput, and resident index bytes, with
// three gates enforced (nonzero exit on any failure):
//   * full-probe oracle gate — at nprobe == nlist every ranked list (both
//     modes; SQ8 runs with rerank_k >= k) must be BIT-IDENTICAL to
//     core::kernels::TopKDot;
//   * re-rank exactness gate — at EVERY sweep point the SQ8 index must
//     return exactly the float index's ranked lists (the band-guaranteed
//     re-rank promises identity, not approximation);
//   * iso-recall speedup gate — at the float frontier's recall >= 0.99
//     points, SQ8 must deliver >= 2x the float QPS somewhere (skipped
//     under sanitizers, where timing is meaningless; exactness gates
//     always run).
//
// `retrieval_recall --json` additionally writes the sweep to
// BENCH_retrieval.json in the working directory (EXPERIMENTS.md records
// the trajectory). GARCIA_BENCH_REPEATS overrides the timing repeat count
// (default 3; check.sh's ASan smoke uses 1).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/matrix.h"
#include "core/rng.h"
#include "core/string_util.h"
#include "core/table.h"
#include "serving/ivf_index.h"
#include "serving/ranking_service.h"

using namespace garcia;

namespace {

constexpr size_t kNumServices = 20000;
constexpr size_t kNumClusters = 128;  // catalog geometry, not the quantizer
constexpr size_t kDim = 64;
constexpr size_t kNumQueries = 400;
constexpr size_t kTopK = 10;
constexpr uint64_t kSeed = 515;
constexpr double kIsoRecallFloor = 0.99;
constexpr double kSpeedupFloor = 2.0;

// Timing gates are meaningless under a sanitizer (ASan's interceptors
// distort the int8 scan and the float scan differently); the exactness
// gates still run there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

int Repeats() {
  const char* env = std::getenv("GARCIA_BENCH_REPEATS");
  if (env != nullptr && std::atoi(env) > 0) return std::atoi(env);
  return 3;
}

/// Clustered catalog: services concentrate around intention-tree-like
/// centers; queries embed near catalog points (the trained query tower
/// maps queries into the service space). The geometry IVF exists for.
core::Matrix MakeCatalog(core::Rng* rng) {
  core::Matrix centers = core::Matrix::Randn(kNumClusters, kDim, rng, 0.0f, 4.0f);
  core::Matrix catalog(kNumServices, kDim);
  for (size_t i = 0; i < kNumServices; ++i) {
    const size_t c = i % kNumClusters;
    float* row = catalog.row(i);
    for (size_t j = 0; j < kDim; ++j) {
      row[j] = centers.at(c, j) + static_cast<float>(rng->Normal()) * 0.3f;
    }
  }
  return catalog;
}

core::Matrix MakeQueries(const core::Matrix& catalog, core::Rng* rng) {
  core::Matrix queries(kNumQueries, kDim);
  for (size_t q = 0; q < kNumQueries; ++q) {
    const float* anchor =
        catalog.row(rng->UniformInt(uint64_t{kNumServices}));
    float* row = queries.row(q);
    for (size_t j = 0; j < kDim; ++j) {
      row[j] = anchor[j] + static_cast<float>(rng->Normal()) * 0.3f;
    }
  }
  return queries;
}

double RecallAgainst(const serving::RankedList& truth,
                     const serving::RankedList& got) {
  if (truth.empty()) return 1.0;
  std::set<uint32_t> truth_ids;
  for (const auto& [id, s] : truth) truth_ids.insert(id);
  size_t hit = 0;
  for (const auto& [id, s] : got) hit += truth_ids.count(id);
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

struct SweepPoint {
  const char* mode = "ivf";
  size_t nlist = 0;
  size_t nprobe = 0;
  double recall = 0.0;
  double qps = 0.0;
  size_t memory_bytes = 0;      // whole-index residency
  size_t list_bytes = 0;        // list payload only (the 4x story)
  bool full_probe = false;
  bool bit_identical = true;    // vs oracle; evaluated only at full probe
  bool is_sq8 = false;
  bool rerank_exact = true;     // sq8 only: equals the float-index point
};

/// nprobe values for one nlist: powers of two up to nlist, nlist included.
std::vector<size_t> NprobeSweep(size_t nlist) {
  std::vector<size_t> probes;
  for (size_t p = 1; p < nlist; p *= 2) probes.push_back(p);
  probes.push_back(nlist);
  return probes;
}

}  // namespace

int main(int argc, char** argv) {
  bool write_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) write_json = true;
  }
  const int repeats = Repeats();

  std::printf(
      "IVF recall/QPS sweep (float vs SQ8 lists): %zu services in %zu "
      "clusters, dim %zu, %zu queries, recall@%zu vs the brute-force "
      "oracle.\n",
      kNumServices, kNumClusters, kDim, kNumQueries, kTopK);

  core::Rng rng(kSeed);
  const core::Matrix catalog = MakeCatalog(&rng);
  const core::Matrix queries = MakeQueries(catalog, &rng);

  // Brute-force oracle: ground truth for recall, QPS baseline, and the
  // byte-equality reference for the full-probe gate.
  std::vector<serving::RankedList> truth(kNumQueries);
  double brute_secs = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t q = 0; q < kNumQueries; ++q) {
      truth[q] = serving::TopKInnerProduct(core::SerialExecution(),
                                           queries.row(q), kDim, catalog, kTopK);
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (rep == 0 || secs < brute_secs) brute_secs = secs;
  }
  const double brute_qps = static_cast<double>(kNumQueries) / brute_secs;
  std::printf("Brute-force scan: %.0f QPS (single thread).\n", brute_qps);

  // Index builds are thread-count-invariant; build on all cores.
  const size_t hw =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  core::ExecutionContext build_ctx(hw);

  // Times one mode's sweep point and returns its ranked lists.
  auto run_point = [&](const serving::IvfIndex& index, size_t nprobe,
                       std::vector<serving::RankedList>* results,
                       double* qps) {
    double best_secs = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      for (size_t q = 0; q < kNumQueries; ++q) {
        (*results)[q] = index.Query(core::SerialExecution(), queries.row(q),
                                    kTopK, nprobe);
      }
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (rep == 0 || secs < best_secs) best_secs = secs;
    }
    *qps = static_cast<double>(kNumQueries) / best_secs;
  };

  std::vector<SweepPoint> sweep;
  bool oracle_gate_ok = true;
  bool rerank_gate_ok = true;
  double best_iso_speedup = 0.0;   // best sq8/float QPS ratio at iso-recall
  double storage_ratio = 0.0;      // float list bytes / sq8 list bytes
  for (size_t nlist : {size_t{64}, size_t{128}, size_t{256}}) {
    serving::RetrievalConfig cfg;
    cfg.mode = serving::RetrievalMode::kIvf;
    cfg.nlist = nlist;
    const serving::IvfIndex fl =
        serving::IvfIndex::Build(catalog, cfg, build_ctx);
    cfg.mode = serving::RetrievalMode::kIvfSq8;  // rerank_k 0 = max(4k, 32)
    const serving::IvfIndex sq =
        serving::IvfIndex::Build(catalog, cfg, build_ctx);
    storage_ratio = static_cast<double>(fl.ListStorageBytes()) /
                    static_cast<double>(sq.ListStorageBytes());

    std::vector<serving::RankedList> fl_results(kNumQueries);
    std::vector<serving::RankedList> sq_results(kNumQueries);
    for (size_t nprobe : NprobeSweep(nlist)) {
      SweepPoint fp, sp;
      fp.nlist = sp.nlist = nlist;
      fp.nprobe = sp.nprobe = nprobe;
      fp.full_probe = sp.full_probe = nprobe == nlist;
      sp.mode = "ivf-sq8";
      sp.is_sq8 = true;
      fp.memory_bytes = fl.MemoryBytes();
      fp.list_bytes = fl.ListStorageBytes();
      sp.memory_bytes = sq.MemoryBytes();
      sp.list_bytes = sq.ListStorageBytes();
      run_point(fl, nprobe, &fl_results, &fp.qps);
      run_point(sq, nprobe, &sq_results, &sp.qps);
      double fl_recall = 0.0, sq_recall = 0.0;
      for (size_t q = 0; q < kNumQueries; ++q) {
        fl_recall += RecallAgainst(truth[q], fl_results[q]);
        sq_recall += RecallAgainst(truth[q], sq_results[q]);
        if (fp.full_probe && fl_results[q] != truth[q]) {
          fp.bit_identical = false;
        }
        if (sp.full_probe && sq_results[q] != truth[q]) {
          sp.bit_identical = false;
        }
        // The re-rank exactness contract, checked at EVERY point: the
        // quantized path must reproduce the float index exactly.
        if (sq_results[q] != fl_results[q]) sp.rerank_exact = false;
      }
      fp.recall = fl_recall / static_cast<double>(kNumQueries);
      sp.recall = sq_recall / static_cast<double>(kNumQueries);
      if (fp.full_probe && !fp.bit_identical) oracle_gate_ok = false;
      if (sp.full_probe && !sp.bit_identical) oracle_gate_ok = false;
      if (!sp.rerank_exact) rerank_gate_ok = false;
      if (fp.recall >= kIsoRecallFloor) {
        best_iso_speedup = std::max(best_iso_speedup, sp.qps / fp.qps);
      }
      sweep.push_back(fp);
      sweep.push_back(sp);
    }
  }

  core::Table t({"mode", "nlist", "nprobe", "recall@10", "QPS", "vs brute",
                 "list MiB", "gate"});
  for (const SweepPoint& p : sweep) {
    std::string gate = "-";
    if (p.full_probe) gate = p.bit_identical ? "exact" : "DIVERGED";
    if (p.is_sq8 && !p.rerank_exact) gate = "RERANK-DIVERGED";
    t.AddRow({p.mode, core::StrFormat("%zu", p.nlist),
              core::StrFormat("%zu", p.nprobe),
              core::StrFormat("%.4f", p.recall),
              core::StrFormat("%.0f", p.qps),
              core::StrFormat("%.2fx", p.qps / brute_qps),
              core::StrFormat("%.2f",
                              static_cast<double>(p.list_bytes) / 1048576.0),
              gate});
  }
  std::fputs(t.ToAscii().c_str(), stdout);
  std::printf(
      "SQ8 list storage: %.2fx below float; best iso-recall (>= %.2f) "
      "speedup over float IVF: %.2fx.\n",
      storage_ratio, kIsoRecallFloor, best_iso_speedup);

  if (write_json) {
    std::string json = core::StrFormat(
        "{\n  \"benchmark\": \"retrieval_recall\",\n"
        "  \"num_services\": %zu,\n  \"num_clusters\": %zu,\n"
        "  \"dim\": %zu,\n  \"num_queries\": %zu,\n  \"top_k\": %zu,\n"
        "  \"brute_force_qps\": %.1f,\n"
        "  \"sq8_list_storage_ratio\": %.2f,\n"
        "  \"sq8_iso_recall_speedup\": %.2f,\n  \"sweep\": [\n",
        kNumServices, kNumClusters, kDim, kNumQueries, kTopK, brute_qps,
        storage_ratio, best_iso_speedup);
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& p = sweep[i];
      json += core::StrFormat(
          "    {\"mode\": \"%s\", \"nlist\": %zu, \"nprobe\": %zu, "
          "\"recall_at_10\": %.4f, \"qps\": %.1f, "
          "\"speedup_vs_brute\": %.2f, \"index_memory_bytes\": %zu, "
          "\"list_storage_bytes\": %zu",
          p.mode, p.nlist, p.nprobe, p.recall, p.qps, p.qps / brute_qps,
          p.memory_bytes, p.list_bytes);
      // Omitted where not evaluated — a non-full-probe row simply has no
      // bit-identity verdict, and a float row has no re-rank.
      if (p.full_probe) {
        json += core::StrFormat(", \"full_probe_bit_identical\": %s",
                                p.bit_identical ? "true" : "false");
      }
      if (p.is_sq8) {
        json += core::StrFormat(", \"rerank_exact\": %s",
                                p.rerank_exact ? "true" : "false");
      }
      json += core::StrFormat("}%s\n", i + 1 == sweep.size() ? "" : ",");
    }
    json += "  ]\n}\n";
    std::FILE* f = std::fopen("BENCH_retrieval.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_retrieval.json\n");
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("Wrote BENCH_retrieval.json\n");
  }

  bool ok = true;
  if (!oracle_gate_ok) {
    std::fprintf(stderr,
                 "FULL-PROBE GATE FAILED: nprobe == nlist diverged from the "
                 "brute-force oracle\n");
    ok = false;
  }
  if (!rerank_gate_ok) {
    std::fprintf(stderr,
                 "RERANK EXACTNESS GATE FAILED: SQ8 diverged from the float "
                 "index at some sweep point\n");
    ok = false;
  }
  if (storage_ratio < 3.5) {
    std::fprintf(stderr,
                 "STORAGE GATE FAILED: SQ8 list storage only %.2fx below "
                 "float (want ~4x)\n",
                 storage_ratio);
    ok = false;
  }
  if (!kSanitized && best_iso_speedup < kSpeedupFloor) {
    std::fprintf(stderr,
                 "ISO-RECALL SPEEDUP GATE FAILED: best SQ8 speedup %.2fx < "
                 "%.2fx at recall >= %.2f\n",
                 best_iso_speedup, kSpeedupFloor, kIsoRecallFloor);
    ok = false;
  }
  if (!ok) return 1;
  std::printf(
      "Gates passed: full-probe bit-identity (both modes), SQ8 re-rank "
      "exactness at every point, %.2fx storage%s.\n",
      storage_ratio,
      kSanitized ? " (speedup gate skipped under sanitizer)"
                 : core::StrFormat(", %.2fx iso-recall speedup",
                                   best_iso_speedup)
                       .c_str());
  return 0;
}
