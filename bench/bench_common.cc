#include "bench/bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/string_util.h"

namespace garcia::bench {

double BenchScale() {
  const char* env = std::getenv("GARCIA_BENCH_SCALE");
  if (env != nullptr) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 0.4;
}

models::TrainConfig DefaultTrainConfig() {
  models::TrainConfig cfg;
  cfg.pretrain_epochs = 4;
  cfg.finetune_epochs = 6;
  cfg.max_batches_per_epoch = 20;
  const char* env = std::getenv("GARCIA_BENCH_SEED");
  if (env != nullptr) cfg.seed = static_cast<uint64_t>(std::atoll(env));
  const char* threads = std::getenv("GARCIA_BENCH_THREADS");
  if (threads != nullptr) {
    const long long v = std::atoll(threads);
    if (v > 0) cfg.num_threads = static_cast<size_t>(v);
  }
  return cfg;
}

models::TrainConfig PresetTrainConfig(data::DatasetId id) {
  models::TrainConfig cfg = DefaultTrainConfig();
  cfg.sample_fanout = id == data::DatasetId::kSoftware ? 0 : 8;
  const char* env = std::getenv("GARCIA_BENCH_FANOUT");
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v >= 0) cfg.sample_fanout = static_cast<size_t>(v);
  }
  return cfg;
}

void PrintBanner(const std::string& artifact, const std::string& what) {
  std::printf("=== %s ===\n%s\n(synthetic substrate, scale %.2f; shapes "
              "reproduce, absolute values do not — see EXPERIMENTS.md)\n\n",
              artifact.c_str(), what.c_str(), BenchScale());
}

eval::SlicedMetrics RunModel(const std::string& model_name,
                             const data::Scenario& scenario,
                             const models::TrainConfig& config) {
  auto model = models::CreateModel(model_name, config);
  const auto t0 = std::chrono::steady_clock::now();
  model->Fit(scenario);
  auto metrics = models::EvaluateModel(model.get(), scenario, scenario.test);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::fprintf(stderr, "  [%s on %s: %.1fs]\n", model_name.c_str(),
               scenario.config.name.c_str(), secs);
  return metrics;
}

std::string Pct(double fraction, int decimals) {
  return core::FormatFixed(fraction * 100.0, decimals) + "%";
}

std::string Delta(double ours, double best_baseline) {
  if (best_baseline <= 0.0) return "(n/a)";
  const double d = (ours - best_baseline) / best_baseline * 100.0;
  return core::StrFormat("(%+.2f%%)", d);
}

}  // namespace garcia::bench
