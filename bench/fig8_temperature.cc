// Regenerates Fig. 8: temperature tau sweep for the contrastive losses, on
// Sep. A.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/string_util.h"
#include "models/garcia_model.h"

using namespace garcia;

int main() {
  bench::PrintBanner("Figure 8", "Temperature tau sweep on Sep. A.");

  data::Scenario s =
      data::GeneratePreset(data::DatasetId::kSepA, bench::BenchScale());
  core::Table t({"tau", "Tail AUC", "Overall AUC"});
  for (float tau : {0.05f, 0.1f, 0.3f, 0.5f, 0.7f, 1.0f}) {
    auto cfg = bench::PresetTrainConfig(data::DatasetId::kSepA);
    cfg.tau = tau;
    models::GarciaModel model(cfg);
    model.Fit(s);
    auto m = models::EvaluateModel(&model, s, s.test);
    t.AddNumericRow(core::FormatFixed(tau, 2), {m.tail.auc, m.overall.auc},
                    4);
    std::fflush(stdout);
  }
  std::fputs(t.ToAscii().c_str(), stdout);

  std::printf(
      "\nPaper reference (Fig. 8): optimum at tau=0.1, stable nearby; "
      "too-large tau (>0.5) harms the model.\n");
  return 0;
}
