// Regenerates Fig. 7: impact of the number of incorporated intention-tree
// levels H (1..5), against a no-intention reference, on Sep. A.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/string_util.h"
#include "models/garcia_model.h"

using namespace garcia;

int main() {
  bench::PrintBanner("Figure 7",
                     "Intention-tree level sweep H=1..5 on Sep. A; the "
                     "reference row disables the intention encoder.");

  data::Scenario s =
      data::GeneratePreset(data::DatasetId::kSepA, bench::BenchScale());
  core::Table t({"H", "Tail AUC", "Overall AUC"});
  {
    auto cfg = bench::PresetTrainConfig(data::DatasetId::kSepA);
    cfg.use_intention = false;
    models::GarciaModel model(cfg);
    model.Fit(s);
    auto m = models::EvaluateModel(&model, s, s.test);
    t.AddNumericRow("no intention", {m.tail.auc, m.overall.auc}, 4);
    std::fflush(stdout);
  }
  for (size_t h = 1; h <= 5; ++h) {
    auto cfg = bench::PresetTrainConfig(data::DatasetId::kSepA);
    cfg.tree_levels = h;
    models::GarciaModel model(cfg);
    model.Fit(s);
    auto m = models::EvaluateModel(&model, s, s.test);
    t.AddNumericRow(core::StrFormat("%zu", h), {m.tail.auc, m.overall.auc},
                    4);
    std::fflush(stdout);
  }
  std::fputs(t.ToAscii().c_str(), stdout);

  std::printf(
      "\nPaper reference (Fig. 7): performance generally improves as more "
      "levels are incorporated, beating the no-intention reference, with a "
      "slight fluctuation possible at H=3 or 4 (tree noise).\n");
  return 0;
}
