// Regenerates Fig. 3: ablation on adaptive encoding — GARCIA (dual
// head/tail encoders) vs GARCIA-Share (one unified encoder) on the three
// industrial datasets.

#include <cstdio>

#include "bench/bench_common.h"

using namespace garcia;

int main() {
  bench::PrintBanner("Figure 3",
                     "Adaptive encoding ablation: GARCIA vs GARCIA-Share "
                     "(unified encoder), overall and tail AUC.");

  core::Table t({"Dataset / Variant", "Tail AUC", "Overall AUC"});
  for (data::DatasetId id : data::IndustrialDatasets()) {
    data::Scenario s = data::GeneratePreset(id, bench::BenchScale());
    {
      auto cfg = bench::PresetTrainConfig(id);
      auto m = bench::RunModel("GARCIA", s, cfg);
      t.AddNumericRow(data::DatasetName(id) + " GARCIA",
                      {m.tail.auc, m.overall.auc}, 4);
    }
    {
      auto cfg = bench::PresetTrainConfig(id);
      cfg.share_encoders = true;
      auto model = models::CreateModel("GARCIA", cfg);
      model->Fit(s);
      auto m = models::EvaluateModel(model.get(), s, s.test);
      t.AddNumericRow(data::DatasetName(id) + " GARCIA-Share",
                      {m.tail.auc, m.overall.auc}, 4);
    }
  }
  std::fputs(t.ToAscii().c_str(), stdout);

  std::printf(
      "\nPaper reference (Fig. 3): GARCIA is comparable to GARCIA-Share on "
      "Sep. A and better by a considerable margin on Sep. B and C — dual "
      "encoders never lose and usually win.\n");
  return 0;
}
