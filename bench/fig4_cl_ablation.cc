// Regenerates Fig. 4: ablation on the multi-granularity contrastive
// learning module — GARCIA vs w.o. SE / w.o. IG / w.o. IG&SE / w.o. ALL on
// the industrial datasets.

#include <cstdio>

#include "bench/bench_common.h"
#include "models/garcia_model.h"

using namespace garcia;

namespace {

struct Variant {
  const char* name;
  bool secl, igcl, ktcl;
};

}  // namespace

int main() {
  bench::PrintBanner("Figure 4",
                     "Multi-granularity contrastive learning ablation "
                     "(tail and overall AUC).");

  const Variant variants[] = {
      {"GARCIA", true, true, true},
      {"w.o. SE", false, true, true},
      {"w.o. IG", true, false, true},
      {"w.o. IG&SE", false, false, true},
      {"w.o. ALL", false, false, false},
  };

  for (data::DatasetId id : data::IndustrialDatasets()) {
    data::Scenario s = data::GeneratePreset(id, bench::BenchScale());
    std::printf("--- %s ---\n", data::DatasetName(id).c_str());
    core::Table t({"Variant", "Tail AUC", "Overall AUC"});
    for (const Variant& v : variants) {
      auto cfg = bench::PresetTrainConfig(id);
      cfg.use_secl = v.secl;
      cfg.use_igcl = v.igcl;
      cfg.use_ktcl = v.ktcl;
      if (!v.secl && !v.igcl && !v.ktcl) cfg.pretrain_epochs = 0;
      models::GarciaModel model(cfg);
      model.Fit(s);
      auto m = models::EvaluateModel(&model, s, s.test);
      t.AddNumericRow(v.name, {m.tail.auc, m.overall.auc}, 4);
      std::fflush(stdout);
    }
    std::fputs(t.ToAscii().c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Paper reference (Fig. 4): removing the whole CL module (w.o. ALL) "
      "costs the most; removing any single granularity (SE, IG, or both) "
      "also degrades performance — every contrastive supervision "
      "contributes.\n");
  return 0;
}
