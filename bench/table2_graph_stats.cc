// Regenerates Table II: service-search-graph node/edge counts per head/tail
// partition and intention-tree sizes.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/string_util.h"
#include "data/stats.h"

using namespace garcia;

int main() {
  bench::PrintBanner("Table II",
                     "Service search graph and intention tree statistics.");

  core::Table t({"Dataset", "Head nodes", "Head edges", "Tail nodes",
                 "Tail edges", "Intent nodes", "Intent edges"});
  for (data::DatasetId id : data::AllDatasets()) {
    data::Scenario s = data::GeneratePreset(id, bench::BenchScale());
    data::GraphStats g = data::ComputeGraphStats(s);
    auto fmt = [](size_t v) {
      return core::FormatScientific(static_cast<double>(v));
    };
    t.AddRow({data::DatasetName(id), fmt(g.head_nodes), fmt(g.head_edges),
              fmt(g.tail_nodes), fmt(g.tail_edges), fmt(g.intent_nodes),
              fmt(g.intent_edges)});
  }
  std::fputs(t.ToAscii().c_str(), stdout);

  std::printf(
      "\nPaper reference (Table II): the tail partition dominates edge "
      "count (industrial: 3.75e5 head vs 2.00e6 tail edges); intention "
      "trees are small relative to the graph. Both properties hold above.\n");
  return 0;
}
