// Regenerates Fig. 6: sensitivity of the IGCL weight beta in the
// pre-training objective (Eq. 11), on Sep. A.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/string_util.h"
#include "models/garcia_model.h"

using namespace garcia;

int main() {
  bench::PrintBanner("Figure 6",
                     "Balance factor beta (IGCL weight) sweep on Sep. A.");

  data::Scenario s =
      data::GeneratePreset(data::DatasetId::kSepA, bench::BenchScale());
  core::Table t({"beta", "Tail AUC", "Overall AUC"});
  for (float beta : {0.0f, 0.01f, 0.02f, 0.03f, 0.04f, 0.05f}) {
    auto cfg = bench::PresetTrainConfig(data::DatasetId::kSepA);
    cfg.beta = beta;
    cfg.use_igcl = beta > 0.0f;
    models::GarciaModel model(cfg);
    model.Fit(s);
    auto m = models::EvaluateModel(&model, s, s.test);
    t.AddNumericRow(core::FormatFixed(beta, 2), {m.tail.auc, m.overall.auc},
                    4);
    std::fflush(stdout);
  }
  std::fputs(t.ToAscii().c_str(), stdout);

  std::printf(
      "\nPaper reference (Fig. 6): worst at beta=0 (no IGCL); best at "
      "beta=0.01 or 0.04; beta>0.05 degrades.\n");
  return 0;
}
