// Kernel microbenchmarks (google-benchmark): the hot paths of training and
// serving — GEMM, segment ops, the GARCIA encoder layer, InfoNCE
// forward+backward, and top-K embedding retrieval.

#include <benchmark/benchmark.h>

#include "core/matrix.h"
#include "core/rng.h"
#include "models/gnn_encoder.h"
#include "nn/loss.h"
#include "nn/ops.h"
#include "serving/ranking_service.h"

namespace garcia {
namespace {

void BM_Gemm(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  core::Rng rng(1);
  core::Matrix a = core::Matrix::Randn(n, n, &rng);
  core::Matrix b = core::Matrix::Randn(n, n, &rng);
  core::Matrix c(n, n);
  for (auto _ : state) {
    core::Matrix::Gemm(false, false, 1.0f, a, b, 0.0f, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n *
                          n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_SegmentSoftmax(benchmark::State& state) {
  const size_t edges = static_cast<size_t>(state.range(0));
  const size_t segments = edges / 8;
  core::Rng rng(2);
  std::vector<uint32_t> seg(edges);
  for (auto& s : seg) {
    s = static_cast<uint32_t>(rng.UniformInt(static_cast<uint64_t>(segments)));
  }
  nn::Tensor scores =
      nn::Tensor::Constant(core::Matrix::Randn(edges, 1, &rng));
  for (auto _ : state) {
    nn::Tensor out = nn::SegmentSoftmax(scores, seg, segments);
    benchmark::DoNotOptimize(out.value().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * edges);
}
BENCHMARK(BM_SegmentSoftmax)->Arg(10000)->Arg(100000);

void BM_SegmentSum(benchmark::State& state) {
  const size_t edges = static_cast<size_t>(state.range(0));
  const size_t segments = edges / 8;
  core::Rng rng(3);
  std::vector<uint32_t> seg(edges);
  for (auto& s : seg) {
    s = static_cast<uint32_t>(rng.UniformInt(static_cast<uint64_t>(segments)));
  }
  nn::Tensor x = nn::Tensor::Constant(core::Matrix::Randn(edges, 32, &rng));
  for (auto _ : state) {
    nn::Tensor out = nn::SegmentSum(x, seg, segments);
    benchmark::DoNotOptimize(out.value().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * edges);
}
BENCHMARK(BM_SegmentSum)->Arg(10000)->Arg(100000);

graph::SearchGraph MakeBenchGraph(size_t queries, size_t services,
                                  size_t links) {
  core::Rng rng(4);
  graph::SearchGraph g(queries, services, 11);
  g.attributes() = core::Matrix::Randn(queries + services, 11, &rng);
  for (size_t i = 0; i < links; ++i) {
    g.AddLink(static_cast<uint32_t>(rng.UniformInt(uint64_t{queries})),
              static_cast<uint32_t>(rng.UniformInt(uint64_t{services})),
              graph::EdgeKind::kInteraction,
              static_cast<float>(rng.Uniform()), 0);
  }
  g.Finalize();
  return g;
}

void BM_GarciaEncoderForward(benchmark::State& state) {
  const size_t queries = static_cast<size_t>(state.range(0));
  core::Rng rng(5);
  graph::SearchGraph g = MakeBenchGraph(queries, queries / 4, queries * 4);
  models::GarciaGnnEncoder enc(g.num_nodes(), g.attr_dim(), 32, 2, &rng);
  for (auto _ : state) {
    models::GnnOutput out = enc.Encode(g);
    benchmark::DoNotOptimize(out.readout.value().data());
  }
}
BENCHMARK(BM_GarciaEncoderForward)->Arg(500)->Arg(2000);

void BM_GarciaEncoderBackward(benchmark::State& state) {
  const size_t queries = static_cast<size_t>(state.range(0));
  core::Rng rng(6);
  graph::SearchGraph g = MakeBenchGraph(queries, queries / 4, queries * 4);
  models::GarciaGnnEncoder enc(g.num_nodes(), g.attr_dim(), 32, 2, &rng);
  auto params = enc.Parameters();
  for (auto _ : state) {
    for (auto& p : params) p.ZeroGrad();
    nn::Tensor loss = nn::MeanAll(enc.Encode(g).readout);
    loss.Backward();
    benchmark::DoNotOptimize(loss.scalar());
  }
}
BENCHMARK(BM_GarciaEncoderBackward)->Arg(500)->Arg(2000);

void BM_InfoNceForwardBackward(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  core::Rng rng(7);
  nn::Tensor a = nn::Tensor::Leaf(core::Matrix::Randn(batch, 32, &rng), true);
  nn::Tensor c = nn::Tensor::Leaf(core::Matrix::Randn(batch, 32, &rng), true);
  std::vector<uint32_t> targets(batch);
  for (size_t i = 0; i < batch; ++i) targets[i] = static_cast<uint32_t>(i);
  for (auto _ : state) {
    a.ZeroGrad();
    c.ZeroGrad();
    nn::Tensor loss = nn::InfoNce(a, c, targets, 0.1f);
    loss.Backward();
    benchmark::DoNotOptimize(loss.scalar());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch *
                          batch);
}
BENCHMARK(BM_InfoNceForwardBackward)->Arg(256)->Arg(1024);

void BM_TopKRetrieval(benchmark::State& state) {
  const size_t services = static_cast<size_t>(state.range(0));
  core::Rng rng(8);
  core::Matrix cands = core::Matrix::Randn(services, 64, &rng);
  core::Matrix query = core::Matrix::Randn(1, 64, &rng);
  for (auto _ : state) {
    auto top = serving::TopKInnerProduct(query.row(0), 64, cands, 10);
    benchmark::DoNotOptimize(top.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          services);
}
BENCHMARK(BM_TopKRetrieval)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace garcia

BENCHMARK_MAIN();
