// Kernel microbenchmarks (google-benchmark): the hot paths of training and
// serving — GEMM, segment ops, the GARCIA encoder layer, InfoNCE
// forward+backward, and top-K embedding retrieval — plus a thread sweep of
// the execution-layer kernels.
//
// `micro_kernels --speedup_json` skips google-benchmark and instead times
// GEMM (all four transpose variants, at GARCIA-shaped sizes) and the
// segment kernels at 1, 2, 4 and hardware_concurrency threads, emitting a
// JSON speedup table (serial wall-clock / threaded wall-clock) to stdout
// AND to BENCH_kernels.json in the working directory. Speedups are
// hardware-dependent: on a multi-core box GEMM at 512^3 should clear 2x at
// 4 threads; a single-core container reports ~1x and the serial wall-clock
// column is the meaningful axis. GARCIA_BENCH_REPEATS overrides the
// median-of-5 repeat count (the ASan smoke in scripts/check.sh uses 1).
//
// `micro_kernels --sample_json` times one GARCIA finetune step on the full
// graph against the block-sampled step (TrainConfig::sample_fanout,
// DESIGN.md §5e) and emits the speedup as JSON; on the small bench scale
// the minibatch step should clear 2x.
//
// `micro_kernels --fusion_json` times a representative captured
// elementwise→L2-normalize→softmax chain (DESIGN.md §5i) eager vs fused at
// 1, 2 and 4 threads — forward-only and a full forward+backward tape step —
// and writes the speedup table to stdout AND BENCH_fusion.json. Fused
// execution is bit-identical to eager, so the table is pure perf: the
// single-thread forward speedup should clear 1.3x (fusion removes one full
// memory round-trip per captured op).
//
// `micro_kernels --pipeline_json` times a full GARCIA Fit (pretrain +
// finetune, sampled mode) barriered (pipeline_depth 0) against pipelined
// (depth 1) at 1, 2 and 4 threads and writes the step-speedup table to
// stdout AND BENCH_pipeline.json. The table carries a bit-identity gate:
// every run's test scores must match the serial barriered reference
// exactly (DESIGN.md §5j); the exit code is non-zero if any cell diverges.
//
// `micro_kernels --dump_dot` runs one fusion-enabled GARCIA encoder step
// and prints the captured op graph as Graphviz dot (OpGraph::DumpDot),
// chains colored by fusion group.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/string_util.h"

#include "core/kernels.h"
#include "core/matrix.h"
#include "core/rng.h"
#include "data/scenario.h"
#include "models/garcia_model.h"
#include "models/gnn_encoder.h"
#include "nn/loss.h"
#include "nn/op_graph.h"
#include "nn/ops.h"
#include "serving/ranking_service.h"

namespace garcia {
namespace {

/// Thread counts for the sweep benchmarks: {1, 2, 4, hw}, deduped.
std::vector<int64_t> SweepThreadCounts() {
  std::vector<int64_t> counts = {1, 2, 4};
  const int64_t hw =
      static_cast<int64_t>(std::max(1u, std::thread::hardware_concurrency()));
  if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
    counts.push_back(hw);
  }
  return counts;
}

void BM_Gemm(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  core::Rng rng(1);
  core::Matrix a = core::Matrix::Randn(n, n, &rng);
  core::Matrix b = core::Matrix::Randn(n, n, &rng);
  core::Matrix c(n, n);
  for (auto _ : state) {
    core::Matrix::Gemm(false, false, 1.0f, a, b, 0.0f, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n *
                          n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_SegmentSoftmax(benchmark::State& state) {
  const size_t edges = static_cast<size_t>(state.range(0));
  const size_t segments = edges / 8;
  core::Rng rng(2);
  std::vector<uint32_t> seg(edges);
  for (auto& s : seg) {
    s = static_cast<uint32_t>(rng.UniformInt(static_cast<uint64_t>(segments)));
  }
  nn::Tensor scores =
      nn::Tensor::Constant(core::Matrix::Randn(edges, 1, &rng));
  for (auto _ : state) {
    nn::Tensor out = nn::SegmentSoftmax(scores, seg, segments);
    benchmark::DoNotOptimize(out.value().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * edges);
}
BENCHMARK(BM_SegmentSoftmax)->Arg(10000)->Arg(100000);

void BM_SegmentSum(benchmark::State& state) {
  const size_t edges = static_cast<size_t>(state.range(0));
  const size_t segments = edges / 8;
  core::Rng rng(3);
  std::vector<uint32_t> seg(edges);
  for (auto& s : seg) {
    s = static_cast<uint32_t>(rng.UniformInt(static_cast<uint64_t>(segments)));
  }
  nn::Tensor x = nn::Tensor::Constant(core::Matrix::Randn(edges, 32, &rng));
  for (auto _ : state) {
    nn::Tensor out = nn::SegmentSum(x, seg, segments);
    benchmark::DoNotOptimize(out.value().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * edges);
}
BENCHMARK(BM_SegmentSum)->Arg(10000)->Arg(100000);

graph::SearchGraph MakeBenchGraph(size_t queries, size_t services,
                                  size_t links) {
  core::Rng rng(4);
  graph::SearchGraph g(queries, services, 11);
  g.attributes() = core::Matrix::Randn(queries + services, 11, &rng);
  for (size_t i = 0; i < links; ++i) {
    g.AddLink(static_cast<uint32_t>(rng.UniformInt(uint64_t{queries})),
              static_cast<uint32_t>(rng.UniformInt(uint64_t{services})),
              graph::EdgeKind::kInteraction,
              static_cast<float>(rng.Uniform()), 0);
  }
  g.Finalize();
  return g;
}

void BM_GarciaEncoderForward(benchmark::State& state) {
  const size_t queries = static_cast<size_t>(state.range(0));
  core::Rng rng(5);
  graph::SearchGraph g = MakeBenchGraph(queries, queries / 4, queries * 4);
  models::GarciaGnnEncoder enc(g.num_nodes(), g.attr_dim(), 32, 2, &rng);
  for (auto _ : state) {
    models::GnnOutput out = enc.Encode(g);
    benchmark::DoNotOptimize(out.readout.value().data());
  }
}
BENCHMARK(BM_GarciaEncoderForward)->Arg(500)->Arg(2000);

void BM_GarciaEncoderBackward(benchmark::State& state) {
  const size_t queries = static_cast<size_t>(state.range(0));
  core::Rng rng(6);
  graph::SearchGraph g = MakeBenchGraph(queries, queries / 4, queries * 4);
  models::GarciaGnnEncoder enc(g.num_nodes(), g.attr_dim(), 32, 2, &rng);
  auto params = enc.Parameters();
  for (auto _ : state) {
    for (auto& p : params) p.ZeroGrad();
    nn::Tensor loss = nn::MeanAll(enc.Encode(g).readout);
    loss.Backward();
    benchmark::DoNotOptimize(loss.scalar());
  }
}
BENCHMARK(BM_GarciaEncoderBackward)->Arg(500)->Arg(2000);

void BM_InfoNceForwardBackward(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  core::Rng rng(7);
  nn::Tensor a = nn::Tensor::Leaf(core::Matrix::Randn(batch, 32, &rng), true);
  nn::Tensor c = nn::Tensor::Leaf(core::Matrix::Randn(batch, 32, &rng), true);
  std::vector<uint32_t> targets(batch);
  for (size_t i = 0; i < batch; ++i) targets[i] = static_cast<uint32_t>(i);
  for (auto _ : state) {
    a.ZeroGrad();
    c.ZeroGrad();
    nn::Tensor loss = nn::InfoNce(a, c, targets, 0.1f);
    loss.Backward();
    benchmark::DoNotOptimize(loss.scalar());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch *
                          batch);
}
BENCHMARK(BM_InfoNceForwardBackward)->Arg(256)->Arg(1024);

void BM_TopKRetrieval(benchmark::State& state) {
  const size_t services = static_cast<size_t>(state.range(0));
  core::Rng rng(8);
  core::Matrix cands = core::Matrix::Randn(services, 64, &rng);
  core::Matrix query = core::Matrix::Randn(1, 64, &rng);
  for (auto _ : state) {
    auto top = serving::TopKInnerProduct(query.row(0), 64, cands, 10);
    benchmark::DoNotOptimize(top.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          services);
}
BENCHMARK(BM_TopKRetrieval)->Arg(1000)->Arg(100000);

// ----- Thread sweep: execution-layer kernels -----

void BM_GemmThreads(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  core::ExecutionContext ctx(threads);
  core::Rng rng(9);
  core::Matrix a = core::Matrix::Randn(n, n, &rng);
  core::Matrix b = core::Matrix::Randn(n, n, &rng);
  core::Matrix c(n, n);
  for (auto _ : state) {
    core::kernels::Gemm(ctx, false, false, 1.0f, a, b, 0.0f, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n *
                          n);
}
BENCHMARK(BM_GemmThreads)
    ->ArgsProduct({{256, 512}, garcia::SweepThreadCounts()});

void BM_SegmentSumThreads(benchmark::State& state) {
  const size_t edges = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  const size_t segments = edges / 8;
  core::ExecutionContext ctx(threads);
  core::Rng rng(10);
  std::vector<uint32_t> seg(edges);
  for (auto& s : seg) {
    s = static_cast<uint32_t>(rng.UniformInt(static_cast<uint64_t>(segments)));
  }
  core::Matrix x = core::Matrix::Randn(edges, 32, &rng);
  core::Matrix out(segments, 32);
  for (auto _ : state) {
    core::kernels::SegmentSum(ctx, x, seg, segments, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * edges);
}
BENCHMARK(BM_SegmentSumThreads)
    ->ArgsProduct({{100000}, garcia::SweepThreadCounts()});

void BM_SegmentSoftmaxThreads(benchmark::State& state) {
  const size_t edges = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  const size_t segments = edges / 8;
  core::ExecutionContext ctx(threads);
  core::Rng rng(11);
  std::vector<uint32_t> seg(edges);
  for (auto& s : seg) {
    s = static_cast<uint32_t>(rng.UniformInt(static_cast<uint64_t>(segments)));
  }
  core::Matrix scores = core::Matrix::Randn(edges, 1, &rng);
  core::Matrix out(edges, 1);
  for (auto _ : state) {
    core::kernels::SegmentSoftmax(ctx, scores, seg, segments, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * edges);
}
BENCHMARK(BM_SegmentSoftmaxThreads)
    ->ArgsProduct({{100000}, garcia::SweepThreadCounts()});

// ----- --speedup_json: chrono-timed speedup table -----

/// Repeat count for the chrono sweeps (median-of-N). GARCIA_BENCH_REPEATS
/// overrides the default 5; the ASan smoke lane sets it to 1.
int BenchRepeats() {
  const char* env = std::getenv("GARCIA_BENCH_REPEATS");
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<int>(v);
  }
  return 5;
}

/// Median-of-repeats wall-clock seconds of fn() (one warmup call first).
template <typename Fn>
double TimeMedianSeconds(int repeats, Fn fn) {
  fn();  // warmup
  std::vector<double> secs;
  secs.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    secs.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
  std::sort(secs.begin(), secs.end());
  return secs[secs.size() / 2];
}

struct SweepEntry {
  size_t threads;
  double seconds;
};

std::string SweepJsonLine(const char* kernel, const std::string& shape,
                          const std::vector<SweepEntry>& entries, bool last) {
  std::string line = core::StrFormat(
      "    {\"kernel\": \"%s\", \"shape\": \"%s\", \"sweep\": [", kernel,
      shape.c_str());
  const double serial_secs = entries.front().seconds;
  for (size_t i = 0; i < entries.size(); ++i) {
    line += core::StrFormat(
        "%s{\"threads\": %zu, \"seconds\": %.6f, \"speedup\": %.2f}",
        i == 0 ? "" : ", ", entries[i].threads, entries[i].seconds,
        serial_secs / entries[i].seconds);
  }
  line += core::StrFormat("]}%s\n", last ? "" : ",");
  return line;
}

/// Thread sweep of one GEMM variant: C(m x n) = op(A) @ op(B) with k as the
/// contracted dimension. Operand matrices are allocated in their stored
/// (pre-op) orientation.
std::string GemmSweepLine(const char* kernel, size_t m, size_t k, size_t n,
                          bool trans_a, bool trans_b,
                          const std::vector<int64_t>& counts, int repeats,
                          core::Rng* rng, bool last) {
  core::Matrix a = trans_a ? core::Matrix::Randn(k, m, rng)
                           : core::Matrix::Randn(m, k, rng);
  core::Matrix b = trans_b ? core::Matrix::Randn(n, k, rng)
                           : core::Matrix::Randn(k, n, rng);
  core::Matrix c(m, n);
  std::vector<SweepEntry> entries;
  for (int64_t t : counts) {
    core::ExecutionContext ctx(static_cast<size_t>(t));
    entries.push_back({static_cast<size_t>(t), TimeMedianSeconds(repeats, [&] {
                         core::kernels::Gemm(ctx, trans_a, trans_b, 1.0f, a,
                                             b, 0.0f, &c);
                       })});
  }
  const std::string shape = core::StrFormat("%zux%zux%zu", m, k, n);
  return SweepJsonLine(kernel, shape, entries, last);
}

int RunSpeedupJson() {
  const std::vector<int64_t> counts = SweepThreadCounts();
  const int repeats = BenchRepeats();
  core::Rng rng(12);

  std::string json =
      core::StrFormat("{\n  \"hardware_concurrency\": %u,\n  \"results\": [\n",
                      std::thread::hardware_concurrency());

  // GEMM, all four transpose variants at GARCIA-shaped sizes:
  //   gemm_nn  512^3            — square forward-pass reference point; the
  //                               acceptance target (>= 2x at 4 threads on
  //                               multicore).
  //   gemm_nt  1024x64x1024     — InfoNCE logits A @ B^T (batch x batch from
  //                               d-dim embeddings).
  //   gemm_tn  64x32768x64      — backward dW = X^T @ dY: tiny output, huge
  //                               contracted k; parallelizes only via the
  //                               2-D tile grid.
  //   gemm_tt  512^3            — square with both operands strided.
  json += GemmSweepLine("gemm", 512, 512, 512, false, false, counts, repeats,
                        &rng, false);
  json += GemmSweepLine("gemm_nt", 1024, 64, 1024, false, true, counts,
                        repeats, &rng, false);
  json += GemmSweepLine("gemm_tn", 64, 32768, 64, true, false, counts,
                        repeats, &rng, false);
  json += GemmSweepLine("gemm_tt", 512, 512, 512, true, true, counts, repeats,
                        &rng, false);

  const size_t edges = 200000, segments = edges / 8;
  std::vector<uint32_t> seg(edges);
  for (auto& s : seg) {
    s = static_cast<uint32_t>(rng.UniformInt(static_cast<uint64_t>(segments)));
  }

  {  // SegmentSum over a LightGCN-scale edge set.
    core::Matrix x = core::Matrix::Randn(edges, 32, &rng);
    core::Matrix out(segments, 32);
    std::vector<SweepEntry> entries;
    for (int64_t t : counts) {
      core::ExecutionContext ctx(static_cast<size_t>(t));
      entries.push_back({static_cast<size_t>(t),
                         TimeMedianSeconds(repeats, [&] {
                           core::kernels::SegmentSum(ctx, x, seg, segments,
                                                     &out);
                         })});
    }
    json += SweepJsonLine("segment_sum", "200000x32/25000", entries, false);
  }

  {  // SegmentSoftmax over the same segment structure.
    core::Matrix scores = core::Matrix::Randn(edges, 1, &rng);
    core::Matrix out(edges, 1);
    std::vector<SweepEntry> entries;
    for (int64_t t : counts) {
      core::ExecutionContext ctx(static_cast<size_t>(t));
      entries.push_back({static_cast<size_t>(t),
                         TimeMedianSeconds(repeats, [&] {
                           core::kernels::SegmentSoftmax(ctx, scores, seg,
                                                         segments, &out);
                         })});
    }
    json += SweepJsonLine("segment_softmax", "200000/25000", entries, true);
  }

  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen("BENCH_kernels.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "Wrote BENCH_kernels.json\n");
  } else {
    std::fprintf(stderr, "Could not write BENCH_kernels.json\n");
  }
  return 0;
}

// ----- --sample_json: minibatch vs full-graph encode step -----

/// Times one GARCIA finetune step (encode + batch loss + backward) on the
/// full graph against the same step over a NeighborSampler block seeded by
/// the batch rows (DESIGN.md §5e), emitting a JSON speedup record. The
/// graph matches the small bench preset scale.
int RunSampleJson() {
  core::Rng rng(13);
  const size_t queries = 8000, services = 2000, links = 40000;
  graph::SearchGraph g = MakeBenchGraph(queries, services, links);
  models::GarciaGnnEncoder enc(g.num_nodes(), g.attr_dim(), 32, 2, &rng);
  auto params = enc.Parameters();

  // One step's seed frontier: the distinct query/service nodes of a
  // 256-example batch, collected exactly like the training loop does.
  const size_t batch = 256;
  graph::SeedSet seed_set(/*identity=*/false);
  for (size_t i = 0; i < batch; ++i) {
    seed_set.Map(g.QueryNode(
        static_cast<uint32_t>(rng.UniformInt(uint64_t{queries}))));
    seed_set.Map(g.ServiceNode(
        static_cast<uint32_t>(rng.UniformInt(uint64_t{services}))));
  }
  const std::vector<uint32_t>& seeds = seed_set.seeds();

  const size_t fanout = 4;
  graph::NeighborSampler sampler(&g, enc.num_layers(), fanout);
  core::Rng sample_rng(1013);

  const double full_secs = TimeMedianSeconds(5, [&] {
    for (auto& p : params) p.ZeroGrad();
    models::GnnOutput out = enc.Encode(g);
    nn::Tensor loss = nn::MeanAll(nn::GatherRows(out.readout, seeds));
    loss.Backward();
  });
  const double mini_secs = TimeMedianSeconds(5, [&] {
    for (auto& p : params) p.ZeroGrad();
    graph::Block b = sampler.Sample(seeds, &sample_rng);
    // The block readout rows are exactly the seeds, in order.
    nn::Tensor loss = nn::MeanAll(enc.EncodeBlock(g, b).readout);
    loss.Backward();
  });

  graph::Block stats = sampler.Sample(seeds, &sample_rng);
  size_t block_edges = 0;
  for (const auto& layer : stats.layers) block_edges += layer.src.size();

  std::printf(
      "{\n"
      "  \"benchmark\": \"minibatch_vs_full_encode_step\",\n"
      "  \"preset\": \"small\",\n"
      "  \"graph\": {\"nodes\": %zu, \"edges\": %zu},\n"
      "  \"batch_examples\": %zu,\n"
      "  \"seed_nodes\": %zu,\n"
      "  \"fanout\": %zu,\n"
      "  \"block\": {\"nodes\": %zu, \"edges\": %zu},\n"
      "  \"full_step_seconds\": %.6f,\n"
      "  \"minibatch_step_seconds\": %.6f,\n"
      "  \"speedup\": %.2f\n"
      "}\n",
      g.num_nodes(), g.num_edges(), batch, seeds.size(), fanout,
      stats.nodes.size(), block_edges, full_secs, mini_secs,
      full_secs / mini_secs);
  return 0;
}

// ----- --fusion_json: eager vs fused elementwise→reduction chain -----

/// Builds the representative GARCIA-style chain over leaves h, g — the
/// cheap elementwise ops of the attention/gating paths (gate product,
/// residual add, scaling, masking shift, leaky-relu scoring):
/// Mul→Add→Scale→AddScalar→LeakyRelu fused into the L2-normalize head,
/// then Relu→Scale→AddScalar fused into the softmax head. Returns the
/// softmax output (forced).
nn::Tensor FusionBenchChain(const nn::Tensor& h, const nn::Tensor& g) {
  nn::Tensor z = nn::L2NormalizeRows(nn::LeakyRelu(
      nn::AddScalar(nn::Scale(nn::Add(nn::Mul(h, g), h), 1.7159f), 0.1f)));
  nn::Tensor p = nn::SoftmaxRows(
      nn::AddScalar(nn::Scale(nn::Relu(z), 0.5f), -0.25f));
  p.value();  // force the flush inside the timed region
  return p;
}

int RunFusionJson() {
  const int repeats = BenchRepeats();
  const size_t n = 4096, d = 64;  // GARCIA encoder activation shape
  core::Rng rng(14);
  const core::Matrix hm = core::Matrix::Randn(n, d, &rng);
  const core::Matrix gm = core::Matrix::Randn(n, d, &rng);

  // Shared leaves, built once: constants for the forward-only rows, grad
  // leaves for the tape-step rows (ZeroGrad between runs, like training).
  nn::Tensor hc = nn::Tensor::Constant(hm), gc = nn::Tensor::Constant(gm);
  nn::Tensor hl = nn::Tensor::Leaf(hm, true), gl = nn::Tensor::Leaf(gm, true);

  auto forward_secs = [&](size_t threads, bool fuse) {
    core::ExecutionContext ctx(threads);
    ctx.set_fusion(fuse);
    core::ScopedExecution scope(&ctx);
    return TimeMedianSeconds(repeats, [&] { FusionBenchChain(hc, gc); });
  };
  auto step_secs = [&](size_t threads, bool fuse) {
    core::ExecutionContext ctx(threads);
    ctx.set_fusion(fuse);
    core::ScopedExecution scope(&ctx);
    return TimeMedianSeconds(repeats, [&] {
      hl.ZeroGrad();
      gl.ZeroGrad();
      nn::Tensor loss = nn::MeanAll(FusionBenchChain(hl, gl));
      loss.Backward();
    });
  };

  // The contract behind the table: fused output is bit-identical to eager.
  bool bit_identical = true;
  {
    core::ExecutionContext ctx(1);
    core::ScopedExecution scope(&ctx);
    const core::Matrix eager_p = FusionBenchChain(hc, gc).value();
    ctx.set_fusion(true);
    const core::Matrix fused_p = FusionBenchChain(hc, gc).value();
    bit_identical =
        std::memcmp(eager_p.data(), fused_p.data(),
                    eager_p.rows() * eager_p.cols() * sizeof(float)) == 0;
  }

  std::string json = core::StrFormat(
      "{\n  \"benchmark\": \"fusion_chain\",\n"
      "  \"chain\": \"mul.add.scale.add_scalar.leaky_relu->l2normalize;"
      "relu.scale.add_scalar->softmax\",\n"
      "  \"shape\": \"%zux%zu\",\n  \"bit_identical\": %s,\n"
      "  \"results\": [\n",
      n, d, bit_identical ? "true" : "false");
  double single_thread_forward_speedup = 0.0;
  const std::vector<size_t> counts = {1, 2, 4};
  for (size_t i = 0; i < counts.size(); ++i) {
    const size_t t = counts[i];
    const double fe = forward_secs(t, false), ff = forward_secs(t, true);
    const double se = step_secs(t, false), sf = step_secs(t, true);
    if (t == 1) single_thread_forward_speedup = fe / ff;
    json += core::StrFormat(
        "    {\"threads\": %zu, "
        "\"forward\": {\"eager_seconds\": %.6f, \"fused_seconds\": %.6f, "
        "\"speedup\": %.2f}, "
        "\"train_step\": {\"eager_seconds\": %.6f, \"fused_seconds\": %.6f, "
        "\"speedup\": %.2f}}%s\n",
        t, fe, ff, fe / ff, se, sf, se / sf,
        i + 1 == counts.size() ? "" : ",");
  }
  json += core::StrFormat(
      "  ],\n  \"single_thread_forward_speedup\": %.2f\n}\n",
      single_thread_forward_speedup);

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen("BENCH_fusion.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "Wrote BENCH_fusion.json\n");
  } else {
    std::fprintf(stderr, "Could not write BENCH_fusion.json\n");
  }
  return bit_identical ? 0 : 1;
}

// ----- --pipeline_json: barriered vs pipelined training step time -----

/// Small-but-real GARCIA training run for the pipeline sweep: large enough
/// that a step's planning/sampling work (the part the lookahead overlaps
/// with the previous step's GEMMs) is measurable, small enough to fit the
/// median-of-N loop.
data::ScenarioConfig PipelineBenchScenarioConfig() {
  data::ScenarioConfig cfg;
  cfg.num_queries = 1200;
  cfg.num_services = 300;
  cfg.num_intentions = 60;
  cfg.num_trees = 4;
  cfg.num_impressions = 25000;
  cfg.head_fraction = 0.06;
  return cfg;
}

models::TrainConfig PipelineBenchTrainConfig(size_t threads, size_t depth) {
  models::TrainConfig cfg;
  cfg.embedding_dim = 32;
  cfg.pretrain_epochs = 1;
  cfg.finetune_epochs = 2;
  cfg.max_batches_per_epoch = 10;
  cfg.batch_size = 512;
  cfg.cl_batch_size = 256;
  cfg.sample_fanout = 8;  // sampled mode: planning has real work to hide
  cfg.num_threads = threads;
  cfg.pipeline_depth = depth;
  return cfg;
}

int RunPipelineJson() {
  const int repeats = BenchRepeats();
  const data::Scenario scenario =
      data::GenerateScenario(PipelineBenchScenarioConfig());

  // One (threads, depth) cell: median-of-repeats Fit wall-clock plus the
  // trained model's test scores from the final run, for the identity gate.
  // Every run constructs a fresh model so the rng trajectory is the same.
  struct Cell {
    double seconds = 0.0;
    std::vector<float> scores;
  };
  auto run_cell = [&](size_t threads, size_t depth) {
    const models::TrainConfig cfg = PipelineBenchTrainConfig(threads, depth);
    Cell cell;
    std::vector<double> secs;
    for (int r = 0; r < repeats + 1; ++r) {  // first iteration is warmup
      models::GarciaModel model(cfg);
      const auto t0 = std::chrono::steady_clock::now();
      model.Fit(scenario);
      const double s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (r > 0) secs.push_back(s);
      if (r == repeats) cell.scores = model.Predict(scenario, scenario.test);
    }
    std::sort(secs.begin(), secs.end());
    cell.seconds = secs[secs.size() / 2];
    return cell;
  };

  // The gate behind the table: at every thread count the pipelined run must
  // score bit-identically to the serial barriered reference — the overlap
  // is pure scheduling, never arithmetic.
  const Cell reference = run_cell(0, 0);
  bool bit_identical = true;

  std::string json = core::StrFormat(
      "{\n  \"benchmark\": \"pipelined_training_step\",\n"
      "  \"model\": \"garcia\",\n  \"sample_fanout\": 8,\n"
      "  \"bit_identity_gate\": \"predict scores vs serial barriered\",\n"
      "  \"results\": [\n");
  double best_speedup = 0.0;
  const std::vector<size_t> counts = {1, 2, 4};
  for (size_t i = 0; i < counts.size(); ++i) {
    const size_t t = counts[i];
    const Cell barriered = run_cell(t, 0);
    const Cell pipelined = run_cell(t, 1);
    const bool cell_identical =
        barriered.scores == reference.scores &&
        pipelined.scores == reference.scores;
    bit_identical = bit_identical && cell_identical;
    const double speedup = barriered.seconds / pipelined.seconds;
    if (t >= 2) best_speedup = std::max(best_speedup, speedup);
    json += core::StrFormat(
        "    {\"threads\": %zu, \"barriered_seconds\": %.6f, "
        "\"pipelined_seconds\": %.6f, \"speedup\": %.2f, "
        "\"bit_identical\": %s}%s\n",
        t, barriered.seconds, pipelined.seconds, speedup,
        cell_identical ? "true" : "false", i + 1 == counts.size() ? "" : ",");
  }
  json += core::StrFormat(
      "  ],\n  \"bit_identical\": %s,\n"
      "  \"best_speedup_at_2plus_threads\": %.2f\n}\n",
      bit_identical ? "true" : "false", best_speedup);

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen("BENCH_pipeline.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "Wrote BENCH_pipeline.json\n");
  } else {
    std::fprintf(stderr, "Could not write BENCH_pipeline.json\n");
  }
  return bit_identical ? 0 : 1;
}

// ----- --dump_dot: Graphviz dump of a fused GARCIA encoder step -----

int RunDumpDot() {
  core::Rng rng(15);
  graph::SearchGraph g = MakeBenchGraph(120, 30, 480);
  core::ExecutionContext ctx(0);
  ctx.set_fusion(true);
  core::ScopedExecution scope(&ctx);
  models::GarciaGnnEncoder enc(g.num_nodes(), g.attr_dim(), 16, 2, &rng);
  nn::Tensor loss = nn::MeanAll(enc.Encode(g).readout);
  std::fputs(nn::OpGraph::DumpDot({loss}).c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace garcia

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--speedup_json") == 0) {
      return garcia::RunSpeedupJson();
    }
    if (std::strcmp(argv[i], "--sample_json") == 0) {
      return garcia::RunSampleJson();
    }
    if (std::strcmp(argv[i], "--fusion_json") == 0) {
      return garcia::RunFusionJson();
    }
    if (std::strcmp(argv[i], "--pipeline_json") == 0) {
      return garcia::RunPipelineJson();
    }
    if (std::strcmp(argv[i], "--dump_dot") == 0) {
      return garcia::RunDumpDot();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
