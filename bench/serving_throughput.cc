// Serving throughput & latency of the batched online path (DESIGN.md §5f):
// QPS and p50/p99 per-request latency of BatchRanker over two workloads —
// the plain EmbeddingRanker (pure top-K scoring, embarrassingly parallel)
// and the full ResilientRanker degradation chain under a fault profile
// (sequenced resolve phase + scoring outside the lock) — swept over thread
// counts, with every threaded run checked bit-identical to the serial pass.
//
// `serving_throughput --json` additionally writes the sweep to
// BENCH_serving.json in the working directory. Speedups are
// hardware-dependent: on a multi-core box the scoring-dominated workloads
// should clear 2x at 4 threads; a single-core container reports ~1x.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/matrix.h"
#include "core/rng.h"
#include "core/string_util.h"
#include "core/table.h"
#include "serving/batch_ranker.h"
#include "serving/fault_injector.h"
#include "serving/ranking_service.h"
#include "serving/resilient_ranker.h"

using namespace garcia;

namespace {

constexpr size_t kNumQueries = 4000;
constexpr size_t kNumServices = 20000;
constexpr size_t kDim = 64;
constexpr size_t kTopK = 10;
constexpr size_t kNumRequests = 4000;
constexpr uint64_t kSeed = 1234;
constexpr int kRepeats = 3;

/// Thread counts for the sweep: 0 = the serial reference path.
std::vector<size_t> SweepThreadCounts() {
  std::vector<size_t> counts = {0, 2, 4, 8};
  const size_t hw =
      static_cast<size_t>(std::max(1u, std::thread::hardware_concurrency()));
  if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
    counts.push_back(hw);
  }
  return counts;
}

struct SweepPoint {
  size_t threads = 0;
  double qps = 0.0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  bool bit_identical = true;  // vs the serial pass
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

/// Runs the request stream `kRepeats` times through a fresh BatchRanker
/// (resetting the ranker's run state each time) and keeps the fastest
/// repeat's QPS and latency profile.
SweepPoint RunSweepPoint(const std::shared_ptr<const serving::Ranker>& ranker,
                         const serving::FaultProfile* profile,
                         const std::vector<serving::ServeRequest>& requests,
                         size_t threads,
                         const std::vector<serving::RankedList>* reference,
                         std::vector<serving::RankedList>* results_out) {
  serving::ServeConfig serve;
  serve.num_threads = threads;
  serving::BatchRanker batch(ranker, serve);
  SweepPoint point;
  point.threads = threads;
  std::vector<serving::RankedList> results;
  std::vector<double> latencies;
  double best_secs = 0.0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    ranker->PrepareForRun(profile, kSeed);
    batch.Reset();
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<serving::RankedList> rep_results =
        batch.RankBatch(requests, &latencies);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (rep == 0 || secs < best_secs) {
      best_secs = secs;
      point.qps = static_cast<double>(requests.size()) / secs;
      point.p50_micros = Percentile(latencies, 0.50);
      point.p99_micros = Percentile(latencies, 0.99);
    }
    if (rep == 0) {
      results = std::move(rep_results);
    } else if (rep_results != results) {
      point.bit_identical = false;  // non-deterministic across repeats
    }
  }
  if (reference != nullptr && results != *reference) {
    point.bit_identical = false;
  }
  if (results_out != nullptr) *results_out = std::move(results);
  return point;
}

struct WorkloadResult {
  std::string name;
  std::vector<SweepPoint> sweep;
};

WorkloadResult RunWorkload(const std::string& name,
                           const std::shared_ptr<const serving::Ranker>& ranker,
                           const serving::FaultProfile* profile,
                           const std::vector<serving::ServeRequest>& requests) {
  WorkloadResult out;
  out.name = name;
  std::vector<serving::RankedList> serial_results;
  for (size_t threads : SweepThreadCounts()) {
    if (threads == 0) {
      out.sweep.push_back(RunSweepPoint(ranker, profile, requests, threads,
                                        nullptr, &serial_results));
    } else {
      out.sweep.push_back(RunSweepPoint(ranker, profile, requests, threads,
                                        &serial_results, nullptr));
    }
  }
  return out;
}

void PrintTable(const WorkloadResult& w) {
  std::printf("\nWorkload: %s\n", w.name.c_str());
  core::Table t({"Threads", "QPS", "p50 (us)", "p99 (us)", "Speedup",
                 "Bit-identical"});
  const double serial_qps = w.sweep.front().qps;
  for (const SweepPoint& p : w.sweep) {
    t.AddRow({p.threads == 0 ? "serial" : core::StrFormat("%zu", p.threads),
              core::StrFormat("%.0f", p.qps),
              core::StrFormat("%.1f", p.p50_micros),
              core::StrFormat("%.1f", p.p99_micros),
              core::StrFormat("%.2fx", p.qps / serial_qps),
              p.bit_identical ? "yes" : "NO"});
  }
  std::fputs(t.ToAscii().c_str(), stdout);
}

std::string WorkloadJson(const WorkloadResult& w, bool last) {
  const double serial_qps = w.sweep.front().qps;
  std::string json =
      core::StrFormat("    {\"workload\": \"%s\", \"sweep\": [", w.name.c_str());
  for (size_t i = 0; i < w.sweep.size(); ++i) {
    const SweepPoint& p = w.sweep[i];
    json += core::StrFormat(
        "%s{\"threads\": %zu, \"qps\": %.1f, \"p50_micros\": %.2f, "
        "\"p99_micros\": %.2f, \"speedup\": %.2f, \"bit_identical\": %s}",
        i == 0 ? "" : ", ", p.threads, p.qps, p.p50_micros, p.p99_micros,
        p.qps / serial_qps, p.bit_identical ? "true" : "false");
  }
  json += core::StrFormat("]}%s\n", last ? "" : ",");
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  bool write_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) write_json = true;
  }

  std::printf(
      "Serving throughput: batched online path over %zu requests, "
      "%zu services, dim %zu, top-%zu.\n",
      kNumRequests, kNumServices, kDim, kTopK);

  core::Rng rng(kSeed);
  core::Matrix query_emb = core::Matrix::Randn(kNumQueries, kDim, &rng);
  core::Matrix service_emb = core::Matrix::Randn(kNumServices, kDim, &rng);

  // Request stream: uniform queries, fixed k. Drawn once; every sweep point
  // replays the identical stream.
  std::vector<serving::ServeRequest> requests(kNumRequests);
  for (auto& r : requests) {
    r.query = static_cast<uint32_t>(rng.UniformInt(uint64_t{kNumQueries}));
    r.k = kTopK;
  }

  // Workload 1: plain embedding ranker — pure top-K scoring, no shared
  // mutable state. The upper bound on request-level parallelism.
  auto embedding = std::make_shared<serving::EmbeddingRanker>(
      serving::EmbeddingStore(query_emb), serving::EmbeddingStore(service_emb));
  WorkloadResult w_embed =
      RunWorkload("embedding", embedding, nullptr, requests);
  PrintTable(w_embed);

  // Workload 2: the full degradation chain under a 10% fault profile — the
  // sequenced resolve phase serializes fault draws and breaker updates, the
  // dominant scoring cost still overlaps across requests.
  auto resilient = std::make_shared<serving::ResilientRanker>(
      serving::EmbeddingStore(query_emb), serving::EmbeddingStore(service_emb));
  {
    // Stale snapshot: the oldest 80% of the id space.
    const size_t keep = kNumQueries * 8 / 10;
    core::Matrix stale(keep, kDim);
    for (size_t i = 0; i < keep; ++i) stale.CopyRowFrom(query_emb, i, i);
    resilient->SetStaleSnapshot(serving::EmbeddingStore(std::move(stale)));
    // Cold-start tail ids anchor onto a head query.
    std::vector<int32_t> anchors(kNumQueries, -1);
    for (size_t q = keep; q < kNumQueries; ++q) {
      anchors[q] = static_cast<int32_t>(q % 100);
    }
    resilient->SetHeadAnchors(std::move(anchors));
  }
  serving::FaultProfile profile;
  profile.seed = 97;
  profile.lookup_failure_rate = 0.10;
  profile.missing_id_rate = 0.05;
  profile.bit_flip_rate = 0.025;
  profile.latency_spike_rate = 0.025;
  WorkloadResult w_res =
      RunWorkload("resilient_chain", resilient, &profile, requests);
  PrintTable(w_res);

  std::printf(
      "\nParallel runs are bit-identical to serial by construction; speedup "
      "is hardware-dependent (hardware_concurrency here: %u).\n",
      std::thread::hardware_concurrency());

  if (write_json) {
    std::string json = core::StrFormat(
        "{\n  \"benchmark\": \"serving_throughput\",\n"
        "  \"hardware_concurrency\": %u,\n"
        "  \"num_requests\": %zu,\n  \"num_services\": %zu,\n"
        "  \"dim\": %zu,\n  \"top_k\": %zu,\n  \"workloads\": [\n",
        std::thread::hardware_concurrency(), kNumRequests, kNumServices, kDim,
        kTopK);
    json += WorkloadJson(w_embed, false);
    json += WorkloadJson(w_res, true);
    json += "  ]\n}\n";
    std::FILE* f = std::fopen("BENCH_serving.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_serving.json\n");
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("Wrote BENCH_serving.json\n");
  }
  return 0;
}
