// Extension bench: multi-group frequency split analysis — scaffolding for
// the paper's future-work direction (Sec. VI): "split queries into multiple
// groups via frequency in an adaptive manner and perform effective
// knowledge transfer between query groups with different frequencies".
//
// For K = 2..5 equal-mass frequency groups on Sep. A, reports each group's
// size / exposure share, and how many cross-group KTCL anchor pairs can be
// mined between adjacent groups (each group transfers from the next more
// frequent one) versus the paper's 2-group head/tail baseline.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/string_util.h"
#include "graph/frequency_groups.h"
#include "models/contrastive.h"

using namespace garcia;

int main() {
  bench::PrintBanner("Extension: multi-group frequency split",
                     "Future-work scaffolding (Sec. VI): adaptive K-group "
                     "query split and cross-group anchor supply.");

  data::Scenario s =
      data::GeneratePreset(data::DatasetId::kSepA, bench::BenchScale());

  {
    models::KtclAnchors base = models::MineKtclAnchors(s);
    std::printf("2-group (paper head/tail) baseline: %zu head queries, "
                "%zu mined tail->head anchor pairs\n\n",
                s.split.head_queries.size(), base.size());
  }

  for (size_t k = 2; k <= 5; ++k) {
    graph::FrequencyGroups groups =
        graph::FrequencyGroups::ByGeometricCount(s.query_exposure, k);
    auto shares = groups.MassShares(s.query_exposure);
    std::printf("--- K = %zu geometric-count groups ---\n", k);
    core::Table t({"Group", "# Queries", "Exposure share",
                   "Anchors from group above"});
    size_t total_anchors = 0;
    for (size_t g = 0; g < groups.num_groups(); ++g) {
      size_t anchors = 0;
      if (g > 0) {
        anchors = models::MineCrossGroupAnchors(s, groups.groups[g],
                                                groups.groups[g - 1])
                      .size();
        total_anchors += anchors;
      }
      t.AddRow({core::StrFormat("%zu", g),
                core::StrFormat("%zu", groups.groups[g].size()),
                bench::Pct(shares[g]),
                g == 0 ? "-" : core::StrFormat("%zu", anchors)});
    }
    std::fputs(t.ToAscii().c_str(), stdout);
    std::printf("Total adjacent-group anchor pairs: %zu\n\n", total_anchors);
  }

  std::printf(
      "Reading: finer splits route each query to a frequency-closer donor "
      "group. The anchor supply stays healthy as K grows, supporting the "
      "paper's proposed direction; plugging the K-way split into the dual-"
      "encoder architecture is the remaining (model-side) future work.\n");
  return 0;
}
