// Extension bench: ablations of design choices called out in DESIGN.md §5
// that the paper does not sweep explicitly.
//
//  A. Attention vs uniform aggregation in the GARCIA encoder (Eq. 2's
//     alpha): learned attention against 1/deg mean aggregation.
//  B. Offline scoring head: the MLP of Eq. 12 vs the inner-product head the
//     paper deploys online (Sec. V-F1) — quantifying the accuracy the
//     deployment trades for retrieval speed.
//  C. KTCL anchor mining relevance: token Jaccard vs the character-n-gram
//     text encoder (the paper's future-work "text mining module" slot).

#include <cstdio>

#include "bench/bench_common.h"
#include "models/contrastive.h"
#include "models/garcia_model.h"

using namespace garcia;

int main() {
  bench::PrintBanner("Extension ablations",
                     "Design-choice ablations on Sep. A: attention, scoring "
                     "head, KTCL mining relevance.");

  data::Scenario s =
      data::GeneratePreset(data::DatasetId::kSepA, bench::BenchScale());

  core::Table t({"Variant", "Tail AUC", "Overall AUC"});
  struct V {
    const char* name;
    bool attention;
    bool inner_product;
    bool ngram;
  };
  const V variants[] = {
      {"GARCIA (attention, MLP head, jaccard)", true, false, false},
      {"A: uniform 1/deg aggregation", false, false, false},
      {"B: inner-product head", true, true, false},
      {"C: n-gram mining", true, false, true},
  };
  for (const V& v : variants) {
    auto cfg = bench::PresetTrainConfig(data::DatasetId::kSepA);
    cfg.use_attention = v.attention;
    cfg.inner_product_head = v.inner_product;
    cfg.ktcl_ngram_mining = v.ngram;
    models::GarciaModel model(cfg);
    model.Fit(s);
    auto m = models::EvaluateModel(&model, s, s.test);
    t.AddNumericRow(v.name, {m.tail.auc, m.overall.auc}, 4);
    std::fflush(stdout);
  }
  std::fputs(t.ToAscii().c_str(), stdout);

  // Mining statistics for variant C.
  models::KtclAnchors jac = models::MineKtclAnchors(
      s, models::KtclRelevance::kTokenJaccard);
  models::KtclAnchors ngram = models::MineKtclAnchors(
      s, models::KtclRelevance::kNgramCosine);
  size_t agree = 0, common = 0;
  for (size_t i = 0, j = 0; i < jac.size() && j < ngram.size();) {
    if (jac.tail_query[i] == ngram.tail_query[j]) {
      agree += jac.head_query[i] == ngram.head_query[j];
      ++common;
      ++i;
      ++j;
    } else if (jac.tail_query[i] < ngram.tail_query[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  std::printf("\nKTCL mining: %zu pairs (jaccard) vs %zu pairs (n-gram); "
              "same head chosen for %zu of %zu shared tails.\n",
              jac.size(), ngram.size(), agree, common);
  std::printf(
      "\nExpectations: attention >= uniform aggregation (the paper argues "
      "neighbors 'should be carefully weighted', Sec. V-C); the MLP head "
      ">= inner product offline (the deployment trades accuracy for "
      "retrieval latency); n-gram mining finds at least as many anchor "
      "pairs as Jaccard.\n");
  return 0;
}
