// Regenerates Fig. 5: sensitivity of the SECL weight alpha in the
// pre-training objective (Eq. 11), on Sep. A.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/string_util.h"
#include "models/garcia_model.h"

using namespace garcia;

int main() {
  bench::PrintBanner("Figure 5",
                     "Balance factor alpha (SECL weight) sweep on Sep. A.");

  data::Scenario s =
      data::GeneratePreset(data::DatasetId::kSepA, bench::BenchScale());
  core::Table t({"alpha", "Tail AUC", "Overall AUC"});
  for (float alpha : {0.0f, 0.1f, 0.2f, 0.3f, 0.4f, 0.5f}) {
    auto cfg = bench::PresetTrainConfig(data::DatasetId::kSepA);
    cfg.alpha = alpha;
    cfg.use_secl = alpha > 0.0f;
    models::GarciaModel model(cfg);
    model.Fit(s);
    auto m = models::EvaluateModel(&model, s, s.test);
    t.AddNumericRow(core::FormatFixed(alpha, 1), {m.tail.auc, m.overall.auc},
                    4);
    std::fflush(stdout);
  }
  std::fputs(t.ToAscii().c_str(), stdout);

  std::printf(
      "\nPaper reference (Fig. 5): worst at alpha=0 (no SECL); optimum in "
      "0.1-0.3; large alpha degrades sharply (alpha>0.5 'always yields "
      "relatively poor performance').\n");
  return 0;
}
