// Long-tail deep dive: shows the mechanics GARCIA uses to move knowledge
// from head to tail queries.
//
//   ./build/examples/longtail_knowledge_transfer
//
// Prints (1) the traffic skew, (2) examples of mined KTCL anchor pairs with
// the criteria that selected them, and (3) how much pre-training pulls each
// tail query's embedding toward its head anchor (cosine before/after).

#include <cmath>
#include <cstdio>

#include "core/string_util.h"
#include "data/scenario.h"
#include "models/contrastive.h"
#include "models/garcia_model.h"

using namespace garcia;

namespace {

double RowCosine(const core::Matrix& a, size_t i, const core::Matrix& b,
                 size_t j) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t k = 0; k < a.cols(); ++k) {
    dot += static_cast<double>(a.at(i, k)) * b.at(j, k);
    na += static_cast<double>(a.at(i, k)) * a.at(i, k);
    nb += static_cast<double>(b.at(j, k)) * b.at(j, k);
  }
  const double d = std::sqrt(na) * std::sqrt(nb);
  return d > 1e-12 ? dot / d : 0.0;
}

double MeanAnchorCosine(models::GarciaModel* model,
                        const data::Scenario& s,
                        const models::KtclAnchors& anchors) {
  core::Matrix q = model->ExportQueryEmbeddings(s);
  double total = 0.0;
  for (size_t i = 0; i < anchors.size(); ++i) {
    total += RowCosine(q, anchors.tail_query[i], q, anchors.head_query[i]);
  }
  return anchors.size() ? total / anchors.size() : 0.0;
}

}  // namespace

int main() {
  data::ScenarioConfig cfg;
  cfg.name = "longtail-demo";
  cfg.num_queries = 800;
  cfg.num_services = 250;
  cfg.num_intentions = 120;
  cfg.num_trees = 8;
  cfg.num_impressions = 40000;
  data::Scenario s = data::GenerateScenario(cfg);

  // (1) Traffic skew: the phenomenon that motivates the paper.
  uint64_t total_pv = 0, head_pv = 0;
  for (uint32_t q = 0; q < s.num_queries(); ++q) {
    total_pv += s.query_exposure[q];
    if (s.split.is_head[q]) head_pv += s.query_exposure[q];
  }
  std::printf("Traffic skew: %zu head queries (%.1f%% of queries) receive "
              "%.1f%% of %llu impressions\n",
              s.split.head_queries.size(),
              100.0 * s.split.head_queries.size() / s.num_queries(),
              100.0 * head_pv / total_pv,
              static_cast<unsigned long long>(total_pv));

  // (2) KTCL anchor mining: most-relevant head per tail, sharing a
  // correlation, exposure as the tie-break (Sec. IV-B1).
  models::KtclAnchors anchors = models::MineKtclAnchors(s);
  std::printf("\nKTCL mined %zu anchor pairs. Examples:\n", anchors.size());
  for (size_t i = 0; i < anchors.size() && i < 5; ++i) {
    const uint32_t t = anchors.tail_query[i];
    const uint32_t h = anchors.head_query[i];
    std::printf("  tail \"%s\" (exposure %llu)  <->  head \"%s\" "
                "(exposure %llu, jaccard %.2f, shared corr mask 0x%x)\n",
                s.query_text[t].c_str(),
                static_cast<unsigned long long>(s.query_exposure[t]),
                s.query_text[h].c_str(),
                static_cast<unsigned long long>(s.query_exposure[h]),
                core::TokenJaccard(s.query_text[t], s.query_text[h]),
                s.query_keys[t].SharedWith(s.query_keys[h]));
  }

  // (3) Embedding-space effect: train once without any CL and once with the
  // full multi-granularity CL, and compare tail-anchor cosine similarity.
  models::TrainConfig no_cl;
  no_cl.use_ktcl = no_cl.use_secl = no_cl.use_igcl = false;
  no_cl.pretrain_epochs = 0;
  no_cl.finetune_epochs = 4;
  no_cl.max_batches_per_epoch = 12;
  models::GarciaModel supervised(no_cl);
  supervised.Fit(s);

  models::TrainConfig with_cl = no_cl;
  with_cl.use_ktcl = with_cl.use_secl = with_cl.use_igcl = true;
  with_cl.pretrain_epochs = 4;
  models::GarciaModel contrastive(with_cl);
  contrastive.Fit(s);

  const double cos_without = MeanAnchorCosine(&supervised, s, anchors);
  const double cos_with = MeanAnchorCosine(&contrastive, s, anchors);
  std::printf("\nMean cosine(tail, head anchor) in query embedding space:\n"
              "  without CL pre-training: %.3f\n"
              "  with multi-granularity CL: %.3f\n"
              "Knowledge transfer pulls matched pairs together: %s\n",
              cos_without, cos_with, cos_with > cos_without ? "yes" : "no");

  auto m_sup = models::EvaluateModel(&supervised, s, s.test);
  auto m_cl = models::EvaluateModel(&contrastive, s, s.test);
  std::printf("\nTail AUC: %.4f (no CL) vs %.4f (full GARCIA)\n",
              m_sup.tail.auc, m_cl.tail.auc);
  return 0;
}
