// End-to-end service search pipeline, mirroring the paper's online
// deployment (Fig. 9): offline training -> daily embedding inference ->
// embedding store on disk -> online ranking module -> top-K retrieval for
// live queries, plus a simulated A/B comparison against a baseline.
//
//   ./build/examples/service_search_pipeline

#include <cstdio>

#include "data/presets.h"
#include "models/garcia_model.h"
#include "models/registry.h"
#include "serving/ab_test.h"
#include "serving/case_study.h"
#include "serving/ranking_service.h"

using namespace garcia;

int main() {
  // ---- data processing ----
  data::Scenario scenario = data::GeneratePreset(data::DatasetId::kSepA, 0.2);
  std::printf("[data] %s: %zu queries / %zu services / %zu train examples\n",
              scenario.config.name.c_str(), scenario.num_queries(),
              scenario.num_services(), scenario.train.size());

  // ---- offline training ----
  // The online variant scores with an inner product (Eq. 12's MLP is
  // replaced for efficient embedding retrieval, Sec. V-F1).
  models::TrainConfig cfg;
  cfg.inner_product_head = true;
  cfg.pretrain_epochs = 3;
  cfg.finetune_epochs = 5;
  cfg.max_batches_per_epoch = 16;
  models::GarciaModel garcia(cfg);
  garcia.Fit(scenario);
  std::printf("[train] GARCIA fitted (inner-product head)\n");

  // ---- daily embedding inference + persistence ----
  serving::EmbeddingStore query_store(garcia.ExportQueryEmbeddings(scenario));
  serving::EmbeddingStore service_store(
      garcia.ExportServiceEmbeddings(scenario));
  const std::string qpath = "/tmp/garcia_queries.emb";
  const std::string spath = "/tmp/garcia_services.emb";
  GARCIA_CHECK(query_store.Save(qpath).ok());
  GARCIA_CHECK(service_store.Save(spath).ok());
  std::printf("[infer] wrote %zu query + %zu service embeddings (dim %zu)\n",
              query_store.size(), service_store.size(), query_store.dim());

  // ---- online serving: load the stores and answer requests ----
  auto q_loaded = serving::EmbeddingStore::Load(qpath);
  auto s_loaded = serving::EmbeddingStore::Load(spath);
  GARCIA_CHECK(q_loaded.ok() && s_loaded.ok());
  serving::EmbeddingRanker ranker(std::move(q_loaded).value(),
                                  std::move(s_loaded).value());

  auto cases = serving::PickTailCaseQueries(scenario, 3);
  for (uint32_t q : cases) {
    serving::RankedList top = ranker.Rank(q, 5);
    std::printf("\n[serve] tail query %u \"%s\" -> top-5:\n", q,
                scenario.query_text[q].c_str());
    for (const auto& [svc, score] : top) {
      const auto& meta = scenario.services[svc];
      std::printf("    %-28s score=%+.3f MAU=%llu rating=%d\n",
                  meta.name.c_str(), score,
                  static_cast<unsigned long long>(meta.mau), meta.rating);
    }
  }

  // ---- A/B test against a KGAT baseline arm ----
  auto base_cfg = cfg;
  auto kgat = models::CreateModel("KGAT", base_cfg);
  kgat->Fit(scenario);
  serving::EmbeddingRanker baseline(
      serving::EmbeddingStore(kgat->ExportQueryEmbeddings(scenario)),
      serving::EmbeddingStore(kgat->ExportServiceEmbeddings(scenario)));
  serving::AbTestConfig ab;
  ab.num_days = 3;
  ab.requests_per_day = 2000;
  serving::AbTestResult r =
      serving::RunAbTest(scenario, baseline, ranker, ab);
  std::printf("\n[abtest] mean CTR improvement %+.2f%% abs, "
              "Valid CTR %+.2f%% abs over KGAT baseline\n",
              r.MeanCtrImprovement() * 100.0,
              r.MeanValidCtrImprovement() * 100.0);
  return 0;
}
