// Intention-tree explorer: builds the hierarchical intention encoder
// (Eq. 3) on a generated forest and shows how the hierarchy structures the
// embedding space — parent/child pairs end up closer than random pairs, and
// IGCL's positive chains / hard / easy negatives are printed for a sample
// query.
//
//   ./build/examples/intention_tree_explorer

#include <cmath>
#include <cstdio>

#include "data/scenario.h"
#include "models/contrastive.h"
#include "models/intention_encoder.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

using namespace garcia;

namespace {

double RowCosine(const core::Matrix& m, size_t i, size_t j) {
  double dot = 0.0, ni = 0.0, nj = 0.0;
  for (size_t k = 0; k < m.cols(); ++k) {
    dot += static_cast<double>(m.at(i, k)) * m.at(j, k);
    ni += static_cast<double>(m.at(i, k)) * m.at(i, k);
    nj += static_cast<double>(m.at(j, k)) * m.at(j, k);
  }
  const double d = std::sqrt(ni) * std::sqrt(nj);
  return d > 1e-12 ? dot / d : 0.0;
}

}  // namespace

int main() {
  data::ScenarioConfig cfg;
  cfg.num_queries = 400;
  cfg.num_services = 150;
  cfg.num_intentions = 100;
  cfg.num_trees = 6;
  cfg.num_impressions = 10000;
  data::Scenario s = data::GenerateScenario(cfg);
  const auto& forest = s.forest;

  std::printf("Forest: %zu intentions in %zu trees, %zu levels (max %d in "
              "the paper)\n\n",
              forest.size(), forest.num_trees(), forest.num_levels(), 5);

  // Print one tree.
  const uint32_t root = forest.roots()[0];
  std::printf("Tree rooted at \"%s\":\n", forest.name(root).c_str());
  struct Item {
    uint32_t id;
    size_t indent;
  };
  std::vector<Item> stack = {{root, 0}};
  size_t printed = 0;
  while (!stack.empty() && printed < 12) {
    Item it = stack.back();
    stack.pop_back();
    std::printf("  %*s- %s (depth %u)\n", static_cast<int>(2 * it.indent),
                "", forest.name(it.id).c_str(), forest.depth(it.id));
    ++printed;
    for (uint32_t c : forest.children(it.id)) stack.push_back({c, it.indent + 1});
  }

  // IGCL construction for one query.
  core::Rng rng(3);
  models::IntentionEncoder encoder(forest, 16, 5, &rng);
  const uint32_t q = 7;
  const uint32_t leaf = s.query_intent[q];
  std::printf("\nQuery %u \"%s\" attaches to intention \"%s\".\n", q,
              s.query_text[q].c_str(), forest.name(leaf).c_str());
  std::printf("IGCL positives (ancestor chain P):");
  for (uint32_t j : encoder.PositiveChain(leaf)) {
    std::printf(" \"%s\"", forest.name(j).c_str());
  }
  std::printf("\nHard negatives (same tree, same level): %zu;  easy "
              "negatives (other trees, same level): %zu\n",
              forest.HardNegatives(leaf).size(),
              forest.EasyNegatives(leaf).size());

  // Train the encoder alone with an IGCL-style objective over the forest's
  // own parent links and verify the hierarchy shows up in cosine space.
  std::vector<uint32_t> entity_intents;
  for (uint32_t id = 0; id < forest.size(); ++id) {
    if (forest.IsLeaf(id)) entity_intents.push_back(id);
  }
  nn::Adam opt(encoder.Parameters(), 0.01f);
  for (int step = 0; step < 60; ++step) {
    opt.ZeroGrad();
    models::IgclBatch batch = models::BuildIgclBatch(encoder, entity_intents);
    nn::Tensor table = encoder.Encode();
    nn::Tensor anchors = nn::GatherRows(
        nn::GatherRows(table, entity_intents), batch.anchor_rows);
    nn::Tensor cands = nn::GatherRows(table, batch.candidate_ids);
    nn::Tensor loss =
        nn::MaskedInfoNce(anchors, cands, batch.targets, batch.mask, 0.1f);
    loss.Backward();
    opt.Step();
    if (step % 20 == 0) std::printf("  step %2d IGCL loss %.3f\n", step, loss.scalar());
  }

  const core::Matrix emb = encoder.Encode().value();
  double parent_cos = 0.0, random_cos = 0.0;
  size_t n_pairs = 0;
  core::Rng pair_rng(9);
  for (uint32_t id = 0; id < forest.size(); ++id) {
    if (forest.parent(id) == intent::kNoParent) continue;
    parent_cos += RowCosine(emb, id, static_cast<uint32_t>(forest.parent(id)));
    random_cos += RowCosine(
        emb, id, pair_rng.UniformInt(static_cast<uint64_t>(forest.size())));
    ++n_pairs;
  }
  std::printf("\nAfter training: mean cosine(child, parent) = %.3f vs "
              "cosine(child, random) = %.3f -> hierarchy is encoded: %s\n",
              parent_cos / n_pairs, random_cos / n_pairs,
              parent_cos > random_cos ? "yes" : "no");
  return 0;
}
