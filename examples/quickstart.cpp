// Quickstart: generate a small service-search scenario, train GARCIA, and
// evaluate it on head / tail / overall slices.
//
//   ./build/examples/quickstart
//
// This is the minimal end-to-end path through the public API:
//   scenario -> GarciaModel::Fit -> Predict -> metrics.

#include <cstdio>

#include "data/scenario.h"
#include "models/common.h"
#include "models/garcia_model.h"

using namespace garcia;

int main() {
  // 1. Synthesize a service-search world: an intention forest, queries and
  //    services attached to it, Zipf-skewed click traffic, the service
  //    search graph, and the exposure-based head/tail split.
  data::ScenarioConfig data_cfg;
  data_cfg.name = "quickstart";
  data_cfg.num_queries = 600;
  data_cfg.num_services = 200;
  data_cfg.num_intentions = 80;
  data_cfg.num_trees = 6;
  data_cfg.num_impressions = 30000;
  data_cfg.head_fraction = 0.02;
  data::Scenario scenario = data::GenerateScenario(data_cfg);
  std::printf("Scenario: %zu queries (%zu head), %zu services, "
              "%zu train examples, graph with %zu edges, %zu intentions\n",
              scenario.num_queries(), scenario.split.head_queries.size(),
              scenario.num_services(), scenario.train.size(),
              scenario.graph.num_edges() / 2, scenario.forest.size());

  // 2. Train GARCIA: multi-granularity contrastive pre-training (KTCL +
  //    SECL + IGCL), then BCE fine-tuning (paper Sec. IV-C).
  models::TrainConfig train_cfg;
  train_cfg.embedding_dim = 32;
  train_cfg.pretrain_epochs = 3;
  train_cfg.finetune_epochs = 5;
  train_cfg.max_batches_per_epoch = 16;
  models::GarciaModel model(train_cfg);
  model.Fit(scenario);
  std::printf("Trained. KTCL mined %zu tail->head anchor pairs; final "
              "pretrain loss %.3f, finetune loss %.3f\n",
              model.num_anchor_pairs(), model.last_pretrain_loss(),
              model.last_finetune_loss());

  // 3. Evaluate on the held-out test split.
  eval::SlicedMetrics m =
      models::EvaluateModel(&model, scenario, scenario.test);
  std::printf("\n%-8s %8s %8s %8s\n", "slice", "AUC", "GAUC", "NDCG@10");
  auto row = [](const char* name, const eval::RankingMetrics& r) {
    std::printf("%-8s %8.4f %8.4f %8.4f  (%zu examples)\n", name, r.auc,
                r.gauc, r.ndcg_at_10, r.num_examples);
  };
  row("head", m.head);
  row("tail", m.tail);
  row("overall", m.overall);

  // 4. Score an individual (query, service) pair.
  data::Example probe = scenario.test.front();
  float p = model.Predict(scenario, {probe})[0];
  std::printf("\nP(click | query=%u \"%s\", service=%u \"%s\") = %.3f "
              "(label %.0f)\n",
              probe.query, scenario.query_text[probe.query].c_str(),
              probe.service, scenario.services[probe.service].name.c_str(),
              p, probe.label);
  return 0;
}
