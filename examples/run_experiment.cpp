// Command-line experiment driver: train any of the six models on any of
// the six datasets and report sliced metrics — the fastest way to poke at
// the system without writing code.
//
//   ./build/examples/run_experiment [--model GARCIA] [--dataset "Sep. A"]
//       [--scale 0.4] [--dim 32] [--epochs 10] [--pretrain 4] [--seed 7]
//       [--fanout 0] [--threads 0] [--share] [--no-ktcl] [--no-secl]
//       [--no-igcl] [--tree-levels 5] [--list]
//
// Examples:
//   run_experiment --model LightGCN --dataset Music
//   run_experiment --model GARCIA --share --dataset "Sep. B" --scale 0.25
//   run_experiment --model GARCIA --fanout 4   # minibatch sampled blocks

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "data/presets.h"
#include "models/registry.h"

using namespace garcia;

namespace {

void PrintUsageAndExit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--model NAME] [--dataset NAME] [--scale F] "
               "[--dim N] [--epochs N] [--pretrain N] [--seed N] "
               "[--fanout N] [--threads N] [--share] [--no-ktcl] "
               "[--no-secl] [--no-igcl] [--tree-levels N] [--list]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_name = "GARCIA";
  std::string dataset_name = "Sep. A";
  double scale = 0.4;
  models::TrainConfig cfg;
  cfg.pretrain_epochs = 4;
  cfg.finetune_epochs = 10;
  cfg.max_batches_per_epoch = 20;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        PrintUsageAndExit(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--model")) {
      model_name = need_value("--model");
    } else if (!std::strcmp(argv[i], "--dataset")) {
      dataset_name = need_value("--dataset");
    } else if (!std::strcmp(argv[i], "--scale")) {
      scale = std::atof(need_value("--scale"));
    } else if (!std::strcmp(argv[i], "--dim")) {
      cfg.embedding_dim = static_cast<size_t>(std::atoi(need_value("--dim")));
    } else if (!std::strcmp(argv[i], "--epochs")) {
      cfg.finetune_epochs =
          static_cast<size_t>(std::atoi(need_value("--epochs")));
    } else if (!std::strcmp(argv[i], "--pretrain")) {
      cfg.pretrain_epochs =
          static_cast<size_t>(std::atoi(need_value("--pretrain")));
    } else if (!std::strcmp(argv[i], "--seed")) {
      cfg.seed = static_cast<uint64_t>(std::atoll(need_value("--seed")));
    } else if (!std::strcmp(argv[i], "--fanout")) {
      cfg.sample_fanout =
          static_cast<size_t>(std::atoi(need_value("--fanout")));
    } else if (!std::strcmp(argv[i], "--threads")) {
      cfg.num_threads =
          static_cast<size_t>(std::atoi(need_value("--threads")));
    } else if (!std::strcmp(argv[i], "--tree-levels")) {
      cfg.tree_levels =
          static_cast<size_t>(std::atoi(need_value("--tree-levels")));
    } else if (!std::strcmp(argv[i], "--share")) {
      cfg.share_encoders = true;
    } else if (!std::strcmp(argv[i], "--no-ktcl")) {
      cfg.use_ktcl = false;
    } else if (!std::strcmp(argv[i], "--no-secl")) {
      cfg.use_secl = false;
    } else if (!std::strcmp(argv[i], "--no-igcl")) {
      cfg.use_igcl = false;
    } else if (!std::strcmp(argv[i], "--list")) {
      std::printf("models:");
      for (const auto& m : models::AllModelNames()) {
        std::printf(" \"%s\"", m.c_str());
      }
      std::printf("\ndatasets:");
      for (auto id : data::AllDatasets()) {
        std::printf(" \"%s\"", data::DatasetName(id).c_str());
      }
      std::printf("\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      PrintUsageAndExit(argv[0]);
    }
  }

  // Resolve the dataset.
  data::DatasetId dataset = data::DatasetId::kSepA;
  bool found = false;
  for (auto id : data::AllDatasets()) {
    if (data::DatasetName(id) == dataset_name) {
      dataset = id;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown dataset \"%s\" (try --list)\n",
                 dataset_name.c_str());
    return 2;
  }
  bool model_ok = false;
  for (const auto& m : models::AllModelNames()) model_ok |= m == model_name;
  if (!model_ok) {
    std::fprintf(stderr, "unknown model \"%s\" (try --list)\n",
                 model_name.c_str());
    return 2;
  }

  std::printf("dataset=%s scale=%.2f model=%s dim=%zu pretrain=%zu "
              "epochs=%zu seed=%llu fanout=%zu threads=%zu\n",
              dataset_name.c_str(), scale, model_name.c_str(),
              cfg.embedding_dim, cfg.pretrain_epochs, cfg.finetune_epochs,
              static_cast<unsigned long long>(cfg.seed), cfg.sample_fanout,
              cfg.num_threads);

  data::Scenario s = data::GeneratePreset(dataset, scale);
  std::printf("generated: %zu queries / %zu services / %zu train examples / "
              "%zu graph links\n",
              s.num_queries(), s.num_services(), s.train.size(),
              s.graph.num_edges() / 2);

  auto model = models::CreateModel(model_name, cfg);
  model->Fit(s);
  auto m = models::EvaluateModel(model.get(), s, s.test);
  std::printf("\n%-8s %8s %8s %8s\n", "slice", "AUC", "GAUC", "NDCG@10");
  auto row = [](const char* name, const eval::RankingMetrics& r) {
    std::printf("%-8s %8.4f %8.4f %8.4f\n", name, r.auc, r.gauc,
                r.ndcg_at_10);
  };
  row("head", m.head);
  row("tail", m.tail);
  row("overall", m.overall);
  return 0;
}
