// Fault-tolerant online serving demo (ISSUE 1).
//
// Builds a small scenario, wraps an embedding ranker in the full GARCIA
// degradation chain (fresh dump -> stale snapshot -> mined head anchor ->
// text encoder -> popularity prior), injects an aggressive fault mix, and
// shows that (a) every request is answered, (b) the health counters expose
// what the chain absorbed, and (c) a fixed seed replays bit-identically.

#include <cstdio>
#include <memory>

#include "core/logging.h"
#include "core/rng.h"
#include "models/contrastive.h"
#include "serving/resilient_ranker.h"

using namespace garcia;

namespace {

serving::RankedList ServeTraffic(const serving::ResilientRanker& ranker,
                                 size_t num_requests, size_t num_queries) {
  // Concatenated top-3 lists of a deterministic query sweep; the return
  // value doubles as a replay fingerprint.
  serving::RankedList fingerprint;
  core::Rng traffic(123);
  for (size_t r = 0; r < num_requests; ++r) {
    const uint32_t q = static_cast<uint32_t>(traffic.UniformInt(
        static_cast<uint64_t>(num_queries + 20)));  // some ids are unknown
    serving::RankedList top = ranker.Rank(q, 3);
    fingerprint.insert(fingerprint.end(), top.begin(), top.end());
  }
  return fingerprint;
}

}  // namespace

int main() {
  data::ScenarioConfig cfg;
  cfg.num_queries = 300;
  cfg.num_services = 100;
  cfg.num_intentions = 50;
  cfg.num_trees = 5;
  cfg.num_impressions = 12000;
  cfg.head_fraction = 0.05;
  data::Scenario s = data::GenerateScenario(cfg);

  // Stand-in embeddings (a real deployment loads the daily dump).
  core::Rng rng(7);
  core::Matrix query_emb = core::Matrix::Randn(s.num_queries(), 16, &rng);
  core::Matrix service_emb = core::Matrix::Randn(s.num_services(), 16, &rng);

  // Yesterday's snapshot misses the newest 20% of query ids.
  const size_t stale_rows = s.num_queries() * 8 / 10;
  core::Matrix stale(stale_rows, 16);
  for (size_t i = 0; i < stale_rows; ++i) stale.CopyRowFrom(query_emb, i, i);

  serving::ResilientRanker ranker{serving::EmbeddingStore(query_emb),
                                  serving::EmbeddingStore(service_emb)};
  ranker.SetStaleSnapshot(serving::EmbeddingStore(std::move(stale)));
  ranker.SetHeadAnchors(
      models::AnchorHeadOf(models::MineKtclAnchors(s), s.num_queries()));
  std::vector<std::string> service_names;
  std::vector<double> popularity;
  for (const auto& meta : s.services) {
    service_names.push_back(meta.name);
    popularity.push_back(static_cast<double>(meta.mau));
  }
  ranker.SetTextFallback(
      std::make_shared<serving::TextRanker>(s.query_text, service_names));
  ranker.SetPopularityFallback(
      std::make_shared<serving::PopularityRanker>(popularity));

  serving::FaultProfile profile;
  profile.seed = 2024;
  profile.lookup_failure_rate = 0.20;
  profile.missing_id_rate = 0.10;
  profile.bit_flip_rate = 0.05;
  profile.latency_spike_rate = 0.05;

  const size_t kRequests = 2000;
  ranker.PrepareForRun(&profile, 1);
  serving::RankedList run1 = ServeTraffic(ranker, kRequests, s.num_queries());
  const serving::ServingHealth health = ranker.health();

  std::printf("Served %llu/%zu requests under a 20%% failure / 10%% miss / "
              "5%% bit-flip / 5%% spike fault mix.\n\n",
              static_cast<unsigned long long>(health.requests), kRequests);
  std::printf("Health: %s\n", health.ToString().c_str());
  std::printf("Breaker state after run: %s\n",
              serving::BreakerStateName(ranker.breaker_state()));
  std::printf("Simulated serving time: %.1f ms\n\n",
              static_cast<double>(ranker.clock_micros()) / 1000.0);
  health.Log();

  // Deterministic replay: same profile + seed => bit-identical results.
  ranker.PrepareForRun(&profile, 1);
  serving::RankedList run2 = ServeTraffic(ranker, kRequests, s.num_queries());
  std::printf("Replay with the same seed is bit-identical: %s\n",
              run1 == run2 ? "yes" : "NO (bug!)");
  return run1 == run2 ? 0 : 1;
}
