// Fault-tolerant online serving demo (ISSUE 1, batched in ISSUE 4).
//
// Builds a small scenario, wraps an embedding ranker in the full GARCIA
// degradation chain (fresh dump -> stale snapshot -> mined head anchor ->
// text encoder -> popularity prior), injects an aggressive fault mix, and
// serves the traffic through the batched path (serving::BatchRanker). It
// shows that (a) every request is answered, (b) the health counters expose
// what the chain absorbed, (c) a fixed seed replays bit-identically, and
// (d) serving the same stream on 4 threads returns bit-identical results.

#include <cstdio>
#include <memory>

#include "core/logging.h"
#include "core/rng.h"
#include "models/contrastive.h"
#include "serving/batch_ranker.h"
#include "serving/resilient_ranker.h"

using namespace garcia;

namespace {

/// The demo's deterministic traffic: a seeded query sweep including some
/// ids past the end of the embedding table (unknown / cold-start).
std::vector<serving::ServeRequest> MakeTraffic(size_t num_requests,
                                               size_t num_queries) {
  std::vector<serving::ServeRequest> requests(num_requests);
  core::Rng traffic(123);
  for (auto& r : requests) {
    r.query = static_cast<uint32_t>(
        traffic.UniformInt(static_cast<uint64_t>(num_queries + 20)));
    r.k = 3;
  }
  return requests;
}

serving::RankedList ServeTraffic(
    std::shared_ptr<const serving::ResilientRanker> ranker,
    const std::vector<serving::ServeRequest>& requests, size_t num_threads) {
  serving::ServeConfig serve;
  serve.num_threads = num_threads;
  serving::BatchRanker batch(std::move(ranker), serve);
  // Concatenated top-3 lists; the return value doubles as a replay
  // fingerprint.
  serving::RankedList fingerprint;
  for (const serving::RankedList& top : batch.RankBatch(requests)) {
    fingerprint.insert(fingerprint.end(), top.begin(), top.end());
  }
  return fingerprint;
}

}  // namespace

int main() {
  data::ScenarioConfig cfg;
  cfg.num_queries = 300;
  cfg.num_services = 100;
  cfg.num_intentions = 50;
  cfg.num_trees = 5;
  cfg.num_impressions = 12000;
  cfg.head_fraction = 0.05;
  data::Scenario s = data::GenerateScenario(cfg);

  // Stand-in embeddings (a real deployment loads the daily dump).
  core::Rng rng(7);
  core::Matrix query_emb = core::Matrix::Randn(s.num_queries(), 16, &rng);
  core::Matrix service_emb = core::Matrix::Randn(s.num_services(), 16, &rng);

  // Yesterday's snapshot misses the newest 20% of query ids.
  const size_t stale_rows = s.num_queries() * 8 / 10;
  core::Matrix stale(stale_rows, 16);
  for (size_t i = 0; i < stale_rows; ++i) stale.CopyRowFrom(query_emb, i, i);

  auto ranker_ptr = std::make_shared<serving::ResilientRanker>(
      serving::EmbeddingStore(query_emb), serving::EmbeddingStore(service_emb));
  serving::ResilientRanker& ranker = *ranker_ptr;
  ranker.SetStaleSnapshot(serving::EmbeddingStore(std::move(stale)));
  ranker.SetHeadAnchors(
      models::AnchorHeadOf(models::MineKtclAnchors(s), s.num_queries()));
  std::vector<std::string> service_names;
  std::vector<double> popularity;
  for (const auto& meta : s.services) {
    service_names.push_back(meta.name);
    popularity.push_back(static_cast<double>(meta.mau));
  }
  ranker.SetTextFallback(
      std::make_shared<serving::TextRanker>(s.query_text, service_names));
  ranker.SetPopularityFallback(
      std::make_shared<serving::PopularityRanker>(popularity));

  serving::FaultProfile profile;
  profile.seed = 2024;
  profile.lookup_failure_rate = 0.20;
  profile.missing_id_rate = 0.10;
  profile.bit_flip_rate = 0.05;
  profile.latency_spike_rate = 0.05;

  const size_t kRequests = 2000;
  const std::vector<serving::ServeRequest> traffic =
      MakeTraffic(kRequests, s.num_queries());

  ranker.PrepareForRun(&profile, 1);
  serving::RankedList run1 = ServeTraffic(ranker_ptr, traffic, /*threads=*/0);
  const serving::ServingHealth health = ranker.health();

  std::printf("Served %llu/%zu requests under a 20%% failure / 10%% miss / "
              "5%% bit-flip / 5%% spike fault mix.\n\n",
              static_cast<unsigned long long>(health.requests), kRequests);
  std::printf("Health: %s\n", health.ToString().c_str());
  std::printf("Breaker state after run: %s\n",
              serving::BreakerStateName(ranker.breaker_state()));
  std::printf("Simulated serving time: %.1f ms\n\n",
              static_cast<double>(ranker.clock_micros()) / 1000.0);
  health.Log();

  // Deterministic replay: same profile + seed => bit-identical results.
  ranker.PrepareForRun(&profile, 1);
  serving::RankedList run2 = ServeTraffic(ranker_ptr, traffic, /*threads=*/0);
  std::printf("Replay with the same seed is bit-identical: %s\n",
              run1 == run2 ? "yes" : "NO (bug!)");

  // Concurrent serving: the same stream on 4 threads. The per-request fault
  // streams and the index-ordered resolve sequencer make the batched run
  // bit-identical to the serial one, health counters included.
  ranker.PrepareForRun(&profile, 1);
  serving::RankedList run4 = ServeTraffic(ranker_ptr, traffic, /*threads=*/4);
  const bool health_match =
      ranker.health().ToString() == health.ToString();
  std::printf("4-thread batched run is bit-identical to serial: %s\n",
              run4 == run1 ? "yes" : "NO (bug!)");
  std::printf("4-thread health counters match serial: %s\n",
              health_match ? "yes" : "NO (bug!)");
  return run1 == run2 && run4 == run1 && health_match ? 0 : 1;
}
