# Empty dependencies file for data_scenario_test.
# This may be replaced when dependencies are built.
