file(REMOVE_RECURSE
  "CMakeFiles/data_scenario_test.dir/data_scenario_test.cc.o"
  "CMakeFiles/data_scenario_test.dir/data_scenario_test.cc.o.d"
  "data_scenario_test"
  "data_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
