# Empty dependencies file for graph_search_graph_test.
# This may be replaced when dependencies are built.
