# Empty compiler generated dependencies file for intent_forest_test.
# This may be replaced when dependencies are built.
