file(REMOVE_RECURSE
  "CMakeFiles/intent_forest_test.dir/intent_forest_test.cc.o"
  "CMakeFiles/intent_forest_test.dir/intent_forest_test.cc.o.d"
  "intent_forest_test"
  "intent_forest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intent_forest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
