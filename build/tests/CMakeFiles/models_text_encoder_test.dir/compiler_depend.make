# Empty compiler generated dependencies file for models_text_encoder_test.
# This may be replaced when dependencies are built.
