file(REMOVE_RECURSE
  "CMakeFiles/models_text_encoder_test.dir/models_text_encoder_test.cc.o"
  "CMakeFiles/models_text_encoder_test.dir/models_text_encoder_test.cc.o.d"
  "models_text_encoder_test"
  "models_text_encoder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_text_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
