# Empty compiler generated dependencies file for graph_head_tail_test.
# This may be replaced when dependencies are built.
