file(REMOVE_RECURSE
  "CMakeFiles/graph_head_tail_test.dir/graph_head_tail_test.cc.o"
  "CMakeFiles/graph_head_tail_test.dir/graph_head_tail_test.cc.o.d"
  "graph_head_tail_test"
  "graph_head_tail_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_head_tail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
