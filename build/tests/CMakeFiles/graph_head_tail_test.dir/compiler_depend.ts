# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for graph_head_tail_test.
