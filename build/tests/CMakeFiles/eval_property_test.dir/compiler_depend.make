# Empty compiler generated dependencies file for eval_property_test.
# This may be replaced when dependencies are built.
