file(REMOVE_RECURSE
  "CMakeFiles/graph_frequency_groups_test.dir/graph_frequency_groups_test.cc.o"
  "CMakeFiles/graph_frequency_groups_test.dir/graph_frequency_groups_test.cc.o.d"
  "graph_frequency_groups_test"
  "graph_frequency_groups_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_frequency_groups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
