# Empty compiler generated dependencies file for graph_frequency_groups_test.
# This may be replaced when dependencies are built.
