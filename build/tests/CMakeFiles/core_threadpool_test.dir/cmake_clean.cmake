file(REMOVE_RECURSE
  "CMakeFiles/core_threadpool_test.dir/core_threadpool_test.cc.o"
  "CMakeFiles/core_threadpool_test.dir/core_threadpool_test.cc.o.d"
  "core_threadpool_test"
  "core_threadpool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_threadpool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
