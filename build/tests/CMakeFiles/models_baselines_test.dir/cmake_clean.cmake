file(REMOVE_RECURSE
  "CMakeFiles/models_baselines_test.dir/models_baselines_test.cc.o"
  "CMakeFiles/models_baselines_test.dir/models_baselines_test.cc.o.d"
  "models_baselines_test"
  "models_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
