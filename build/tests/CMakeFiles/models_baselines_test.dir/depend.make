# Empty dependencies file for models_baselines_test.
# This may be replaced when dependencies are built.
