file(REMOVE_RECURSE
  "CMakeFiles/models_contrastive_test.dir/models_contrastive_test.cc.o"
  "CMakeFiles/models_contrastive_test.dir/models_contrastive_test.cc.o.d"
  "models_contrastive_test"
  "models_contrastive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_contrastive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
