# Empty compiler generated dependencies file for models_contrastive_test.
# This may be replaced when dependencies are built.
