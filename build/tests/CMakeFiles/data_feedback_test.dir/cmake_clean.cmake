file(REMOVE_RECURSE
  "CMakeFiles/data_feedback_test.dir/data_feedback_test.cc.o"
  "CMakeFiles/data_feedback_test.dir/data_feedback_test.cc.o.d"
  "data_feedback_test"
  "data_feedback_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_feedback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
