# Empty dependencies file for models_garcia_test.
# This may be replaced when dependencies are built.
