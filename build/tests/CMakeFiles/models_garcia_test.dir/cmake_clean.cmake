file(REMOVE_RECURSE
  "CMakeFiles/models_garcia_test.dir/models_garcia_test.cc.o"
  "CMakeFiles/models_garcia_test.dir/models_garcia_test.cc.o.d"
  "models_garcia_test"
  "models_garcia_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_garcia_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
