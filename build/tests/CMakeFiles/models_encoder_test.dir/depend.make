# Empty dependencies file for models_encoder_test.
# This may be replaced when dependencies are built.
