file(REMOVE_RECURSE
  "CMakeFiles/service_search_pipeline.dir/service_search_pipeline.cpp.o"
  "CMakeFiles/service_search_pipeline.dir/service_search_pipeline.cpp.o.d"
  "service_search_pipeline"
  "service_search_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_search_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
