# Empty compiler generated dependencies file for service_search_pipeline.
# This may be replaced when dependencies are built.
