file(REMOVE_RECURSE
  "CMakeFiles/longtail_knowledge_transfer.dir/longtail_knowledge_transfer.cpp.o"
  "CMakeFiles/longtail_knowledge_transfer.dir/longtail_knowledge_transfer.cpp.o.d"
  "longtail_knowledge_transfer"
  "longtail_knowledge_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_knowledge_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
