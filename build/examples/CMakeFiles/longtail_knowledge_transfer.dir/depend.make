# Empty dependencies file for longtail_knowledge_transfer.
# This may be replaced when dependencies are built.
