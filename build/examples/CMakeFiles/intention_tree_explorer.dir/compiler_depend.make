# Empty compiler generated dependencies file for intention_tree_explorer.
# This may be replaced when dependencies are built.
