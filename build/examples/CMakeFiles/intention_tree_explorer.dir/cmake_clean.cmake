file(REMOVE_RECURSE
  "CMakeFiles/intention_tree_explorer.dir/intention_tree_explorer.cpp.o"
  "CMakeFiles/intention_tree_explorer.dir/intention_tree_explorer.cpp.o.d"
  "intention_tree_explorer"
  "intention_tree_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intention_tree_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
