file(REMOVE_RECURSE
  "libgarcia_graph.a"
)
