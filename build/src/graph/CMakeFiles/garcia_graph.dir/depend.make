# Empty dependencies file for garcia_graph.
# This may be replaced when dependencies are built.
