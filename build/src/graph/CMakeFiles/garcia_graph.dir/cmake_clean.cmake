file(REMOVE_RECURSE
  "CMakeFiles/garcia_graph.dir/frequency_groups.cc.o"
  "CMakeFiles/garcia_graph.dir/frequency_groups.cc.o.d"
  "CMakeFiles/garcia_graph.dir/graph_builder.cc.o"
  "CMakeFiles/garcia_graph.dir/graph_builder.cc.o.d"
  "CMakeFiles/garcia_graph.dir/head_tail.cc.o"
  "CMakeFiles/garcia_graph.dir/head_tail.cc.o.d"
  "CMakeFiles/garcia_graph.dir/search_graph.cc.o"
  "CMakeFiles/garcia_graph.dir/search_graph.cc.o.d"
  "libgarcia_graph.a"
  "libgarcia_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garcia_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
