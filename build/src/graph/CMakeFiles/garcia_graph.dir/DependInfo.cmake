
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/frequency_groups.cc" "src/graph/CMakeFiles/garcia_graph.dir/frequency_groups.cc.o" "gcc" "src/graph/CMakeFiles/garcia_graph.dir/frequency_groups.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/graph/CMakeFiles/garcia_graph.dir/graph_builder.cc.o" "gcc" "src/graph/CMakeFiles/garcia_graph.dir/graph_builder.cc.o.d"
  "/root/repo/src/graph/head_tail.cc" "src/graph/CMakeFiles/garcia_graph.dir/head_tail.cc.o" "gcc" "src/graph/CMakeFiles/garcia_graph.dir/head_tail.cc.o.d"
  "/root/repo/src/graph/search_graph.cc" "src/graph/CMakeFiles/garcia_graph.dir/search_graph.cc.o" "gcc" "src/graph/CMakeFiles/garcia_graph.dir/search_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/garcia_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
