file(REMOVE_RECURSE
  "CMakeFiles/garcia_serving.dir/ab_test.cc.o"
  "CMakeFiles/garcia_serving.dir/ab_test.cc.o.d"
  "CMakeFiles/garcia_serving.dir/case_study.cc.o"
  "CMakeFiles/garcia_serving.dir/case_study.cc.o.d"
  "CMakeFiles/garcia_serving.dir/embedding_store.cc.o"
  "CMakeFiles/garcia_serving.dir/embedding_store.cc.o.d"
  "CMakeFiles/garcia_serving.dir/ranking_service.cc.o"
  "CMakeFiles/garcia_serving.dir/ranking_service.cc.o.d"
  "libgarcia_serving.a"
  "libgarcia_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garcia_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
