file(REMOVE_RECURSE
  "libgarcia_serving.a"
)
