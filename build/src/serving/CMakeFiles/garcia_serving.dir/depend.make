# Empty dependencies file for garcia_serving.
# This may be replaced when dependencies are built.
