
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serving/ab_test.cc" "src/serving/CMakeFiles/garcia_serving.dir/ab_test.cc.o" "gcc" "src/serving/CMakeFiles/garcia_serving.dir/ab_test.cc.o.d"
  "/root/repo/src/serving/case_study.cc" "src/serving/CMakeFiles/garcia_serving.dir/case_study.cc.o" "gcc" "src/serving/CMakeFiles/garcia_serving.dir/case_study.cc.o.d"
  "/root/repo/src/serving/embedding_store.cc" "src/serving/CMakeFiles/garcia_serving.dir/embedding_store.cc.o" "gcc" "src/serving/CMakeFiles/garcia_serving.dir/embedding_store.cc.o.d"
  "/root/repo/src/serving/ranking_service.cc" "src/serving/CMakeFiles/garcia_serving.dir/ranking_service.cc.o" "gcc" "src/serving/CMakeFiles/garcia_serving.dir/ranking_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/garcia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/garcia_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/garcia_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/intent/CMakeFiles/garcia_intent.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
