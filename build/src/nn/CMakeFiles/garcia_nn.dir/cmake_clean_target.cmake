file(REMOVE_RECURSE
  "libgarcia_nn.a"
)
