file(REMOVE_RECURSE
  "CMakeFiles/garcia_nn.dir/gradcheck.cc.o"
  "CMakeFiles/garcia_nn.dir/gradcheck.cc.o.d"
  "CMakeFiles/garcia_nn.dir/loss.cc.o"
  "CMakeFiles/garcia_nn.dir/loss.cc.o.d"
  "CMakeFiles/garcia_nn.dir/module.cc.o"
  "CMakeFiles/garcia_nn.dir/module.cc.o.d"
  "CMakeFiles/garcia_nn.dir/ops.cc.o"
  "CMakeFiles/garcia_nn.dir/ops.cc.o.d"
  "CMakeFiles/garcia_nn.dir/optimizer.cc.o"
  "CMakeFiles/garcia_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/garcia_nn.dir/tensor.cc.o"
  "CMakeFiles/garcia_nn.dir/tensor.cc.o.d"
  "libgarcia_nn.a"
  "libgarcia_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garcia_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
