# Empty compiler generated dependencies file for garcia_nn.
# This may be replaced when dependencies are built.
