# Empty dependencies file for garcia_intent.
# This may be replaced when dependencies are built.
