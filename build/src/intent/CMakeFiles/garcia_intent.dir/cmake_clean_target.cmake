file(REMOVE_RECURSE
  "libgarcia_intent.a"
)
