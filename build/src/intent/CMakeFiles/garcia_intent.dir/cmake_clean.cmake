file(REMOVE_RECURSE
  "CMakeFiles/garcia_intent.dir/intention_forest.cc.o"
  "CMakeFiles/garcia_intent.dir/intention_forest.cc.o.d"
  "libgarcia_intent.a"
  "libgarcia_intent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garcia_intent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
