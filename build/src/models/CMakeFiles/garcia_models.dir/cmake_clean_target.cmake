file(REMOVE_RECURSE
  "libgarcia_models.a"
)
