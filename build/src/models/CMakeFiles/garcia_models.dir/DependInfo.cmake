
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/baseline_gnn.cc" "src/models/CMakeFiles/garcia_models.dir/baseline_gnn.cc.o" "gcc" "src/models/CMakeFiles/garcia_models.dir/baseline_gnn.cc.o.d"
  "/root/repo/src/models/common.cc" "src/models/CMakeFiles/garcia_models.dir/common.cc.o" "gcc" "src/models/CMakeFiles/garcia_models.dir/common.cc.o.d"
  "/root/repo/src/models/contrastive.cc" "src/models/CMakeFiles/garcia_models.dir/contrastive.cc.o" "gcc" "src/models/CMakeFiles/garcia_models.dir/contrastive.cc.o.d"
  "/root/repo/src/models/garcia_model.cc" "src/models/CMakeFiles/garcia_models.dir/garcia_model.cc.o" "gcc" "src/models/CMakeFiles/garcia_models.dir/garcia_model.cc.o.d"
  "/root/repo/src/models/gnn_encoder.cc" "src/models/CMakeFiles/garcia_models.dir/gnn_encoder.cc.o" "gcc" "src/models/CMakeFiles/garcia_models.dir/gnn_encoder.cc.o.d"
  "/root/repo/src/models/intention_encoder.cc" "src/models/CMakeFiles/garcia_models.dir/intention_encoder.cc.o" "gcc" "src/models/CMakeFiles/garcia_models.dir/intention_encoder.cc.o.d"
  "/root/repo/src/models/kgat.cc" "src/models/CMakeFiles/garcia_models.dir/kgat.cc.o" "gcc" "src/models/CMakeFiles/garcia_models.dir/kgat.cc.o.d"
  "/root/repo/src/models/lightgcn.cc" "src/models/CMakeFiles/garcia_models.dir/lightgcn.cc.o" "gcc" "src/models/CMakeFiles/garcia_models.dir/lightgcn.cc.o.d"
  "/root/repo/src/models/registry.cc" "src/models/CMakeFiles/garcia_models.dir/registry.cc.o" "gcc" "src/models/CMakeFiles/garcia_models.dir/registry.cc.o.d"
  "/root/repo/src/models/sgl.cc" "src/models/CMakeFiles/garcia_models.dir/sgl.cc.o" "gcc" "src/models/CMakeFiles/garcia_models.dir/sgl.cc.o.d"
  "/root/repo/src/models/simgcl.cc" "src/models/CMakeFiles/garcia_models.dir/simgcl.cc.o" "gcc" "src/models/CMakeFiles/garcia_models.dir/simgcl.cc.o.d"
  "/root/repo/src/models/text_encoder.cc" "src/models/CMakeFiles/garcia_models.dir/text_encoder.cc.o" "gcc" "src/models/CMakeFiles/garcia_models.dir/text_encoder.cc.o.d"
  "/root/repo/src/models/wide_deep.cc" "src/models/CMakeFiles/garcia_models.dir/wide_deep.cc.o" "gcc" "src/models/CMakeFiles/garcia_models.dir/wide_deep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/garcia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/garcia_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/garcia_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/intent/CMakeFiles/garcia_intent.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/garcia_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/garcia_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
