file(REMOVE_RECURSE
  "CMakeFiles/garcia_models.dir/baseline_gnn.cc.o"
  "CMakeFiles/garcia_models.dir/baseline_gnn.cc.o.d"
  "CMakeFiles/garcia_models.dir/common.cc.o"
  "CMakeFiles/garcia_models.dir/common.cc.o.d"
  "CMakeFiles/garcia_models.dir/contrastive.cc.o"
  "CMakeFiles/garcia_models.dir/contrastive.cc.o.d"
  "CMakeFiles/garcia_models.dir/garcia_model.cc.o"
  "CMakeFiles/garcia_models.dir/garcia_model.cc.o.d"
  "CMakeFiles/garcia_models.dir/gnn_encoder.cc.o"
  "CMakeFiles/garcia_models.dir/gnn_encoder.cc.o.d"
  "CMakeFiles/garcia_models.dir/intention_encoder.cc.o"
  "CMakeFiles/garcia_models.dir/intention_encoder.cc.o.d"
  "CMakeFiles/garcia_models.dir/kgat.cc.o"
  "CMakeFiles/garcia_models.dir/kgat.cc.o.d"
  "CMakeFiles/garcia_models.dir/lightgcn.cc.o"
  "CMakeFiles/garcia_models.dir/lightgcn.cc.o.d"
  "CMakeFiles/garcia_models.dir/registry.cc.o"
  "CMakeFiles/garcia_models.dir/registry.cc.o.d"
  "CMakeFiles/garcia_models.dir/sgl.cc.o"
  "CMakeFiles/garcia_models.dir/sgl.cc.o.d"
  "CMakeFiles/garcia_models.dir/simgcl.cc.o"
  "CMakeFiles/garcia_models.dir/simgcl.cc.o.d"
  "CMakeFiles/garcia_models.dir/text_encoder.cc.o"
  "CMakeFiles/garcia_models.dir/text_encoder.cc.o.d"
  "CMakeFiles/garcia_models.dir/wide_deep.cc.o"
  "CMakeFiles/garcia_models.dir/wide_deep.cc.o.d"
  "libgarcia_models.a"
  "libgarcia_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garcia_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
