# Empty compiler generated dependencies file for garcia_models.
# This may be replaced when dependencies are built.
