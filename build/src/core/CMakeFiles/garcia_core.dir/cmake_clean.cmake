file(REMOVE_RECURSE
  "CMakeFiles/garcia_core.dir/logging.cc.o"
  "CMakeFiles/garcia_core.dir/logging.cc.o.d"
  "CMakeFiles/garcia_core.dir/macros.cc.o"
  "CMakeFiles/garcia_core.dir/macros.cc.o.d"
  "CMakeFiles/garcia_core.dir/matrix.cc.o"
  "CMakeFiles/garcia_core.dir/matrix.cc.o.d"
  "CMakeFiles/garcia_core.dir/rng.cc.o"
  "CMakeFiles/garcia_core.dir/rng.cc.o.d"
  "CMakeFiles/garcia_core.dir/status.cc.o"
  "CMakeFiles/garcia_core.dir/status.cc.o.d"
  "CMakeFiles/garcia_core.dir/string_util.cc.o"
  "CMakeFiles/garcia_core.dir/string_util.cc.o.d"
  "CMakeFiles/garcia_core.dir/table.cc.o"
  "CMakeFiles/garcia_core.dir/table.cc.o.d"
  "CMakeFiles/garcia_core.dir/threadpool.cc.o"
  "CMakeFiles/garcia_core.dir/threadpool.cc.o.d"
  "libgarcia_core.a"
  "libgarcia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garcia_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
