file(REMOVE_RECURSE
  "libgarcia_core.a"
)
