# Empty dependencies file for garcia_core.
# This may be replaced when dependencies are built.
