# Empty compiler generated dependencies file for garcia_eval.
# This may be replaced when dependencies are built.
