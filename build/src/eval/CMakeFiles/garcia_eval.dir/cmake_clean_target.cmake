file(REMOVE_RECURSE
  "libgarcia_eval.a"
)
