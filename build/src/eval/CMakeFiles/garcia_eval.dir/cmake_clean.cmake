file(REMOVE_RECURSE
  "CMakeFiles/garcia_eval.dir/metrics.cc.o"
  "CMakeFiles/garcia_eval.dir/metrics.cc.o.d"
  "libgarcia_eval.a"
  "libgarcia_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garcia_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
