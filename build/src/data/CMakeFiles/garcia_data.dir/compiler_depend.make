# Empty compiler generated dependencies file for garcia_data.
# This may be replaced when dependencies are built.
