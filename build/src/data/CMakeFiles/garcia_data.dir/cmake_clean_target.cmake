file(REMOVE_RECURSE
  "libgarcia_data.a"
)
