file(REMOVE_RECURSE
  "CMakeFiles/garcia_data.dir/presets.cc.o"
  "CMakeFiles/garcia_data.dir/presets.cc.o.d"
  "CMakeFiles/garcia_data.dir/scenario_generator.cc.o"
  "CMakeFiles/garcia_data.dir/scenario_generator.cc.o.d"
  "CMakeFiles/garcia_data.dir/stats.cc.o"
  "CMakeFiles/garcia_data.dir/stats.cc.o.d"
  "libgarcia_data.a"
  "libgarcia_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garcia_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
