
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/presets.cc" "src/data/CMakeFiles/garcia_data.dir/presets.cc.o" "gcc" "src/data/CMakeFiles/garcia_data.dir/presets.cc.o.d"
  "/root/repo/src/data/scenario_generator.cc" "src/data/CMakeFiles/garcia_data.dir/scenario_generator.cc.o" "gcc" "src/data/CMakeFiles/garcia_data.dir/scenario_generator.cc.o.d"
  "/root/repo/src/data/stats.cc" "src/data/CMakeFiles/garcia_data.dir/stats.cc.o" "gcc" "src/data/CMakeFiles/garcia_data.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/garcia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/garcia_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/intent/CMakeFiles/garcia_intent.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
