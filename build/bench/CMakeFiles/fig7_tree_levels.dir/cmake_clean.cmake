file(REMOVE_RECURSE
  "CMakeFiles/fig7_tree_levels.dir/fig7_tree_levels.cc.o"
  "CMakeFiles/fig7_tree_levels.dir/fig7_tree_levels.cc.o.d"
  "fig7_tree_levels"
  "fig7_tree_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tree_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
