file(REMOVE_RECURSE
  "CMakeFiles/garcia_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/garcia_bench_common.dir/bench_common.cc.o.d"
  "libgarcia_bench_common.a"
  "libgarcia_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garcia_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
