# Empty compiler generated dependencies file for garcia_bench_common.
# This may be replaced when dependencies are built.
