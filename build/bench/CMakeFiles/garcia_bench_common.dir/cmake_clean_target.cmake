file(REMOVE_RECURSE
  "libgarcia_bench_common.a"
)
