# Empty dependencies file for ext_multigroup_split.
# This may be replaced when dependencies are built.
