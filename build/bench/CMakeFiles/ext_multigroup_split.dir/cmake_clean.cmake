file(REMOVE_RECURSE
  "CMakeFiles/ext_multigroup_split.dir/ext_multigroup_split.cc.o"
  "CMakeFiles/ext_multigroup_split.dir/ext_multigroup_split.cc.o.d"
  "ext_multigroup_split"
  "ext_multigroup_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multigroup_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
