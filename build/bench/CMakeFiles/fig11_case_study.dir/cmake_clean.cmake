file(REMOVE_RECURSE
  "CMakeFiles/fig11_case_study.dir/fig11_case_study.cc.o"
  "CMakeFiles/fig11_case_study.dir/fig11_case_study.cc.o.d"
  "fig11_case_study"
  "fig11_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
