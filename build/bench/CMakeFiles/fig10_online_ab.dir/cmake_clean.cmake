file(REMOVE_RECURSE
  "CMakeFiles/fig10_online_ab.dir/fig10_online_ab.cc.o"
  "CMakeFiles/fig10_online_ab.dir/fig10_online_ab.cc.o.d"
  "fig10_online_ab"
  "fig10_online_ab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_online_ab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
