file(REMOVE_RECURSE
  "CMakeFiles/ext_design_ablations.dir/ext_design_ablations.cc.o"
  "CMakeFiles/ext_design_ablations.dir/ext_design_ablations.cc.o.d"
  "ext_design_ablations"
  "ext_design_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_design_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
