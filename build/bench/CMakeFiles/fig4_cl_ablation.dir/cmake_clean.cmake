file(REMOVE_RECURSE
  "CMakeFiles/fig4_cl_ablation.dir/fig4_cl_ablation.cc.o"
  "CMakeFiles/fig4_cl_ablation.dir/fig4_cl_ablation.cc.o.d"
  "fig4_cl_ablation"
  "fig4_cl_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cl_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
