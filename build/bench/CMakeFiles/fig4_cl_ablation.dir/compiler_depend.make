# Empty compiler generated dependencies file for fig4_cl_ablation.
# This may be replaced when dependencies are built.
