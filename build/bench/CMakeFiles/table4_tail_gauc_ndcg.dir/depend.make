# Empty dependencies file for table4_tail_gauc_ndcg.
# This may be replaced when dependencies are built.
