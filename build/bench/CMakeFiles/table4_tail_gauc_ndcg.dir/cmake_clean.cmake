file(REMOVE_RECURSE
  "CMakeFiles/table4_tail_gauc_ndcg.dir/table4_tail_gauc_ndcg.cc.o"
  "CMakeFiles/table4_tail_gauc_ndcg.dir/table4_tail_gauc_ndcg.cc.o.d"
  "table4_tail_gauc_ndcg"
  "table4_tail_gauc_ndcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_tail_gauc_ndcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
