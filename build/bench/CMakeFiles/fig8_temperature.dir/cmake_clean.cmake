file(REMOVE_RECURSE
  "CMakeFiles/fig8_temperature.dir/fig8_temperature.cc.o"
  "CMakeFiles/fig8_temperature.dir/fig8_temperature.cc.o.d"
  "fig8_temperature"
  "fig8_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
