# Empty compiler generated dependencies file for fig8_temperature.
# This may be replaced when dependencies are built.
