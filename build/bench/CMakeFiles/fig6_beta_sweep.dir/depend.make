# Empty dependencies file for fig6_beta_sweep.
# This may be replaced when dependencies are built.
