
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_graph_stats.cc" "bench/CMakeFiles/table2_graph_stats.dir/table2_graph_stats.cc.o" "gcc" "bench/CMakeFiles/table2_graph_stats.dir/table2_graph_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/garcia_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/garcia_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/garcia_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/garcia_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/garcia_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/intent/CMakeFiles/garcia_intent.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/garcia_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/garcia_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
