file(REMOVE_RECURSE
  "CMakeFiles/fig3_adaptive_encoding.dir/fig3_adaptive_encoding.cc.o"
  "CMakeFiles/fig3_adaptive_encoding.dir/fig3_adaptive_encoding.cc.o.d"
  "fig3_adaptive_encoding"
  "fig3_adaptive_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_adaptive_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
