# Empty dependencies file for fig3_adaptive_encoding.
# This may be replaced when dependencies are built.
