#include "graph/head_tail.h"

#include <gtest/gtest.h>

namespace garcia::graph {
namespace {

TEST(HeadTailSplitTest, TopKByExposure) {
  std::vector<uint64_t> exposure = {5, 100, 1, 50, 7};
  auto split = HeadTailSplit::ByExposureTopK(exposure, 2);
  EXPECT_EQ(split.head_queries, (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(split.tail_queries, (std::vector<uint32_t>{0, 2, 4}));
  EXPECT_TRUE(split.is_head[1]);
  EXPECT_FALSE(split.is_head[0]);
}

TEST(HeadTailSplitTest, TiesBrokenByIdStably) {
  std::vector<uint64_t> exposure = {10, 10, 10};
  auto split = HeadTailSplit::ByExposureTopK(exposure, 1);
  EXPECT_EQ(split.head_queries, (std::vector<uint32_t>{0}));
}

TEST(HeadTailSplitTest, HeadCountClamped) {
  std::vector<uint64_t> exposure = {1, 2};
  auto split = HeadTailSplit::ByExposureTopK(exposure, 10);
  EXPECT_EQ(split.head_queries.size(), 2u);
  EXPECT_TRUE(split.tail_queries.empty());
}

TEST(HeadTailSplitTest, FractionMatchesPaperStyleSplit) {
  // 200 queries, top 1% -> 2 head queries.
  std::vector<uint64_t> exposure(200);
  for (size_t i = 0; i < 200; ++i) exposure[i] = 1000 - i;
  auto split = HeadTailSplit::ByExposureFraction(exposure, 0.01);
  EXPECT_EQ(split.head_queries.size(), 2u);
  EXPECT_EQ(split.head_queries[0], 0u);
  EXPECT_EQ(split.head_queries[1], 1u);
}

TEST(HeadTailSplitTest, FractionAtLeastOneHead) {
  std::vector<uint64_t> exposure = {3, 1};
  auto split = HeadTailSplit::ByExposureFraction(exposure, 0.001);
  EXPECT_EQ(split.head_queries.size(), 1u);
}

SearchGraph MakeGraph() {
  // 4 queries, 3 services; edges: q0-s0, q0-s1, q1-s1, q2-s2, q3-s0.
  SearchGraph g(4, 3, 2);
  for (uint32_t n = 0; n < g.num_nodes(); ++n) {
    g.attributes().at(n, 0) = static_cast<float>(n);
    g.attributes().at(n, 1) = 10.0f + n;
  }
  g.AddLink(0, 0, EdgeKind::kInteraction, 0.1f, 0);
  g.AddLink(0, 1, EdgeKind::kInteraction, 0.2f, 0);
  g.AddLink(1, 1, EdgeKind::kInteraction, 0.3f, 0);
  g.AddLink(2, 2, EdgeKind::kCorrelation, 0.0f, kCorrBrand);
  g.AddLink(3, 0, EdgeKind::kInteraction, 0.4f, 0);
  g.Finalize();
  return g;
}

TEST(SubgraphTest, KeepsAllServicesAndSubsetQueries) {
  SearchGraph full = MakeGraph();
  Subgraph sub = ExtractQuerySubgraph(full, {1, 2});
  EXPECT_EQ(sub.graph.num_queries(), 2u);
  EXPECT_EQ(sub.graph.num_services(), 3u);
  EXPECT_TRUE(sub.ContainsQuery(1));
  EXPECT_TRUE(sub.ContainsQuery(2));
  EXPECT_FALSE(sub.ContainsQuery(0));
  EXPECT_EQ(sub.global_query_ids[0], 1u);
  EXPECT_EQ(sub.local_query_of[2], 1);
}

TEST(SubgraphTest, KeepsOnlyEdgesOfRetainedQueries) {
  SearchGraph full = MakeGraph();
  Subgraph sub = ExtractQuerySubgraph(full, {1, 2});
  // q1-s1 and q2-s2 survive: 2 links -> 4 directed edges.
  EXPECT_EQ(sub.graph.num_edges(), 4u);
  EXPECT_EQ(sub.graph.Degree(sub.graph.ServiceNode(0)), 0u);
  EXPECT_EQ(sub.graph.Degree(sub.graph.ServiceNode(1)), 1u);
  EXPECT_EQ(sub.graph.Degree(sub.graph.ServiceNode(2)), 1u);
}

TEST(SubgraphTest, EdgeFeaturesSurvive) {
  SearchGraph full = MakeGraph();
  Subgraph sub = ExtractQuerySubgraph(full, {2});
  auto [lo, hi] = sub.graph.IncomingRange(sub.graph.ServiceNode(2));
  ASSERT_EQ(hi - lo, 1u);
  EXPECT_FLOAT_EQ(sub.graph.edge_features().at(lo, 3), 1.0f);  // brand bit
}

TEST(SubgraphTest, AttributesRemapped) {
  SearchGraph full = MakeGraph();
  Subgraph sub = ExtractQuerySubgraph(full, {3, 1});
  // Local query 0 is global query 3.
  EXPECT_FLOAT_EQ(sub.graph.attributes().at(0, 0), 3.0f);
  // Local query 1 is global query 1.
  EXPECT_FLOAT_EQ(sub.graph.attributes().at(1, 0), 1.0f);
  // Services keep identity order: local service node 2+s.
  EXPECT_FLOAT_EQ(sub.graph.attributes().at(sub.graph.ServiceNode(0), 0),
                  4.0f);  // global node id of service 0 is 4
}

TEST(SubgraphTest, EmptyQuerySet) {
  SearchGraph full = MakeGraph();
  Subgraph sub = ExtractQuerySubgraph(full, {});
  EXPECT_EQ(sub.graph.num_queries(), 0u);
  EXPECT_EQ(sub.graph.num_edges(), 0u);
  EXPECT_EQ(sub.graph.num_services(), 3u);
}

TEST(SubgraphTest, HeadTailPartitionCoversAllLinksOnce) {
  SearchGraph full = MakeGraph();
  std::vector<uint64_t> exposure = {100, 50, 2, 1};
  auto split = HeadTailSplit::ByExposureTopK(exposure, 2);
  Subgraph head = ExtractQuerySubgraph(full, split.head_queries);
  Subgraph tail = ExtractQuerySubgraph(full, split.tail_queries);
  EXPECT_EQ(head.graph.num_edges() + tail.graph.num_edges(),
            full.num_edges());
}

}  // namespace
}  // namespace garcia::graph
