// Property tests on the synthetic feedback stream: the statistical
// guarantees the experiments rely on (Zipf exposure ordering, chronology,
// split fractions, graph/feedback consistency).

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "data/scenario.h"

namespace garcia::data {
namespace {

class FeedbackTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static Scenario Make(uint64_t event_seed) {
    ScenarioConfig cfg;
    cfg.name = "feedback";
    cfg.num_queries = 300;
    cfg.num_services = 100;
    cfg.num_intentions = 50;
    cfg.num_trees = 5;
    cfg.num_impressions = 20000;
    cfg.event_seed = event_seed;
    return GenerateScenario(cfg);
  }
};

TEST_P(FeedbackTest, ExposureFollowsZipfRankOrderStochastically) {
  Scenario s = Make(GetParam());
  // Query ids are popularity ranks; aggregate exposure over coarse rank
  // buckets must decrease.
  uint64_t bucket[3] = {0, 0, 0};
  for (uint32_t q = 0; q < 300; ++q) {
    bucket[q < 3 ? 0 : (q < 30 ? 1 : 2)] += s.query_exposure[q];
  }
  EXPECT_GT(bucket[0], bucket[1]);  // top 3 out-pull next 27
  EXPECT_GT(bucket[0], bucket[2]);  // ... and the remaining 270
}

TEST_P(FeedbackTest, AllDaysCovered) {
  Scenario s = Make(GetParam());
  std::set<uint16_t> days;
  for (const Example& e : s.train) days.insert(e.day);
  EXPECT_EQ(days.size(), s.config.num_days);
}

TEST_P(FeedbackTest, SplitFractionsApproximate) {
  Scenario s = Make(GetParam());
  const double n = static_cast<double>(s.config.num_impressions);
  EXPECT_NEAR(s.validation.size() / n, s.config.validation_fraction, 0.02);
  EXPECT_NEAR(s.test.size() / n, s.config.test_fraction, 0.02);
}

TEST_P(FeedbackTest, InteractionEdgesComeFromClickedTrainPairs) {
  Scenario s = Make(GetParam());
  std::unordered_set<uint64_t> clicked_pairs;
  for (const Example& e : s.train) {
    if (e.label > 0.5f) {
      clicked_pairs.insert((static_cast<uint64_t>(e.query) << 32) |
                           e.service);
    }
  }
  for (const graph::Edge& e : s.graph.edges()) {
    if (!s.graph.IsQueryNode(e.src)) continue;
    if (e.kind != graph::EdgeKind::kInteraction) continue;
    const uint64_t key = (static_cast<uint64_t>(e.src) << 32) |
                         s.graph.ServiceIdOf(e.dst);
    EXPECT_TRUE(clicked_pairs.count(key))
        << "interaction edge without a clicked train example";
  }
}

TEST_P(FeedbackTest, CorrelationEdgesShareAKey) {
  Scenario s = Make(GetParam());
  for (const graph::Edge& e : s.graph.edges()) {
    if (!s.graph.IsQueryNode(e.src)) continue;
    if (e.kind != graph::EdgeKind::kCorrelation) continue;
    const uint32_t q = e.src;
    const uint32_t svc = s.graph.ServiceIdOf(e.dst);
    EXPECT_NE(s.query_keys[q].SharedWith(s.service_keys[svc]), 0);
    EXPECT_EQ(e.corr_mask,
              s.query_keys[q].SharedWith(s.service_keys[svc]));
  }
}

TEST_P(FeedbackTest, CtrEdgeFeatureWithinUnitInterval) {
  Scenario s = Make(GetParam());
  const auto& feats = s.graph.edge_features();
  for (size_t e = 0; e < feats.rows(); ++e) {
    EXPECT_GE(feats.at(e, 0), 0.0f);
    EXPECT_LE(feats.at(e, 0), 1.0f);
  }
}

TEST_P(FeedbackTest, ObservedCtrTracksLatentModelCoarsely) {
  // Group impressions by true-probability decile; empirical click rates
  // must be monotone across well-populated deciles.
  Scenario s = Make(GetParam());
  double clicks[4] = {0, 0, 0, 0};
  double counts[4] = {0, 0, 0, 0};
  for (const Example& e : s.train) {
    const double p = s.TrueClickProbability(e.query, e.service);
    const int b = p < 0.25 ? 0 : (p < 0.5 ? 1 : (p < 0.75 ? 2 : 3));
    clicks[b] += e.label;
    counts[b] += 1.0;
  }
  double prev = -1.0;
  for (int b = 0; b < 4; ++b) {
    if (counts[b] < 100) continue;
    const double rate = clicks[b] / counts[b];
    EXPECT_GT(rate, prev);
    prev = rate;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeedbackTest,
                         ::testing::Values(2u, 77u, 20220901u));

}  // namespace
}  // namespace garcia::data
