// Tests for crash-safe training (ISSUE 6): the GCK1 checkpoint container,
// the corruption matrix (truncation, per-section bit flips, bad
// magic/version, fingerprint mismatch, generation fallback), the
// CheckpointManager cadence/pruning behavior, and the kill-point
// crash-resume harness asserting bit-identical resumed training for
// GARCIA (both phases, full-graph and sampled) and the baselines.

#include "train/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/matrix.h"
#include "core/rng.h"
#include "data/scenario.h"
#include "models/common.h"
#include "models/garcia_model.h"
#include "models/lightgcn.h"
#include "models/wide_deep.h"

namespace garcia::train {
namespace {

namespace fs = std::filesystem;
using core::Matrix;

std::string TempDir(const std::string& name) {
  const std::string dir = "/tmp/garcia_ckpt_" + name;
  fs::remove_all(dir);
  return dir;
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good());
}

bool SameMatrix(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// A small but fully populated checkpoint exercising every section.
TrainCheckpoint MakeCheckpoint(uint64_t seed) {
  core::Rng rng(seed);
  TrainCheckpoint ck;
  ck.config_fingerprint = 0xfeedfacecafef00dULL ^ seed;
  ck.phase = 1;
  ck.epoch = 3;
  ck.step_in_epoch = 7;
  ck.global_step = 42;
  ck.diagnostics = {0.5f, 1.25f, -2.0f};
  ck.params = {Matrix::Randn(4, 3, &rng), Matrix::Randn(2, 5, &rng)};
  ck.adam_t = 42;
  ck.adam_m = {Matrix::Randn(4, 3, &rng), Matrix::Randn(2, 5, &rng)};
  ck.adam_v = {Matrix::Randn(4, 3, &rng), Matrix::Randn(2, 5, &rng)};
  core::Rng s0(seed + 1), s1(seed + 2);
  s0.NextU64();
  s1.Normal();  // leaves a cached Box-Muller value in the state
  ck.rng_streams = {s0.ExportState(), s1.ExportState()};
  ck.has_iterator = true;
  ck.iterator_cursor = 5;
  ck.iterator_order = {4, 1, 0, 3, 2, 6, 5};
  return ck;
}

void ExpectEqualCheckpoints(const TrainCheckpoint& a, const TrainCheckpoint& b) {
  EXPECT_EQ(a.config_fingerprint, b.config_fingerprint);
  EXPECT_EQ(a.phase, b.phase);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.step_in_epoch, b.step_in_epoch);
  EXPECT_EQ(a.global_step, b.global_step);
  EXPECT_EQ(a.diagnostics, b.diagnostics);
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t i = 0; i < a.params.size(); ++i) {
    EXPECT_TRUE(SameMatrix(a.params[i], b.params[i]));
    EXPECT_TRUE(SameMatrix(a.adam_m[i], b.adam_m[i]));
    EXPECT_TRUE(SameMatrix(a.adam_v[i], b.adam_v[i]));
  }
  EXPECT_EQ(a.adam_t, b.adam_t);
  ASSERT_EQ(a.rng_streams.size(), b.rng_streams.size());
  for (size_t i = 0; i < a.rng_streams.size(); ++i) {
    EXPECT_EQ(a.rng_streams[i].words, b.rng_streams[i].words);
    EXPECT_EQ(a.rng_streams[i].has_cached_normal,
              b.rng_streams[i].has_cached_normal);
    EXPECT_EQ(a.rng_streams[i].cached_normal, b.rng_streams[i].cached_normal);
  }
  EXPECT_EQ(a.has_iterator, b.has_iterator);
  EXPECT_EQ(a.iterator_cursor, b.iterator_cursor);
  EXPECT_EQ(a.iterator_order, b.iterator_order);
}

// ----------------------------------------------------------- container

TEST(CheckpointContainerTest, EncodeDecodeRoundTrip) {
  TrainCheckpoint ck = MakeCheckpoint(11);
  auto decoded = DecodeCheckpoint(EncodeCheckpoint(ck), "test");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectEqualCheckpoints(ck, *decoded);
}

TEST(CheckpointContainerTest, EncodingIsDeterministic) {
  EXPECT_EQ(EncodeCheckpoint(MakeCheckpoint(5)),
            EncodeCheckpoint(MakeCheckpoint(5)));
}

TEST(CheckpointContainerTest, ListsAllSixSectionsInOrder) {
  auto spans = ListCheckpointSections(EncodeCheckpoint(MakeCheckpoint(1)));
  ASSERT_TRUE(spans.ok());
  ASSERT_EQ((*spans).size(), 6u);
  for (uint32_t i = 0; i < 6; ++i) EXPECT_EQ((*spans)[i].id, i + 1);
}

TEST(CheckpointContainerTest, BadMagicRejected) {
  std::string bytes = EncodeCheckpoint(MakeCheckpoint(2));
  bytes[0] = 'X';
  auto decoded = DecodeCheckpoint(bytes, "test");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("not a GCK1"), std::string::npos);
}

TEST(CheckpointContainerTest, UnsupportedVersionRejected) {
  std::string bytes = EncodeCheckpoint(MakeCheckpoint(2));
  bytes[4] = 99;  // version field follows the 4-byte magic
  auto decoded = DecodeCheckpoint(bytes, "test");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
}

TEST(CheckpointContainerTest, EveryTruncationPointRejected) {
  const std::string bytes = EncodeCheckpoint(MakeCheckpoint(3));
  // Cut inside the header, each section header, and each payload.
  for (size_t cut : {size_t{2}, size_t{9}, size_t{14}, size_t{30},
                     bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    auto decoded = DecodeCheckpoint(bytes.substr(0, cut), "test");
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut << " was accepted";
  }
}

TEST(CheckpointContainerTest, BitFlipInEverySectionIsDetectedAndNamed) {
  const std::string bytes = EncodeCheckpoint(MakeCheckpoint(4));
  auto spans = ListCheckpointSections(bytes);
  ASSERT_TRUE(spans.ok());
  for (const CheckpointSectionSpan& span : *spans) {
    std::string corrupt = bytes;
    corrupt[span.payload_offset + span.payload_size / 2] ^= 0x01;
    auto decoded = DecodeCheckpoint(corrupt, "test");
    ASSERT_FALSE(decoded.ok())
        << "flip in section " << span.id << " was accepted";
    const char* name =
        CheckpointSectionName(static_cast<CheckpointSectionId>(span.id));
    EXPECT_NE(decoded.status().message().find(name), std::string::npos)
        << "error does not name section " << name << ": "
        << decoded.status().ToString();
  }
}

TEST(CheckpointContainerTest, MomentCountMismatchRejected) {
  TrainCheckpoint ck = MakeCheckpoint(6);
  ck.adam_m.pop_back();
  ck.adam_v.pop_back();
  auto decoded = DecodeCheckpoint(EncodeCheckpoint(ck), "test");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("optimizer tracks"),
            std::string::npos);
}

TEST(CheckpointContainerTest, IteratorCursorPastEndRejected) {
  TrainCheckpoint ck = MakeCheckpoint(7);
  ck.iterator_cursor = ck.iterator_order.size() + 1;
  auto decoded = DecodeCheckpoint(EncodeCheckpoint(ck), "test");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("cursor"), std::string::npos);
}

TEST(CheckpointContainerTest, AllZeroRngStateRejected) {
  TrainCheckpoint ck = MakeCheckpoint(8);
  ck.rng_streams[0] = core::RngState{};  // all-zero words
  auto decoded = DecodeCheckpoint(EncodeCheckpoint(ck), "test");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("all-zero"), std::string::npos);
}

// ---------------------------------------------------- files & generations

TEST(CheckpointFileTest, SaveLoadRoundTripLeavesNoTempFile) {
  const std::string dir = TempDir("file_roundtrip");
  fs::create_directories(dir);
  const std::string path = dir + "/" + CheckpointFileName(10);
  TrainCheckpoint ck = MakeCheckpoint(9);
  ASSERT_TRUE(SaveCheckpoint(path, ck).ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEqualCheckpoints(ck, *loaded);
  fs::remove_all(dir);
}

TEST(CheckpointFileTest, ListStepsIgnoresForeignAndTempFiles) {
  const std::string dir = TempDir("list_steps");
  fs::create_directories(dir);
  ASSERT_TRUE(SaveCheckpoint(dir + "/" + CheckpointFileName(30),
                             MakeCheckpoint(1)).ok());
  ASSERT_TRUE(SaveCheckpoint(dir + "/" + CheckpointFileName(7),
                             MakeCheckpoint(1)).ok());
  WriteRaw(dir + "/checkpoint-00000012.gck.tmp", "torn");
  WriteRaw(dir + "/notes.txt", "hello");
  WriteRaw(dir + "/checkpoint-abc.gck", "bogus name");
  EXPECT_EQ(ListCheckpointSteps(dir), (std::vector<uint64_t>{7, 30}));
  EXPECT_TRUE(ListCheckpointSteps(dir + "/missing").empty());
  fs::remove_all(dir);
}

TEST(CheckpointFileTest, LatestFallsBackPastCorruptGeneration) {
  const std::string dir = TempDir("fallback");
  fs::create_directories(dir);
  TrainCheckpoint ck = MakeCheckpoint(12);
  ck.global_step = 10;
  ASSERT_TRUE(SaveCheckpoint(dir + "/" + CheckpointFileName(10), ck).ok());
  // Newest generation is torn (as if a non-atomic writer died mid-write).
  const std::string full = EncodeCheckpoint(ck);
  WriteRaw(dir + "/" + CheckpointFileName(20), full.substr(0, full.size() / 2));

  auto resumed = LoadLatestCheckpoint(dir, ck.config_fingerprint);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ((*resumed).loaded_step, 10u);
  ASSERT_EQ((*resumed).skipped.size(), 1u);
  EXPECT_NE((*resumed).skipped[0].find(CheckpointFileName(20)),
            std::string::npos);
  fs::remove_all(dir);
}

TEST(CheckpointFileTest, AllGenerationsCorruptIsIoErrorListingEach) {
  const std::string dir = TempDir("all_corrupt");
  fs::create_directories(dir);
  WriteRaw(dir + "/" + CheckpointFileName(1), "garbage");
  WriteRaw(dir + "/" + CheckpointFileName(2), "more garbage");
  auto resumed = LoadLatestCheckpoint(dir, 0);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), core::StatusCode::kIoError);
  EXPECT_NE(resumed.status().message().find(CheckpointFileName(1)),
            std::string::npos);
  EXPECT_NE(resumed.status().message().find(CheckpointFileName(2)),
            std::string::npos);
  fs::remove_all(dir);
}

TEST(CheckpointFileTest, EmptyDirectoryIsNotFound) {
  const std::string dir = TempDir("empty");
  fs::create_directories(dir);
  EXPECT_EQ(LoadLatestCheckpoint(dir, 0).status().code(),
            core::StatusCode::kNotFound);
  EXPECT_EQ(LoadLatestCheckpoint(dir + "/never_created", 0).status().code(),
            core::StatusCode::kNotFound);
  fs::remove_all(dir);
}

TEST(CheckpointFileTest, FingerprintMismatchIsRefusedNotSkipped) {
  const std::string dir = TempDir("fingerprint");
  fs::create_directories(dir);
  TrainCheckpoint ck = MakeCheckpoint(13);
  ASSERT_TRUE(SaveCheckpoint(dir + "/" + CheckpointFileName(5), ck).ok());
  auto resumed = LoadLatestCheckpoint(dir, ck.config_fingerprint + 1);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(resumed.status().message().find("refusing to resume"),
            std::string::npos);
  fs::remove_all(dir);
}

// ------------------------------------------------------------- manager

TrainCheckpoint MinimalSnapshot(uint64_t step) {
  TrainCheckpoint ck;
  ck.global_step = step;
  core::Rng rng(step + 1);
  ck.rng_streams = {rng.ExportState()};
  return ck;
}

TEST(CheckpointManagerTest, CadenceWritesAndKeepKPruning) {
  const std::string dir = TempDir("manager_prune");
  CheckpointManager mgr(
      {dir, /*every_steps=*/1, /*keep=*/2, /*fingerprint=*/77, {}});
  EXPECT_TRUE(mgr.enabled());
  EXPECT_FALSE(mgr.Resume().has_value());  // fresh start
  for (uint64_t step = 1; step <= 5; ++step) {
    mgr.AtStepEnd(step, [&] { return MinimalSnapshot(step); });
  }
  EXPECT_EQ(mgr.writes(), 5u);
  EXPECT_EQ(ListCheckpointSteps(dir), (std::vector<uint64_t>{4, 5}));
  auto resumed = LoadLatestCheckpoint(dir, 77);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ((*resumed).loaded_step, 5u);
  // The manager stamps the fingerprint and step into every generation.
  EXPECT_EQ((*resumed).checkpoint.config_fingerprint, 77u);
  fs::remove_all(dir);
}

TEST(CheckpointManagerTest, DisabledManagerIsInert) {
  CheckpointManager mgr({"", 0, 2, 0, {}});
  EXPECT_FALSE(mgr.enabled());
  EXPECT_FALSE(mgr.Resume().has_value());
  mgr.AtStepEnd(1, [] {
    ADD_FAILURE() << "snapshot materialized while disabled";
    return TrainCheckpoint{};
  });
  EXPECT_EQ(mgr.writes(), 0u);
}

TEST(CheckpointManagerTest, NonCadenceStepsDoNotSnapshot) {
  const std::string dir = TempDir("manager_cadence");
  CheckpointManager mgr({dir, /*every_steps=*/10, 2, 0, {}});
  int snapshots = 0;
  for (uint64_t step = 1; step <= 25; ++step) {
    mgr.AtStepEnd(step, [&] {
      ++snapshots;
      return MinimalSnapshot(step);
    });
  }
  EXPECT_EQ(snapshots, 2);
  EXPECT_EQ(ListCheckpointSteps(dir), (std::vector<uint64_t>{10, 20}));
  fs::remove_all(dir);
}

TEST(CheckpointManagerTest, ResumeSweepsStrayTempFiles) {
  const std::string dir = TempDir("manager_tmp");
  fs::create_directories(dir);
  ASSERT_TRUE(SaveCheckpoint(dir + "/" + CheckpointFileName(3),
                             MinimalSnapshot(3)).ok());
  WriteRaw(dir + "/checkpoint-00000006.gck.tmp", "stranded");
  CheckpointManager mgr({dir, 1, 2, 0, {}});
  auto resumed = mgr.Resume();
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(resumed->global_step, 3u);
  EXPECT_FALSE(fs::exists(dir + "/checkpoint-00000006.gck.tmp"));
  fs::remove_all(dir);
}

// ------------------------------------------------- crash-resume harness

data::ScenarioConfig TinyDataConfig() {
  data::ScenarioConfig cfg;
  cfg.num_queries = 150;
  cfg.num_services = 60;
  cfg.num_intentions = 30;
  cfg.num_trees = 4;
  cfg.num_impressions = 6000;
  cfg.head_fraction = 0.06;
  return cfg;
}

const data::Scenario& Tiny() {
  static const data::Scenario* s =
      new data::Scenario(data::GenerateScenario(TinyDataConfig()));
  return *s;
}

models::TrainConfig FastTrainConfig() {
  models::TrainConfig cfg;
  cfg.embedding_dim = 16;
  cfg.pretrain_epochs = 3;
  cfg.finetune_epochs = 6;
  cfg.max_batches_per_epoch = 10;
  cfg.batch_size = 512;
  cfg.cl_batch_size = 96;
  return cfg;
}
// With this config GARCIA runs 3 epochs x 5 pretrain steps (global steps
// 1..15), then 6 epochs x 10 finetune steps (16..75).

struct RunResult {
  Matrix queries;
  Matrix services;
};

void ExpectBitIdentical(const RunResult& a, const RunResult& b) {
  EXPECT_TRUE(SameMatrix(a.queries, b.queries))
      << "query embeddings diverged";
  EXPECT_TRUE(SameMatrix(a.services, b.services))
      << "service embeddings diverged";
}

template <typename ModelT>
RunResult FitAndExport(const models::TrainConfig& cfg) {
  ModelT model(cfg);
  model.Fit(Tiny());
  return {model.ExportQueryEmbeddings(Tiny()),
          model.ExportServiceEmbeddings(Tiny())};
}

/// Trains with an armed kill-point, asserts the simulated crash fires,
/// then restarts over the same checkpoint directory (a fresh model, as a
/// process restart would construct) and runs to completion.
template <typename ModelT>
RunResult CrashThenResume(models::TrainConfig cfg, KillPoint point,
                          uint64_t step) {
  cfg.checkpoint_fault = {point, step};
  bool killed = false;
  try {
    ModelT victim(cfg);
    victim.Fit(Tiny());
  } catch (const TrainingKilled& k) {
    killed = true;
    EXPECT_EQ(k.point, point);
    EXPECT_EQ(k.step, step);
  }
  EXPECT_TRUE(killed) << "kill-point " << KillPointName(point)
                      << " never fired at step " << step;
  cfg.checkpoint_fault = {};
  return FitAndExport<ModelT>(cfg);
}

models::TrainConfig CheckpointedConfig(const std::string& dir_name,
                                       uint64_t every = 3) {
  models::TrainConfig cfg = FastTrainConfig();
  cfg.checkpoint_dir = TempDir(dir_name);
  cfg.checkpoint_every_steps = every;
  return cfg;
}

TEST(CrashResumeTest, CheckpointingItselfIsNonInvasive) {
  // Same trajectory with and without checkpointing: the manager must
  // observe training, never perturb it.
  const RunResult plain = FitAndExport<models::GarciaModel>(FastTrainConfig());
  models::TrainConfig cfg = CheckpointedConfig("noninvasive");
  const RunResult checkpointed = FitAndExport<models::GarciaModel>(cfg);
  ExpectBitIdentical(plain, checkpointed);
  EXPECT_FALSE(ListCheckpointSteps(cfg.checkpoint_dir).empty());
  fs::remove_all(cfg.checkpoint_dir);
}

TEST(CrashResumeTest, GarciaEveryKillPointClassResumesBitIdentical) {
  const RunResult reference =
      FitAndExport<models::GarciaModel>(FastTrainConfig());
  // One kill per class, spread over both phases (pretrain ends at 15):
  // cadence steps are multiples of 3; 25 is deliberately off-cadence.
  const struct {
    KillPoint point;
    uint64_t step;
  } kills[] = {
      {KillPoint::kBeforeWrite, 6},         // pretrain
      {KillPoint::kMidWriteTruncate, 9},    // pretrain, torn newest gen
      {KillPoint::kAfterWrite, 15},         // pretrain/finetune boundary
      {KillPoint::kPostWriteBitFlip, 21},   // finetune, corrupt newest gen
      {KillPoint::kBetweenCheckpoints, 25}, // finetune, mid-epoch replay
  };
  for (const auto& kill : kills) {
    SCOPED_TRACE(KillPointName(kill.point));
    models::TrainConfig cfg = CheckpointedConfig("garcia_kill");
    const RunResult resumed = CrashThenResume<models::GarciaModel>(
        cfg, kill.point, kill.step);
    ExpectBitIdentical(reference, resumed);
    fs::remove_all(cfg.checkpoint_dir);
  }
}

TEST(CrashResumeTest, GarciaSampledFanoutResumesBitIdentical) {
  models::TrainConfig base = FastTrainConfig();
  base.sample_fanout = 8;
  const RunResult reference = FitAndExport<models::GarciaModel>(base);
  for (uint64_t step : {uint64_t{9}, uint64_t{24}}) {  // one per phase
    SCOPED_TRACE(step);
    models::TrainConfig cfg = base;
    cfg.checkpoint_dir = TempDir("garcia_sampled");
    cfg.checkpoint_every_steps = 3;
    const RunResult resumed = CrashThenResume<models::GarciaModel>(
        cfg, KillPoint::kAfterWrite, step);
    ExpectBitIdentical(reference, resumed);
    fs::remove_all(cfg.checkpoint_dir);
  }
}

TEST(CrashResumeTest, LightGcnResumesBitIdentical) {
  const RunResult reference = FitAndExport<models::LightGcn>(FastTrainConfig());
  models::TrainConfig cfg = CheckpointedConfig("lightgcn");
  const RunResult resumed = CrashThenResume<models::LightGcn>(
      cfg, KillPoint::kPostWriteBitFlip, 12);
  ExpectBitIdentical(reference, resumed);
  fs::remove_all(cfg.checkpoint_dir);
}

TEST(CrashResumeTest, WideDeepResumesBitIdentical) {
  // WideDeep has no exported embeddings; compare predictions instead.
  models::TrainConfig plain = FastTrainConfig();
  models::WideDeep reference(plain);
  reference.Fit(Tiny());
  const std::vector<float> want = reference.Predict(Tiny(), Tiny().test);

  models::TrainConfig cfg = CheckpointedConfig("wide_deep");
  cfg.checkpoint_fault = {KillPoint::kBetweenCheckpoints, 14};
  bool killed = false;
  try {
    models::WideDeep victim(cfg);
    victim.Fit(Tiny());
  } catch (const TrainingKilled&) {
    killed = true;
  }
  ASSERT_TRUE(killed);
  cfg.checkpoint_fault = {};
  models::WideDeep resumed(cfg);
  resumed.Fit(Tiny());
  const std::vector<float> got = resumed.Predict(Tiny(), Tiny().test);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i], got[i]) << "prediction " << i << " diverged";
  }
  fs::remove_all(cfg.checkpoint_dir);
}

TEST(CrashResumeTest, RepeatedCrashesStillConverge) {
  // Kill the run twice at different points; the second resume must pick
  // up from the second run's newer generations.
  const RunResult reference =
      FitAndExport<models::GarciaModel>(FastTrainConfig());
  models::TrainConfig cfg = CheckpointedConfig("garcia_twice");
  cfg.checkpoint_fault = {KillPoint::kAfterWrite, 9};
  try {
    models::GarciaModel first(cfg);
    first.Fit(Tiny());
  } catch (const TrainingKilled&) {
  }
  cfg.checkpoint_fault = {KillPoint::kBetweenCheckpoints, 40};
  try {
    models::GarciaModel second(cfg);
    second.Fit(Tiny());
  } catch (const TrainingKilled&) {
  }
  cfg.checkpoint_fault = {};
  const RunResult resumed = FitAndExport<models::GarciaModel>(cfg);
  ExpectBitIdentical(reference, resumed);
  fs::remove_all(cfg.checkpoint_dir);
}

TEST(CrashResumeDeathTest, ChangedConfigRefusesResume) {
  models::TrainConfig cfg = CheckpointedConfig("garcia_refuse");
  cfg.checkpoint_fault = {KillPoint::kAfterWrite, 6};
  try {
    models::GarciaModel victim(cfg);
    victim.Fit(Tiny());
  } catch (const TrainingKilled&) {
  }
  cfg.checkpoint_fault = {};
  cfg.learning_rate *= 2.0f;  // a trajectory-relevant change
  models::GarciaModel restarted(cfg);
  EXPECT_DEATH(restarted.Fit(Tiny()), "refusing to resume");
  fs::remove_all(cfg.checkpoint_dir);
}

TEST(CrashResumeTest, FingerprintSeparatesModelsAndConfigs) {
  const models::TrainConfig cfg = FastTrainConfig();
  const uint64_t garcia =
      models::TrainFingerprint(cfg, "GARCIA", Tiny());
  EXPECT_EQ(garcia, models::TrainFingerprint(cfg, "GARCIA", Tiny()));
  EXPECT_NE(garcia, models::TrainFingerprint(cfg, "LightGCN", Tiny()));
  models::TrainConfig other = cfg;
  other.seed += 1;
  EXPECT_NE(garcia, models::TrainFingerprint(other, "GARCIA", Tiny()));
  // num_threads and the checkpoint knobs never change the trajectory, so
  // they must not change the fingerprint (resume across them is legal).
  models::TrainConfig threads = cfg;
  threads.num_threads = 4;
  threads.checkpoint_every_steps = 17;
  threads.checkpoint_dir = "/elsewhere";
  EXPECT_EQ(garcia, models::TrainFingerprint(threads, "GARCIA", Tiny()));
}

}  // namespace
}  // namespace garcia::train
