#include "models/contrastive.h"

#include <gtest/gtest.h>

#include <set>

#include "core/string_util.h"

#include "data/scenario.h"

namespace garcia::models {
namespace {

data::ScenarioConfig SmallConfig() {
  data::ScenarioConfig cfg;
  cfg.num_queries = 300;
  cfg.num_services = 100;
  cfg.num_intentions = 50;
  cfg.num_trees = 5;
  cfg.num_impressions = 12000;
  cfg.head_fraction = 0.05;
  return cfg;
}

const data::Scenario& Scenario() {
  static const data::Scenario* s =
      new data::Scenario(data::GenerateScenario(SmallConfig()));
  return *s;
}

TEST(MineKtclAnchorsTest, PairsOnlyTailToHead) {
  const auto& s = Scenario();
  KtclAnchors anchors = MineKtclAnchors(s);
  ASSERT_GT(anchors.size(), 0u) << "mining found no pairs";
  for (size_t i = 0; i < anchors.size(); ++i) {
    EXPECT_FALSE(s.split.is_head[anchors.tail_query[i]]);
    EXPECT_TRUE(s.split.is_head[anchors.head_query[i]]);
  }
}

TEST(MineKtclAnchorsTest, PairsShareCorrelationAndTokens) {
  const auto& s = Scenario();
  KtclAnchors anchors = MineKtclAnchors(s);
  for (size_t i = 0; i < anchors.size(); ++i) {
    const uint32_t t = anchors.tail_query[i];
    const uint32_t h = anchors.head_query[i];
    EXPECT_NE(s.query_keys[t].SharedWith(s.query_keys[h]), 0);
    EXPECT_GT(core::TokenJaccard(s.query_text[t], s.query_text[h]), 0.0);
  }
}

TEST(MineKtclAnchorsTest, PicksMostRelevantHead) {
  // Verify optimality directly against the mining criteria.
  const auto& s = Scenario();
  KtclAnchors anchors = MineKtclAnchors(s);
  const size_t check = std::min<size_t>(anchors.size(), 20);
  for (size_t i = 0; i < check; ++i) {
    const uint32_t t = anchors.tail_query[i];
    const uint32_t chosen = anchors.head_query[i];
    const double chosen_j =
        core::TokenJaccard(s.query_text[t], s.query_text[chosen]);
    for (uint32_t h : s.split.head_queries) {
      if (s.query_keys[t].SharedWith(s.query_keys[h]) == 0) continue;
      const double j = core::TokenJaccard(s.query_text[t], s.query_text[h]);
      EXPECT_LE(j, chosen_j + 1e-12);
      if (j == chosen_j) {
        EXPECT_LE(s.query_exposure[h], s.query_exposure[chosen]);
      }
    }
  }
}

TEST(MineKtclAnchorsTest, DeterministicMining) {
  const auto& s = Scenario();
  KtclAnchors a = MineKtclAnchors(s);
  KtclAnchors b = MineKtclAnchors(s);
  EXPECT_EQ(a.tail_query, b.tail_query);
  EXPECT_EQ(a.head_query, b.head_query);
}

class IgclBatchTest : public ::testing::Test {
 protected:
  IgclBatchTest() : rng_(5), encoder_(Scenario().forest, 8, 5, &rng_) {}
  core::Rng rng_;
  IntentionEncoder encoder_;
};

TEST_F(IgclBatchTest, CandidatesCoverLevelBudget) {
  const auto& s = Scenario();
  std::vector<uint32_t> intents = {s.query_intent[0], s.query_intent[1]};
  IgclBatch batch = BuildIgclBatch(encoder_, intents);
  // Every candidate is within the level budget.
  for (uint32_t id : batch.candidate_ids) {
    EXPECT_LT(s.forest.depth(id), encoder_.levels());
  }
}

TEST_F(IgclBatchTest, OnePairPerAncestor) {
  const auto& s = Scenario();
  std::vector<uint32_t> intents = {s.query_intent[3]};
  IgclBatch batch = BuildIgclBatch(encoder_, intents);
  EXPECT_EQ(batch.num_pairs(),
            encoder_.PositiveChain(s.query_intent[3]).size());
  for (uint32_t row : batch.anchor_rows) EXPECT_EQ(row, 0u);
}

TEST_F(IgclBatchTest, TargetsPointAtPositives) {
  const auto& s = Scenario();
  std::vector<uint32_t> intents = {s.query_intent[7], s.service_intent[2]};
  IgclBatch batch = BuildIgclBatch(encoder_, intents);
  size_t pair = 0;
  for (size_t e = 0; e < intents.size(); ++e) {
    for (uint32_t j : encoder_.PositiveChain(intents[e])) {
      ASSERT_LT(pair, batch.num_pairs());
      EXPECT_EQ(batch.candidate_ids[batch.targets[pair]], j);
      EXPECT_EQ(batch.anchor_rows[pair], e);
      ++pair;
    }
  }
  EXPECT_EQ(pair, batch.num_pairs());
}

TEST_F(IgclBatchTest, MaskAdmitsPositiveAndSameLevelNegatives) {
  const auto& s = Scenario();
  std::vector<uint32_t> intents = {s.query_intent[11]};
  IgclBatch batch = BuildIgclBatch(encoder_, intents);
  const uint32_t attached = encoder_.Attach(intents[0]);
  const uint32_t anchor_level = s.forest.depth(attached);
  for (size_t p = 0; p < batch.num_pairs(); ++p) {
    // Positive admitted.
    EXPECT_GT(batch.mask.at(p, batch.targets[p]), 0.0f);
    for (size_t c = 0; c < batch.candidate_ids.size(); ++c) {
      const uint32_t cid = batch.candidate_ids[c];
      const bool is_positive = (c == batch.targets[p]);
      const bool same_level = s.forest.depth(cid) == anchor_level;
      const bool admitted = batch.mask.at(p, c) > 0.0f;
      EXPECT_EQ(admitted, is_positive || same_level)
          << "pair " << p << " candidate " << cid;
    }
  }
}

TEST_F(IgclBatchTest, HardAndEasyNegativesBothPresent) {
  // With several trees in the forest, the admitted same-level set must span
  // the anchor's own tree (hard) and other trees (easy).
  const auto& s = Scenario();
  std::vector<uint32_t> intents = {s.query_intent[11]};
  IgclBatch batch = BuildIgclBatch(encoder_, intents);
  const uint32_t attached = encoder_.Attach(intents[0]);
  bool hard = false, easy = false;
  for (size_t c = 0; c < batch.candidate_ids.size(); ++c) {
    if (batch.mask.at(0, c) == 0.0f) continue;
    if (c == batch.targets[0]) continue;
    if (s.forest.tree_of(batch.candidate_ids[c]) == s.forest.tree_of(attached)) {
      hard = true;
    } else {
      easy = true;
    }
  }
  EXPECT_TRUE(easy);
  // Hard negatives exist whenever the anchor's level has same-tree peers;
  // with the generated forest this is overwhelmingly the case.
  EXPECT_TRUE(hard || s.forest.HardNegatives(attached).empty());
}

TEST_F(IgclBatchTest, LevelBudgetOneUsesRootsOnly) {
  core::Rng rng(6);
  IntentionEncoder shallow(Scenario().forest, 8, 1, &rng);
  std::vector<uint32_t> intents = {Scenario().query_intent[0]};
  IgclBatch batch = BuildIgclBatch(shallow, intents);
  EXPECT_EQ(batch.candidate_ids.size(), Scenario().forest.num_trees());
  EXPECT_EQ(batch.num_pairs(), 1u);  // chain is just the root
}

TEST(MineKtclAnchorsTest, NgramMiningFindsAtLeastAsManyPairs) {
  // Character n-grams subsume token overlap: any positive-Jaccard pair has
  // positive n-gram cosine, so the pair count can only grow.
  const auto& s = Scenario();
  KtclAnchors jac = MineKtclAnchors(s, KtclRelevance::kTokenJaccard);
  KtclAnchors ngram = MineKtclAnchors(s, KtclRelevance::kNgramCosine);
  EXPECT_GE(ngram.size(), jac.size());
  for (size_t i = 0; i < ngram.size(); ++i) {
    EXPECT_FALSE(s.split.is_head[ngram.tail_query[i]]);
    EXPECT_TRUE(s.split.is_head[ngram.head_query[i]]);
  }
}

TEST(MineCrossGroupAnchorsTest, HeadTailSpecialCaseMatches) {
  const auto& s = Scenario();
  KtclAnchors direct = MineKtclAnchors(s);
  KtclAnchors general = MineCrossGroupAnchors(s, s.split.tail_queries,
                                              s.split.head_queries);
  EXPECT_EQ(direct.tail_query, general.tail_query);
  EXPECT_EQ(direct.head_query, general.head_query);
}

TEST(MineCrossGroupAnchorsTest, SourcesOnlyFromSourceGroup) {
  const auto& s = Scenario();
  // Transfer between two arbitrary disjoint groups.
  std::vector<uint32_t> source, target;
  for (uint32_t q = 0; q < s.num_queries(); ++q) {
    (q % 2 == 0 ? source : target).push_back(q);
  }
  KtclAnchors anchors = MineCrossGroupAnchors(s, source, target);
  for (size_t i = 0; i < anchors.size(); ++i) {
    EXPECT_EQ(anchors.tail_query[i] % 2, 0u);
    EXPECT_EQ(anchors.head_query[i] % 2, 1u);
  }
}

TEST(MineCrossGroupAnchorsTest, EmptyTargetYieldsNoPairs) {
  const auto& s = Scenario();
  EXPECT_EQ(MineCrossGroupAnchors(s, s.split.tail_queries, {}).size(), 0u);
}

}  // namespace
}  // namespace garcia::models
