#include "core/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace garcia::core {
namespace {

TEST(TableTest, HeaderAndRows) {
  Table t({"Model", "AUC"});
  t.AddRow({"GARCIA", "0.9320"});
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.row(0)[0], "GARCIA");
}

TEST(TableTest, NumericRowFormatting) {
  Table t({"Model", "Head", "Tail"});
  t.AddNumericRow("GARCIA", {0.93613, 0.82849}, 4);
  EXPECT_EQ(t.row(0)[1], "0.9361");
  EXPECT_EQ(t.row(0)[2], "0.8285");
}

TEST(TableTest, AsciiAlignment) {
  Table t({"A", "LongHeader"});
  t.AddRow({"xxxx", "y"});
  std::string ascii = t.ToAscii();
  EXPECT_NE(ascii.find("| A    | LongHeader |"), std::string::npos);
  EXPECT_NE(ascii.find("| xxxx | y          |"), std::string::npos);
  EXPECT_NE(ascii.find("|------|"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  Table t({"name", "value"});
  t.AddRow({"a,b", "say \"hi\""});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, CsvPlainFieldsUnquoted) {
  Table t({"x"});
  t.AddRow({"plain"});
  EXPECT_EQ(t.ToCsv(), "x\nplain\n");
}

TEST(TableTest, WriteCsvRoundTrip) {
  Table t({"k", "v"});
  t.AddRow({"a", "1"});
  const std::string path = "/tmp/garcia_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k,v");
  std::getline(f, line);
  EXPECT_EQ(line, "a,1");
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvBadPath) {
  Table t({"x"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent-dir/t.csv").ok());
}

}  // namespace
}  // namespace garcia::core
