#include "core/string_util.h"

#include <gtest/gtest.h>

namespace garcia::core {
namespace {

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split(",a,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
  EXPECT_EQ(Join({"solo"}, "-"), "solo");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("IPhone Rental"), "iphone rental");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("phone rental", "phone"));
  EXPECT_FALSE(StartsWith("phone", "phone rental"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%s=%d", "k", 7), "k=7");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

TEST(StringUtilTest, FormatFixed) {
  EXPECT_EQ(FormatFixed(0.82853, 4), "0.8285");
  EXPECT_EQ(FormatFixed(-1.5, 1), "-1.5");
}

TEST(StringUtilTest, FormatScientific) {
  EXPECT_EQ(FormatScientific(1.39e9), "1.39e9");
  EXPECT_EQ(FormatScientific(0.0), "0");
  EXPECT_EQ(FormatScientific(1e6, 0), "1e6");
}

TEST(StringUtilTest, TokenJaccardIdentical) {
  EXPECT_DOUBLE_EQ(TokenJaccard("phone rental", "phone rental"), 1.0);
}

TEST(StringUtilTest, TokenJaccardCaseInsensitive) {
  EXPECT_DOUBLE_EQ(TokenJaccard("Phone Rental", "phone rental"), 1.0);
}

TEST(StringUtilTest, TokenJaccardPartialOverlap) {
  // {iphone, rental} vs {phone, rental}: 1 common / 3 union.
  EXPECT_NEAR(TokenJaccard("iphone rental", "phone rental"), 1.0 / 3.0, 1e-12);
}

TEST(StringUtilTest, TokenJaccardDisjointAndEmpty) {
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "c d"), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("", ""), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a", ""), 0.0);
}

}  // namespace
}  // namespace garcia::core
