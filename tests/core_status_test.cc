#include "core/status.h"

#include <gtest/gtest.h>

namespace garcia::core {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, RetryLayerCodesRoundTripThroughToString) {
  EXPECT_EQ(Status::DeadlineExceeded("budget spent").ToString(),
            "DeadlineExceeded: budget spent");
  EXPECT_EQ(Status::Unavailable("store down").ToString(),
            "Unavailable: store down");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chained(int x) {
  GARCIA_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(3).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r.value().push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

}  // namespace
}  // namespace garcia::core
