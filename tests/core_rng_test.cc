#include "core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace garcia::core {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t x = rng.UniformInt(uint64_t{10});
    EXPECT_LT(x, 10u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit with 1000 draws
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t x = rng.UniformInt(int64_t{-3}, int64_t{3});
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    lo_seen |= (x == -3);
    hi_seen |= (x == 3);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalShifted) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // 50! permutations; identity is essentially impossible
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto s = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (size_t x : s) EXPECT_LT(x, 100u);
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(37);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_LT(same, 4);
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler z(1000, 1.1);
  double sum = 0.0;
  for (size_t k = 0; k < z.n(); ++k) sum += z.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, PmfMonotoneDecreasing) {
  ZipfSampler z(100, 1.0);
  for (size_t k = 1; k < 100; ++k) EXPECT_LE(z.Pmf(k), z.Pmf(k - 1) + 1e-12);
}

TEST(ZipfSamplerTest, HeadDominates) {
  // The defining long-tail property: top 1% of ranks captures a large
  // fraction of the mass when s > 1.
  ZipfSampler z(10000, 1.2);
  double head_mass = 0.0;
  for (size_t k = 0; k < 100; ++k) head_mass += z.Pmf(k);
  EXPECT_GT(head_mass, 0.6);
}

TEST(ZipfSamplerTest, EmpiricalMatchesPmf) {
  ZipfSampler z(50, 1.0);
  Rng rng(41);
  std::vector<int> counts(50, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[z.Sample(&rng)]++;
  for (size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.Pmf(k), 0.01);
  }
}

TEST(AliasSamplerTest, MatchesWeights) {
  std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  AliasSampler a(w);
  Rng rng(43);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[a.Sample(&rng)]++;
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, w[i] / 10.0, 0.01);
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler a({0.0, 1.0, 0.0, 1.0});
  Rng rng(47);
  for (int i = 0; i < 10000; ++i) {
    size_t s = a.Sample(&rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasSamplerTest, SingleElement) {
  AliasSampler a({5.0});
  Rng rng(53);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Sample(&rng), 0u);
}


TEST(RngStateTest, ExportRestoreContinuesBitIdentically) {
  // Advance a stream, snapshot it, and check a restored twin replays the
  // exact tail — across every draw kind, including the cached Box-Muller
  // normal the snapshot must carry.
  Rng a(99);
  for (int i = 0; i < 37; ++i) a.NextU64();
  a.Normal();  // leaves the second Box-Muller sample cached
  RngState snap = a.ExportState();
  EXPECT_TRUE(snap.has_cached_normal);

  Rng b(1);  // arbitrary seed; RestoreState overwrites it completely
  b.RestoreState(snap);
  EXPECT_EQ(a.Normal(), b.Normal());  // consumes the restored cache
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.Uniform(), b.Uniform());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.Normal(), b.Normal());
  std::vector<int> va(17), vb(17);
  std::iota(va.begin(), va.end(), 0);
  std::iota(vb.begin(), vb.end(), 0);
  a.Shuffle(&va);
  b.Shuffle(&vb);
  EXPECT_EQ(va, vb);
}

TEST(RngStateTest, InterruptedStreamMatchesUninterrupted) {
  // The checkpoint contract in miniature: snapshot mid-stream, hand the
  // state to a fresh Rng (a process restart), and the combined halves
  // must equal one uninterrupted run.
  Rng uninterrupted(123);
  std::vector<uint64_t> want;
  for (int i = 0; i < 64; ++i) want.push_back(uninterrupted.NextU64());

  Rng first_half(123);
  std::vector<uint64_t> got;
  for (int i = 0; i < 32; ++i) got.push_back(first_half.NextU64());
  RngState snap = first_half.ExportState();
  Rng second_half(777);
  second_half.RestoreState(snap);
  for (int i = 0; i < 32; ++i) got.push_back(second_half.NextU64());
  EXPECT_EQ(got, want);
}

TEST(RngStateTest, ExportDoesNotAdvanceTheStream) {
  Rng a(55), b(55);
  (void)a.ExportState();
  (void)a.ExportState();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngStateDeathTest, AllZeroStateRejected) {
  RngState zero;  // all words zero: unreachable by a healthy xoshiro256
  Rng r(1);
  EXPECT_DEATH(r.RestoreState(zero), "all-zero");
}

}  // namespace
}  // namespace garcia::core
