#include "models/gnn_encoder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "models/intention_encoder.h"
#include "nn/gradcheck.h"
#include "nn/loss.h"

namespace garcia::models {
namespace {

using core::Matrix;
using core::Rng;
using nn::Tensor;

graph::SearchGraph TinyGraph() {
  graph::SearchGraph g(3, 2, 4);
  Rng rng(1);
  g.attributes() = Matrix::Randn(5, 4, &rng);
  g.AddLink(0, 0, graph::EdgeKind::kInteraction, 0.5f, 0);
  g.AddLink(1, 0, graph::EdgeKind::kInteraction, 0.25f, graph::kCorrBrand);
  g.AddLink(2, 1, graph::EdgeKind::kCorrelation, 0.0f, graph::kCorrCity);
  g.Finalize();
  return g;
}

TEST(GarciaGnnEncoderTest, OutputShapes) {
  Rng rng(2);
  graph::SearchGraph g = TinyGraph();
  GarciaGnnEncoder enc(g.num_nodes(), g.attr_dim(), 8, 2, &rng);
  GnnOutput out = enc.Encode(g);
  ASSERT_EQ(out.layers.size(), 3u);  // z^0, z^1, z^2
  for (const Tensor& z : out.layers) {
    EXPECT_EQ(z.rows(), g.num_nodes());
    EXPECT_EQ(z.cols(), 8u);
  }
  EXPECT_EQ(out.readout.rows(), g.num_nodes());
}

TEST(GarciaGnnEncoderTest, ReadoutIsLayerMean) {
  Rng rng(3);
  graph::SearchGraph g = TinyGraph();
  GarciaGnnEncoder enc(g.num_nodes(), g.attr_dim(), 4, 1, &rng);
  GnnOutput out = enc.Encode(g);
  for (size_t i = 0; i < g.num_nodes(); ++i) {
    for (size_t k = 0; k < 4; ++k) {
      const float mean = 0.5f * (out.layers[0].value().at(i, k) +
                                 out.layers[1].value().at(i, k));
      EXPECT_NEAR(out.readout.value().at(i, k), mean, 1e-6);
    }
  }
}

TEST(GarciaGnnEncoderTest, IsolatedNodeStillEncodes) {
  // Query 2 links only to service 1; query indexes 0/1 share service 0.
  // A graph with an isolated node must not crash and must give finite
  // values.
  Rng rng(4);
  graph::SearchGraph g(2, 1, 3);
  g.AddLink(0, 0, graph::EdgeKind::kInteraction, 0.1f, 0);
  g.Finalize();  // query 1 isolated
  GarciaGnnEncoder enc(g.num_nodes(), g.attr_dim(), 4, 2, &rng);
  GnnOutput out = enc.Encode(g);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_TRUE(std::isfinite(out.readout.value().at(1, k)));
  }
}

TEST(GarciaGnnEncoderTest, EmptyGraphEncodes) {
  Rng rng(5);
  graph::SearchGraph g(2, 2, 3);
  g.Finalize();
  GarciaGnnEncoder enc(g.num_nodes(), g.attr_dim(), 4, 2, &rng);
  GnnOutput out = enc.Encode(g);
  EXPECT_EQ(out.readout.rows(), 4u);
}

TEST(GarciaGnnEncoderTest, GradientsFlowToAllParameters) {
  Rng rng(6);
  graph::SearchGraph g = TinyGraph();
  GarciaGnnEncoder enc(g.num_nodes(), g.attr_dim(), 4, 2, &rng);
  Tensor loss = nn::SumAll(nn::Tanh(enc.Encode(g).readout));
  loss.Backward();
  size_t with_grad = 0;
  for (const Tensor& p : enc.Parameters()) with_grad += p.has_grad();
  EXPECT_EQ(with_grad, enc.Parameters().size());
}

TEST(GarciaGnnEncoderTest, GradCheck) {
  Rng rng(7);
  graph::SearchGraph g = TinyGraph();
  GarciaGnnEncoder enc(g.num_nodes(), g.attr_dim(), 3, 1, &rng);
  auto res = nn::CheckGradients(
      [&] { return nn::MeanAll(nn::Tanh(enc.Encode(g).readout)); },
      enc.Parameters(), 1e-2f);
  EXPECT_LT(res.max_rel_error, 3e-2);
}

TEST(GcnPropagateTest, SymmetricNormalization) {
  // Two nodes, one undirected link (two directed edges); both degree 1, so
  // out[i] = z[other] exactly.
  Matrix z0({{1.0, 2.0}, {3.0, 4.0}});
  Tensor z = Tensor::Leaf(z0, true);
  std::vector<uint32_t> src = {0, 1};
  std::vector<uint32_t> dst = {1, 0};
  Tensor out = GcnPropagate(z, src, dst, 2);
  EXPECT_TRUE(out.value().AllClose(Matrix({{3.0, 4.0}, {1.0, 2.0}})));
}

TEST(GcnPropagateTest, DegreeNormalization) {
  // Node 2 connects to both 0 and 1 (star). deg(2)=2, deg(0)=deg(1)=1.
  // out[2] = z0/sqrt(2) + z1/sqrt(2); out[0] = z2/sqrt(2).
  Matrix z0({{1.0}, {3.0}, {5.0}});
  Tensor z = Tensor::Leaf(z0, true);
  std::vector<uint32_t> src = {0, 2, 1, 2};
  std::vector<uint32_t> dst = {2, 0, 2, 1};
  Tensor out = GcnPropagate(z, src, dst, 3);
  const float r2 = std::sqrt(2.0f);
  EXPECT_NEAR(out.value().at(2, 0), (1.0f + 3.0f) / r2, 1e-5);
  EXPECT_NEAR(out.value().at(0, 0), 5.0f / r2, 1e-5);
}

TEST(GcnPropagateTest, EdgeMaskDropsEdges) {
  Matrix z0({{1.0}, {3.0}});
  Tensor z = Tensor::Leaf(z0, true);
  std::vector<uint32_t> src = {0, 1};
  std::vector<uint32_t> dst = {1, 0};
  std::vector<uint8_t> keep = {0, 1};  // drop 0->1
  Tensor out = GcnPropagate(z, src, dst, 2, &keep);
  EXPECT_FLOAT_EQ(out.value().at(1, 0), 0.0f);
  EXPECT_GT(out.value().at(0, 0), 0.0f);
}

TEST(GcnPropagateTest, AllEdgesDropped) {
  Matrix z0({{1.0}, {3.0}});
  Tensor z = Tensor::Leaf(z0, true);
  std::vector<uint32_t> src = {0, 1};
  std::vector<uint32_t> dst = {1, 0};
  std::vector<uint8_t> keep = {0, 0};
  Tensor out = GcnPropagate(z, src, dst, 2, &keep);
  EXPECT_TRUE(out.value().AllClose(Matrix(2, 1)));
}

// ---- Intention encoder ----

intent::IntentionForest MakeForest() {
  intent::IntentionForest f;
  uint32_t r = f.AddRoot("root");
  uint32_t a = f.AddChild(r, "a");
  f.AddChild(r, "b");
  f.AddChild(a, "a1");
  f.AddChild(a, "a2");
  f.Finalize();
  return f;
}

TEST(IntentionEncoderTest, EncodeShape) {
  Rng rng(8);
  intent::IntentionForest f = MakeForest();
  IntentionEncoder enc(f, 6, 5, &rng);
  Tensor z = enc.Encode();
  EXPECT_EQ(z.rows(), f.size());
  EXPECT_EQ(z.cols(), 6u);
  EXPECT_EQ(enc.levels(), f.num_levels());  // clamped to 3
}

TEST(IntentionEncoderTest, ParentDependsOnChildren) {
  // Changing a leaf's embedding must change its ancestors' encodings
  // (bottom-up aggregation) but not unrelated leaves.
  Rng rng(9);
  intent::IntentionForest f = MakeForest();
  IntentionEncoder enc(f, 4, 5, &rng);
  Tensor before = enc.Encode();
  // Perturb leaf 3 ("a1") raw embedding.
  auto params = enc.Parameters();
  // params[0] is the embedding table (registered first).
  params[0].mutable_value().at(3, 0) += 1.0f;
  Tensor after = enc.Encode();
  // Ancestors of 3: node 1 ("a") and root 0 change.
  bool root_changed = false, a_changed = false, b_changed = false;
  for (size_t k = 0; k < 4; ++k) {
    root_changed |= std::fabs(after.value().at(0, k) -
                              before.value().at(0, k)) > 1e-7;
    a_changed |= std::fabs(after.value().at(1, k) -
                           before.value().at(1, k)) > 1e-7;
    b_changed |= std::fabs(after.value().at(2, k) -
                           before.value().at(2, k)) > 1e-7;
  }
  EXPECT_TRUE(root_changed);
  EXPECT_TRUE(a_changed);
  EXPECT_FALSE(b_changed);  // sibling subtree unaffected
}

TEST(IntentionEncoderTest, AttachRespectsLevelBudget) {
  Rng rng(10);
  intent::IntentionForest f = MakeForest();
  IntentionEncoder enc1(f, 4, 1, &rng);  // only roots
  EXPECT_EQ(enc1.Attach(3), 0u);         // a1 -> root
  EXPECT_EQ(enc1.Attach(0), 0u);
  IntentionEncoder enc2(f, 4, 2, &rng);  // roots + depth 1
  EXPECT_EQ(enc2.Attach(3), 1u);         // a1 -> a
  EXPECT_EQ(enc2.Attach(2), 2u);         // b stays
}

TEST(IntentionEncoderTest, PositiveChainTruncated) {
  Rng rng(11);
  intent::IntentionForest f = MakeForest();
  IntentionEncoder enc(f, 4, 2, &rng);
  auto chain = enc.PositiveChain(3);  // a1 attaches to a, chain = {a, root}
  EXPECT_EQ(chain, (std::vector<uint32_t>{1, 0}));
}

TEST(IntentionEncoderTest, GradCheck) {
  Rng rng(12);
  intent::IntentionForest forest = MakeForest();
  IntentionEncoder enc(forest, 3, 5, &rng);
  auto res = nn::CheckGradients(
      [&] { return nn::MeanAll(nn::Tanh(enc.Encode())); }, enc.Parameters(),
      1e-2f);
  EXPECT_LT(res.max_rel_error, 3e-2);
}

}  // namespace
}  // namespace garcia::models
