#include "models/garcia_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "models/common.h"

namespace garcia::models {
namespace {

data::ScenarioConfig TinyDataConfig() {
  data::ScenarioConfig cfg;
  cfg.num_queries = 150;
  cfg.num_services = 60;
  cfg.num_intentions = 30;
  cfg.num_trees = 4;
  cfg.num_impressions = 6000;
  cfg.head_fraction = 0.06;
  return cfg;
}

const data::Scenario& Tiny() {
  static const data::Scenario* s =
      new data::Scenario(data::GenerateScenario(TinyDataConfig()));
  return *s;
}

TrainConfig FastTrainConfig() {
  TrainConfig cfg;
  cfg.embedding_dim = 16;
  cfg.pretrain_epochs = 3;
  cfg.finetune_epochs = 6;
  cfg.max_batches_per_epoch = 10;
  cfg.batch_size = 512;
  cfg.cl_batch_size = 96;
  return cfg;
}

TEST(GarciaModelTest, FitPredictEndToEnd) {
  GarciaModel model(FastTrainConfig());
  model.Fit(Tiny());
  auto scores = model.Predict(Tiny(), Tiny().test);
  ASSERT_EQ(scores.size(), Tiny().test.size());
  for (float p : scores) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
  EXPECT_GT(model.num_anchor_pairs(), 0u);
  EXPECT_TRUE(std::isfinite(model.last_pretrain_loss()));
  EXPECT_TRUE(std::isfinite(model.last_finetune_loss()));
}

TEST(GarciaModelTest, LearnsBetterThanRandom) {
  GarciaModel model(FastTrainConfig());
  model.Fit(Tiny());
  auto m = EvaluateModel(&model, Tiny(), Tiny().test);
  EXPECT_GT(m.overall.auc, 0.6) << "GARCIA failed to beat random ranking";
  EXPECT_GT(m.tail.auc, 0.55);
}

TEST(GarciaModelTest, DeterministicGivenSeed) {
  GarciaModel a(FastTrainConfig());
  GarciaModel b(FastTrainConfig());
  a.Fit(Tiny());
  b.Fit(Tiny());
  auto sa = a.Predict(Tiny(), Tiny().test);
  auto sb = b.Predict(Tiny(), Tiny().test);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) EXPECT_FLOAT_EQ(sa[i], sb[i]);
}

TEST(GarciaModelTest, SharedEncoderVariantRuns) {
  TrainConfig cfg = FastTrainConfig();
  cfg.share_encoders = true;  // GARCIA-Share (Fig. 3)
  GarciaModel model(cfg);
  model.Fit(Tiny());
  auto m = EvaluateModel(&model, Tiny(), Tiny().test);
  EXPECT_GT(m.overall.auc, 0.55);
}

TEST(GarciaModelTest, AblationTogglesRun) {
  for (int variant = 0; variant < 4; ++variant) {
    TrainConfig cfg = FastTrainConfig();
    cfg.pretrain_epochs = 1;
    cfg.finetune_epochs = 2;
    cfg.use_secl = (variant != 0 && variant != 2);
    cfg.use_igcl = (variant != 1 && variant != 2);
    cfg.use_ktcl = (variant != 3);
    GarciaModel model(cfg);
    model.Fit(Tiny());
    auto scores = model.Predict(Tiny(), Tiny().validation);
    EXPECT_EQ(scores.size(), Tiny().validation.size());
  }
}

TEST(GarciaModelTest, NoIntentionVariantRuns) {
  TrainConfig cfg = FastTrainConfig();
  cfg.use_intention = false;  // Fig. 7 reference baseline
  GarciaModel model(cfg);
  model.Fit(Tiny());
  EXPECT_GT(EvaluateModel(&model, Tiny(), Tiny().test).overall.auc, 0.5);
}

TEST(GarciaModelTest, TreeLevelSweepRuns) {
  for (size_t h : {1u, 3u, 5u}) {
    TrainConfig cfg = FastTrainConfig();
    cfg.pretrain_epochs = 1;
    cfg.finetune_epochs = 1;
    cfg.tree_levels = h;
    GarciaModel model(cfg);
    model.Fit(Tiny());
    EXPECT_EQ(model.Predict(Tiny(), Tiny().validation).size(),
              Tiny().validation.size());
  }
}

TEST(GarciaModelTest, InnerProductHeadRuns) {
  TrainConfig cfg = FastTrainConfig();
  cfg.inner_product_head = true;  // online serving variant (Fig. 9)
  GarciaModel model(cfg);
  model.Fit(Tiny());
  EXPECT_GT(EvaluateModel(&model, Tiny(), Tiny().test).overall.auc, 0.55);
}

TEST(GarciaModelTest, ExportedEmbeddingsShapes) {
  GarciaModel model(FastTrainConfig());
  model.Fit(Tiny());
  core::Matrix q = model.ExportQueryEmbeddings(Tiny());
  core::Matrix s = model.ExportServiceEmbeddings(Tiny());
  EXPECT_EQ(q.rows(), Tiny().num_queries());
  EXPECT_EQ(s.rows(), Tiny().num_services());
  EXPECT_EQ(q.cols(), FastTrainConfig().embedding_dim);
  EXPECT_GT(q.FrobeniusNorm(), 0.0);
  EXPECT_GT(s.FrobeniusNorm(), 0.0);
}

TEST(GarciaModelTest, PretrainingReducesContrastiveLoss) {
  // Mechanism check: the multi-granularity CL objective (Eq. 11) must be
  // optimizable — the last pre-training step's loss is well below the
  // first. (Whether pre-training helps tail AUC is a scale-dependent
  // question answered by bench/fig4_cl_ablation at benchmark scale; at this
  // miniature scale the anchor pool is too small for a stable comparison.)
  TrainConfig cfg = FastTrainConfig();
  cfg.pretrain_epochs = 4;
  cfg.finetune_epochs = 0;
  GarciaModel model(cfg);
  model.Fit(Tiny());
  EXPECT_GT(model.first_pretrain_loss(), 0.0f);
  EXPECT_LT(model.last_pretrain_loss(), model.first_pretrain_loss() * 0.8f);
}

TEST(GarciaModelTest, ThreadedTrainingMatchesSerialExactly) {
  // The kernel execution layer's determinism contract (core/kernels.h):
  // num_threads=4 must reproduce the serial loss trajectory and predictions
  // bit for bit, not approximately.
  TrainConfig serial_cfg = FastTrainConfig();
  serial_cfg.num_threads = 0;
  TrainConfig threaded_cfg = FastTrainConfig();
  threaded_cfg.num_threads = 4;

  GarciaModel serial(serial_cfg);
  GarciaModel threaded(threaded_cfg);
  serial.Fit(Tiny());
  threaded.Fit(Tiny());

  EXPECT_EQ(serial.first_pretrain_loss(), threaded.first_pretrain_loss());
  EXPECT_EQ(serial.last_pretrain_loss(), threaded.last_pretrain_loss());
  EXPECT_EQ(serial.last_finetune_loss(), threaded.last_finetune_loss());

  auto ss = serial.Predict(Tiny(), Tiny().test);
  auto st = threaded.Predict(Tiny(), Tiny().test);
  ASSERT_EQ(ss.size(), st.size());
  for (size_t i = 0; i < ss.size(); ++i) {
    ASSERT_EQ(ss[i], st[i]) << "prediction " << i;
  }
}

TEST(GarciaModelTest, FusedTrainingMatchesEagerExactly) {
  // Fusion bit-identity contract (DESIGN.md §5i): training with lazy
  // op-graph capture and fused elementwise→reduction kernels must
  // reproduce the eager loss trajectory and predictions bit for bit,
  // at every thread count, through both phases.
  TrainConfig eager_cfg = FastTrainConfig();
  eager_cfg.fuse_ops = false;
  eager_cfg.num_threads = 0;
  GarciaModel eager(eager_cfg);
  eager.Fit(Tiny());
  auto eager_scores = eager.Predict(Tiny(), Tiny().test);

  for (size_t threads : {size_t{0}, size_t{4}}) {
    TrainConfig fused_cfg = FastTrainConfig();
    fused_cfg.fuse_ops = true;
    fused_cfg.num_threads = threads;
    GarciaModel fused(fused_cfg);
    fused.Fit(Tiny());

    EXPECT_EQ(eager.first_pretrain_loss(), fused.first_pretrain_loss())
        << "threads=" << threads;
    EXPECT_EQ(eager.last_pretrain_loss(), fused.last_pretrain_loss())
        << "threads=" << threads;
    EXPECT_EQ(eager.last_finetune_loss(), fused.last_finetune_loss())
        << "threads=" << threads;

    auto fused_scores = fused.Predict(Tiny(), Tiny().test);
    ASSERT_EQ(eager_scores.size(), fused_scores.size());
    for (size_t i = 0; i < eager_scores.size(); ++i) {
      ASSERT_EQ(eager_scores[i], fused_scores[i])
          << "prediction " << i << " threads=" << threads;
    }
  }
}

TEST(GarciaModelTest, SampledFusedTrainingMatchesEagerExactly) {
  // Same bit-identity requirement on the sampled-subgraph path: a finite
  // fanout changes block shapes every step, so capture/flush boundaries
  // shift constantly — parity must still hold exactly.
  TrainConfig eager_cfg = FastTrainConfig();
  eager_cfg.sample_fanout = 8;
  eager_cfg.fuse_ops = false;
  TrainConfig fused_cfg = eager_cfg;
  fused_cfg.fuse_ops = true;

  GarciaModel eager(eager_cfg);
  GarciaModel fused(fused_cfg);
  eager.Fit(Tiny());
  fused.Fit(Tiny());

  EXPECT_EQ(eager.first_pretrain_loss(), fused.first_pretrain_loss());
  EXPECT_EQ(eager.last_pretrain_loss(), fused.last_pretrain_loss());
  EXPECT_EQ(eager.last_finetune_loss(), fused.last_finetune_loss());

  auto se = eager.Predict(Tiny(), Tiny().test);
  auto sf = fused.Predict(Tiny(), Tiny().test);
  ASSERT_EQ(se.size(), sf.size());
  for (size_t i = 0; i < se.size(); ++i) {
    ASSERT_EQ(se[i], sf[i]) << "prediction " << i;
  }
}

TEST(GarciaModelTest, PredictionsStableAcrossRepeatedCalls) {
  // Predict/Export reuse one cached post-Fit encoding; repeated calls must
  // agree with each other and with the export hooks exactly.
  GarciaModel model(FastTrainConfig());
  model.Fit(Tiny());
  auto first = model.Predict(Tiny(), Tiny().test);
  auto second = model.Predict(Tiny(), Tiny().test);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], second[i]);

  core::Matrix q1 = model.ExportQueryEmbeddings(Tiny());
  core::Matrix q2 = model.ExportQueryEmbeddings(Tiny());
  EXPECT_TRUE(q1.AllClose(q2, 0.0f));
}

TEST(GarciaModelTest, RefitInvalidatesEncodedCache) {
  // A second Fit must not serve stale embeddings: its Predict has to see
  // the re-trained parameters (re-Fit advances the model's RNG stream, so
  // at least one score changes).
  GarciaModel model(FastTrainConfig());
  model.Fit(Tiny());
  auto before = model.Predict(Tiny(), Tiny().test);
  model.Fit(Tiny());
  auto after = model.Predict(Tiny(), Tiny().test);
  ASSERT_EQ(before.size(), after.size());
  bool any_changed = false;
  for (size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) any_changed = true;
  }
  EXPECT_TRUE(any_changed);
}

TEST(GarciaModelTest, SampledTrainingThreadInvariantAndAccurate) {
  // Minibatch sampled-subgraph training (DESIGN.md §5e): with a finite
  // fanout, the block sampler draws only from its own rng stream, so
  // num_threads must not change the trajectory bit for bit — and sampled
  // training must still rank well above random.
  TrainConfig serial_cfg = FastTrainConfig();
  serial_cfg.sample_fanout = 4;
  serial_cfg.num_threads = 0;
  TrainConfig threaded_cfg = serial_cfg;
  threaded_cfg.num_threads = 4;

  GarciaModel serial(serial_cfg);
  GarciaModel threaded(threaded_cfg);
  serial.Fit(Tiny());
  threaded.Fit(Tiny());

  EXPECT_EQ(serial.first_pretrain_loss(), threaded.first_pretrain_loss());
  EXPECT_EQ(serial.last_pretrain_loss(), threaded.last_pretrain_loss());
  EXPECT_EQ(serial.last_finetune_loss(), threaded.last_finetune_loss());

  auto ss = serial.Predict(Tiny(), Tiny().test);
  auto st = threaded.Predict(Tiny(), Tiny().test);
  ASSERT_EQ(ss.size(), st.size());
  for (size_t i = 0; i < ss.size(); ++i) {
    ASSERT_EQ(ss[i], st[i]) << "prediction " << i;
  }

  auto m = EvaluateModel(&serial, Tiny(), Tiny().test);
  EXPECT_GT(m.overall.auc, 0.6) << "sampled training lost ranking quality";
}

TEST(GarciaModelTest, SampledSharedEncoderVariantRuns) {
  TrainConfig cfg = FastTrainConfig();
  cfg.sample_fanout = 3;
  cfg.share_encoders = true;
  GarciaModel model(cfg);
  model.Fit(Tiny());
  auto scores = model.Predict(Tiny(), Tiny().test);
  ASSERT_EQ(scores.size(), Tiny().test.size());
  for (float p : scores) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

}  // namespace
}  // namespace garcia::models
