#include <gtest/gtest.h>

#include "models/registry.h"

namespace garcia::models {
namespace {

data::ScenarioConfig TinyDataConfig() {
  data::ScenarioConfig cfg;
  cfg.num_queries = 150;
  cfg.num_services = 60;
  cfg.num_intentions = 30;
  cfg.num_trees = 4;
  cfg.num_impressions = 6000;
  cfg.head_fraction = 0.06;
  return cfg;
}

const data::Scenario& Tiny() {
  static const data::Scenario* s =
      new data::Scenario(data::GenerateScenario(TinyDataConfig()));
  return *s;
}

TrainConfig FastTrainConfig() {
  TrainConfig cfg;
  cfg.embedding_dim = 16;
  cfg.pretrain_epochs = 1;
  cfg.finetune_epochs = 3;
  cfg.max_batches_per_epoch = 6;
  cfg.batch_size = 512;
  cfg.cl_batch_size = 96;
  return cfg;
}

TEST(RegistryTest, SixModelsInPaperOrder) {
  ASSERT_EQ(AllModelNames().size(), 6u);
  EXPECT_EQ(AllModelNames().front(), "Wide&Deep");
  EXPECT_EQ(AllModelNames().back(), "GARCIA");
  EXPECT_EQ(BaselineModelNames().size(), 5u);
}

TEST(RegistryTest, CreatesEveryModel) {
  for (const auto& name : AllModelNames()) {
    auto model = CreateModel(name, FastTrainConfig());
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), name);
  }
}

class BaselineFitTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineFitTest, FitsAndBeatsRandom) {
  auto model = CreateModel(GetParam(), FastTrainConfig());
  model->Fit(Tiny());
  auto scores = model->Predict(Tiny(), Tiny().test);
  ASSERT_EQ(scores.size(), Tiny().test.size());
  for (float p : scores) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
  auto m = EvaluateModel(model.get(), Tiny(), Tiny().test);
  EXPECT_GT(m.overall.auc, 0.55) << GetParam() << " failed to learn";
}

TEST_P(BaselineFitTest, DeterministicGivenSeed) {
  auto a = CreateModel(GetParam(), FastTrainConfig());
  auto b = CreateModel(GetParam(), FastTrainConfig());
  a->Fit(Tiny());
  b->Fit(Tiny());
  auto sa = a->Predict(Tiny(), Tiny().validation);
  auto sb = b->Predict(Tiny(), Tiny().validation);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) EXPECT_FLOAT_EQ(sa[i], sb[i]);
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineFitTest,
                         ::testing::Values("Wide&Deep", "LightGCN", "KGAT",
                                           "SGL", "SimSGL"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return n;
                         });

TEST(BaselineEmbeddingsTest, GnnBaselinesExportEmbeddings) {
  for (const std::string name : {"LightGCN", "KGAT"}) {
    auto model = CreateModel(name, FastTrainConfig());
    model->Fit(Tiny());
    core::Matrix q = model->ExportQueryEmbeddings(Tiny());
    core::Matrix s = model->ExportServiceEmbeddings(Tiny());
    EXPECT_EQ(q.rows(), Tiny().num_queries());
    EXPECT_EQ(s.rows(), Tiny().num_services());
    EXPECT_GT(q.FrobeniusNorm(), 0.0);
  }
}

TEST(BaselineEmbeddingsTest, WideDeepHasNoEmbeddingSpace) {
  auto model = CreateModel("Wide&Deep", FastTrainConfig());
  model->Fit(Tiny());
  EXPECT_TRUE(model->ExportQueryEmbeddings(Tiny()).empty());
}

TEST(BaselineFusionTest, FusedTrainingMatchesEagerExactly) {
  // The fusion pass's bit-identity contract (DESIGN.md §5i) holds for the
  // baselines too: LightGCN exercises the GNN propagate + normalize path,
  // Wide&Deep the pure MLP/BCE path. Fused predictions must match eager
  // bit for bit.
  for (const std::string name : {"LightGCN", "Wide&Deep"}) {
    TrainConfig eager_cfg = FastTrainConfig();
    eager_cfg.fuse_ops = false;
    TrainConfig fused_cfg = FastTrainConfig();
    fused_cfg.fuse_ops = true;
    fused_cfg.num_threads = 4;

    auto eager = CreateModel(name, eager_cfg);
    auto fused = CreateModel(name, fused_cfg);
    eager->Fit(Tiny());
    fused->Fit(Tiny());
    auto se = eager->Predict(Tiny(), Tiny().test);
    auto sf = fused->Predict(Tiny(), Tiny().test);
    ASSERT_EQ(se.size(), sf.size()) << name;
    for (size_t i = 0; i < se.size(); ++i) {
      ASSERT_EQ(se[i], sf[i]) << name << " prediction " << i;
    }
  }
}

TEST(BaselineSamplingTest, GnnBaselinesTrainOnSampledBlocks) {
  // Each GNN baseline's shared propagate path must also run over sampled
  // blocks (DESIGN.md §5e) and keep producing valid probabilities.
  TrainConfig cfg = FastTrainConfig();
  cfg.sample_fanout = 3;
  for (const std::string& name : {"LightGCN", "SGL", "SimSGL", "KGAT"}) {
    auto model = CreateModel(name, cfg);
    model->Fit(Tiny());
    auto scores = model->Predict(Tiny(), Tiny().test);
    ASSERT_EQ(scores.size(), Tiny().test.size()) << name;
    for (float p : scores) {
      ASSERT_GE(p, 0.0f) << name;
      ASSERT_LE(p, 1.0f) << name;
    }
  }
}

}  // namespace
}  // namespace garcia::models
