#include "graph/graph_builder.h"

#include <gtest/gtest.h>

namespace garcia::graph {
namespace {

TEST(CorrelationKeysTest, SharedWith) {
  CorrelationKeys a{1, 2, 3};
  CorrelationKeys b{1, -1, 3};
  EXPECT_EQ(a.SharedWith(b), kCorrCity | kCorrCategory);
  CorrelationKeys c{-1, -1, -1};
  EXPECT_EQ(a.SharedWith(c), 0);
  // -1 on both sides must not count as shared.
  EXPECT_EQ(c.SharedWith(c), 0);
}

TEST(GraphBuilderTest, InteractionConditionRequiresClicks) {
  GraphBuilder b(2, 2, 1);
  b.AddInteraction(0, 0, 100, 5);   // clicked -> edge
  b.AddInteraction(1, 1, 100, 0);   // impressions only -> no edge
  SearchGraph g = b.Build({});
  EXPECT_EQ(g.num_edges(), 2u);  // one link, two directions
  EXPECT_EQ(g.Degree(g.QueryNode(0)), 1u);
  EXPECT_EQ(g.Degree(g.QueryNode(1)), 0u);
}

TEST(GraphBuilderTest, CtrIsClicksOverImpressions) {
  GraphBuilder b(1, 1, 1);
  b.AddInteraction(0, 0, 50, 10);
  b.AddInteraction(0, 0, 50, 10);  // accumulates: 100 impressions, 20 clicks
  SearchGraph g = b.Build({});
  auto [lo, hi] = g.IncomingRange(g.ServiceNode(0));
  ASSERT_EQ(hi - lo, 1u);
  EXPECT_FLOAT_EQ(g.edge_features().at(lo, 0), 0.2f);
}

TEST(GraphBuilderTest, MinClicksThreshold) {
  GraphBuilder b(1, 1, 1);
  b.AddInteraction(0, 0, 100, 2);
  GraphBuildConfig cfg;
  cfg.min_clicks = 3;
  EXPECT_EQ(b.Build(cfg).num_edges(), 0u);
  cfg.min_clicks = 2;
  EXPECT_EQ(b.Build(cfg).num_edges(), 2u);
}

TEST(GraphBuilderTest, CorrelationConditionLinksSharedKeys) {
  GraphBuilder b(2, 3, 1);
  b.SetQueryCorrelations({{/*city=*/1, /*brand=*/7, /*cat=*/-1},
                          {/*city=*/-1, /*brand=*/-1, /*cat=*/-1}});
  b.SetServiceCorrelations({{1, -1, -1},    // shares city with q0
                            {-1, 7, -1},    // shares brand with q0
                            {2, 9, 4}});    // shares nothing
  SearchGraph g = b.Build({});
  EXPECT_EQ(g.Degree(g.QueryNode(0)), 2u);
  EXPECT_EQ(g.Degree(g.QueryNode(1)), 0u);
  EXPECT_EQ(g.Degree(g.ServiceNode(2)), 0u);
}

TEST(GraphBuilderTest, CorrelationDegreeCap) {
  const size_t services = 30;
  GraphBuilder b(1, services, 1);
  b.SetQueryCorrelations({{/*city=*/5, -1, -1}});
  std::vector<CorrelationKeys> sk(services, CorrelationKeys{5, -1, -1});
  b.SetServiceCorrelations(sk);
  GraphBuildConfig cfg;
  cfg.max_correlation_degree = 4;
  SearchGraph g = b.Build(cfg);
  EXPECT_EQ(g.Degree(g.QueryNode(0)), 4u);
}

TEST(GraphBuilderTest, InteractionEdgeAlsoCarriesSharedCorrelations) {
  GraphBuilder b(1, 1, 1);
  b.SetQueryCorrelations({{1, 2, 3}});
  b.SetServiceCorrelations({{1, 2, -1}});
  b.AddInteraction(0, 0, 10, 5);
  SearchGraph g = b.Build({});
  EXPECT_EQ(g.num_edges(), 2u);  // no duplicate correlation link
  auto [lo, hi] = g.IncomingRange(g.ServiceNode(0));
  ASSERT_EQ(hi - lo, 1u);
  EXPECT_FLOAT_EQ(g.edge_features().at(lo, 1), 1.0f);  // interaction
  EXPECT_FLOAT_EQ(g.edge_features().at(lo, 2), 1.0f);  // city shared
  EXPECT_FLOAT_EQ(g.edge_features().at(lo, 3), 1.0f);  // brand shared
  EXPECT_FLOAT_EQ(g.edge_features().at(lo, 4), 0.0f);  // category not
}

TEST(GraphBuilderTest, DeterministicAcrossBuilds) {
  GraphBuilder b(5, 5, 1);
  for (uint32_t q = 0; q < 5; ++q) {
    for (uint32_t s = 0; s < 5; ++s) {
      if ((q + s) % 2 == 0) b.AddInteraction(q, s, 10, 1 + q);
    }
  }
  SearchGraph g1 = b.Build({});
  SearchGraph g2 = b.Build({});
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_EQ(g1.edge_src(), g2.edge_src());
  EXPECT_EQ(g1.edge_dst(), g2.edge_dst());
  EXPECT_TRUE(g1.edge_features().AllClose(g2.edge_features()));
}

}  // namespace
}  // namespace garcia::graph
