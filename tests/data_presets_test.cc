#include "data/presets.h"

#include <gtest/gtest.h>

#include "data/stats.h"

namespace garcia::data {
namespace {

constexpr double kTestScale = 0.25;  // keep preset tests fast

TEST(PresetsTest, SixDatasetsInPaperOrder) {
  ASSERT_EQ(AllDatasets().size(), 6u);
  EXPECT_EQ(DatasetName(AllDatasets()[0]), "Sep. A");
  EXPECT_EQ(DatasetName(AllDatasets()[3]), "Software");
  EXPECT_EQ(IndustrialDatasets().size(), 3u);
  EXPECT_EQ(PublicDatasets().size(), 3u);
}

TEST(PresetsTest, IndustrialWindowsSharePopulation) {
  auto a = PresetConfig(DatasetId::kSepA);
  auto b = PresetConfig(DatasetId::kSepB);
  auto c = PresetConfig(DatasetId::kSepC);
  EXPECT_EQ(a.entity_seed, b.entity_seed);
  EXPECT_EQ(b.entity_seed, c.entity_seed);
  EXPECT_NE(a.event_seed, b.event_seed);
  EXPECT_NE(b.event_seed, c.event_seed);
}

TEST(PresetsTest, HeadFractionsMatchPaperTable1) {
  EXPECT_NEAR(PresetConfig(DatasetId::kSoftware).head_fraction, 0.1095, 1e-9);
  EXPECT_NEAR(PresetConfig(DatasetId::kVideoGame).head_fraction, 0.0362,
              1e-9);
  EXPECT_NEAR(PresetConfig(DatasetId::kMusic).head_fraction, 0.0363, 1e-9);
  // Industrial: paper reports 1.18%-1.51% head queries.
  const double f = PresetConfig(DatasetId::kSepA).head_fraction;
  EXPECT_GT(f, 0.008);
  EXPECT_LT(f, 0.02);
}

TEST(PresetsTest, ScaleShrinksCounts) {
  auto full = PresetConfig(DatasetId::kSepA, 1.0);
  auto half = PresetConfig(DatasetId::kSepA, 0.5);
  EXPECT_LT(half.num_queries, full.num_queries);
  EXPECT_LT(half.num_impressions, full.num_impressions);
}

TEST(PresetsTest, IndustrialPvShareIsPaperShaped) {
  // The defining statistic: ~1% of queries take ~90% of search PV
  // (paper Table I: 93.57%-94.07% head PV share).
  Scenario s = GeneratePreset(DatasetId::kSepA, kTestScale);
  DatasetStats stats = ComputeDatasetStats(s);
  EXPECT_GT(stats.head_pv_share, 0.75);
  EXPECT_LT(stats.head_pv_share, 0.99);
  EXPECT_LT(stats.head_query_share, 0.03);
}

TEST(PresetsTest, PublicDatasetsMilderSkew) {
  Scenario sw = GeneratePreset(DatasetId::kSoftware, kTestScale);
  DatasetStats st = ComputeDatasetStats(sw);
  EXPECT_NEAR(st.head_query_share, 0.1095, 0.02);
  EXPECT_LT(st.head_pv_share, 0.9);
}

TEST(PresetsTest, RelativeSizesFollowPaper) {
  auto sw = PresetConfig(DatasetId::kSoftware);
  auto vg = PresetConfig(DatasetId::kVideoGame);
  auto mu = PresetConfig(DatasetId::kMusic);
  // Video game > Music > Software in every dimension (paper Table I).
  EXPECT_GT(vg.num_queries, mu.num_queries);
  EXPECT_GT(mu.num_queries, sw.num_queries);
  EXPECT_GT(vg.num_impressions, mu.num_impressions);
  EXPECT_GT(mu.num_impressions, sw.num_impressions);
}

TEST(PresetsTest, StatsComputationsConsistent) {
  Scenario s = GeneratePreset(DatasetId::kMusic, kTestScale);
  DatasetStats d = ComputeDatasetStats(s);
  EXPECT_NEAR(d.head_query_share + d.tail_query_share, 1.0, 1e-9);
  EXPECT_NEAR(d.head_pv_share + d.tail_pv_share, 1.0, 1e-9);
  EXPECT_EQ(d.num_train + d.num_validation + d.num_test,
            s.config.num_impressions);

  GraphStats g = ComputeGraphStats(s);
  EXPECT_EQ(g.head_edges + g.tail_edges, s.graph.num_edges() / 2);
  EXPECT_EQ(g.intent_nodes, s.forest.size());
  EXPECT_EQ(g.intent_edges, s.forest.size() - s.forest.num_trees());
  EXPECT_GT(g.tail_edges, g.head_edges);  // tails dominate link count
}

}  // namespace
}  // namespace garcia::data
