#include "graph/search_graph.h"

#include <gtest/gtest.h>

namespace garcia::graph {
namespace {

SearchGraph MakeTinyGraph() {
  // 3 queries, 2 services.
  SearchGraph g(3, 2, 4);
  g.AddLink(0, 0, EdgeKind::kInteraction, 0.5f, kCorrBrand);
  g.AddLink(0, 1, EdgeKind::kInteraction, 0.2f, 0);
  g.AddLink(1, 0, EdgeKind::kCorrelation, 0.0f, kCorrCity | kCorrCategory);
  g.Finalize();
  return g;
}

TEST(SearchGraphTest, NodeIdLayout) {
  SearchGraph g(3, 2, 1);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.QueryNode(2), 2u);
  EXPECT_EQ(g.ServiceNode(0), 3u);
  EXPECT_EQ(g.ServiceNode(1), 4u);
  EXPECT_TRUE(g.IsQueryNode(2));
  EXPECT_FALSE(g.IsQueryNode(3));
  EXPECT_EQ(g.ServiceIdOf(4), 1u);
}

TEST(SearchGraphTest, LinksAreBidirectional) {
  SearchGraph g = MakeTinyGraph();
  EXPECT_EQ(g.num_edges(), 6u);  // 3 links x 2 directions
}

TEST(SearchGraphTest, DegreesAfterFinalize) {
  SearchGraph g = MakeTinyGraph();
  EXPECT_EQ(g.Degree(g.QueryNode(0)), 2u);
  EXPECT_EQ(g.Degree(g.QueryNode(1)), 1u);
  EXPECT_EQ(g.Degree(g.QueryNode(2)), 0u);
  EXPECT_EQ(g.Degree(g.ServiceNode(0)), 2u);
  EXPECT_EQ(g.Degree(g.ServiceNode(1)), 1u);
}

TEST(SearchGraphTest, CsrRangesConsistentWithEdgeArrays) {
  SearchGraph g = MakeTinyGraph();
  size_t total = 0;
  for (uint32_t n = 0; n < g.num_nodes(); ++n) {
    auto [lo, hi] = g.IncomingRange(n);
    EXPECT_EQ(hi - lo, g.Degree(n));
    for (size_t e = lo; e < hi; ++e) {
      EXPECT_EQ(g.edge_dst()[e], n);
    }
    total += hi - lo;
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(SearchGraphTest, EdgeFeatureLayout) {
  SearchGraph g = MakeTinyGraph();
  ASSERT_EQ(g.edge_features().cols(), kEdgeFeatureDim);
  // Find the interaction edge service0 <- query0 (dst = service node 3).
  auto [lo, hi] = g.IncomingRange(g.ServiceNode(0));
  bool found = false;
  for (size_t e = lo; e < hi; ++e) {
    if (g.edge_src()[e] == g.QueryNode(0)) {
      found = true;
      EXPECT_FLOAT_EQ(g.edge_features().at(e, 0), 0.5f);  // ctr
      EXPECT_FLOAT_EQ(g.edge_features().at(e, 1), 1.0f);  // interaction
      EXPECT_FLOAT_EQ(g.edge_features().at(e, 2), 0.0f);  // city
      EXPECT_FLOAT_EQ(g.edge_features().at(e, 3), 1.0f);  // brand
      EXPECT_FLOAT_EQ(g.edge_features().at(e, 4), 0.0f);  // category
    }
  }
  EXPECT_TRUE(found);
}

TEST(SearchGraphTest, CorrelationEdgeFeatures) {
  SearchGraph g = MakeTinyGraph();
  auto [lo, hi] = g.IncomingRange(g.QueryNode(1));
  ASSERT_EQ(hi - lo, 1u);
  EXPECT_FLOAT_EQ(g.edge_features().at(lo, 1), 0.0f);  // not interaction
  EXPECT_FLOAT_EQ(g.edge_features().at(lo, 2), 1.0f);  // city
  EXPECT_FLOAT_EQ(g.edge_features().at(lo, 4), 1.0f);  // category
}

TEST(SearchGraphTest, AttributesShape) {
  SearchGraph g = MakeTinyGraph();
  EXPECT_EQ(g.attributes().rows(), 5u);
  EXPECT_EQ(g.attributes().cols(), 4u);
}

TEST(SearchGraphTest, EmptyGraphFinalizes) {
  SearchGraph g(2, 2, 1);
  g.Finalize();
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.Degree(0), 0u);
}

TEST(EdgeTest, WriteFeaturesAllBits) {
  Edge e;
  e.kind = EdgeKind::kCorrelation;
  e.corr_mask = kCorrCity | kCorrBrand | kCorrCategory;
  e.ctr = 0.0f;
  float f[kEdgeFeatureDim];
  e.WriteFeatures(f);
  EXPECT_FLOAT_EQ(f[1], 0.0f);
  EXPECT_FLOAT_EQ(f[2], 1.0f);
  EXPECT_FLOAT_EQ(f[3], 1.0f);
  EXPECT_FLOAT_EQ(f[4], 1.0f);
}

}  // namespace
}  // namespace garcia::graph
