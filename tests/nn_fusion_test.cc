// Copyright (c) 2026 GARCIA reproduction authors.
// Fused-vs-eager bit-parity suite for the lazy op-graph fusion pass
// (nn/op_graph.h, DESIGN.md §5i).
//
// The contract under test: with ExecutionContext::set_fusion(true), every
// forward value, loss, and leaf gradient is BIT-IDENTICAL (memcmp, so even
// -0.0 vs +0.0 counts) to the eager tape, for any thread count. Each test
// builds the same computation twice from identical leaf values — once
// eager/serial, once fused at several thread counts — and compares raw
// bytes. The only exception is the hybrid path (a consumer outside the
// chain reads a claimed interior after the flush), which is equal by
// linearity but reassociates one gradient sum; it is checked to float
// accuracy instead.

#include "nn/op_graph.h"

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "core/kernels.h"
#include "core/rng.h"
#include "nn/gradcheck.h"
#include "nn/loss.h"
#include "nn/ops.h"

namespace garcia::nn {
namespace {

using core::Matrix;
using core::Rng;

using Builder = std::function<Tensor(const std::vector<Tensor>&)>;

struct TapeRun {
  float loss = 0.0f;
  std::vector<Matrix> grads;
};

/// Builds the loss from fresh leaves holding `leaf_values`, runs Backward,
/// returns loss + leaf gradients — under the given execution mode.
TapeRun RunTape(bool fuse, size_t threads, const std::vector<Matrix>& leaf_values,
            const Builder& build) {
  core::ExecutionContext ctx(threads);
  ctx.set_fusion(fuse);
  core::ScopedExecution scoped(&ctx);
  std::vector<Tensor> leaves;
  leaves.reserve(leaf_values.size());
  for (const Matrix& v : leaf_values) leaves.push_back(Tensor::Leaf(v, true));
  Tensor loss = build(leaves);
  loss.Backward();
  TapeRun r;
  r.loss = loss.scalar();
  for (const Tensor& l : leaves) r.grads.push_back(l.grad());
  return r;
}

void ExpectBitEqual(const Matrix& a, const Matrix& b, const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": gradient bytes differ";
}

/// The parity harness: eager/serial is the reference; fused must match it
/// bit for bit at every thread count.
void CheckParity(const std::vector<Matrix>& leaves, const Builder& build) {
  const TapeRun eager = RunTape(/*fuse=*/false, /*threads=*/0, leaves, build);
  for (size_t threads : {0, 2, 4}) {
    const TapeRun fused = RunTape(/*fuse=*/true, threads, leaves, build);
    EXPECT_EQ(std::memcmp(&eager.loss, &fused.loss, sizeof(float)), 0)
        << "loss differs at threads=" << threads << " (eager " << eager.loss
        << " vs fused " << fused.loss << ")";
    ASSERT_EQ(eager.grads.size(), fused.grads.size());
    for (size_t i = 0; i < eager.grads.size(); ++i) {
      ExpectBitEqual(eager.grads[i], fused.grads[i],
                     "leaf " + std::to_string(i) + " at threads=" +
                         std::to_string(threads));
    }
  }
}

std::vector<Matrix> RandLeaves(std::initializer_list<std::pair<size_t, size_t>>
                                   shapes,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> out;
  for (const auto& [r, c] : shapes) {
    out.push_back(Matrix::Randn(r, c, &rng, 0.0f, 1.0f));
  }
  return out;
}

// ----- capture mechanics -----

TEST(FusionCaptureTest, DefaultContextStaysEager) {
  // No fusion opt-in → ops materialize at construction, as always.
  Tensor a = Tensor::Constant(Matrix({{1, 2}}));
  Tensor b = Tensor::Constant(Matrix({{3, 4}}));
  Tensor s = Add(a, b);
  EXPECT_TRUE(s.node()->materialized);
  EXPECT_TRUE(s.value().AllClose(Matrix({{4, 6}})));
}

TEST(FusionCaptureTest, CaptureDefersUntilValueRead) {
  core::ExecutionContext ctx(0);
  ctx.set_fusion(true);
  core::ScopedExecution scoped(&ctx);
  Tensor a = Tensor::Constant(Matrix({{1, 2}}));
  Tensor b = Tensor::Constant(Matrix({{3, 4}}));
  Tensor s = Scale(Add(a, b), 0.5f);
  EXPECT_FALSE(s.node()->materialized);
  EXPECT_EQ(s.rows(), 1u);  // logical shape works while pending
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_TRUE(s.value().AllClose(Matrix({{2, 3}})));  // forces the chain
  EXPECT_TRUE(s.node()->materialized);
}

TEST(FusionCaptureTest, DeadPendingNodesAreDropped) {
  core::ExecutionContext ctx(0);
  ctx.set_fusion(true);
  core::ScopedExecution scoped(&ctx);
  Tensor a = Tensor::Leaf(Matrix({{1, 2}}), true);
  { Tensor unused = Tanh(Scale(a, 2.0f)); }  // recorded, never forced
  // The capture must not leak into later work on the same leaf.
  Tensor z = Scale(a, 3.0f);
  EXPECT_TRUE(z.value().AllClose(Matrix({{3, 6}})));
}

// ----- headless chain flushes -----

TEST(FusionParityTest, HeadlessSigmoidChain) {
  CheckParity(RandLeaves({{7, 5}, {7, 5}}, 11), [](const auto& l) {
    return SumAll(Sigmoid(Scale(Add(l[0], l[1]), 0.5f)));
  });
}

TEST(FusionParityTest, ReluChainCrossingZero) {
  // ReLU's backward SKIPS the add where x <= 0 (it does not add 0.0), and
  // Sub produces negative zeros; memcmp parity proves the fused backward
  // replays both exactly.
  CheckParity(RandLeaves({{9, 6}, {9, 6}}, 13), [](const auto& l) {
    Tensor z = Relu(Sub(l[0], l[1]));
    return SumAll(Mul(z, z));
  });
}

TEST(FusionParityTest, SelfMulChain) {
  CheckParity(RandLeaves({{5, 4}}, 17), [](const auto& l) {
    return SumAll(Mul(l[0], l[0]));  // self-op: operand is base AND side
  });
}

TEST(FusionParityTest, FanOutInteriorMaterializes) {
  // t feeds two captured consumers, so it is a chain boundary: both chains
  // must see one shared materialized buffer, exactly like eager.
  CheckParity(RandLeaves({{6, 6}, {6, 6}}, 19), [](const auto& l) {
    Tensor t = Add(l[0], l[1]);
    Tensor u = Scale(t, 2.0f);
    Tensor v = Tanh(t);
    return SumAll(Add(u, v));
  });
}

TEST(FusionParityTest, LongChainSplitsAtRegisterCap) {
  // 20 stacked ops exceed the 15-op chain cap, forcing a split into two
  // fused programs; the split must be invisible in the numbers.
  CheckParity(RandLeaves({{4, 8}}, 23), [](const auto& l) {
    Tensor z = l[0];
    for (int i = 0; i < 10; ++i) {
      z = AddScalar(Scale(z, 1.01f), -0.005f);
    }
    return SumAll(Tanh(z));
  });
}

TEST(FusionParityTest, MixedBinaryChainWithSides) {
  CheckParity(RandLeaves({{8, 3}, {8, 3}, {8, 3}, {8, 3}}, 29),
              [](const auto& l) {
                // Chain with a grad-requiring side at every binary step.
                Tensor z = Mul(Sub(Add(l[0], l[1]), l[2]), l[3]);
                return SumAll(LeakyRelu(z, 0.2f));
              });
}

// ----- fused reduction heads -----

TEST(FusionParityTest, L2NormalizeHead) {
  CheckParity(RandLeaves({{10, 8}, {10, 8}}, 31), [](const auto& l) {
    Tensor y = L2NormalizeRows(Tanh(Add(l[0], l[1])));
    return MeanAll(Mul(y, y));
  });
}

TEST(FusionParityTest, SoftmaxRowsHead) {
  CheckParity(RandLeaves({{6, 9}, {6, 9}, {6, 9}}, 37), [](const auto& l) {
    Tensor sm = SoftmaxRows(Scale(Sub(l[0], l[1]), 1.3f));
    return SumAll(Mul(sm, l[2]));
  });
}

TEST(FusionParityTest, SegmentSoftmaxHead) {
  std::vector<uint32_t> seg = {0, 0, 1, 1, 1, 2, 4, 4};  // segment 3 empty
  CheckParity(RandLeaves({{8, 1}, {8, 1}, {8, 1}}, 41),
              [seg](const auto& l) {
                Tensor s = LeakyRelu(Add(l[0], l[1]), 0.2f);
                Tensor alpha = SegmentSoftmax(s, seg, 5);
                return SumAll(Mul(alpha, l[2]));
              });
}

TEST(FusionParityTest, CrossEntropyHead) {
  std::vector<uint32_t> targets = {3, 0, 7, 2, 5, 1};
  CheckParity(RandLeaves({{6, 8}, {6, 8}}, 43), [targets](const auto& l) {
    Tensor logits = Scale(Add(l[0], l[1]), 0.7f);
    return CrossEntropyWithLogits(logits, targets);
  });
}

TEST(FusionParityTest, InfoNceLoss) {
  // The production InfoNCE path: L2 heads on both towers, then the
  // Scale(MatMulNT)→cross-entropy chain fuses into the loss.
  std::vector<uint32_t> targets = {0, 1, 2, 3};
  CheckParity(RandLeaves({{4, 12}, {4, 12}}, 47), [targets](const auto& l) {
    return InfoNce(l[0], l[1], targets, 0.1f);
  });
}

TEST(FusionParityTest, MaskedInfoNceLoss) {
  // Scale→Add(constant penalty)→cross-entropy: a length-2 chain into the
  // fused head, with a no-grad side.
  std::vector<uint32_t> targets = {0, 1, 2, 3};
  Matrix mask(4, 4, 1.0f);
  mask.at(0, 2) = 0.0f;
  mask.at(3, 1) = 0.0f;
  CheckParity(RandLeaves({{4, 12}, {4, 12}}, 53),
              [targets, mask](const auto& l) {
                return MaskedInfoNce(l[0], l[1], targets, mask, 0.1f);
              });
}

TEST(FusionParityTest, AttentionPatternLeakyReluIntoSegmentSoftmax) {
  // The GNN attention shape: LeakyRelu(scores) feeding segment softmax.
  std::vector<uint32_t> seg = {0, 0, 0, 1, 2, 2, 3, 3, 3, 3};
  CheckParity(RandLeaves({{10, 1}, {10, 1}}, 59), [seg](const auto& l) {
    Tensor scores = LeakyRelu(Add(l[0], l[1]), 0.2f);
    Tensor alpha = SegmentSoftmax(scores, seg, 4);
    return SumAll(Mul(alpha, alpha));
  });
}

// ----- post-flush reads of claimed interiors (hybrid backward) -----

TEST(FusionHybridTest, PostFlushReadRematerializesBitExactly) {
  core::ExecutionContext ctx(0);
  ctx.set_fusion(true);
  core::ScopedExecution scoped(&ctx);
  Rng rng(61);
  Matrix av = Matrix::Randn(5, 6, &rng, 0.0f, 1.0f);
  Tensor a = Tensor::Leaf(av, true);
  Tensor t = Scale(a, 2.0f);
  Tensor head = SoftmaxRows(t);  // claims t without materializing it
  (void)head.value();
  EXPECT_FALSE(t.node()->materialized);
  const Matrix& tv = t.value();  // forces the claimed-interior recompute
  Matrix expect = av;
  expect.Scale(2.0f);
  EXPECT_EQ(std::memcmp(tv.data(), expect.data(), tv.size() * sizeof(float)),
            0);
}

TEST(FusionHybridTest, ExternalConsumerGradientMatchesEagerClosely) {
  // A consumer outside the chain deposits gradient into the claimed tip;
  // fused execution propagates the chain part via the plan and the outside
  // part eagerly. That reassociates one sum, so this checks float
  // accuracy, not bits.
  auto build = [](const std::vector<Tensor>& l) {
    Tensor t = Scale(l[0], 2.0f);
    Tensor head = SoftmaxRows(t);
    Tensor outside = SumAll(t);  // second consumer, after the head claimed t
    return Add(SumAll(Mul(head, head)), outside);
  };
  const auto leaves = RandLeaves({{5, 7}}, 67);
  const TapeRun eager = RunTape(false, 0, leaves, build);
  const TapeRun fused = RunTape(true, 0, leaves, build);
  EXPECT_NEAR(eager.loss, fused.loss, 1e-6f);
  ASSERT_EQ(eager.grads.size(), fused.grads.size());
  EXPECT_TRUE(eager.grads[0].AllClose(fused.grads[0], 1e-5f));
}

// ----- gradcheck through fused chains -----

TEST(FusionGradCheckTest, FusedChainsAgainstFiniteDifferences) {
  core::ExecutionContext ctx(0);
  ctx.set_fusion(true);
  core::ScopedExecution scoped(&ctx);
  Rng rng(71);
  Tensor a = Tensor::Leaf(Matrix::Randn(4, 5, &rng, 0.0f, 0.5f), true);
  Tensor b = Tensor::Leaf(Matrix::Randn(4, 5, &rng, 0.0f, 0.5f), true);
  std::vector<uint32_t> targets = {1, 3, 0, 2};
  auto loss_fn = [&]() {
    Tensor z = Tanh(Mul(Add(a, b), b));
    Tensor logits = Scale(z, 1.7f);
    return CrossEntropyWithLogits(logits, targets);
  };
  const GradCheckResult res = CheckGradients(loss_fn, {a, b});
  EXPECT_LT(res.max_rel_error, 2e-2) << "abs " << res.max_abs_error;
  EXPECT_GT(res.checked_entries, 0u);
}

TEST(FusionGradCheckTest, FusedSegmentSoftmaxAgainstFiniteDifferences) {
  core::ExecutionContext ctx(0);
  ctx.set_fusion(true);
  core::ScopedExecution scoped(&ctx);
  Rng rng(73);
  Tensor s = Tensor::Leaf(Matrix::Randn(8, 1, &rng, 0.0f, 0.5f), true);
  Tensor w = Tensor::Leaf(Matrix::Randn(8, 1, &rng, 0.0f, 0.5f), true);
  std::vector<uint32_t> seg = {0, 0, 1, 1, 1, 2, 2, 2};
  auto loss_fn = [&]() {
    Tensor alpha = SegmentSoftmax(LeakyRelu(s, 0.2f), seg, 3);
    return SumAll(Mul(alpha, w));
  };
  const GradCheckResult res = CheckGradients(loss_fn, {s, w});
  EXPECT_LT(res.max_rel_error, 2e-2) << "abs " << res.max_abs_error;
}

// ----- graph introspection -----

TEST(FusionDumpDotTest, PendingAndFlushedGraphsRender) {
  core::ExecutionContext ctx(0);
  ctx.set_fusion(true);
  core::ScopedExecution scoped(&ctx);
  Rng rng(79);
  Tensor a = Tensor::Leaf(Matrix::Randn(3, 4, &rng, 0.0f, 1.0f), true);
  Tensor b = Tensor::Leaf(Matrix::Randn(3, 4, &rng, 0.0f, 1.0f), true);
  Tensor y = L2NormalizeRows(Tanh(Add(a, b)));
  // L2NormalizeRows fused the pending chain already; its interiors are
  // claimed and chain-colored.
  const std::string dot = OpGraph::DumpDot({y});
  EXPECT_NE(dot.find("digraph op_graph"), std::string::npos);
  EXPECT_NE(dot.find("l2normalize*"), std::string::npos);
  EXPECT_NE(dot.find("chain"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);

  // A still-pending chain renders as pending.
  Tensor z = Scale(Add(a, b), 0.5f);
  const std::string dot2 = OpGraph::DumpDot({z});
  EXPECT_NE(dot2.find("pending"), std::string::npos);
}

}  // namespace
}  // namespace garcia::nn
