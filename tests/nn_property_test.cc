// Parameterized property tests for the autograd engine: invariants that
// must hold across randomized shapes and seeds, checked against naive
// reference computations.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "nn/gradcheck.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/ops.h"

namespace garcia::nn {
namespace {

using core::Matrix;
using core::Rng;

// ---------- GEMM vs naive across shapes ----------

struct GemmShape {
  size_t m, k, n;
  bool ta, tb;
};

class GemmPropertyTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmPropertyTest, MatchesNaive) {
  const GemmShape p = GetParam();
  Rng rng(p.m * 31 + p.k * 7 + p.n);
  Matrix a = p.ta ? Matrix::Randn(p.k, p.m, &rng) : Matrix::Randn(p.m, p.k, &rng);
  Matrix b = p.tb ? Matrix::Randn(p.n, p.k, &rng) : Matrix::Randn(p.k, p.n, &rng);
  Matrix c(p.m, p.n);
  Matrix::Gemm(p.ta, p.tb, 1.0f, a, b, 0.0f, &c);
  auto at = [&](size_t i, size_t l) { return p.ta ? a.at(l, i) : a.at(i, l); };
  auto bt = [&](size_t l, size_t j) { return p.tb ? b.at(j, l) : b.at(l, j); };
  for (size_t i = 0; i < p.m; ++i) {
    for (size_t j = 0; j < p.n; ++j) {
      double acc = 0.0;
      for (size_t l = 0; l < p.k; ++l) acc += at(i, l) * bt(l, j);
      ASSERT_NEAR(c.at(i, j), acc, 1e-3) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmPropertyTest,
    ::testing::Values(GemmShape{1, 1, 1, false, false},
                      GemmShape{7, 13, 5, false, false},
                      GemmShape{16, 16, 16, false, false},
                      GemmShape{3, 8, 9, true, false},
                      GemmShape{9, 5, 3, false, true},
                      GemmShape{6, 6, 6, true, true},
                      GemmShape{33, 65, 17, false, false},
                      GemmShape{1, 64, 1, false, true}),
    [](const auto& info) {
      const GemmShape& s = info.param;
      return "m" + std::to_string(s.m) + "k" + std::to_string(s.k) + "n" +
             std::to_string(s.n) + (s.ta ? "tA" : "") + (s.tb ? "tB" : "");
    });

// ---------- Segment ops vs naive across sizes ----------

struct SegConfig {
  size_t edges, segments, dim;
  uint64_t seed;
};

class SegmentPropertyTest : public ::testing::TestWithParam<SegConfig> {};

TEST_P(SegmentPropertyTest, SumMatchesNaive) {
  const SegConfig c = GetParam();
  Rng rng(c.seed);
  std::vector<uint32_t> seg(c.edges);
  for (auto& s : seg) {
    s = static_cast<uint32_t>(rng.UniformInt(static_cast<uint64_t>(c.segments)));
  }
  Matrix x = Matrix::Randn(c.edges, c.dim, &rng);
  Tensor out = SegmentSum(Tensor::Constant(x), seg, c.segments);
  Matrix naive(c.segments, c.dim);
  for (size_t e = 0; e < c.edges; ++e) {
    for (size_t j = 0; j < c.dim; ++j) naive.at(seg[e], j) += x.at(e, j);
  }
  EXPECT_TRUE(out.value().AllClose(naive, 1e-4f));
}

TEST_P(SegmentPropertyTest, SoftmaxPartitionsUnity) {
  const SegConfig c = GetParam();
  Rng rng(c.seed + 1);
  std::vector<uint32_t> seg(c.edges);
  for (auto& s : seg) {
    s = static_cast<uint32_t>(rng.UniformInt(static_cast<uint64_t>(c.segments)));
  }
  Tensor scores = Tensor::Constant(Matrix::Randn(c.edges, 1, &rng, 0.0f, 5.0f));
  Tensor alpha = SegmentSoftmax(scores, seg, c.segments);
  std::vector<double> sums(c.segments, 0.0);
  std::vector<size_t> counts(c.segments, 0);
  for (size_t e = 0; e < c.edges; ++e) {
    ASSERT_GT(alpha.value().at(e, 0), 0.0f);
    sums[seg[e]] += alpha.value().at(e, 0);
    counts[seg[e]]++;
  }
  for (size_t s = 0; s < c.segments; ++s) {
    if (counts[s] > 0) {
      ASSERT_NEAR(sums[s], 1.0, 1e-5);
    }
  }
}

TEST_P(SegmentPropertyTest, SoftmaxGradCheck) {
  const SegConfig c = GetParam();
  if (c.edges > 64) GTEST_SKIP() << "finite differences too slow";
  Rng rng(c.seed + 2);
  std::vector<uint32_t> seg(c.edges);
  for (auto& s : seg) {
    s = static_cast<uint32_t>(rng.UniformInt(static_cast<uint64_t>(c.segments)));
  }
  Tensor scores = Tensor::Leaf(Matrix::Randn(c.edges, 1, &rng), true);
  Tensor w = Tensor::Constant(Matrix::Randn(c.edges, 1, &rng));
  auto res = CheckGradients(
      [&] { return SumAll(Mul(SegmentSoftmax(scores, seg, c.segments), w)); },
      {scores}, 1e-2f);
  EXPECT_LT(res.max_rel_error, 2e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SegmentPropertyTest,
    ::testing::Values(SegConfig{1, 1, 1, 10}, SegConfig{10, 3, 4, 11},
                      SegConfig{50, 50, 2, 12}, SegConfig{64, 5, 8, 13},
                      SegConfig{1000, 40, 16, 14},
                      SegConfig{500, 1, 3, 15}),
    [](const auto& info) {
      const SegConfig& c = info.param;
      return "e" + std::to_string(c.edges) + "s" + std::to_string(c.segments) +
             "d" + std::to_string(c.dim);
    });

// ---------- Loss invariants across batch sizes ----------

class InfoNcePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(InfoNcePropertyTest, BoundedByLogN) {
  // With unit-norm rows, logits are in [-1/tau, 1/tau]; the loss is within
  // [0, log N + 2/tau]. With random (near-orthogonal) vectors it stays near
  // log N.
  const size_t n = GetParam();
  Rng rng(n);
  Tensor a = Tensor::Leaf(Matrix::Randn(n, 24, &rng), true);
  Tensor c = Tensor::Leaf(Matrix::Randn(n, 24, &rng), true);
  std::vector<uint32_t> t(n);
  for (size_t i = 0; i < n; ++i) t[i] = static_cast<uint32_t>(i);
  const float tau = 0.2f;
  const double loss = InfoNce(a, c, t, tau).scalar();
  EXPECT_GE(loss, 0.0);
  EXPECT_LE(loss, std::log(static_cast<double>(n)) + 2.0 / tau);
}

TEST_P(InfoNcePropertyTest, PerfectPositivesBeatRandom) {
  const size_t n = GetParam();
  Rng rng(n + 100);
  Matrix base = Matrix::Randn(n, 24, &rng);
  Tensor a = Tensor::Leaf(base, true);
  Tensor c_same = Tensor::Leaf(base, true);  // positives identical
  Tensor c_rand = Tensor::Leaf(Matrix::Randn(n, 24, &rng), true);
  std::vector<uint32_t> t(n);
  for (size_t i = 0; i < n; ++i) t[i] = static_cast<uint32_t>(i);
  EXPECT_LT(InfoNce(a, c_same, t, 0.1f).scalar(),
            InfoNce(a, c_rand, t, 0.1f).scalar());
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, InfoNcePropertyTest,
                         ::testing::Values(2, 4, 16, 64, 256));

// ---------- Misc op invariants ----------

class NormalizePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(NormalizePropertyTest, IdempotentAndUnitNorm) {
  Rng rng(GetParam());
  Tensor x = Tensor::Constant(
      Matrix::Randn(GetParam(), 8, &rng, 0.0f, 3.0f));
  Tensor y = L2NormalizeRows(x);
  Tensor yy = L2NormalizeRows(y);
  EXPECT_TRUE(y.value().AllClose(yy.value(), 1e-5f));
  for (size_t i = 0; i < y.rows(); ++i) {
    double norm = 0.0;
    for (size_t j = 0; j < y.cols(); ++j) {
      norm += static_cast<double>(y.value().at(i, j)) * y.value().at(i, j);
    }
    EXPECT_NEAR(norm, 1.0, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Rows, NormalizePropertyTest,
                         ::testing::Values(1, 5, 33, 128));

TEST(OptimizerPropertyTest, AdamInvariantToGradientScaleDirectionally) {
  // Adam normalizes by the second moment: scaling the loss by a constant
  // must leave the first update direction (sign pattern) unchanged.
  Rng rng(77);
  Matrix init = Matrix::Randn(4, 4, &rng);
  auto run = [&](float scale) {
    Tensor w = Tensor::Leaf(init, true);
    Adam opt({w}, 0.01f);
    Tensor loss = Scale(SumAll(Mul(w, w)), scale);
    loss.Backward();
    opt.Step();
    Matrix delta = w.value();
    delta.Sub(init);
    return delta;
  };
  Matrix d1 = run(1.0f);
  Matrix d2 = run(100.0f);
  for (size_t i = 0; i < d1.size(); ++i) {
    if (std::fabs(init.data()[i]) < 1e-3) continue;  // near-zero gradient
    EXPECT_GT(d1.data()[i] * d2.data()[i], 0.0f) << "direction flipped";
  }
}

TEST(MlpPropertyTest, ParameterCountFormula) {
  Rng rng(88);
  for (auto dims : std::vector<std::vector<size_t>>{
           {4, 8, 1}, {16, 32, 8, 2}, {11, 3, 3, 3, 1}}) {
    Mlp mlp(dims, &rng);
    size_t expected = 0;
    for (size_t i = 0; i + 1 < dims.size(); ++i) {
      expected += dims[i] * dims[i + 1] + dims[i + 1];
    }
    EXPECT_EQ(mlp.NumParameters(), expected);
  }
}

}  // namespace
}  // namespace garcia::nn
