// Integration tests: the full offline -> serving pipeline across module
// boundaries, plus failure injection on the persistence layer.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/presets.h"
#include "models/garcia_model.h"
#include "models/registry.h"
#include "serving/ab_test.h"
#include "serving/case_study.h"
#include "serving/ranking_service.h"

namespace garcia {
namespace {

data::ScenarioConfig PipelineDataConfig() {
  data::ScenarioConfig cfg;
  cfg.name = "integration";
  cfg.num_queries = 250;
  cfg.num_services = 90;
  cfg.num_intentions = 40;
  cfg.num_trees = 4;
  cfg.num_impressions = 10000;
  cfg.head_fraction = 0.04;
  return cfg;
}

const data::Scenario& Scn() {
  static const data::Scenario* s =
      new data::Scenario(data::GenerateScenario(PipelineDataConfig()));
  return *s;
}

models::TrainConfig PipelineTrainConfig() {
  models::TrainConfig cfg;
  cfg.embedding_dim = 16;
  cfg.pretrain_epochs = 2;
  cfg.finetune_epochs = 4;
  cfg.max_batches_per_epoch = 8;
  cfg.inner_product_head = true;
  return cfg;
}

TEST(IntegrationTest, TrainExportSaveLoadRankRoundTrip) {
  models::GarciaModel model(PipelineTrainConfig());
  model.Fit(Scn());

  serving::EmbeddingStore queries(model.ExportQueryEmbeddings(Scn()));
  serving::EmbeddingStore services(model.ExportServiceEmbeddings(Scn()));

  const std::string qp = "/tmp/garcia_it_q.emb";
  const std::string sp = "/tmp/garcia_it_s.emb";
  ASSERT_TRUE(queries.Save(qp).ok());
  ASSERT_TRUE(services.Save(sp).ok());

  auto ql = serving::EmbeddingStore::Load(qp);
  auto sl = serving::EmbeddingStore::Load(sp);
  ASSERT_TRUE(ql.ok());
  ASSERT_TRUE(sl.ok());

  serving::EmbeddingRanker direct(queries, services);
  serving::EmbeddingRanker loaded(std::move(ql).value(),
                                  std::move(sl).value());
  // Round trip must not change a single ranking.
  for (uint32_t q = 0; q < 20; ++q) {
    auto a = direct.Rank(q, 10);
    auto b = loaded.Rank(q, 10);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].first, b[i].first);
      EXPECT_FLOAT_EQ(a[i].second, b[i].second);
    }
  }
  std::remove(qp.c_str());
  std::remove(sp.c_str());
}

TEST(IntegrationTest, TruncatedStoreFailsToLoad) {
  models::GarciaModel model(PipelineTrainConfig());
  model.Fit(Scn());
  serving::EmbeddingStore store(model.ExportQueryEmbeddings(Scn()));
  const std::string path = "/tmp/garcia_it_trunc.emb";
  ASSERT_TRUE(store.Save(path).ok());
  // Truncate to half: header parses but the payload is short.
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
  }
  auto r = serving::EmbeddingStore::Load(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), core::StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(IntegrationTest, RankedServicesScoreConsistentWithPredict) {
  // The inner-product ranker must order services exactly as the model's
  // Predict on the corresponding examples.
  models::GarciaModel model(PipelineTrainConfig());
  model.Fit(Scn());
  serving::EmbeddingRanker ranker(
      serving::EmbeddingStore(model.ExportQueryEmbeddings(Scn())),
      serving::EmbeddingStore(model.ExportServiceEmbeddings(Scn())));
  const uint32_t query = Scn().split.tail_queries.front();
  auto top = ranker.Rank(query, 5);
  std::vector<data::Example> probes;
  for (const auto& [svc, score] : top) {
    probes.push_back({query, svc, 0.0f, 1});
  }
  auto scores = model.Predict(Scn(), probes);
  for (size_t i = 1; i < scores.size(); ++i) {
    EXPECT_GE(scores[i - 1], scores[i] - 1e-5f)
        << "ranker order disagrees with model scores at " << i;
  }
}

TEST(IntegrationTest, AbTestBetweenTrainedModels) {
  // Full A/B path with two real trained arms; just verify it produces
  // bounded metrics and is reproducible.
  auto cfg = PipelineTrainConfig();
  auto garcia_model = models::CreateModel("GARCIA", cfg);
  garcia_model->Fit(Scn());
  auto lightgcn = models::CreateModel("LightGCN", cfg);
  lightgcn->Fit(Scn());

  serving::EmbeddingRanker treatment(
      serving::EmbeddingStore(garcia_model->ExportQueryEmbeddings(Scn())),
      serving::EmbeddingStore(garcia_model->ExportServiceEmbeddings(Scn())));
  serving::EmbeddingRanker baseline(
      serving::EmbeddingStore(lightgcn->ExportQueryEmbeddings(Scn())),
      serving::EmbeddingStore(lightgcn->ExportServiceEmbeddings(Scn())));

  serving::AbTestConfig ab;
  ab.num_days = 2;
  ab.requests_per_day = 500;
  auto r1 = serving::RunAbTest(Scn(), baseline, treatment, ab);
  auto r2 = serving::RunAbTest(Scn(), baseline, treatment, ab);
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_GE(r1.treatment[d].ctr, 0.0);
    EXPECT_LE(r1.treatment[d].ctr, 1.0);
    EXPECT_DOUBLE_EQ(r1.treatment[d].ctr, r2.treatment[d].ctr);
    EXPECT_DOUBLE_EQ(r1.baseline[d].valid_ctr, r2.baseline[d].valid_ctr);
  }
}

TEST(IntegrationTest, CaseStudyFromTrainedModels) {
  auto cfg = PipelineTrainConfig();
  models::GarciaModel model(cfg);
  model.Fit(Scn());
  serving::EmbeddingRanker ranker(
      serving::EmbeddingStore(model.ExportQueryEmbeddings(Scn())),
      serving::EmbeddingStore(model.ExportServiceEmbeddings(Scn())));
  auto queries = serving::PickTailCaseQueries(Scn(), 2);
  for (uint32_t q : queries) {
    auto cs = serving::BuildCaseStudy(Scn(), ranker, ranker, q, 5);
    EXPECT_EQ(cs.baseline.size(), cs.treatment.size());
    for (size_t i = 0; i < cs.baseline.size(); ++i) {
      EXPECT_EQ(cs.baseline[i].service, cs.treatment[i].service);
    }
  }
}

TEST(IntegrationTest, MetricsAgreeAcrossEvaluationPaths) {
  // EvaluateModel must equal manually assembled ComputeSlicedMetrics.
  auto cfg = PipelineTrainConfig();
  cfg.inner_product_head = false;
  models::GarciaModel model(cfg);
  model.Fit(Scn());
  auto via_helper = models::EvaluateModel(&model, Scn(), Scn().test);
  auto scores = model.Predict(Scn(), Scn().test);
  std::vector<float> labels;
  std::vector<uint32_t> qids;
  for (const auto& e : Scn().test) {
    labels.push_back(e.label);
    qids.push_back(e.query);
  }
  auto manual =
      eval::ComputeSlicedMetrics(labels, scores, qids, Scn().split.is_head);
  EXPECT_DOUBLE_EQ(via_helper.overall.auc, manual.overall.auc);
  EXPECT_DOUBLE_EQ(via_helper.tail.gauc, manual.tail.gauc);
  EXPECT_DOUBLE_EQ(via_helper.head.ndcg_at_10, manual.head.ndcg_at_10);
}

}  // namespace
}  // namespace garcia
