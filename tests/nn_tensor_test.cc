#include "nn/tensor.h"

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace garcia::nn {
namespace {

using core::Matrix;

TEST(TensorTest, UndefinedByDefault) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, LeafHoldsValue) {
  Tensor t = Tensor::Leaf(Matrix({{1, 2}, {3, 4}}), true);
  EXPECT_TRUE(t.defined());
  EXPECT_TRUE(t.requires_grad());
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_FLOAT_EQ(t.value().at(1, 0), 3.0f);
  EXPECT_FALSE(t.has_grad());
}

TEST(TensorTest, ConstantNeverRequiresGrad) {
  Tensor c = Tensor::Constant(Matrix(2, 2, 1.0f));
  EXPECT_FALSE(c.requires_grad());
}

TEST(TensorTest, ScalarAccessor) {
  Tensor t = Tensor::Leaf(Matrix({{2.5}}), false);
  EXPECT_FLOAT_EQ(t.scalar(), 2.5f);
}

TEST(TensorTest, SimpleBackward) {
  // loss = sum(2 * x), dloss/dx = 2.
  Tensor x = Tensor::Leaf(Matrix({{1, 2}, {3, 4}}), true);
  Tensor loss = SumAll(Scale(x, 2.0f));
  loss.Backward();
  ASSERT_TRUE(x.has_grad());
  EXPECT_TRUE(x.grad().AllClose(Matrix(2, 2, 2.0f)));
}

TEST(TensorTest, DiamondGraphAccumulates) {
  // y = x + x: dy/dx = 2 through two paths.
  Tensor x = Tensor::Leaf(Matrix({{1.0}}), true);
  Tensor loss = SumAll(Add(x, x));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 2.0f);
}

TEST(TensorTest, DeepDiamond) {
  // z = (x+x) + (x+x): dz/dx = 4.
  Tensor x = Tensor::Leaf(Matrix({{1.0}}), true);
  Tensor a = Add(x, x);
  Tensor b = Add(x, x);
  Tensor loss = SumAll(Add(a, b));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 4.0f);
}

TEST(TensorTest, SharedSubexpressionVisitedOnce) {
  // u = 3x; loss = sum(u + u). If u's backward ran twice the grad would be
  // wrong; correct is 6.
  Tensor x = Tensor::Leaf(Matrix({{1.0}}), true);
  Tensor u = Scale(x, 3.0f);
  Tensor loss = SumAll(Add(u, u));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 6.0f);
}

TEST(TensorTest, NoGradThroughConstants) {
  Tensor x = Tensor::Leaf(Matrix({{1.0}}), true);
  Tensor c = Tensor::Constant(Matrix({{5.0}}));
  Tensor loss = SumAll(Mul(x, c));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 5.0f);
  EXPECT_FALSE(c.has_grad());
}

TEST(TensorTest, BackwardTwiceAccumulates) {
  Tensor x = Tensor::Leaf(Matrix({{1.0}}), true);
  Tensor loss = SumAll(Scale(x, 2.0f));
  loss.Backward();
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 4.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 0.0f);
}

TEST(TensorTest, FreshTapePerStep) {
  Tensor w = Tensor::Leaf(Matrix({{1.0}}), true);
  for (int step = 0; step < 3; ++step) {
    w.ZeroGrad();
    Tensor loss = SumAll(Mul(w, w));  // d/dw w^2 = 2w
    loss.Backward();
    const float expected = 2.0f * w.value().at(0, 0);
    EXPECT_FLOAT_EQ(w.grad().at(0, 0), expected);
    w.mutable_value().at(0, 0) -= 0.1f * w.grad().at(0, 0);
  }
  EXPECT_LT(w.value().at(0, 0), 1.0f);  // descending toward 0
}

TEST(TensorTest, LongChainBackward) {
  // Deep chain exercises the iterative (non-recursive) topo sort.
  Tensor x = Tensor::Leaf(Matrix({{1.0}}), true);
  Tensor h = x;
  const int depth = 2000;
  for (int i = 0; i < depth; ++i) h = Scale(h, 1.0f);
  Tensor loss = SumAll(h);
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 1.0f);
}

TEST(TensorTest, IdStableAcrossCopies) {
  Tensor a = Tensor::Leaf(Matrix({{1.0}}), true);
  Tensor b = a;
  EXPECT_EQ(a.id(), b.id());
}

}  // namespace
}  // namespace garcia::nn
