#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "nn/gradcheck.h"
#include "nn/ops.h"

namespace garcia::nn {
namespace {

using core::Matrix;
using core::Rng;

TEST(CrossEntropyTest, UniformLogits) {
  // Uniform logits over M classes -> loss = log(M).
  Tensor logits = Tensor::Leaf(Matrix(4, 8), true);
  Tensor loss = CrossEntropyWithLogits(logits, {0, 1, 2, 3});
  EXPECT_NEAR(loss.scalar(), std::log(8.0), 1e-5);
}

TEST(CrossEntropyTest, ConfidentCorrectIsNearZero) {
  Matrix m(1, 3);
  m.at(0, 1) = 50.0f;
  Tensor logits = Tensor::Leaf(std::move(m), true);
  EXPECT_NEAR(CrossEntropyWithLogits(logits, {1}).scalar(), 0.0, 1e-5);
}

TEST(CrossEntropyTest, StableAtHugeLogits) {
  Matrix m(1, 2);
  m.at(0, 0) = 10000.0f;
  m.at(0, 1) = -10000.0f;
  Tensor logits = Tensor::Leaf(std::move(m), true);
  const float loss = CrossEntropyWithLogits(logits, {0}).scalar();
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-5);
}

TEST(CrossEntropyTest, GradientMatchesFiniteDifference) {
  Rng rng(21);
  Tensor logits = Tensor::Leaf(Matrix::Randn(5, 7, &rng), true);
  std::vector<uint32_t> targets = {3, 0, 6, 2, 2};
  auto res = CheckGradients(
      [&] { return CrossEntropyWithLogits(logits, targets); }, {logits},
      1e-2f);
  EXPECT_LT(res.max_rel_error, 2e-2);
}

TEST(CrossEntropyTest, GradientIsSoftmaxMinusOnehot) {
  Tensor logits = Tensor::Leaf(Matrix(1, 2), true);  // uniform
  Tensor loss = CrossEntropyWithLogits(logits, {0});
  loss.Backward();
  EXPECT_NEAR(logits.grad().at(0, 0), 0.5 - 1.0, 1e-6);
  EXPECT_NEAR(logits.grad().at(0, 1), 0.5, 1e-6);
}

TEST(InfoNceTest, PerfectAlignmentLowLoss) {
  // Anchors identical to their positives and orthogonal to negatives.
  Matrix anchors({{1, 0}, {0, 1}});
  Matrix cands({{1, 0}, {0, 1}});
  Tensor a = Tensor::Leaf(std::move(anchors), true);
  Tensor c = Tensor::Leaf(std::move(cands), true);
  const float loss_aligned = InfoNce(a, c, {0, 1}, 0.1f).scalar();
  const float loss_swapped = InfoNce(a, c, {1, 0}, 0.1f).scalar();
  EXPECT_LT(loss_aligned, 1e-4);
  EXPECT_GT(loss_swapped, 5.0);
}

TEST(InfoNceTest, TemperatureSharpens) {
  Rng rng(31);
  Tensor a = Tensor::Leaf(Matrix::Randn(6, 8, &rng), false);
  Tensor c = Tensor::Leaf(Matrix::Randn(6, 8, &rng), false);
  std::vector<uint32_t> t = {0, 1, 2, 3, 4, 5};
  // With random vectors, cosine sims are near 0 so both temperatures give
  // roughly log(N); the loss must remain finite and positive for all tau.
  for (float tau : {0.05f, 0.1f, 0.5f, 1.0f}) {
    const float l = InfoNce(a, c, t, tau).scalar();
    EXPECT_TRUE(std::isfinite(l));
    EXPECT_GT(l, 0.0f);
  }
}

TEST(InfoNceTest, TrainingPullsPositivesTogether) {
  // A few gradient steps on InfoNCE must raise the positive cosine
  // similarity relative to negatives.
  Rng rng(41);
  Tensor a = Tensor::Leaf(Matrix::Randn(4, 8, &rng), true);
  Tensor c = Tensor::Leaf(Matrix::Randn(4, 8, &rng), true);
  std::vector<uint32_t> targets = {0, 1, 2, 3};
  auto pos_sim = [&] {
    Tensor s = MatMulNT(L2NormalizeRows(a), L2NormalizeRows(c));
    double m = 0.0;
    for (size_t i = 0; i < 4; ++i) m += s.value().at(i, i);
    return m / 4.0;
  };
  const double before = pos_sim();
  for (int step = 0; step < 50; ++step) {
    a.ZeroGrad();
    c.ZeroGrad();
    Tensor loss = InfoNce(a, c, targets, 0.2f);
    loss.Backward();
    for (Tensor* p : {&a, &c}) {
      core::Matrix& w = p->mutable_value();
      const core::Matrix& g = p->grad();
      for (size_t k = 0; k < w.size(); ++k) w.data()[k] -= 0.5f * g.data()[k];
    }
  }
  EXPECT_GT(pos_sim(), before + 0.1);
}

TEST(InfoNceTest, GradientMatchesFiniteDifference) {
  Rng rng(51);
  Tensor a = Tensor::Leaf(Matrix::Randn(3, 5, &rng), true);
  Tensor c = Tensor::Leaf(Matrix::Randn(4, 5, &rng), true);
  std::vector<uint32_t> t = {2, 0, 3};
  auto res = CheckGradients([&] { return InfoNce(a, c, t, 0.3f); }, {a, c},
                            1e-2f);
  EXPECT_LT(res.max_rel_error, 2e-2);
}

TEST(MaskedInfoNceTest, MaskExcludesCandidates) {
  // Anchor equals candidate 1 exactly; candidate 0 is an identical decoy.
  // Unmasked, the decoy halves the probability; masked out, loss ~ 0.
  Matrix av({{1.0, 0.0}});
  Matrix cv({{1.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}});
  Tensor a = Tensor::Leaf(std::move(av), true);
  Tensor c = Tensor::Leaf(std::move(cv), true);
  Matrix mask_all(1, 3, 1.0f);
  Matrix mask_no_decoy(1, 3, 1.0f);
  mask_no_decoy.at(0, 0) = 0.0f;
  const float loss_all = MaskedInfoNce(a, c, {1}, mask_all, 0.1f).scalar();
  const float loss_masked =
      MaskedInfoNce(a, c, {1}, mask_no_decoy, 0.1f).scalar();
  EXPECT_GT(loss_all, std::log(2.0) - 1e-3);
  EXPECT_LT(loss_masked, 1e-3);
}

TEST(MaskedInfoNceTest, GradientMatchesFiniteDifference) {
  Rng rng(61);
  Tensor a = Tensor::Leaf(Matrix::Randn(3, 4, &rng), true);
  Tensor c = Tensor::Leaf(Matrix::Randn(5, 4, &rng), true);
  std::vector<uint32_t> t = {1, 4, 0};
  Matrix mask(3, 5, 1.0f);
  mask.at(0, 2) = 0.0f;
  mask.at(2, 3) = 0.0f;
  auto res = CheckGradients(
      [&] { return MaskedInfoNce(a, c, t, mask, 0.25f); }, {a, c}, 1e-2f);
  EXPECT_LT(res.max_rel_error, 2e-2);
}

TEST(BceTest, KnownValues) {
  // z=0 -> p=0.5 -> loss = ln 2 regardless of label.
  Tensor z = Tensor::Leaf(Matrix(2, 1), true);
  Matrix y(2, 1);
  y.at(0, 0) = 1.0f;
  EXPECT_NEAR(BceWithLogits(z, y).scalar(), std::log(2.0), 1e-6);
}

TEST(BceTest, ConfidentCorrectLowLoss) {
  Matrix zv(2, 1);
  zv.at(0, 0) = 20.0f;
  zv.at(1, 0) = -20.0f;
  Matrix y(2, 1);
  y.at(0, 0) = 1.0f;
  Tensor z = Tensor::Leaf(std::move(zv), true);
  EXPECT_LT(BceWithLogits(z, y).scalar(), 1e-6);
}

TEST(BceTest, StableAtExtremeLogits) {
  Matrix zv(1, 1);
  zv.at(0, 0) = -500.0f;
  Matrix y(1, 1);
  y.at(0, 0) = 0.0f;
  Tensor z = Tensor::Leaf(std::move(zv), true);
  const float l = BceWithLogits(z, y).scalar();
  EXPECT_TRUE(std::isfinite(l));
  EXPECT_NEAR(l, 0.0, 1e-6);
}

TEST(BceTest, GradientMatchesFiniteDifference) {
  Rng rng(71);
  Tensor z = Tensor::Leaf(Matrix::Randn(6, 1, &rng), true);
  Matrix y(6, 1);
  for (size_t i = 0; i < 6; ++i) y.at(i, 0) = (i % 2 == 0) ? 1.0f : 0.0f;
  auto res =
      CheckGradients([&] { return BceWithLogits(z, y); }, {z}, 1e-2f);
  EXPECT_LT(res.max_rel_error, 2e-2);
}

TEST(BceTest, GradIsSigmoidMinusTarget) {
  Tensor z = Tensor::Leaf(Matrix(1, 1), true);  // z=0, sigmoid=0.5
  Matrix y(1, 1);
  y.at(0, 0) = 1.0f;
  Tensor loss = BceWithLogits(z, y);
  loss.Backward();
  EXPECT_NEAR(z.grad().at(0, 0), -0.5, 1e-6);
}

}  // namespace
}  // namespace garcia::nn
