#include "intent/intention_forest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace garcia::intent {
namespace {

// Builds the forest used across tests:
// tree A: a0 -> {a1, a2}, a1 -> {a3, a4}
// tree B: b0 -> {b1}, b1 -> {b2}
struct Fixture {
  IntentionForest f;
  uint32_t a0, a1, a2, a3, a4, b0, b1, b2;
  Fixture() {
    a0 = f.AddRoot("cellphone");
    a1 = f.AddChild(a0, "rental");
    a2 = f.AddChild(a0, "repair");
    a3 = f.AddChild(a1, "iphone rental");
    a4 = f.AddChild(a1, "android rental");
    b0 = f.AddRoot("recharge");
    b1 = f.AddChild(b0, "mobile recharge");
    b2 = f.AddChild(b1, "discount recharge");
    f.Finalize();
  }
};

TEST(IntentionForestTest, StructureAccessors) {
  Fixture fx;
  EXPECT_EQ(fx.f.size(), 8u);
  EXPECT_EQ(fx.f.num_trees(), 2u);
  EXPECT_EQ(fx.f.parent(fx.a3), static_cast<int32_t>(fx.a1));
  EXPECT_EQ(fx.f.parent(fx.a0), kNoParent);
  EXPECT_EQ(fx.f.children(fx.a1).size(), 2u);
  EXPECT_TRUE(fx.f.IsLeaf(fx.a3));
  EXPECT_FALSE(fx.f.IsLeaf(fx.a1));
  EXPECT_EQ(fx.f.name(fx.a0), "cellphone");
}

TEST(IntentionForestTest, DepthAndTree) {
  Fixture fx;
  EXPECT_EQ(fx.f.depth(fx.a0), 0u);
  EXPECT_EQ(fx.f.depth(fx.a1), 1u);
  EXPECT_EQ(fx.f.depth(fx.a3), 2u);
  EXPECT_EQ(fx.f.tree_of(fx.a3), fx.a0);
  EXPECT_EQ(fx.f.tree_of(fx.b2), fx.b0);
  EXPECT_EQ(fx.f.num_levels(), 3u);
}

TEST(IntentionForestTest, LevelsPartitionAllNodes) {
  Fixture fx;
  size_t total = 0;
  for (size_t d = 0; d < fx.f.num_levels(); ++d) {
    for (uint32_t id : fx.f.levels()[d]) {
      EXPECT_EQ(fx.f.depth(id), d);
      ++total;
    }
  }
  EXPECT_EQ(total, fx.f.size());
}

TEST(IntentionForestTest, AncestorChainIsPathToRoot) {
  Fixture fx;
  auto chain = fx.f.AncestorChain(fx.a3);
  EXPECT_EQ(chain, (std::vector<uint32_t>{fx.a3, fx.a1, fx.a0}));
  EXPECT_EQ(fx.f.AncestorChain(fx.b0), (std::vector<uint32_t>{fx.b0}));
}

TEST(IntentionForestTest, HardNegativesSameTreeSameLevel) {
  Fixture fx;
  auto hard = fx.f.HardNegatives(fx.a3);
  EXPECT_EQ(hard, (std::vector<uint32_t>{fx.a4}));
  // a1's hard negatives: a2 (same tree depth 1); b1 is another tree.
  EXPECT_EQ(fx.f.HardNegatives(fx.a1), (std::vector<uint32_t>{fx.a2}));
}

TEST(IntentionForestTest, EasyNegativesOtherTreeSameLevel) {
  Fixture fx;
  auto easy = fx.f.EasyNegatives(fx.a3);
  EXPECT_EQ(easy, (std::vector<uint32_t>{fx.b2}));
  EXPECT_EQ(fx.f.EasyNegatives(fx.b1), (std::vector<uint32_t>{fx.a1, fx.a2}));
}

TEST(IntentionForestTest, SampleNegativesRespectsBudgets) {
  Fixture fx;
  core::Rng rng(3);
  auto negs = fx.f.SampleNegatives(fx.a1, 1, 1, &rng);
  EXPECT_EQ(negs.size(), 2u);
  std::set<uint32_t> s(negs.begin(), negs.end());
  EXPECT_TRUE(s.count(fx.a2));  // the only hard negative
  EXPECT_TRUE(s.count(fx.b1));  // the only easy negative
}

TEST(IntentionForestTest, SampleNegativesNeverContainsSelfOrAncestors) {
  Fixture fx;
  core::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    auto negs = fx.f.SampleNegatives(fx.a3, 3, 3, &rng);
    for (uint32_t n : negs) {
      EXPECT_NE(n, fx.a3);
      EXPECT_NE(n, fx.a1);
      EXPECT_NE(n, fx.a0);
    }
  }
}

TEST(IntentionForestTest, BottomUpScheduleDeepestFirst) {
  Fixture fx;
  auto sched = fx.f.BottomUpSchedule();
  ASSERT_EQ(sched.size(), 3u);
  // First step: depth-2 nodes; last: roots.
  for (uint32_t id : sched[0]) EXPECT_EQ(fx.f.depth(id), 2u);
  for (uint32_t id : sched[2]) EXPECT_EQ(fx.f.depth(id), 0u);
}

TEST(IntentionForestTest, SingleNodeForest) {
  IntentionForest f;
  uint32_t r = f.AddRoot("only");
  f.Finalize();
  EXPECT_EQ(f.num_levels(), 1u);
  EXPECT_TRUE(f.HardNegatives(r).empty());
  EXPECT_TRUE(f.EasyNegatives(r).empty());
  EXPECT_EQ(f.AncestorChain(r).size(), 1u);
}

TEST(IntentionForestTest, FiveLevelChainMatchesPaperMaxDepth) {
  IntentionForest f;
  uint32_t cur = f.AddRoot();
  for (int i = 0; i < 4; ++i) cur = f.AddChild(cur);
  f.Finalize();
  EXPECT_EQ(f.num_levels(), 5u);  // paper: at most 5-level intentions
  EXPECT_EQ(f.AncestorChain(cur).size(), 5u);
}

}  // namespace
}  // namespace garcia::intent
