#include "data/scenario.h"

#include <gtest/gtest.h>

#include <set>

#include "core/string_util.h"
#include "data/presets.h"
#include "data/stats.h"

namespace garcia::data {
namespace {

ScenarioConfig SmallConfig() {
  ScenarioConfig cfg;
  cfg.name = "test";
  cfg.num_queries = 200;
  cfg.num_services = 80;
  cfg.num_intentions = 40;
  cfg.num_trees = 4;
  cfg.num_impressions = 8000;
  cfg.head_fraction = 0.05;
  return cfg;
}

class ScenarioTest : public ::testing::Test {
 protected:
  static const Scenario& Get() {
    static const Scenario* s = new Scenario(GenerateScenario(SmallConfig()));
    return *s;
  }
};

TEST_F(ScenarioTest, PopulationSizes) {
  const Scenario& s = Get();
  EXPECT_EQ(s.num_queries(), 200u);
  EXPECT_EQ(s.num_services(), 80u);
  EXPECT_EQ(s.query_intent.size(), 200u);
  EXPECT_EQ(s.query_text.size(), 200u);
  EXPECT_EQ(s.services.size(), 80u);
  EXPECT_GE(s.forest.size(), 4u);
  EXPECT_LE(s.forest.num_levels(), 5u);
}

TEST_F(ScenarioTest, EntitiesAttachToLeaves) {
  const Scenario& s = Get();
  for (uint32_t q = 0; q < s.num_queries(); ++q) {
    EXPECT_TRUE(s.forest.IsLeaf(s.query_intent[q]));
  }
  for (uint32_t i = 0; i < s.num_services(); ++i) {
    EXPECT_TRUE(s.forest.IsLeaf(s.service_intent[i]));
  }
}

TEST_F(ScenarioTest, SplitPartitionsEvents) {
  const Scenario& s = Get();
  EXPECT_EQ(s.train.size() + s.validation.size() + s.test.size(),
            s.config.num_impressions);
  EXPECT_GT(s.train.size(), s.validation.size());
  EXPECT_GT(s.validation.size(), 0u);
  EXPECT_GT(s.test.size(), 0u);
}

TEST_F(ScenarioTest, ExamplesAreInRange) {
  const Scenario& s = Get();
  for (const Example& e : s.train) {
    EXPECT_LT(e.query, s.num_queries());
    EXPECT_LT(e.service, s.num_services());
    EXPECT_TRUE(e.label == 0.0f || e.label == 1.0f);
    EXPECT_GE(e.day, 1);
    EXPECT_LE(e.day, s.config.num_days);
  }
}

TEST_F(ScenarioTest, BothLabelsPresent) {
  const Scenario& s = Get();
  size_t pos = 0;
  for (const Example& e : s.train) pos += e.label > 0.5f;
  EXPECT_GT(pos, s.train.size() / 20);       // at least 5% clicks
  EXPECT_LT(pos, s.train.size() * 19 / 20);  // not everything clicked
}

TEST_F(ScenarioTest, ExposureMatchesTrainCounts) {
  const Scenario& s = Get();
  std::vector<uint64_t> counts(s.num_queries(), 0);
  for (const Example& e : s.train) counts[e.query]++;
  EXPECT_EQ(counts, s.query_exposure);
}

TEST_F(ScenarioTest, HeadTailSplitSized) {
  const Scenario& s = Get();
  EXPECT_EQ(s.split.head_queries.size(), 10u);  // 5% of 200
  EXPECT_EQ(s.split.head_queries.size() + s.split.tail_queries.size(),
            s.num_queries());
}

TEST_F(ScenarioTest, HeadsHaveMoreExposureThanTails) {
  const Scenario& s = Get();
  uint64_t min_head = UINT64_MAX, max_tail = 0;
  for (uint32_t q : s.split.head_queries) {
    min_head = std::min(min_head, s.query_exposure[q]);
  }
  for (uint32_t q : s.split.tail_queries) {
    max_tail = std::max(max_tail, s.query_exposure[q]);
  }
  EXPECT_GE(min_head, max_tail);
}

TEST_F(ScenarioTest, GraphIsFinalizedAndConsistent) {
  const Scenario& s = Get();
  EXPECT_TRUE(s.graph.finalized());
  EXPECT_EQ(s.graph.num_queries(), s.num_queries());
  EXPECT_EQ(s.graph.num_services(), s.num_services());
  EXPECT_GT(s.graph.num_edges(), 0u);
  EXPECT_EQ(s.graph.attr_dim(), s.config.attr_dim);
}

TEST_F(ScenarioTest, ClickProbabilityInUnitInterval) {
  const Scenario& s = Get();
  for (uint32_t q = 0; q < 20; ++q) {
    for (uint32_t i = 0; i < 20; ++i) {
      const double p = s.TrueClickProbability(q, i);
      EXPECT_GT(p, 0.0);
      EXPECT_LT(p, 1.0);
    }
  }
}

TEST_F(ScenarioTest, SameIntentHigherClickProbability) {
  // The planted structure: a service sharing the query's intention must on
  // average be a better match than a random cross-tree service.
  const Scenario& s = Get();
  double same = 0.0, cross = 0.0;
  size_t n_same = 0, n_cross = 0;
  for (uint32_t q = 0; q < s.num_queries(); ++q) {
    const uint32_t qt = s.forest.tree_of(s.query_intent[q]);
    for (uint32_t i = 0; i < s.num_services(); ++i) {
      const double p = s.TrueClickProbability(q, i);
      if (s.forest.tree_of(s.service_intent[i]) == qt) {
        same += p;
        ++n_same;
      } else {
        cross += p;
        ++n_cross;
      }
    }
  }
  ASSERT_GT(n_same, 0u);
  ASSERT_GT(n_cross, 0u);
  EXPECT_GT(same / n_same, cross / n_cross + 0.1);
}

TEST_F(ScenarioTest, QueryTextSharesTokensWithinIntention) {
  const Scenario& s = Get();
  // Queries under the same leaf share the intention token prefix.
  std::unordered_map<uint32_t, std::vector<uint32_t>> by_leaf;
  for (uint32_t q = 0; q < s.num_queries(); ++q) {
    by_leaf[s.query_intent[q]].push_back(q);
  }
  for (const auto& [leaf, qs] : by_leaf) {
    if (qs.size() < 2) continue;
    const double j = core::TokenJaccard(s.query_text[qs[0]],
                                        s.query_text[qs[1]]);
    EXPECT_GT(j, 0.0) << s.query_text[qs[0]] << " vs " << s.query_text[qs[1]];
    return;  // one pair suffices
  }
}

TEST_F(ScenarioTest, DeterministicForSeeds) {
  Scenario a = GenerateScenario(SmallConfig());
  Scenario b = GenerateScenario(SmallConfig());
  EXPECT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < std::min<size_t>(100, a.train.size()); ++i) {
    EXPECT_EQ(a.train[i].query, b.train[i].query);
    EXPECT_EQ(a.train[i].service, b.train[i].service);
    EXPECT_EQ(a.train[i].label, b.train[i].label);
  }
  EXPECT_TRUE(a.query_latents.AllClose(b.query_latents));
}

TEST_F(ScenarioTest, DifferentEventSeedSamePopulation) {
  ScenarioConfig cfg = SmallConfig();
  cfg.event_seed = 999;
  Scenario b = GenerateScenario(cfg);
  const Scenario& a = Get();
  EXPECT_TRUE(a.query_latents.AllClose(b.query_latents));
  // ... but different traffic.
  bool any_diff = false;
  for (size_t i = 0; i < std::min(a.train.size(), b.train.size()); ++i) {
    if (a.train[i].query != b.train[i].query) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(ScenarioTest, CorrelationKeysReflectIntentions) {
  const Scenario& s = Get();
  for (uint32_t q = 0; q < s.num_queries(); ++q) {
    const auto chain = s.forest.AncestorChain(s.query_intent[q]);
    EXPECT_EQ(s.query_keys[q].category, static_cast<int32_t>(chain.back()));
  }
}

TEST_F(ScenarioTest, ServiceMetaSane) {
  const Scenario& s = Get();
  for (const ServiceMeta& m : s.services) {
    EXPECT_GT(m.quality, 0.0);
    EXPECT_LT(m.quality, 1.0);
    EXPECT_GE(m.rating, 1);
    EXPECT_LE(m.rating, 5);
    EXPECT_GT(m.mau, 0u);
    EXPECT_FALSE(m.name.empty());
  }
}

TEST_F(ScenarioTest, MauCorrelatesWithQuality) {
  const Scenario& s = Get();
  // Spearman-ish check: the top-quality quartile has higher mean MAU than
  // the bottom quartile.
  std::vector<const ServiceMeta*> sorted;
  for (const auto& m : s.services) sorted.push_back(&m);
  std::sort(sorted.begin(), sorted.end(),
            [](auto* a, auto* b) { return a->quality < b->quality; });
  const size_t q4 = sorted.size() / 4;
  double lo = 0, hi = 0;
  for (size_t i = 0; i < q4; ++i) {
    lo += static_cast<double>(sorted[i]->mau);
    hi += static_cast<double>(sorted[sorted.size() - 1 - i]->mau);
  }
  EXPECT_GT(hi, lo * 5.0);
}

}  // namespace
}  // namespace garcia::data
