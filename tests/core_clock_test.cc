#include <gtest/gtest.h>

#include <cstring>

#include "core/backoff.h"
#include "core/clock.h"
#include "core/crc32.h"
#include "core/rng.h"

namespace garcia::core {
namespace {

TEST(ManualClockTest, TimeMovesOnlyWhenAdvanced) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100u);
  clock.AdvanceMicros(50);
  EXPECT_EQ(clock.NowMicros(), 150u);
  clock.SleepMicros(25);
  EXPECT_EQ(clock.NowMicros(), 175u);
  clock.Reset();
  EXPECT_EQ(clock.NowMicros(), 0u);
}

TEST(SystemClockTest, MonotoneAndSleeps) {
  SystemClock clock;
  const uint64_t t0 = clock.NowMicros();
  clock.SleepMicros(1000);
  EXPECT_GE(clock.NowMicros(), t0 + 1000);
}

TEST(BackoffTest, GrowsExponentiallyWithoutJitter) {
  BackoffConfig cfg;
  cfg.initial_micros = 100;
  cfg.multiplier = 2.0;
  cfg.max_micros = 450;
  cfg.jitter = 0.0;
  EXPECT_EQ(BackoffDelayMicros(cfg, 0, nullptr), 100u);
  EXPECT_EQ(BackoffDelayMicros(cfg, 1, nullptr), 200u);
  EXPECT_EQ(BackoffDelayMicros(cfg, 2, nullptr), 400u);
  EXPECT_EQ(BackoffDelayMicros(cfg, 3, nullptr), 450u);  // capped
}

TEST(BackoffTest, JitterStaysInBandAndIsDeterministic) {
  BackoffConfig cfg;
  cfg.initial_micros = 1000;
  cfg.multiplier = 1.0;
  cfg.max_micros = 1000;
  cfg.jitter = 0.5;
  Rng rng_a(7), rng_b(7);
  for (size_t i = 0; i < 100; ++i) {
    const uint64_t d = BackoffDelayMicros(cfg, i, &rng_a);
    EXPECT_GE(d, 500u);
    EXPECT_LE(d, 1000u);
    EXPECT_EQ(d, BackoffDelayMicros(cfg, i, &rng_b));
  }
}

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(s, std::strlen(s)), 0xcbf43926u);
}

TEST(Crc32Test, StreamingMatchesOneShot) {
  const char* s = "the quick brown fox jumps over the lazy dog";
  const size_t n = std::strlen(s);
  uint32_t streamed = 0;
  streamed = Crc32Update(streamed, s, 10);
  streamed = Crc32Update(streamed, s + 10, n - 10);
  EXPECT_EQ(streamed, Crc32(s, n));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  unsigned char buf[64];
  for (size_t i = 0; i < sizeof(buf); ++i) buf[i] = static_cast<unsigned char>(i);
  const uint32_t clean = Crc32(buf, sizeof(buf));
  buf[17] ^= 0x40;
  EXPECT_NE(Crc32(buf, sizeof(buf)), clean);
}

}  // namespace
}  // namespace garcia::core
