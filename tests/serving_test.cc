#include <gtest/gtest.h>

#include <cstdio>

#include "core/rng.h"
#include "serving/ab_test.h"
#include "serving/case_study.h"
#include "serving/embedding_store.h"
#include "serving/ranking_service.h"

namespace garcia::serving {
namespace {

using core::Matrix;

TEST(EmbeddingStoreTest, SaveLoadRoundTrip) {
  core::Rng rng(1);
  EmbeddingStore store(Matrix::Randn(10, 4, &rng));
  const std::string path = "/tmp/garcia_emb_test.bin";
  ASSERT_TRUE(store.Save(path).ok());
  auto loaded = EmbeddingStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().matrix().AllClose(store.matrix()));
  std::remove(path.c_str());
}

TEST(EmbeddingStoreTest, LoadMissingFileFails) {
  EXPECT_FALSE(EmbeddingStore::Load("/tmp/garcia_no_such_file.bin").ok());
}

TEST(EmbeddingStoreTest, LoadRejectsGarbage) {
  const std::string path = "/tmp/garcia_garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not an embedding store at all", f);
  fclose(f);
  auto r = EmbeddingStore::Load(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), core::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(EmbeddingStoreTest, VectorAccess) {
  Matrix m({{1, 2}, {3, 4}});
  EmbeddingStore store(m);
  EXPECT_FLOAT_EQ(store.vector(1)[0], 3.0f);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.dim(), 2u);
}

TEST(TopKInnerProductTest, OrdersByScore) {
  Matrix cands({{1, 0}, {0, 1}, {2, 0}, {0.5, 0.5}});
  const float q[2] = {1.0f, 0.0f};
  RankedList top = TopKInnerProduct(q, 2, cands, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 2u);  // score 2
  EXPECT_EQ(top[1].first, 0u);  // score 1
  EXPECT_EQ(top[2].first, 3u);  // score 0.5
  EXPECT_FLOAT_EQ(top[0].second, 2.0f);
}

TEST(TopKInnerProductTest, KLargerThanCandidates) {
  Matrix cands({{1.0}, {2.0}});
  const float q[1] = {1.0f};
  EXPECT_EQ(TopKInnerProduct(q, 1, cands, 10).size(), 2u);
}

TEST(TopKInnerProductTest, DeterministicTieBreak) {
  Matrix cands({{1.0}, {1.0}, {1.0}});
  const float q[1] = {1.0f};
  RankedList top = TopKInnerProduct(q, 1, cands, 3);
  EXPECT_EQ(top[0].first, 0u);
  EXPECT_EQ(top[1].first, 1u);
  EXPECT_EQ(top[2].first, 2u);
}

TEST(EmbeddingRankerTest, RanksByInnerProduct) {
  EmbeddingStore queries(Matrix({{1, 0}, {0, 1}}));
  EmbeddingStore services(Matrix({{0.9, 0.1}, {0.1, 0.9}, {0.5, 0.5}}));
  EmbeddingRanker ranker(queries, services);
  RankedList r0 = ranker.Rank(0, 2);
  EXPECT_EQ(r0[0].first, 0u);
  RankedList r1 = ranker.Rank(1, 2);
  EXPECT_EQ(r1[0].first, 1u);
}

// ---- scenario-backed fixtures ----

data::ScenarioConfig SmallConfig() {
  data::ScenarioConfig cfg;
  cfg.num_queries = 200;
  cfg.num_services = 80;
  cfg.num_intentions = 40;
  cfg.num_trees = 4;
  cfg.num_impressions = 8000;
  cfg.head_fraction = 0.05;
  return cfg;
}

const data::Scenario& Scn() {
  static const data::Scenario* s =
      new data::Scenario(data::GenerateScenario(SmallConfig()));
  return *s;
}

/// A ranker with oracle access to the latent click model — an upper bound.
class OracleRanker : public Ranker {
 public:
  explicit OracleRanker(const data::Scenario& s) : s_(s) {}
  RankedList Rank(uint32_t query, size_t k) const override {
    RankedList all(s_.num_services());
    for (uint32_t i = 0; i < s_.num_services(); ++i) {
      all[i] = {i, static_cast<float>(s_.TrueClickProbability(query, i))};
    }
    std::partial_sort(all.begin(), all.begin() + std::min(k, all.size()),
                      all.end(), [](const auto& a, const auto& b) {
                        return a.second > b.second;
                      });
    all.resize(std::min(k, all.size()));
    return all;
  }

 private:
  const data::Scenario& s_;
};

/// Uniform-random ranker — a floor.
class RandomRanker : public Ranker {
 public:
  explicit RandomRanker(size_t n, uint64_t seed) : n_(n), seed_(seed) {}
  RankedList Rank(uint32_t query, size_t k) const override {
    core::Rng rng(seed_ ^ (query * 0x9e3779b97f4a7c15ULL));
    RankedList out;
    auto picks = rng.SampleWithoutReplacement(n_, std::min(k, n_));
    for (size_t i = 0; i < picks.size(); ++i) {
      out.push_back({static_cast<uint32_t>(picks[i]),
                     1.0f / static_cast<float>(i + 1)});
    }
    return out;
  }

 private:
  size_t n_;
  uint64_t seed_;
};

TEST(AbTestTest, OracleBeatsRandom) {
  OracleRanker oracle(Scn());
  RandomRanker random(Scn().num_services(), 11);
  AbTestConfig cfg;
  cfg.num_days = 3;
  cfg.requests_per_day = 1500;
  AbTestResult r = RunAbTest(Scn(), random, oracle, cfg);
  ASSERT_EQ(r.baseline.size(), 3u);
  EXPECT_GT(r.MeanCtrImprovement(), 0.05);
  EXPECT_GT(r.MeanValidCtrImprovement(), 0.0);
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_GT(r.CtrImprovement(d), 0.0) << "day " << d;
  }
}

TEST(AbTestTest, IdenticalArmsTie) {
  // Paired buckets: the same ranker in both arms gives exactly equal
  // metrics because the user randomness stream is shared.
  OracleRanker oracle(Scn());
  AbTestConfig cfg;
  cfg.num_days = 2;
  cfg.requests_per_day = 500;
  AbTestResult r = RunAbTest(Scn(), oracle, oracle, cfg);
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_DOUBLE_EQ(r.baseline[d].ctr, r.treatment[d].ctr);
    EXPECT_DOUBLE_EQ(r.baseline[d].valid_ctr, r.treatment[d].valid_ctr);
  }
}

TEST(AbTestTest, CtrBoundedAndDeterministic) {
  OracleRanker oracle(Scn());
  RandomRanker random(Scn().num_services(), 13);
  AbTestConfig cfg;
  cfg.num_days = 2;
  cfg.requests_per_day = 400;
  AbTestResult r1 = RunAbTest(Scn(), random, oracle, cfg);
  AbTestResult r2 = RunAbTest(Scn(), random, oracle, cfg);
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_GE(r1.baseline[d].ctr, 0.0);
    EXPECT_LE(r1.baseline[d].ctr, 1.0);
    EXPECT_LE(r1.baseline[d].valid_ctr, r1.baseline[d].ctr);
    EXPECT_DOUBLE_EQ(r1.treatment[d].ctr, r2.treatment[d].ctr);
  }
}

TEST(CaseStudyTest, AnnotatesBothLists) {
  OracleRanker oracle(Scn());
  RandomRanker random(Scn().num_services(), 17);
  auto queries = PickTailCaseQueries(Scn(), 2);
  ASSERT_EQ(queries.size(), 2u);
  CaseStudy cs = BuildCaseStudy(Scn(), random, oracle, queries[0], 5);
  ASSERT_EQ(cs.baseline.size(), 5u);
  ASSERT_EQ(cs.treatment.size(), 5u);
  EXPECT_FALSE(cs.query_text.empty());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(cs.baseline[i].rank, i + 1);
    EXPECT_FALSE(cs.treatment[i].name.empty());
    EXPECT_GE(cs.treatment[i].rating, 1);
    EXPECT_LE(cs.treatment[i].rating, 5);
  }
}

TEST(CaseStudyTest, OracleListHasHigherQuality) {
  // The oracle ranks by true click probability which includes quality, so
  // its mean MAU should top the random list's for tail queries (averaged
  // over a few cases to dampen noise).
  OracleRanker oracle(Scn());
  RandomRanker random(Scn().num_services(), 19);
  auto queries = PickTailCaseQueries(Scn(), 10);
  double mau_oracle = 0.0, mau_random = 0.0;
  for (uint32_t q : queries) {
    CaseStudy cs = BuildCaseStudy(Scn(), random, oracle, q, 5);
    mau_oracle += CaseStudy::MeanMau(cs.treatment);
    mau_random += CaseStudy::MeanMau(cs.baseline);
  }
  EXPECT_GT(mau_oracle, mau_random);
}

TEST(CaseStudyTest, PickTailCaseQueriesAreTails) {
  auto queries = PickTailCaseQueries(Scn(), 5);
  for (uint32_t q : queries) {
    EXPECT_FALSE(Scn().split.is_head[q]);
  }
  // Sorted by exposure, descending.
  for (size_t i = 1; i < queries.size(); ++i) {
    EXPECT_GE(Scn().query_exposure[queries[i - 1]],
              Scn().query_exposure[queries[i]]);
  }
}

}  // namespace
}  // namespace garcia::serving
