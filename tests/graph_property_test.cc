// Parameterized property tests over randomized service-search graphs:
// CSR consistency, subgraph-extraction invariants, and builder determinism
// at multiple sizes.

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "core/rng.h"
#include "graph/graph_builder.h"
#include "graph/head_tail.h"

namespace garcia::graph {
namespace {

struct GraphSize {
  size_t queries, services, interactions;
  uint64_t seed;
};

class GraphPropertyTest : public ::testing::TestWithParam<GraphSize> {
 protected:
  SearchGraph MakeRandom() const {
    const GraphSize p = GetParam();
    core::Rng rng(p.seed);
    GraphBuilder b(p.queries, p.services, 3);
    std::vector<CorrelationKeys> qk(p.queries), sk(p.services);
    for (auto& k : qk) {
      k.city = static_cast<int32_t>(rng.UniformInt(uint64_t{5}));
      k.brand = rng.Bernoulli(0.5)
                    ? static_cast<int32_t>(rng.UniformInt(uint64_t{10}))
                    : -1;
    }
    for (auto& k : sk) {
      k.city = static_cast<int32_t>(rng.UniformInt(uint64_t{5}));
      k.brand = rng.Bernoulli(0.5)
                    ? static_cast<int32_t>(rng.UniformInt(uint64_t{10}))
                    : -1;
    }
    b.SetQueryCorrelations(qk);
    b.SetServiceCorrelations(sk);
    for (size_t i = 0; i < p.interactions; ++i) {
      b.AddInteraction(
          static_cast<uint32_t>(rng.UniformInt(uint64_t{p.queries})),
          static_cast<uint32_t>(rng.UniformInt(uint64_t{p.services})),
          10, static_cast<uint32_t>(rng.UniformInt(uint64_t{4})));
    }
    return b.Build({});
  }
};

TEST_P(GraphPropertyTest, CsrCoversEveryEdgeExactlyOnce) {
  SearchGraph g = MakeRandom();
  size_t covered = 0;
  for (uint32_t n = 0; n < g.num_nodes(); ++n) {
    auto [lo, hi] = g.IncomingRange(n);
    for (size_t e = lo; e < hi; ++e) {
      ASSERT_EQ(g.edge_dst()[e], n);
      ASSERT_LT(g.edge_src()[e], g.num_nodes());
    }
    covered += hi - lo;
  }
  EXPECT_EQ(covered, g.num_edges());
}

TEST_P(GraphPropertyTest, BipartiteInvariant) {
  SearchGraph g = MakeRandom();
  for (size_t e = 0; e < g.num_edges(); ++e) {
    // Every edge connects a query node with a service node.
    EXPECT_NE(g.IsQueryNode(g.edge_src()[e]),
              g.IsQueryNode(g.edge_dst()[e]));
  }
}

TEST_P(GraphPropertyTest, DirectedEdgesComeInSymmetricPairs) {
  SearchGraph g = MakeRandom();
  std::map<std::pair<uint32_t, uint32_t>, int> count;
  for (size_t e = 0; e < g.num_edges(); ++e) {
    count[{g.edge_src()[e], g.edge_dst()[e]}]++;
  }
  for (const auto& [key, c] : count) {
    auto rev = count.find({key.second, key.first});
    ASSERT_NE(rev, count.end());
    EXPECT_EQ(c, rev->second);
  }
}

TEST_P(GraphPropertyTest, SubgraphPartitionConservesEdges) {
  SearchGraph g = MakeRandom();
  // Random bisection of queries.
  core::Rng rng(GetParam().seed + 1);
  std::vector<uint32_t> part_a, part_b;
  for (uint32_t q = 0; q < g.num_queries(); ++q) {
    (rng.Bernoulli(0.5) ? part_a : part_b).push_back(q);
  }
  Subgraph a = ExtractQuerySubgraph(g, part_a);
  Subgraph b = ExtractQuerySubgraph(g, part_b);
  EXPECT_EQ(a.graph.num_edges() + b.graph.num_edges(), g.num_edges());
  // Degrees of retained queries are preserved.
  for (size_t i = 0; i < part_a.size(); ++i) {
    EXPECT_EQ(a.graph.Degree(a.graph.QueryNode(static_cast<uint32_t>(i))),
              g.Degree(g.QueryNode(part_a[i])));
  }
}

TEST_P(GraphPropertyTest, SubgraphServiceDegreesSumToFull) {
  SearchGraph g = MakeRandom();
  std::vector<uint32_t> part_a, part_b;
  for (uint32_t q = 0; q < g.num_queries(); ++q) {
    (q % 3 == 0 ? part_a : part_b).push_back(q);
  }
  Subgraph a = ExtractQuerySubgraph(g, part_a);
  Subgraph b = ExtractQuerySubgraph(g, part_b);
  for (uint32_t s = 0; s < g.num_services(); ++s) {
    EXPECT_EQ(a.graph.Degree(a.graph.ServiceNode(s)) +
                  b.graph.Degree(b.graph.ServiceNode(s)),
              g.Degree(g.ServiceNode(s)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GraphPropertyTest,
    ::testing::Values(GraphSize{5, 3, 10, 1}, GraphSize{50, 20, 300, 2},
                      GraphSize{200, 80, 2000, 3},
                      GraphSize{17, 1, 40, 4},  // single service hub
                      GraphSize{1, 30, 60, 5}),  // single query hub
    [](const auto& info) {
      const GraphSize& s = info.param;
      return "q" + std::to_string(s.queries) + "s" +
             std::to_string(s.services) + "i" +
             std::to_string(s.interactions);
    });

}  // namespace
}  // namespace garcia::graph
