#include "core/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace garcia::core {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(10000, 0);
  pool.ParallelFor(0, hits.size(), [&hits](size_t i) { hits[i]++; }, 16);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForSmallRangeInline) {
  ThreadPool pool(4);
  std::vector<int> hits(10, 0);
  pool.ParallelFor(0, hits.size(), [&hits](size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&calls](size_t) { calls++; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForNonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.ParallelFor(100, 1100, [&sum](size_t i) { sum.fetch_add(i); }, 32);
  long expected = 0;
  for (size_t i = 100; i < 1100; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, SingleThreadPool) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) pool.Submit([&order, i] { order.push_back(i); });
  pool.Wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, GlobalPoolExists) {
  ThreadPool* g = ThreadPool::Global();
  ASSERT_NE(g, nullptr);
  EXPECT_GE(g->num_threads(), 1u);
  EXPECT_EQ(g, ThreadPool::Global());
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { counter++; });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForShardsCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  // Shards are disjoint, so unsynchronized writes to distinct slots are safe.
  std::vector<int> hits(5000, 0);
  pool.ParallelForShards(
      0, hits.size(),
      [&hits](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) hits[i]++;
      },
      64);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForShardsUnevenSizes) {
  ThreadPool pool(3);
  // Range sizes chosen so n % shards != 0 in several ways: shards must tile
  // [begin, end) without gaps or overlap regardless of remainder handling.
  for (size_t n : {1u, 2u, 7u, 129u, 1000u, 1025u, 4097u}) {
    std::vector<int> hits(n, 0);
    pool.ParallelForShards(
        0, n,
        [&hits](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) hits[i]++;
        },
        1);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i], 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForShardsNonZeroBegin) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  pool.ParallelForShards(
      37, 2037,
      [&sum](size_t lo, size_t hi) {
        long local = 0;
        for (size_t i = lo; i < hi; ++i) local += static_cast<long>(i);
        sum.fetch_add(local);
      },
      16);
  long expected = 0;
  for (size_t i = 37; i < 2037; ++i) expected += static_cast<long>(i);
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, ParallelForShardsSmallRangeInline) {
  ThreadPool pool(4);
  int calls = 0;  // inline path: safe to mutate without synchronization
  pool.ParallelForShards(
      0, 10, [&calls](size_t lo, size_t hi) { calls += static_cast<int>(hi - lo); },
      256);
  EXPECT_EQ(calls, 10);
}

TEST(ThreadPoolTest, ParallelForShardsStressRepeatedWaves) {
  ThreadPool pool(4);
  for (int wave = 0; wave < 50; ++wave) {
    const size_t n = 100 + static_cast<size_t>(wave) * 37;  // uneven every wave
    std::atomic<long> count{0};
    pool.ParallelForShards(
        0, n,
        [&count](size_t lo, size_t hi) {
          count.fetch_add(static_cast<long>(hi - lo));
        },
        8);
    ASSERT_EQ(count.load(), static_cast<long>(n)) << "wave " << wave;
  }
}

}  // namespace
}  // namespace garcia::core
