#include "core/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace garcia::core {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(10000, 0);
  pool.ParallelFor(0, hits.size(), [&hits](size_t i) { hits[i]++; }, 16);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForSmallRangeInline) {
  ThreadPool pool(4);
  std::vector<int> hits(10, 0);
  pool.ParallelFor(0, hits.size(), [&hits](size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&calls](size_t) { calls++; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForNonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.ParallelFor(100, 1100, [&sum](size_t i) { sum.fetch_add(i); }, 32);
  long expected = 0;
  for (size_t i = 100; i < 1100; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, SingleThreadPool) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) pool.Submit([&order, i] { order.push_back(i); });
  pool.Wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, GlobalPoolExists) {
  ThreadPool* g = ThreadPool::Global();
  ASSERT_NE(g, nullptr);
  EXPECT_GE(g->num_threads(), 1u);
  EXPECT_EQ(g, ThreadPool::Global());
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { counter++; });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace garcia::core
