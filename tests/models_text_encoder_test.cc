#include "models/text_encoder.h"

#include <gtest/gtest.h>

namespace garcia::models {
namespace {

TEST(NgramTextEncoderTest, IdenticalTextsSimilarityOne) {
  NgramTextEncoder enc;
  EXPECT_NEAR(enc.Similarity("phone rental", "phone rental"), 1.0, 1e-6);
}

TEST(NgramTextEncoderTest, CaseInsensitive) {
  NgramTextEncoder enc;
  EXPECT_NEAR(enc.Similarity("Phone Rental", "phone rental"), 1.0, 1e-6);
}

TEST(NgramTextEncoderTest, EmptyTextZero) {
  NgramTextEncoder enc;
  EXPECT_DOUBLE_EQ(enc.Similarity("", "phone"), 0.0);
  EXPECT_DOUBLE_EQ(enc.Similarity("", ""), 0.0);
}

TEST(NgramTextEncoderTest, SubTokenOverlapDetected) {
  // The motivating case: "iphone rental" vs "phone rental" share no full
  // token per strict Jaccard-on-words intuition beyond "rental", but the
  // character n-grams of "phone" overlap heavily.
  NgramTextEncoder enc;
  const double sim = enc.Similarity("iphone rental", "phone rental");
  EXPECT_GT(sim, 0.6);
  const double unrelated = enc.Similarity("iphone rental", "tax refund");
  EXPECT_LT(unrelated, sim * 0.5);
}

TEST(NgramTextEncoderTest, SimilarityBounded) {
  NgramTextEncoder enc;
  for (auto [a, b] : std::vector<std::pair<const char*, const char*>>{
           {"abc", "abd"}, {"cat0 w1", "cat0 w2"}, {"x", "y"}}) {
    const double s = enc.Similarity(a, b);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0 + 1e-9);
  }
}

TEST(NgramTextEncoderTest, EncodingIsUnitNorm) {
  NgramTextEncoder enc;
  SparseVector v = enc.Encode("mobile phone recharge");
  double norm = 0.0;
  for (const auto& [b, w] : v) norm += static_cast<double>(w) * w;
  EXPECT_NEAR(norm, 1.0, 1e-6);
}

TEST(NgramTextEncoderTest, ShortTextStillEncodes) {
  NgramTextEncoder enc(3);
  // "a" padded to "^a$" -> exactly one trigram.
  SparseVector v = enc.Encode("a");
  EXPECT_EQ(v.size(), 1u);
}

TEST(NgramTextEncoderTest, SymmetricSimilarity) {
  NgramTextEncoder enc;
  EXPECT_DOUBLE_EQ(enc.Similarity("alpha beta", "beta gamma"),
                   enc.Similarity("beta gamma", "alpha beta"));
}

TEST(NgramTextEncoderTest, MoreOverlapHigherSimilarity) {
  NgramTextEncoder enc;
  const double close = enc.Similarity("phone rental shop", "phone rental");
  const double far = enc.Similarity("phone rental shop", "phone");
  EXPECT_GT(close, far);
}

}  // namespace
}  // namespace garcia::models
