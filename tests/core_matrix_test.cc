#include "core/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace garcia::core {
namespace {

TEST(MatrixTest, ConstructAndFill) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(m.at(i, j), 1.5f);
  }
}

TEST(MatrixTest, InitializerList) {
  Matrix m({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m.at(1, 2), 6.0f);
}

TEST(MatrixTest, Identity) {
  Matrix i = Matrix::Identity(3);
  EXPECT_FLOAT_EQ(i.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(i.at(0, 1), 0.0f);
  Matrix m({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  EXPECT_TRUE(Matrix::Matmul(m, i).AllClose(m));
  EXPECT_TRUE(Matrix::Matmul(i, m).AllClose(m));
}

TEST(MatrixTest, MatmulKnownValues) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{5, 6}, {7, 8}});
  Matrix c = Matrix::Matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(MatrixTest, MatmulRectangular) {
  Matrix a({{1, 0, 2}, {0, 3, 0}});  // 2x3
  Matrix b({{1, 1}, {2, 0}, {0, 1}});  // 3x2
  Matrix c = Matrix::Matmul(a, b);     // 2x2
  EXPECT_TRUE(c.AllClose(Matrix({{1, 3}, {6, 0}})));
}

TEST(MatrixTest, GemmTransposeA) {
  Matrix a({{1, 2}, {3, 4}, {5, 6}});  // 3x2 -> A^T is 2x3
  Matrix b({{1, 0}, {0, 1}, {1, 1}});  // 3x2
  Matrix c(2, 2);
  Matrix::Gemm(true, false, 1.0f, a, b, 0.0f, &c);
  // A^T B = [[1+5, 3+5],[2+6, 4+6]] = [[6,8],[8,10]]
  EXPECT_TRUE(c.AllClose(Matrix({{6, 8}, {8, 10}})));
}

TEST(MatrixTest, GemmTransposeB) {
  Matrix a({{1, 2, 3}});            // 1x3
  Matrix b({{1, 1, 1}, {0, 1, 2}});  // 2x3 -> B^T is 3x2
  Matrix c(1, 2);
  Matrix::Gemm(false, true, 1.0f, a, b, 0.0f, &c);
  EXPECT_TRUE(c.AllClose(Matrix({{6, 8}})));
}

TEST(MatrixTest, GemmBothTransposed) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{5, 6}, {7, 8}});
  Matrix c(2, 2);
  Matrix::Gemm(true, true, 1.0f, a, b, 0.0f, &c);
  // A^T B^T = (B A)^T; B A = [[23,34],[31,46]]; transpose = [[23,31],[34,46]]
  EXPECT_TRUE(c.AllClose(Matrix({{23, 31}, {34, 46}})));
}

TEST(MatrixTest, GemmAlphaBeta) {
  Matrix a({{1, 0}, {0, 1}});
  Matrix b({{2, 0}, {0, 2}});
  Matrix c({{1, 1}, {1, 1}});
  Matrix::Gemm(false, false, 3.0f, a, b, 0.5f, &c);
  // 3*I*2I + 0.5*ones = [[6.5, .5],[.5, 6.5]]
  EXPECT_TRUE(c.AllClose(Matrix({{6.5, 0.5}, {0.5, 6.5}})));
}

TEST(MatrixTest, GemmMatchesNaiveOnRandom) {
  Rng rng(101);
  const size_t m = 17, k = 23, n = 13;
  Matrix a = Matrix::Randn(m, k, &rng);
  Matrix b = Matrix::Randn(k, n, &rng);
  Matrix c = Matrix::Matmul(a, b);
  for (size_t i = 0; i < m; i += 5) {
    for (size_t j = 0; j < n; j += 4) {
      double acc = 0.0;
      for (size_t l = 0; l < k; ++l) acc += a.at(i, l) * b.at(l, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-4);
    }
  }
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{10, 20}, {30, 40}});
  a.Add(b);
  EXPECT_TRUE(a.AllClose(Matrix({{11, 22}, {33, 44}})));
  a.Sub(b);
  EXPECT_TRUE(a.AllClose(Matrix({{1, 2}, {3, 4}})));
  a.Scale(2.0f);
  EXPECT_TRUE(a.AllClose(Matrix({{2, 4}, {6, 8}})));
  a.Hadamard(Matrix({{1, 0}, {0, 1}}));
  EXPECT_TRUE(a.AllClose(Matrix({{2, 0}, {0, 8}})));
}

TEST(MatrixTest, Reductions) {
  Matrix m({{3, -4}, {0, 12}});
  EXPECT_DOUBLE_EQ(m.Sum(), 11.0);
  EXPECT_NEAR(m.FrobeniusNorm(), 13.0, 1e-6);
  EXPECT_FLOAT_EQ(m.AbsMax(), 12.0f);
}

TEST(MatrixTest, CopyRowFrom) {
  Matrix src({{1, 2}, {3, 4}});
  Matrix dst(3, 2);
  dst.CopyRowFrom(src, 1, 2);
  EXPECT_FLOAT_EQ(dst.at(2, 0), 3.0f);
  EXPECT_FLOAT_EQ(dst.at(2, 1), 4.0f);
  EXPECT_FLOAT_EQ(dst.at(0, 0), 0.0f);
}

TEST(MatrixTest, AllCloseShapeMismatch) {
  EXPECT_FALSE(Matrix(2, 2).AllClose(Matrix(2, 3)));
}

TEST(MatrixTest, XavierBounds) {
  Rng rng(7);
  Matrix m = Matrix::Xavier(64, 32, &rng);
  const float bound = std::sqrt(6.0f / (64 + 32));
  EXPECT_LE(m.AbsMax(), bound + 1e-6f);
  EXPECT_GT(m.FrobeniusNorm(), 0.0);
}

TEST(MatrixTest, RandnMoments) {
  Rng rng(9);
  Matrix m = Matrix::Randn(200, 200, &rng);
  EXPECT_NEAR(m.Sum() / m.size(), 0.0, 0.02);
  const double var = m.FrobeniusNorm() * m.FrobeniusNorm() / m.size();
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(MatrixTest, ToStringSmall) {
  Matrix m({{1, 2}});
  EXPECT_NE(m.ToString().find("Matrix(1x2)"), std::string::npos);
}

TEST(MatrixTest, EmptyMatmul) {
  Matrix a(0, 3), b(3, 0);
  Matrix c = Matrix::Matmul(a, b);
  EXPECT_EQ(c.rows(), 0u);
  EXPECT_EQ(c.cols(), 0u);
}

}  // namespace
}  // namespace garcia::core
