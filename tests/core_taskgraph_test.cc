// Copyright (c) 2026 GARCIA reproduction authors.
// TaskGraph / Promise / TicketGate: dependency release order, countdown
// races under TSan, and join-order determinism across thread counts.

#include "core/taskgraph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "core/threadpool.h"

namespace garcia::core {
namespace {

TEST(TaskGraphTest, NullPoolRunsInlineInProgramOrder) {
  TaskGraph graph(nullptr);
  std::vector<int> order;
  // With a null pool, every Add runs the node before returning — even when
  // its dependency edges point at later-added... (they can't: deps must
  // already exist). Program order IS the dependency-respecting order.
  auto a = graph.Add([&] { order.push_back(0); });
  EXPECT_EQ(order.size(), 1u);  // ran inline at Add() time
  auto b = graph.Add([&] { order.push_back(1); }, {a});
  graph.Add([&] { order.push_back(2); }, {a, b});
  graph.WaitAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TaskGraphTest, DiamondRespectsDependencies) {
  ThreadPool pool(4);
  TaskGraph graph(&pool);
  std::mutex mu;
  std::vector<char> order;
  auto record = [&](char c) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(c);
  };
  auto a = graph.Add([&] { record('a'); });
  auto b = graph.Add([&] { record('b'); }, {a});
  auto c = graph.Add([&] { record('c'); }, {a});
  graph.Add([&] { record('d'); }, {b, c});
  graph.WaitAll();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 'a');
  EXPECT_EQ(order.back(), 'd');
}

TEST(TaskGraphTest, FanOutFanIn) {
  ThreadPool pool(4);
  TaskGraph graph(&pool);
  std::atomic<int> mids_done{0};
  int seen_at_sink = -1;
  auto root = graph.Add([] {});
  std::vector<TaskGraph::NodeId> mids;
  for (int i = 0; i < 32; ++i) {
    mids.push_back(graph.Add(
        [&] { mids_done.fetch_add(1, std::memory_order_relaxed); }, {root}));
  }
  graph.Add([&] { seen_at_sink = mids_done.load(); }, mids);
  graph.WaitAll();
  EXPECT_EQ(seen_at_sink, 32);
}

// A layered random DAG hammered under TSan: every node checks that each of
// its dependencies retired before it ran (the countdown contract), via one
// per-node done flag written by the dependency and read by the consumer.
TEST(TaskGraphTest, CountdownStressRandomDag) {
  constexpr int kNodes = 400;
  Rng rng(123);
  for (int round = 0; round < 4; ++round) {
    ThreadPool pool(8);
    TaskGraph graph(&pool);
    std::vector<std::atomic<bool>> done(kNodes);
    for (auto& d : done) d.store(false);
    std::atomic<int> violations{0};
    std::vector<TaskGraph::NodeId> ids;
    for (int i = 0; i < kNodes; ++i) {
      std::vector<TaskGraph::NodeId> deps;
      if (i > 0) {
        const int ndeps = static_cast<int>(rng.UniformInt(3));
        for (int d = 0; d < ndeps; ++d) {
          deps.push_back(ids[rng.UniformInt(ids.size())]);
        }
      }
      std::vector<size_t> dep_idx;
      for (auto id : deps) dep_idx.push_back(id);
      ids.push_back(graph.Add(
          [&, i, dep_idx] {
            for (size_t d : dep_idx) {
              if (!done[d].load(std::memory_order_acquire)) {
                violations.fetch_add(1);
              }
            }
            done[i].store(true, std::memory_order_release);
          },
          deps));
    }
    graph.WaitAll();
    EXPECT_EQ(violations.load(), 0);
    for (int i = 0; i < kNodes; ++i) EXPECT_TRUE(done[i].load());
  }
}

// The join pattern every kernel merge uses: compute shards in parallel,
// merge chained in ascending shard order. The merged sequence must be
// identical at every thread count (and to the null-pool serial reference).
TEST(TaskGraphTest, AscendingMergeChainIsDeterministicAcrossThreadCounts) {
  constexpr size_t kShards = 24;
  auto run = [&](ThreadPool* pool) {
    TaskGraph graph(pool);
    std::vector<std::vector<int>> partial(kShards);
    std::vector<int> merged;
    TaskGraph::NodeId prev_merge = 0;
    bool has_prev = false;
    for (size_t s = 0; s < kShards; ++s) {
      auto compute = graph.Add([&partial, s] {
        for (int k = 0; k < 5; ++k) {
          partial[s].push_back(static_cast<int>(s) * 100 + k);
        }
      });
      std::vector<TaskGraph::NodeId> deps{compute};
      if (has_prev) deps.push_back(prev_merge);
      prev_merge = graph.Add(
          [&partial, &merged, s] {
            merged.insert(merged.end(), partial[s].begin(), partial[s].end());
          },
          deps);
      has_prev = true;
    }
    graph.WaitAll();
    return merged;
  };
  const std::vector<int> serial = run(nullptr);
  ASSERT_EQ(serial.size(), kShards * 5);
  EXPECT_TRUE(std::is_sorted(serial.begin(), serial.end()));
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(run(&pool), serial) << "threads=" << threads;
  }
}

TEST(TaskGraphTest, WaitAllOnEmptyGraphAndRepeatedWaits) {
  ThreadPool pool(2);
  TaskGraph graph(&pool);
  graph.WaitAll();
  std::atomic<int> ran{0};
  graph.Add([&] { ran.fetch_add(1); });
  graph.WaitAll();
  graph.WaitAll();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(graph.size(), 1u);
}

TEST(PromiseTest, HandsValueAcrossThreads) {
  Promise<std::vector<int>> p;
  EXPECT_FALSE(p.ready());
  std::thread producer([&] { p.Set({1, 2, 3}); });
  std::vector<int> got = p.Take();
  producer.join();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(p.ready());  // Take consumed it
}

TEST(PromiseTest, WorksAsTaskGraphHandoff) {
  ThreadPool pool(2);
  TaskGraph graph(&pool);
  Promise<int> p;
  graph.Add([&] { p.Set(41); });
  EXPECT_EQ(p.Take(), 41);
  graph.WaitAll();
}

// Workers claim tickets through an ascending atomic cursor — the same
// claim discipline BatchRanker uses (a blocked WaitTurn only ever waits on
// tickets other live workers hold, so the handoff chain cannot stall) —
// and the gate must retire them strictly in ticket order regardless of
// which worker drew which ticket.
TEST(TicketGateTest, SequencesConcurrentClaimsAscending) {
  for (size_t threads : {2u, 4u, 8u}) {
    TicketGate gate;
    constexpr uint64_t kTickets = 200;
    std::vector<uint64_t> order;  // guarded by the gate itself
    std::atomic<uint64_t> cursor{0};
    std::vector<std::thread> workers;
    for (size_t w = 0; w < threads; ++w) {
      workers.emplace_back([&] {
        for (;;) {
          const uint64_t t = cursor.fetch_add(1);
          if (t >= kTickets) return;
          gate.WaitTurn(t);
          order.push_back(t);  // inside the turn: no race by construction
          gate.FinishTurn(t);
        }
      });
    }
    for (auto& w : workers) w.join();
    ASSERT_EQ(order.size(), kTickets);
    for (uint64_t i = 0; i < kTickets; ++i) EXPECT_EQ(order[i], i);
    EXPECT_EQ(gate.current_turn(), kTickets);
  }
}

TEST(TicketGateTest, ResetRestartsTheSequence) {
  TicketGate gate(4);
  gate.WaitTurn(0);
  gate.FinishTurn(0);
  gate.WaitTurn(1);
  gate.FinishTurn(1);
  EXPECT_EQ(gate.current_turn(), 2u);
  gate.Reset(0);
  EXPECT_EQ(gate.current_turn(), 0u);
  gate.WaitTurn(0);
  gate.FinishTurn(0);
  EXPECT_EQ(gate.current_turn(), 1u);
}

}  // namespace
}  // namespace garcia::core
