#include "graph/frequency_groups.h"

#include <gtest/gtest.h>

#include <set>

#include "core/rng.h"

namespace garcia::graph {
namespace {

std::vector<uint64_t> ZipfExposure(size_t n, uint64_t seed = 3) {
  core::Rng rng(seed);
  core::ZipfSampler z(n, 1.7);
  std::vector<uint64_t> exposure(n, 0);
  for (int i = 0; i < 100000; ++i) exposure[z.Sample(&rng)]++;
  return exposure;
}

void ExpectPartition(const FrequencyGroups& g, size_t n) {
  std::set<uint32_t> seen;
  for (const auto& group : g.groups) {
    for (uint32_t q : group) {
      EXPECT_TRUE(seen.insert(q).second) << "query in two groups";
      EXPECT_EQ(g.group_of[q], &group - g.groups.data());
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST(FrequencyGroupsTest, EqualMassIsAPartition) {
  auto exposure = ZipfExposure(500);
  for (size_t k : {1u, 2u, 3u, 5u}) {
    FrequencyGroups g = FrequencyGroups::ByEqualMass(exposure, k);
    EXPECT_EQ(g.num_groups(), k);
    ExpectPartition(g, exposure.size());
  }
}

TEST(FrequencyGroupsTest, EqualCountIsAPartition) {
  auto exposure = ZipfExposure(500);
  for (size_t k : {1u, 2u, 4u}) {
    FrequencyGroups g = FrequencyGroups::ByEqualCount(exposure, k);
    EXPECT_EQ(g.num_groups(), k);
    ExpectPartition(g, exposure.size());
    for (const auto& group : g.groups) {
      EXPECT_NEAR(static_cast<double>(group.size()),
                  static_cast<double>(exposure.size()) / k, 1.0);
    }
  }
}

TEST(FrequencyGroupsTest, GroupsOrderedByFrequency) {
  auto exposure = ZipfExposure(300);
  FrequencyGroups g = FrequencyGroups::ByEqualMass(exposure, 3);
  // Min exposure of group g >= max exposure of group g+1.
  for (size_t gi = 0; gi + 1 < g.num_groups(); ++gi) {
    uint64_t min_cur = UINT64_MAX, max_next = 0;
    for (uint32_t q : g.groups[gi]) min_cur = std::min(min_cur, exposure[q]);
    for (uint32_t q : g.groups[gi + 1]) {
      max_next = std::max(max_next, exposure[q]);
    }
    EXPECT_GE(min_cur, max_next);
  }
}

TEST(FrequencyGroupsTest, EqualMassBalancesMass) {
  auto exposure = ZipfExposure(1000);
  FrequencyGroups g = FrequencyGroups::ByEqualMass(exposure, 4);
  auto shares = g.MassShares(exposure);
  double total = 0.0;
  for (double s : shares) {
    total += s;
    // Zipf granularity (one query can hold ~20% of mass) limits balance;
    // each group must still hold a nontrivial share.
    EXPECT_GT(s, 0.02);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The top group is far smaller in count than the bottom (the long tail).
  EXPECT_LT(g.groups.front().size(), g.groups.back().size());
}

TEST(FrequencyGroupsTest, ZipfTopGroupTiny) {
  auto exposure = ZipfExposure(1000);
  FrequencyGroups g = FrequencyGroups::ByEqualMass(exposure, 3);
  // ~1/3 of the mass sits in a handful of head queries.
  EXPECT_LT(g.groups.front().size(), 20u);
}

TEST(FrequencyGroupsTest, MoreGroupsThanQueriesClamped) {
  std::vector<uint64_t> exposure = {5, 3, 1};
  FrequencyGroups g = FrequencyGroups::ByEqualMass(exposure, 10);
  EXPECT_EQ(g.num_groups(), 3u);
  ExpectPartition(g, 3);
}

TEST(FrequencyGroupsTest, SingleGroupHoldsEverything) {
  auto exposure = ZipfExposure(50);
  FrequencyGroups g = FrequencyGroups::ByEqualMass(exposure, 1);
  EXPECT_EQ(g.groups[0].size(), 50u);
  EXPECT_DOUBLE_EQ(g.MassShares(exposure)[0], 1.0);
}

TEST(FrequencyGroupsTest, TwoGroupEqualMassMatchesHeadTailSpirit) {
  // The 2-group equal-mass split puts ~half the traffic into a tiny head
  // group, consistent with the paper's head/tail intuition.
  auto exposure = ZipfExposure(800);
  FrequencyGroups g = FrequencyGroups::ByEqualMass(exposure, 2);
  EXPECT_LT(g.groups[0].size(), exposure.size() / 10);
  auto shares = g.MassShares(exposure);
  EXPECT_GT(shares[0], 0.4);
}

TEST(FrequencyGroupsTest, DeterministicWithTies) {
  std::vector<uint64_t> exposure(20, 7);  // all tied
  FrequencyGroups a = FrequencyGroups::ByEqualCount(exposure, 4);
  FrequencyGroups b = FrequencyGroups::ByEqualCount(exposure, 4);
  for (size_t g = 0; g < 4; ++g) EXPECT_EQ(a.groups[g], b.groups[g]);
}

TEST(FrequencyGroupsTest, GeometricCountSizesGrowByRatio) {
  auto exposure = ZipfExposure(1110);
  FrequencyGroups g = FrequencyGroups::ByGeometricCount(exposure, 3, 10.0);
  ExpectPartition(g, exposure.size());
  // Sizes approximately 1% / 9% / 90%.
  EXPECT_NEAR(static_cast<double>(g.groups[0].size()), 10.0, 3.0);
  EXPECT_NEAR(static_cast<double>(g.groups[1].size()), 100.0, 15.0);
  EXPECT_GT(g.groups[2].size(), 900u);
}

TEST(FrequencyGroupsTest, GeometricCountOrderedByFrequency) {
  auto exposure = ZipfExposure(400);
  FrequencyGroups g = FrequencyGroups::ByGeometricCount(exposure, 4, 5.0);
  for (size_t gi = 0; gi + 1 < g.num_groups(); ++gi) {
    uint64_t min_cur = UINT64_MAX, max_next = 0;
    for (uint32_t q : g.groups[gi]) min_cur = std::min(min_cur, exposure[q]);
    for (uint32_t q : g.groups[gi + 1]) {
      max_next = std::max(max_next, exposure[q]);
    }
    EXPECT_GE(min_cur, max_next);
  }
}

TEST(FrequencyGroupsTest, GeometricCountTwoGroupsMatchesPaperHeadScale) {
  // K=2, ratio ~90 reproduces the paper's ~1% head share.
  auto exposure = ZipfExposure(2000);
  FrequencyGroups g = FrequencyGroups::ByGeometricCount(exposure, 2, 90.0);
  const double head_frac =
      static_cast<double>(g.groups[0].size()) / exposure.size();
  EXPECT_GT(head_frac, 0.005);
  EXPECT_LT(head_frac, 0.02);
}

}  // namespace
}  // namespace garcia::graph
