#include "nn/ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/kernels.h"
#include "core/rng.h"
#include "nn/gradcheck.h"
#include "nn/loss.h"

namespace garcia::nn {
namespace {

using core::Matrix;
using core::Rng;

constexpr double kTol = 2e-2;  // float forward + fd with eps=1e-3

Tensor RandLeaf(size_t r, size_t c, Rng* rng, bool grad = true) {
  return Tensor::Leaf(Matrix::Randn(r, c, rng, 0.0f, 1.0f), grad);
}

// ----- forward-value tests -----

TEST(OpsForwardTest, MatMul) {
  Tensor a = Tensor::Constant(Matrix({{1, 2}, {3, 4}}));
  Tensor b = Tensor::Constant(Matrix({{5, 6}, {7, 8}}));
  EXPECT_TRUE(MatMul(a, b).value().AllClose(Matrix({{19, 22}, {43, 50}})));
}

TEST(OpsForwardTest, MatMulNT) {
  Tensor a = Tensor::Constant(Matrix({{1, 0}, {0, 1}, {1, 1}}));
  Tensor b = Tensor::Constant(Matrix({{2, 3}, {4, 5}}));
  // A @ B^T: 3x2
  EXPECT_TRUE(
      MatMulNT(a, b).value().AllClose(Matrix({{2, 4}, {3, 5}, {5, 9}})));
}

TEST(OpsForwardTest, Transpose) {
  Tensor a = Tensor::Constant(Matrix({{1, 2, 3}, {4, 5, 6}}));
  EXPECT_TRUE(
      Transpose(a).value().AllClose(Matrix({{1, 4}, {2, 5}, {3, 6}})));
}

TEST(OpsForwardTest, AddSubMulScale) {
  Tensor a = Tensor::Constant(Matrix({{1, 2}}));
  Tensor b = Tensor::Constant(Matrix({{3, 5}}));
  EXPECT_TRUE(Add(a, b).value().AllClose(Matrix({{4, 7}})));
  EXPECT_TRUE(Sub(a, b).value().AllClose(Matrix({{-2, -3}})));
  EXPECT_TRUE(Mul(a, b).value().AllClose(Matrix({{3, 10}})));
  EXPECT_TRUE(Scale(a, -2.0f).value().AllClose(Matrix({{-2, -4}})));
  EXPECT_TRUE(AddScalar(a, 1.5f).value().AllClose(Matrix({{2.5, 3.5}})));
}

TEST(OpsForwardTest, AddRowBroadcast) {
  Tensor x = Tensor::Constant(Matrix({{1, 2}, {3, 4}}));
  Tensor b = Tensor::Constant(Matrix({{10, 20}}));
  EXPECT_TRUE(
      AddRowBroadcast(x, b).value().AllClose(Matrix({{11, 22}, {13, 24}})));
}

TEST(OpsForwardTest, MulColBroadcast) {
  Tensor x = Tensor::Constant(Matrix({{1, 2}, {3, 4}}));
  Tensor w = Tensor::Constant(Matrix({{2}, {-1}}));
  EXPECT_TRUE(
      MulColBroadcast(x, w).value().AllClose(Matrix({{2, 4}, {-3, -4}})));
}

TEST(OpsForwardTest, Average) {
  Tensor a = Tensor::Constant(Matrix({{2, 4}}));
  Tensor b = Tensor::Constant(Matrix({{4, 8}}));
  EXPECT_TRUE(Average({a, b}).value().AllClose(Matrix({{3, 6}})));
  EXPECT_TRUE(Average({a}).value().AllClose(Matrix({{2, 4}})));
}

TEST(OpsForwardTest, Concat) {
  Tensor a = Tensor::Constant(Matrix({{1, 2}, {3, 4}}));
  Tensor b = Tensor::Constant(Matrix({{5}, {6}}));
  EXPECT_TRUE(
      ConcatCols(a, b).value().AllClose(Matrix({{1, 2, 5}, {3, 4, 6}})));
  Tensor c = Tensor::Constant(Matrix({{7, 8}}));
  EXPECT_TRUE(ConcatRows(a, c).value().AllClose(
      Matrix({{1, 2}, {3, 4}, {7, 8}})));
}

TEST(OpsForwardTest, GatherRows) {
  Tensor t = Tensor::Constant(Matrix({{1, 1}, {2, 2}, {3, 3}}));
  Tensor g = GatherRows(t, {2, 0, 2});
  EXPECT_TRUE(g.value().AllClose(Matrix({{3, 3}, {1, 1}, {3, 3}})));
}

TEST(OpsForwardTest, Activations) {
  Tensor x = Tensor::Constant(Matrix({{-1, 0, 2}}));
  EXPECT_TRUE(Relu(x).value().AllClose(Matrix({{0, 0, 2}})));
  EXPECT_NEAR(Tanh(x).value().at(0, 2), std::tanh(2.0f), 1e-6);
  EXPECT_NEAR(Sigmoid(x).value().at(0, 0), 1.0 / (1.0 + std::exp(1.0)), 1e-6);
  EXPECT_TRUE(
      LeakyRelu(x, 0.1f).value().AllClose(Matrix({{-0.1, 0, 2}})));
}

TEST(OpsForwardTest, L2NormalizeRows) {
  Tensor x = Tensor::Constant(Matrix({{3, 4}, {0, 0}}));
  Tensor y = L2NormalizeRows(x);
  EXPECT_NEAR(y.value().at(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(y.value().at(0, 1), 0.8f, 1e-6);
  EXPECT_FLOAT_EQ(y.value().at(1, 0), 0.0f);  // zero row passes through
}

TEST(OpsForwardTest, SoftmaxRows) {
  Tensor x = Tensor::Constant(Matrix({{0, 0}, {1000, 1000}}));
  Tensor y = SoftmaxRows(x);
  EXPECT_NEAR(y.value().at(0, 0), 0.5f, 1e-6);
  EXPECT_NEAR(y.value().at(1, 1), 0.5f, 1e-6);  // stable at large logits
}

TEST(OpsForwardTest, Reductions) {
  Tensor x = Tensor::Constant(Matrix({{1, 2}, {3, 4}}));
  EXPECT_FLOAT_EQ(SumAll(x).scalar(), 10.0f);
  EXPECT_FLOAT_EQ(MeanAll(x).scalar(), 2.5f);
  Tensor a = Tensor::Constant(Matrix({{1, 2}, {3, 4}}));
  Tensor b = Tensor::Constant(Matrix({{5, 6}, {7, 8}}));
  Tensor d = RowDot(a, b);
  EXPECT_FLOAT_EQ(d.value().at(0, 0), 17.0f);
  EXPECT_FLOAT_EQ(d.value().at(1, 0), 53.0f);
}

TEST(OpsForwardTest, SegmentSum) {
  Tensor x = Tensor::Constant(Matrix({{1, 1}, {2, 2}, {3, 3}, {4, 4}}));
  Tensor s = SegmentSum(x, {0, 1, 0, 2}, 4);
  EXPECT_TRUE(s.value().AllClose(
      Matrix({{4, 4}, {2, 2}, {4, 4}, {0, 0}})));  // segment 3 empty
}

TEST(OpsForwardTest, SegmentSoftmaxSumsToOnePerSegment) {
  Rng rng(3);
  const size_t edges = 40, segs = 7;
  std::vector<uint32_t> seg(edges);
  for (auto& s : seg) s = static_cast<uint32_t>(rng.UniformInt(uint64_t{segs}));
  Tensor scores = RandLeaf(edges, 1, &rng, false);
  Tensor a = SegmentSoftmax(scores, seg, segs);
  std::vector<double> sums(segs, 0.0);
  for (size_t e = 0; e < edges; ++e) {
    EXPECT_GT(a.value().at(e, 0), 0.0f);
    sums[seg[e]] += a.value().at(e, 0);
  }
  for (size_t s = 0; s < segs; ++s) {
    if (sums[s] > 0.0) EXPECT_NEAR(sums[s], 1.0, 1e-5);
  }
}

TEST(OpsForwardTest, SegmentSoftmaxSingletonIsOne) {
  Tensor scores = Tensor::Constant(Matrix({{42.0}}));
  Tensor a = SegmentSoftmax(scores, {0}, 1);
  EXPECT_NEAR(a.value().at(0, 0), 1.0f, 1e-6);
}

TEST(OpsForwardTest, DropoutZeroPIsIdentity) {
  Rng rng(5);
  Tensor x = Tensor::Constant(Matrix({{1, 2, 3}}));
  EXPECT_TRUE(Dropout(x, 0.0f, &rng).value().AllClose(x.value()));
}

TEST(OpsForwardTest, DropoutPreservesExpectation) {
  Rng rng(7);
  Tensor x = Tensor::Constant(Matrix(1, 20000, 1.0f));
  Tensor y = Dropout(x, 0.3f, &rng);
  EXPECT_NEAR(y.value().Sum() / 20000.0, 1.0, 0.03);
}

// ----- gradient checks -----

class OpGradTest : public ::testing::Test {
 protected:
  Rng rng_{12345};

  void ExpectGradOk(const std::function<Tensor()>& loss,
                    const std::vector<Tensor>& params) {
    auto res = CheckGradients(loss, params, 1e-2f);
    EXPECT_LT(res.max_rel_error, kTol)
        << "abs=" << res.max_abs_error << " over " << res.checked_entries;
  }
};

TEST_F(OpGradTest, MatMul) {
  Tensor a = RandLeaf(3, 4, &rng_);
  Tensor b = RandLeaf(4, 2, &rng_);
  ExpectGradOk([&] { return SumAll(Tanh(MatMul(a, b))); }, {a, b});
}

TEST_F(OpGradTest, MatMulNT) {
  Tensor a = RandLeaf(3, 4, &rng_);
  Tensor b = RandLeaf(5, 4, &rng_);
  ExpectGradOk([&] { return SumAll(Tanh(MatMulNT(a, b))); }, {a, b});
}

TEST_F(OpGradTest, Transpose) {
  Tensor a = RandLeaf(3, 2, &rng_);
  ExpectGradOk([&] { return SumAll(Tanh(Transpose(a))); }, {a});
}

TEST_F(OpGradTest, AddSubMul) {
  Tensor a = RandLeaf(2, 3, &rng_);
  Tensor b = RandLeaf(2, 3, &rng_);
  ExpectGradOk([&] { return SumAll(Mul(Add(a, b), Sub(a, b))); }, {a, b});
}

TEST_F(OpGradTest, ScaleAddScalar) {
  Tensor a = RandLeaf(2, 2, &rng_);
  ExpectGradOk([&] { return SumAll(Tanh(AddScalar(Scale(a, 1.7f), 0.3f))); },
               {a});
}

TEST_F(OpGradTest, AddRowBroadcast) {
  Tensor x = RandLeaf(4, 3, &rng_);
  Tensor b = RandLeaf(1, 3, &rng_);
  ExpectGradOk([&] { return SumAll(Tanh(AddRowBroadcast(x, b))); }, {x, b});
}

TEST_F(OpGradTest, MulColBroadcast) {
  Tensor x = RandLeaf(4, 3, &rng_);
  Tensor w = RandLeaf(4, 1, &rng_);
  ExpectGradOk([&] { return SumAll(Tanh(MulColBroadcast(x, w))); }, {x, w});
}

TEST_F(OpGradTest, Average) {
  Tensor a = RandLeaf(2, 3, &rng_);
  Tensor b = RandLeaf(2, 3, &rng_);
  Tensor c = RandLeaf(2, 3, &rng_);
  ExpectGradOk([&] { return SumAll(Tanh(Average({a, b, c}))); }, {a, b, c});
}

TEST_F(OpGradTest, Concat) {
  Tensor a = RandLeaf(3, 2, &rng_);
  Tensor b = RandLeaf(3, 4, &rng_);
  ExpectGradOk([&] { return SumAll(Tanh(ConcatCols(a, b))); }, {a, b});
  Tensor c = RandLeaf(2, 2, &rng_);
  ExpectGradOk([&] { return SumAll(Tanh(ConcatRows(a, c))); }, {a, c});
}

TEST_F(OpGradTest, GatherRowsWithRepeats) {
  Tensor t = RandLeaf(5, 3, &rng_);
  std::vector<uint32_t> idx = {0, 2, 2, 4, 0};
  ExpectGradOk([&] { return SumAll(Tanh(GatherRows(t, idx))); }, {t});
}

TEST_F(OpGradTest, ActivationChain) {
  Tensor x = RandLeaf(3, 3, &rng_);
  ExpectGradOk([&] { return SumAll(Sigmoid(Tanh(LeakyRelu(x, 0.2f)))); },
               {x});
}

TEST_F(OpGradTest, Relu) {
  // Shift away from 0 so finite differences do not straddle the kink.
  Tensor x = Tensor::Leaf(Matrix({{-1.0, 0.5, 2.0, -0.3}}), true);
  ExpectGradOk([&] { return SumAll(Relu(x)); }, {x});
}

TEST_F(OpGradTest, L2NormalizeRows) {
  Tensor x = RandLeaf(4, 5, &rng_);
  ExpectGradOk([&] { return SumAll(Tanh(L2NormalizeRows(x))); }, {x});
}

TEST_F(OpGradTest, SoftmaxRows) {
  Tensor x = RandLeaf(3, 6, &rng_);
  Tensor w = Tensor::Constant(Matrix::Randn(3, 6, &rng_));
  ExpectGradOk([&] { return SumAll(Mul(SoftmaxRows(x), w)); }, {x});
}

TEST_F(OpGradTest, MeanAllRowDot) {
  Tensor a = RandLeaf(4, 3, &rng_);
  Tensor b = RandLeaf(4, 3, &rng_);
  ExpectGradOk([&] { return MeanAll(Tanh(RowDot(a, b))); }, {a, b});
}

TEST_F(OpGradTest, SegmentSum) {
  Tensor x = RandLeaf(6, 3, &rng_);
  std::vector<uint32_t> seg = {0, 1, 0, 2, 1, 0};
  ExpectGradOk([&] { return SumAll(Tanh(SegmentSum(x, seg, 3))); }, {x});
}

TEST_F(OpGradTest, SegmentSoftmax) {
  Tensor s = RandLeaf(7, 1, &rng_);
  std::vector<uint32_t> seg = {0, 0, 1, 1, 1, 2, 0};
  Tensor w = Tensor::Constant(Matrix::Randn(7, 1, &rng_));
  ExpectGradOk([&] { return SumAll(Mul(SegmentSoftmax(s, seg, 3), w)); },
               {s});
}

TEST_F(OpGradTest, GnnLayerComposite) {
  // The exact composition used by the GARCIA encoder: gather neighbors,
  // concat edge features, attention via segment softmax, segment-sum,
  // linear + tanh update.
  const size_t nodes = 5, edges = 8, d = 4, de = 2;
  Tensor emb = RandLeaf(nodes, d, &rng_);
  Tensor w_att = RandLeaf(2 * d + de, 1, &rng_);
  Tensor w_agg = RandLeaf(d + de, d, &rng_);
  std::vector<uint32_t> src = {0, 1, 2, 3, 4, 1, 2, 0};
  std::vector<uint32_t> dst = {1, 0, 1, 2, 3, 4, 4, 2};
  Tensor efeat = Tensor::Constant(Matrix::Randn(edges, de, &rng_));
  auto loss = [&] {
    Tensor zsrc = GatherRows(emb, src);
    Tensor zdst = GatherRows(emb, dst);
    Tensor att_in = ConcatCols(ConcatCols(zdst, zsrc), efeat);
    Tensor alpha = SegmentSoftmax(LeakyRelu(MatMul(att_in, w_att)), dst, nodes);
    Tensor msg_in = ConcatCols(zsrc, efeat);
    Tensor weighted = MulColBroadcast(msg_in, alpha);
    Tensor agg = SegmentSum(weighted, dst, nodes);
    Tensor m = Tanh(MatMul(agg, w_agg));
    return SumAll(Tanh(m));
  };
  ExpectGradOk(loss, {emb, w_att, w_agg});
}

// ----- execution-backend parity -----

// Runs a composite graph (every rewired op: gather, broadcast, segment
// softmax/sum, activations, GEMM, normalize + cross-entropy) forward and
// backward under a given execution context; returns (loss, dEmb, dW).
struct ParityResult {
  float loss;
  Matrix d_emb;
  Matrix d_w;
};

ParityResult RunCompositeGraph(const core::ExecutionContext* ctx) {
  core::ScopedExecution scope(ctx);
  Rng rng(99);
  const size_t nodes = 40, d = 8, edges = 160;
  Tensor emb = RandLeaf(nodes, d, &rng);
  Tensor w = RandLeaf(d, d, &rng);
  std::vector<uint32_t> src(edges), dst(edges), targets;
  for (size_t e = 0; e < edges; ++e) {
    src[e] = static_cast<uint32_t>(rng.UniformInt(nodes));
    dst[e] = static_cast<uint32_t>(rng.UniformInt(nodes));
  }
  Tensor h = LeakyRelu(MatMul(emb, w), 0.1f);
  Tensor msg = GatherRows(h, src);
  Tensor scores = Sigmoid(RowDot(msg, GatherRows(h, dst)));
  Tensor alpha = SegmentSoftmax(scores, dst, nodes);
  Tensor agg = SegmentSum(MulColBroadcast(msg, alpha), dst, nodes);
  Tensor z = Tanh(Add(agg, h));
  for (size_t i = 0; i < nodes; ++i) {
    targets.push_back(static_cast<uint32_t>((i * 7) % nodes));
  }
  Tensor loss = InfoNce(z, Relu(z), targets, 0.2f);
  loss.Backward();
  return {loss.scalar(), emb.grad(), w.grad()};
}

TEST(ExecutionParityTest, ParallelBackendBitIdenticalThroughOps) {
  ParityResult serial = RunCompositeGraph(nullptr);
  for (size_t threads : {2u, 3u, 4u}) {
    core::ExecutionContext ctx(threads);
    ParityResult par = RunCompositeGraph(&ctx);
    EXPECT_EQ(serial.loss, par.loss) << threads << " threads";
    ASSERT_EQ(serial.d_emb.size(), par.d_emb.size());
    for (size_t i = 0; i < serial.d_emb.size(); ++i) {
      ASSERT_EQ(serial.d_emb.data()[i], par.d_emb.data()[i])
          << threads << " threads, dEmb flat index " << i;
    }
    for (size_t i = 0; i < serial.d_w.size(); ++i) {
      ASSERT_EQ(serial.d_w.data()[i], par.d_w.data()[i])
          << threads << " threads, dW flat index " << i;
    }
  }
}

}  // namespace
}  // namespace garcia::nn
