#include "graph/neighbor_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "models/gnn_encoder.h"
#include "nn/gradcheck.h"
#include "nn/ops.h"

namespace garcia::graph {
namespace {

using core::Matrix;
using core::Rng;

/// 6 queries, 4 services, mixed degrees (service node 6+s gets in-edges
/// from several queries; query nodes get the reverse edges).
SearchGraph MediumGraph() {
  SearchGraph g(6, 4, 5);
  Rng rng(11);
  g.attributes() = Matrix::Randn(10, 5, &rng);
  g.AddLink(0, 0, EdgeKind::kInteraction, 0.9f, 0);
  g.AddLink(1, 0, EdgeKind::kInteraction, 0.7f, kCorrBrand);
  g.AddLink(2, 0, EdgeKind::kInteraction, 0.5f, 0);
  g.AddLink(3, 0, EdgeKind::kCorrelation, 0.0f, kCorrCity);
  g.AddLink(0, 1, EdgeKind::kInteraction, 0.4f, 0);
  g.AddLink(1, 1, EdgeKind::kCorrelation, 0.0f, kCorrCategory);
  g.AddLink(4, 1, EdgeKind::kInteraction, 0.8f, 0);
  g.AddLink(2, 2, EdgeKind::kInteraction, 0.6f, kCorrBrand | kCorrCity);
  g.AddLink(5, 2, EdgeKind::kInteraction, 0.3f, 0);
  g.AddLink(4, 3, EdgeKind::kCorrelation, 0.0f, kCorrBrand);
  g.Finalize();
  return g;
}

/// Checks the per-destination edges of one block pass against the graph's
/// CSR: every sampled edge must be a real in-edge of its destination, in
/// ascending global edge order within the destination, at most `fanout`
/// per destination (0 = all), and with matching feature rows.
void CheckLayerAgainstGraph(const SearchGraph& g, const Block& b,
                            const BlockLayer& layer, size_t fanout) {
  ASSERT_EQ(layer.src.size(), layer.dst.size());
  ASSERT_EQ(layer.edge_feats.rows(), layer.src.size());
  size_t e = 0;
  for (size_t d = 0; d < layer.num_dst; ++d) {
    const uint32_t global_dst = b.nodes[d];
    auto [lo, hi] = g.IncomingRange(global_dst);
    size_t count = 0;
    size_t cursor = lo;  // enforces ascending global edge order
    while (e < layer.src.size() && layer.dst[e] == d) {
      const uint32_t global_src = b.nodes[layer.src[e]];
      // Find this edge in the destination's CSR range, at or after the
      // previous match.
      bool found = false;
      for (; cursor < hi; ++cursor) {
        if (g.edge_src()[cursor] == global_src) {
          for (size_t k = 0; k < kEdgeFeatureDim; ++k) {
            EXPECT_EQ(layer.edge_feats.at(e, k),
                      g.edge_features().at(cursor, k));
          }
          ++cursor;
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "edge not in CSR order for dst " << global_dst;
      ++count;
      ++e;
    }
    if (fanout == 0) {
      EXPECT_EQ(count, hi - lo) << "fanout 0 must take every in-edge";
    } else {
      EXPECT_LE(count, fanout);
      EXPECT_EQ(count, std::min(fanout, hi - lo));
    }
  }
  EXPECT_EQ(e, layer.src.size()) << "edges must be grouped by ascending dst";
}

TEST(NeighborSamplerTest, FullFanoutReproducesClosure) {
  SearchGraph g = MediumGraph();
  NeighborSampler sampler(&g, 2, /*fanout=*/0);
  Rng rng(3);
  const std::vector<uint32_t> seeds = {g.QueryNode(0), g.ServiceNode(2)};
  Block b = sampler.Sample(seeds, &rng);

  EXPECT_FALSE(b.full_graph);
  EXPECT_EQ(b.num_seeds, seeds.size());
  ASSERT_EQ(b.layers.size(), 2u);
  for (size_t i = 0; i < seeds.size(); ++i) EXPECT_EQ(b.nodes[i], seeds[i]);

  // Nested prefixes: pass 1 (innermost) updates exactly the seeds; pass 0
  // updates pass 1's sources.
  EXPECT_EQ(b.layers[1].num_dst, seeds.size());
  EXPECT_EQ(b.layers[0].num_dst, b.layers[1].num_src);
  EXPECT_EQ(b.layers[0].num_src, b.nodes.size());
  EXPECT_LE(b.layers[1].num_dst, b.layers[1].num_src);
  EXPECT_LE(b.layers[0].num_dst, b.layers[0].num_src);

  for (const BlockLayer& layer : b.layers) {
    CheckLayerAgainstGraph(g, b, layer, 0);
  }

  // Local ids map to distinct globals.
  std::set<uint32_t> uniq(b.nodes.begin(), b.nodes.end());
  EXPECT_EQ(uniq.size(), b.nodes.size());
}

TEST(NeighborSamplerTest, FanoutBoundsEdgesPerDestination) {
  SearchGraph g = MediumGraph();
  NeighborSampler sampler(&g, 2, /*fanout=*/2);
  Rng rng(5);
  const std::vector<uint32_t> seeds = {g.ServiceNode(0), g.QueryNode(4)};
  Block b = sampler.Sample(seeds, &rng);
  for (const BlockLayer& layer : b.layers) {
    CheckLayerAgainstGraph(g, b, layer, 2);
  }
}

TEST(NeighborSamplerTest, DeterministicGivenSeed) {
  SearchGraph g = MediumGraph();
  NeighborSampler sampler(&g, 2, /*fanout=*/2);
  const std::vector<uint32_t> seeds = {g.QueryNode(1), g.ServiceNode(1),
                                       g.QueryNode(5)};
  Rng rng_a(17), rng_b(17);
  Block a = sampler.Sample(seeds, &rng_a);
  Block b = sampler.Sample(seeds, &rng_b);
  ASSERT_EQ(a.nodes, b.nodes);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (size_t l = 0; l < a.layers.size(); ++l) {
    EXPECT_EQ(a.layers[l].src, b.layers[l].src);
    EXPECT_EQ(a.layers[l].dst, b.layers[l].dst);
    EXPECT_EQ(a.layers[l].num_dst, b.layers[l].num_dst);
    EXPECT_EQ(a.layers[l].num_src, b.layers[l].num_src);
  }
}

TEST(NeighborSamplerTest, FullGraphBlockIsTrivial) {
  SearchGraph g = MediumGraph();
  Block b = Block::FullGraph(g);
  EXPECT_TRUE(b.full_graph);
  EXPECT_EQ(b.num_nodes(), g.num_nodes());
  EXPECT_EQ(b.num_readout_rows(), g.num_nodes());
  EXPECT_TRUE(b.nodes.empty());
  EXPECT_TRUE(b.layers.empty());
}

TEST(NeighborSamplerTest, FullFanoutEncodeParity) {
  // The acceptance check of DESIGN.md §5e: a fanout-0 block encode is
  // bit-identical, row for row, to the full-graph encode at the seeds.
  SearchGraph g = MediumGraph();
  Rng enc_rng(23);
  models::GarciaGnnEncoder enc(g.num_nodes(), g.attr_dim(), 8, 2, &enc_rng);
  models::GnnOutput full = enc.Encode(g);

  NeighborSampler sampler(&g, 2, /*fanout=*/0);
  Rng rng(29);
  const std::vector<uint32_t> seeds = {g.QueryNode(2), g.ServiceNode(0),
                                       g.QueryNode(5)};
  Block b = sampler.Sample(seeds, &rng);
  models::GnnOutput sampled = enc.EncodeBlock(g, b);

  ASSERT_EQ(sampled.readout.rows(), seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    for (size_t k = 0; k < 8; ++k) {
      EXPECT_EQ(sampled.readout.value().at(i, k),
                full.readout.value().at(seeds[i], k))
          << "row " << i << " col " << k << " not bit-identical";
    }
  }
}

TEST(NeighborSamplerTest, GradcheckThroughSampledBlock) {
  SearchGraph g = MediumGraph();
  Rng enc_rng(31);
  models::GarciaGnnEncoder enc(g.num_nodes(), g.attr_dim(), 3, 1, &enc_rng);
  NeighborSampler sampler(&g, 1, /*fanout=*/2);
  Rng rng(37);
  const std::vector<uint32_t> seeds = {g.ServiceNode(1), g.QueryNode(0)};
  Block b = sampler.Sample(seeds, &rng);
  auto res = nn::CheckGradients(
      [&] { return nn::MeanAll(nn::Tanh(enc.EncodeBlock(g, b).readout)); },
      enc.Parameters(), 1e-2f);
  EXPECT_LT(res.max_rel_error, 3e-2);
}

TEST(SeedSetTest, IdentityModePassesRowsThrough) {
  SeedSet seeds(/*identity=*/true);
  EXPECT_EQ(seeds.Map(7u), 7u);
  EXPECT_EQ(seeds.Map(3u), 3u);
  EXPECT_EQ(seeds.Map(7u), 7u);
  EXPECT_TRUE(seeds.seeds().empty());
}

TEST(SeedSetTest, CollectModeAssignsFirstUseOrder) {
  SeedSet seeds(/*identity=*/false);
  EXPECT_EQ(seeds.Map(7u), 0u);
  EXPECT_EQ(seeds.Map(3u), 1u);
  EXPECT_EQ(seeds.Map(7u), 0u);  // dedup keeps the first local id
  EXPECT_EQ(seeds.Map(9u), 2u);
  EXPECT_EQ(seeds.seeds(), (std::vector<uint32_t>{7u, 3u, 9u}));
}

TEST(InvSqrtDegreesTest, MatchesGraphDegrees) {
  SearchGraph g = MediumGraph();
  std::vector<float> inv = InvSqrtDegrees(g);
  ASSERT_EQ(inv.size(), g.num_nodes());
  for (uint32_t n = 0; n < g.num_nodes(); ++n) {
    const size_t deg = g.Degree(n);
    if (deg == 0) {
      EXPECT_EQ(inv[n], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(inv[n], 1.0f / std::sqrt(static_cast<float>(deg)));
    }
  }
}

}  // namespace
}  // namespace garcia::graph
