// Concurrency & determinism tests for the batched serving path (ISSUE 4):
// BatchRanker and ResilientRanker hammered from many threads must produce
// results bit-identical to a serial pass per request — ranked lists, tier
// decisions, and breaker/health counter totals — with no dropped requests.
// Runs under the TSan lane of scripts/check.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/matrix.h"
#include "core/rng.h"
#include "core/string_util.h"
#include "serving/batch_ranker.h"
#include "serving/fault_injector.h"
#include "serving/ranking_service.h"
#include "serving/resilient_ranker.h"

namespace garcia::serving {
namespace {

using core::Matrix;

constexpr size_t kQueries = 120;
constexpr size_t kServices = 60;
constexpr size_t kDim = 8;

/// Full degradation chain over random embeddings: fresh covers all ids,
/// stale the oldest 70%, tail ids anchor onto a head id, text + popularity
/// terminate the chain.
std::shared_ptr<ResilientRanker> MakeChainRanker(ResilienceConfig cfg = {}) {
  core::Rng rng(404);
  Matrix query_emb = Matrix::Randn(kQueries, kDim, &rng);
  Matrix service_emb = Matrix::Randn(kServices, kDim, &rng);
  auto ranker = std::make_shared<ResilientRanker>(
      EmbeddingStore(query_emb), EmbeddingStore(service_emb), cfg);
  const size_t keep = kQueries * 7 / 10;
  Matrix stale(keep, kDim);
  for (size_t i = 0; i < keep; ++i) stale.CopyRowFrom(query_emb, i, i);
  ranker->SetStaleSnapshot(EmbeddingStore(std::move(stale)));
  std::vector<int32_t> anchors(kQueries, -1);
  for (size_t q = keep; q < kQueries; ++q) {
    anchors[q] = static_cast<int32_t>(q % 5);
  }
  ranker->SetHeadAnchors(std::move(anchors));
  std::vector<std::string> query_texts, service_names;
  for (size_t q = 0; q < kQueries; ++q) {
    query_texts.push_back(core::StrFormat("query number %zu", q));
  }
  std::vector<double> popularity;
  for (size_t s = 0; s < kServices; ++s) {
    service_names.push_back(core::StrFormat("service number %zu", s));
    popularity.push_back(static_cast<double>((s * 37) % kServices));
  }
  ranker->SetTextFallback(
      std::make_shared<TextRanker>(query_texts, service_names));
  ranker->SetPopularityFallback(
      std::make_shared<PopularityRanker>(popularity));
  return ranker;
}

FaultProfile AggressiveProfile() {
  FaultProfile profile;
  profile.seed = 97;
  profile.lookup_failure_rate = 0.20;
  profile.missing_id_rate = 0.10;
  profile.bit_flip_rate = 0.05;
  profile.latency_spike_rate = 0.05;
  return profile;
}

/// Traffic including ids past the embedding table (unknown / cold-start).
std::vector<ServeRequest> MakeTraffic(size_t n) {
  std::vector<ServeRequest> requests(n);
  core::Rng traffic(123);
  for (auto& r : requests) {
    r.query = static_cast<uint32_t>(
        traffic.UniformInt(static_cast<uint64_t>(kQueries + 20)));
    r.k = 3;
  }
  return requests;
}

/// Serial reference pass: explicit indices 0..n-1, tiers captured.
struct SerialReference {
  std::vector<RankedList> lists;
  std::vector<ServingTier> tiers;
  std::string health;
};

SerialReference RunSerialReference(const ResilientRanker& ranker,
                                   const FaultProfile* profile, uint64_t seed,
                                   const std::vector<ServeRequest>& requests) {
  ranker.PrepareForRun(profile, seed);
  SerialReference ref;
  ref.lists.resize(requests.size());
  ref.tiers.resize(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ref.lists[i] =
        ranker.RankAt(i, requests[i].query, requests[i].k, &ref.tiers[i]);
  }
  ref.health = ranker.health().ToString();
  return ref;
}

TEST(BatchRankerConcurrencyTest, BitIdenticalAcrossThreadAndBatchConfigs) {
  auto ranker = MakeChainRanker();
  const FaultProfile profile = AggressiveProfile();
  const std::vector<ServeRequest> requests = MakeTraffic(400);
  const SerialReference ref =
      RunSerialReference(*ranker, &profile, /*seed=*/17, requests);
  for (const size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    for (const size_t batch_size : {size_t{32}, size_t{400}, size_t{1000}}) {
      ServeConfig serve;
      serve.num_threads = threads;
      serve.batch_size = batch_size;
      BatchRanker batch(ranker, serve);
      ranker->PrepareForRun(&profile, /*seed=*/17);
      const std::vector<RankedList> lists = batch.RankBatch(requests);
      ASSERT_EQ(lists.size(), requests.size());  // nothing dropped
      for (size_t i = 0; i < lists.size(); ++i) {
        ASSERT_FALSE(lists[i].empty()) << "request " << i << " unanswered";
        ASSERT_EQ(lists[i], ref.lists[i])
            << "threads=" << threads << " batch=" << batch_size
            << " request " << i;
      }
      // Counter totals — attempts, retries, breaker transitions, per-tier
      // serve counts — must match the serial pass exactly.
      EXPECT_EQ(ranker->health().ToString(), ref.health)
          << "threads=" << threads << " batch=" << batch_size;
    }
  }
}

TEST(BatchRankerConcurrencyTest, IndexStreamContinuesAcrossBatchCalls) {
  auto ranker = MakeChainRanker();
  const FaultProfile profile = AggressiveProfile();
  const std::vector<ServeRequest> requests = MakeTraffic(300);
  const SerialReference ref =
      RunSerialReference(*ranker, &profile, /*seed=*/3, requests);

  ServeConfig serve;
  serve.num_threads = 4;
  BatchRanker batch(ranker, serve);
  ranker->PrepareForRun(&profile, /*seed=*/3);
  // The same stream split into three RankBatch calls: indices continue, so
  // the union must reproduce the one-shot serial pass.
  std::vector<RankedList> lists;
  for (size_t lo = 0; lo < requests.size(); lo += 100) {
    const std::vector<ServeRequest> slice(
        requests.begin() + static_cast<long>(lo),
        requests.begin() + static_cast<long>(lo + 100));
    for (auto& list : batch.RankBatch(slice)) lists.push_back(std::move(list));
  }
  EXPECT_EQ(batch.next_index(), requests.size());
  ASSERT_EQ(lists.size(), ref.lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    ASSERT_EQ(lists[i], ref.lists[i]) << "request " << i;
  }
  EXPECT_EQ(ranker->health().ToString(), ref.health);
}

TEST(ResilientRankerConcurrencyTest, RankAtHammerMatchesSerialTiersAndLists) {
  auto ranker = MakeChainRanker();
  const FaultProfile profile = AggressiveProfile();
  const std::vector<ServeRequest> requests = MakeTraffic(400);
  const SerialReference ref =
      RunSerialReference(*ranker, &profile, /*seed=*/29, requests);

  // Raw N-thread hammer on RankAt — no BatchRanker in between. Workers
  // claim indices in ascending order through an atomic counter.
  for (const size_t num_threads : {size_t{2}, size_t{8}}) {
    ranker->PrepareForRun(&profile, /*seed=*/29);
    std::vector<RankedList> lists(requests.size());
    std::vector<ServingTier> tiers(requests.size());
    std::atomic<size_t> counter{0};
    std::vector<std::thread> threads;
    for (size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back([&] {
        for (;;) {
          const size_t i = counter.fetch_add(1);
          if (i >= requests.size()) return;
          lists[i] =
              ranker->RankAt(i, requests[i].query, requests[i].k, &tiers[i]);
        }
      });
    }
    for (auto& t : threads) t.join();
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_EQ(lists[i], ref.lists[i])
          << num_threads << " threads, request " << i;
      ASSERT_EQ(tiers[i], ref.tiers[i])
          << num_threads << " threads, request " << i;
    }
    EXPECT_EQ(ranker->health().ToString(), ref.health)
        << num_threads << " threads";
  }
}

TEST(ResilientRankerConcurrencyTest, AutoIndexedRankIsSafeAndDropsNothing) {
  // Concurrent Rank() calls (arrival-order indices): the interleaving is
  // nondeterministic, but with a fault-free store every in-dump query must
  // be served fresh with its reference list, and the counters must account
  // for every request.
  auto ranker = MakeChainRanker();
  ranker->PrepareForRun(nullptr, /*seed=*/1);
  std::vector<RankedList> expected(kQueries);
  for (uint32_t q = 0; q < kQueries; ++q) {
    expected[q] = ranker->RankAt(q, q, 3);
  }
  ranker->PrepareForRun(nullptr, /*seed=*/1);

  constexpr size_t kThreads = 8, kPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<size_t> mismatches{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        const uint32_t q =
            static_cast<uint32_t>((t * kPerThread + i * 13) % kQueries);
        if (ranker->Rank(q, 3) != expected[q]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  const ServingHealth h = ranker->health();
  EXPECT_EQ(h.requests, kThreads * kPerThread);
  EXPECT_EQ(h.served_at_tier[0], kThreads * kPerThread);  // all fresh
}

TEST(EmbeddingRankerConcurrencyTest, BatchedHammerMatchesSerial) {
  core::Rng rng(7);
  auto ranker = std::make_shared<EmbeddingRanker>(
      EmbeddingStore(Matrix::Randn(kQueries, kDim, &rng)),
      EmbeddingStore(Matrix::Randn(kServices, kDim, &rng)));
  std::vector<ServeRequest> requests(500);
  core::Rng traffic(5);
  for (auto& r : requests) {
    r.query = static_cast<uint32_t>(
        traffic.UniformInt(static_cast<uint64_t>(kQueries)));
    r.k = 10;
  }
  BatchRanker serial(ranker, ServeConfig{});
  const std::vector<RankedList> ref = serial.RankBatch(requests);
  ServeConfig serve;
  serve.num_threads = 8;
  serve.batch_size = 64;
  BatchRanker batch(ranker, serve);
  const std::vector<RankedList> lists = batch.RankBatch(requests);
  ASSERT_EQ(lists.size(), ref.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    ASSERT_EQ(lists[i], ref[i]) << "request " << i;
  }
}

TEST(BatchRankerAsyncTest, AsyncResultsMatchSynchronousPath) {
  auto ranker = MakeChainRanker();
  const FaultProfile profile = AggressiveProfile();
  const auto requests = MakeTraffic(300);
  const SerialReference ref =
      RunSerialReference(*ranker, &profile, /*seed=*/11, requests);

  ranker->PrepareForRun(&profile, /*seed=*/11);
  ServeConfig serve;
  serve.num_threads = 6;
  BatchRanker batch(ranker, serve);
  std::vector<RankedList> results;
  std::atomic<size_t> sink_calls{0};
  batch.RankBatchAsync(requests, &results, [&](size_t, double micros) {
    EXPECT_GE(micros, 0.0);
    sink_calls.fetch_add(1, std::memory_order_relaxed);
  });
  batch.Drain();
  EXPECT_EQ(sink_calls.load(), requests.size());
  ASSERT_EQ(results.size(), ref.lists.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(results[i], ref.lists[i]) << "request " << i;
  }
  EXPECT_EQ(ranker->health().ToString(), ref.health);
}

// Regression: destroying the facade with async requests still in flight
// must drain them (and their latency-sink callbacks) BEFORE the owned
// pool — and before any other member — is torn down. The default member
// destruction order destroyed state stragglers could still observe; under
// ASan this test caught that as a use-after-destruction.
TEST(BatchRankerAsyncTest, DestroyMidFlightDrainsBeforeTeardown) {
  auto ranker = MakeChainRanker();
  const FaultProfile profile = AggressiveProfile();
  const auto requests = MakeTraffic(400);
  const SerialReference ref =
      RunSerialReference(*ranker, &profile, /*seed=*/23, requests);

  for (int round = 0; round < 5; ++round) {
    ranker->PrepareForRun(&profile, /*seed=*/23);
    ServeConfig serve;
    serve.num_threads = 8;
    auto batch = std::make_unique<BatchRanker>(ranker, serve);
    std::vector<RankedList> results;
    std::atomic<size_t> sink_calls{0};
    batch->RankBatchAsync(requests, &results, [&](size_t i, double) {
      // Touches facade-external state the worker must still be allowed to
      // reach while the destructor runs.
      EXPECT_LT(i, requests.size());
      sink_calls.fetch_add(1, std::memory_order_relaxed);
    });
    batch.reset();  // mid-flight destruction: must drain, then tear down
    EXPECT_EQ(sink_calls.load(), requests.size());
    ASSERT_EQ(results.size(), ref.lists.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_EQ(results[i], ref.lists[i]) << "round " << round << " req " << i;
    }
  }
}

}  // namespace
}  // namespace garcia::serving
