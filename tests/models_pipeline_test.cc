// Copyright (c) 2026 GARCIA reproduction authors.
// Pipelined-vs-barriered training bit-parity (DESIGN.md §5j).
//
// TrainConfig::pipeline_depth >= 1 overlaps step t+1's planning/sampling
// with step t's compute. These tests pin the contract that the overlap is
// invisible: scores, loss probes, and checkpoint bytes are bit-identical
// to the legacy barriered loop for every thread count, in full-graph and
// sampled mode, across GARCIA and the baseline loops.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "models/garcia_model.h"
#include "models/lightgcn.h"
#include "models/sgl.h"
#include "models/wide_deep.h"

namespace garcia::models {
namespace {

namespace fs = std::filesystem;

data::ScenarioConfig TinyDataConfig() {
  data::ScenarioConfig cfg;
  cfg.num_queries = 150;
  cfg.num_services = 60;
  cfg.num_intentions = 30;
  cfg.num_trees = 4;
  cfg.num_impressions = 6000;
  cfg.head_fraction = 0.06;
  return cfg;
}

const data::Scenario& Tiny() {
  static const data::Scenario* s =
      new data::Scenario(data::GenerateScenario(TinyDataConfig()));
  return *s;
}

TrainConfig FastTrainConfig() {
  TrainConfig cfg;
  cfg.embedding_dim = 16;
  cfg.pretrain_epochs = 2;
  cfg.finetune_epochs = 3;
  cfg.max_batches_per_epoch = 6;
  cfg.batch_size = 512;
  cfg.cl_batch_size = 96;
  return cfg;
}

template <typename Model>
std::vector<float> FitAndScore(const TrainConfig& cfg) {
  Model model(cfg);
  model.Fit(Tiny());
  return model.Predict(Tiny(), Tiny().test);
}

void ExpectBitIdentical(const std::vector<float>& ref,
                        const std::vector<float>& got,
                        const std::string& label) {
  ASSERT_EQ(ref.size(), got.size()) << label;
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref[i], got[i]) << label << " diverges at score " << i;
  }
}

TEST(PipelinedTrainingTest, GarciaFullGraphBitIdentical) {
  TrainConfig cfg = FastTrainConfig();
  const std::vector<float> ref = FitAndScore<GarciaModel>(cfg);
  for (size_t threads : {0u, 1u, 2u, 4u}) {
    TrainConfig p = cfg;
    p.pipeline_depth = 1;
    p.num_threads = threads;
    ExpectBitIdentical(ref, FitAndScore<GarciaModel>(p),
                       "full-graph threads=" + std::to_string(threads));
  }
}

TEST(PipelinedTrainingTest, GarciaSampledBitIdentical) {
  TrainConfig cfg = FastTrainConfig();
  cfg.sample_fanout = 8;
  const std::vector<float> ref = FitAndScore<GarciaModel>(cfg);
  for (size_t threads : {0u, 1u, 2u, 4u}) {
    TrainConfig p = cfg;
    p.pipeline_depth = 1;
    p.num_threads = threads;
    ExpectBitIdentical(ref, FitAndScore<GarciaModel>(p),
                       "fanout=8 threads=" + std::to_string(threads));
  }
}

TEST(PipelinedTrainingTest, GarciaLossProbesMatch) {
  TrainConfig cfg = FastTrainConfig();
  cfg.sample_fanout = 8;
  GarciaModel barriered(cfg);
  barriered.Fit(Tiny());
  TrainConfig p = cfg;
  p.pipeline_depth = 1;
  p.num_threads = 2;
  GarciaModel pipelined(p);
  pipelined.Fit(Tiny());
  EXPECT_EQ(barriered.first_pretrain_loss(), pipelined.first_pretrain_loss());
  EXPECT_EQ(barriered.last_pretrain_loss(), pipelined.last_pretrain_loss());
  EXPECT_EQ(barriered.last_finetune_loss(), pipelined.last_finetune_loss());
}

TEST(PipelinedTrainingTest, LightGcnBitIdentical) {
  TrainConfig cfg = FastTrainConfig();
  cfg.sample_fanout = 8;
  const std::vector<float> ref = FitAndScore<LightGcn>(cfg);
  for (size_t threads : {0u, 2u}) {
    TrainConfig p = cfg;
    p.pipeline_depth = 1;
    p.num_threads = threads;
    ExpectBitIdentical(ref, FitAndScore<LightGcn>(p),
                       "lightgcn threads=" + std::to_string(threads));
  }
}

TEST(PipelinedTrainingTest, WideDeepBitIdentical) {
  TrainConfig cfg = FastTrainConfig();
  const std::vector<float> ref = FitAndScore<WideDeep>(cfg);
  for (size_t threads : {0u, 2u}) {
    TrainConfig p = cfg;
    p.pipeline_depth = 1;
    p.num_threads = threads;
    ExpectBitIdentical(ref, FitAndScore<WideDeep>(p),
                       "widedeep threads=" + std::to_string(threads));
  }
}

// SGL's auxiliary views draw rng_ during compute, so it must IGNORE the
// pipeline knob (forced barriered) — and therefore stay bit-identical to
// its depth-0 self rather than diverge.
TEST(PipelinedTrainingTest, SglIgnoresPipelineKnob) {
  TrainConfig cfg = FastTrainConfig();
  cfg.num_threads = 2;
  const std::vector<float> ref = FitAndScore<Sgl>(cfg);
  TrainConfig p = cfg;
  p.pipeline_depth = 1;
  ExpectBitIdentical(ref, FitAndScore<Sgl>(p), "sgl pipeline knob");
}

// The eager-capture requirement: snapshots written while the next step's
// lookahead is already advancing the rng streams and the batch iterator
// must carry the same bytes the barriered run writes.
TEST(PipelinedTrainingTest, CheckpointBytesMatchBarriered) {
  auto temp_dir = [](const std::string& name) {
    const std::string dir = "/tmp/garcia_pipeline_" + name;
    fs::remove_all(dir);
    return dir;
  };
  auto read_file = [](const fs::path& p) {
    std::ifstream f(p, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
  };

  TrainConfig cfg = FastTrainConfig();
  cfg.sample_fanout = 8;
  cfg.checkpoint_every_steps = 4;
  cfg.checkpoint_keep = 0;  // keep every generation

  TrainConfig barriered = cfg;
  barriered.checkpoint_dir = temp_dir("barriered");
  GarciaModel a(barriered);
  a.Fit(Tiny());

  TrainConfig pipelined = cfg;
  pipelined.pipeline_depth = 1;
  pipelined.num_threads = 2;
  pipelined.checkpoint_dir = temp_dir("pipelined");
  GarciaModel b(pipelined);
  b.Fit(Tiny());

  std::vector<fs::path> a_files, b_files;
  for (const auto& e : fs::directory_iterator(barriered.checkpoint_dir)) {
    a_files.push_back(e.path());
  }
  for (const auto& e : fs::directory_iterator(pipelined.checkpoint_dir)) {
    b_files.push_back(e.path());
  }
  std::sort(a_files.begin(), a_files.end());
  std::sort(b_files.begin(), b_files.end());
  ASSERT_FALSE(a_files.empty());
  ASSERT_EQ(a_files.size(), b_files.size());
  for (size_t i = 0; i < a_files.size(); ++i) {
    EXPECT_EQ(a_files[i].filename(), b_files[i].filename());
    EXPECT_EQ(read_file(a_files[i]), read_file(b_files[i]))
        << "checkpoint " << a_files[i].filename() << " diverged";
  }
  fs::remove_all(barriered.checkpoint_dir);
  fs::remove_all(pipelined.checkpoint_dir);
}

}  // namespace
}  // namespace garcia::models
