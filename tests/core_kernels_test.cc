// Bit-identity of the parallel kernel backend against the serial reference.
//
// Every EXPECT here is exact (EXPECT_EQ on floats, not near): the execution
// layer's contract is that an ExecutionContext with any thread count
// reproduces the serial backend bit for bit (see core/kernels.h). Shapes are
// randomized and sized past the kernels' shard floors so the parallel paths
// genuinely shard.

#include "core/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/matrix.h"
#include "core/rng.h"

namespace garcia::core {
namespace {

Matrix RandMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Normal());
  }
  return m;
}

std::vector<uint32_t> RandIndices(size_t n, size_t max_exclusive, Rng* rng) {
  std::vector<uint32_t> idx(n);
  for (auto& v : idx) {
    v = static_cast<uint32_t>(rng->UniformInt(max_exclusive));
  }
  return idx;
}

void ExpectBitIdentical(const Matrix& serial, const Matrix& parallel,
                        const char* what) {
  ASSERT_EQ(serial.rows(), parallel.rows()) << what;
  ASSERT_EQ(serial.cols(), parallel.cols()) << what;
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial.data()[i], parallel.data()[i])
        << what << " diverges at flat index " << i;
  }
}

class KernelsBitIdentityTest : public ::testing::Test {
 protected:
  // 3 and 4 workers: both an even and an uneven divisor of typical shapes.
  ExecutionContext par3_{3};
  ExecutionContext par4_{4};
  Rng rng_{1234};
};

TEST_F(KernelsBitIdentityTest, GemmRandomizedShapes) {
  for (int trial = 0; trial < 8; ++trial) {
    const size_t m = 1 + rng_.UniformInt(96);
    const size_t k = 1 + rng_.UniformInt(48);
    const size_t n = 1 + rng_.UniformInt(64);
    const bool ta = rng_.Bernoulli(0.5), tb = rng_.Bernoulli(0.5);
    Matrix a = RandMatrix(ta ? k : m, ta ? m : k, &rng_);
    Matrix b = RandMatrix(tb ? n : k, tb ? k : n, &rng_);
    Matrix c0 = RandMatrix(m, n, &rng_);
    Matrix c1 = c0;
    const float alpha = 1.7f, beta = trial % 2 ? 0.3f : 0.0f;
    kernels::Gemm(SerialExecution(), ta, tb, alpha, a, b, beta, &c0);
    kernels::Gemm(trial % 2 ? par3_ : par4_, ta, tb, alpha, a, b, beta, &c1);
    ExpectBitIdentical(c0, c1, "Gemm");
  }
}

TEST_F(KernelsBitIdentityTest, GemmLargeSquare) {
  Matrix a = RandMatrix(128, 128, &rng_);
  Matrix b = RandMatrix(128, 128, &rng_);
  Matrix c0(128, 128), c1(128, 128);
  kernels::Gemm(SerialExecution(), false, false, 1.0f, a, b, 0.0f, &c0);
  kernels::Gemm(par4_, false, false, 1.0f, a, b, 0.0f, &c1);
  ExpectBitIdentical(c0, c1, "Gemm 128^3");
}

TEST_F(KernelsBitIdentityTest, UnaryForwardAndBackward) {
  const kernels::UnaryOp ops[] = {
      kernels::UnaryOp::kRelu, kernels::UnaryOp::kTanh,
      kernels::UnaryOp::kLeakyRelu, kernels::UnaryOp::kSigmoid};
  // Large enough to clear kMinElemsPerShard on the parallel backend.
  const size_t n = 40000 + rng_.UniformInt(5000);
  Matrix x = RandMatrix(n, 1, &rng_);
  Matrix dy = RandMatrix(n, 1, &rng_);
  for (kernels::UnaryOp op : ops) {
    Matrix y0(n, 1), y1(n, 1);
    kernels::UnaryForward(SerialExecution(), op, 0.01f, x.data(), y0.data(),
                          n);
    kernels::UnaryForward(par4_, op, 0.01f, x.data(), y1.data(), n);
    ExpectBitIdentical(y0, y1, "UnaryForward");

    Matrix dx0 = RandMatrix(n, 1, &rng_);
    Matrix dx1 = dx0;
    kernels::UnaryBackwardAdd(SerialExecution(), op, 0.01f, x.data(),
                              y0.data(), dy.data(), dx0.data(), n);
    kernels::UnaryBackwardAdd(par3_, op, 0.01f, x.data(), y1.data(),
                              dy.data(), dx1.data(), n);
    ExpectBitIdentical(dx0, dx1, "UnaryBackwardAdd");
  }
}

TEST_F(KernelsBitIdentityTest, GatherAndGatherAdd) {
  for (int trial = 0; trial < 4; ++trial) {
    const size_t src_rows = 50 + rng_.UniformInt(200);
    const size_t cols = 1 + rng_.UniformInt(40);
    const size_t n = 500 + rng_.UniformInt(3000);
    Matrix src = RandMatrix(src_rows, cols, &rng_);
    std::vector<uint32_t> idx = RandIndices(n, src_rows, &rng_);

    Matrix out0(n, cols), out1(n, cols);
    kernels::GatherRows(SerialExecution(), src, idx, &out0);
    kernels::GatherRows(par4_, src, idx, &out1);
    ExpectBitIdentical(out0, out1, "GatherRows");

    Matrix acc0 = RandMatrix(n, cols, &rng_);
    Matrix acc1 = acc0;
    kernels::GatherAddRows(SerialExecution(), src, idx, &acc0);
    kernels::GatherAddRows(par3_, src, idx, &acc1);
    ExpectBitIdentical(acc0, acc1, "GatherAddRows");
  }
}

TEST_F(KernelsBitIdentityTest, ScatterAddRandomizedCollisions) {
  for (int trial = 0; trial < 4; ++trial) {
    // Few destinations + many sources forces heavy collisions, where a
    // naive parallel scatter would be both racy and order-divergent.
    const size_t dests = 3 + rng_.UniformInt(60);
    const size_t cols = 1 + rng_.UniformInt(24);
    const size_t n = 4096 + rng_.UniformInt(4096);
    Matrix src = RandMatrix(n, cols, &rng_);
    std::vector<uint32_t> idx = RandIndices(n, dests, &rng_);

    Matrix acc0 = RandMatrix(dests, cols, &rng_);
    Matrix acc1 = acc0;
    kernels::ScatterAddRows(SerialExecution(), src, idx, &acc0);
    kernels::ScatterAddRows(trial % 2 ? par3_ : par4_, src, idx, &acc1);
    ExpectBitIdentical(acc0, acc1, "ScatterAddRows");
  }
}

TEST_F(KernelsBitIdentityTest, SegmentSumWithEmptySegments) {
  const size_t segments = 300;  // some never referenced
  const size_t cols = 16;
  const size_t n = 8000;
  Matrix x = RandMatrix(n, cols, &rng_);
  std::vector<uint32_t> seg = RandIndices(n, segments / 2, &rng_);

  Matrix out0(segments, cols), out1(segments, cols);
  kernels::SegmentSum(SerialExecution(), x, seg, segments, &out0);
  kernels::SegmentSum(par4_, x, seg, segments, &out1);
  ExpectBitIdentical(out0, out1, "SegmentSum");
  // Untouched segments stay exactly zero.
  for (size_t s = segments / 2; s < segments; ++s) {
    for (size_t j = 0; j < cols; ++j) EXPECT_EQ(out0.at(s, j), 0.0f);
  }
}

TEST_F(KernelsBitIdentityTest, SegmentSoftmaxForwardBackward) {
  for (int trial = 0; trial < 4; ++trial) {
    const size_t segments = 100 + rng_.UniformInt(200);
    const size_t n = 4000 + rng_.UniformInt(4000);
    Matrix scores = RandMatrix(n, 1, &rng_);
    std::vector<uint32_t> seg = RandIndices(n, segments, &rng_);

    Matrix a0(n, 1), a1(n, 1);
    kernels::SegmentSoftmax(SerialExecution(), scores, seg, segments, &a0);
    kernels::SegmentSoftmax(par3_, scores, seg, segments, &a1);
    ExpectBitIdentical(a0, a1, "SegmentSoftmax");

    Matrix da = RandMatrix(n, 1, &rng_);
    Matrix g0 = RandMatrix(n, 1, &rng_);
    Matrix g1 = g0;
    kernels::SegmentSoftmaxBackwardAdd(SerialExecution(), a0, da, seg,
                                       segments, &g0);
    kernels::SegmentSoftmaxBackwardAdd(par4_, a1, da, seg, segments, &g1);
    ExpectBitIdentical(g0, g1, "SegmentSoftmaxBackwardAdd");
  }
}

TEST_F(KernelsBitIdentityTest, ScaleRowsAndRowDot) {
  const size_t n = 3000, cols = 24;
  Matrix a = RandMatrix(n, cols, &rng_);
  Matrix b = RandMatrix(n, cols, &rng_);
  Matrix w = RandMatrix(n, 1, &rng_);

  Matrix s0 = a, s1 = a;
  kernels::ScaleRowsInPlace(SerialExecution(), &s0, w);
  kernels::ScaleRowsInPlace(par4_, &s1, w);
  ExpectBitIdentical(s0, s1, "ScaleRowsInPlace");

  Matrix d0 = RandMatrix(n, 1, &rng_);
  Matrix d1 = d0;
  kernels::RowDotAdd(SerialExecution(), a, b, &d0);
  kernels::RowDotAdd(par3_, a, b, &d1);
  ExpectBitIdentical(d0, d1, "RowDotAdd");
}

TEST_F(KernelsBitIdentityTest, L2NormalizeForwardBackward) {
  const size_t n = 2000, cols = 32;
  Matrix x = RandMatrix(n, cols, &rng_);
  // Plant exact zero rows: they must normalize to zero with zero gradient.
  for (size_t j = 0; j < cols; ++j) x.at(7, j) = x.at(100, j) = 0.0f;
  const float eps = 1e-12f;

  Matrix y0(n, cols), y1(n, cols);
  std::vector<float> norms0, norms1;
  kernels::L2NormalizeRows(SerialExecution(), x, eps, &y0, &norms0);
  kernels::L2NormalizeRows(par4_, x, eps, &y1, &norms1);
  ExpectBitIdentical(y0, y1, "L2NormalizeRows");
  ASSERT_EQ(norms0.size(), norms1.size());
  for (size_t i = 0; i < norms0.size(); ++i) EXPECT_EQ(norms0[i], norms1[i]);

  Matrix dy = RandMatrix(n, cols, &rng_);
  Matrix dx0 = RandMatrix(n, cols, &rng_);
  Matrix dx1 = dx0;
  kernels::L2NormalizeRowsBackwardAdd(SerialExecution(), y0, dy, norms0, eps,
                                      &dx0);
  kernels::L2NormalizeRowsBackwardAdd(par3_, y1, dy, norms1, eps, &dx1);
  ExpectBitIdentical(dx0, dx1, "L2NormalizeRowsBackwardAdd");
}

TEST_F(KernelsBitIdentityTest, CrossEntropyForwardBackward) {
  for (int trial = 0; trial < 4; ++trial) {
    const size_t n = 200 + rng_.UniformInt(400);
    const size_t m = 2 + rng_.UniformInt(300);
    Matrix logits = RandMatrix(n, m, &rng_);
    std::vector<uint32_t> targets = RandIndices(n, m, &rng_);

    Matrix sm0 = logits, sm1 = logits;
    const double loss0 =
        kernels::CrossEntropyForward(SerialExecution(), &sm0, targets);
    const double loss1 = kernels::CrossEntropyForward(
        trial % 2 ? par3_ : par4_, &sm1, targets);
    EXPECT_EQ(loss0, loss1);
    ExpectBitIdentical(sm0, sm1, "CrossEntropyForward softmax");

    Matrix g0 = RandMatrix(n, m, &rng_);
    Matrix g1 = g0;
    kernels::CrossEntropyBackwardAdd(SerialExecution(), sm0, targets, 0.125f,
                                     &g0);
    kernels::CrossEntropyBackwardAdd(par4_, sm1, targets, 0.125f, &g1);
    ExpectBitIdentical(g0, g1, "CrossEntropyBackwardAdd");
  }
}

TEST_F(KernelsBitIdentityTest, TopKDotMatchesSerial) {
  // 5000 rows > the 1024-row block size, so the parallel path merges
  // several partial heaps; k sweeps the degenerate cases (0, 1, = n, > n).
  const size_t n = 5000, dim = 24;
  Matrix cands = RandMatrix(n, dim, &rng_);
  Matrix query = RandMatrix(1, dim, &rng_);
  for (size_t k : {size_t{0}, size_t{1}, size_t{10}, n, n + 7}) {
    const auto serial =
        kernels::TopKDot(SerialExecution(), query.row(0), dim, cands, k);
    ASSERT_EQ(serial.size(), std::min(k, n));
    const auto par =
        kernels::TopKDot(k % 2 ? par3_ : par4_, query.row(0), dim, cands, k);
    ASSERT_EQ(par.size(), serial.size()) << "k=" << k;
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(par[i].first, serial[i].first) << "k=" << k << " rank " << i;
      ASSERT_EQ(par[i].second, serial[i].second) << "k=" << k << " rank " << i;
    }
  }
}

TEST_F(KernelsBitIdentityTest, ScopedExecutionInstallsAndRestores) {
  EXPECT_FALSE(CurrentExecution().parallel());
  {
    ScopedExecution outer(&par4_);
    EXPECT_TRUE(CurrentExecution().parallel());
    EXPECT_EQ(CurrentExecution().num_threads(), 4u);
    {
      ScopedExecution inner(nullptr);  // nullptr keeps the current default
      EXPECT_TRUE(CurrentExecution().parallel());
    }
    {
      ScopedExecution inner(&par3_);
      EXPECT_EQ(CurrentExecution().num_threads(), 3u);
    }
    EXPECT_EQ(CurrentExecution().num_threads(), 4u);
  }
  EXPECT_FALSE(CurrentExecution().parallel());
}

TEST_F(KernelsBitIdentityTest, SerialContextNeverCreatesPool) {
  ExecutionContext serial0(0), serial1(1);
  EXPECT_FALSE(serial0.parallel());
  EXPECT_FALSE(serial1.parallel());
  EXPECT_EQ(serial0.num_threads(), 1u);
  EXPECT_EQ(serial1.num_threads(), 1u);
}

// ----------------------------------------------------------- sq8 kernels

TEST_F(KernelsBitIdentityTest, Sq8EncodeRowsMatchesSerialAndBoundsError) {
  for (int trial = 0; trial < 4; ++trial) {
    const size_t rows = 30 + rng_.UniformInt(600);
    const size_t dim = 1 + rng_.UniformInt(300);  // crosses kDimBlock at 257+
    Matrix src = RandMatrix(rows, dim, &rng_);
    std::fill(src.row(0), src.row(0) + dim, 0.0f);  // zero-row edge
    std::vector<int8_t> c0(rows * dim), c1(rows * dim);
    std::vector<float> s0(rows), s1(rows);
    kernels::sq8::EncodeRows(SerialExecution(), src, c0.data(), s0.data());
    kernels::sq8::EncodeRows(trial % 2 ? par3_ : par4_, src, c1.data(),
                             s1.data());
    ASSERT_EQ(c0, c1) << "codes diverge";
    ASSERT_EQ(s0, s1) << "scales diverge";
    EXPECT_EQ(s0[0], 0.0f);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t j = 0; j < dim; ++j) {
        const float v = src.at(r, j);
        const float dequant = s0[r] * static_cast<float>(c0[r * dim + j]);
        // s/2 plus a hair of float rounding from the dequant product.
        ASSERT_LE(std::fabs(v - dequant), s0[r] * 0.5f * 1.001f + 1e-6f)
            << "per-coordinate bound violated at (" << r << "," << j << ")";
        ASSERT_GE(c0[r * dim + j], -127);  // -128 slot unused
      }
    }
  }
}

TEST_F(KernelsBitIdentityTest, Sq8ScanDotsMatchesSerialOverRanges) {
  const size_t rows = 700, dim = 280;  // > kDimBlock: exercises blocking
  Matrix src = RandMatrix(rows, dim, &rng_);
  std::vector<int8_t> codes(rows * dim);
  std::vector<float> scales(rows);
  kernels::sq8::EncodeRows(SerialExecution(), src, codes.data(),
                           scales.data());
  Matrix q = RandMatrix(1, dim, &rng_);
  const auto qc = kernels::sq8::QuantizeQuery(q.row(0), dim);
  // Ranges with gaps, an empty range, and out-of-order starts.
  const std::vector<std::pair<uint32_t, uint32_t>> ranges = {
      {500, 700}, {40, 40}, {0, 260}, {300, 450}};
  const size_t total = 200 + 0 + 260 + 150;
  std::vector<float> out0(total), out1(total), out2(total);
  kernels::sq8::ScanDots(SerialExecution(), qc, codes.data(), scales.data(),
                         dim, ranges, out0.data());
  kernels::sq8::ScanDots(par3_, qc, codes.data(), scales.data(), dim, ranges,
                         out1.data());
  kernels::sq8::ScanDots(par4_, qc, codes.data(), scales.data(), dim, ranges,
                         out2.data());
  ASSERT_EQ(out0, out1);
  ASSERT_EQ(out0, out2);
  // Exact-value check against a scalar integer model of the contract:
  // int32 sums per 256-coordinate block, widened to double at boundaries,
  // scaled once. ScanDots may dispatch to a SIMD backend at runtime; its
  // lane sums are a reassociation of the same int32 terms, so the float
  // bits must match this model exactly on every machine.
  {
    size_t slot = 0;
    for (const auto& [lo, hi] : ranges) {
      for (uint32_t r = lo; r < hi; ++r, ++slot) {
        double total = 0.0;
        for (size_t j0 = 0; j0 < dim; j0 += 256) {
          int32_t acc = 0;
          for (size_t j = j0; j < std::min(dim, j0 + 256); ++j) {
            acc += static_cast<int32_t>(qc.codes[j]) * codes[r * dim + j];
          }
          total += static_cast<double>(acc);
        }
        ASSERT_EQ(out0[slot],
                  static_cast<float>(static_cast<double>(qc.scale) *
                                     static_cast<double>(scales[r]) * total))
            << "row " << r << " diverges from the scalar integer model";
      }
    }
  }
  // Every scanned score stays inside the advertised error band of the
  // exact double-accumulated dot — the invariant the IVF re-rank builds on.
  const double band_per_scale = qc.ErrorBandPerUnitScale(dim);
  size_t slot = 0;
  for (const auto& [lo, hi] : ranges) {
    for (uint32_t r = lo; r < hi; ++r, ++slot) {
      double exact = 0.0;
      for (size_t j = 0; j < dim; ++j) {
        exact += static_cast<double>(q.at(0, j)) * src.at(r, j);
      }
      ASSERT_LE(std::fabs(static_cast<double>(out0[slot]) -
                          static_cast<float>(exact)),
                static_cast<double>(scales[r]) * band_per_scale)
          << "row " << r << " breaches the error band";
    }
  }
}

TEST_F(KernelsBitIdentityTest, Sq8ZeroQueryAndZeroRowsScanToExactZero) {
  const size_t rows = 8, dim = 16;
  Matrix src(rows, dim);  // all-zero catalog
  std::vector<int8_t> codes(rows * dim);
  std::vector<float> scales(rows);
  kernels::sq8::EncodeRows(SerialExecution(), src, codes.data(),
                           scales.data());
  std::vector<float> zq(dim, 0.0f);
  const auto qc = kernels::sq8::QuantizeQuery(zq.data(), dim);
  EXPECT_EQ(qc.scale, 0.0f);
  EXPECT_EQ(qc.abs_code_sum, 0u);
  EXPECT_EQ(qc.ErrorBandPerUnitScale(dim), 0.0);
  std::vector<float> out(rows, -1.0f);
  kernels::sq8::ScanDots(SerialExecution(), qc, codes.data(), scales.data(),
                         dim, {{0, static_cast<uint32_t>(rows)}}, out.data());
  for (float v : out) EXPECT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace garcia::core
