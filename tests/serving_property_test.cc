// Parameterized property tests for the retrieval path, run as a CONTRACT
// SUITE against every retrieval backend: the brute-force scan
// (TopKInnerProduct) and the IVF index probed at full nprobe
// (serving/ivf_index.h) must both agree with an independent brute-force
// reference for arbitrary sizes, K values (k = 0, k > n) and score
// distributions, break exact ties by ascending id, and be bit-identical
// across execution contexts.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "core/rng.h"
#include "serving/ivf_index.h"
#include "serving/ranking_service.h"

namespace garcia::serving {
namespace {

/// The retrieval backends the contract suite runs against.
enum class Backend { kBruteForce, kIvfFullProbe };

const char* BackendName(Backend b) {
  return b == Backend::kBruteForce ? "BruteForce" : "IvfFullProbe";
}

/// Top-k through the chosen backend. The IVF backend builds an index over
/// the candidates (nlist from the catalog size) and probes EVERY list —
/// the configuration the oracle-equivalence contract covers.
RankedList BackendTopK(Backend b, const core::ExecutionContext& ctx,
                       const float* query, size_t dim,
                       const core::Matrix& cands, size_t k) {
  if (b == Backend::kBruteForce) {
    return TopKInnerProduct(ctx, query, dim, cands, k);
  }
  RetrievalConfig cfg;
  cfg.seed = 101;
  const IvfIndex index = IvfIndex::Build(cands, cfg, ctx);
  return index.Query(ctx, query, k, index.nlist());
}

struct RetrievalCase {
  size_t services, dim, k;
  uint64_t seed;
};

class RetrievalPropertyTest
    : public ::testing::TestWithParam<std::tuple<RetrievalCase, Backend>> {
 protected:
  RetrievalCase c() const { return std::get<0>(GetParam()); }
  Backend backend() const { return std::get<1>(GetParam()); }
};

TEST_P(RetrievalPropertyTest, MatchesBruteForce) {
  const RetrievalCase c = this->c();
  core::Rng rng(c.seed);
  core::Matrix cands = core::Matrix::Randn(c.services, c.dim, &rng);
  core::Matrix q = core::Matrix::Randn(1, c.dim, &rng);
  RankedList top = BackendTopK(backend(), core::SerialExecution(), q.row(0),
                               c.dim, cands, c.k);

  // Brute force with identical tie-breaking.
  RankedList all(c.services);
  for (size_t i = 0; i < c.services; ++i) {
    double dot = 0.0;
    for (size_t j = 0; j < c.dim; ++j) {
      dot += static_cast<double>(q.at(0, j)) * cands.at(i, j);
    }
    all[i] = {static_cast<uint32_t>(i), static_cast<float>(dot)};
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  const size_t expect_k = std::min(c.k, c.services);
  ASSERT_EQ(top.size(), expect_k);
  for (size_t i = 0; i < expect_k; ++i) {
    EXPECT_EQ(top[i].first, all[i].first) << "rank " << i;
    EXPECT_FLOAT_EQ(top[i].second, all[i].second);
  }
}

TEST_P(RetrievalPropertyTest, ScoresNonIncreasing) {
  const RetrievalCase c = this->c();
  core::Rng rng(c.seed + 1);
  core::Matrix cands = core::Matrix::Randn(c.services, c.dim, &rng);
  core::Matrix q = core::Matrix::Randn(1, c.dim, &rng);
  RankedList top = BackendTopK(backend(), core::SerialExecution(), q.row(0),
                               c.dim, cands, c.k);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
}

TEST_P(RetrievalPropertyTest, ResultsAreDistinctServices) {
  const RetrievalCase c = this->c();
  core::Rng rng(c.seed + 2);
  core::Matrix cands = core::Matrix::Randn(c.services, c.dim, &rng);
  core::Matrix q = core::Matrix::Randn(1, c.dim, &rng);
  RankedList top = BackendTopK(backend(), core::SerialExecution(), q.row(0),
                               c.dim, cands, c.k);
  std::set<uint32_t> seen;
  for (const auto& [svc, score] : top) {
    EXPECT_TRUE(seen.insert(svc).second);
    EXPECT_LT(svc, c.services);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RetrievalPropertyTest,
    ::testing::Combine(
        ::testing::Values(RetrievalCase{1, 4, 1, 1},
                          RetrievalCase{10, 8, 3, 2},
                          RetrievalCase{100, 16, 10, 3},
                          RetrievalCase{100, 16, 100, 4},
                          RetrievalCase{57, 3, 200, 5},  // k > n
                          RetrievalCase{100, 16, 0, 7},  // k = 0
                          RetrievalCase{1000, 32, 5, 6}),
        ::testing::Values(Backend::kBruteForce, Backend::kIvfFullProbe)),
    [](const auto& info) {
      const RetrievalCase& c = std::get<0>(info.param);
      return std::string(BackendName(std::get<1>(info.param))) + "s" +
             std::to_string(c.services) + "d" + std::to_string(c.dim) + "k" +
             std::to_string(c.k);
    });

/// Execution-context sweep, shared by both backends below.
class RetrievalParallelTest : public ::testing::TestWithParam<Backend> {};

// The partial-heap path sharded over an ExecutionContext must agree bit for
// bit with the serial scan for any thread count (core/kernels.h contract).
// 5000 rows exceed the kernel's block size, so the parallel path genuinely
// merges multiple partial heaps; the IVF backend additionally shards its
// k-means build and probe merge over the same contexts.
TEST_P(RetrievalParallelTest, ShardedContextBitIdenticalToSerial) {
  core::Rng rng(17);
  const size_t n = 5000, dim = 24;
  core::Matrix cands = core::Matrix::Randn(n, dim, &rng);
  core::Matrix q = core::Matrix::Randn(1, dim, &rng);
  core::ExecutionContext par3(3), par4(4);
  for (size_t k : {size_t{0}, size_t{1}, size_t{10}, size_t{1500}, n, n + 9}) {
    RankedList serial = BackendTopK(GetParam(), core::SerialExecution(),
                                    q.row(0), dim, cands, k);
    EXPECT_EQ(serial.size(), std::min(k, n));
    for (const core::ExecutionContext* ctx : {&par3, &par4}) {
      RankedList par = BackendTopK(GetParam(), *ctx, q.row(0), dim, cands, k);
      ASSERT_EQ(par.size(), serial.size()) << "k=" << k;
      for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(par[i].first, serial[i].first) << "k=" << k << " rank " << i;
        EXPECT_EQ(par[i].second, serial[i].second);  // exact, not near
      }
    }
  }
}

// Duplicate rows score identically; ties must break by ascending service id
// in both the serial and the sharded path (total order => unique answer).
TEST_P(RetrievalParallelTest, DuplicateRowTiesBreakByAscendingId) {
  core::Rng rng(18);
  const size_t dim = 8, copies = 400, distinct = 5;
  core::Matrix base = core::Matrix::Randn(distinct, dim, &rng);
  core::Matrix cands(copies * distinct, dim);
  for (size_t i = 0; i < copies * distinct; ++i) {
    cands.CopyRowFrom(base, i % distinct, i);
  }
  core::Matrix q = core::Matrix::Randn(1, dim, &rng);
  core::ExecutionContext par4(4);
  const size_t k = 3 * distinct;
  RankedList serial =
      BackendTopK(GetParam(), core::SerialExecution(), q.row(0), dim, cands, k);
  RankedList par = BackendTopK(GetParam(), par4, q.row(0), dim, cands, k);
  ASSERT_EQ(serial, par);
  for (size_t i = 1; i < serial.size(); ++i) {
    if (serial[i - 1].second == serial[i].second) {
      EXPECT_LT(serial[i - 1].first, serial[i].first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, RetrievalParallelTest,
                         ::testing::Values(Backend::kBruteForce,
                                           Backend::kIvfFullProbe),
                         [](const auto& info) {
                           return BackendName(info.param);
                         });

TEST(EmbeddingRankerPropertyTest, TopOneIsArgmax) {
  core::Rng rng(9);
  EmbeddingStore queries(core::Matrix::Randn(20, 8, &rng));
  EmbeddingStore services(core::Matrix::Randn(50, 8, &rng));
  EmbeddingRanker ranker(queries, services);
  for (uint32_t q = 0; q < 20; ++q) {
    auto top = ranker.Rank(q, 1);
    ASSERT_EQ(top.size(), 1u);
    // No service may score strictly higher than the reported best.
    for (uint32_t s = 0; s < 50; ++s) {
      double dot = 0.0;
      for (size_t j = 0; j < 8; ++j) {
        dot += static_cast<double>(queries.vector(q)[j]) *
               services.vector(s)[j];
      }
      EXPECT_LE(dot, top[0].second + 1e-4);
    }
  }
}

}  // namespace
}  // namespace garcia::serving
