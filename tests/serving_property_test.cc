// Parameterized property tests for the retrieval path: exact top-K must
// agree with a brute-force reference for arbitrary sizes, K values and
// score distributions.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/rng.h"
#include "serving/ranking_service.h"

namespace garcia::serving {
namespace {

struct RetrievalCase {
  size_t services, dim, k;
  uint64_t seed;
};

class RetrievalPropertyTest : public ::testing::TestWithParam<RetrievalCase> {
};

TEST_P(RetrievalPropertyTest, MatchesBruteForce) {
  const RetrievalCase c = GetParam();
  core::Rng rng(c.seed);
  core::Matrix cands = core::Matrix::Randn(c.services, c.dim, &rng);
  core::Matrix q = core::Matrix::Randn(1, c.dim, &rng);
  RankedList top = TopKInnerProduct(q.row(0), c.dim, cands, c.k);

  // Brute force with identical tie-breaking.
  RankedList all(c.services);
  for (size_t i = 0; i < c.services; ++i) {
    double dot = 0.0;
    for (size_t j = 0; j < c.dim; ++j) {
      dot += static_cast<double>(q.at(0, j)) * cands.at(i, j);
    }
    all[i] = {static_cast<uint32_t>(i), static_cast<float>(dot)};
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  const size_t expect_k = std::min(c.k, c.services);
  ASSERT_EQ(top.size(), expect_k);
  for (size_t i = 0; i < expect_k; ++i) {
    EXPECT_EQ(top[i].first, all[i].first) << "rank " << i;
    EXPECT_FLOAT_EQ(top[i].second, all[i].second);
  }
}

TEST_P(RetrievalPropertyTest, ScoresNonIncreasing) {
  const RetrievalCase c = GetParam();
  core::Rng rng(c.seed + 1);
  core::Matrix cands = core::Matrix::Randn(c.services, c.dim, &rng);
  core::Matrix q = core::Matrix::Randn(1, c.dim, &rng);
  RankedList top = TopKInnerProduct(q.row(0), c.dim, cands, c.k);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
}

TEST_P(RetrievalPropertyTest, ResultsAreDistinctServices) {
  const RetrievalCase c = GetParam();
  core::Rng rng(c.seed + 2);
  core::Matrix cands = core::Matrix::Randn(c.services, c.dim, &rng);
  core::Matrix q = core::Matrix::Randn(1, c.dim, &rng);
  RankedList top = TopKInnerProduct(q.row(0), c.dim, cands, c.k);
  std::set<uint32_t> seen;
  for (const auto& [svc, score] : top) {
    EXPECT_TRUE(seen.insert(svc).second);
    EXPECT_LT(svc, c.services);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RetrievalPropertyTest,
    ::testing::Values(RetrievalCase{1, 4, 1, 1}, RetrievalCase{10, 8, 3, 2},
                      RetrievalCase{100, 16, 10, 3},
                      RetrievalCase{100, 16, 100, 4},
                      RetrievalCase{57, 3, 200, 5},  // k > n
                      RetrievalCase{100, 16, 0, 7},  // k = 0
                      RetrievalCase{1000, 32, 5, 6}),
    [](const auto& info) {
      const RetrievalCase& c = info.param;
      return "s" + std::to_string(c.services) + "d" + std::to_string(c.dim) +
             "k" + std::to_string(c.k);
    });

// The partial-heap path sharded over an ExecutionContext must agree bit for
// bit with the serial scan for any thread count (core/kernels.h contract).
// 5000 rows exceed the kernel's block size, so the parallel path genuinely
// merges multiple partial heaps.
TEST(RetrievalParallelTest, ShardedContextBitIdenticalToSerial) {
  core::Rng rng(17);
  const size_t n = 5000, dim = 24;
  core::Matrix cands = core::Matrix::Randn(n, dim, &rng);
  core::Matrix q = core::Matrix::Randn(1, dim, &rng);
  core::ExecutionContext par3(3), par4(4);
  for (size_t k : {size_t{0}, size_t{1}, size_t{10}, size_t{1500}, n, n + 9}) {
    RankedList serial =
        TopKInnerProduct(core::SerialExecution(), q.row(0), dim, cands, k);
    EXPECT_EQ(serial.size(), std::min(k, n));
    for (const core::ExecutionContext* ctx : {&par3, &par4}) {
      RankedList par = TopKInnerProduct(*ctx, q.row(0), dim, cands, k);
      ASSERT_EQ(par.size(), serial.size()) << "k=" << k;
      for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(par[i].first, serial[i].first) << "k=" << k << " rank " << i;
        EXPECT_EQ(par[i].second, serial[i].second);  // exact, not near
      }
    }
  }
}

// Duplicate rows score identically; ties must break by ascending service id
// in both the serial and the sharded path (total order => unique answer).
TEST(RetrievalParallelTest, DuplicateRowTiesBreakByAscendingId) {
  core::Rng rng(18);
  const size_t dim = 8, copies = 400, distinct = 5;
  core::Matrix base = core::Matrix::Randn(distinct, dim, &rng);
  core::Matrix cands(copies * distinct, dim);
  for (size_t i = 0; i < copies * distinct; ++i) {
    cands.CopyRowFrom(base, i % distinct, i);
  }
  core::Matrix q = core::Matrix::Randn(1, dim, &rng);
  core::ExecutionContext par4(4);
  const size_t k = 3 * distinct;
  RankedList serial =
      TopKInnerProduct(core::SerialExecution(), q.row(0), dim, cands, k);
  RankedList par = TopKInnerProduct(par4, q.row(0), dim, cands, k);
  ASSERT_EQ(serial, par);
  for (size_t i = 1; i < serial.size(); ++i) {
    if (serial[i - 1].second == serial[i].second) {
      EXPECT_LT(serial[i - 1].first, serial[i].first);
    }
  }
}

TEST(EmbeddingRankerPropertyTest, TopOneIsArgmax) {
  core::Rng rng(9);
  EmbeddingStore queries(core::Matrix::Randn(20, 8, &rng));
  EmbeddingStore services(core::Matrix::Randn(50, 8, &rng));
  EmbeddingRanker ranker(queries, services);
  for (uint32_t q = 0; q < 20; ++q) {
    auto top = ranker.Rank(q, 1);
    ASSERT_EQ(top.size(), 1u);
    // No service may score strictly higher than the reported best.
    for (uint32_t s = 0; s < 50; ++s) {
      double dot = 0.0;
      for (size_t j = 0; j < 8; ++j) {
        dot += static_cast<double>(queries.vector(q)[j]) *
               services.vector(s)[j];
      }
      EXPECT_LE(dot, top[0].second + 1e-4);
    }
  }
}

}  // namespace
}  // namespace garcia::serving
