// Property-test harness for the IVF retrieval index (ISSUE 9): the index
// must be EXACTLY the brute-force oracle at full probe — byte-identical
// ranked lists for seed-swept adversarial catalogs (duplicate rows, zero
// vectors, near-tie scores), every K shape, and every thread count — with
// recall monotone in nprobe, a thread-count-invariant build (identical
// Save() bytes), hardened Save/Load, and bit-identical concurrent serving
// through the shared-index BatchRanker path.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "core/threadpool.h"
#include "serving/batch_ranker.h"
#include "serving/embedding_store.h"
#include "serving/ivf_index.h"
#include "serving/ranking_service.h"

namespace garcia::serving {
namespace {

using core::Matrix;

std::string TempPath(const char* name) {
  return std::string("/tmp/garcia_retrieval_") + name + ".ivf";
}

std::string ReadAllBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

/// Adversarial catalog for seed `seed`: a random Gaussian base, then
/// duplicate rows (exact score ties — must break by ascending id), zero
/// vectors (score exactly 0 against every query), and near-tie rows (a
/// 1-ulp-ish perturbation of an existing row, so float comparison order is
/// load-bearing). Sizes vary with the seed.
Matrix AdversarialCatalog(uint64_t seed) {
  core::Rng rng(seed * 1000003 + 5);
  const size_t dim = 4 + rng.UniformInt(13);          // 4 .. 16
  const size_t n = 40 + rng.UniformInt(260);          // 40 .. 299
  Matrix m = Matrix::Randn(n, dim, &rng);
  const size_t dups = 4 + rng.UniformInt(8);
  for (size_t d = 0; d < dups; ++d) {
    m.CopyRowFrom(m, rng.UniformInt(n), rng.UniformInt(n));
  }
  const size_t zeros = 2 + rng.UniformInt(4);
  for (size_t z = 0; z < zeros; ++z) {
    float* row = m.row(rng.UniformInt(n));
    std::fill(row, row + dim, 0.0f);
  }
  const size_t near = 3 + rng.UniformInt(5);
  for (size_t t = 0; t < near; ++t) {
    const size_t src = rng.UniformInt(n), dst = rng.UniformInt(n);
    m.CopyRowFrom(m, src, dst);
    m.at(dst, 0) += 1e-7f * (rng.Uniform() < 0.5 ? 1.0f : -1.0f);
  }
  return m;
}

/// Well-separated clustered catalog: `clusters` Gaussian centers scaled up,
/// tight noise around each. The geometry IVF is built for — used by the
/// recall floor and the recall/QPS bench.
Matrix ClusteredCatalog(uint64_t seed, size_t clusters, size_t per_cluster,
                        size_t dim) {
  core::Rng rng(seed);
  Matrix centers = Matrix::Randn(clusters, dim, &rng, 0.0f, 4.0f);
  Matrix m(clusters * per_cluster, dim);
  for (size_t c = 0; c < clusters; ++c) {
    for (size_t p = 0; p < per_cluster; ++p) {
      float* row = m.row(c * per_cluster + p);
      for (size_t j = 0; j < dim; ++j) {
        row[j] = centers.at(c, j) + static_cast<float>(rng.Normal()) * 0.25f;
      }
    }
  }
  return m;
}

double RecallAgainst(const RankedList& truth, const RankedList& got) {
  if (truth.empty()) return 1.0;
  std::set<uint32_t> truth_ids;
  for (const auto& [id, s] : truth) truth_ids.insert(id);
  size_t hit = 0;
  for (const auto& [id, s] : got) hit += truth_ids.count(id);
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

// ------------------------------------------------------ oracle equivalence

// The acceptance criterion: at nprobe == nlist the index is byte-identical
// to the brute-force scan — same ids, same float bits — for 24 seeds of
// adversarial catalogs, queries that include exact catalog rows and the
// all-zero vector, every K shape, and thread counts 1/2/4/8 on both sides.
TEST(IvfOracleTest, FullProbeBitIdenticalToBruteForceAcrossSeedsAndThreads) {
  core::ExecutionContext par2(2), par4(4), par8(8);
  const std::vector<const core::ExecutionContext*> ctxs = {
      &core::SerialExecution(), &par2, &par4, &par8};
  for (uint64_t seed = 0; seed < 24; ++seed) {
    const Matrix catalog = AdversarialCatalog(seed);
    const size_t n = catalog.rows(), dim = catalog.cols();
    RetrievalConfig cfg;
    cfg.nlist = 1 + seed % 17;  // sweep nlist shapes too
    cfg.seed = seed;
    const IvfIndex index = IvfIndex::Build(catalog, cfg);
    ASSERT_EQ(index.size(), n);

    core::Rng qrng(seed + 99);
    std::vector<std::vector<float>> queries;
    Matrix q = Matrix::Randn(2, dim, &qrng);
    queries.emplace_back(q.row(0), q.row(0) + dim);
    queries.emplace_back(q.row(1), q.row(1) + dim);
    queries.emplace_back(catalog.row(seed % n),
                         catalog.row(seed % n) + dim);  // exact catalog row
    queries.emplace_back(dim, 0.0f);  // all ties: pure id-order selection

    for (const auto& query : queries) {
      for (size_t k : {size_t{1}, size_t{10}, n / 2, n, n + 7}) {
        const RankedList truth = TopKInnerProduct(
            core::SerialExecution(), query.data(), dim, catalog, k);
        for (const core::ExecutionContext* ctx : ctxs) {
          const RankedList got =
              index.Query(*ctx, query.data(), k, index.nlist());
          ASSERT_EQ(got.size(), truth.size()) << "seed " << seed << " k " << k;
          for (size_t i = 0; i < truth.size(); ++i) {
            ASSERT_EQ(got[i].first, truth[i].first)
                << "seed " << seed << " k " << k << " rank " << i;
            ASSERT_EQ(got[i].second, truth[i].second)  // float ==, not near
                << "seed " << seed << " k " << k << " rank " << i;
          }
        }
      }
    }
  }
}

TEST(IvfOracleTest, KZeroReturnsEmptyInEveryMode) {
  const Matrix catalog = AdversarialCatalog(3);
  const IvfIndex index = IvfIndex::Build(catalog, RetrievalConfig{});
  std::vector<float> q(catalog.cols(), 1.0f);
  EXPECT_TRUE(index.Query(core::SerialExecution(), q.data(), 0, 1).empty());
  EXPECT_TRUE(
      index.Query(core::SerialExecution(), q.data(), 0, index.nlist()).empty());
  EXPECT_TRUE(index.Query(q.data(), 0).empty());
}

// Query must return min(k, size()) results even when the nprobe-best lists
// are underpopulated: nlist == n makes every list a singleton (or empty),
// so nprobe=1 holds one candidate and the probe prefix must extend.
TEST(IvfOracleTest, ReturnsMinKSizeEvenWithUnderpopulatedProbes) {
  core::Rng rng(7);
  const size_t n = 64, dim = 8;
  const Matrix catalog = Matrix::Randn(n, dim, &rng);
  RetrievalConfig cfg;
  cfg.nlist = n;
  const IvfIndex index = IvfIndex::Build(catalog, cfg);
  Matrix q = Matrix::Randn(1, dim, &rng);
  for (size_t nprobe : {size_t{1}, size_t{2}, size_t{7}}) {
    for (size_t k : {size_t{1}, size_t{5}, size_t{20}, n, n + 3}) {
      const RankedList got =
          index.Query(core::SerialExecution(), q.row(0), k, nprobe);
      EXPECT_EQ(got.size(), std::min(k, n)) << "nprobe " << nprobe;
    }
  }
  // And the extended prefix still ranks exactly: k >= n probes everything.
  const RankedList all = index.Query(core::SerialExecution(), q.row(0), n, 1);
  const RankedList truth =
      TopKInnerProduct(core::SerialExecution(), q.row(0), dim, catalog, n);
  EXPECT_EQ(all, truth);
}

// --------------------------------------------------------- recall behavior

// Per-query recall@10 must be non-decreasing in nprobe (probe prefixes are
// nested), and exactly 1 at nprobe == nlist.
TEST(IvfRecallTest, RecallMonotoneInNprobePerQuery) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    const Matrix catalog = ClusteredCatalog(seed, 16, 40, 12);
    RetrievalConfig cfg;
    cfg.nlist = 16;
    cfg.seed = seed;
    const IvfIndex index = IvfIndex::Build(catalog, cfg);
    core::Rng qrng(seed + 1);
    Matrix queries = Matrix::Randn(8, 12, &qrng, 0.0f, 4.0f);
    for (size_t qi = 0; qi < queries.rows(); ++qi) {
      const RankedList truth = TopKInnerProduct(
          core::SerialExecution(), queries.row(qi), 12, catalog, 10);
      double prev = -1.0;
      for (size_t nprobe = 1; nprobe <= index.nlist(); ++nprobe) {
        const RankedList got =
            index.Query(core::SerialExecution(), queries.row(qi), 10, nprobe);
        const double recall = RecallAgainst(truth, got);
        ASSERT_GE(recall, prev)
            << "seed " << seed << " query " << qi << " nprobe " << nprobe;
        prev = recall;
      }
      EXPECT_EQ(prev, 1.0) << "full probe must be exact";
    }
  }
}

// Acceptance criterion: recall@10 >= 0.95 at the default nprobe on
// clustered synthetic catalogs.
TEST(IvfRecallTest, DefaultNprobeRecallFloorOnClusteredData) {
  const Matrix catalog = ClusteredCatalog(42, 20, 100, 16);
  RetrievalConfig cfg;
  cfg.nlist = 20;  // default nprobe resolves to 5
  const IvfIndex index = IvfIndex::Build(catalog, cfg);
  EXPECT_EQ(index.default_nprobe(), 5u);
  // Queries live near catalog points (a trained query tower embeds queries
  // into the service space), not in isotropic noise.
  core::Rng qrng(43);
  const size_t kQueries = 64;
  Matrix queries(kQueries, 16);
  for (size_t qi = 0; qi < kQueries; ++qi) {
    const float* anchor = catalog.row(qrng.UniformInt(catalog.rows()));
    for (size_t j = 0; j < 16; ++j) {
      queries.at(qi, j) = anchor[j] + static_cast<float>(qrng.Normal()) * 0.3f;
    }
  }
  double total = 0.0;
  for (size_t qi = 0; qi < kQueries; ++qi) {
    const RankedList truth = TopKInnerProduct(core::SerialExecution(),
                                              queries.row(qi), 16, catalog, 10);
    const RankedList got = index.Query(queries.row(qi), 10);  // default nprobe
    total += RecallAgainst(truth, got);
  }
  EXPECT_GE(total / kQueries, 0.95);
}

// ------------------------------------------------------ build determinism

// Building under 1/2/4/8-thread execution contexts must produce the same
// index BYTE FOR BYTE — asserted on the serialized artifact, the strongest
// form (centroid float bits, list layout, permuted vectors, all of it).
TEST(IvfBuildTest, BuildIsThreadCountInvariantDownToSaveBytes) {
  const Matrix catalog = AdversarialCatalog(21);
  RetrievalConfig cfg;
  cfg.nlist = 9;
  core::ExecutionContext par2(2), par4(4), par8(8);
  const std::string ref_path = TempPath("build_serial");
  ASSERT_TRUE(
      IvfIndex::Build(catalog, cfg, core::SerialExecution()).Save(ref_path).ok());
  const std::string ref_bytes = ReadAllBytes(ref_path);
  ASSERT_FALSE(ref_bytes.empty());
  int label = 0;
  for (const core::ExecutionContext* ctx : {&par2, &par4, &par8}) {
    const std::string path =
        TempPath(("build_par" + std::to_string(label++)).c_str());
    ASSERT_TRUE(IvfIndex::Build(catalog, cfg, *ctx).Save(path).ok());
    EXPECT_EQ(ReadAllBytes(path), ref_bytes);
    std::remove(path.c_str());
  }
  std::remove(ref_path.c_str());
}

TEST(IvfBuildTest, StructureIsWellFormed) {
  const Matrix catalog = AdversarialCatalog(33);
  const size_t n = catalog.rows();
  RetrievalConfig cfg;
  cfg.nlist = 7;
  const IvfIndex index = IvfIndex::Build(catalog, cfg);
  ASSERT_EQ(index.nlist(), 7u);
  ASSERT_EQ(index.list_offsets().size(), 8u);
  EXPECT_EQ(index.list_offsets().front(), 0u);
  EXPECT_EQ(index.list_offsets().back(), n);
  std::vector<bool> seen(n, false);
  for (size_t l = 0; l < index.nlist(); ++l) {
    EXPECT_LE(index.list_offsets()[l], index.list_offsets()[l + 1]);
    for (uint32_t i = index.list_offsets()[l]; i < index.list_offsets()[l + 1];
         ++i) {
      const uint32_t id = index.ids()[i];
      ASSERT_LT(id, n);
      EXPECT_FALSE(seen[id]) << "id stored twice";
      seen[id] = true;
      if (i > index.list_offsets()[l]) {
        EXPECT_LT(index.ids()[i - 1], id) << "ids ascending within a list";
      }
    }
  }
}

TEST(IvfBuildTest, ResolveKnobDefaults) {
  EXPECT_EQ(IvfIndex::ResolveNlist(0, 100), 10u);   // round(sqrt(100))
  EXPECT_EQ(IvfIndex::ResolveNlist(0, 1), 1u);
  EXPECT_EQ(IvfIndex::ResolveNlist(50, 10), 10u);   // clamp to rows
  EXPECT_EQ(IvfIndex::ResolveNlist(3, 100), 3u);
  EXPECT_EQ(IvfIndex::ResolveNprobe(0, 20), 5u);    // nlist / 4
  EXPECT_EQ(IvfIndex::ResolveNprobe(0, 2), 1u);     // max(1, ...)
  EXPECT_EQ(IvfIndex::ResolveNprobe(99, 20), 20u);  // clamp to nlist
}

// --------------------------------------------------------- persistence

TEST(IvfPersistenceTest, SaveLoadRoundTripServesIdentically) {
  const Matrix catalog = AdversarialCatalog(55);
  RetrievalConfig cfg;
  cfg.nlist = 11;
  cfg.nprobe = 3;
  const IvfIndex index = IvfIndex::Build(catalog, cfg);
  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = IvfIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const IvfIndex& back = loaded.value();
  EXPECT_EQ(back.size(), index.size());
  EXPECT_EQ(back.nlist(), index.nlist());
  EXPECT_EQ(back.default_nprobe(), index.default_nprobe());
  EXPECT_EQ(back.seed(), index.seed());
  core::Rng qrng(56);
  Matrix q = Matrix::Randn(4, catalog.cols(), &qrng);
  for (size_t qi = 0; qi < 4; ++qi) {
    for (size_t nprobe : {size_t{1}, size_t{3}, index.nlist()}) {
      EXPECT_EQ(index.Query(core::SerialExecution(), q.row(qi), 10, nprobe),
                back.Query(core::SerialExecution(), q.row(qi), 10, nprobe));
    }
  }
  std::remove(path.c_str());
}

// Every byte position in the dump is covered by some CRC (or the header
// checks): flipping ANY single bit must make Load fail. Sampling stride
// keeps the test fast while still hitting all four sections.
TEST(IvfPersistenceTest, AnyFlippedBitRejected) {
  const Matrix catalog = AdversarialCatalog(66);
  RetrievalConfig cfg;
  cfg.nlist = 5;
  const IvfIndex index = IvfIndex::Build(catalog, cfg);
  const std::string path = TempPath("bitflip");
  ASSERT_TRUE(index.Save(path).ok());
  const std::string clean = ReadAllBytes(path);
  ASSERT_FALSE(clean.empty());
  for (size_t pos = 0; pos < clean.size(); pos += 97) {
    std::string corrupt = clean;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x04);
    {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      f.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    }
    auto r = IvfIndex::Load(path);
    EXPECT_FALSE(r.ok()) << "flip at byte " << pos << " was accepted";
  }
  std::remove(path.c_str());
}

TEST(IvfPersistenceTest, TruncationAndTrailingGarbageRejected) {
  const Matrix catalog = AdversarialCatalog(67);
  const IvfIndex index = IvfIndex::Build(catalog, RetrievalConfig{});
  const std::string path = TempPath("trunc");
  ASSERT_TRUE(index.Save(path).ok());
  const std::string clean = ReadAllBytes(path);
  for (size_t cut : {clean.size() - 1, clean.size() / 2, size_t{7}}) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(clean.data(), static_cast<std::streamsize>(cut));
    f.close();
    EXPECT_FALSE(IvfIndex::Load(path).ok()) << "cut at " << cut;
  }
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(clean.data(), static_cast<std::streamsize>(clean.size()));
    f.write("junk", 4);
  }
  auto r = IvfIndex::Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("trailing"), std::string::npos);
  std::remove(path.c_str());
}

TEST(IvfPersistenceTest, CorruptSectionIsNamedInTheError) {
  const Matrix catalog = AdversarialCatalog(68);
  const IvfIndex index = IvfIndex::Build(catalog, RetrievalConfig{});
  const std::string path = TempPath("named");
  ASSERT_TRUE(index.Save(path).ok());
  std::string bytes = ReadAllBytes(path);
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x40);
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto r = IvfIndex::Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("vectors"), std::string::npos)
      << "failing section not named: " << r.status().ToString();
  std::remove(path.c_str());
}

// ------------------------------------------- concurrent serving (satellite)

// One immutable IvfIndex shared by EmbeddingRanker through BatchRanker at
// 1/2/4/8 worker threads: every thread count must reproduce the serial
// pass bit for bit. Runs under TSan in scripts/check.sh — unsynchronized
// concurrent probes of the shared index are exactly what it would catch.
TEST(IvfConcurrencyTest, SharedIndexThroughBatchRankerBitIdenticalToSerial) {
  core::Rng rng(77);
  const size_t num_queries = 60, n = 500, dim = 16;
  Matrix query_emb = Matrix::Randn(num_queries, dim, &rng);
  Matrix service_emb = ClusteredCatalog(78, 10, 50, dim);
  RetrievalConfig cfg;
  cfg.mode = RetrievalMode::kIvf;
  cfg.nlist = 10;
  cfg.nprobe = 4;
  auto ranker = std::make_shared<EmbeddingRanker>(
      EmbeddingStore(query_emb), EmbeddingStore(service_emb), cfg);
  ASSERT_NE(ranker->index(), nullptr);
  ASSERT_EQ(ranker->index()->size(), n);

  std::vector<ServeRequest> requests;
  for (size_t i = 0; i < 400; ++i) {
    requests.push_back({static_cast<uint32_t>(i % num_queries), 10});
  }
  ServeConfig serial_cfg;
  serial_cfg.num_threads = 0;
  BatchRanker serial(ranker, serial_cfg);
  const std::vector<RankedList> ref = serial.RankBatch(requests);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ServeConfig par_cfg;
    par_cfg.num_threads = threads;
    BatchRanker batch(ranker, par_cfg);
    const std::vector<RankedList> got = batch.RankBatch(requests);
    ASSERT_EQ(got.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(got[i], ref[i]) << "threads " << threads << " request " << i;
    }
  }
}

// The same index probed concurrently through raw threads with per-thread
// ExecutionContexts — no facade, maximum overlap — must agree with serial.
TEST(IvfConcurrencyTest, RawConcurrentProbesMatchSerial) {
  const Matrix catalog = ClusteredCatalog(79, 12, 40, 12);
  RetrievalConfig cfg;
  cfg.nlist = 12;
  const IvfIndex index = IvfIndex::Build(catalog, cfg);
  core::Rng qrng(80);
  const size_t kQ = 96;
  Matrix queries = Matrix::Randn(kQ, 12, &qrng);
  std::vector<RankedList> ref(kQ);
  for (size_t i = 0; i < kQ; ++i) {
    ref[i] = index.Query(core::SerialExecution(), queries.row(i), 10, 3);
  }
  std::vector<RankedList> got(kQ);
  std::atomic<size_t> cursor{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      core::ExecutionContext ctx(2);
      for (;;) {
        const size_t i = cursor.fetch_add(1);
        if (i >= kQ) return;
        got[i] = index.Query(ctx, queries.row(i), 10, 3);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (size_t i = 0; i < kQ; ++i) {
    ASSERT_EQ(got[i], ref[i]) << "query " << i;
  }
}

// ------------------------------------------------- EmbeddingRanker wiring

TEST(EmbeddingRankerIvfTest, FullProbeModeMatchesBruteForceRanker) {
  core::Rng rng(90);
  const size_t dim = 8;
  Matrix query_emb = Matrix::Randn(12, dim, &rng);
  Matrix service_emb = Matrix::Randn(150, dim, &rng);
  EmbeddingRanker brute{EmbeddingStore(query_emb),
                        EmbeddingStore(service_emb)};
  RetrievalConfig cfg;
  cfg.mode = RetrievalMode::kIvf;
  cfg.nlist = 6;
  cfg.nprobe = 6;  // full probe: oracle-exact
  EmbeddingRanker ivf(EmbeddingStore(query_emb), EmbeddingStore(service_emb),
                      cfg);
  for (uint32_t q = 0; q < 12; ++q) {
    for (size_t k : {size_t{1}, size_t{10}, service_emb.rows()}) {
      EXPECT_EQ(ivf.Rank(q, k), brute.Rank(q, k)) << "query " << q;
    }
  }
  EXPECT_EQ(std::string(RetrievalModeName(ivf.retrieval().mode)), "ivf");
  EXPECT_EQ(std::string(RetrievalModeName(brute.retrieval().mode)),
            "brute-force");
}

// ------------------------------------------------------------- SQ8 lane
//
// The quantized index must not trade ANY correctness for its 4x storage
// saving: the band-guaranteed re-rank makes kIvfSq8 identical to the float
// index at every (nprobe, rerank_k >= k), hence byte-identical to brute
// force at full probe — over the same adversarial catalogs whose duplicate
// rows, zero vectors, and 1e-7 near-ties quantize onto IDENTICAL codes,
// the worst case for any approximate-then-rerank scheme.

RetrievalConfig Sq8Config(size_t nlist, uint64_t seed, size_t nprobe = 0,
                          size_t rerank_k = 0) {
  RetrievalConfig cfg;
  cfg.mode = RetrievalMode::kIvfSq8;
  cfg.nlist = nlist;
  cfg.nprobe = nprobe;
  cfg.rerank_k = rerank_k;
  cfg.seed = seed;
  return cfg;
}

// The acceptance criterion: full probe + rerank_k >= k is byte-identical
// to the brute-force scan for 24 adversarial seeds, every K shape, both
// rerank_k shapes, and thread counts 1/2/4/8.
TEST(Sq8OracleTest, FullProbeBitIdenticalToBruteForceAcrossSeedsAndThreads) {
  core::ExecutionContext par2(2), par4(4), par8(8);
  const std::vector<const core::ExecutionContext*> ctxs = {
      &core::SerialExecution(), &par2, &par4, &par8};
  for (uint64_t seed = 0; seed < 24; ++seed) {
    const Matrix catalog = AdversarialCatalog(seed);
    const size_t n = catalog.rows(), dim = catalog.cols();
    const IvfIndex index =
        IvfIndex::Build(catalog, Sq8Config(1 + seed % 17, seed));
    ASSERT_TRUE(index.quantized());
    ASSERT_TRUE(index.has_rerank_catalog());

    core::Rng qrng(seed + 99);
    std::vector<std::vector<float>> queries;
    Matrix q = Matrix::Randn(2, dim, &qrng);
    queries.emplace_back(q.row(0), q.row(0) + dim);
    queries.emplace_back(q.row(1), q.row(1) + dim);
    queries.emplace_back(catalog.row(seed % n),
                         catalog.row(seed % n) + dim);
    queries.emplace_back(dim, 0.0f);  // zero query: qscale 0, all ties

    for (const auto& query : queries) {
      for (size_t k : {size_t{1}, size_t{10}, n / 2, n, n + 7}) {
        const RankedList truth = TopKInnerProduct(
            core::SerialExecution(), query.data(), dim, catalog, k);
        for (size_t rerank_k : {k, size_t{0}}) {  // exactly-k and auto
          for (const core::ExecutionContext* ctx : ctxs) {
            const RankedList got =
                index.Query(*ctx, query.data(), k, index.nlist(), rerank_k);
            ASSERT_EQ(got.size(), truth.size())
                << "seed " << seed << " k " << k;
            for (size_t i = 0; i < truth.size(); ++i) {
              ASSERT_EQ(got[i].first, truth[i].first)
                  << "seed " << seed << " k " << k << " rerank " << rerank_k
                  << " rank " << i;
              ASSERT_EQ(got[i].second, truth[i].second)  // float ==, not near
                  << "seed " << seed << " k " << k << " rerank " << rerank_k
                  << " rank " << i;
            }
          }
        }
      }
    }
  }
}

// Stronger than the full-probe gate: the band extension returns the exact
// top-k of the PROBED candidate set, so SQ8 equals the float index bit for
// bit at EVERY nprobe and rerank_k — quantization moves bytes, never
// results.
TEST(Sq8OracleTest, MatchesFloatIndexAtEveryNprobeAndRerankK) {
  for (uint64_t seed : {3u, 7u, 15u}) {
    const Matrix catalog = AdversarialCatalog(seed);
    const size_t dim = catalog.cols(), nlist = 5 + seed % 7;
    RetrievalConfig fcfg;
    fcfg.nlist = nlist;
    fcfg.seed = seed;
    const IvfIndex fl = IvfIndex::Build(catalog, fcfg);
    const IvfIndex sq = IvfIndex::Build(catalog, Sq8Config(nlist, seed));
    core::Rng qrng(seed + 5);
    Matrix q = Matrix::Randn(3, dim, &qrng);
    for (size_t qi = 0; qi < 3; ++qi) {
      for (size_t nprobe = 1; nprobe <= fl.nlist(); ++nprobe) {
        for (size_t rerank_k : {size_t{0}, size_t{10}, size_t{31}}) {
          ASSERT_EQ(sq.Query(core::SerialExecution(), q.row(qi), 10, nprobe,
                             rerank_k),
                    fl.Query(core::SerialExecution(), q.row(qi), 10, nprobe))
              << "seed " << seed << " nprobe " << nprobe << " rerank "
              << rerank_k;
        }
      }
    }
  }
}

// Per-query recall@10 stays monotone in nprobe on the quantized path, and
// is INVARIANT in rerank_k (the band guarantee's strongest consequence —
// asserted as equality, which implies the satellite's monotonicity).
TEST(Sq8RecallTest, RecallMonotoneInNprobeAndInvariantInRerankK) {
  for (uint64_t seed : {11u, 14u}) {
    const Matrix catalog = ClusteredCatalog(seed, 16, 40, 12);
    const IvfIndex index = IvfIndex::Build(catalog, Sq8Config(16, seed));
    core::Rng qrng(seed + 1);
    Matrix queries = Matrix::Randn(6, 12, &qrng, 0.0f, 4.0f);
    for (size_t qi = 0; qi < queries.rows(); ++qi) {
      const RankedList truth = TopKInnerProduct(
          core::SerialExecution(), queries.row(qi), 12, catalog, 10);
      double prev = -1.0;
      for (size_t nprobe = 1; nprobe <= index.nlist(); ++nprobe) {
        const RankedList got = index.Query(core::SerialExecution(),
                                           queries.row(qi), 10, nprobe);
        const double recall = RecallAgainst(truth, got);
        ASSERT_GE(recall, prev) << "seed " << seed << " nprobe " << nprobe;
        prev = recall;
        for (size_t rerank_k : {size_t{10}, size_t{20}, size_t{40},
                                catalog.rows()}) {
          ASSERT_EQ(index.Query(core::SerialExecution(), queries.row(qi), 10,
                                nprobe, rerank_k),
                    got)
              << "rerank_k must not change results (band guarantee)";
        }
      }
      EXPECT_EQ(prev, 1.0) << "full probe must be exact";
    }
  }
}

TEST(Sq8BuildTest, BuildIsThreadCountInvariantDownToSaveBytes) {
  const Matrix catalog = AdversarialCatalog(21);
  const RetrievalConfig cfg = Sq8Config(9, 21);
  core::ExecutionContext par2(2), par4(4), par8(8);
  const std::string ref_path = TempPath("sq8_build_serial");
  ASSERT_TRUE(IvfIndex::Build(catalog, cfg, core::SerialExecution())
                  .Save(ref_path)
                  .ok());
  const std::string ref_bytes = ReadAllBytes(ref_path);
  ASSERT_FALSE(ref_bytes.empty());
  ASSERT_EQ(ref_bytes.substr(0, 4), "GIV2");
  int label = 0;
  for (const core::ExecutionContext* ctx : {&par2, &par4, &par8}) {
    const std::string path =
        TempPath(("sq8_build_par" + std::to_string(label++)).c_str());
    ASSERT_TRUE(IvfIndex::Build(catalog, cfg, *ctx).Save(path).ok());
    EXPECT_EQ(ReadAllBytes(path), ref_bytes);
    std::remove(path.c_str());
  }
  std::remove(ref_path.c_str());
}

TEST(Sq8BuildTest, ResolveRerankKDefaults) {
  EXPECT_EQ(IvfIndex::ResolveRerankK(0, 10), 40u);   // max(4k, 32)
  EXPECT_EQ(IvfIndex::ResolveRerankK(0, 1), 32u);
  EXPECT_EQ(IvfIndex::ResolveRerankK(5, 10), 10u);   // clamp up to k
  EXPECT_EQ(IvfIndex::ResolveRerankK(64, 10), 64u);
}

// The headline storage claim, asserted: SQ8 list storage is ~4x below the
// float rows (exactly 4d / (d + 4): one int8 code per coordinate plus one
// float scale per row), and the whole-index footprint shrinks accordingly.
TEST(Sq8MemoryTest, ListStorageIsRoughly4xSmaller) {
  const Matrix catalog = ClusteredCatalog(31, 8, 40, 64);
  RetrievalConfig fcfg;
  fcfg.nlist = 8;
  const IvfIndex fl = IvfIndex::Build(catalog, fcfg);
  const IvfIndex sq = IvfIndex::Build(catalog, Sq8Config(8, 31));
  const size_t n = catalog.rows(), dim = catalog.cols();
  EXPECT_EQ(fl.ListStorageBytes(), n * dim * sizeof(float));
  EXPECT_EQ(sq.ListStorageBytes(), n * dim + n * sizeof(float));
  const double ratio = static_cast<double>(fl.ListStorageBytes()) /
                       static_cast<double>(sq.ListStorageBytes());
  EXPECT_GE(ratio, 3.5) << "dim 64 should be ~3.76x";
  EXPECT_LT(sq.MemoryBytes(), fl.MemoryBytes());
  EXPECT_GT(sq.MemoryBytes(), sq.ListStorageBytes());  // shared parts counted
}

// ---------------------------------------------------- SQ8 persistence

TEST(Sq8PersistenceTest, RoundTripRequiresCatalogAttachAndServesIdentically) {
  const Matrix catalog = AdversarialCatalog(55);
  const IvfIndex index =
      IvfIndex::Build(catalog, Sq8Config(11, 55, /*nprobe=*/3,
                                         /*rerank_k=*/17));
  const std::string path = TempPath("sq8_roundtrip");
  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = IvfIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  IvfIndex& back = loaded.value();
  EXPECT_TRUE(back.quantized());
  EXPECT_FALSE(back.has_rerank_catalog());  // codes travel, catalog doesn't
  EXPECT_EQ(back.default_rerank_k(), 17u);
  EXPECT_EQ(back.default_nprobe(), index.default_nprobe());
  back.AttachRerankCatalog(catalog);
  core::Rng qrng(56);
  Matrix q = Matrix::Randn(4, catalog.cols(), &qrng);
  for (size_t qi = 0; qi < 4; ++qi) {
    for (size_t nprobe : {size_t{1}, size_t{3}, index.nlist()}) {
      EXPECT_EQ(index.Query(core::SerialExecution(), q.row(qi), 10, nprobe),
                back.Query(core::SerialExecution(), q.row(qi), 10, nprobe));
    }
  }
  std::remove(path.c_str());
}

// A float GIV1 dump written before this change must keep loading — and
// load as a float index, no re-rank catalog required.
TEST(Sq8PersistenceTest, Giv1FloatDumpStillLoadsAsFloatIndex) {
  const Matrix catalog = AdversarialCatalog(57);
  RetrievalConfig fcfg;
  fcfg.nlist = 6;
  const IvfIndex fl = IvfIndex::Build(catalog, fcfg);
  const std::string path = TempPath("giv1_back");
  ASSERT_TRUE(fl.Save(path).ok());
  ASSERT_EQ(ReadAllBytes(path).substr(0, 4), "GIV1");
  auto loaded = IvfIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.value().quantized());
  core::Rng qrng(58);
  Matrix q = Matrix::Randn(2, catalog.cols(), &qrng);
  for (size_t qi = 0; qi < 2; ++qi) {
    EXPECT_EQ(loaded.value().Query(core::SerialExecution(), q.row(qi), 10,
                                   fl.nlist()),
              fl.Query(core::SerialExecution(), q.row(qi), 10, fl.nlist()));
  }
  std::remove(path.c_str());
}

// Bit-flip matrix over the GIV2 container: every sampled position — the
// header, meta, centroids, lists, and the new codes and scales sections —
// must be rejected at load.
TEST(Sq8PersistenceTest, AnyFlippedBitRejected) {
  const Matrix catalog = AdversarialCatalog(66);
  const IvfIndex index = IvfIndex::Build(catalog, Sq8Config(5, 66));
  const std::string path = TempPath("sq8_bitflip");
  ASSERT_TRUE(index.Save(path).ok());
  const std::string clean = ReadAllBytes(path);
  ASSERT_FALSE(clean.empty());
  for (size_t pos = 0; pos < clean.size(); pos += 97) {
    std::string corrupt = clean;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x04);
    {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      f.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    }
    auto r = IvfIndex::Load(path);
    EXPECT_FALSE(r.ok()) << "flip at byte " << pos << " was accepted";
  }
  std::remove(path.c_str());
}

// The codes and scales sections are named when their CRC trips, so the
// on-call log localizes which payload rotted.
TEST(Sq8PersistenceTest, CorruptCodesAndScalesSectionsAreNamed) {
  const Matrix catalog = AdversarialCatalog(68);
  const size_t n = catalog.rows(), dim = catalog.cols();
  const IvfIndex index = IvfIndex::Build(catalog, Sq8Config(5, 68));
  const std::string path = TempPath("sq8_named");
  ASSERT_TRUE(index.Save(path).ok());
  const std::string clean = ReadAllBytes(path);
  // Container layout: 12-byte header, then per-section 16-byte section
  // header + payload (meta 48, centroids nlist*dim*4, lists (nlist+1+n)*4,
  // codes n*dim, scales n*4).
  const size_t codes_payload = 12 + (16 + 48) +
                               (16 + index.nlist() * dim * sizeof(float)) +
                               (16 + (index.nlist() + 1 + n) * 4) + 16;
  const size_t scales_payload = codes_payload + n * dim + 16;
  ASSERT_EQ(scales_payload + n * sizeof(float), clean.size());
  const struct {
    size_t pos;
    const char* want;
  } cases[] = {{codes_payload + n * dim / 2, "codes"},
               {scales_payload + 1, "scales"}};
  for (const auto& c : cases) {
    std::string corrupt = clean;
    corrupt[c.pos] = static_cast<char>(corrupt[c.pos] ^ 0x10);
    {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      f.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    }
    auto r = IvfIndex::Load(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("checksum"), std::string::npos)
        << r.status().ToString();
    EXPECT_NE(r.status().message().find(c.want), std::string::npos)
        << "failing section not named: " << r.status().ToString();
  }
  std::remove(path.c_str());
}

// --------------------------------------------- SQ8 concurrent serving

// The SQ8 EmbeddingRanker through BatchRanker at 1/2/4/8 workers must
// reproduce the serial pass bit for bit — the quantized scan, the band
// cutoff, and the re-rank all shard, and none of it may depend on thread
// count. Runs under TSan in scripts/check.sh.
TEST(Sq8ConcurrencyTest, SharedIndexThroughBatchRankerBitIdenticalToSerial) {
  core::Rng rng(77);
  const size_t num_queries = 60, dim = 16;
  Matrix query_emb = Matrix::Randn(num_queries, dim, &rng);
  Matrix service_emb = ClusteredCatalog(78, 10, 50, dim);
  RetrievalConfig cfg = Sq8Config(10, 13, /*nprobe=*/4);
  auto ranker = std::make_shared<EmbeddingRanker>(
      EmbeddingStore(query_emb), EmbeddingStore(service_emb), cfg);
  ASSERT_NE(ranker->index(), nullptr);
  ASSERT_TRUE(ranker->index()->quantized());

  std::vector<ServeRequest> requests;
  for (size_t i = 0; i < 400; ++i) {
    requests.push_back({static_cast<uint32_t>(i % num_queries), 10});
  }
  ServeConfig serial_cfg;
  serial_cfg.num_threads = 0;
  BatchRanker serial(ranker, serial_cfg);
  const std::vector<RankedList> ref = serial.RankBatch(requests);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ServeConfig par_cfg;
    par_cfg.num_threads = threads;
    BatchRanker batch(ranker, par_cfg);
    const std::vector<RankedList> got = batch.RankBatch(requests);
    ASSERT_EQ(got.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(got[i], ref[i]) << "threads " << threads << " request " << i;
    }
  }
}

TEST(EmbeddingRankerIvfTest, Sq8FullProbeModeMatchesBruteForceRanker) {
  core::Rng rng(91);
  const size_t dim = 8;
  Matrix query_emb = Matrix::Randn(12, dim, &rng);
  Matrix service_emb = Matrix::Randn(150, dim, &rng);
  EmbeddingRanker brute{EmbeddingStore(query_emb),
                        EmbeddingStore(service_emb)};
  EmbeddingRanker sq8(EmbeddingStore(query_emb), EmbeddingStore(service_emb),
                      Sq8Config(6, 13, /*nprobe=*/6, /*rerank_k=*/10));
  for (uint32_t q = 0; q < 12; ++q) {
    for (size_t k : {size_t{1}, size_t{10}, service_emb.rows()}) {
      EXPECT_EQ(sq8.Rank(q, k), brute.Rank(q, k)) << "query " << q;
    }
  }
  EXPECT_EQ(std::string(RetrievalModeName(sq8.retrieval().mode)), "ivf-sq8");
}

}  // namespace
}  // namespace garcia::serving
