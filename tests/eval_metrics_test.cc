#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace garcia::eval {
namespace {

TEST(AucTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(Auc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
}

TEST(AucTest, InvertedRanking) {
  EXPECT_DOUBLE_EQ(Auc({1, 1, 0, 0}, {0.1, 0.2, 0.8, 0.9}), 0.0);
}

TEST(AucTest, RandomScoresNearHalf) {
  core::Rng rng(1);
  std::vector<float> labels(20000), scores(20000);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = rng.Bernoulli(0.3) ? 1.0f : 0.0f;
    scores[i] = static_cast<float>(rng.Uniform());
  }
  EXPECT_NEAR(Auc(labels, scores), 0.5, 0.02);
}

TEST(AucTest, AllTiedScoresIsHalf) {
  EXPECT_DOUBLE_EQ(Auc({1, 0, 1, 0}, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(AucTest, PartialTies) {
  // pos at 0.5 (tied with one neg) and one pos above.
  // pairs: (p1,n1)=tie 0.5, (p1,n2)=1, (p2,n1)=1, (p2,n2)=1 -> 3.5/4.
  EXPECT_NEAR(Auc({1, 1, 0, 0}, {0.5, 0.9, 0.5, 0.1}), 0.875, 1e-9);
}

TEST(AucTest, DegenerateSingleClass) {
  EXPECT_DOUBLE_EQ(Auc({1, 1}, {0.1, 0.9}), 0.5);
  EXPECT_DOUBLE_EQ(Auc({0, 0}, {0.1, 0.9}), 0.5);
  EXPECT_DOUBLE_EQ(Auc({}, {}), 0.5);
}

TEST(AucTest, InvariantToMonotoneTransform) {
  std::vector<float> labels = {0, 1, 0, 1, 1, 0};
  std::vector<float> scores = {0.2f, 0.7f, 0.4f, 0.9f, 0.5f, 0.3f};
  std::vector<float> shifted;
  for (float s : scores) shifted.push_back(10.0f * s - 3.0f);
  EXPECT_DOUBLE_EQ(Auc(labels, scores), Auc(labels, shifted));
}

TEST(GroupAucTest, SkipsSingleClassGroups) {
  // Group 0: perfect; group 1: all positives (skipped).
  std::vector<float> labels = {1, 0, 1, 1};
  std::vector<float> scores = {0.9f, 0.1f, 0.5f, 0.6f};
  std::vector<uint32_t> groups = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(GroupAuc(labels, scores, groups), 1.0);
}

TEST(GroupAucTest, WeightsByGroupSize) {
  // Group 0 (2 examples): AUC 1. Group 1 (4 examples): AUC 0.
  std::vector<float> labels = {1, 0, 1, 1, 0, 0};
  std::vector<float> scores = {0.9f, 0.1f, 0.1f, 0.2f, 0.8f, 0.9f};
  std::vector<uint32_t> groups = {0, 0, 1, 1, 1, 1};
  EXPECT_NEAR(GroupAuc(labels, scores, groups), (2.0 * 1.0 + 4.0 * 0.0) / 6.0,
              1e-9);
}

TEST(GroupAucTest, AllGroupsDegenerateIsHalf) {
  EXPECT_DOUBLE_EQ(GroupAuc({1, 1}, {0.5f, 0.6f}, {0, 1}), 0.5);
}

TEST(GroupAucTest, CanDifferFromGlobalAuc) {
  // Per-group ranking perfect, but group score offsets wreck global AUC.
  std::vector<float> labels = {1, 0, 1, 0};
  std::vector<float> scores = {0.3f, 0.2f, 0.95f, 0.9f};
  std::vector<uint32_t> groups = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(GroupAuc(labels, scores, groups), 1.0);
  EXPECT_LT(Auc(labels, scores), 1.0);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  std::vector<float> labels = {1, 0, 0, 1};
  std::vector<float> scores = {0.9f, 0.2f, 0.1f, 0.8f};
  std::vector<uint32_t> groups = {0, 0, 0, 0};
  EXPECT_NEAR(NdcgAtK(labels, scores, groups, 10), 1.0, 1e-9);
}

TEST(NdcgTest, WorstRankingKnownValue) {
  // One positive ranked last among 3: DCG = 1/log2(4) = 0.5, IDCG = 1.
  std::vector<float> labels = {0, 0, 1};
  std::vector<float> scores = {0.9f, 0.8f, 0.1f};
  std::vector<uint32_t> groups = {0, 0, 0};
  EXPECT_NEAR(NdcgAtK(labels, scores, groups, 10), 0.5, 1e-9);
}

TEST(NdcgTest, CutoffKExcludesDeepPositives) {
  // Positive at rank 3 with K=2 -> DCG@2 = 0.
  std::vector<float> labels = {0, 0, 1};
  std::vector<float> scores = {0.9f, 0.8f, 0.1f};
  std::vector<uint32_t> groups = {0, 0, 0};
  EXPECT_DOUBLE_EQ(NdcgAtK(labels, scores, groups, 2), 0.0);
}

TEST(NdcgTest, AveragesOverGroupsWithPositives) {
  // Group 0 perfect (1.0), group 1 has no positive (skipped),
  // group 2 worst-of-two (1/log2(3) ~ 0.6309).
  std::vector<float> labels = {1, 0, 0, 0, 0, 1};
  std::vector<float> scores = {0.9f, 0.1f, 0.5f, 0.4f, 0.9f, 0.2f};
  std::vector<uint32_t> groups = {0, 0, 1, 1, 2, 2};
  const double g2 = 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK(labels, scores, groups, 10), (1.0 + g2) / 2.0, 1e-9);
}

TEST(RankingMetricsTest, EmptyInput) {
  RankingMetrics m = ComputeRankingMetrics({}, {}, {});
  EXPECT_EQ(m.num_examples, 0u);
  EXPECT_DOUBLE_EQ(m.auc, 0.5);
}

TEST(SlicedMetricsTest, SlicesByHeadFlag) {
  // Queries 0 (head) and 1 (tail). Head ranked perfectly, tail inverted.
  std::vector<float> labels = {1, 0, 1, 0};
  std::vector<float> scores = {0.9f, 0.1f, 0.1f, 0.9f};
  std::vector<uint32_t> qids = {0, 0, 1, 1};
  std::vector<bool> is_head = {true, false};
  SlicedMetrics m = ComputeSlicedMetrics(labels, scores, qids, is_head);
  EXPECT_DOUBLE_EQ(m.head.auc, 1.0);
  EXPECT_DOUBLE_EQ(m.tail.auc, 0.0);
  EXPECT_EQ(m.head.num_examples, 2u);
  EXPECT_EQ(m.tail.num_examples, 2u);
  EXPECT_EQ(m.overall.num_examples, 4u);
  EXPECT_DOUBLE_EQ(m.overall.auc, 0.5);
}

TEST(SlicedMetricsTest, OverallCombinesBoth) {
  std::vector<float> labels = {1, 0};
  std::vector<float> scores = {0.9f, 0.1f};
  std::vector<uint32_t> qids = {0, 1};
  std::vector<bool> is_head = {true, false};
  SlicedMetrics m = ComputeSlicedMetrics(labels, scores, qids, is_head);
  EXPECT_DOUBLE_EQ(m.overall.auc, 1.0);
}

}  // namespace
}  // namespace garcia::eval
