#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/ops.h"

namespace garcia::nn {
namespace {

using core::Matrix;
using core::Rng;

// loss(w) = sum((w - target)^2); unique minimum at w == target.
Tensor QuadraticLoss(const Tensor& w, const Matrix& target) {
  Tensor diff = Sub(w, Tensor::Constant(target));
  return SumAll(Mul(diff, diff));
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Rng rng(1);
  Tensor w = Tensor::Leaf(Matrix::Randn(3, 3, &rng), true);
  Matrix target = Matrix::Randn(3, 3, &rng);
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    QuadraticLoss(w, target).Backward();
    opt.Step();
  }
  Matrix diff = w.value();
  diff.Sub(target);
  EXPECT_LT(diff.FrobeniusNorm(), 1e-3);
}

TEST(SgdTest, MomentumAcceleratesOnIllConditioned) {
  // f(w) = 100 w0^2 + w1^2: plain SGD with a safe lr crawls along w1.
  auto run = [](float momentum) {
    Tensor w = Tensor::Leaf(Matrix({{1.0, 1.0}}), true);
    Tensor scale = Tensor::Constant(Matrix({{100.0, 1.0}}));
    Sgd opt({w}, 0.004f, momentum);
    for (int i = 0; i < 100; ++i) {
      opt.ZeroGrad();
      SumAll(Mul(Mul(w, w), scale)).Backward();
      opt.Step();
    }
    return std::fabs(w.value().at(0, 1));
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Rng rng(2);
  Tensor w = Tensor::Leaf(Matrix::Randn(4, 2, &rng), true);
  Matrix target = Matrix::Randn(4, 2, &rng);
  Adam opt({w}, 0.05f);
  for (int i = 0; i < 500; ++i) {
    opt.ZeroGrad();
    QuadraticLoss(w, target).Backward();
    opt.Step();
  }
  Matrix diff = w.value();
  diff.Sub(target);
  EXPECT_LT(diff.FrobeniusNorm(), 1e-2);
}

TEST(AdamTest, WeightDecayShrinksUnusedParams) {
  // A parameter receiving (zero-accumulated) gradients decays toward 0 when
  // weight_decay > 0.
  Tensor w = Tensor::Leaf(Matrix(2, 2, 1.0f), true);
  Adam opt({w}, 0.05f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    // Touch the grad so Step() applies (gradient contribution is zero).
    Scale(SumAll(w), 0.0f).Backward();
    opt.Step();
  }
  EXPECT_LT(w.value().AbsMax(), 0.2f);
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  Tensor used = Tensor::Leaf(Matrix({{1.0}}), true);
  Tensor unused = Tensor::Leaf(Matrix({{7.0}}), true);
  Adam opt({used, unused}, 0.1f);
  opt.ZeroGrad();
  SumAll(Mul(used, used)).Backward();
  opt.Step();
  EXPECT_FLOAT_EQ(unused.value().at(0, 0), 7.0f);
  EXPECT_NE(used.value().at(0, 0), 1.0f);
}

TEST(AdamTest, ZeroGradClearsAccumulation) {
  Tensor w = Tensor::Leaf(Matrix({{1.0}}), true);
  Adam opt({w}, 0.1f);
  SumAll(w).Backward();
  EXPECT_FLOAT_EQ(w.grad().at(0, 0), 1.0f);
  opt.ZeroGrad();
  EXPECT_FLOAT_EQ(w.grad().at(0, 0), 0.0f);
}

TEST(ClipGradNormTest, RescalesLargeGradients) {
  Tensor w = Tensor::Leaf(Matrix({{3.0, 4.0}}), true);
  SumAll(Mul(w, Tensor::Constant(Matrix({{3.0, 4.0}})))).Backward();
  // grad = (3, 4), norm 5.
  const double norm = ClipGradNorm({w}, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-5);
  EXPECT_NEAR(w.grad().at(0, 0), 0.6, 1e-5);
  EXPECT_NEAR(w.grad().at(0, 1), 0.8, 1e-5);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Tensor w = Tensor::Leaf(Matrix({{1.0}}), true);
  SumAll(Scale(w, 0.1f)).Backward();
  ClipGradNorm({w}, 10.0);
  EXPECT_NEAR(w.grad().at(0, 0), 0.1, 1e-6);
}

TEST(OptimizerIntegrationTest, LogisticRegressionLearns) {
  // Linearly separable data; Adam + BCE drives the training loss near 0.
  Rng rng(3);
  const size_t n = 200, d = 5;
  Matrix x = Matrix::Randn(n, d, &rng);
  Matrix true_w = Matrix::Randn(d, 1, &rng);
  Matrix y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) s += x.at(i, j) * true_w.at(j, 0);
    y.at(i, 0) = s > 0 ? 1.0f : 0.0f;
  }
  Linear model(d, 1, &rng);
  Adam opt(model.Parameters(), 0.05f);
  Tensor xt = Tensor::Constant(x);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 300; ++step) {
    opt.ZeroGrad();
    Tensor loss = BceWithLogits(model.Forward(xt), y);
    if (step == 0) first = loss.scalar();
    last = loss.scalar();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, first * 0.2f);
  EXPECT_LT(last, 0.2f);
}

}  // namespace
}  // namespace garcia::nn
