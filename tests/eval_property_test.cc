// Parameterized property tests for the ranking metrics: invariances and
// bounds that must hold for arbitrary label/score configurations.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.h"
#include "eval/metrics.h"

namespace garcia::eval {
namespace {

struct EvalCase {
  size_t n;
  double pos_rate;
  uint64_t seed;
};

class MetricPropertyTest : public ::testing::TestWithParam<EvalCase> {
 protected:
  void SetUp() override {
    const EvalCase c = GetParam();
    core::Rng rng(c.seed);
    labels_.resize(c.n);
    scores_.resize(c.n);
    groups_.resize(c.n);
    for (size_t i = 0; i < c.n; ++i) {
      labels_[i] = rng.Bernoulli(c.pos_rate) ? 1.0f : 0.0f;
      scores_[i] = static_cast<float>(rng.Uniform());
      groups_[i] = static_cast<uint32_t>(rng.UniformInt(uint64_t{8}));
    }
  }
  std::vector<float> labels_, scores_;
  std::vector<uint32_t> groups_;
};

TEST_P(MetricPropertyTest, AllMetricsBounded) {
  RankingMetrics m = ComputeRankingMetrics(labels_, scores_, groups_);
  EXPECT_GE(m.auc, 0.0);
  EXPECT_LE(m.auc, 1.0);
  EXPECT_GE(m.gauc, 0.0);
  EXPECT_LE(m.gauc, 1.0);
  EXPECT_GE(m.ndcg_at_10, 0.0);
  EXPECT_LE(m.ndcg_at_10, 1.0);
}

TEST_P(MetricPropertyTest, AucComplementUnderScoreNegation) {
  size_t pos = 0;
  for (float l : labels_) pos += l > 0.5f;
  if (pos == 0 || pos == labels_.size()) GTEST_SKIP();
  std::vector<float> negated;
  for (float s : scores_) negated.push_back(-s);
  EXPECT_NEAR(Auc(labels_, scores_) + Auc(labels_, negated), 1.0, 1e-9);
}

TEST_P(MetricPropertyTest, OracleScoresMaximizeEverything) {
  // Scoring by the label itself is a perfect ranker.
  size_t pos = 0;
  for (float l : labels_) pos += l > 0.5f;
  if (pos == 0 || pos == labels_.size()) GTEST_SKIP();
  EXPECT_DOUBLE_EQ(Auc(labels_, labels_), 1.0);
  EXPECT_NEAR(NdcgAtK(labels_, labels_, groups_, 10), 1.0, 1e-9);
}

TEST_P(MetricPropertyTest, PermutationInvariance) {
  // Metrics must not depend on example order.
  std::vector<size_t> perm(labels_.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  core::Rng rng(GetParam().seed + 9);
  rng.Shuffle(&perm);
  std::vector<float> l2, s2;
  std::vector<uint32_t> g2;
  for (size_t i : perm) {
    l2.push_back(labels_[i]);
    s2.push_back(scores_[i]);
    g2.push_back(groups_[i]);
  }
  EXPECT_NEAR(Auc(labels_, scores_), Auc(l2, s2), 1e-12);
  EXPECT_NEAR(GroupAuc(labels_, scores_, groups_), GroupAuc(l2, s2, g2),
              1e-12);
  EXPECT_NEAR(NdcgAtK(labels_, scores_, groups_, 10),
              NdcgAtK(l2, s2, g2, 10), 1e-12);
}

TEST_P(MetricPropertyTest, GroupRelabelingInvariance) {
  // GAUC/NDCG depend on the grouping structure, not on group id values.
  std::vector<uint32_t> relabeled;
  for (uint32_t g : groups_) relabeled.push_back(g * 1000 + 17);
  EXPECT_NEAR(GroupAuc(labels_, scores_, groups_),
              GroupAuc(labels_, scores_, relabeled), 1e-12);
  EXPECT_NEAR(NdcgAtK(labels_, scores_, groups_, 10),
              NdcgAtK(labels_, scores_, relabeled, 10), 1e-12);
}

TEST_P(MetricPropertyTest, NdcgStaysBoundedAcrossK) {
  // Note NDCG@K is intentionally NOT monotone in K (the ideal list is also
  // truncated at K), so only the [0, 1] bound is a true invariant.
  for (size_t k : {1u, 2u, 5u, 10u, 50u}) {
    const double v = NdcgAtK(labels_, scores_, groups_, k);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MetricPropertyTest,
    ::testing::Values(EvalCase{10, 0.5, 1}, EvalCase{100, 0.2, 2},
                      EvalCase{1000, 0.05, 3}, EvalCase{500, 0.8, 4},
                      EvalCase{64, 0.5, 5}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace garcia::eval
