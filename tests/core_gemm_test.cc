// Packed GEMM vs a naive triple-loop reference.
//
// The packed, cache-blocked kernel (core/kernels.cc) promises bit-identity
// with the naive reference for every transpose-flag combination, thread
// count, alpha/beta and KernelTuning — not merely closeness — because every
// tiling accumulates each output element's fl(alpha*a)*b terms in ascending
// k order (see the bit-identity argument in kernels.cc). Every comparison
// here is on raw bit patterns for non-NaN values; NaNs compare as a class
// (IEEE-754 leaves NaN sign/payload selection to the implementation — see
// ExpectBitEqual), and the kernel must propagate them (0 * Inf = NaN)
// instead of skipping zero operands.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "core/kernels.h"
#include "core/matrix.h"
#include "core/rng.h"

namespace garcia::core {
namespace {

// The reference: op-dim resolution, beta pre-scaling and ascending-k
// accumulation of fl(alpha * a_op) * b_op, element by element. This is the
// contract the packed kernel reproduces bit for bit.
void NaiveGemm(bool trans_a, bool trans_b, float alpha, const Matrix& a,
               const Matrix& b, float beta, Matrix* c) {
  const size_t m = trans_a ? a.cols() : a.rows();
  const size_t k = trans_a ? a.rows() : a.cols();
  const size_t n = trans_b ? b.rows() : b.cols();
  if (beta == 0.0f) {
    c->Fill(0.0f);
  } else if (beta != 1.0f) {
    c->Scale(beta);
  }
  if (alpha == 0.0f) return;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      for (size_t l = 0; l < k; ++l) {
        const float av = alpha * (trans_a ? a.at(l, i) : a.at(i, l));
        const float bv = trans_b ? b.at(j, l) : b.at(l, j);
        c->at(i, j) += av * bv;
      }
    }
  }
}

uint32_t Bits(float v) {
  uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

// Bit-pattern equality for every non-NaN value — including the signs of
// zeros and infinities. NaNs compare as a class: IEEE-754 does not pin
// which NaN an operation returns (e.g. `x + y` with two NaN operands keeps
// whichever one the compiler placed in the destination register, and
// 0 * Inf yields the platform's indefinite NaN, whose sign bit is set on
// x86), so NaN sign/payload may legitimately differ between the kernel's
// and the reference's compiled code even though both execute the same
// ascending-k accumulation. Where a NaN appears — and every finite bit —
// must still match exactly.
void ExpectBitEqual(const Matrix& want, const Matrix& got, const char* what) {
  ASSERT_EQ(want.rows(), got.rows()) << what;
  ASSERT_EQ(want.cols(), got.cols()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    const float w = want.data()[i];
    const float g = got.data()[i];
    if (std::isnan(w) && std::isnan(g)) continue;
    ASSERT_EQ(Bits(w), Bits(g)) << what << " diverges at flat index " << i
                                << ": " << w << " vs " << g;
  }
}

Matrix RandMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Normal());
  }
  return m;
}

class GemmPackedTest : public ::testing::Test {
 protected:
  ExecutionContext par2_{2};
  ExecutionContext par4_{4};
  Rng rng_{20260805};

  // Runs one (shape, flags, alpha, beta) instance on every context and
  // checks each against the naive reference.
  void CheckAgainstNaive(size_t m, size_t k, size_t n, bool ta, bool tb,
                         float alpha, float beta, const char* what) {
    const Matrix a = RandMatrix(ta ? k : m, ta ? m : k, &rng_);
    const Matrix b = RandMatrix(tb ? n : k, tb ? k : n, &rng_);
    const Matrix c_init = RandMatrix(m, n, &rng_);
    Matrix want = c_init;
    NaiveGemm(ta, tb, alpha, a, b, beta, &want);
    const ExecutionContext serial1(1);
    const ExecutionContext* ctxs[] = {&SerialExecution(), &serial1, &par2_,
                                      &par4_};
    for (const ExecutionContext* ctx : ctxs) {
      Matrix got = c_init;
      kernels::Gemm(*ctx, ta, tb, alpha, a, b, beta, &got);
      SCOPED_TRACE(::testing::Message()
                   << what << " m=" << m << " k=" << k << " n=" << n
                   << " ta=" << ta << " tb=" << tb << " alpha=" << alpha
                   << " beta=" << beta
                   << " threads=" << ctx->num_threads());
      ExpectBitEqual(want, got, what);
    }
  }
};

TEST_F(GemmPackedTest, RandomizedShapeTransposeAlphaBetaSweep) {
  const float alphas[] = {1.0f, -1.3f, 0.5f, 0.0f};
  const float betas[] = {0.0f, 1.0f, 0.7f};
  for (int trial = 0; trial < 10; ++trial) {
    const size_t m = 1 + rng_.UniformInt(120);
    const size_t k = 1 + rng_.UniformInt(96);
    const size_t n = 1 + rng_.UniformInt(120);
    const float alpha = alphas[trial % 4];
    const float beta = betas[trial % 3];
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        CheckAgainstNaive(m, k, n, ta, tb, alpha, beta, "sweep");
      }
    }
  }
}

TEST_F(GemmPackedTest, PanelBoundaryShapes) {
  // Shapes straddling the default MC/KC/NC panel edges and indivisible by
  // the MR x NR micro-tile, so edge padding and multi-panel k loops all
  // engage.
  const size_t shapes[][3] = {
      {64, 256, 256},  // exactly one packed block per dimension
      {65, 257, 259},  // one past every panel edge
      {150, 300, 301},  // multiple panels, ragged micro-tiles
      {3, 513, 5},      // m, n below the micro-tile size, k > 2 panels
  };
  for (const auto& s : shapes) {
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        CheckAgainstNaive(s[0], s[1], s[2], ta, tb, 1.1f, 0.4f, "panel-edge");
      }
    }
  }
}

TEST_F(GemmPackedTest, BackwardDwShapeParallelizes) {
  // dW = X^T dY: m = n = hidden dim (small), k = node count (large). Before
  // 2-D sharding this collapsed onto row-only shards; now it must split and
  // still match the reference exactly.
  CheckAgainstNaive(32, 4096, 32, /*ta=*/true, /*tb=*/false, 1.0f, 1.0f,
                    "dW");
  CheckAgainstNaive(16, 8192, 48, /*ta=*/true, /*tb=*/true, -0.7f, 0.0f,
                    "dW-tt");
}

TEST_F(GemmPackedTest, NonFinitePropagation) {
  // Regression for the old `av == 0.0f` inner-loop skip: a zero row of A
  // against Inf/NaN rows of B must produce NaN (0 * Inf = NaN), not
  // silently drop the term.
  const size_t m = 24, k = 40, n = 24;
  Matrix a = RandMatrix(m, k, &rng_);
  Matrix b = RandMatrix(k, n, &rng_);
  for (size_t l = 0; l < k; ++l) a.at(3, l) = 0.0f;  // zero row of A
  for (size_t j = 0; j < n; ++j) {
    b.at(7, j) = std::numeric_limits<float>::infinity();
    b.at(11, j) = std::numeric_limits<float>::quiet_NaN();
  }
  Matrix want(m, n);
  NaiveGemm(false, false, 1.0f, a, b, 0.0f, &want);
  // The zero row meets Inf and NaN B rows, so its outputs must be NaN.
  for (size_t j = 0; j < n; ++j) ASSERT_TRUE(std::isnan(want.at(3, j)));
  Matrix got_serial(m, n);
  kernels::Gemm(SerialExecution(), false, false, 1.0f, a, b, 0.0f,
                &got_serial);
  ExpectBitEqual(want, got_serial, "non-finite");
  // Across the kernel's own backends the SAME code runs in the same order,
  // so even the NaN bits must agree exactly.
  Matrix got_par(m, n);
  kernels::Gemm(par4_, false, false, 1.0f, a, b, 0.0f, &got_par);
  for (size_t i = 0; i < got_serial.size(); ++i) {
    ASSERT_EQ(Bits(got_serial.data()[i]), Bits(got_par.data()[i]))
        << "serial vs parallel kernel diverge at flat index " << i;
  }
  ExpectBitEqual(want, got_par, "non-finite-par");
  // Transposed operands run through the strided packing paths; non-finites
  // must survive those too.
  Matrix at(k, m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t l = 0; l < k; ++l) at.at(l, i) = a.at(i, l);
  }
  Matrix got_t(m, n);
  kernels::Gemm(par4_, true, false, 1.0f, at, b, 0.0f, &got_t);
  ExpectBitEqual(want, got_t, "non-finite-ta");
}

TEST_F(GemmPackedTest, CustomTuningIsBitIdentical) {
  // Pathologically small and unaligned panels exercise every padding path;
  // results must not move. Floors of 1 let the parallel grid refine all the
  // way down to single rows/columns.
  KernelTuning tiny;
  tiny.gemm_mc = 7;
  tiny.gemm_kc = 3;
  tiny.gemm_nc = 5;
  tiny.gemm_min_rows_per_shard = 1;
  tiny.gemm_min_cols_per_shard = 1;
  ExecutionContext tuned_serial(0, tiny);
  ExecutionContext tuned_par(3, tiny);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      const size_t m = 33, k = 29, n = 31;
      const Matrix a = RandMatrix(ta ? k : m, ta ? m : k, &rng_);
      const Matrix b = RandMatrix(tb ? n : k, tb ? k : n, &rng_);
      const Matrix c_init = RandMatrix(m, n, &rng_);
      Matrix want = c_init;
      NaiveGemm(ta, tb, 1.6f, a, b, 0.3f, &want);
      for (const ExecutionContext* ctx : {&tuned_serial, &tuned_par}) {
        Matrix got = c_init;
        kernels::Gemm(*ctx, ta, tb, 1.6f, a, b, 0.3f, &got);
        ExpectBitEqual(want, got, "custom-tuning");
      }
    }
  }
}

TEST_F(GemmPackedTest, SharedBPanelCapIsBitIdentical) {
  // The shared packed-B path pre-packs all B panels once when the parallel
  // grid has more than one row block and packed B fits under
  // gemm_shared_b_max_floats; over the cap each shard packs its own
  // panels. Both regimes must agree with the naive reference bit for bit —
  // the cap only trades memory for repacking work. Shapes are chosen so a
  // 4-thread grid has several row blocks (m >> n), making the shared path
  // actually engage below the cap.
  const size_t m = 96, k = 40, n = 24;
  for (bool tb : {false, true}) {
    const Matrix a = RandMatrix(m, k, &rng_);
    const Matrix b = RandMatrix(tb ? n : k, tb ? k : n, &rng_);
    const Matrix c_init = RandMatrix(m, n, &rng_);
    Matrix want = c_init;
    NaiveGemm(false, tb, 1.0f, a, b, 0.0f, &want);
    for (size_t cap : {size_t{0}, size_t{1}, k * n, size_t{1} << 24}) {
      KernelTuning tune;
      tune.gemm_shared_b_max_floats = cap;
      tune.gemm_min_rows_per_shard = 8;
      ExecutionContext ctx(4, tune);
      Matrix got = c_init;
      kernels::Gemm(ctx, false, tb, 1.0f, a, b, 0.0f, &got);
      SCOPED_TRACE(::testing::Message() << "cap=" << cap << " tb=" << tb);
      ExpectBitEqual(want, got, "shared-b-cap");
    }
  }
}

TEST_F(GemmPackedTest, TuningDefaultsAndSetters) {
  const KernelTuning defaults;
  EXPECT_EQ(defaults.gemm_mc, 64u);
  EXPECT_EQ(defaults.gemm_kc, 256u);
  EXPECT_EQ(defaults.gemm_nc, 256u);
  EXPECT_EQ(defaults.gemm_min_rows_per_shard, 8u);
  EXPECT_EQ(defaults.min_elems_per_shard, size_t{1} << 14);
  EXPECT_EQ(defaults.min_rows_per_shard, 64u);
  EXPECT_EQ(defaults.min_segments_per_shard, 64u);
  EXPECT_EQ(defaults.min_scatter_sources, 2048u);

  ExecutionContext ctx(0);
  EXPECT_EQ(ctx.tuning().gemm_mc, defaults.gemm_mc);
  KernelTuning custom;
  custom.gemm_mc = 16;
  custom.min_rows_per_shard = 8;
  ctx.set_tuning(custom);
  EXPECT_EQ(ctx.tuning().gemm_mc, 16u);
  EXPECT_EQ(ctx.tuning().min_rows_per_shard, 8u);
}

}  // namespace
}  // namespace garcia::core
