// Tests for the fault-tolerant serving layer (ISSUE 1): fault injection,
// retry exhaustion, circuit-breaker transitions, every tier of the
// degradation chain, deterministic replay, and hardened store loading.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/clock.h"
#include "core/rng.h"
#include "models/contrastive.h"
#include "serving/ab_test.h"
#include "serving/batch_ranker.h"
#include "serving/embedding_store.h"
#include "serving/fault_injector.h"
#include "serving/ivf_index.h"
#include "serving/resilience.h"
#include "serving/resilient_ranker.h"

namespace garcia::serving {
namespace {

using core::Matrix;

// --------------------------------------------------------- store hardening

TEST(EmbeddingStoreHardeningTest, FindReturnsNullptrOutOfRange) {
  EmbeddingStore store(Matrix({{1, 2}, {3, 4}}));
  EXPECT_NE(store.Find(0), nullptr);
  EXPECT_NE(store.Find(1), nullptr);
  EXPECT_EQ(store.Find(2), nullptr);
  EXPECT_EQ(store.Find(12345), nullptr);
  EXPECT_TRUE(store.Contains(1));
  EXPECT_FALSE(store.Contains(2));
  EXPECT_FLOAT_EQ(store.Find(1)[1], 4.0f);
}

std::string TempPath(const char* name) {
  return std::string("/tmp/garcia_resilience_") + name + ".bin";
}

TEST(EmbeddingStoreHardeningTest, V2RoundTripWithChecksum) {
  core::Rng rng(3);
  EmbeddingStore store(Matrix::Randn(7, 5, &rng));
  const std::string path = TempPath("v2_roundtrip");
  ASSERT_TRUE(store.Save(path).ok());
  auto loaded = EmbeddingStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().matrix().AllClose(store.matrix()));
  std::remove(path.c_str());
}

TEST(EmbeddingStoreHardeningTest, AtomicSaveRepairsTornDumpAndLeavesNoTemp) {
  // A torn dump under the final name (a legacy non-atomic writer killed
  // mid-write) must be rejected on load, and a subsequent Save must
  // atomically replace it without stranding its temp file.
  core::Rng rng(17);
  EmbeddingStore store(Matrix::Randn(9, 4, &rng));
  const std::string path = TempPath("torn_dump");
  ASSERT_TRUE(store.Save(path).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(EmbeddingStore::Load(path).ok());

  ASSERT_TRUE(store.Save(path).ok());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good())
      << "atomic save stranded its temp file";
  auto reloaded = EmbeddingStore::Load(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_TRUE(reloaded.value().matrix().AllClose(store.matrix()));
  std::remove(path.c_str());
}

TEST(EmbeddingStoreHardeningTest, AtomicSaveOverwritesStrayTempFile) {
  core::Rng rng(19);
  EmbeddingStore store(Matrix::Randn(3, 6, &rng));
  const std::string path = TempPath("stray_tmp");
  {
    std::ofstream f(path + ".tmp", std::ios::binary);
    f << "stranded by a crashed writer";
  }
  ASSERT_TRUE(store.Save(path).ok());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  auto loaded = EmbeddingStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(EmbeddingStoreHardeningTest, SaveIntoMissingDirectoryFailsCleanly) {
  EmbeddingStore store(Matrix({{1, 2}, {3, 4}}));
  const auto st = store.Save("/tmp/garcia_no_such_dir_xq7/dump.bin");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), core::StatusCode::kIoError);
}

TEST(EmbeddingStoreHardeningTest, ChecksumRejectsFlippedPayloadByte) {
  core::Rng rng(4);
  EmbeddingStore store(Matrix::Randn(6, 4, &rng));
  const std::string path = TempPath("flipped");
  ASSERT_TRUE(store.Save(path).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);  // somewhere inside the payload
    char b;
    f.seekg(-3, std::ios::end);
    f.get(b);
    f.seekp(-3, std::ios::end);
    f.put(static_cast<char>(b ^ 0x10));
  }
  auto r = EmbeddingStore::Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(EmbeddingStoreHardeningTest, TruncatedFileRejected) {
  core::Rng rng(5);
  EmbeddingStore store(Matrix::Randn(6, 4, &rng));
  const std::string path = TempPath("truncated");
  ASSERT_TRUE(store.Save(path).ok());
  // Rewrite the file minus its last 5 bytes.
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(f), {});
  }
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 5));
  }
  EXPECT_FALSE(EmbeddingStore::Load(path).ok());
  std::remove(path.c_str());
}

TEST(EmbeddingStoreHardeningTest, TrailingGarbageRejected) {
  core::Rng rng(6);
  EmbeddingStore store(Matrix::Randn(3, 3, &rng));
  const std::string path = TempPath("trailing");
  ASSERT_TRUE(store.Save(path).ok());
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("junk", 4);
  }
  auto r = EmbeddingStore::Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("trailing"), std::string::npos);
  std::remove(path.c_str());
}

TEST(EmbeddingStoreHardeningTest, CraftedHugeHeaderRejectedWithoutAllocating) {
  // A ~30-byte file whose header claims a multi-terabyte payload must be
  // rejected up front (payload cap / file-size check), not by attempting
  // the allocation.
  const std::string path = TempPath("huge_header");
  {
    std::ofstream f(path, std::ios::binary);
    f.write("GEM2", 4);
    const uint32_t version = 2;
    const uint64_t rows = 1ull << 31, cols = 1ull << 15;
    const uint32_t crc = 0;
    f.write(reinterpret_cast<const char*>(&version), sizeof(version));
    f.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    f.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    f.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  }
  auto r = EmbeddingStore::Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), core::StatusCode::kInvalidArgument);
  std::remove(path.c_str());

  // Under the cap but with no payload present: also rejected pre-allocation.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write("GEM2", 4);
    const uint32_t version = 2;
    const uint64_t rows = 1000, cols = 16;
    const uint32_t crc = 0;
    f.write(reinterpret_cast<const char*>(&version), sizeof(version));
    f.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    f.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    f.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  }
  EXPECT_FALSE(EmbeddingStore::Load(path).ok());
  std::remove(path.c_str());
}

TEST(EmbeddingStoreHardeningTest, LegacyV1StillLoadsWithWarning) {
  const std::string path = TempPath("legacy_v1");
  Matrix m({{1, 2}, {3, 4}, {5, 6}});
  {
    std::ofstream f(path, std::ios::binary);
    f.write("GEMB", 4);
    const uint64_t rows = 3, cols = 2;
    f.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    f.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    f.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(rows * cols * sizeof(float)));
  }
  auto r = EmbeddingStore::Load(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().matrix().AllClose(m));
  std::remove(path.c_str());
}

// ----------------------------------------------------------- fault injector

TEST(FaultInjectorTest, CleanProfilePassesThrough) {
  EmbeddingStore store(Matrix({{1, 2}, {3, 4}}));
  FaultInjector injector(&store, FaultProfile{});
  LookupOutcome out = injector.Lookup(1);
  ASSERT_TRUE(out.status.ok());
  EXPECT_FLOAT_EQ(out.row[0], 3.0f);
  EXPECT_EQ(out.fault, FaultKind::kNone);
  // Genuinely unknown id: NotFound, not a crash.
  out = injector.Lookup(99);
  EXPECT_EQ(out.status.code(), core::StatusCode::kNotFound);
  EXPECT_EQ(out.row, nullptr);
}

TEST(FaultInjectorTest, RatesRoughlyRespected) {
  core::Rng rng(8);
  EmbeddingStore store(Matrix::Randn(50, 4, &rng));
  FaultProfile profile;
  profile.seed = 11;
  profile.lookup_failure_rate = 0.3;
  profile.missing_id_rate = 0.2;
  profile.bit_flip_rate = 0.1;
  profile.latency_spike_rate = 0.15;
  FaultInjector injector(&store, profile);
  const size_t kN = 20000;
  for (size_t i = 0; i < kN; ++i) injector.Lookup(i % 50);
  EXPECT_EQ(injector.num_lookups(), kN);
  EXPECT_NEAR(injector.num_faults(FaultKind::kUnavailable) / double(kN), 0.3,
              0.02);
  // Missing-id draws fire only when the lookup was not already unavailable.
  EXPECT_NEAR(injector.num_faults(FaultKind::kMissingId) / double(kN),
              0.2 * 0.7, 0.02);
  EXPECT_NEAR(injector.num_faults(FaultKind::kLatencySpike) / double(kN),
              0.15, 0.02);
  EXPECT_GT(injector.num_faults(FaultKind::kBitFlip), 0u);
}

TEST(FaultInjectorTest, BitFlippedRowFailsValidation) {
  EmbeddingStore store(Matrix({{1.0f, 2.0f, 3.0f, 4.0f}}));
  FaultProfile profile;
  profile.bit_flip_rate = 1.0;
  FaultInjector injector(&store, profile);
  LookupOutcome out = injector.Lookup(0);
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.fault, FaultKind::kBitFlip);
  EXPECT_FALSE(RowLooksValid(out.row, 4));
  // The store itself is untouched.
  EXPECT_TRUE(RowLooksValid(store.Find(0), 4));
}

TEST(FaultInjectorTest, BitIdenticalReplayForFixedSeed) {
  core::Rng rng(9);
  EmbeddingStore store(Matrix::Randn(20, 4, &rng));
  FaultProfile profile;
  profile.seed = 77;
  profile.lookup_failure_rate = 0.25;
  profile.missing_id_rate = 0.15;
  profile.bit_flip_rate = 0.2;
  profile.latency_spike_rate = 0.1;
  FaultInjector a(&store, profile);
  FaultInjector b(&store, profile);
  for (size_t i = 0; i < 2000; ++i) {
    LookupOutcome oa = a.Lookup(i % 20);
    LookupOutcome ob = b.Lookup(i % 20);
    ASSERT_EQ(oa.status.code(), ob.status.code()) << "lookup " << i;
    ASSERT_EQ(oa.fault, ob.fault) << "lookup " << i;
    ASSERT_EQ(oa.latency_micros, ob.latency_micros) << "lookup " << i;
    if (oa.status.ok()) {
      // Bit-identical, including the corrupted values (memcmp, since a
      // poisoned element may be NaN and NaN != NaN).
      ASSERT_EQ(std::memcmp(oa.row, ob.row, 4 * sizeof(float)), 0)
          << "lookup " << i;
    }
  }
  // Reset rewinds to the same stream.
  a.Reset();
  FaultInjector c(&store, profile);
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(a.Lookup(i % 20).fault, c.Lookup(i % 20).fault);
  }
}

// ----------------------------------------------------------- circuit breaker

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndShortCircuits) {
  core::ManualClock clock;
  BreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.open_cooldown_micros = 1000;
  CircuitBreaker breaker(cfg, &clock);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // A success resets the consecutive count.
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.transitions_to_open(), 1u);
  EXPECT_FALSE(breaker.AllowRequest());
  clock.AdvanceMicros(999);
  EXPECT_FALSE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, HalfOpenClosesOnProbeSuccesses) {
  core::ManualClock clock;
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_cooldown_micros = 1000;
  cfg.half_open_successes = 2;
  CircuitBreaker breaker(cfg, &clock);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  clock.AdvanceMicros(1000);
  EXPECT_TRUE(breaker.AllowRequest());  // open -> half-open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.transitions_to_half_open(), 1u);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.transitions_to_closed(), 1u);
}

TEST(CircuitBreakerTest, HalfOpenReopensOnProbeFailure) {
  core::ManualClock clock;
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_cooldown_micros = 500;
  CircuitBreaker breaker(cfg, &clock);
  breaker.RecordFailure();
  clock.AdvanceMicros(500);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.transitions_to_open(), 2u);
  // And the cooldown restarts from the re-open.
  clock.AdvanceMicros(499);
  EXPECT_FALSE(breaker.AllowRequest());
  clock.AdvanceMicros(1);
  EXPECT_TRUE(breaker.AllowRequest());
}

// -------------------------------------------------------- degradation chain

/// Fixture wiring: 3 services, fresh store with query ids {0, 1}, stale
/// with ids {0..3}, anchors / text / popularity as each test needs.
class ChainTest : public ::testing::Test {
 protected:
  ChainTest()
      : services_(Matrix({{1, 0}, {0, 1}, {0.5, 0.5}})),
        fresh_(Matrix({{1, 0}, {0, 1}})),
        stale_(Matrix({{1, 0}, {0, 1}, {0.9, 0.1}, {0.1, 0.9}})) {}

  std::unique_ptr<ResilientRanker> MakeRanker(ResilienceConfig cfg = {}) {
    auto ranker = std::make_unique<ResilientRanker>(
        EmbeddingStore(fresh_), EmbeddingStore(services_), cfg);
    return ranker;
  }

  Matrix services_, fresh_, stale_;
};

TEST_F(ChainTest, Tier0FreshServesHealthyLookups) {
  auto ranker = MakeRanker();
  RankedList r = ranker->Rank(0, 2);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].first, 0u);  // query (1,0) -> service (1,0)
  ServingHealth h = ranker->health();
  EXPECT_EQ(h.requests, 1u);
  EXPECT_EQ(h.served_at_tier[0], 1u);
  EXPECT_EQ(h.MeanFallbackDepth(), 0.0);
}

TEST_F(ChainTest, Tier1StaleServesIdMissingFromFreshDump) {
  auto ranker = MakeRanker();
  ranker->SetStaleSnapshot(EmbeddingStore(stale_));
  RankedList r = ranker->Rank(2, 1);  // id 2: not in fresh, in stale
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].first, 0u);  // stale row (0.9, 0.1) -> service (1,0)
  ServingHealth h = ranker->health();
  EXPECT_EQ(h.missing_ids, 1u);
  EXPECT_EQ(h.served_at_tier[1], 1u);
}

TEST_F(ChainTest, Tier2HeadAnchorServesColdStartTailQuery) {
  auto ranker = MakeRanker();
  ranker->SetStaleSnapshot(EmbeddingStore(stale_));
  std::vector<int32_t> anchors(8, -1);
  anchors[5] = 1;  // tail query 5's mined head anchor is query 1
  ranker->SetHeadAnchors(std::move(anchors));
  RankedList r = ranker->Rank(5, 1);  // id 5: in neither store
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].first, 1u);  // head query 1 = (0,1) -> service (0,1)
  ServingHealth h = ranker->health();
  EXPECT_EQ(h.served_at_tier[2], 1u);
}

TEST_F(ChainTest, Tier3TextFallbackWhenNoAnchor) {
  auto ranker = MakeRanker();
  std::vector<std::string> query_texts(8);
  query_texts[7] = "fresh coffee beans";
  ranker->SetTextFallback(std::make_shared<TextRanker>(
      query_texts,
      std::vector<std::string>{"pizza oven", "coffee roaster", "car wash"}));
  RankedList r = ranker->Rank(7, 3);  // unknown id, no anchor -> text
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].first, 1u);  // "coffee" matches the roaster
  ServingHealth h = ranker->health();
  EXPECT_EQ(h.served_at_tier[3], 1u);
}

TEST_F(ChainTest, Tier4PopularityPriorIsTheTerminalTier) {
  auto ranker = MakeRanker();
  ranker->SetPopularityFallback(
      std::make_shared<PopularityRanker>(std::vector<double>{0.1, 5.0, 2.0}));
  RankedList r = ranker->Rank(42, 2);  // unknown id, no other tiers wired
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].first, 1u);
  EXPECT_EQ(r[1].first, 2u);
  ServingHealth h = ranker->health();
  EXPECT_EQ(h.served_at_tier[4], 1u);
  EXPECT_EQ(h.MeanFallbackDepth(), 4.0);
}

TEST_F(ChainTest, RetryExhaustionFallsThroughAndCountsRetries) {
  ResilienceConfig cfg;
  cfg.max_attempts = 3;
  cfg.breaker.failure_threshold = 100;  // keep the breaker out of the way
  cfg.deadline_micros = 1000000;
  auto ranker = MakeRanker(cfg);
  ranker->SetStaleSnapshot(EmbeddingStore(stale_));
  FaultProfile profile;
  profile.lookup_failure_rate = 1.0;  // the fresh path never answers
  ranker->SetFaultProfile(profile);
  RankedList r = ranker->Rank(0, 1);
  ASSERT_EQ(r.size(), 1u);
  ServingHealth h = ranker->health();
  EXPECT_EQ(h.attempts, 3u);
  EXPECT_EQ(h.retries, 2u);
  EXPECT_EQ(h.transient_failures, 3u);
  EXPECT_EQ(h.served_at_tier[1], 1u);  // rescued by the stale snapshot
}

TEST_F(ChainTest, LatencySpikeBlowsDeadlineAndDegrades) {
  ResilienceConfig cfg;
  cfg.deadline_micros = 5000;
  auto ranker = MakeRanker(cfg);
  ranker->SetStaleSnapshot(EmbeddingStore(stale_));
  FaultProfile profile;
  profile.latency_spike_rate = 1.0;
  profile.spike_latency_micros = 20000;  // 4x the budget
  ranker->SetFaultProfile(profile);
  RankedList r = ranker->Rank(0, 1);
  ASSERT_FALSE(r.empty());
  ServingHealth h = ranker->health();
  EXPECT_GE(h.deadline_exceeded, 1u);
  EXPECT_EQ(h.served_at_tier[1], 1u);
}

TEST_F(ChainTest, CorruptRowIsRejectedAndRetried) {
  ResilienceConfig cfg;
  cfg.max_attempts = 2;
  cfg.deadline_micros = 1000000;
  auto ranker = MakeRanker(cfg);
  ranker->SetStaleSnapshot(EmbeddingStore(stale_));
  FaultProfile profile;
  profile.bit_flip_rate = 1.0;  // every fresh row comes back poisoned
  ranker->SetFaultProfile(profile);
  RankedList r = ranker->Rank(0, 1);
  ASSERT_FALSE(r.empty());
  ServingHealth h = ranker->health();
  EXPECT_EQ(h.corrupt_rows, 2u);       // both attempts rejected
  EXPECT_EQ(h.served_at_tier[1], 1u);  // served from the clean snapshot
}

TEST_F(ChainTest, BreakerOpensShortCircuitsThenRecovers) {
  ResilienceConfig cfg;
  cfg.max_attempts = 1;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.open_cooldown_micros = 50000;
  cfg.breaker.half_open_successes = 2;
  cfg.inter_request_micros = 0;  // time only moves when we say so
  cfg.deadline_micros = 1000000;
  auto ranker = MakeRanker(cfg);
  ranker->SetStaleSnapshot(EmbeddingStore(stale_));
  FaultProfile failing;
  failing.lookup_failure_rate = 1.0;
  ranker->SetFaultProfile(failing);

  ranker->Rank(0, 1);  // failure 1
  EXPECT_EQ(ranker->breaker_state(), CircuitBreaker::State::kClosed);
  ranker->Rank(0, 1);  // failure 2 -> open
  EXPECT_EQ(ranker->breaker_state(), CircuitBreaker::State::kOpen);
  ranker->Rank(0, 1);  // short-circuited
  ServingHealth h = ranker->health();
  EXPECT_EQ(h.breaker_to_open, 1u);
  EXPECT_GE(h.breaker_short_circuits, 1u);
  EXPECT_EQ(h.attempts, 2u);  // the third request never hit the store

  // The store recovers; after the cooldown the breaker probes and closes.
  FaultProfile healthy;  // all rates zero
  ranker->SetFaultProfile(healthy);
  ranker->AdvanceClockMicros(50000);
  ranker->Rank(0, 1);  // probe 1 (half-open)
  EXPECT_EQ(ranker->breaker_state(), CircuitBreaker::State::kHalfOpen);
  ranker->Rank(1, 1);  // probe 2 -> closed
  EXPECT_EQ(ranker->breaker_state(), CircuitBreaker::State::kClosed);
  h = ranker->health();
  EXPECT_EQ(h.breaker_to_half_open, 1u);
  EXPECT_EQ(h.breaker_to_closed, 1u);
  EXPECT_EQ(h.served_at_tier[0], 2u);  // both probes served fresh
}

TEST_F(ChainTest, HalfOpenProbeFailureReopensViaRanker) {
  ResilienceConfig cfg;
  cfg.max_attempts = 1;
  cfg.breaker.failure_threshold = 1;
  cfg.breaker.open_cooldown_micros = 1000;
  cfg.inter_request_micros = 0;
  auto ranker = MakeRanker(cfg);
  ranker->SetStaleSnapshot(EmbeddingStore(stale_));
  FaultProfile failing;
  failing.lookup_failure_rate = 1.0;
  ranker->SetFaultProfile(failing);
  ranker->Rank(0, 1);  // open
  EXPECT_EQ(ranker->breaker_state(), CircuitBreaker::State::kOpen);
  ranker->AdvanceClockMicros(1000);
  ranker->Rank(0, 1);  // half-open probe fails -> open again
  EXPECT_EQ(ranker->breaker_state(), CircuitBreaker::State::kOpen);
  ServingHealth h = ranker->health();
  EXPECT_EQ(h.breaker_to_open, 2u);
  EXPECT_EQ(h.breaker_to_half_open, 1u);
}

TEST_F(ChainTest, NeverAbortsUnderMixedFaultsAndUnknownIds) {
  auto ranker = MakeRanker();
  ranker->SetStaleSnapshot(EmbeddingStore(stale_));
  std::vector<int32_t> anchors(64, -1);
  anchors[10] = 0;
  ranker->SetHeadAnchors(std::move(anchors));
  FaultProfile profile;
  profile.seed = 5;
  profile.lookup_failure_rate = 0.2;
  profile.missing_id_rate = 0.1;
  profile.bit_flip_rate = 0.05;
  profile.latency_spike_rate = 0.05;
  ranker->SetFaultProfile(profile);
  size_t answered = 0;
  for (uint32_t q = 0; q < 64; ++q) {
    RankedList r = ranker->Rank(q % 16, 2);
    answered += !r.empty();
  }
  EXPECT_EQ(answered, 64u);
  ServingHealth h = ranker->health();
  EXPECT_EQ(h.requests, 64u);
  uint64_t served = 0;
  for (uint64_t c : h.served_at_tier) served += c;
  EXPECT_EQ(served, 64u);  // every request was served by exactly one tier
}

TEST_F(ChainTest, PrepareForRunGivesBitIdenticalReplay) {
  ResilienceConfig cfg;
  auto ranker = MakeRanker(cfg);
  ranker->SetStaleSnapshot(EmbeddingStore(stale_));
  FaultProfile profile;
  profile.seed = 31;
  profile.lookup_failure_rate = 0.3;
  profile.missing_id_rate = 0.2;
  profile.bit_flip_rate = 0.1;
  profile.latency_spike_rate = 0.1;

  auto run = [&] {
    std::vector<RankedList> out;
    for (uint32_t i = 0; i < 200; ++i) out.push_back(ranker->Rank(i % 8, 3));
    return out;
  };
  ranker->PrepareForRun(&profile, 17);
  auto first = run();
  ServingHealth h1 = ranker->health();
  ranker->PrepareForRun(&profile, 17);
  auto second = run();
  ServingHealth h2 = ranker->health();
  EXPECT_EQ(first, second);
  EXPECT_EQ(h1.ToString(), h2.ToString());
  EXPECT_GT(h1.transient_failures, 0u);  // the profile actually did inject
}

TEST_F(ChainTest, FaultSweepBatchedPathReplaysSerialTierSequence) {
  // Sweep fault intensities; at each level, replay the same seed through
  // the serial explicit-index path and through the 4-thread batched path.
  // Per-request ranked lists, per-request tier decisions, and the health
  // counter totals must be identical.
  for (const double rate : {0.0, 0.15, 0.4}) {
    std::shared_ptr<ResilientRanker> ranker(MakeRanker());
    ranker->SetStaleSnapshot(EmbeddingStore(stale_));
    std::vector<int32_t> anchors(10, -1);
    anchors[7] = 0;
    anchors[8] = 1;
    ranker->SetHeadAnchors(std::move(anchors));
    FaultProfile profile;
    profile.seed = 55;
    profile.lookup_failure_rate = rate;
    profile.missing_id_rate = rate / 2;
    profile.bit_flip_rate = rate / 4;
    profile.latency_spike_rate = rate / 4;

    const size_t kN = 300;
    ranker->PrepareForRun(&profile, /*seed=*/9);
    std::vector<RankedList> ref_lists(kN);
    std::vector<ServingTier> ref_tiers(kN);
    for (size_t i = 0; i < kN; ++i) {
      ref_lists[i] =
          ranker->RankAt(i, static_cast<uint32_t>(i % 10), 3, &ref_tiers[i]);
    }
    const std::string ref_health = ranker->health().ToString();

    // Batched replay of the same seed.
    std::vector<ServeRequest> requests(kN);
    for (size_t i = 0; i < kN; ++i) {
      requests[i] = {static_cast<uint32_t>(i % 10), 3};
    }
    ServeConfig serve;
    serve.num_threads = 4;
    BatchRanker batch(ranker, serve);
    ranker->PrepareForRun(&profile, /*seed=*/9);
    const std::vector<RankedList> lists = batch.RankBatch(requests);
    ASSERT_EQ(lists.size(), kN);
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(lists[i], ref_lists[i]) << "rate " << rate << " request " << i;
    }
    EXPECT_EQ(ranker->health().ToString(), ref_health) << "rate " << rate;

    // Tier-selection sequence under concurrency: re-run with the tier out
    // param from competing threads and compare against the serial tiers.
    ranker->PrepareForRun(&profile, /*seed=*/9);
    std::vector<ServingTier> tiers(kN);
    std::atomic<size_t> counter{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&] {
        for (;;) {
          const size_t i = counter.fetch_add(1);
          if (i >= kN) return;
          ranker->RankAt(i, static_cast<uint32_t>(i % 10), 3, &tiers[i]);
        }
      });
    }
    for (auto& w : workers) w.join();
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(tiers[i], ref_tiers[i]) << "rate " << rate << " request " << i;
    }
    EXPECT_EQ(ranker->health().ToString(), ref_health) << "rate " << rate;
  }
}

// --------------------------------------------- retrieval-index scoring path

TEST_F(ChainTest, InstalledIndexServesFreshTierAndCountsScoringPath) {
  auto ranker = MakeRanker();
  RetrievalConfig rcfg;
  rcfg.nlist = 2;
  auto index = std::make_shared<const IvfIndex>(IvfIndex::Build(services_, rcfg));
  ranker->SetRetrievalIndex(index, /*nprobe=*/index->nlist());
  RankedList r = ranker->Rank(0, 2);  // full probe: oracle-exact
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].first, 0u);  // query (1,0) -> service (1,0)
  ServingHealth h = ranker->health();
  EXPECT_EQ(h.served_at_tier[0], 1u);
  EXPECT_EQ(h.scored_via_index, 1u);
  EXPECT_EQ(h.scored_brute_force, 0u);
  EXPECT_EQ(h.index_load_failures, 0u);
  // The counters surface on the dashboard string.
  EXPECT_NE(h.ToString().find("scoring[index=1,brute=0"), std::string::npos);
}

TEST_F(ChainTest, CorruptIndexDumpDegradesToBruteForceScoring) {
  // Ops publishes an index dump; a bit flips at rest. The load must be
  // rejected (per-section CRC), counted, and serving must keep answering on
  // the brute-force scan with IDENTICAL results — the index is a
  // performance tier, not a correctness tier.
  const std::string path = "/tmp/garcia_resilience_corrupt_index.ivf";
  {
    RetrievalConfig rcfg;
    rcfg.nlist = 2;
    ASSERT_TRUE(IvfIndex::Build(services_, rcfg).Save(path).ok());
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-2, std::ios::end);
    char b;
    f.seekg(-2, std::ios::end);
    f.get(b);
    f.seekp(-2, std::ios::end);
    f.put(static_cast<char>(b ^ 0x20));
  }
  auto ranker = MakeRanker();
  const core::Status st = ranker->LoadRetrievalIndex(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("checksum"), std::string::npos)
      << st.ToString();
  auto reference = MakeRanker();  // never had an index
  RankedList got = ranker->Rank(0, 2);
  RankedList want = reference->Rank(0, 2);
  EXPECT_EQ(got, want);
  ServingHealth h = ranker->health();
  EXPECT_EQ(h.index_load_failures, 1u);
  EXPECT_EQ(h.scored_via_index, 0u);
  EXPECT_EQ(h.scored_brute_force, 1u);
  EXPECT_EQ(h.served_at_tier[0], 1u);  // tier decision unaffected
  std::remove(path.c_str());

  // A clean dump loads and flips the scoring path over.
  {
    RetrievalConfig rcfg;
    rcfg.nlist = 2;
    rcfg.nprobe = 2;
    ASSERT_TRUE(IvfIndex::Build(services_, rcfg).Save(path).ok());
  }
  ASSERT_TRUE(ranker->LoadRetrievalIndex(path).ok());
  EXPECT_EQ(ranker->Rank(0, 2), want);  // full probe: still oracle-exact
  h = ranker->health();
  EXPECT_EQ(h.scored_via_index, 1u);
  EXPECT_EQ(h.scored_brute_force, 1u);
  std::remove(path.c_str());
}

TEST_F(ChainTest, Sq8IndexCountsScansRerankRowsAndMemoryOnDashboard) {
  auto ranker = MakeRanker();
  RetrievalConfig rcfg;
  rcfg.mode = RetrievalMode::kIvfSq8;
  rcfg.nlist = 2;
  auto index =
      std::make_shared<const IvfIndex>(IvfIndex::Build(services_, rcfg));
  ASSERT_TRUE(index->quantized());
  ranker->SetRetrievalIndex(index, /*nprobe=*/index->nlist());
  // Full probe + band re-rank: still the oracle answer.
  auto reference = MakeRanker();
  EXPECT_EQ(ranker->Rank(0, 2), reference->Rank(0, 2));
  ServingHealth h = ranker->health();
  EXPECT_EQ(h.scored_via_index, 1u);
  EXPECT_EQ(h.quantized_scans, 1u);
  EXPECT_GE(h.rerank_rows, 2u);  // at least the k it returned
  EXPECT_EQ(h.index_memory_bytes, index->MemoryBytes());
  EXPECT_GT(h.index_memory_bytes, 0u);
  // All three surface on the dashboard string.
  const std::string s = h.ToString();
  EXPECT_NE(s.find("sq8[scans=1,rerank_rows="), std::string::npos) << s;
  EXPECT_NE(s.find("index_memory_bytes="), std::string::npos) << s;
  // The footprint gauge survives a run reset; the per-run counters don't.
  ranker->PrepareForRun(nullptr, 1);
  h = ranker->health();
  EXPECT_EQ(h.quantized_scans, 0u);
  EXPECT_EQ(h.index_memory_bytes, index->MemoryBytes());
}

TEST_F(ChainTest, Sq8DumpLoadsAndReattachesOwnCatalog) {
  const std::string path = "/tmp/garcia_resilience_sq8_dump.ivf";
  {
    RetrievalConfig rcfg;
    rcfg.mode = RetrievalMode::kIvfSq8;
    rcfg.nlist = 2;
    rcfg.nprobe = 2;
    ASSERT_TRUE(IvfIndex::Build(services_, rcfg).Save(path).ok());
  }
  auto ranker = MakeRanker();
  // LoadRetrievalIndex must attach the ranker's own service catalog for
  // the exact re-rank stage (a GIV2 dump carries codes only).
  ASSERT_TRUE(ranker->LoadRetrievalIndex(path).ok());
  auto reference = MakeRanker();
  EXPECT_EQ(ranker->Rank(0, 2), reference->Rank(0, 2));
  EXPECT_EQ(ranker->Rank(1, 3), reference->Rank(1, 3));
  ServingHealth h = ranker->health();
  EXPECT_EQ(h.quantized_scans, 2u);
  EXPECT_GT(h.index_memory_bytes, 0u);
  std::remove(path.c_str());
}

TEST_F(ChainTest, TierSequenceUnderFaultsIdenticalWithAndWithoutIndex) {
  // The scoring path is orthogonal to the resolve phase: under an
  // aggressive fault profile, the per-request TIER decisions (and, at full
  // probe, the ranked lists) must be byte-identical whether or not the
  // index is installed — deterministically, across replays.
  FaultProfile profile;
  profile.seed = 23;
  profile.lookup_failure_rate = 0.3;
  profile.missing_id_rate = 0.2;
  profile.bit_flip_rate = 0.1;
  profile.latency_spike_rate = 0.1;

  auto plain = MakeRanker();
  plain->SetStaleSnapshot(EmbeddingStore(stale_));
  auto indexed = MakeRanker();
  indexed->SetStaleSnapshot(EmbeddingStore(stale_));
  RetrievalConfig rcfg;
  rcfg.nlist = 3;
  indexed->SetRetrievalIndex(
      std::make_shared<const IvfIndex>(IvfIndex::Build(services_, rcfg)),
      /*nprobe=*/3);

  const size_t kN = 200;
  plain->PrepareForRun(&profile, 11);
  indexed->PrepareForRun(&profile, 11);
  uint64_t indexed_scored = 0;
  for (size_t i = 0; i < kN; ++i) {
    ServingTier plain_tier, indexed_tier;
    RankedList a = plain->RankAt(i, static_cast<uint32_t>(i % 8), 3,
                                 &plain_tier);
    RankedList b = indexed->RankAt(i, static_cast<uint32_t>(i % 8), 3,
                                   &indexed_tier);
    ASSERT_EQ(indexed_tier, plain_tier) << "request " << i;
    ASSERT_EQ(b, a) << "request " << i;
  }
  const ServingHealth hp = plain->health();
  const ServingHealth hi = indexed->health();
  EXPECT_EQ(hp.served_at_tier, hi.served_at_tier);
  EXPECT_EQ(hp.requests, hi.requests);
  EXPECT_EQ(hp.transient_failures, hi.transient_failures);
  // Every embedding-tier request moved from the brute column to the index
  // column; non-embedding tiers (text/popularity) score through neither.
  EXPECT_EQ(hp.scored_via_index, 0u);
  EXPECT_EQ(hi.scored_brute_force, 0u);
  EXPECT_EQ(hi.scored_via_index, hp.scored_brute_force);
  indexed_scored = hi.scored_via_index;
  EXPECT_EQ(indexed_scored, hp.served_at_tier[0] + hp.served_at_tier[1] +
                                hp.served_at_tier[2]);
  EXPECT_GT(indexed_scored, 0u);
}

// ------------------------------------------------------- helper rankers

TEST(TextRankerTest, RanksBySimilarityAndClampsK) {
  TextRanker ranker({"espresso bar"}, {"laundry", "espresso coffee bar"});
  RankedList r = ranker.Rank(0, 10);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].first, 1u);
  EXPECT_GT(r[0].second, r[1].second);
  // Unknown query id: still answers (empty text -> zero scores).
  EXPECT_EQ(ranker.Rank(99, 1).size(), 1u);
}

// ------------------------------------------------- A/B test under faults

TEST(AbTestUnderFaultsTest, CompletesEveryRequestAndReplaysBitIdentically) {
  data::ScenarioConfig cfg;
  cfg.num_queries = 150;
  cfg.num_services = 60;
  cfg.num_intentions = 30;
  cfg.num_trees = 3;
  cfg.num_impressions = 6000;
  cfg.head_fraction = 0.05;
  data::Scenario s = data::GenerateScenario(cfg);

  core::Rng rng(21);
  Matrix query_emb = Matrix::Randn(s.num_queries(), 8, &rng);
  Matrix service_emb = Matrix::Randn(s.num_services(), 8, &rng);

  auto make_arm = [&] {
    auto arm = std::make_unique<ResilientRanker>(
        EmbeddingStore(query_emb), EmbeddingStore(service_emb));
    // Yesterday's dump is missing the last 30% of query ids.
    const size_t keep = s.num_queries() * 7 / 10;
    Matrix stale(keep, 8);
    for (size_t i = 0; i < keep; ++i) stale.CopyRowFrom(query_emb, i, i);
    arm->SetStaleSnapshot(EmbeddingStore(std::move(stale)));
    arm->SetHeadAnchors(
        models::AnchorHeadOf(models::MineKtclAnchors(s), s.num_queries()));
    std::vector<std::string> names;
    std::vector<double> popularity;
    for (const auto& meta : s.services) {
      names.push_back(meta.name);
      popularity.push_back(static_cast<double>(meta.mau));
    }
    arm->SetTextFallback(std::make_shared<TextRanker>(s.query_text, names));
    arm->SetPopularityFallback(std::make_shared<PopularityRanker>(popularity));
    return arm;
  };
  auto baseline = make_arm();
  auto treatment = make_arm();

  // 20% lookup failures plus cold-start misses (acceptance criterion).
  FaultProfile profile;
  profile.seed = 404;
  profile.lookup_failure_rate = 0.20;
  profile.missing_id_rate = 0.10;
  profile.bit_flip_rate = 0.05;
  AbTestConfig ab;
  ab.num_days = 2;
  ab.requests_per_day = 400;
  ab.fault_profile = &profile;

  AbTestResult r1 = RunAbTest(s, *baseline, *treatment, ab);
  ServingHealth h1 = treatment->health();
  // 100% of requests completed, each by exactly one tier; no aborts.
  EXPECT_EQ(h1.requests, ab.num_days * ab.requests_per_day);
  uint64_t served = 0;
  for (uint64_t c : h1.served_at_tier) served += c;
  EXPECT_EQ(served, h1.requests);
  EXPECT_GT(h1.transient_failures, 0u);
  EXPECT_LT(h1.served_at_tier[0], h1.requests);  // some degradation happened

  AbTestResult r2 = RunAbTest(s, *baseline, *treatment, ab);
  ServingHealth h2 = treatment->health();
  EXPECT_EQ(h1.ToString(), h2.ToString());
  for (size_t d = 0; d < ab.num_days; ++d) {
    EXPECT_DOUBLE_EQ(r1.baseline[d].ctr, r2.baseline[d].ctr);
    EXPECT_DOUBLE_EQ(r1.treatment[d].ctr, r2.treatment[d].ctr);
    EXPECT_DOUBLE_EQ(r1.treatment[d].valid_ctr, r2.treatment[d].valid_ctr);
  }
}

TEST(PopularityRankerTest, FixedOrderingForEveryQuery) {
  PopularityRanker ranker({1.0, 9.0, 4.0, 9.0});
  RankedList a = ranker.Rank(0, 3);
  RankedList b = ranker.Rank(123, 3);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].first, 1u);  // ties broken by id
  EXPECT_EQ(a[1].first, 3u);
  EXPECT_EQ(a[2].first, 2u);
}

}  // namespace
}  // namespace garcia::serving
