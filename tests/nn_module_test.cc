#include "nn/module.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/gradcheck.h"
#include "nn/loss.h"
#include "nn/ops.h"

namespace garcia::nn {
namespace {

using core::Matrix;
using core::Rng;

TEST(LinearTest, ShapesAndParams) {
  Rng rng(1);
  Linear lin(8, 4, &rng);
  EXPECT_EQ(lin.Parameters().size(), 2u);  // W, b
  EXPECT_EQ(lin.NumParameters(), 8u * 4u + 4u);
  Tensor x = Tensor::Constant(Matrix::Randn(5, 8, &rng));
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 4u);
}

TEST(LinearTest, NoBias) {
  Rng rng(2);
  Linear lin(3, 2, &rng, /*bias=*/false);
  EXPECT_EQ(lin.Parameters().size(), 1u);
  Tensor zero = Tensor::Constant(Matrix(1, 3));
  EXPECT_TRUE(lin.Forward(zero).value().AllClose(Matrix(1, 2)));
}

TEST(LinearTest, GradientsFlowToParams) {
  Rng rng(3);
  Linear lin(4, 3, &rng);
  Tensor x = Tensor::Constant(Matrix::Randn(2, 4, &rng));
  auto res = CheckGradients(
      [&] { return SumAll(Tanh(lin.Forward(x))); }, lin.Parameters(), 1e-2f);
  EXPECT_LT(res.max_rel_error, 2e-2);
}

TEST(EmbeddingTest, LookupReturnsRows) {
  Rng rng(4);
  Embedding emb(10, 6, &rng);
  Tensor out = emb.Forward({3, 7, 3});
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 6u);
  for (size_t j = 0; j < 6; ++j) {
    EXPECT_FLOAT_EQ(out.value().at(0, j), emb.Table().value().at(3, j));
    EXPECT_FLOAT_EQ(out.value().at(2, j), emb.Table().value().at(3, j));
  }
}

TEST(EmbeddingTest, OnlyTouchedRowsGetGradient) {
  Rng rng(5);
  Embedding emb(10, 4, &rng);
  Tensor loss = SumAll(emb.Forward({2, 5}));
  loss.Backward();
  const Matrix& g = emb.Table().grad();
  for (size_t i = 0; i < 10; ++i) {
    const bool touched = (i == 2 || i == 5);
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(g.at(i, j), touched ? 1.0f : 0.0f);
    }
  }
}

TEST(MlpTest, TwoLayerShapes) {
  Rng rng(6);
  Mlp mlp({16, 8, 1}, &rng);
  EXPECT_EQ(mlp.num_layers(), 2u);
  Tensor x = Tensor::Constant(Matrix::Randn(7, 16, &rng));
  Tensor y = mlp.Forward(x);
  EXPECT_EQ(y.rows(), 7u);
  EXPECT_EQ(y.cols(), 1u);
}

TEST(MlpTest, GradCheck) {
  Rng rng(7);
  Mlp mlp({5, 4, 2}, &rng);
  Tensor x = Tensor::Constant(Matrix::Randn(3, 5, &rng));
  auto res = CheckGradients(
      [&] { return MeanAll(Tanh(mlp.Forward(x))); }, mlp.Parameters(), 1e-2f);
  EXPECT_LT(res.max_rel_error, 3e-2);
}

TEST(MlpTest, DeepStack) {
  Rng rng(8);
  Mlp mlp({4, 4, 4, 4, 2}, &rng);
  EXPECT_EQ(mlp.num_layers(), 4u);
  EXPECT_EQ(mlp.Parameters().size(), 8u);
}

TEST(ModuleTest, CopyParametersFrom) {
  Rng rng1(9), rng2(10);
  Mlp a({6, 4, 2}, &rng1);
  Mlp b({6, 4, 2}, &rng2);
  Tensor x = Tensor::Constant(Matrix::Randn(2, 6, &rng1));
  EXPECT_FALSE(
      a.Forward(x).value().AllClose(b.Forward(x).value(), 1e-6f));
  b.CopyParametersFrom(a);
  EXPECT_TRUE(a.Forward(x).value().AllClose(b.Forward(x).value(), 1e-6f));
}

TEST(ModuleTest, MlpLearnsXor) {
  // End-to-end sanity: a small MLP fits XOR with plain gradient descent.
  Rng rng(11);
  Mlp mlp({2, 8, 1}, &rng);
  Matrix inputs({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  Matrix labels({{0.0}, {1.0}, {1.0}, {0.0}});
  Tensor x = Tensor::Constant(inputs);
  auto params = mlp.Parameters();
  float final_loss = 1e9f;
  for (int step = 0; step < 2000; ++step) {
    for (Tensor& p : params) p.ZeroGrad();
    Tensor loss = BceWithLogits(mlp.Forward(x), labels);
    loss.Backward();
    final_loss = loss.scalar();
    for (Tensor& p : params) {
      core::Matrix& w = p.mutable_value();
      for (size_t k = 0; k < w.size(); ++k) {
        w.data()[k] -= 0.5f * p.grad().data()[k];
      }
    }
  }
  EXPECT_LT(final_loss, 0.05f);
}

}  // namespace
}  // namespace garcia::nn
