// Copyright (c) 2026 GARCIA reproduction authors.
// Ranking metrics used in the paper's evaluation: AUC, GAUC and NDCG@K,
// with head/tail/overall query slicing.

#ifndef GARCIA_EVAL_METRICS_H_
#define GARCIA_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace garcia::eval {

/// ROC-AUC via the rank statistic (average-rank tie handling).
/// Returns 0.5 when one class is absent.
double Auc(const std::vector<float>& labels, const std::vector<float>& scores);

/// Grouped AUC: impression-weighted mean of per-group AUC over groups that
/// contain both a positive and a negative (the industry-standard GAUC).
double GroupAuc(const std::vector<float>& labels,
                const std::vector<float>& scores,
                const std::vector<uint32_t>& groups);

/// Mean NDCG@K over groups with at least one positive; binary gains.
double NdcgAtK(const std::vector<float>& labels,
               const std::vector<float>& scores,
               const std::vector<uint32_t>& groups, size_t k);

/// The metric triple the paper reports per slice.
struct RankingMetrics {
  double auc = 0.5;
  double gauc = 0.5;
  double ndcg_at_10 = 0.0;
  size_t num_examples = 0;
};

/// Computes the triple on one example slice (groups = query ids).
RankingMetrics ComputeRankingMetrics(const std::vector<float>& labels,
                                     const std::vector<float>& scores,
                                     const std::vector<uint32_t>& groups);

/// Head / tail / overall slices of an example set (Table III layout).
struct SlicedMetrics {
  RankingMetrics head;
  RankingMetrics tail;
  RankingMetrics overall;
};

/// is_head_query is indexed by query id; groups double as query ids.
SlicedMetrics ComputeSlicedMetrics(const std::vector<float>& labels,
                                   const std::vector<float>& scores,
                                   const std::vector<uint32_t>& query_ids,
                                   const std::vector<bool>& is_head_query);

}  // namespace garcia::eval

#endif  // GARCIA_EVAL_METRICS_H_
