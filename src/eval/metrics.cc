#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "core/macros.h"

namespace garcia::eval {

double Auc(const std::vector<float>& labels,
           const std::vector<float>& scores) {
  GARCIA_CHECK_EQ(labels.size(), scores.size());
  const size_t n = labels.size();
  size_t num_pos = 0;
  for (float y : labels) num_pos += y > 0.5f;
  const size_t num_neg = n - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;

  // Average ranks with tie handling.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  double pos_rank_sum = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) {
      if (labels[order[k]] > 0.5f) pos_rank_sum += avg_rank;
    }
    i = j + 1;
  }
  return (pos_rank_sum -
          static_cast<double>(num_pos) * (num_pos + 1) / 2.0) /
         (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

namespace {

/// Groups example indices by group id (insertion order preserved per group).
std::unordered_map<uint32_t, std::vector<size_t>> GroupIndices(
    const std::vector<uint32_t>& groups) {
  std::unordered_map<uint32_t, std::vector<size_t>> by_group;
  for (size_t i = 0; i < groups.size(); ++i) {
    by_group[groups[i]].push_back(i);
  }
  return by_group;
}

}  // namespace

double GroupAuc(const std::vector<float>& labels,
                const std::vector<float>& scores,
                const std::vector<uint32_t>& groups) {
  GARCIA_CHECK_EQ(labels.size(), scores.size());
  GARCIA_CHECK_EQ(labels.size(), groups.size());
  auto by_group = GroupIndices(groups);
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (const auto& [gid, idx] : by_group) {
    size_t pos = 0;
    for (size_t i : idx) pos += labels[i] > 0.5f;
    if (pos == 0 || pos == idx.size()) continue;  // undefined AUC
    std::vector<float> l, s;
    l.reserve(idx.size());
    s.reserve(idx.size());
    for (size_t i : idx) {
      l.push_back(labels[i]);
      s.push_back(scores[i]);
    }
    const double w = static_cast<double>(idx.size());
    weighted_sum += w * Auc(l, s);
    weight_total += w;
  }
  return weight_total > 0.0 ? weighted_sum / weight_total : 0.5;
}

double NdcgAtK(const std::vector<float>& labels,
               const std::vector<float>& scores,
               const std::vector<uint32_t>& groups, size_t k) {
  GARCIA_CHECK_EQ(labels.size(), scores.size());
  GARCIA_CHECK_EQ(labels.size(), groups.size());
  GARCIA_CHECK_GT(k, 0u);
  auto by_group = GroupIndices(groups);
  double total = 0.0;
  size_t counted = 0;
  for (const auto& [gid, idx] : by_group) {
    size_t pos = 0;
    for (size_t i : idx) pos += labels[i] > 0.5f;
    if (pos == 0) continue;
    std::vector<size_t> order(idx);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return scores[a] > scores[b]; });
    double dcg = 0.0;
    const size_t depth = std::min(k, order.size());
    for (size_t r = 0; r < depth; ++r) {
      if (labels[order[r]] > 0.5f) dcg += 1.0 / std::log2(r + 2.0);
    }
    double idcg = 0.0;
    const size_t ideal = std::min(pos, depth);
    for (size_t r = 0; r < ideal; ++r) idcg += 1.0 / std::log2(r + 2.0);
    total += dcg / idcg;
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

RankingMetrics ComputeRankingMetrics(const std::vector<float>& labels,
                                     const std::vector<float>& scores,
                                     const std::vector<uint32_t>& groups) {
  RankingMetrics m;
  m.num_examples = labels.size();
  if (labels.empty()) return m;
  m.auc = Auc(labels, scores);
  m.gauc = GroupAuc(labels, scores, groups);
  m.ndcg_at_10 = NdcgAtK(labels, scores, groups, 10);
  return m;
}

SlicedMetrics ComputeSlicedMetrics(const std::vector<float>& labels,
                                   const std::vector<float>& scores,
                                   const std::vector<uint32_t>& query_ids,
                                   const std::vector<bool>& is_head_query) {
  GARCIA_CHECK_EQ(labels.size(), scores.size());
  GARCIA_CHECK_EQ(labels.size(), query_ids.size());
  std::vector<float> hl, hs, tl, ts;
  std::vector<uint32_t> hg, tg;
  for (size_t i = 0; i < labels.size(); ++i) {
    GARCIA_CHECK_LT(query_ids[i], is_head_query.size());
    if (is_head_query[query_ids[i]]) {
      hl.push_back(labels[i]);
      hs.push_back(scores[i]);
      hg.push_back(query_ids[i]);
    } else {
      tl.push_back(labels[i]);
      ts.push_back(scores[i]);
      tg.push_back(query_ids[i]);
    }
  }
  SlicedMetrics out;
  out.head = ComputeRankingMetrics(hl, hs, hg);
  out.tail = ComputeRankingMetrics(tl, ts, tg);
  out.overall = ComputeRankingMetrics(labels, scores, query_ids);
  return out;
}

}  // namespace garcia::eval
