#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "core/rng.h"

namespace garcia::nn {

using core::Matrix;
using internal::TensorNode;

namespace {

/// Parent node i of an op output.
TensorNode* Parent(TensorNode* out, size_t i) { return out->parents[i].get(); }

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.cols(), b.rows());
  Matrix out = Matrix::Matmul(a.value(), b.value());
  return Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* n) {
    TensorNode* pa = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    if (pa->requires_grad) {
      // dA += dC @ B^T
      Matrix::Gemm(false, true, 1.0f, n->grad, pb->value, 1.0f,
                   &pa->EnsureGrad());
    }
    if (pb->requires_grad) {
      // dB += A^T @ dC
      Matrix::Gemm(true, false, 1.0f, pa->value, n->grad, 1.0f,
                   &pb->EnsureGrad());
    }
  });
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  Matrix::Gemm(false, true, 1.0f, a.value(), b.value(), 0.0f, &out);
  return Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* n) {
    TensorNode* pa = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    if (pa->requires_grad) {
      // C = A B^T  =>  dA += dC @ B
      Matrix::Gemm(false, false, 1.0f, n->grad, pb->value, 1.0f,
                   &pa->EnsureGrad());
    }
    if (pb->requires_grad) {
      // dB += dC^T @ A
      Matrix::Gemm(true, false, 1.0f, n->grad, pa->value, 1.0f,
                   &pb->EnsureGrad());
    }
  });
}

Tensor Transpose(const Tensor& x) {
  Matrix out(x.cols(), x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) out.at(j, i) = x.value().at(i, j);
  }
  return Tensor::FromOp(std::move(out), {x}, [](TensorNode* n) {
    TensorNode* p = Parent(n, 0);
    if (!p->requires_grad) return;
    Matrix& g = p->EnsureGrad();
    for (size_t i = 0; i < n->grad.rows(); ++i) {
      for (size_t j = 0; j < n->grad.cols(); ++j) {
        g.at(j, i) += n->grad.at(i, j);
      }
    }
  });
}

Tensor Add(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.rows(), b.rows());
  GARCIA_CHECK_EQ(a.cols(), b.cols());
  Matrix out = a.value();
  out.Add(b.value());
  return Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* n) {
    for (int i = 0; i < 2; ++i) {
      TensorNode* p = Parent(n, i);
      if (p->requires_grad) p->AccumulateGrad(n->grad);
    }
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.rows(), b.rows());
  GARCIA_CHECK_EQ(a.cols(), b.cols());
  Matrix out = a.value();
  out.Sub(b.value());
  return Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* n) {
    TensorNode* pa = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    if (pa->requires_grad) pa->AccumulateGrad(n->grad);
    if (pb->requires_grad) {
      Matrix neg = n->grad;
      neg.Scale(-1.0f);
      pb->AccumulateGrad(neg);
    }
  });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.rows(), b.rows());
  GARCIA_CHECK_EQ(a.cols(), b.cols());
  Matrix out = a.value();
  out.Hadamard(b.value());
  return Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* n) {
    TensorNode* pa = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    if (pa->requires_grad) {
      Matrix g = n->grad;
      g.Hadamard(pb->value);
      pa->AccumulateGrad(g);
    }
    if (pb->requires_grad) {
      Matrix g = n->grad;
      g.Hadamard(pa->value);
      pb->AccumulateGrad(g);
    }
  });
}

Tensor Scale(const Tensor& x, float s) {
  Matrix out = x.value();
  out.Scale(s);
  return Tensor::FromOp(std::move(out), {x}, [s](TensorNode* n) {
    TensorNode* p = Parent(n, 0);
    if (!p->requires_grad) return;
    Matrix g = n->grad;
    g.Scale(s);
    p->AccumulateGrad(g);
  });
}

Tensor AddScalar(const Tensor& x, float c) {
  Matrix out = x.value();
  for (size_t i = 0; i < out.rows(); ++i) {
    for (size_t j = 0; j < out.cols(); ++j) out.at(i, j) += c;
  }
  return Tensor::FromOp(std::move(out), {x}, [](TensorNode* n) {
    TensorNode* p = Parent(n, 0);
    if (p->requires_grad) p->AccumulateGrad(n->grad);
  });
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  GARCIA_CHECK_EQ(bias.rows(), 1u);
  GARCIA_CHECK_EQ(bias.cols(), x.cols());
  Matrix out = x.value();
  for (size_t i = 0; i < out.rows(); ++i) {
    for (size_t j = 0; j < out.cols(); ++j) {
      out.at(i, j) += bias.value().at(0, j);
    }
  }
  return Tensor::FromOp(std::move(out), {x, bias}, [](TensorNode* n) {
    TensorNode* px = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    if (px->requires_grad) px->AccumulateGrad(n->grad);
    if (pb->requires_grad) {
      Matrix& g = pb->EnsureGrad();
      for (size_t i = 0; i < n->grad.rows(); ++i) {
        for (size_t j = 0; j < n->grad.cols(); ++j) {
          g.at(0, j) += n->grad.at(i, j);
        }
      }
    }
  });
}

Tensor MulColBroadcast(const Tensor& x, const Tensor& w) {
  GARCIA_CHECK_EQ(w.cols(), 1u);
  GARCIA_CHECK_EQ(w.rows(), x.rows());
  Matrix out = x.value();
  for (size_t i = 0; i < out.rows(); ++i) {
    const float wi = w.value().at(i, 0);
    for (size_t j = 0; j < out.cols(); ++j) out.at(i, j) *= wi;
  }
  return Tensor::FromOp(std::move(out), {x, w}, [](TensorNode* n) {
    TensorNode* px = Parent(n, 0);
    TensorNode* pw = Parent(n, 1);
    if (px->requires_grad) {
      Matrix g = n->grad;
      for (size_t i = 0; i < g.rows(); ++i) {
        const float wi = pw->value.at(i, 0);
        for (size_t j = 0; j < g.cols(); ++j) g.at(i, j) *= wi;
      }
      px->AccumulateGrad(g);
    }
    if (pw->requires_grad) {
      Matrix& g = pw->EnsureGrad();
      for (size_t i = 0; i < n->grad.rows(); ++i) {
        double acc = 0.0;
        for (size_t j = 0; j < n->grad.cols(); ++j) {
          acc += static_cast<double>(n->grad.at(i, j)) * px->value.at(i, j);
        }
        g.at(i, 0) += static_cast<float>(acc);
      }
    }
  });
}

Tensor Average(const std::vector<Tensor>& xs) {
  GARCIA_CHECK(!xs.empty());
  Matrix out = xs[0].value();
  for (size_t i = 1; i < xs.size(); ++i) {
    GARCIA_CHECK_EQ(xs[i].rows(), out.rows());
    GARCIA_CHECK_EQ(xs[i].cols(), out.cols());
    out.Add(xs[i].value());
  }
  const float inv = 1.0f / static_cast<float>(xs.size());
  out.Scale(inv);
  return Tensor::FromOp(std::move(out), xs, [inv](TensorNode* n) {
    Matrix g = n->grad;
    g.Scale(inv);
    for (auto& p : n->parents) {
      if (p->requires_grad) p->AccumulateGrad(g);
    }
  });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.rows(), b.rows());
  const size_t da = a.cols(), db = b.cols();
  Matrix out(a.rows(), da + db);
  for (size_t i = 0; i < a.rows(); ++i) {
    std::copy(a.value().row(i), a.value().row(i) + da, out.row(i));
    std::copy(b.value().row(i), b.value().row(i) + db, out.row(i) + da);
  }
  return Tensor::FromOp(std::move(out), {a, b}, [da, db](TensorNode* n) {
    TensorNode* pa = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    if (pa->requires_grad) {
      Matrix& g = pa->EnsureGrad();
      for (size_t i = 0; i < g.rows(); ++i) {
        for (size_t j = 0; j < da; ++j) g.at(i, j) += n->grad.at(i, j);
      }
    }
    if (pb->requires_grad) {
      Matrix& g = pb->EnsureGrad();
      for (size_t i = 0; i < g.rows(); ++i) {
        for (size_t j = 0; j < db; ++j) g.at(i, j) += n->grad.at(i, da + j);
      }
    }
  });
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.cols(), b.cols());
  const size_t ra = a.rows(), rb = b.rows();
  Matrix out(ra + rb, a.cols());
  for (size_t i = 0; i < ra; ++i) out.CopyRowFrom(a.value(), i, i);
  for (size_t i = 0; i < rb; ++i) out.CopyRowFrom(b.value(), i, ra + i);
  return Tensor::FromOp(std::move(out), {a, b}, [ra, rb](TensorNode* n) {
    TensorNode* pa = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    const size_t cols = n->grad.cols();
    if (pa->requires_grad) {
      Matrix& g = pa->EnsureGrad();
      for (size_t i = 0; i < ra; ++i) {
        for (size_t j = 0; j < cols; ++j) g.at(i, j) += n->grad.at(i, j);
      }
    }
    if (pb->requires_grad) {
      Matrix& g = pb->EnsureGrad();
      for (size_t i = 0; i < rb; ++i) {
        for (size_t j = 0; j < cols; ++j) g.at(i, j) += n->grad.at(ra + i, j);
      }
    }
  });
}

Tensor GatherRows(const Tensor& x, std::vector<uint32_t> indices) {
  Matrix out(indices.size(), x.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    GARCIA_CHECK_LT(indices[i], x.rows());
    out.CopyRowFrom(x.value(), indices[i], i);
  }
  return Tensor::FromOp(
      std::move(out), {x}, [idx = std::move(indices)](TensorNode* n) {
        TensorNode* p = Parent(n, 0);
        if (!p->requires_grad) return;
        Matrix& g = p->EnsureGrad();
        const size_t cols = n->grad.cols();
        for (size_t i = 0; i < idx.size(); ++i) {
          float* dst = g.row(idx[i]);
          const float* src = n->grad.row(i);
          for (size_t j = 0; j < cols; ++j) dst[j] += src[j];
        }
      });
}

namespace {

template <typename Fwd, typename Bwd>
Tensor ElementwiseOp(const Tensor& x, Fwd fwd, Bwd bwd_from_in_out) {
  Matrix out = x.value();
  for (size_t i = 0; i < out.rows(); ++i) {
    for (size_t j = 0; j < out.cols(); ++j) out.at(i, j) = fwd(out.at(i, j));
  }
  return Tensor::FromOp(std::move(out), {x},
                        [bwd_from_in_out](TensorNode* n) {
                          TensorNode* p = Parent(n, 0);
                          if (!p->requires_grad) return;
                          Matrix g = n->grad;
                          for (size_t i = 0; i < g.rows(); ++i) {
                            for (size_t j = 0; j < g.cols(); ++j) {
                              g.at(i, j) *= bwd_from_in_out(p->value.at(i, j),
                                                            n->value.at(i, j));
                            }
                          }
                          p->AccumulateGrad(g);
                        });
}

}  // namespace

Tensor Tanh(const Tensor& x) {
  return ElementwiseOp(
      x, [](float v) { return std::tanh(v); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Relu(const Tensor& x) {
  return ElementwiseOp(
      x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float in, float) { return in > 0.0f ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& x, float slope) {
  return ElementwiseOp(
      x, [slope](float v) { return v > 0.0f ? v : slope * v; },
      [slope](float in, float) { return in > 0.0f ? 1.0f : slope; });
}

Tensor Sigmoid(const Tensor& x) {
  return ElementwiseOp(
      x,
      [](float v) {
        return v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                         : std::exp(v) / (1.0f + std::exp(v));
      },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor L2NormalizeRows(const Tensor& x, float eps) {
  const size_t n = x.rows(), d = x.cols();
  Matrix out(n, d);
  std::vector<float> norms(n);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    const float* r = x.value().row(i);
    for (size_t j = 0; j < d; ++j) s += static_cast<double>(r[j]) * r[j];
    const float norm = static_cast<float>(std::sqrt(s));
    norms[i] = std::max(norm, eps);
    const float inv = norm > eps ? 1.0f / norm : 0.0f;
    // Zero rows (norm <= eps) map to zero rows.
    for (size_t j = 0; j < d; ++j) out.at(i, j) = r[j] * inv;
  }
  return Tensor::FromOp(
      std::move(out), {x}, [norms = std::move(norms), eps](TensorNode* n) {
        TensorNode* p = Parent(n, 0);
        if (!p->requires_grad) return;
        Matrix& g = p->EnsureGrad();
        const size_t d = n->value.cols();
        for (size_t i = 0; i < n->value.rows(); ++i) {
          if (norms[i] <= eps) continue;  // zero row: zero gradient
          const float* y = n->value.row(i);
          const float* dy = n->grad.row(i);
          double dot = 0.0;
          for (size_t j = 0; j < d; ++j) dot += static_cast<double>(dy[j]) * y[j];
          const float inv = 1.0f / norms[i];
          float* gi = g.row(i);
          for (size_t j = 0; j < d; ++j) {
            gi[j] += (dy[j] - static_cast<float>(dot) * y[j]) * inv;
          }
        }
      });
}

Tensor SoftmaxRows(const Tensor& x) {
  Matrix out = x.value();
  for (size_t i = 0; i < out.rows(); ++i) {
    float* r = out.row(i);
    float mx = r[0];
    for (size_t j = 1; j < out.cols(); ++j) mx = std::max(mx, r[j]);
    double sum = 0.0;
    for (size_t j = 0; j < out.cols(); ++j) {
      r[j] = std::exp(r[j] - mx);
      sum += r[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (size_t j = 0; j < out.cols(); ++j) r[j] *= inv;
  }
  return Tensor::FromOp(std::move(out), {x}, [](TensorNode* n) {
    TensorNode* p = Parent(n, 0);
    if (!p->requires_grad) return;
    Matrix& g = p->EnsureGrad();
    for (size_t i = 0; i < n->value.rows(); ++i) {
      const float* y = n->value.row(i);
      const float* dy = n->grad.row(i);
      double dot = 0.0;
      for (size_t j = 0; j < n->value.cols(); ++j) {
        dot += static_cast<double>(dy[j]) * y[j];
      }
      float* gi = g.row(i);
      for (size_t j = 0; j < n->value.cols(); ++j) {
        gi[j] += y[j] * (dy[j] - static_cast<float>(dot));
      }
    }
  });
}

Tensor SumAll(const Tensor& x) {
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(x.value().Sum());
  return Tensor::FromOp(std::move(out), {x}, [](TensorNode* n) {
    TensorNode* p = Parent(n, 0);
    if (!p->requires_grad) return;
    Matrix g(p->value.rows(), p->value.cols(), n->grad.at(0, 0));
    p->AccumulateGrad(g);
  });
}

Tensor MeanAll(const Tensor& x) {
  GARCIA_CHECK_GT(x.value().size(), 0u);
  const float inv = 1.0f / static_cast<float>(x.value().size());
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(x.value().Sum()) * inv;
  return Tensor::FromOp(std::move(out), {x}, [inv](TensorNode* n) {
    TensorNode* p = Parent(n, 0);
    if (!p->requires_grad) return;
    Matrix g(p->value.rows(), p->value.cols(), n->grad.at(0, 0) * inv);
    p->AccumulateGrad(g);
  });
}

Tensor RowDot(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.rows(), b.rows());
  GARCIA_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), 1);
  for (size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    const float* ra = a.value().row(i);
    const float* rb = b.value().row(i);
    for (size_t j = 0; j < a.cols(); ++j) s += static_cast<double>(ra[j]) * rb[j];
    out.at(i, 0) = static_cast<float>(s);
  }
  return Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* n) {
    TensorNode* pa = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    const size_t d = pa->value.cols();
    if (pa->requires_grad) {
      Matrix& g = pa->EnsureGrad();
      for (size_t i = 0; i < n->grad.rows(); ++i) {
        const float gi = n->grad.at(i, 0);
        const float* rb = pb->value.row(i);
        float* gr = g.row(i);
        for (size_t j = 0; j < d; ++j) gr[j] += gi * rb[j];
      }
    }
    if (pb->requires_grad) {
      Matrix& g = pb->EnsureGrad();
      for (size_t i = 0; i < n->grad.rows(); ++i) {
        const float gi = n->grad.at(i, 0);
        const float* ra = pa->value.row(i);
        float* gr = g.row(i);
        for (size_t j = 0; j < d; ++j) gr[j] += gi * ra[j];
      }
    }
  });
}

Tensor Dropout(const Tensor& x, float p, core::Rng* rng) {
  GARCIA_CHECK_GE(p, 0.0f);
  GARCIA_CHECK_LT(p, 1.0f);
  if (p == 0.0f) return Scale(x, 1.0f);
  const float inv_keep = 1.0f / (1.0f - p);
  Matrix mask(x.rows(), x.cols());
  for (size_t i = 0; i < mask.rows(); ++i) {
    for (size_t j = 0; j < mask.cols(); ++j) {
      mask.at(i, j) = rng->Bernoulli(1.0 - p) ? inv_keep : 0.0f;
    }
  }
  Matrix out = x.value();
  out.Hadamard(mask);
  return Tensor::FromOp(std::move(out), {x},
                        [mask = std::move(mask)](TensorNode* n) {
                          TensorNode* p0 = Parent(n, 0);
                          if (!p0->requires_grad) return;
                          Matrix g = n->grad;
                          g.Hadamard(mask);
                          p0->AccumulateGrad(g);
                        });
}

Tensor SegmentSum(const Tensor& x, std::vector<uint32_t> seg,
                  size_t num_segments) {
  GARCIA_CHECK_EQ(seg.size(), x.rows());
  Matrix out(num_segments, x.cols());
  for (size_t e = 0; e < seg.size(); ++e) {
    GARCIA_CHECK_LT(seg[e], num_segments);
    float* dst = out.row(seg[e]);
    const float* src = x.value().row(e);
    for (size_t j = 0; j < x.cols(); ++j) dst[j] += src[j];
  }
  return Tensor::FromOp(std::move(out), {x},
                        [seg = std::move(seg)](TensorNode* n) {
                          TensorNode* p = Parent(n, 0);
                          if (!p->requires_grad) return;
                          Matrix& g = p->EnsureGrad();
                          const size_t cols = g.cols();
                          for (size_t e = 0; e < seg.size(); ++e) {
                            const float* src = n->grad.row(seg[e]);
                            float* dst = g.row(e);
                            for (size_t j = 0; j < cols; ++j) dst[j] += src[j];
                          }
                        });
}

Tensor SegmentSoftmax(const Tensor& scores, std::vector<uint32_t> seg,
                      size_t num_segments) {
  GARCIA_CHECK_EQ(scores.cols(), 1u);
  GARCIA_CHECK_EQ(seg.size(), scores.rows());
  const size_t e_count = seg.size();
  std::vector<float> seg_max(num_segments, -1e30f);
  for (size_t e = 0; e < e_count; ++e) {
    GARCIA_CHECK_LT(seg[e], num_segments);
    seg_max[seg[e]] = std::max(seg_max[seg[e]], scores.value().at(e, 0));
  }
  std::vector<double> seg_sum(num_segments, 0.0);
  Matrix out(e_count, 1);
  for (size_t e = 0; e < e_count; ++e) {
    out.at(e, 0) = std::exp(scores.value().at(e, 0) - seg_max[seg[e]]);
    seg_sum[seg[e]] += out.at(e, 0);
  }
  for (size_t e = 0; e < e_count; ++e) {
    out.at(e, 0) = static_cast<float>(out.at(e, 0) / seg_sum[seg[e]]);
  }
  const size_t ns = num_segments;
  return Tensor::FromOp(
      std::move(out), {scores}, [seg = std::move(seg), ns](TensorNode* n) {
        TensorNode* p = Parent(n, 0);
        if (!p->requires_grad) return;
        // dscore_e = α_e (dα_e − Σ_{e' in same segment} dα_{e'} α_{e'})
        std::vector<double> seg_dot(ns, 0.0);
        for (size_t e = 0; e < seg.size(); ++e) {
          seg_dot[seg[e]] += static_cast<double>(n->grad.at(e, 0)) *
                             n->value.at(e, 0);
        }
        Matrix& g = p->EnsureGrad();
        for (size_t e = 0; e < seg.size(); ++e) {
          g.at(e, 0) += n->value.at(e, 0) *
                        (n->grad.at(e, 0) -
                         static_cast<float>(seg_dot[seg[e]]));
        }
      });
}

}  // namespace garcia::nn
