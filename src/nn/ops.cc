#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "core/kernels.h"
#include "core/rng.h"
#include "nn/exec.h"
#include "nn/op_graph.h"

namespace garcia::nn {

using core::Matrix;
using internal::TensorNode;

namespace kernels = core::kernels;
namespace fused = core::kernels::fused;

namespace {

/// Parent node i of an op output.
TensorNode* Parent(TensorNode* out, size_t i) { return out->parents[i].get(); }

using internal::CaptureEnabled;  // fusion-mode lazy capture (nn/op_graph.h)
using internal::Exec;            // shared context lookup (nn/exec.h)

/// Tags an eager op output for OpGraph::DumpDot.
Tensor Named(Tensor t, const char* name) {
  t.node()->op_name = name;
  return t;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.cols(), b.rows());
  Matrix out = Matrix::Matmul(a.value(), b.value());
  return Named(Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* n) {
    TensorNode* pa = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    if (pa->requires_grad) {
      // dA += dC @ B^T
      Matrix::Gemm(false, true, 1.0f, n->grad, pb->value, 1.0f,
                   &pa->EnsureGrad());
    }
    if (pb->requires_grad) {
      // dB += A^T @ dC. m = A's column count (often a small hidden dim);
      // the kernel's 2-D tile grid still parallelizes this over columns
      // and refined row blocks rather than collapsing onto row shards.
      Matrix::Gemm(true, false, 1.0f, pa->value, n->grad, 1.0f,
                   &pb->EnsureGrad());
    }
  }), "matmul");
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  Matrix::Gemm(false, true, 1.0f, a.value(), b.value(), 0.0f, &out);
  return Named(Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* n) {
    TensorNode* pa = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    if (pa->requires_grad) {
      // C = A B^T  =>  dA += dC @ B
      Matrix::Gemm(false, false, 1.0f, n->grad, pb->value, 1.0f,
                   &pa->EnsureGrad());
    }
    if (pb->requires_grad) {
      // dB += dC^T @ A
      Matrix::Gemm(true, false, 1.0f, n->grad, pa->value, 1.0f,
                   &pb->EnsureGrad());
    }
  }), "matmul_nt");
}

Tensor Transpose(const Tensor& x) {
  Matrix out(x.cols(), x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) out.at(j, i) = x.value().at(i, j);
  }
  return Tensor::FromOp(std::move(out), {x}, [](TensorNode* n) {
    TensorNode* p = Parent(n, 0);
    if (!p->requires_grad) return;
    Matrix& g = p->EnsureGrad();
    for (size_t i = 0; i < n->grad.rows(); ++i) {
      for (size_t j = 0; j < n->grad.cols(); ++j) {
        g.at(j, i) += n->grad.at(i, j);
      }
    }
  });
}

Tensor Add(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.rows(), b.rows());
  GARCIA_CHECK_EQ(a.cols(), b.cols());
  if (CaptureEnabled()) {
    return internal::RecordBinary(fused::EltOp::kAdd, "add", a, b);
  }
  Matrix out = a.value();
  out.Add(b.value());
  return Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* n) {
    for (int i = 0; i < 2; ++i) {
      TensorNode* p = Parent(n, i);
      if (p->requires_grad) p->AccumulateGrad(n->grad);
    }
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.rows(), b.rows());
  GARCIA_CHECK_EQ(a.cols(), b.cols());
  if (CaptureEnabled()) {
    return internal::RecordBinary(fused::EltOp::kSub, "sub", a, b);
  }
  Matrix out = a.value();
  out.Sub(b.value());
  return Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* n) {
    TensorNode* pa = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    if (pa->requires_grad) pa->AccumulateGrad(n->grad);
    if (pb->requires_grad) {
      Matrix neg = n->grad;
      neg.Scale(-1.0f);
      pb->AccumulateGrad(neg);
    }
  });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.rows(), b.rows());
  GARCIA_CHECK_EQ(a.cols(), b.cols());
  if (CaptureEnabled()) {
    return internal::RecordBinary(fused::EltOp::kMul, "mul", a, b);
  }
  Matrix out = a.value();
  out.Hadamard(b.value());
  return Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* n) {
    TensorNode* pa = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    if (pa->requires_grad) {
      Matrix g = n->grad;
      g.Hadamard(pb->value);
      pa->AccumulateGrad(g);
    }
    if (pb->requires_grad) {
      Matrix g = n->grad;
      g.Hadamard(pa->value);
      pb->AccumulateGrad(g);
    }
  });
}

Tensor Scale(const Tensor& x, float s) {
  if (CaptureEnabled()) {
    return internal::RecordUnary(fused::EltOp::kScale, "scale", x, s);
  }
  Matrix out = x.value();
  out.Scale(s);
  return Tensor::FromOp(std::move(out), {x}, [s](TensorNode* n) {
    TensorNode* p = Parent(n, 0);
    if (!p->requires_grad) return;
    Matrix g = n->grad;
    g.Scale(s);
    p->AccumulateGrad(g);
  });
}

Tensor AddScalar(const Tensor& x, float c) {
  if (CaptureEnabled()) {
    return internal::RecordUnary(fused::EltOp::kAddScalar, "add_scalar", x, c);
  }
  Matrix out = x.value();
  for (size_t i = 0; i < out.rows(); ++i) {
    for (size_t j = 0; j < out.cols(); ++j) out.at(i, j) += c;
  }
  return Tensor::FromOp(std::move(out), {x}, [](TensorNode* n) {
    TensorNode* p = Parent(n, 0);
    if (p->requires_grad) p->AccumulateGrad(n->grad);
  });
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  GARCIA_CHECK_EQ(bias.rows(), 1u);
  GARCIA_CHECK_EQ(bias.cols(), x.cols());
  Matrix out = x.value();
  for (size_t i = 0; i < out.rows(); ++i) {
    for (size_t j = 0; j < out.cols(); ++j) {
      out.at(i, j) += bias.value().at(0, j);
    }
  }
  return Tensor::FromOp(std::move(out), {x, bias}, [](TensorNode* n) {
    TensorNode* px = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    if (px->requires_grad) px->AccumulateGrad(n->grad);
    if (pb->requires_grad) {
      Matrix& g = pb->EnsureGrad();
      for (size_t i = 0; i < n->grad.rows(); ++i) {
        for (size_t j = 0; j < n->grad.cols(); ++j) {
          g.at(0, j) += n->grad.at(i, j);
        }
      }
    }
  });
}

Tensor MulColBroadcast(const Tensor& x, const Tensor& w) {
  GARCIA_CHECK_EQ(w.cols(), 1u);
  GARCIA_CHECK_EQ(w.rows(), x.rows());
  Matrix out = x.value();
  kernels::ScaleRowsInPlace(Exec(), &out, w.value());
  return Tensor::FromOp(std::move(out), {x, w}, [](TensorNode* n) {
    TensorNode* px = Parent(n, 0);
    TensorNode* pw = Parent(n, 1);
    if (px->requires_grad) {
      Matrix g = n->grad;
      kernels::ScaleRowsInPlace(Exec(), &g, pw->value);
      px->AccumulateGrad(g);
    }
    if (pw->requires_grad) {
      kernels::RowDotAdd(Exec(), n->grad, px->value, &pw->EnsureGrad());
    }
  });
}

Tensor Average(const std::vector<Tensor>& xs) {
  GARCIA_CHECK(!xs.empty());
  Matrix out = xs[0].value();
  for (size_t i = 1; i < xs.size(); ++i) {
    GARCIA_CHECK_EQ(xs[i].rows(), out.rows());
    GARCIA_CHECK_EQ(xs[i].cols(), out.cols());
    out.Add(xs[i].value());
  }
  const float inv = 1.0f / static_cast<float>(xs.size());
  out.Scale(inv);
  return Tensor::FromOp(std::move(out), xs, [inv](TensorNode* n) {
    Matrix g = n->grad;
    g.Scale(inv);
    for (auto& p : n->parents) {
      if (p->requires_grad) p->AccumulateGrad(g);
    }
  });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.rows(), b.rows());
  const size_t da = a.cols(), db = b.cols();
  Matrix out(a.rows(), da + db);
  for (size_t i = 0; i < a.rows(); ++i) {
    std::copy(a.value().row(i), a.value().row(i) + da, out.row(i));
    std::copy(b.value().row(i), b.value().row(i) + db, out.row(i) + da);
  }
  return Tensor::FromOp(std::move(out), {a, b}, [da, db](TensorNode* n) {
    TensorNode* pa = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    if (pa->requires_grad) {
      Matrix& g = pa->EnsureGrad();
      for (size_t i = 0; i < g.rows(); ++i) {
        for (size_t j = 0; j < da; ++j) g.at(i, j) += n->grad.at(i, j);
      }
    }
    if (pb->requires_grad) {
      Matrix& g = pb->EnsureGrad();
      for (size_t i = 0; i < g.rows(); ++i) {
        for (size_t j = 0; j < db; ++j) g.at(i, j) += n->grad.at(i, da + j);
      }
    }
  });
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.cols(), b.cols());
  const size_t ra = a.rows(), rb = b.rows();
  Matrix out(ra + rb, a.cols());
  for (size_t i = 0; i < ra; ++i) out.CopyRowFrom(a.value(), i, i);
  for (size_t i = 0; i < rb; ++i) out.CopyRowFrom(b.value(), i, ra + i);
  return Tensor::FromOp(std::move(out), {a, b}, [ra, rb](TensorNode* n) {
    TensorNode* pa = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    const size_t cols = n->grad.cols();
    if (pa->requires_grad) {
      Matrix& g = pa->EnsureGrad();
      for (size_t i = 0; i < ra; ++i) {
        for (size_t j = 0; j < cols; ++j) g.at(i, j) += n->grad.at(i, j);
      }
    }
    if (pb->requires_grad) {
      Matrix& g = pb->EnsureGrad();
      for (size_t i = 0; i < rb; ++i) {
        for (size_t j = 0; j < cols; ++j) g.at(i, j) += n->grad.at(ra + i, j);
      }
    }
  });
}

Tensor GatherRows(const Tensor& x, std::vector<uint32_t> indices) {
  Matrix out(indices.size(), x.cols());
  kernels::GatherRows(Exec(), x.value(), indices, &out);
  return Named(
      Tensor::FromOp(std::move(out), {x},
                     [idx = std::move(indices)](TensorNode* n) {
                       TensorNode* p = Parent(n, 0);
                       if (!p->requires_grad) return;
                       // Scatter-add adjoint: sharded by destination row, so
                       // the parallel backend accumulates repeated indices in
                       // the serial order.
                       kernels::ScatterAddRows(Exec(), n->grad, idx,
                                               &p->EnsureGrad());
                     }),
      "gather_rows");
}

namespace {

/// Shared body of the four activations: forward and backward both dispatch
/// through the elementwise kernels of the execution layer; under fusion
/// they record into the lazy op graph instead.
Tensor UnaryEltwise(const Tensor& x, kernels::UnaryOp op, float slope) {
  if (CaptureEnabled()) {
    switch (op) {
      case kernels::UnaryOp::kRelu:
        return internal::RecordUnary(fused::EltOp::kRelu, "relu", x);
      case kernels::UnaryOp::kTanh:
        return internal::RecordUnary(fused::EltOp::kTanh, "tanh", x);
      case kernels::UnaryOp::kLeakyRelu:
        return internal::RecordUnary(fused::EltOp::kLeakyRelu, "leaky_relu", x,
                                     slope);
      case kernels::UnaryOp::kSigmoid:
        return internal::RecordUnary(fused::EltOp::kSigmoid, "sigmoid", x);
    }
  }
  Matrix out(x.rows(), x.cols());
  kernels::UnaryForward(Exec(), op, slope, x.value().data(), out.data(),
                        out.size());
  return Tensor::FromOp(std::move(out), {x}, [op, slope](TensorNode* n) {
    TensorNode* p = Parent(n, 0);
    if (!p->requires_grad) return;
    Matrix& g = p->EnsureGrad();
    kernels::UnaryBackwardAdd(Exec(), op, slope, p->value.data(),
                              n->value.data(), n->grad.data(), g.data(),
                              g.size());
  });
}

}  // namespace

Tensor Tanh(const Tensor& x) {
  return UnaryEltwise(x, kernels::UnaryOp::kTanh, 0.0f);
}

Tensor Relu(const Tensor& x) {
  return UnaryEltwise(x, kernels::UnaryOp::kRelu, 0.0f);
}

Tensor LeakyRelu(const Tensor& x, float slope) {
  return UnaryEltwise(x, kernels::UnaryOp::kLeakyRelu, slope);
}

Tensor Sigmoid(const Tensor& x) {
  return UnaryEltwise(x, kernels::UnaryOp::kSigmoid, 0.0f);
}

Tensor L2NormalizeRows(const Tensor& x, float eps) {
  // A pending captured input fuses the chain into the normalize pass.
  if (CaptureEnabled() && internal::FusiblePending(x)) {
    return internal::FusedL2NormalizeRows(x, eps);
  }
  Matrix out(x.rows(), x.cols());
  std::vector<float> norms;
  kernels::L2NormalizeRows(Exec(), x.value(), eps, &out, &norms);
  return Named(
      Tensor::FromOp(std::move(out), {x},
                     [norms = std::move(norms), eps](TensorNode* n) {
                       TensorNode* p = Parent(n, 0);
                       if (!p->requires_grad) return;
                       kernels::L2NormalizeRowsBackwardAdd(
                           Exec(), n->value, n->grad, norms, eps,
                           &p->EnsureGrad());
                     }),
      "l2normalize");
}

Tensor SoftmaxRows(const Tensor& x) {
  if (CaptureEnabled() && internal::FusiblePending(x)) {
    return internal::FusedSoftmaxRows(x);
  }
  Matrix out = x.value();
  kernels::SoftmaxRows(Exec(), &out);
  return Named(Tensor::FromOp(std::move(out), {x},
                              [](TensorNode* n) {
                                TensorNode* p = Parent(n, 0);
                                if (!p->requires_grad) return;
                                kernels::SoftmaxRowsBackwardAdd(
                                    Exec(), n->value, n->grad,
                                    &p->EnsureGrad());
                              }),
               "softmax");
}

Tensor SumAll(const Tensor& x) {
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(x.value().Sum());
  return Tensor::FromOp(std::move(out), {x}, [](TensorNode* n) {
    TensorNode* p = Parent(n, 0);
    if (!p->requires_grad) return;
    Matrix g(p->value.rows(), p->value.cols(), n->grad.at(0, 0));
    p->AccumulateGrad(g);
  });
}

Tensor MeanAll(const Tensor& x) {
  GARCIA_CHECK_GT(x.value().size(), 0u);
  const float inv = 1.0f / static_cast<float>(x.value().size());
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(x.value().Sum()) * inv;
  return Tensor::FromOp(std::move(out), {x}, [inv](TensorNode* n) {
    TensorNode* p = Parent(n, 0);
    if (!p->requires_grad) return;
    Matrix g(p->value.rows(), p->value.cols(), n->grad.at(0, 0) * inv);
    p->AccumulateGrad(g);
  });
}

Tensor RowDot(const Tensor& a, const Tensor& b) {
  GARCIA_CHECK_EQ(a.rows(), b.rows());
  GARCIA_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), 1);
  for (size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    const float* ra = a.value().row(i);
    const float* rb = b.value().row(i);
    for (size_t j = 0; j < a.cols(); ++j) s += static_cast<double>(ra[j]) * rb[j];
    out.at(i, 0) = static_cast<float>(s);
  }
  return Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* n) {
    TensorNode* pa = Parent(n, 0);
    TensorNode* pb = Parent(n, 1);
    const size_t d = pa->value.cols();
    if (pa->requires_grad) {
      Matrix& g = pa->EnsureGrad();
      for (size_t i = 0; i < n->grad.rows(); ++i) {
        const float gi = n->grad.at(i, 0);
        const float* rb = pb->value.row(i);
        float* gr = g.row(i);
        for (size_t j = 0; j < d; ++j) gr[j] += gi * rb[j];
      }
    }
    if (pb->requires_grad) {
      Matrix& g = pb->EnsureGrad();
      for (size_t i = 0; i < n->grad.rows(); ++i) {
        const float gi = n->grad.at(i, 0);
        const float* ra = pa->value.row(i);
        float* gr = g.row(i);
        for (size_t j = 0; j < d; ++j) gr[j] += gi * ra[j];
      }
    }
  });
}

Tensor Dropout(const Tensor& x, float p, core::Rng* rng) {
  GARCIA_CHECK_GE(p, 0.0f);
  GARCIA_CHECK_LT(p, 1.0f);
  if (p == 0.0f) return Scale(x, 1.0f);
  const float inv_keep = 1.0f / (1.0f - p);
  Matrix mask(x.rows(), x.cols());
  for (size_t i = 0; i < mask.rows(); ++i) {
    for (size_t j = 0; j < mask.cols(); ++j) {
      mask.at(i, j) = rng->Bernoulli(1.0 - p) ? inv_keep : 0.0f;
    }
  }
  Matrix out = x.value();
  out.Hadamard(mask);
  return Tensor::FromOp(std::move(out), {x},
                        [mask = std::move(mask)](TensorNode* n) {
                          TensorNode* p0 = Parent(n, 0);
                          if (!p0->requires_grad) return;
                          Matrix g = n->grad;
                          g.Hadamard(mask);
                          p0->AccumulateGrad(g);
                        });
}

Tensor SegmentSum(const Tensor& x, std::vector<uint32_t> seg,
                  size_t num_segments) {
  GARCIA_CHECK_EQ(seg.size(), x.rows());
  Matrix out(num_segments, x.cols());
  kernels::SegmentSum(Exec(), x.value(), seg, num_segments, &out);
  return Named(Tensor::FromOp(std::move(out), {x},
                              [seg = std::move(seg)](TensorNode* n) {
                                TensorNode* p = Parent(n, 0);
                                if (!p->requires_grad) return;
                                // Adjoint of segment-sum is a row gather: row
                                // e of dx reads row seg[e] of the upstream
                                // gradient.
                                kernels::GatherAddRows(Exec(), n->grad, seg,
                                                       &p->EnsureGrad());
                              }),
               "segment_sum");
}

Tensor SegmentSoftmax(const Tensor& scores, std::vector<uint32_t> seg,
                      size_t num_segments) {
  GARCIA_CHECK_EQ(scores.cols(), 1u);
  GARCIA_CHECK_EQ(seg.size(), scores.rows());
  if (CaptureEnabled() && internal::FusiblePending(scores)) {
    return internal::FusedSegmentSoftmax(scores, std::move(seg), num_segments);
  }
  Matrix out(seg.size(), 1);
  kernels::SegmentSoftmax(Exec(), scores.value(), seg, num_segments, &out);
  const size_t ns = num_segments;
  return Named(
      Tensor::FromOp(std::move(out), {scores},
                     [seg = std::move(seg), ns](TensorNode* n) {
                       TensorNode* p = Parent(n, 0);
                       if (!p->requires_grad) return;
                       // dscore_e = α_e (dα_e − Σ_{e' in same segment}
                       // dα_{e'} α_{e'})
                       kernels::SegmentSoftmaxBackwardAdd(
                           Exec(), n->value, n->grad, seg, ns,
                           &p->EnsureGrad());
                     }),
      "segment_softmax");
}

}  // namespace garcia::nn
