// Copyright (c) 2026 GARCIA reproduction authors.
// Tape-based reverse-mode automatic differentiation.
//
// A Tensor is a value-semantics handle to a node in a dynamically built
// computation graph. Ops (see nn/ops.h) create new nodes whose backward
// closures accumulate gradients into their parents. Calling Backward() on a
// scalar node runs reverse topological order over the reachable graph.
//
// Matches the training loop shape of PyTorch: leaf parameters persist across
// steps, intermediate nodes are released when the last handle drops, and the
// optimizer zeroes parameter gradients between steps.

#ifndef GARCIA_NN_TENSOR_H_
#define GARCIA_NN_TENSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/matrix.h"

namespace garcia::nn {

class Tensor;

namespace internal {

/// One node of the autograd tape.
struct TensorNode {
  core::Matrix value;
  core::Matrix grad;  // allocated on first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorNode>> parents;
  /// Propagates this node's grad into parents' grads. Null for leaves.
  std::function<void(TensorNode*)> backward_fn;

  bool has_grad() const { return !grad.empty(); }
  /// Returns grad, allocating zeros of value's shape on first use.
  core::Matrix& EnsureGrad();
  /// grad += g (allocating if needed).
  void AccumulateGrad(const core::Matrix& g);
};

}  // namespace internal

/// Handle to an autograd node. Copy is cheap (shared ownership).
class Tensor {
 public:
  /// Null handle; defined() is false.
  Tensor() = default;

  /// Leaf node. requires_grad marks it as a trainable parameter.
  static Tensor Leaf(core::Matrix value, bool requires_grad = false);

  /// Constant leaf (never receives gradient).
  static Tensor Constant(core::Matrix value) { return Leaf(std::move(value), false); }

  /// Internal: creates an op output node.
  static Tensor FromOp(core::Matrix value,
                       std::vector<Tensor> parents,
                       std::function<void(internal::TensorNode*)> backward_fn);

  bool defined() const { return node_ != nullptr; }
  size_t rows() const { return node()->value.rows(); }
  size_t cols() const { return node()->value.cols(); }

  const core::Matrix& value() const { return node()->value; }
  core::Matrix& mutable_value() { return node()->value; }

  bool requires_grad() const { return node()->requires_grad; }
  /// Gradient matrix; CHECK-fails if no gradient has been accumulated yet.
  const core::Matrix& grad() const;
  bool has_grad() const { return node()->has_grad(); }
  /// Zeroes (keeps allocation) or drops the gradient.
  void ZeroGrad();

  /// Runs reverse-mode AD from this node, which must be a 1x1 scalar.
  /// Gradients accumulate into every reachable node with requires_grad or
  /// with grad-requiring ancestors.
  void Backward();

  /// Scalar convenience: value of a 1x1 tensor.
  float scalar() const;

  /// Stable identity for maps/sets.
  const void* id() const { return node_.get(); }

  internal::TensorNode* node() const {
    GARCIA_CHECK(node_ != nullptr) << "use of undefined Tensor";
    return node_.get();
  }
  const std::shared_ptr<internal::TensorNode>& shared_node() const { return node_; }

 private:
  explicit Tensor(std::shared_ptr<internal::TensorNode> node)
      : node_(std::move(node)) {}

  std::shared_ptr<internal::TensorNode> node_;
};

}  // namespace garcia::nn

#endif  // GARCIA_NN_TENSOR_H_
