// Copyright (c) 2026 GARCIA reproduction authors.
// Tape-based reverse-mode automatic differentiation.
//
// A Tensor is a value-semantics handle to a node in a dynamically built
// computation graph. Ops (see nn/ops.h) create new nodes whose backward
// closures accumulate gradients into their parents. Calling Backward() on a
// scalar node runs reverse topological order over the reachable graph.
//
// Matches the training loop shape of PyTorch: leaf parameters persist across
// steps, intermediate nodes are released when the last handle drops, and the
// optimizer zeroes parameter gradients between steps.
//
// Lazy capture: when the current ExecutionContext has fusion enabled,
// elementwise ops do not compute their value at construction. They attach
// an OpRecord (nn/op_graph.h) to the node and leave `value` empty until a
// reduction head, a non-elementwise consumer, or an explicit value() read
// forces the pending chain — at which point the fusion pass linearizes it
// and runs one fused kernel pass (bit-identical to eager execution). The
// logical shape of a pending node lives in lazy_rows/lazy_cols so shape
// checks work without materializing.

#ifndef GARCIA_NN_TENSOR_H_
#define GARCIA_NN_TENSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/matrix.h"

namespace garcia::nn {

class Tensor;

namespace internal {

struct OpRecord;  // lazy-capture record, defined in nn/op_graph.h

/// One node of the autograd tape.
struct TensorNode {
  TensorNode();
  ~TensorNode();  // out of line: OpRecord is incomplete here

  core::Matrix value;
  core::Matrix grad;  // allocated on first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorNode>> parents;
  /// Propagates this node's grad into parents' grads. Null for leaves.
  /// Captured nodes receive theirs at flush time (nn/op_graph.cc).
  std::function<void(TensorNode*)> backward_fn;

  // ----- Lazy capture (nn/op_graph.h) -----
  /// Pending/captured elementwise op; null for eager nodes and leaves.
  std::unique_ptr<OpRecord> lazy;
  /// False while a captured node's value has not been computed yet; value
  /// is empty exactly then and the logical shape lives below.
  bool materialized = true;
  /// Marks a backward_fn that applies fused-plan contributions: Backward()
  /// must fire it even when no gradient was accumulated into this node
  /// (the chain gradient flows through registers, not through `grad`).
  bool fused_backward = false;
  size_t lazy_rows = 0;
  size_t lazy_cols = 0;
  /// Opcode label for OpGraph::DumpDot; static storage only.
  const char* op_name = nullptr;

  /// Shape regardless of materialization state.
  size_t logical_rows() const { return materialized ? value.rows() : lazy_rows; }
  size_t logical_cols() const { return materialized ? value.cols() : lazy_cols; }

  bool has_grad() const { return !grad.empty(); }
  /// Returns grad, allocating zeros of the logical shape on first use.
  core::Matrix& EnsureGrad();
  /// grad += g (allocating if needed).
  void AccumulateGrad(const core::Matrix& g);
};

/// Forces a pending captured node: linearizes its producer chain, runs one
/// fused kernel pass and installs the plan-based backward closures. No-op
/// for materialized nodes. Defined in nn/op_graph.cc.
void EnsureMaterialized(TensorNode* node);

}  // namespace internal

/// Handle to an autograd node. Copy is cheap (shared ownership).
class Tensor {
 public:
  /// Null handle; defined() is false.
  Tensor() = default;

  /// Leaf node. requires_grad marks it as a trainable parameter.
  static Tensor Leaf(core::Matrix value, bool requires_grad = false);

  /// Constant leaf (never receives gradient).
  static Tensor Constant(core::Matrix value) { return Leaf(std::move(value), false); }

  /// Internal: creates an op output node.
  static Tensor FromOp(core::Matrix value,
                       std::vector<Tensor> parents,
                       std::function<void(internal::TensorNode*)> backward_fn);

  /// Internal (lazy capture): wraps a node built by nn/op_graph.cc.
  static Tensor FromNode(std::shared_ptr<internal::TensorNode> node) {
    return Tensor(std::move(node));
  }

  bool defined() const { return node_ != nullptr; }
  size_t rows() const { return node()->logical_rows(); }
  size_t cols() const { return node()->logical_cols(); }

  /// The node's value; forces a pending captured chain first, so callers
  /// always see a materialized matrix.
  const core::Matrix& value() const {
    internal::TensorNode* n = node();
    if (!n->materialized) internal::EnsureMaterialized(n);
    return n->value;
  }
  core::Matrix& mutable_value() {
    internal::TensorNode* n = node();
    if (!n->materialized) internal::EnsureMaterialized(n);
    return n->value;
  }

  bool requires_grad() const { return node()->requires_grad; }
  /// Gradient matrix; CHECK-fails if no gradient has been accumulated yet.
  const core::Matrix& grad() const;
  bool has_grad() const { return node()->has_grad(); }
  /// Zeroes (keeps allocation) or drops the gradient.
  void ZeroGrad();

  /// Runs reverse-mode AD from this node, which must be a 1x1 scalar.
  /// Gradients accumulate into every reachable node with requires_grad or
  /// with grad-requiring ancestors.
  void Backward();

  /// Scalar convenience: value of a 1x1 tensor.
  float scalar() const;

  /// Stable identity for maps/sets.
  const void* id() const { return node_.get(); }

  internal::TensorNode* node() const {
    GARCIA_CHECK(node_ != nullptr) << "use of undefined Tensor";
    return node_.get();
  }
  const std::shared_ptr<internal::TensorNode>& shared_node() const { return node_; }

 private:
  explicit Tensor(std::shared_ptr<internal::TensorNode> node)
      : node_(std::move(node)) {}

  std::shared_ptr<internal::TensorNode> node_;
};

}  // namespace garcia::nn

#endif  // GARCIA_NN_TENSOR_H_
