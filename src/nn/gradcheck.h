// Copyright (c) 2026 GARCIA reproduction authors.
// Finite-difference gradient verification. Test-support code, but placed in
// the library so model tests and op tests share it.

#ifndef GARCIA_NN_GRADCHECK_H_
#define GARCIA_NN_GRADCHECK_H_

#include <functional>
#include <vector>

#include "nn/tensor.h"

namespace garcia::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;   // max |analytic - numeric|
  double max_rel_error = 0.0;   // scaled by max(1, |numeric|)
  size_t checked_entries = 0;
};

/// Verifies autograd gradients of a scalar-valued function against central
/// finite differences.
///
/// loss_fn must rebuild the computation (fresh tape) from the current values
/// of `params` on every call. Every entry of every parameter is perturbed by
/// ±eps; entries are restored afterwards. `stride` checks every k-th entry
/// for large parameters.
GradCheckResult CheckGradients(const std::function<Tensor()>& loss_fn,
                               const std::vector<Tensor>& params,
                               float eps = 1e-3f, size_t stride = 1);

}  // namespace garcia::nn

#endif  // GARCIA_NN_GRADCHECK_H_
