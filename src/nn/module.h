// Copyright (c) 2026 GARCIA reproduction authors.
// Parameter-owning building blocks: Linear, Embedding, Mlp.
//
// A Module owns leaf parameter tensors and/or child modules; Parameters()
// flattens the tree for the optimizer. Parameter tensors persist across
// training steps (the tape is rebuilt every forward pass but leaves are
// shared).
//
// Modules are fusion-transparent (DESIGN.md §5i): their forwards are built
// from nn::ops, so under a fusion-enabled ExecutionContext the elementwise
// pieces (activations, residual adds, gates) are captured lazily, while
// eager ops (MatMul, broadcasts, gathers) force any pending operands. No
// module code changes with the fuse_ops knob, and parameters see
// bit-identical gradients.

#ifndef GARCIA_NN_MODULE_H_
#define GARCIA_NN_MODULE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "nn/tensor.h"

namespace garcia::nn {

/// Base class for parameter containers.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its children.
  std::vector<Tensor> Parameters() const;

  /// Total number of scalar parameters.
  size_t NumParameters() const;

  /// Copies parameter values from another module with identical structure.
  /// Used to initialize fine-tuning from pre-trained weights.
  void CopyParametersFrom(const Module& other);

 protected:
  Module() = default;

  /// Registers a trainable parameter initialized with the given values.
  Tensor RegisterParameter(core::Matrix init);

  /// Registers a child whose parameters are included in Parameters().
  /// The child must outlive this module (typically a member).
  void RegisterChild(Module* child);

 private:
  std::vector<Tensor> params_;
  std::vector<Module*> children_;
};

/// y = x @ W + b (bias optional). W is (in x out); Xavier-initialized.
class Linear : public Module {
 public:
  Linear(size_t in_dim, size_t out_dim, core::Rng* rng, bool bias = true);

  Tensor Forward(const Tensor& x) const;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  size_t in_dim_;
  size_t out_dim_;
  Tensor weight_;
  Tensor bias_;  // undefined when constructed with bias=false
};

/// Learnable embedding table (N x D), N entities.
class Embedding : public Module {
 public:
  Embedding(size_t num_entities, size_t dim, core::Rng* rng,
            float init_scale = 0.1f);

  /// Rows for the given ids.
  Tensor Forward(const std::vector<uint32_t>& ids) const;

  /// The full table as a tensor (full-graph GNN input).
  const Tensor& Table() const { return table_; }

  size_t num_entities() const { return table_.rows(); }
  size_t dim() const { return table_.cols(); }

 private:
  Tensor table_;
};

/// Multi-layer perceptron with ReLU between layers; the final layer is
/// linear (callers apply their own head activation).
class Mlp : public Module {
 public:
  /// dims = {in, hidden..., out}; at least {in, out}.
  Mlp(const std::vector<size_t>& dims, core::Rng* rng);

  Tensor Forward(const Tensor& x) const;

  size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace garcia::nn

#endif  // GARCIA_NN_MODULE_H_
