// Copyright (c) 2026 GARCIA reproduction authors.
// Differentiable operations over nn::Tensor.
//
// Every function builds a new tape node whose backward closure accumulates
// into its parents. Shapes follow the row-major convention of core::Matrix:
// a batch is N rows of D-dimensional vectors.

#ifndef GARCIA_NN_OPS_H_
#define GARCIA_NN_OPS_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace garcia::core {
class Rng;
}

namespace garcia::nn {

// ----- Linear algebra -----

/// A @ B.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// A @ B^T (the similarity-matrix workhorse).
Tensor MatMulNT(const Tensor& a, const Tensor& b);

/// X^T.
Tensor Transpose(const Tensor& x);

// ----- Elementwise / broadcast -----

/// A + B (same shape).
Tensor Add(const Tensor& a, const Tensor& b);

/// A - B (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);

/// A ⊙ B (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);

/// s * X.
Tensor Scale(const Tensor& x, float s);

/// X + c (elementwise constant).
Tensor AddScalar(const Tensor& x, float c);

/// x (NxD) + row-broadcast bias (1xD).
Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias);

/// Row i of x (NxD) scaled by w(i,0); w is Nx1.
Tensor MulColBroadcast(const Tensor& x, const Tensor& w);

/// Mean of a non-empty list of same-shaped tensors (layer readout).
Tensor Average(const std::vector<Tensor>& xs);

// ----- Shape -----

/// [A || B] column-wise; both N rows.
Tensor ConcatCols(const Tensor& a, const Tensor& b);

/// Stacks A on top of B; both D cols.
Tensor ConcatRows(const Tensor& a, const Tensor& b);

/// out[i] = x[indices[i]]; gradient scatter-adds. Works on any tensor
/// (embedding lookup when x is a leaf table).
Tensor GatherRows(const Tensor& x, std::vector<uint32_t> indices);

// ----- Activations -----

Tensor Tanh(const Tensor& x);
Tensor Relu(const Tensor& x);
Tensor LeakyRelu(const Tensor& x, float slope = 0.2f);
Tensor Sigmoid(const Tensor& x);

/// Numerically stable scalar logistic sigmoid: never exponentiates a
/// positive argument, so it cannot overflow. The shared score->probability
/// helper for every Predict / serving path (and the dz cache of
/// BceWithLogits).
inline float StableSigmoid(float z) {
  return z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                   : std::exp(z) / (1.0f + std::exp(z));
}
inline double StableSigmoid(double z) {
  return z >= 0.0 ? 1.0 / (1.0 + std::exp(-z))
                  : std::exp(z) / (1.0 + std::exp(z));
}

// ----- Normalization / softmax -----

/// Rows rescaled to unit L2 norm (zero rows pass through unchanged).
Tensor L2NormalizeRows(const Tensor& x, float eps = 1e-12f);

/// Row-wise softmax.
Tensor SoftmaxRows(const Tensor& x);

// ----- Reductions -----

/// 1x1 sum of all entries.
Tensor SumAll(const Tensor& x);

/// 1x1 mean of all entries.
Tensor MeanAll(const Tensor& x);

/// Row-wise dot product of same-shaped A, B -> Nx1.
Tensor RowDot(const Tensor& a, const Tensor& b);

// ----- Regularization -----

/// Inverted dropout: keeps entries with prob 1-p and scales by 1/(1-p).
/// p == 0 is the identity. Training-mode only (caller skips at eval).
Tensor Dropout(const Tensor& x, float p, core::Rng* rng);

// ----- Segment ops (variable-degree graph aggregation) -----

/// out[s] = Σ_{e: seg[e]==s} x[e]. x is ExD, seg has E entries < num_segments.
Tensor SegmentSum(const Tensor& x, std::vector<uint32_t> seg,
                  size_t num_segments);

/// Per-segment softmax over Ex1 scores; segments may be empty.
/// Numerically stabilized by the per-segment max.
Tensor SegmentSoftmax(const Tensor& scores, std::vector<uint32_t> seg,
                      size_t num_segments);

}  // namespace garcia::nn

#endif  // GARCIA_NN_OPS_H_
