#include "nn/gradcheck.h"

#include <cmath>

namespace garcia::nn {

GradCheckResult CheckGradients(const std::function<Tensor()>& loss_fn,
                               const std::vector<Tensor>& params, float eps,
                               size_t stride) {
  GARCIA_CHECK_GE(stride, 1u);
  // Analytic pass.
  for (const Tensor& p : params) {
    const_cast<Tensor&>(p).ZeroGrad();
  }
  Tensor loss = loss_fn();
  loss.Backward();
  std::vector<core::Matrix> analytic;
  analytic.reserve(params.size());
  for (const Tensor& p : params) {
    analytic.push_back(p.has_grad()
                           ? p.grad()
                           : core::Matrix(p.rows(), p.cols()));
  }

  GradCheckResult result;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    core::Matrix& w = const_cast<Tensor&>(params[pi]).mutable_value();
    for (size_t k = 0; k < w.size(); k += stride) {
      const float orig = w.data()[k];
      w.data()[k] = orig + eps;
      const double lp = loss_fn().scalar();
      w.data()[k] = orig - eps;
      const double lm = loss_fn().scalar();
      w.data()[k] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double a = analytic[pi].data()[k];
      const double abs_err = std::fabs(a - numeric);
      const double rel_err = abs_err / std::max(1.0, std::fabs(numeric));
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      ++result.checked_entries;
    }
  }
  return result;
}

}  // namespace garcia::nn
