// Copyright (c) 2026 GARCIA reproduction authors.
// Loss functions. All losses return 1x1 scalars averaged over the batch
// (the paper writes sums; a constant factor that the loss weights absorb).

#ifndef GARCIA_NN_LOSS_H_
#define GARCIA_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace garcia::nn {

/// Mean softmax cross-entropy over rows: L = mean_i [ logsumexp(row_i) -
/// row_i[targets[i]] ]. Numerically stable; gradient is (softmax - onehot)/N.
Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<uint32_t>& targets);

/// InfoNCE (Eq. 4/5/7/9 of the paper): cosine similarity between anchors and
/// candidates, temperature tau, candidates[targets[i]] is the positive of
/// anchors[i], every other candidate row is a negative.
Tensor InfoNce(const Tensor& anchors, const Tensor& candidates,
               const std::vector<uint32_t>& targets, float tau);

/// InfoNCE with an explicit per-anchor candidate mask: mask(i, j) == 1 keeps
/// candidate j in anchor i's denominator (the positive must be kept). Used by
/// IGCL, whose negative sets differ per anchor (Eq. 9).
Tensor MaskedInfoNce(const Tensor& anchors, const Tensor& candidates,
                     const std::vector<uint32_t>& targets,
                     const core::Matrix& mask, float tau);

/// Mean binary cross-entropy on logits (Eq. 13), stable form:
/// l = max(z,0) - z y + log(1 + exp(-|z|)). targets is the same shape.
Tensor BceWithLogits(const Tensor& logits, const core::Matrix& targets);

}  // namespace garcia::nn

#endif  // GARCIA_NN_LOSS_H_
