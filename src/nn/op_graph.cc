// Copyright (c) 2026 GARCIA reproduction authors.
// Implementation of lazy op-graph capture and the fusion pass.
//
// Structure:
//  - Record*: build pending nodes (no kernel dispatch).
//  - BuildChain: the fusion pass. Claims the maximal single-consumer spine
//    ending at a forced node, materializes everything the chain reads from
//    (sides + base), linearizes into a kernels::fused::Program, decides
//    spills from the backward's needs and wires the ChainPlan.
//  - FlushEltwise / Fused* heads: run the program through the fused kernels
//    and install the plan-driven backward closures.
//  - EnsureMaterialized / Rematerialize: the forcing entry points.

#include "nn/op_graph.h"

#include <memory>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "nn/exec.h"

namespace garcia::nn {
namespace internal {

namespace fk = core::kernels::fused;
namespace kernels = core::kernels;
using core::Matrix;
using fk::EltOp;

namespace {

/// Fusion-group counter for DumpDot coloring. Graphs are built and flushed
/// on their owning model's thread, so a thread-local counter suffices.
int NextChainId() {
  static thread_local int next = 0;
  return next++;
}

struct ChainPlan;

/// One deferred gradient application: at a chain op's own tape position,
/// add the contribution ChainBackward assigned into `buf` to the target
/// operand's grad — exactly the eager closure's AccumulateGrad.
struct Apply {
  TensorNode* target = nullptr;
  const std::vector<float>* buf = nullptr;  // into the plan; address stable
  /// Replays the eager ReLU backward, which SKIPS (not adds zero) where the
  /// input was non-positive.
  bool relu_conditional = false;
  const float* x = nullptr;  // base input values for the conditional
};

/// Shared backward state of one fused chain: the head (or headless tip)
/// runs ChainBackward once, filling the side/base buffers; each chain
/// node's closure then applies its own entry at its own tape position.
struct ChainPlan {
  size_t n = 0;
  std::vector<fk::BackwardStep> bsteps;       // tip..bottom, = nodes[0..L-1]
  std::vector<std::vector<float>> side_bufs;  // empty where no side grad
  std::vector<float> base_buf;                // empty when base needs no grad
  std::vector<std::vector<Apply>> applies;    // per step, (a, b) operand order
  bool computed = false;                      // ChainBackward has run
};

float* BaseBufPtr(ChainPlan* p) {
  return p->base_buf.empty() ? nullptr : p->base_buf.data();
}

/// Applies chain node k's recorded contributions. Ascending-i serial adds —
/// the element order of Matrix::Add, which the eager closures accumulate
/// through.
void ApplyStep(ChainPlan* plan, size_t k) {
  for (const Apply& ap : plan->applies[k]) {
    float* gd = ap.target->EnsureGrad().data();
    const float* buf = ap.buf->data();
    if (ap.relu_conditional) {
      for (size_t i = 0; i < plan->n; ++i) {
        if (ap.x[i] > 0.0f) gd[i] += buf[i];
      }
    } else {
      for (size_t i = 0; i < plan->n; ++i) gd[i] += buf[i];
    }
  }
}

/// Propagates gradient that OTHER consumers (outside the fused chain)
/// accumulated into a chain node — the eager closure of the node's op,
/// applied to nk->grad. Operand values this needs are guaranteed
/// materialized by BuildChain's spill rules.
void EagerPropagate(TensorNode* nk) {
  OpRecord* r = nk->lazy.get();
  switch (r->op) {
    case EltOp::kAdd:
      if (r->a->requires_grad) r->a->AccumulateGrad(nk->grad);
      if (r->b->requires_grad) r->b->AccumulateGrad(nk->grad);
      break;
    case EltOp::kSub:
      if (r->a->requires_grad) r->a->AccumulateGrad(nk->grad);
      if (r->b->requires_grad) {
        Matrix neg = nk->grad;
        neg.Scale(-1.0f);
        r->b->AccumulateGrad(neg);
      }
      break;
    case EltOp::kMul:
      if (r->a->requires_grad) {
        Matrix g = nk->grad;
        g.Hadamard(r->b->value);
        r->a->AccumulateGrad(g);
      }
      if (r->b->requires_grad) {
        Matrix g = nk->grad;
        g.Hadamard(r->a->value);
        r->b->AccumulateGrad(g);
      }
      break;
    case EltOp::kScale:
      if (r->a->requires_grad) {
        Matrix g = nk->grad;
        g.Scale(r->attr);
        r->a->AccumulateGrad(g);
      }
      break;
    case EltOp::kAddScalar:
      if (r->a->requires_grad) r->a->AccumulateGrad(nk->grad);
      break;
    case EltOp::kRelu:
    case EltOp::kLeakyRelu: {
      if (!r->a->requires_grad) break;
      Matrix& g = r->a->EnsureGrad();
      kernels::UnaryBackwardAdd(Exec(),
                                r->op == EltOp::kRelu
                                    ? kernels::UnaryOp::kRelu
                                    : kernels::UnaryOp::kLeakyRelu,
                                r->attr, r->a->value.data(), nullptr,
                                nk->grad.data(), g.data(), g.size());
      break;
    }
    case EltOp::kTanh:
    case EltOp::kSigmoid: {
      if (!r->a->requires_grad) break;
      Matrix& g = r->a->EnsureGrad();
      kernels::UnaryBackwardAdd(Exec(),
                                r->op == EltOp::kTanh
                                    ? kernels::UnaryOp::kTanh
                                    : kernels::UnaryOp::kSigmoid,
                                r->attr, nullptr, nk->value.data(),
                                nk->grad.data(), g.data(), g.size());
      break;
    }
    case EltOp::kInput:
      GARCIA_CHECK(false) << "kInput is not a recordable op";
  }
}

/// A linearized, claimed chain ready to execute.
struct BuiltChain {
  std::vector<TensorNode*> nodes;  // tip first, bottom last
  TensorNode* base = nullptr;      // the materialized spine input
  fk::Program prog;                // base..tip order
  std::vector<int> step_of;        // program index of nodes[k]
  std::vector<TensorNode*> spilled;
  size_t rows = 0;
  size_t cols = 0;
  size_t n = 0;
  std::shared_ptr<ChainPlan> plan;  // null when the tip needs no grad
};

void FinishSpills(const BuiltChain& bc) {
  for (TensorNode* nd : bc.spilled) nd->materialized = true;
}

/// The fusion pass: claims the maximal fusible chain ending at `tip`
/// (pending, unclaimed), linearizes it and prepares the backward plan.
/// Does not run the program — the caller picks the fused kernel (headless
/// elementwise flush or one of the reduction heads). The caller must call
/// FinishSpills after running it.
BuiltChain BuildChain(TensorNode* tip, bool tip_spills) {
  GARCIA_CHECK(tip->lazy != nullptr && !tip->materialized &&
               !tip->lazy->claimed);
  BuiltChain bc;
  bc.rows = tip->lazy_rows;
  bc.cols = tip->lazy_cols;
  bc.n = bc.rows * bc.cols;
  const int chain_id = NextChainId();

  // Walk the spine from the tip: extend through a pending operand consumed
  // by this chain alone, preferring operand a. Claiming happens during the
  // walk so the side materializations below cannot steal chain interiors.
  // The cap keeps the program inside the fused register file: L ops plus at
  // most L side inputs plus the base input.
  constexpr size_t kMaxChain = (fk::kMaxProgramSteps - 1) / 2;
  tip->lazy->claimed = true;
  tip->lazy->chain_id = chain_id;
  bc.nodes.push_back(tip);
  TensorNode* cur = tip;
  const auto claimable = [](TensorNode* p) {
    return p != nullptr && p->lazy != nullptr && !p->materialized &&
           !p->lazy->claimed && p->lazy->consumers == 1;
  };
  while (bc.nodes.size() < kMaxChain) {
    OpRecord* r = cur->lazy.get();
    TensorNode* next = nullptr;
    if (r->a == r->b) {
      // Self-op (Mul(x, x)): the operand is consumed twice by one op, so it
      // is a chain boundary; it materializes below as base AND side.
    } else if (claimable(r->a)) {
      next = r->a;
    } else if (claimable(r->b)) {
      next = r->b;
      r->spine_is_b = true;
    }
    if (next == nullptr) break;
    next->lazy->claimed = true;
    next->lazy->chain_id = chain_id;
    bc.nodes.push_back(next);
    cur = next;
  }
  const size_t L = bc.nodes.size();

  // Everything the chain reads materializes first (recursively — a side may
  // flush its own chain). The bottom node's spine operand is the base; the
  // walk never set spine_is_b on the bottom, so its spine is operand a.
  for (size_t k = 0; k < L; ++k) {
    OpRecord* r = bc.nodes[k]->lazy.get();
    TensorNode* side =
        r->b == nullptr ? nullptr : (r->spine_is_b ? r->a : r->b);
    if (side != nullptr && !side->materialized) EnsureMaterialized(side);
  }
  bc.base = bc.nodes[L - 1]->lazy->a;
  if (!bc.base->materialized) EnsureMaterialized(bc.base);

  // Linearize, base..tip. Repeated input buffers load once.
  std::unordered_map<const float*, int> input_idx;
  const auto add_input = [&](TensorNode* nd) -> int {
    const float* buf = nd->value.data();
    auto it = input_idx.find(buf);
    if (it != input_idx.end()) return it->second;
    fk::Step st;
    st.op = EltOp::kInput;
    st.in = buf;
    bc.prog.push_back(st);
    const int idx = static_cast<int>(bc.prog.size()) - 1;
    input_idx.emplace(buf, idx);
    return idx;
  };
  bc.step_of.assign(L, -1);
  int spine_idx = add_input(bc.base);
  for (size_t k = L; k-- > 0;) {
    OpRecord* r = bc.nodes[k]->lazy.get();
    fk::Step st;
    st.op = r->op;
    st.attr = r->attr;
    if (r->b == nullptr) {
      st.a = spine_idx;
    } else {
      const int side_idx = add_input(r->spine_is_b ? r->a : r->b);
      st.a = r->spine_is_b ? side_idx : spine_idx;
      st.b = r->spine_is_b ? spine_idx : side_idx;
    }
    bc.prog.push_back(st);
    spine_idx = static_cast<int>(bc.prog.size()) - 1;
    bc.step_of[k] = spine_idx;
  }

  // Spills: what the backward needs materialized. Mul reads its spine
  // factor, ReLU-family its input (= the spine operand's value, which for
  // the bottom is the already-materialized base); Tanh/Sigmoid read their
  // own output. These same rules guarantee EagerPropagate's operand reads.
  const auto spill = [&](size_t k) {
    fk::Step& st = bc.prog[bc.step_of[k]];
    if (st.spill != nullptr) return;
    TensorNode* nd = bc.nodes[k];
    nd->value = Matrix(bc.rows, bc.cols);
    st.spill = nd->value.data();
    bc.spilled.push_back(nd);
  };
  if (tip_spills) spill(0);
  if (tip->requires_grad) {
    for (size_t k = 0; k < L; ++k) {
      switch (bc.nodes[k]->lazy->op) {
        case EltOp::kMul:
        case EltOp::kRelu:
        case EltOp::kLeakyRelu:
          if (k + 1 < L) spill(k + 1);
          break;
        case EltOp::kTanh:
        case EltOp::kSigmoid:
          spill(k);
          break;
        default:
          break;
      }
    }
  }

  // Backward plan. bsteps[k] consumes the gradient of nodes[k]'s output;
  // contributions to operands are applied later at node k's own tape
  // position, in (a, b) order — the eager closure's accumulation order.
  if (tip->requires_grad) {
    auto plan = std::make_shared<ChainPlan>();
    plan->n = bc.n;
    plan->bsteps.resize(L);
    plan->side_bufs.resize(L);
    plan->applies.resize(L);
    for (size_t k = 0; k < L; ++k) {
      TensorNode* nd = bc.nodes[k];
      OpRecord* r = nd->lazy.get();
      TensorNode* spine = k + 1 < L ? bc.nodes[k + 1] : bc.base;
      TensorNode* side =
          r->b == nullptr ? nullptr : (r->spine_is_b ? r->a : r->b);
      fk::BackwardStep& bs = plan->bsteps[k];
      bs.op = r->op;
      bs.attr = r->attr;
      bs.spine_is_b = r->spine_is_b;
      switch (r->op) {
        case EltOp::kRelu:
        case EltOp::kLeakyRelu:
          bs.x = spine->value.data();
          break;
        case EltOp::kTanh:
        case EltOp::kSigmoid:
          bs.y = nd->value.data();
          break;
        case EltOp::kMul:
          bs.spine = spine->value.data();
          bs.other = side->value.data();
          break;
        default:
          break;
      }
      if (side != nullptr && side->requires_grad) {
        plan->side_bufs[k].assign(bc.n, 0.0f);
        bs.d_side = plan->side_bufs[k].data();
      }
      const auto add_apply = [&](TensorNode* operand, bool is_spine) {
        if (operand == nullptr || !operand->requires_grad) return;
        Apply ap;
        ap.target = operand;
        if (is_spine) {
          // In-chain spine gradient travels in registers; only the bottom's
          // spine (the base) surfaces as a buffer.
          if (k + 1 < L) return;
          ap.buf = &plan->base_buf;
          ap.relu_conditional = r->op == EltOp::kRelu;
          ap.x = bc.base->value.data();
        } else {
          ap.buf = &plan->side_bufs[k];
        }
        plan->applies[k].push_back(ap);
      };
      add_apply(r->a, /*is_spine=*/!r->spine_is_b);
      if (r->b != nullptr) add_apply(r->b, /*is_spine=*/r->spine_is_b);
    }
    if (bc.base->requires_grad) plan->base_buf.assign(bc.n, 0.0f);

    // Chain-node closures: apply this op's plan contributions, then
    // propagate whatever gradient consumers outside the chain accumulated
    // into the node itself (equal by linearity to the eager single pass;
    // bit-identical whenever no such outside consumer exists).
    for (size_t k = 0; k < L; ++k) {
      TensorNode* nd = bc.nodes[k];
      if (!nd->requires_grad) continue;
      nd->fused_backward = true;
      nd->backward_fn = [plan, k](TensorNode* nk) {
        if (plan->computed) ApplyStep(plan.get(), k);
        if (nk->has_grad()) EagerPropagate(nk);
      };
    }
    bc.plan = std::move(plan);
  }
  return bc;
}

/// Headless flush: runs the chain with the tip spilled into its own value
/// and makes the tip's closure drive ChainBackward from its accumulated
/// gradient (the eager dy, bit for bit).
void FlushEltwise(TensorNode* tip) {
  BuiltChain bc = BuildChain(tip, /*tip_spills=*/true);
  fk::EltwiseForward(Exec(), bc.prog, bc.n);
  FinishSpills(bc);
  if (bc.plan != nullptr) {
    auto plan = bc.plan;
    tip->backward_fn = [plan](TensorNode* nt) {
      if (nt->has_grad()) {
        fk::ChainBackward(Exec(), plan->bsteps.data(), plan->bsteps.size(),
                          nt->grad.data(), BaseBufPtr(plan.get()), plan->n);
        plan->computed = true;
      }
      if (plan->computed) ApplyStep(plan.get(), 0);
    };
  }
}

/// Recomputes one claimed chain interior that a consumer outside the chain
/// reads after the flush: a 1-op program over its (recursively
/// materialized) operands — the same scalar expression the chain evaluated
/// in registers, so the value is bit-identical.
void Rematerialize(TensorNode* node) {
  OpRecord* r = node->lazy.get();
  if (!r->a->materialized) EnsureMaterialized(r->a);
  if (r->b != nullptr && !r->b->materialized) EnsureMaterialized(r->b);
  node->value = Matrix(node->lazy_rows, node->lazy_cols);
  fk::Program prog;
  fk::Step in_a;
  in_a.in = r->a->value.data();
  prog.push_back(in_a);
  int ib = 0;
  if (r->b != nullptr && r->b != r->a) {
    fk::Step in_b;
    in_b.in = r->b->value.data();
    prog.push_back(in_b);
    ib = 1;
  }
  fk::Step st;
  st.op = r->op;
  st.attr = r->attr;
  st.a = 0;
  if (r->b != nullptr) st.b = ib;
  st.spill = node->value.data();
  prog.push_back(st);
  fk::EltwiseForward(Exec(), prog, node->value.size());
  node->materialized = true;
}

}  // namespace

void EnsureMaterialized(TensorNode* node) {
  if (node->materialized) return;
  GARCIA_CHECK(node->lazy != nullptr) << "unmaterialized node without record";
  if (node->lazy->claimed) {
    Rematerialize(node);
  } else {
    FlushEltwise(node);
  }
}

namespace {

Tensor MakeRecord(EltOp op, const char* name, const Tensor& a, const Tensor* b,
                  float attr) {
  auto node = std::make_shared<TensorNode>();
  node->materialized = false;
  node->lazy_rows = a.rows();
  node->lazy_cols = a.cols();
  node->op_name = name;
  node->parents.push_back(a.shared_node());
  bool req = a.node()->requires_grad;
  auto rec = std::make_unique<OpRecord>();
  rec->op = op;
  rec->attr = attr;
  rec->a = a.node();
  if (b != nullptr) {
    node->parents.push_back(b->shared_node());
    req = req || b->node()->requires_grad;
    rec->b = b->node();
  }
  node->requires_grad = req;
  if (rec->a->lazy && !rec->a->materialized) rec->a->lazy->consumers++;
  if (rec->b != nullptr && rec->b != rec->a && rec->b->lazy &&
      !rec->b->materialized) {
    rec->b->lazy->consumers++;
  }
  node->lazy = std::move(rec);
  return Tensor::FromNode(std::move(node));
}

}  // namespace

Tensor RecordBinary(EltOp op, const char* name, const Tensor& a,
                    const Tensor& b, float attr) {
  return MakeRecord(op, name, a, &b, attr);
}

Tensor RecordUnary(EltOp op, const char* name, const Tensor& x, float attr) {
  return MakeRecord(op, name, x, nullptr, attr);
}

bool FusiblePending(const Tensor& x) {
  TensorNode* n = x.node();
  return n->lazy != nullptr && !n->materialized && !n->lazy->claimed &&
         n->lazy->consumers == 0;
}

Tensor FusedL2NormalizeRows(const Tensor& x, float eps) {
  BuiltChain bc = BuildChain(x.node(), /*tip_spills=*/false);
  Matrix out(bc.rows, bc.cols);
  std::vector<float> norms;
  fk::L2NormalizeRowsForward(Exec(), bc.prog, eps, &out, &norms);
  FinishSpills(bc);
  auto plan = bc.plan;
  Tensor t = Tensor::FromOp(
      std::move(out), {x},
      [plan, norms = std::move(norms), eps](TensorNode* n) {
        // Eager head gradient into zeroed scratch — picking up the fl(0 + g)
        // of a first accumulation, as the eager tape would — then one
        // backward pass down the chain.
        Matrix d_top(n->value.rows(), n->value.cols());
        kernels::L2NormalizeRowsBackwardAdd(Exec(), n->value, n->grad, norms,
                                            eps, &d_top);
        fk::ChainBackward(Exec(), plan->bsteps.data(), plan->bsteps.size(),
                          d_top.data(), BaseBufPtr(plan.get()), plan->n);
        plan->computed = true;
      });
  t.node()->op_name = "l2normalize*";
  return t;
}

Tensor FusedSoftmaxRows(const Tensor& x) {
  BuiltChain bc = BuildChain(x.node(), /*tip_spills=*/false);
  Matrix out(bc.rows, bc.cols);
  fk::SoftmaxRowsForward(Exec(), bc.prog, &out);
  FinishSpills(bc);
  auto plan = bc.plan;
  Tensor t = Tensor::FromOp(std::move(out), {x}, [plan](TensorNode* n) {
    Matrix d_top(n->value.rows(), n->value.cols());
    kernels::SoftmaxRowsBackwardAdd(Exec(), n->value, n->grad, &d_top);
    fk::ChainBackward(Exec(), plan->bsteps.data(), plan->bsteps.size(),
                      d_top.data(), BaseBufPtr(plan.get()), plan->n);
    plan->computed = true;
  });
  t.node()->op_name = "softmax*";
  return t;
}

Tensor FusedSegmentSoftmax(const Tensor& scores, std::vector<uint32_t> seg,
                           size_t num_segments) {
  BuiltChain bc = BuildChain(scores.node(), /*tip_spills=*/false);
  Matrix out(bc.rows, 1);
  fk::SegmentSoftmaxForward(Exec(), bc.prog, seg, num_segments, &out);
  FinishSpills(bc);
  auto plan = bc.plan;
  Tensor t = Tensor::FromOp(
      std::move(out), {scores},
      [plan, seg = std::move(seg), num_segments](TensorNode* n) {
        Matrix d_top(n->value.rows(), n->value.cols());
        kernels::SegmentSoftmaxBackwardAdd(Exec(), n->value, n->grad, seg,
                                           num_segments, &d_top);
        fk::ChainBackward(Exec(), plan->bsteps.data(), plan->bsteps.size(),
                          d_top.data(), BaseBufPtr(plan.get()), plan->n);
        plan->computed = true;
      });
  t.node()->op_name = "segment_softmax*";
  return t;
}

Tensor FusedCrossEntropyWithLogits(const Tensor& logits,
                                   std::vector<uint32_t> targets) {
  BuiltChain bc = BuildChain(logits.node(), /*tip_spills=*/false);
  Matrix softmax(bc.rows, bc.cols);
  const double loss = fk::CrossEntropyForward(Exec(), bc.prog, targets,
                                              &softmax);
  FinishSpills(bc);
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / bc.rows);
  const float inv_n = 1.0f / static_cast<float>(bc.rows);
  auto plan = bc.plan;
  Tensor t = Tensor::FromOp(
      std::move(out), {logits},
      [plan, softmax = std::move(softmax), targets = std::move(targets),
       inv_n](TensorNode* node) {
        const float gout = node->grad.at(0, 0) * inv_n;
        Matrix d_top(softmax.rows(), softmax.cols());
        kernels::CrossEntropyBackwardAdd(Exec(), softmax, targets, gout,
                                         &d_top);
        fk::ChainBackward(Exec(), plan->bsteps.data(), plan->bsteps.size(),
                          d_top.data(), BaseBufPtr(plan.get()), plan->n);
        plan->computed = true;
      });
  t.node()->op_name = "cross_entropy*";
  return t;
}

}  // namespace internal

std::string OpGraph::DumpDot(const std::vector<Tensor>& roots) {
  using internal::TensorNode;
  std::ostringstream os;
  os << "digraph op_graph {\n"
     << "  rankdir=BT;\n"
     << "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";
  std::unordered_set<const TensorNode*> visited;
  std::vector<const TensorNode*> order;
  std::vector<const TensorNode*> stack;
  for (const Tensor& r : roots) {
    if (r.defined() && visited.insert(r.node()).second) {
      stack.push_back(r.node());
    }
  }
  while (!stack.empty()) {
    const TensorNode* n = stack.back();
    stack.pop_back();
    order.push_back(n);
    for (const auto& p : n->parents) {
      if (visited.insert(p.get()).second) stack.push_back(p.get());
    }
  }
  static const char* const kPalette[] = {"#a6cee3", "#b2df8a", "#fb9a99",
                                         "#fdbf6f", "#cab2d6", "#ffff99",
                                         "#fccde5", "#ccebc5"};
  constexpr int kPaletteSize = 8;
  for (const TensorNode* n : order) {
    os << "  n" << n << " [label=\"";
    if (n->op_name != nullptr) {
      os << n->op_name;
    } else if (n->parents.empty()) {
      os << (n->requires_grad ? "param" : "const");
    } else {
      os << "eager op";
    }
    os << "\\n" << n->logical_rows() << "x" << n->logical_cols();
    if (n->lazy != nullptr) {
      os << (n->materialized ? "\\nmaterialized" : "\\npending");
      if (n->lazy->claimed) os << "\\nchain " << n->lazy->chain_id;
    }
    os << "\"";
    if (n->lazy != nullptr && n->lazy->chain_id >= 0) {
      os << ", style=filled, fillcolor=\""
         << kPalette[n->lazy->chain_id % kPaletteSize] << "\"";
    }
    os << "];\n";
  }
  for (const TensorNode* n : order) {
    for (const auto& p : n->parents) {
      os << "  n" << p.get() << " -> n" << n << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace garcia::nn
