// Copyright (c) 2026 GARCIA reproduction authors.
// First-order optimizers over leaf parameter tensors.

#ifndef GARCIA_NN_OPTIMIZER_H_
#define GARCIA_NN_OPTIMIZER_H_

#include <vector>

#include "nn/tensor.h"

namespace garcia::nn {

/// Base optimizer; owns the parameter list and the zero-grad step.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  /// Applies one update from the currently accumulated gradients.
  /// Parameters without an accumulated gradient are skipped.
  virtual void Step() = 0;

  /// Zeroes accumulated gradients (keeps allocations).
  void ZeroGrad();

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);
  void Step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<core::Matrix> velocity_;
};

/// The complete mutable state of an Adam instance: the step count driving
/// bias correction plus both moment estimates, in parameter order.
/// Serialized into training checkpoints; restoring it makes the next
/// Step() bit-identical to the one the snapshotted optimizer would take.
struct AdamState {
  int64_t t = 0;
  std::vector<core::Matrix> m;
  std::vector<core::Matrix> v;
};

/// Adam (Kingma & Ba) with optional decoupled weight decay. The paper trains
/// every model with Adam.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

  /// Snapshot of t and both moment vectors (checkpointing).
  AdamState ExportState() const;

  /// Restores a snapshot taken by ExportState. The moment shapes must
  /// match this optimizer's parameters (callers validate checkpoints
  /// against the live model before restoring).
  void RestoreState(const AdamState& state);

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<core::Matrix> m_;
  std::vector<core::Matrix> v_;
};

/// Rescales gradients so their global L2 norm is at most max_norm.
/// Returns the pre-clip norm.
double ClipGradNorm(const std::vector<Tensor>& params, double max_norm);

}  // namespace garcia::nn

#endif  // GARCIA_NN_OPTIMIZER_H_
