#include "nn/optimizer.h"

#include <cmath>

namespace garcia::nn {

Optimizer::Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {
  for (const Tensor& p : params_) {
    GARCIA_CHECK(p.requires_grad()) << "optimizer given a non-trainable tensor";
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const Tensor& p : params_) {
      velocity_.emplace_back(p.rows(), p.cols());
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    const core::Matrix& g = p.grad();
    core::Matrix& w = p.mutable_value();
    if (momentum_ != 0.0f) {
      core::Matrix& v = velocity_[i];
      for (size_t k = 0; k < w.size(); ++k) {
        v.data()[k] = momentum_ * v.data()[k] + g.data()[k];
        w.data()[k] -= lr_ * v.data()[k];
      }
    } else {
      for (size_t k = 0; k < w.size(); ++k) {
        w.data()[k] -= lr_ * g.data()[k];
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    m_.emplace_back(p.rows(), p.cols());
    v_.emplace_back(p.rows(), p.cols());
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float step_size = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    const core::Matrix& g = p.grad();
    core::Matrix& w = p.mutable_value();
    core::Matrix& m = m_[i];
    core::Matrix& v = v_[i];
    for (size_t k = 0; k < w.size(); ++k) {
      float gk = g.data()[k];
      if (weight_decay_ != 0.0f) gk += weight_decay_ * w.data()[k];
      m.data()[k] = beta1_ * m.data()[k] + (1.0f - beta1_) * gk;
      v.data()[k] = beta2_ * v.data()[k] + (1.0f - beta2_) * gk * gk;
      w.data()[k] -=
          step_size * m.data()[k] / (std::sqrt(v.data()[k]) + eps_);
    }
  }
}

AdamState Adam::ExportState() const {
  AdamState state;
  state.t = t_;
  state.m = m_;
  state.v = v_;
  return state;
}

void Adam::RestoreState(const AdamState& state) {
  GARCIA_CHECK_GE(state.t, 0);
  GARCIA_CHECK_EQ(state.m.size(), params_.size());
  GARCIA_CHECK_EQ(state.v.size(), params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    GARCIA_CHECK_EQ(state.m[i].rows(), params_[i].rows());
    GARCIA_CHECK_EQ(state.m[i].cols(), params_[i].cols());
    GARCIA_CHECK_EQ(state.v[i].rows(), params_[i].rows());
    GARCIA_CHECK_EQ(state.v[i].cols(), params_[i].cols());
  }
  t_ = state.t;
  m_ = state.m;
  v_ = state.v;
}

double ClipGradNorm(const std::vector<Tensor>& params, double max_norm) {
  double sq = 0.0;
  for (const Tensor& p : params) {
    if (!p.has_grad()) continue;
    const core::Matrix& g = p.grad();
    for (size_t k = 0; k < g.size(); ++k) {
      sq += static_cast<double>(g.data()[k]) * g.data()[k];
    }
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (const Tensor& p : params) {
      if (!p.has_grad()) continue;
      const_cast<core::Matrix&>(p.grad()).Scale(scale);
    }
  }
  return norm;
}

}  // namespace garcia::nn
