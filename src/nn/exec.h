// Copyright (c) 2026 GARCIA reproduction authors.
// Shared execution-context lookup for the nn layer.

#ifndef GARCIA_NN_EXEC_H_
#define GARCIA_NN_EXEC_H_

#include "core/kernels.h"

namespace garcia::nn::internal {

/// The execution context the hot ops dispatch through (serial unless the
/// caller installed one via core::ScopedExecution). Looked up at op
/// construction (forward), at chain flush time (fused execution), and
/// inside backward closures, which run later under Backward() — still
/// inside the caller's scope. Shared by nn/ops.cc, nn/loss.cc and
/// nn/op_graph.cc so the lookup policy cannot drift between them.
inline const core::ExecutionContext& Exec() { return core::CurrentExecution(); }

/// True when the current context opted the op layer into lazy capture +
/// fusion (core::ExecutionContext::set_fusion).
inline bool CaptureEnabled() { return Exec().fusion(); }

}  // namespace garcia::nn::internal

#endif  // GARCIA_NN_EXEC_H_
