// Copyright (c) 2026 GARCIA reproduction authors.
// Lazy op-graph capture and the elementwise→reduction fusion pass.
//
// When the current ExecutionContext has fusion enabled, nn::ops and nn::loss
// record elementwise ops as pending OpRecord nodes instead of dispatching a
// kernel per op. A pending node materializes when something needs its value:
// a non-elementwise consumer, an explicit Tensor::value() read, Backward(),
// or one of the reduction heads below. At that point the fusion pass walks
// the producer chain ending at the forced node, claims every interior node
// with exactly one captured consumer, linearizes the chain into a
// kernels::fused::Program and runs ONE sharded pass — optionally fused with
// the reduction head (L2 row normalize, row softmax, segment softmax,
// softmax cross-entropy) so the chain values never round-trip through an
// intermediate matrix.
//
// Backward: the flush installs closures driven by a shared ChainPlan. The
// head (or the chain tip, for a headless flush) computes the eager head
// gradient into zeroed scratch, runs kernels::fused::ChainBackward once, and
// records the per-op side contributions; each chain node's closure then
// applies its own contributions at its own tape position — exactly where the
// eager closure would have accumulated them — and, if other consumers also
// deposited gradient into the node, propagates that part eagerly. Fused
// execution is bit-identical to eager execution for any thread count (see
// DESIGN.md §5i for the argument; asserted by tests/nn_fusion_test.cc).

#ifndef GARCIA_NN_OP_GRAPH_H_
#define GARCIA_NN_OP_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/kernels.h"
#include "nn/tensor.h"

namespace garcia::nn {

namespace internal {

/// Capture record of a pending elementwise op. Owned by its TensorNode;
/// operand pointers alias the node's `parents` (which keep them alive).
struct OpRecord {
  core::kernels::fused::EltOp op = core::kernels::fused::EltOp::kInput;
  float attr = 0.0f;
  TensorNode* a = nullptr;  // == parents[0].get()
  TensorNode* b = nullptr;  // == parents[1].get(); null for unary ops
  /// Captured consumptions recorded so far (how many pending ops read this
  /// node). A chain may claim an interior node only when this is exactly 1:
  /// with a second captured consumer the node must materialize so both see
  /// the same buffer, exactly as eager execution would.
  int consumers = 0;
  /// True once a flush owns this node (as chain tip or interior).
  bool claimed = false;
  /// Set during the chain walk: the chain continues through operand b.
  bool spine_is_b = false;
  /// Fusion group for OpGraph::DumpDot; -1 until a flush claims the node.
  int chain_id = -1;
};

/// Records a pending binary elementwise op (value computed at flush).
/// Shapes must already have been checked by the caller.
Tensor RecordBinary(core::kernels::fused::EltOp op, const char* name,
                    const Tensor& a, const Tensor& b, float attr = 0.0f);

/// Records a pending unary elementwise op.
Tensor RecordUnary(core::kernels::fused::EltOp op, const char* name,
                   const Tensor& x, float attr = 0.0f);

/// True when x is a pending captured node a reduction head may fuse with:
/// unmaterialized, unclaimed, and consumed by nothing else. Heads fall back
/// to the eager kernel (after materializing x) otherwise.
bool FusiblePending(const Tensor& x);

// Fused reduction heads. Preconditions: FusiblePending(x). Each claims and
// linearizes x's chain, runs the fused head kernel, and returns a
// materialized head tensor whose backward drives the chain plan.
Tensor FusedL2NormalizeRows(const Tensor& x, float eps);
Tensor FusedSoftmaxRows(const Tensor& x);
Tensor FusedSegmentSoftmax(const Tensor& scores, std::vector<uint32_t> seg,
                           size_t num_segments);
/// Returns the 1x1 mean cross-entropy loss (the nn::loss contract).
Tensor FusedCrossEntropyWithLogits(const Tensor& logits,
                                   std::vector<uint32_t> targets);

}  // namespace internal

/// Introspection facade over the captured graph.
class OpGraph {
 public:
  /// Graphviz dump of the graph reachable from `roots` through parent
  /// links. Captured nodes are labeled with their opcode and colored by
  /// fusion chain once flushed; eager ops and leaves are plain boxes. Call
  /// before Backward() (pre-flush) to see the pending capture, or after a
  /// forward pass to see what fused into which chain.
  static std::string DumpDot(const std::vector<Tensor>& roots);
};

}  // namespace garcia::nn

#endif  // GARCIA_NN_OP_GRAPH_H_
