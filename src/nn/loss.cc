#include "nn/loss.h"

#include <cmath>

#include "core/kernels.h"
#include "nn/exec.h"
#include "nn/op_graph.h"
#include "nn/ops.h"

namespace garcia::nn {

namespace kernels = core::kernels;

using core::Matrix;
using internal::CaptureEnabled;
using internal::Exec;
using internal::TensorNode;

Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<uint32_t>& targets) {
  const size_t n = logits.rows();
  GARCIA_CHECK_EQ(targets.size(), n);
  GARCIA_CHECK_GT(n, 0u);
  // A pending captured logits chain (e.g. the Scale/Add producing InfoNCE
  // similarities) fuses straight into the softmax cross-entropy pass.
  if (CaptureEnabled() && internal::FusiblePending(logits)) {
    return internal::FusedCrossEntropyWithLogits(logits, targets);
  }
  // Forward: softmax rows in place (kernel), cached for the backward pass.
  Matrix softmax = logits.value();
  const double loss = kernels::CrossEntropyForward(Exec(), &softmax, targets);
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / n);
  const float inv_n = 1.0f / static_cast<float>(n);
  return Tensor::FromOp(
      std::move(out), {logits},
      [softmax = std::move(softmax), targets, inv_n](TensorNode* node) {
        TensorNode* p = node->parents[0].get();
        if (!p->requires_grad) return;
        const float gout = node->grad.at(0, 0) * inv_n;
        kernels::CrossEntropyBackwardAdd(Exec(), softmax, targets, gout,
                                         &p->EnsureGrad());
      });
}

Tensor InfoNce(const Tensor& anchors, const Tensor& candidates,
               const std::vector<uint32_t>& targets, float tau) {
  GARCIA_CHECK_GT(tau, 0.0f);
  Tensor a = L2NormalizeRows(anchors);
  Tensor c = L2NormalizeRows(candidates);
  Tensor sims = Scale(MatMulNT(a, c), 1.0f / tau);
  return CrossEntropyWithLogits(sims, targets);
}

Tensor MaskedInfoNce(const Tensor& anchors, const Tensor& candidates,
                     const std::vector<uint32_t>& targets,
                     const core::Matrix& mask, float tau) {
  GARCIA_CHECK_GT(tau, 0.0f);
  GARCIA_CHECK_EQ(mask.rows(), anchors.rows());
  GARCIA_CHECK_EQ(mask.cols(), candidates.rows());
  for (size_t i = 0; i < targets.size(); ++i) {
    GARCIA_CHECK_GT(mask.at(i, targets[i]), 0.0f)
        << "positive candidate masked out for anchor " << i;
  }
  Tensor a = L2NormalizeRows(anchors);
  Tensor c = L2NormalizeRows(candidates);
  Tensor sims = Scale(MatMulNT(a, c), 1.0f / tau);
  // Additive -inf style mask: excluded candidates get a large negative
  // constant, vanishing from the softmax denominator.
  Matrix penalty(mask.rows(), mask.cols());
  for (size_t i = 0; i < mask.rows(); ++i) {
    for (size_t j = 0; j < mask.cols(); ++j) {
      penalty.at(i, j) = mask.at(i, j) > 0.0f ? 0.0f : -1e9f;
    }
  }
  Tensor masked = Add(sims, Tensor::Constant(std::move(penalty)));
  return CrossEntropyWithLogits(masked, targets);
}

Tensor BceWithLogits(const Tensor& logits, const core::Matrix& targets) {
  const size_t n = logits.rows(), m = logits.cols();
  GARCIA_CHECK_EQ(targets.rows(), n);
  GARCIA_CHECK_EQ(targets.cols(), m);
  GARCIA_CHECK_GT(n * m, 0u);
  double loss = 0.0;
  Matrix dz(n, m);  // sigmoid(z) - y, cached for backward
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double z = logits.value().at(i, j);
      const double y = targets.at(i, j);
      loss += std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::fabs(z)));
      dz.at(i, j) = static_cast<float>(StableSigmoid(z) - y);
    }
  }
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / (n * m));
  const float inv = 1.0f / static_cast<float>(n * m);
  return Tensor::FromOp(std::move(out), {logits},
                        [dz = std::move(dz), inv](TensorNode* node) {
                          TensorNode* p = node->parents[0].get();
                          if (!p->requires_grad) return;
                          const float gout = node->grad.at(0, 0) * inv;
                          Matrix g = dz;
                          g.Scale(gout);
                          p->AccumulateGrad(g);
                        });
}

}  // namespace garcia::nn
