#include "nn/module.h"

#include "nn/ops.h"

namespace garcia::nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out = params_;
  for (const Module* c : children_) {
    auto sub = c->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

size_t Module::NumParameters() const {
  size_t n = 0;
  for (const Tensor& p : Parameters()) n += p.value().size();
  return n;
}

void Module::CopyParametersFrom(const Module& other) {
  auto dst = Parameters();
  auto src = other.Parameters();
  GARCIA_CHECK_EQ(dst.size(), src.size()) << "module structure mismatch";
  for (size_t i = 0; i < dst.size(); ++i) {
    GARCIA_CHECK_EQ(dst[i].rows(), src[i].rows());
    GARCIA_CHECK_EQ(dst[i].cols(), src[i].cols());
    dst[i].mutable_value() = src[i].value();
  }
}

Tensor Module::RegisterParameter(core::Matrix init) {
  Tensor t = Tensor::Leaf(std::move(init), /*requires_grad=*/true);
  params_.push_back(t);
  return t;
}

void Module::RegisterChild(Module* child) {
  GARCIA_CHECK(child != nullptr);
  children_.push_back(child);
}

Linear::Linear(size_t in_dim, size_t out_dim, core::Rng* rng, bool bias)
    : in_dim_(in_dim), out_dim_(out_dim) {
  weight_ = RegisterParameter(core::Matrix::Xavier(in_dim, out_dim, rng));
  if (bias) bias_ = RegisterParameter(core::Matrix(1, out_dim));
}

Tensor Linear::Forward(const Tensor& x) const {
  GARCIA_CHECK_EQ(x.cols(), in_dim_);
  Tensor y = MatMul(x, weight_);
  if (bias_.defined()) y = AddRowBroadcast(y, bias_);
  return y;
}

Embedding::Embedding(size_t num_entities, size_t dim, core::Rng* rng,
                     float init_scale) {
  table_ = RegisterParameter(
      core::Matrix::Randn(num_entities, dim, rng, 0.0f, init_scale));
}

Tensor Embedding::Forward(const std::vector<uint32_t>& ids) const {
  return GatherRows(table_, ids);
}

Mlp::Mlp(const std::vector<size_t>& dims, core::Rng* rng) {
  GARCIA_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterChild(layers_.back().get());
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = Relu(h);
  }
  return h;
}

}  // namespace garcia::nn
