#include "nn/tensor.h"

#include <unordered_set>

#include "nn/op_graph.h"

namespace garcia::nn {

namespace internal {

TensorNode::TensorNode() = default;
TensorNode::~TensorNode() = default;

core::Matrix& TensorNode::EnsureGrad() {
  if (grad.empty()) {
    // Logical shape: a pending captured node can receive gradient before
    // (or without) ever materializing its value.
    grad = core::Matrix(logical_rows(), logical_cols());
  }
  return grad;
}

void TensorNode::AccumulateGrad(const core::Matrix& g) {
  GARCIA_CHECK_EQ(g.rows(), logical_rows());
  GARCIA_CHECK_EQ(g.cols(), logical_cols());
  EnsureGrad().Add(g);
}

}  // namespace internal

Tensor Tensor::Leaf(core::Matrix value, bool requires_grad) {
  auto node = std::make_shared<internal::TensorNode>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  return Tensor(std::move(node));
}

Tensor Tensor::FromOp(core::Matrix value, std::vector<Tensor> parents,
                      std::function<void(internal::TensorNode*)> backward_fn) {
  auto node = std::make_shared<internal::TensorNode>();
  node->value = std::move(value);
  bool any_grad = false;
  node->parents.reserve(parents.size());
  for (const Tensor& p : parents) {
    any_grad = any_grad || p.node()->requires_grad;
    node->parents.push_back(p.shared_node());
  }
  node->requires_grad = any_grad;
  if (any_grad) node->backward_fn = std::move(backward_fn);
  return Tensor(std::move(node));
}

const core::Matrix& Tensor::grad() const {
  GARCIA_CHECK(node()->has_grad()) << "no gradient accumulated";
  return node()->grad;
}

void Tensor::ZeroGrad() {
  if (node()->has_grad()) node()->grad.Fill(0.0f);
}

float Tensor::scalar() const {
  GARCIA_CHECK_EQ(rows(), 1u);
  GARCIA_CHECK_EQ(cols(), 1u);
  return value().at(0, 0);
}

void Tensor::Backward() {
  GARCIA_CHECK_EQ(rows(), 1u);
  GARCIA_CHECK_EQ(cols(), 1u);
  internal::TensorNode* root = node();
  // A pending captured root flushes first: the fusion pass installs the
  // plan-based backward closures the traversal below fires.
  if (!root->materialized) internal::EnsureMaterialized(root);
  GARCIA_CHECK(root->requires_grad)
      << "Backward() on a graph with no grad-requiring leaves";

  // Iterative post-order DFS for the reverse topological order.
  std::vector<internal::TensorNode*> topo;
  std::unordered_set<internal::TensorNode*> visited;
  struct Frame {
    internal::TensorNode* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      internal::TensorNode* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && visited.insert(p).second) {
        stack.push_back({p, 0});
      }
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }

  // Interior (op-output) gradients are scratch space for this pass; only
  // leaves accumulate across Backward() calls (PyTorch semantics).
  for (internal::TensorNode* n : topo) {
    if (n->backward_fn && n->has_grad()) n->grad.Fill(0.0f);
  }

  root->EnsureGrad().Fill(0.0f);
  root->grad.at(0, 0) = 1.0f;

  // topo is post-order: parents before children; iterate in reverse so each
  // node's grad is complete before it propagates. Fused-plan closures fire
  // even without an accumulated grad: the chain gradient reaching them
  // traveled through kernel registers, not through `grad`.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    internal::TensorNode* n = *it;
    if (n->backward_fn && (n->has_grad() || n->fused_backward)) {
      n->backward_fn(n);
    }
  }
}

}  // namespace garcia::nn
