#include "data/presets.h"

#include <algorithm>
#include <cmath>

#include "core/macros.h"

namespace garcia::data {

const std::vector<DatasetId>& AllDatasets() {
  static const std::vector<DatasetId> kAll = {
      DatasetId::kSepA,     DatasetId::kSepB,      DatasetId::kSepC,
      DatasetId::kSoftware, DatasetId::kVideoGame, DatasetId::kMusic};
  return kAll;
}

const std::vector<DatasetId>& IndustrialDatasets() {
  static const std::vector<DatasetId> kIndustrial = {
      DatasetId::kSepA, DatasetId::kSepB, DatasetId::kSepC};
  return kIndustrial;
}

const std::vector<DatasetId>& PublicDatasets() {
  static const std::vector<DatasetId> kPublic = {
      DatasetId::kSoftware, DatasetId::kVideoGame, DatasetId::kMusic};
  return kPublic;
}

std::string DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kSepA:
      return "Sep. A";
    case DatasetId::kSepB:
      return "Sep. B";
    case DatasetId::kSepC:
      return "Sep. C";
    case DatasetId::kSoftware:
      return "Software";
    case DatasetId::kVideoGame:
      return "Video game";
    case DatasetId::kMusic:
      return "Music";
  }
  return "unknown";
}

namespace {

size_t Scaled(size_t base, double scale) {
  return std::max<size_t>(8, static_cast<size_t>(std::llround(
                                 static_cast<double>(base) * scale)));
}

ScenarioConfig IndustrialBase(double scale) {
  ScenarioConfig cfg;
  cfg.entity_seed = 20220901;  // shared population across Sep A/B/C
  cfg.num_queries = Scaled(2000, scale);
  cfg.num_services = Scaled(600, scale);
  cfg.num_intentions = Scaled(300, scale);
  cfg.num_trees = std::max<size_t>(4, Scaled(12, scale));
  cfg.max_depth = 5;
  cfg.num_impressions = Scaled(120000, scale);
  cfg.zipf_exponent = 1.7;  // top 1% of queries ~= 90% of PV
  cfg.head_fraction = 0.012;  // paper Table I: 1.18%-1.51% head queries
  return cfg;
}

}  // namespace

ScenarioConfig PresetConfig(DatasetId id, double scale) {
  GARCIA_CHECK_GT(scale, 0.0);
  switch (id) {
    case DatasetId::kSepA: {
      ScenarioConfig cfg = IndustrialBase(scale);
      cfg.name = "Sep. A";
      cfg.event_seed = 901;
      return cfg;
    }
    case DatasetId::kSepB: {
      ScenarioConfig cfg = IndustrialBase(scale);
      cfg.name = "Sep. B";
      cfg.event_seed = 911;
      return cfg;
    }
    case DatasetId::kSepC: {
      ScenarioConfig cfg = IndustrialBase(scale);
      cfg.name = "Sep. C";
      cfg.event_seed = 921;
      return cfg;
    }
    case DatasetId::kSoftware: {
      // Smallest: 1,826 users / 802 items / 12,805 interactions in the
      // paper; mild skew (10.95% head). The scale is floored so the
      // head/tail machinery keeps enough entities at small bench scales.
      scale = std::max(scale, 1.5);
      ScenarioConfig cfg;
      cfg.name = "Software";
      cfg.entity_seed = 8021;
      cfg.event_seed = 8022;
      cfg.num_queries = Scaled(460, scale);
      cfg.num_services = Scaled(200, scale);
      cfg.num_intentions = Scaled(90, scale);
      cfg.num_trees = std::max<size_t>(3, Scaled(6, scale));
      cfg.num_impressions = Scaled(13000, scale);
      cfg.zipf_exponent = 1.05;
      cfg.head_fraction = 0.1095;
      return cfg;
    }
    case DatasetId::kVideoGame: {
      // Largest public set: 55,223 users / 17,408 items / 497,576
      // interactions; 3.62% head.
      ScenarioConfig cfg;
      cfg.name = "Video game";
      cfg.entity_seed = 17408;
      cfg.event_seed = 17409;
      cfg.num_queries = Scaled(1700, scale);
      cfg.num_services = Scaled(540, scale);
      cfg.num_intentions = Scaled(220, scale);
      cfg.num_trees = std::max<size_t>(4, Scaled(10, scale));
      cfg.num_impressions = Scaled(100000, scale);
      cfg.zipf_exponent = 1.25;
      cfg.head_fraction = 0.0362;
      return cfg;
    }
    case DatasetId::kMusic: {
      // 27,530 users / 10,620 items / 231,392 interactions; 3.63% head.
      ScenarioConfig cfg;
      cfg.name = "Music";
      cfg.entity_seed = 10620;
      cfg.event_seed = 10621;
      cfg.num_queries = Scaled(1100, scale);
      cfg.num_services = Scaled(360, scale);
      cfg.num_intentions = Scaled(140, scale);
      cfg.num_trees = std::max<size_t>(3, Scaled(8, scale));
      cfg.num_impressions = Scaled(55000, scale);
      cfg.zipf_exponent = 1.25;
      cfg.head_fraction = 0.0363;
      return cfg;
    }
  }
  GARCIA_CHECK(false) << "unknown dataset id";
  return {};
}

Scenario GeneratePreset(DatasetId id, double scale) {
  return GenerateScenario(PresetConfig(id, scale));
}

}  // namespace garcia::data
