// Copyright (c) 2026 GARCIA reproduction authors.
// The six named datasets of the paper's evaluation (Sec. V-A), as synthetic
// presets:
//
//  * Industrial: Sep. A / Sep. B / Sep. C — the same simulated population
//    (identical entity seed) observed over three disjoint event windows,
//    mirroring the chronological thirds of the Alipay September 2022 logs.
//    Heavy Zipf traffic so the top ~1% of queries take ~90% of search PV.
//  * Public: Software / VideoGame / Music — Amazon-like presets whose
//    head-query fractions match the paper's Table I (10.95% / 3.62% /
//    3.63%) and whose relative sizes follow the published statistics,
//    scaled to laptop scale.
//
// Scale: every preset is ~1000x smaller than the production data so that
// the full benchmark suite (6 models x 6 datasets) runs in minutes. The
// long-tail structure — the property under study — is preserved and checked
// by tests.

#ifndef GARCIA_DATA_PRESETS_H_
#define GARCIA_DATA_PRESETS_H_

#include <string>
#include <vector>

#include "data/scenario.h"

namespace garcia::data {

enum class DatasetId {
  kSepA,
  kSepB,
  kSepC,
  kSoftware,
  kVideoGame,
  kMusic,
};

/// All six, in paper order.
const std::vector<DatasetId>& AllDatasets();

/// The three industrial windows.
const std::vector<DatasetId>& IndustrialDatasets();

/// The three public-style datasets.
const std::vector<DatasetId>& PublicDatasets();

/// Human-readable name as printed in the paper's tables.
std::string DatasetName(DatasetId id);

/// The preset config. `scale` multiplies entity counts and impressions
/// (1.0 = default benchmark scale; tests use smaller scales).
ScenarioConfig PresetConfig(DatasetId id, double scale = 1.0);

/// Generates the preset scenario.
Scenario GeneratePreset(DatasetId id, double scale = 1.0);

}  // namespace garcia::data

#endif  // GARCIA_DATA_PRESETS_H_
