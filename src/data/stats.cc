#include "data/stats.h"

namespace garcia::data {

DatasetStats ComputeDatasetStats(const Scenario& s) {
  DatasetStats out;
  const size_t nq = s.num_queries();
  GARCIA_CHECK_GT(nq, 0u);
  out.head_query_share =
      static_cast<double>(s.split.head_queries.size()) / nq;
  out.tail_query_share =
      static_cast<double>(s.split.tail_queries.size()) / nq;

  uint64_t head_pv = 0, total_pv = 0;
  for (uint32_t q = 0; q < nq; ++q) {
    total_pv += s.query_exposure[q];
    if (s.split.is_head[q]) head_pv += s.query_exposure[q];
  }
  if (total_pv > 0) {
    out.head_pv_share = static_cast<double>(head_pv) / total_pv;
    out.tail_pv_share = 1.0 - out.head_pv_share;
  }
  out.num_train = s.train.size();
  out.num_validation = s.validation.size();
  out.num_test = s.test.size();
  return out;
}

GraphStats ComputeGraphStats(const Scenario& s) {
  GraphStats out;
  // Count links once (stored bidirectionally) per partition, tracking which
  // queries/services participate.
  std::vector<bool> head_service(s.num_services(), false);
  std::vector<bool> tail_service(s.num_services(), false);
  std::vector<bool> head_query(s.num_queries(), false);
  std::vector<bool> tail_query(s.num_queries(), false);
  for (const graph::Edge& e : s.graph.edges()) {
    if (!s.graph.IsQueryNode(e.src)) continue;  // one direction per link
    const uint32_t q = e.src;
    const uint32_t svc = s.graph.ServiceIdOf(e.dst);
    if (s.split.is_head[q]) {
      out.head_edges++;
      head_query[q] = true;
      head_service[svc] = true;
    } else {
      out.tail_edges++;
      tail_query[q] = true;
      tail_service[svc] = true;
    }
  }
  auto count = [](const std::vector<bool>& v) {
    size_t n = 0;
    for (bool b : v) n += b;
    return n;
  };
  out.head_nodes = count(head_query) + count(head_service);
  out.tail_nodes = count(tail_query) + count(tail_service);
  out.intent_nodes = s.forest.size();
  out.intent_edges = s.forest.size() - s.forest.num_trees();  // parent links
  return out;
}

}  // namespace garcia::data
