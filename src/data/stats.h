// Copyright (c) 2026 GARCIA reproduction authors.
// Dataset statistics matching the layout of the paper's Table I (query /
// search-PV shares, split sizes) and Table II (service-search-graph and
// intention-tree node/edge counts by partition).

#ifndef GARCIA_DATA_STATS_H_
#define GARCIA_DATA_STATS_H_

#include <cstddef>

#include "data/scenario.h"

namespace garcia::data {

/// Table I row for one dataset.
struct DatasetStats {
  double head_query_share = 0.0;  // fraction of queries that are head
  double tail_query_share = 0.0;
  double head_pv_share = 0.0;  // fraction of train-window impressions
  double tail_pv_share = 0.0;
  size_t num_train = 0;
  size_t num_validation = 0;
  size_t num_test = 0;
};

/// Table II row for one dataset.
struct GraphStats {
  // Head/tail service search subgraphs: nodes = partition queries that carry
  // at least one edge + services with at least one edge in the partition;
  // edges = undirected links.
  size_t head_nodes = 0;
  size_t head_edges = 0;
  size_t tail_nodes = 0;
  size_t tail_edges = 0;
  // Intention tree: all intentions; edges = parent links.
  size_t intent_nodes = 0;
  size_t intent_edges = 0;
};

DatasetStats ComputeDatasetStats(const Scenario& s);
GraphStats ComputeGraphStats(const Scenario& s);

}  // namespace garcia::data

#endif  // GARCIA_DATA_STATS_H_
