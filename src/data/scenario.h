// Copyright (c) 2026 GARCIA reproduction authors.
// Synthetic service-search scenario: the substitution for the paper's
// proprietary Alipay logs and Amazon-derived datasets (see DESIGN.md §2).
//
// A Scenario bundles everything an experiment needs: the intention forest,
// per-entity metadata, labeled (query, service, clicked) examples split into
// train/validation/test, the finalized service search graph built from the
// training window, and the head/tail exposure split.
//
// The generator plants a latent ground truth (per-intention concept vectors
// inherited down each tree) and produces clicks from it. Models never see
// the latents — only the graph, attributes, forest and examples — so the
// learning problem is real: recover the latent relevance structure, where
// tail queries have too little feedback to be learned without the graph /
// intention bridge GARCIA exploits.

#ifndef GARCIA_DATA_SCENARIO_H_
#define GARCIA_DATA_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/matrix.h"
#include "graph/graph_builder.h"
#include "graph/head_tail.h"
#include "graph/search_graph.h"
#include "intent/intention_forest.h"

namespace garcia::data {

/// One impression with its click label.
struct Example {
  uint32_t query = 0;
  uint32_t service = 0;
  float label = 0.0f;  // 1.0 clicked, 0.0 not clicked
  uint16_t day = 0;    // 1-based day within the simulated window
};

/// Knobs of the synthetic scenario. Defaults correspond to the industrial
/// presets; see presets.h for the six named configurations.
struct ScenarioConfig {
  std::string name = "scenario";
  uint64_t entity_seed = 1;  // population (intentions/queries/services)
  uint64_t event_seed = 2;   // impressions within the window

  // Population sizes.
  size_t num_queries = 2000;
  size_t num_services = 600;
  size_t num_intentions = 300;  // across all trees
  size_t num_trees = 12;
  size_t max_depth = 5;    // paper: at most 5-level intentions
  size_t max_branching = 4;
  size_t num_cities = 20;

  // Latent ground truth.
  size_t latent_dim = 16;
  float child_noise = 0.45f;   // intention inheritance noise
  float entity_noise = 0.35f;  // query/service around their intention

  // Observable node attributes (the paper's ~11 semantic attributes).
  // attr_noise is calibrated so content features alone cannot solve tail
  // queries (the condition under which the paper's long-tail phenomenon
  // exists): at 1.2 the attribute SNR is low enough that behavioral /
  // structural signal dominates, and tail queries genuinely underperform
  // for models without knowledge transfer.
  size_t attr_dim = 11;
  float attr_noise = 1.2f;

  // Traffic model.
  size_t num_impressions = 120000;
  double zipf_exponent = 1.7;  // tuned so top-1% queries ~= 90% of PV
  uint16_t num_days = 10;
  double p_same_tree = 0.7;   // impression shows an in-category service
  double p_same_leaf = 0.5;   // ...and within that, the exact intention
  // Click probability: sigmoid(w_rel * cos(latent_q, latent_s)
  //                            + w_quality * (quality - 0.5) + bias).
  double click_w_rel = 4.0;
  double click_w_quality = 2.0;
  double click_bias = -1.5;

  // Head/tail split: top fraction of queries by train-window exposure
  // (paper: "top 10 thousand queries", ~1-1.5% of all queries).
  double head_fraction = 0.01;

  // Example split.
  double validation_fraction = 0.1;
  double test_fraction = 0.1;

  // Graph construction.
  graph::GraphBuildConfig graph_config;
};

/// Per-service quality metadata (drives MAU / authoritative rating, the
/// case-study metrics of Fig. 11).
struct ServiceMeta {
  std::string name;
  double quality = 0.5;    // latent in [0, 1]
  uint64_t mau = 0;        // monthly active users
  int rating = 1;          // authoritative rating, 1..5 stars
};

/// A fully generated scenario.
struct Scenario {
  ScenarioConfig config;

  intent::IntentionForest forest;
  core::Matrix intent_latents;  // |forest| x latent_dim (ground truth)

  // Entities.
  std::vector<uint32_t> query_intent;    // leaf intention of each query
  std::vector<uint32_t> service_intent;  // leaf intention of each service
  std::vector<std::string> query_text;
  std::vector<ServiceMeta> services;
  std::vector<graph::CorrelationKeys> query_keys;
  std::vector<graph::CorrelationKeys> service_keys;
  core::Matrix query_latents;    // ground truth, hidden from models
  core::Matrix service_latents;  // ground truth, hidden from models

  // Feedback.
  std::vector<Example> train;
  std::vector<Example> validation;
  std::vector<Example> test;
  std::vector<uint64_t> query_exposure;  // train-window impressions per query

  // Derived structures.
  graph::SearchGraph graph;  // built from the training window
  graph::HeadTailSplit split;

  Scenario() : graph(0, 0, 0) {}

  size_t num_queries() const { return config.num_queries; }
  size_t num_services() const { return config.num_services; }

  /// Ground-truth click probability — the simulated user model. Used only
  /// by the data generator and by the online A/B simulator (Fig. 10), never
  /// by training code.
  double TrueClickProbability(uint32_t query, uint32_t service) const;
};

/// Generates a scenario from a config. Deterministic in the seeds.
Scenario GenerateScenario(const ScenarioConfig& config);

}  // namespace garcia::data

#endif  // GARCIA_DATA_SCENARIO_H_
