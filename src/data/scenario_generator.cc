#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/logging.h"
#include "core/rng.h"
#include "core/string_util.h"
#include "data/scenario.h"

namespace garcia::data {

using core::Matrix;
using core::Rng;

namespace {

double CosineRows(const Matrix& a, size_t i, const Matrix& b, size_t j) {
  GARCIA_CHECK_EQ(a.cols(), b.cols());
  double dot = 0.0, na = 0.0, nb = 0.0;
  const float* ra = a.row(i);
  const float* rb = b.row(j);
  for (size_t k = 0; k < a.cols(); ++k) {
    dot += static_cast<double>(ra[k]) * rb[k];
    na += static_cast<double>(ra[k]) * ra[k];
    nb += static_cast<double>(rb[k]) * rb[k];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 1e-12 ? dot / denom : 0.0;
}

double StableSigmoid(double z) {
  return z >= 0.0 ? 1.0 / (1.0 + std::exp(-z))
                  : std::exp(z) / (1.0 + std::exp(z));
}

/// Grows the intention forest: num_trees roots, children added breadth-first
/// with random branching until the intention budget is spent, never deeper
/// than max_depth levels. Names carry an inherited head token (so texts of
/// related intentions overlap) plus a fresh token.
void GrowForest(const ScenarioConfig& cfg, Rng* rng,
                intent::IntentionForest* forest) {
  struct Pending {
    uint32_t id;
    size_t depth;
    std::string head_token;
  };
  std::vector<Pending> frontier;
  for (size_t t = 0; t < cfg.num_trees; ++t) {
    const std::string head = core::StrFormat("cat%zu", t);
    const uint32_t root = forest->AddRoot(head);
    frontier.push_back({root, 0, head});
  }
  size_t budget = cfg.num_intentions > forest->size()
                      ? cfg.num_intentions - forest->size()
                      : 0;
  size_t cursor = 0;
  while (budget > 0 && cursor < frontier.size()) {
    const Pending cur = frontier[cursor++];
    if (cur.depth + 1 >= cfg.max_depth) continue;
    const size_t fanout = std::min<size_t>(
        budget, 1 + static_cast<size_t>(
                        rng->UniformInt(static_cast<uint64_t>(cfg.max_branching))));
    for (size_t c = 0; c < fanout; ++c) {
      const std::string token = core::StrFormat("w%zu", forest->size());
      const uint32_t id =
          forest->AddChild(cur.id, cur.head_token + " " + token);
      frontier.push_back({id, cur.depth + 1, cur.head_token});
      --budget;
      if (budget == 0) break;
    }
  }
  forest->Finalize();
}

/// Latent per intention: root ~ N(0, I); child = parent + child_noise * eps.
Matrix InheritLatents(const intent::IntentionForest& forest,
                      const ScenarioConfig& cfg, Rng* rng) {
  Matrix latents(forest.size(), cfg.latent_dim);
  for (const auto& level : forest.levels()) {
    for (uint32_t id : level) {
      const int32_t p = forest.parent(id);
      for (size_t k = 0; k < cfg.latent_dim; ++k) {
        const float base = p == intent::kNoParent
                               ? 0.0f
                               : latents.at(static_cast<uint32_t>(p), k);
        const float noise = p == intent::kNoParent ? 1.0f : cfg.child_noise;
        latents.at(id, k) =
            base + noise * static_cast<float>(rng->Normal());
      }
    }
  }
  return latents;
}

std::vector<uint32_t> CollectLeaves(const intent::IntentionForest& forest) {
  std::vector<uint32_t> leaves;
  for (uint32_t id = 0; id < forest.size(); ++id) {
    if (forest.IsLeaf(id)) leaves.push_back(id);
  }
  return leaves;
}

/// Correlation keys derived from the intention path: category = tree root,
/// brand = depth-1 ancestor (if any), city = random-or-absent. The brand /
/// category sharing is the "contextual bridge" between head and tail
/// entities under the same intention.
graph::CorrelationKeys KeysFor(const intent::IntentionForest& forest,
                               uint32_t intention, const ScenarioConfig& cfg,
                               Rng* rng) {
  graph::CorrelationKeys keys;
  const auto chain = forest.AncestorChain(intention);  // leaf..root
  keys.category = static_cast<int32_t>(chain.back());
  if (chain.size() >= 2) {
    keys.brand = static_cast<int32_t>(chain[chain.size() - 2]);
  }
  if (rng->Bernoulli(0.7)) {
    keys.city = static_cast<int32_t>(
        rng->UniformInt(static_cast<uint64_t>(cfg.num_cities)));
  }
  return keys;
}

}  // namespace

double Scenario::TrueClickProbability(uint32_t query,
                                      uint32_t service) const {
  GARCIA_CHECK_LT(query, num_queries());
  GARCIA_CHECK_LT(service, num_services());
  const double rel =
      CosineRows(query_latents, query, service_latents, service);
  const double quality = services[service].quality;
  return StableSigmoid(config.click_w_rel * rel +
                       config.click_w_quality * (quality - 0.5) +
                       config.click_bias);
}

Scenario GenerateScenario(const ScenarioConfig& cfg) {
  GARCIA_CHECK_GE(cfg.max_depth, 1u);
  GARCIA_CHECK_GT(cfg.num_queries, 0u);
  GARCIA_CHECK_GT(cfg.num_services, 0u);
  GARCIA_CHECK_GE(cfg.num_intentions, cfg.num_trees);

  Scenario s;
  s.config = cfg;
  Rng entity_rng(cfg.entity_seed);

  // --- population ---
  GrowForest(cfg, &entity_rng, &s.forest);
  s.intent_latents = InheritLatents(s.forest, cfg, &entity_rng);
  const std::vector<uint32_t> leaves = CollectLeaves(s.forest);
  GARCIA_CHECK(!leaves.empty());

  auto sample_entity = [&](std::vector<uint32_t>* intents, Matrix* latents,
                           size_t count) {
    *latents = Matrix(count, cfg.latent_dim);
    intents->resize(count);
    for (size_t i = 0; i < count; ++i) {
      const uint32_t leaf = leaves[entity_rng.UniformInt(
          static_cast<uint64_t>(leaves.size()))];
      (*intents)[i] = leaf;
      for (size_t k = 0; k < cfg.latent_dim; ++k) {
        latents->at(i, k) =
            s.intent_latents.at(leaf, k) +
            cfg.entity_noise * static_cast<float>(entity_rng.Normal());
      }
    }
  };
  sample_entity(&s.query_intent, &s.query_latents, cfg.num_queries);
  sample_entity(&s.service_intent, &s.service_latents, cfg.num_services);

  // Query text: the intention's token path plus an occasional modifier —
  // related queries overlap in tokens, which KTCL anchor mining exploits.
  s.query_text.resize(cfg.num_queries);
  for (size_t q = 0; q < cfg.num_queries; ++q) {
    std::string text = s.forest.name(s.query_intent[q]);
    if (entity_rng.Bernoulli(0.5)) {
      text += core::StrFormat(" m%d",
                              static_cast<int>(entity_rng.UniformInt(
                                  static_cast<uint64_t>(50))));
    }
    s.query_text[q] = text;
  }

  // Service metadata: quality drives MAU (log-scale) and rating.
  s.services.resize(cfg.num_services);
  for (size_t i = 0; i < cfg.num_services; ++i) {
    ServiceMeta& m = s.services[i];
    m.name = core::StrFormat("svc_%zu_%s", i,
                             s.forest.name(s.service_intent[i]).c_str());
    m.quality = std::clamp(entity_rng.Normal(0.5, 0.22), 0.02, 0.98);
    m.mau = static_cast<uint64_t>(
        std::round(std::exp(4.0 + 8.0 * m.quality +
                            0.3 * entity_rng.Normal())));
    m.rating = std::clamp(
        1 + static_cast<int>(std::floor(m.quality * 5.0 +
                                        0.5 * entity_rng.Normal())),
        1, 5);
  }

  // Correlation keys.
  s.query_keys.resize(cfg.num_queries);
  for (size_t q = 0; q < cfg.num_queries; ++q) {
    s.query_keys[q] = KeysFor(s.forest, s.query_intent[q], cfg, &entity_rng);
  }
  s.service_keys.resize(cfg.num_services);
  for (size_t i = 0; i < cfg.num_services; ++i) {
    s.service_keys[i] =
        KeysFor(s.forest, s.service_intent[i], cfg, &entity_rng);
  }

  // --- events ---
  Rng event_rng(cfg.event_seed);
  core::ZipfSampler traffic(cfg.num_queries, cfg.zipf_exponent);

  // Service pools by tree and by leaf for the impression candidate model.
  std::unordered_map<uint32_t, std::vector<uint32_t>> services_by_tree;
  std::unordered_map<uint32_t, std::vector<uint32_t>> services_by_leaf;
  for (uint32_t i = 0; i < cfg.num_services; ++i) {
    services_by_tree[s.forest.tree_of(s.service_intent[i])].push_back(i);
    services_by_leaf[s.service_intent[i]].push_back(i);
  }

  std::vector<Example> events;
  events.reserve(cfg.num_impressions);
  for (size_t n = 0; n < cfg.num_impressions; ++n) {
    Example e;
    e.query = static_cast<uint32_t>(traffic.Sample(&event_rng));
    e.day = static_cast<uint16_t>(
        1 + event_rng.UniformInt(static_cast<uint64_t>(cfg.num_days)));

    const uint32_t q_tree = s.forest.tree_of(s.query_intent[e.query]);
    const std::vector<uint32_t>* pool = nullptr;
    if (event_rng.Bernoulli(cfg.p_same_tree)) {
      if (event_rng.Bernoulli(cfg.p_same_leaf)) {
        auto it = services_by_leaf.find(s.query_intent[e.query]);
        if (it != services_by_leaf.end()) pool = &it->second;
      }
      if (pool == nullptr) {
        auto it = services_by_tree.find(q_tree);
        if (it != services_by_tree.end()) pool = &it->second;
      }
    }
    if (pool != nullptr && !pool->empty()) {
      e.service = (*pool)[event_rng.UniformInt(
          static_cast<uint64_t>(pool->size()))];
    } else {
      e.service = static_cast<uint32_t>(
          event_rng.UniformInt(static_cast<uint64_t>(cfg.num_services)));
    }

    e.label = event_rng.Bernoulli(s.TrueClickProbability(e.query, e.service))
                  ? 1.0f
                  : 0.0f;
    events.push_back(e);
  }

  // --- split ---
  const double p_val = cfg.validation_fraction;
  const double p_test = cfg.test_fraction;
  GARCIA_CHECK_LT(p_val + p_test, 1.0);
  for (const Example& e : events) {
    const double u = event_rng.Uniform();
    if (u < p_val) {
      s.validation.push_back(e);
    } else if (u < p_val + p_test) {
      s.test.push_back(e);
    } else {
      s.train.push_back(e);
    }
  }

  // --- exposure & head/tail split (train window only) ---
  s.query_exposure.assign(cfg.num_queries, 0);
  for (const Example& e : s.train) s.query_exposure[e.query]++;
  s.split =
      graph::HeadTailSplit::ByExposureFraction(s.query_exposure,
                                               cfg.head_fraction);

  // --- service search graph from the training window ---
  graph::GraphBuilder builder(cfg.num_queries, cfg.num_services,
                              cfg.attr_dim);
  builder.SetQueryCorrelations(s.query_keys);
  builder.SetServiceCorrelations(s.service_keys);
  for (const Example& e : s.train) {
    builder.AddInteraction(e.query, e.service, 1,
                           e.label > 0.5f ? 1 : 0);
  }
  // Observable attributes: noisy random projection of the latent vectors.
  {
    Rng attr_rng(cfg.entity_seed ^ 0x5851f42d4c957f2dULL);
    Matrix proj = Matrix::Randn(cfg.latent_dim, cfg.attr_dim, &attr_rng, 0.0f,
                                1.0f / std::sqrt(static_cast<float>(
                                           cfg.latent_dim)));
    Matrix qa = Matrix::Matmul(s.query_latents, proj);
    Matrix sa = Matrix::Matmul(s.service_latents, proj);
    for (size_t q = 0; q < cfg.num_queries; ++q) {
      for (size_t k = 0; k < cfg.attr_dim; ++k) {
        builder.attributes().at(q, k) =
            qa.at(q, k) + cfg.attr_noise * static_cast<float>(attr_rng.Normal());
      }
    }
    for (size_t i = 0; i < cfg.num_services; ++i) {
      for (size_t k = 0; k < cfg.attr_dim; ++k) {
        builder.attributes().at(cfg.num_queries + i, k) =
            sa.at(i, k) + cfg.attr_noise * static_cast<float>(attr_rng.Normal());
      }
    }
    // The last attribute column of services carries an observable quality
    // proxy (log-MAU scaled), mirroring production popularity features.
    for (size_t i = 0; i < cfg.num_services; ++i) {
      builder.attributes().at(cfg.num_queries + i, cfg.attr_dim - 1) =
          static_cast<float>(std::log1p(static_cast<double>(s.services[i].mau)) /
                             12.0);
    }
  }
  s.graph = builder.Build(cfg.graph_config);

  GARCIA_LOG(Debug) << "scenario " << cfg.name << ": " << s.train.size()
                    << " train / " << s.validation.size() << " val / "
                    << s.test.size() << " test, graph edges "
                    << s.graph.num_edges();
  return s;
}

}  // namespace garcia::data
