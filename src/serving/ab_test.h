// Copyright (c) 2026 GARCIA reproduction authors.
// Online A/B bucket-test simulator (Sec. V-F2, Fig. 10).
//
// The paper's production experiment is substituted by a simulated user
// population (see DESIGN.md): traffic follows the scenario's Zipf query
// distribution; each request shows the arm's top-K list; the user clicks
// according to the scenario's latent ground-truth click model with a
// position-discount cascade; a click converts to a "valid" click (the
// paper's Valid CTR / CVR analogue) with probability increasing in the
// service's quality. Both arms face identical sampled requests (paired
// buckets), isolating the ranker effect.

#ifndef GARCIA_SERVING_AB_TEST_H_
#define GARCIA_SERVING_AB_TEST_H_

#include <vector>

#include "data/scenario.h"
#include "serving/batch_ranker.h"
#include "serving/ranking_service.h"

namespace garcia::serving {

struct AbTestConfig {
  size_t num_days = 7;              // paper: 2022/10/01 - 2022/10/07
  size_t requests_per_day = 4000;
  size_t top_k = 10;                // list length shown to the user
  double position_decay = 0.85;     // examination prob multiplier per rank
  uint64_t seed = 1001;

  /// Optional fault profile (serving/fault_injector.h). When set, RunAbTest
  /// hands it to both arms via Ranker::PrepareForRun before the first
  /// request; fault-aware arms install it, plain arms ignore it. Not owned.
  const FaultProfile* fault_profile = nullptr;

  /// Batched-serving knobs: each arm's requests go through a BatchRanker
  /// with this config. Metrics are bit-identical for any num_threads /
  /// batch_size (the request indices, not the interleaving, drive every
  /// random stream); the default serves serially.
  ServeConfig serve;
};

/// One arm's daily outcome.
struct DailyMetrics {
  double ctr = 0.0;
  double valid_ctr = 0.0;
};

struct AbTestResult {
  std::vector<DailyMetrics> baseline;   // per day
  std::vector<DailyMetrics> treatment;  // per day

  /// Absolute improvement (treatment - baseline), as reported in Fig. 10.
  double CtrImprovement(size_t day) const;
  double ValidCtrImprovement(size_t day) const;
  double MeanCtrImprovement() const;
  double MeanValidCtrImprovement() const;
};

/// Runs the paired bucket test.
AbTestResult RunAbTest(const data::Scenario& scenario, const Ranker& baseline,
                       const Ranker& treatment, const AbTestConfig& config);

}  // namespace garcia::serving

#endif  // GARCIA_SERVING_AB_TEST_H_
