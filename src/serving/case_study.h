// Copyright (c) 2026 GARCIA reproduction authors.
// Case-study report (Sec. V-F3, Fig. 11): for a tail query, the top-K lists
// of two rankers annotated with each service's MAU and authoritative
// rating, plus the aggregate quality measures used to compare them.

#ifndef GARCIA_SERVING_CASE_STUDY_H_
#define GARCIA_SERVING_CASE_STUDY_H_

#include <string>
#include <vector>

#include "data/scenario.h"
#include "serving/ranking_service.h"

namespace garcia::serving {

struct CaseStudyEntry {
  uint32_t rank = 0;  // 1-based
  uint32_t service = 0;
  std::string name;
  uint64_t mau = 0;
  int rating = 1;
};

struct CaseStudy {
  uint32_t query = 0;
  std::string query_text;
  std::vector<CaseStudyEntry> baseline;
  std::vector<CaseStudyEntry> treatment;

  /// Mean MAU / rating of a list — the quality signals Fig. 11 shades.
  static double MeanMau(const std::vector<CaseStudyEntry>& list);
  static double MeanRating(const std::vector<CaseStudyEntry>& list);
};

CaseStudy BuildCaseStudy(const data::Scenario& scenario,
                         const Ranker& baseline, const Ranker& treatment,
                         uint32_t query, size_t k);

/// Picks representative tail queries: low exposure but non-trivial traffic,
/// sorted for determinism. Returns up to `count` query ids.
std::vector<uint32_t> PickTailCaseQueries(const data::Scenario& scenario,
                                          size_t count);

}  // namespace garcia::serving

#endif  // GARCIA_SERVING_CASE_STUDY_H_
