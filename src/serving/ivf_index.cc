#include "serving/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "core/crc32.h"
#include "core/fileio.h"
#include "core/macros.h"
#include "core/rng.h"

namespace garcia::serving {

namespace {

using ScoredId = std::pair<uint32_t, float>;

/// The (score desc, id asc) total order shared with kernels::TopKDot.
/// Selection and sorting under a total order are unique, which is what
/// makes every probe-scan partitioning — and, at full probe, the index
/// itself — agree with the brute-force scan byte for byte.
inline bool RanksBefore(const ScoredId& a, const ScoredId& b) {
  if (a.second != b.second) return a.second > b.second;
  return a.first < b.first;
}

/// Double-accumulated dot over ascending columns — the exact expression
/// TopKDot evaluates, so index scores equal brute-force scores bitwise.
inline float DotRowDouble(const float* a, const float* b, size_t dim) {
  double dot = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    dot += static_cast<double>(a[j]) * b[j];
  }
  return static_cast<float>(dot);
}

/// Squared L2 distance in double (k-means assignment metric).
inline double SquaredL2(const float* a, const float* b, size_t dim) {
  double d = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    const double diff = static_cast<double>(a[j]) - b[j];
    d += diff * diff;
  }
  return d;
}

/// Nearest centroid of one point: strictly smaller distance wins, ties
/// break by ascending centroid id (first minimum kept). Independent per
/// point, so the assignment pass shards freely.
uint32_t NearestCentroid(const float* point, const core::Matrix& centroids) {
  uint32_t best = 0;
  double best_dist = SquaredL2(point, centroids.row(0), centroids.cols());
  for (size_t c = 1; c < centroids.rows(); ++c) {
    const double d = SquaredL2(point, centroids.row(c), centroids.cols());
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<uint32_t>(c);
    }
  }
  return best;
}

/// Bounded top-k merge of candidates [lo, hi) of `cands` into `heap`
/// (ascending stored-row order), mirroring kernels.cc's PartialTopKRows.
void PartialTopKList(const float* query, size_t dim,
                     const core::Matrix& vectors,
                     const std::vector<uint32_t>& ids, size_t lo, size_t hi,
                     size_t k, std::vector<ScoredId>* out) {
  for (size_t r = lo; r < hi; ++r) {
    const ScoredId cand{ids[r], DotRowDouble(query, vectors.row(r), dim)};
    if (out->size() < k) {
      out->push_back(cand);
      std::push_heap(out->begin(), out->end(), RanksBefore);
    } else if (RanksBefore(cand, out->front())) {
      std::pop_heap(out->begin(), out->end(), RanksBefore);
      out->back() = cand;
      std::push_heap(out->begin(), out->end(), RanksBefore);
    }
  }
}

// ------------------------------------------------------------ persistence

// GIV1: float lists (meta, centroids, lists, vectors). GIV2: SQ8 lists
// (meta, centroids, lists, codes, scales) — the meta section grows a
// rerank_k field. Same container discipline; Load dispatches on magic.
constexpr char kMagic[4] = {'G', 'I', 'V', '1'};
constexpr char kMagicSq8[4] = {'G', 'I', 'V', '2'};
constexpr uint32_t kVersion = 1;

enum class SectionId : uint32_t {
  kMeta = 1,
  kCentroids = 2,
  kLists = 3,
  kVectors = 4,  // GIV1 slot 4
  kCodes = 4,    // GIV2 slot 4
  kScales = 5,   // GIV2 slot 5
};
constexpr uint32_t kNumSections = 4;
constexpr uint32_t kNumSectionsSq8 = 5;

const char* SectionName(uint32_t id, bool quantized) {
  switch (id) {
    case 1:
      return "meta";
    case 2:
      return "centroids";
    case 3:
      return "lists";
    case 4:
      return quantized ? "codes" : "vectors";
    case 5:
      return "scales";
  }
  return "unknown";
}

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendSection(std::string* out, SectionId id, const std::string& payload) {
  AppendPod(out, static_cast<uint32_t>(id));
  AppendPod(out, static_cast<uint64_t>(payload.size()));
  AppendPod(out, core::Crc32(payload.data(), payload.size()));
  out->append(payload);
}

/// Bounds-checked little cursor over loaded index bytes.
class ByteReader {
 public:
  ByteReader(const std::string& bytes, const std::string& origin)
      : bytes_(bytes), origin_(origin) {}

  template <typename T>
  core::Status Read(T* out) {
    if (pos_ + sizeof(T) > bytes_.size()) {
      return core::Status::InvalidArgument("truncated index " + origin_);
    }
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return core::Status::Ok();
  }

  core::Status ReadBytes(void* out, size_t n) {
    if (pos_ + n > bytes_.size()) {
      return core::Status::InvalidArgument("truncated index " + origin_);
    }
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return core::Status::Ok();
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  const std::string& bytes_;
  const std::string& origin_;
  size_t pos_ = 0;
};

}  // namespace

// ------------------------------------------------------------- resolution

size_t IvfIndex::ResolveNlist(size_t nlist, size_t rows) {
  GARCIA_CHECK_GT(rows, 0u);
  if (nlist == 0) {
    nlist = static_cast<size_t>(std::lround(std::sqrt(
        static_cast<double>(rows))));
  }
  return std::min(std::max<size_t>(nlist, 1), rows);
}

size_t IvfIndex::ResolveNprobe(size_t nprobe, size_t nlist) {
  GARCIA_CHECK_GT(nlist, 0u);
  if (nprobe == 0) nprobe = nlist / 4;
  return std::min(std::max<size_t>(nprobe, 1), nlist);
}

size_t IvfIndex::ResolveRerankK(size_t rerank_k, size_t k) {
  if (rerank_k == 0) rerank_k = std::max<size_t>(4 * k, 32);
  return std::max(rerank_k, k);
}

// ------------------------------------------------------------------ build

IvfIndex IvfIndex::Build(const core::Matrix& catalog,
                         const RetrievalConfig& config,
                         const core::ExecutionContext& ctx) {
  const size_t n = catalog.rows();
  const size_t dim = catalog.cols();
  GARCIA_CHECK_GT(n, 0u);
  GARCIA_CHECK_GT(dim, 0u);
  const size_t nlist = ResolveNlist(config.nlist, n);

  // Init: nlist distinct catalog rows drawn from the seed stream. The draw
  // is serial, so the starting centroids depend on the seed alone.
  IvfIndex index;
  index.seed_ = config.seed;
  index.default_nprobe_ = ResolveNprobe(config.nprobe, nlist);
  index.centroids_ = core::Matrix(nlist, dim);
  {
    core::Rng rng(config.seed);
    std::vector<size_t> init = rng.SampleWithoutReplacement(n, nlist);
    for (size_t c = 0; c < nlist; ++c) {
      index.centroids_.CopyRowFrom(catalog, init[c], c);
    }
  }

  // Lloyd sweeps, fixed count. Both phases shard over independent output
  // coordinates with per-destination accumulation in ascending source
  // order, so any thread count reproduces the serial sweep exactly.
  std::vector<uint32_t> assign(n, 0);
  std::vector<uint32_t> members(n);       // point ids, grouped by centroid
  std::vector<uint32_t> offsets(nlist + 1, 0);
  const size_t min_assign_shard = ctx.tuning().min_rows_per_shard;
  const size_t min_update_shard = ctx.tuning().min_segments_per_shard;
  for (size_t iter = 0; iter < kKmeansIterations; ++iter) {
    // Assignment: each point independently picks its nearest centroid.
    ctx.ShardedFor(0, n, min_assign_shard, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        assign[i] = NearestCentroid(catalog.row(i), index.centroids_);
      }
    });
    // Counting sort of points by centroid: one serial O(n) pass building
    // each centroid's member list in ascending point id.
    std::fill(offsets.begin(), offsets.end(), 0u);
    for (size_t i = 0; i < n; ++i) ++offsets[assign[i] + 1];
    for (size_t c = 0; c < nlist; ++c) offsets[c + 1] += offsets[c];
    {
      std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
      for (size_t i = 0; i < n; ++i) {
        members[cursor[assign[i]]++] = static_cast<uint32_t>(i);
      }
    }
    // Update: each centroid averages its members (double accumulation,
    // ascending point id). An emptied centroid keeps its previous
    // position — deterministic, and a dead list simply never wins probes.
    ctx.ShardedFor(0, nlist, min_update_shard, [&](size_t clo, size_t chi) {
      std::vector<double> sum(dim);
      for (size_t c = clo; c < chi; ++c) {
        const size_t begin = offsets[c], end = offsets[c + 1];
        if (begin == end) continue;
        std::fill(sum.begin(), sum.end(), 0.0);
        for (size_t m = begin; m < end; ++m) {
          const float* row = catalog.row(members[m]);
          for (size_t j = 0; j < dim; ++j) sum[j] += row[j];
        }
        const double inv = 1.0 / static_cast<double>(end - begin);
        float* centroid = index.centroids_.row(c);
        for (size_t j = 0; j < dim; ++j) {
          centroid[j] = static_cast<float>(sum[j] * inv);
        }
      }
    });
  }

  // Final assignment against the converged centroids, then the contiguous
  // per-list layout in one pass: ids grouped by list (ascending id within
  // each list — the counting sort preserves point order) and the catalog
  // rows copied into the same permutation so a probe scans one contiguous
  // block.
  ctx.ShardedFor(0, n, min_assign_shard, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      assign[i] = NearestCentroid(catalog.row(i), index.centroids_);
    }
  });
  std::fill(offsets.begin(), offsets.end(), 0u);
  for (size_t i = 0; i < n; ++i) ++offsets[assign[i] + 1];
  for (size_t c = 0; c < nlist; ++c) offsets[c + 1] += offsets[c];
  index.list_offsets_ = offsets;
  index.ids_.resize(n);
  {
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (size_t i = 0; i < n; ++i) {
      index.ids_[cursor[assign[i]]++] = static_cast<uint32_t>(i);
    }
  }
  if (config.mode == RetrievalMode::kIvfSq8) {
    // SQ8 storage: codes + one scale per stored row, in list order. Each
    // slot encodes one catalog row independently into disjoint output
    // ranges, so the shard partitioning cannot change a byte. No float
    // copy is kept — the exact re-rank reads the caller's catalog.
    index.quantized_ = true;
    index.default_rerank_k_ = config.rerank_k;
    index.codes_.resize(n * dim);
    index.scales_.resize(n);
    ctx.ShardedFor(0, n, min_assign_shard, [&](size_t lo, size_t hi) {
      for (size_t slot = lo; slot < hi; ++slot) {
        core::kernels::sq8::EncodeRow(catalog.row(index.ids_[slot]), dim,
                                      index.codes_.data() + slot * dim,
                                      &index.scales_[slot]);
      }
    });
    index.RecomputeListScaleMax();
    index.catalog_ = &catalog;
  } else {
    index.vectors_ = core::Matrix(n, dim);
    for (size_t slot = 0; slot < n; ++slot) {
      index.vectors_.CopyRowFrom(catalog, index.ids_[slot], slot);
    }
  }
  return index;
}

void IvfIndex::RecomputeListScaleMax() {
  list_scale_max_.assign(nlist(), 0.0f);
  for (size_t c = 0; c < nlist(); ++c) {
    for (size_t r = list_offsets_[c]; r < list_offsets_[c + 1]; ++r) {
      list_scale_max_[c] = std::max(list_scale_max_[c], scales_[r]);
    }
  }
}

void IvfIndex::AttachRerankCatalog(const core::Matrix& catalog) {
  GARCIA_CHECK(quantized_);
  GARCIA_CHECK_EQ(catalog.rows(), size());
  GARCIA_CHECK_EQ(catalog.cols(), dim());
  catalog_ = &catalog;
}

size_t IvfIndex::ListStorageBytes() const {
  if (quantized_) {
    return codes_.size() * sizeof(int8_t) + scales_.size() * sizeof(float);
  }
  return vectors_.size() * sizeof(float);
}

size_t IvfIndex::MemoryBytes() const {
  return centroids_.size() * sizeof(float) +
         list_offsets_.size() * sizeof(uint32_t) +
         ids_.size() * sizeof(uint32_t) +
         list_scale_max_.size() * sizeof(float) + ListStorageBytes();
}

// ------------------------------------------------------------------ query

RankedList IvfIndex::Query(const core::ExecutionContext& ctx,
                           const float* query, size_t k, size_t nprobe,
                           size_t rerank_k, QueryStats* stats) const {
  GARCIA_CHECK(!empty());
  nprobe = std::min(std::max<size_t>(nprobe, 1), nlist());
  RankedList result;
  if (k == 0) return result;

  // Coarse stage: rank centroids by inner product through the shared
  // top-K kernel (score desc, id asc — the probe order is part of the
  // determinism contract and of the nprobe-monotonicity argument: probe
  // sets are nested as nprobe grows).
  RankedList probes =
      core::kernels::TopKDot(ctx, query, dim(), centroids_, nprobe);

  auto list_len = [&](uint32_t list) {
    return static_cast<size_t>(list_offsets_[list + 1] - list_offsets_[list]);
  };
  size_t num_candidates = 0;
  for (const auto& [list, score] : probes) num_candidates += list_len(list);

  // Serving contract: min(k, size()) results, always — a request must not
  // fall off the end of the degradation chain just because its nprobe-best
  // lists happen to be underpopulated (dead clusters). When the probed
  // prefix holds too few candidates, extend it down the SAME centroid
  // ranking until it has enough. The effective probe set is still a prefix
  // of the full centroid ranking, so probe sets stay nested in nprobe
  // (recall stays monotone) and nprobe >= nlist is unaffected.
  const size_t want = std::min(k, ids_.size());
  if (num_candidates < want && probes.size() < nlist()) {
    probes = core::kernels::TopKDot(ctx, query, dim(), centroids_, nlist());
    size_t used = 0;
    num_candidates = 0;
    for (; used < probes.size() && (used < nprobe || num_candidates < want);
         ++used) {
      num_candidates += list_len(probes[used].first);
    }
    probes.resize(used);
  }
  k = std::min(k, num_candidates);
  if (k == 0) return result;

  if (quantized_) return QuerySq8(ctx, query, k, probes, rerank_k, stats);

  // Fine stage: exact dots over the probed lists. Selection under the
  // total order is unique, so the shard partitioning cannot change the
  // answer; the ordered merge releases early shards while later ones are
  // still scanning (the TopKDot pattern).
  if (!ctx.parallel() || probes.size() < 2) {
    result.reserve(k);
    for (const auto& [list, score] : probes) {
      PartialTopKList(query, dim(), vectors_, ids_, list_offsets_[list],
                      list_offsets_[list + 1], k, &result);
    }
  } else {
    std::vector<std::vector<ScoredId>> partial(probes.size());
    core::kernels::OrderedShardMerge(
        ctx, probes.size(), /*min_shard=*/1,
        [&](size_t plo, size_t phi) {
          for (size_t p = plo; p < phi; ++p) {
            const uint32_t list = probes[p].first;
            partial[p].reserve(k);
            PartialTopKList(query, dim(), vectors_, ids_,
                            list_offsets_[list], list_offsets_[list + 1], k,
                            &partial[p]);
          }
        },
        [&](size_t plo, size_t phi) {
          for (size_t p = plo; p < phi; ++p) {
            result.insert(result.end(), partial[p].begin(), partial[p].end());
          }
        });
  }
  std::partial_sort(result.begin(),
                    result.begin() + static_cast<ptrdiff_t>(k), result.end(),
                    RanksBefore);
  result.resize(k);
  return result;
}

RankedList IvfIndex::Query(const float* query, size_t k) const {
  return Query(core::CurrentExecution(), query, k, default_nprobe_,
               default_rerank_k_);
}

// -------------------------------------------------------------- SQ8 query

RankedList IvfIndex::QuerySq8(const core::ExecutionContext& ctx,
                              const float* query, size_t k,
                              const RankedList& probes, size_t rerank_k,
                              QueryStats* stats) const {
  GARCIA_CHECK(catalog_ != nullptr)
      << "quantized IvfIndex queried without a re-rank catalog "
         "(AttachRerankCatalog after Load)";
  const size_t d = dim();

  // Stage 1: the asymmetric int8 scan scores every probed candidate into
  // one flat buffer (slot order = probe order, ascending row within a
  // list — fixed, so the buffer is thread-count-invariant).
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  ranges.reserve(probes.size());
  std::vector<size_t> prefix(probes.size() + 1, 0);
  for (size_t p = 0; p < probes.size(); ++p) {
    const uint32_t list = probes[p].first;
    ranges.emplace_back(list_offsets_[list], list_offsets_[list + 1]);
    prefix[p + 1] = prefix[p] + (ranges[p].second - ranges[p].first);
  }
  const size_t total = prefix.back();
  GARCIA_CHECK_GE(total, k);
  const core::kernels::sq8::QueryCodes qc =
      core::kernels::sq8::QuantizeQuery(query, d);
  std::vector<float> approx(total);
  core::kernels::sq8::ScanDots(ctx, qc, codes_.data(), scales_.data(), d,
                               ranges, approx.data());
  if (stats != nullptr) stats->quantized_rows += total;

  // Stage 2a: the re-rank cutoff. T = the R-th best approximate score (a
  // multiset statistic — independent of scan order), B = the error band
  // |exact - approx| can reach over the probed rows. Every candidate with
  // approx >= T - 2B is re-scored exactly: a candidate below the cutoff
  // has >= R candidates whose EXACT score is strictly higher (kernels.h
  // band argument), so it provably cannot enter the exact top-k. That
  // makes the result identical to the float index for every rerank_k —
  // rerank_k only moves how far below T the guarantee starts paying.
  const size_t r_depth = std::min(ResolveRerankK(rerank_k, k), total);
  double cutoff = -std::numeric_limits<double>::infinity();
  if (r_depth < total) {
    std::vector<float> top(approx);
    std::nth_element(top.begin(), top.begin() + (r_depth - 1), top.end(),
                     std::greater<float>());
    float band_scale = 0.0f;
    for (const auto& [list, score] : probes) {
      band_scale = std::max(band_scale, list_scale_max_[list]);
    }
    const double band =
        static_cast<double>(band_scale) * qc.ErrorBandPerUnitScale(d);
    cutoff = static_cast<double>(top[r_depth - 1]) - 2.0 * band;
  }

  // Stage 2b: exact re-rank. Survivors are collected in ascending slot
  // order (a deterministic set — the cutoff is a pure function of the
  // scan), re-scored against the original catalog rows with the exact
  // TopKDot expression (disjoint writes, pure per-row), and the top k
  // selected serially under the shared total order.
  std::vector<uint32_t> survivors;
  survivors.reserve(std::min(total, 2 * r_depth));
  {
    size_t p = 0;
    for (size_t slot = 0; slot < total; ++slot) {
      while (prefix[p + 1] <= slot) ++p;
      if (static_cast<double>(approx[slot]) >= cutoff) {
        survivors.push_back(ranges[p].first +
                            static_cast<uint32_t>(slot - prefix[p]));
      }
    }
  }
  GARCIA_CHECK_GE(survivors.size(), k);
  if (stats != nullptr) stats->rerank_rows += survivors.size();
  std::vector<float> exact(survivors.size());
  ctx.ShardedFor(0, survivors.size(), ctx.tuning().min_rows_per_shard,
                 [&](size_t lo, size_t hi) {
                   for (size_t i = lo; i < hi; ++i) {
                     exact[i] = DotRowDouble(
                         query, catalog_->row(ids_[survivors[i]]), d);
                   }
                 });
  RankedList result;
  result.reserve(k);
  for (size_t i = 0; i < survivors.size(); ++i) {
    const ScoredId cand{ids_[survivors[i]], exact[i]};
    if (result.size() < k) {
      result.push_back(cand);
      std::push_heap(result.begin(), result.end(), RanksBefore);
    } else if (RanksBefore(cand, result.front())) {
      std::pop_heap(result.begin(), result.end(), RanksBefore);
      result.back() = cand;
      std::push_heap(result.begin(), result.end(), RanksBefore);
    }
  }
  std::sort_heap(result.begin(), result.end(), RanksBefore);
  return result;
}

// ------------------------------------------------------------ persistence

core::Status IvfIndex::Save(const std::string& path) const {
  GARCIA_CHECK(!empty());
  std::string meta;
  AppendPod(&meta, static_cast<uint64_t>(size()));
  AppendPod(&meta, static_cast<uint64_t>(dim()));
  AppendPod(&meta, static_cast<uint64_t>(nlist()));
  AppendPod(&meta, static_cast<uint64_t>(default_nprobe_));
  AppendPod(&meta, seed_);
  if (quantized_) AppendPod(&meta, static_cast<uint64_t>(default_rerank_k_));

  std::string centroids(reinterpret_cast<const char*>(centroids_.data()),
                        centroids_.size() * sizeof(float));

  std::string lists;
  lists.reserve((list_offsets_.size() + ids_.size()) * sizeof(uint32_t));
  lists.append(reinterpret_cast<const char*>(list_offsets_.data()),
               list_offsets_.size() * sizeof(uint32_t));
  lists.append(reinterpret_cast<const char*>(ids_.data()),
               ids_.size() * sizeof(uint32_t));

  std::string bytes;
  bytes.reserve(64 + meta.size() + centroids.size() + lists.size() +
                ListStorageBytes());
  if (quantized_) {
    std::string codes(reinterpret_cast<const char*>(codes_.data()),
                      codes_.size() * sizeof(int8_t));
    std::string scales(reinterpret_cast<const char*>(scales_.data()),
                       scales_.size() * sizeof(float));
    bytes.append(kMagicSq8, 4);
    AppendPod(&bytes, kVersion);
    AppendPod(&bytes, kNumSectionsSq8);
    AppendSection(&bytes, SectionId::kMeta, meta);
    AppendSection(&bytes, SectionId::kCentroids, centroids);
    AppendSection(&bytes, SectionId::kLists, lists);
    AppendSection(&bytes, SectionId::kCodes, codes);
    AppendSection(&bytes, SectionId::kScales, scales);
  } else {
    std::string vectors(reinterpret_cast<const char*>(vectors_.data()),
                        vectors_.size() * sizeof(float));
    bytes.append(kMagic, 4);
    AppendPod(&bytes, kVersion);
    AppendPod(&bytes, kNumSections);
    AppendSection(&bytes, SectionId::kMeta, meta);
    AppendSection(&bytes, SectionId::kCentroids, centroids);
    AppendSection(&bytes, SectionId::kLists, lists);
    AppendSection(&bytes, SectionId::kVectors, vectors);
  }
  return core::WriteFileAtomic(path, bytes.data(), bytes.size());
}

core::Result<IvfIndex> IvfIndex::Load(const std::string& path) {
  auto bytes_or = core::ReadFile(path, kMaxIndexBytes);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::string& bytes = bytes_or.value();
  ByteReader reader(bytes, path);

  char magic[4];
  GARCIA_RETURN_IF_ERROR(reader.ReadBytes(magic, 4));
  bool quantized = false;
  if (std::memcmp(magic, kMagicSq8, 4) == 0) {
    quantized = true;
  } else if (std::memcmp(magic, kMagic, 4) != 0) {
    return core::Status::InvalidArgument(path + " is not an IVF index");
  }
  const uint32_t want_sections = quantized ? kNumSectionsSq8 : kNumSections;
  uint32_t version = 0, num_sections = 0;
  GARCIA_RETURN_IF_ERROR(reader.Read(&version));
  if (version != kVersion) {
    return core::Status::InvalidArgument(
        "unsupported IVF index version " + std::to_string(version) + " in " +
        path);
  }
  GARCIA_RETURN_IF_ERROR(reader.Read(&num_sections));
  if (num_sections != want_sections) {
    return core::Status::InvalidArgument("corrupt IVF index header in " +
                                         path);
  }

  // Sections arrive in fixed order; each payload is CRC-checked before it
  // is interpreted, so a bit flip is localized to a named section.
  std::string payloads[kNumSectionsSq8];
  for (uint32_t s = 0; s < want_sections; ++s) {
    uint32_t id = 0, crc = 0;
    uint64_t size = 0;
    GARCIA_RETURN_IF_ERROR(reader.Read(&id));
    GARCIA_RETURN_IF_ERROR(reader.Read(&size));
    GARCIA_RETURN_IF_ERROR(reader.Read(&crc));
    if (id != s + 1) {
      return core::Status::InvalidArgument(
          "unexpected IVF index section order in " + path);
    }
    if (size > reader.remaining()) {
      return core::Status::InvalidArgument("truncated index " + path);
    }
    payloads[s].resize(size);
    GARCIA_RETURN_IF_ERROR(reader.ReadBytes(payloads[s].data(), size));
    if (core::Crc32(payloads[s].data(), size) != crc) {
      return core::Status::InvalidArgument(
          std::string("IVF index section '") + SectionName(id, quantized) +
          "' checksum mismatch in " + path + " (stored index is corrupt)");
    }
  }
  if (reader.remaining() != 0) {
    return core::Status::InvalidArgument(
        "trailing garbage after IVF index payload in " + path);
  }

  // Meta: counts first, then every other section's size is implied and
  // verified before any reinterpretation.
  const std::string& meta = payloads[0];
  const size_t want_meta = (quantized ? 6 : 5) * sizeof(uint64_t);
  if (meta.size() != want_meta) {
    return core::Status::InvalidArgument("corrupt IVF meta section in " +
                                         path);
  }
  uint64_t n = 0, dim = 0, nlist = 0, nprobe = 0, seed = 0, rerank_k = 0;
  std::memcpy(&n, meta.data(), 8);
  std::memcpy(&dim, meta.data() + 8, 8);
  std::memcpy(&nlist, meta.data() + 16, 8);
  std::memcpy(&nprobe, meta.data() + 24, 8);
  std::memcpy(&seed, meta.data() + 32, 8);
  if (quantized) std::memcpy(&rerank_k, meta.data() + 40, 8);
  if (n == 0 || dim == 0 || nlist == 0 || nlist > n || nprobe == 0 ||
      nprobe > nlist || n > (uint64_t{1} << 32) ||
      dim > (uint64_t{1} << 16) || rerank_k > (uint64_t{1} << 32)) {
    return core::Status::InvalidArgument("corrupt IVF meta section in " +
                                         path);
  }
  if (payloads[1].size() != nlist * dim * sizeof(float) ||
      payloads[2].size() != (nlist + 1 + n) * sizeof(uint32_t)) {
    return core::Status::InvalidArgument(
        "IVF index section sizes disagree with meta in " + path);
  }
  if (quantized ? (payloads[3].size() != n * dim * sizeof(int8_t) ||
                   payloads[4].size() != n * sizeof(float))
                : payloads[3].size() != n * dim * sizeof(float)) {
    return core::Status::InvalidArgument(
        "IVF index section sizes disagree with meta in " + path);
  }

  IvfIndex index;
  index.seed_ = seed;
  index.default_nprobe_ = static_cast<size_t>(nprobe);
  index.centroids_ = core::Matrix(nlist, dim);
  std::memcpy(index.centroids_.data(), payloads[1].data(),
              payloads[1].size());
  index.list_offsets_.resize(nlist + 1);
  std::memcpy(index.list_offsets_.data(), payloads[2].data(),
              (nlist + 1) * sizeof(uint32_t));
  index.ids_.resize(n);
  std::memcpy(index.ids_.data(),
              payloads[2].data() + (nlist + 1) * sizeof(uint32_t),
              n * sizeof(uint32_t));
  if (quantized) {
    index.quantized_ = true;
    index.default_rerank_k_ = static_cast<size_t>(rerank_k);
    index.codes_.resize(n * dim);
    std::memcpy(index.codes_.data(), payloads[3].data(), payloads[3].size());
    index.scales_.resize(n);
    std::memcpy(index.scales_.data(), payloads[4].data(),
                payloads[4].size());
    for (float s : index.scales_) {
      if (!(s >= 0.0f) || !std::isfinite(s)) {
        return core::Status::InvalidArgument("corrupt IVF scale table in " +
                                             path);
      }
    }
  } else {
    index.vectors_ = core::Matrix(n, dim);
    std::memcpy(index.vectors_.data(), payloads[3].data(),
                payloads[3].size());
  }

  // Structural validation: offsets must be a monotone cover of [0, n] and
  // every stored id must be a valid catalog row.
  if (index.list_offsets_.front() != 0 || index.list_offsets_.back() != n) {
    return core::Status::InvalidArgument("corrupt IVF list offsets in " +
                                         path);
  }
  for (size_t c = 0; c < nlist; ++c) {
    if (index.list_offsets_[c] > index.list_offsets_[c + 1]) {
      return core::Status::InvalidArgument("corrupt IVF list offsets in " +
                                           path);
    }
  }
  for (uint32_t id : index.ids_) {
    if (id >= n) {
      return core::Status::InvalidArgument("corrupt IVF id table in " + path);
    }
  }
  // The per-list band bound is derived state: rebuild it after the list
  // layout is known-good.
  if (quantized) index.RecomputeListScaleMax();
  return index;
}

}  // namespace garcia::serving
