// Copyright (c) 2026 GARCIA reproduction authors.
// Serving-side health counters: what the on-call dashboard would show.

#ifndef GARCIA_SERVING_SERVING_HEALTH_H_
#define GARCIA_SERVING_SERVING_HEALTH_H_

#include <array>
#include <cstdint>
#include <string>

namespace garcia::serving {

/// The degradation chain tiers, in order of decreasing fidelity.
enum class ServingTier : int {
  kFresh = 0,       // today's embedding dump
  kStale = 1,       // yesterday's snapshot
  kHeadAnchor = 2,  // mined head-anchor embedding (KTCL machinery)
  kText = 3,        // character-n-gram text encoder
  kPopularity = 4,  // popularity prior
};
constexpr size_t kNumServingTiers = 5;

const char* ServingTierName(ServingTier tier);

/// Plain counters; the owner (ResilientRanker) serializes updates.
struct ServingHealth {
  uint64_t requests = 0;
  uint64_t attempts = 0;             // primary-store lookup attempts
  uint64_t retries = 0;              // backoff sleeps taken
  uint64_t transient_failures = 0;   // Unavailable outcomes observed
  uint64_t missing_ids = 0;          // cold-start ids absent from the dump
  uint64_t corrupt_rows = 0;         // rows rejected by the finite check
  uint64_t deadline_exceeded = 0;    // requests that ran out of budget
  uint64_t breaker_short_circuits = 0;  // lookups skipped while open
  uint64_t breaker_to_open = 0;
  uint64_t breaker_to_half_open = 0;
  uint64_t breaker_to_closed = 0;
  /// Histogram of which tier finally served each request.
  std::array<uint64_t, kNumServingTiers> served_at_tier{};

  // Scoring path of the embedding tiers: the IVF index is the fresh
  // (sub-linear) path; the brute-force catalog scan is its degradation
  // fallback — always correct, linear in the catalog. An index dump that
  // fails to load (bit flip, truncation) leaves brute force serving and is
  // counted, so the dashboard shows both the cause and the ongoing cost.
  uint64_t scored_via_index = 0;       // embedding requests probed the index
  uint64_t scored_brute_force = 0;     // embedding requests full-scanned
  uint64_t index_load_failures = 0;    // corrupt/unreadable index dumps

  // SQ8 two-stage path (quantized index only): how many requests ran the
  // int8 scan, and how many candidate rows the exact re-rank touched in
  // total — rerank_rows / quantized_scans is the mean re-rank depth, the
  // knob-tuning number next to rerank_k. index_memory_bytes is the
  // resident footprint of the installed index (0 = none installed), the
  // dashboard's view of the ~4x SQ8 saving.
  uint64_t quantized_scans = 0;        // requests served by the SQ8 path
  uint64_t rerank_rows = 0;            // exact re-rank rows, summed
  uint64_t index_memory_bytes = 0;     // MemoryBytes() of installed index

  /// Average index of the serving tier (0 = all fresh). The headline
  /// degradation metric.
  double MeanFallbackDepth() const;
  /// Fraction of requests served by the fresh store.
  double FreshServeRate() const;

  std::string ToString() const;
  /// Emits ToString() through core/logging at Info level.
  void Log() const;
  void Reset() { *this = ServingHealth(); }
};

}  // namespace garcia::serving

#endif  // GARCIA_SERVING_SERVING_HEALTH_H_
