// Copyright (c) 2026 GARCIA reproduction authors.
// Fault-tolerant online ranker: retries, circuit breaking, and a GARCIA-
// specific graceful degradation chain.
//
// The chain mirrors how a production deployment of Fig. 9 keeps answering
// when the embedding path fails, in decreasing fidelity:
//   0. fresh   — today's embedding dump (through the fault injector, with a
//                per-request deadline budget, bounded retry with exponential
//                backoff + jitter, and a circuit breaker over the store);
//   1. stale   — yesterday's snapshot (cold-start ids may be absent);
//   2. anchor  — the mined head-anchor query's embedding: the same KTCL
//                anchor pairs that transfer knowledge to tail queries at
//                training time (models/contrastive) stand in at serving
//                time, since the head anchor is ~always in every dump;
//   3. text    — character-n-gram text similarity (models/text_encoder),
//                the encoder-side stand-in for the paper's BERT module;
//   4. popularity — a static popularity prior; always answers.
// Every request is served by some tier: Rank() never aborts.
//
// Concurrency & determinism (DESIGN.md §5f, §5j): Rank()/RankAt() may be
// called from any number of threads. Each request carries an index; its
// fault and backoff draws come from a private stream seeded by (profile
// seed, run seed, index), and the shared mutable state — manual clock,
// circuit breaker, health counters, injector — is advanced in ascending
// index order by a core::TicketGate (per-request countdown handoff:
// request t releases exactly request t+1, no broadcast cv), while the
// expensive top-K scan runs fully concurrent outside both the gate and
// the mutex. A fixed profile + seed therefore yields the same per-request
// tier decision and ranked list for every thread count and interleaving,
// and the breaker/health totals match a serial pass exactly.

#ifndef GARCIA_SERVING_RESILIENT_RANKER_H_
#define GARCIA_SERVING_RESILIENT_RANKER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/backoff.h"
#include "core/clock.h"
#include "core/rng.h"
#include "core/taskgraph.h"
#include "models/text_encoder.h"
#include "serving/fault_injector.h"
#include "serving/ranking_service.h"
#include "serving/resilience.h"
#include "serving/serving_health.h"

namespace garcia::serving {

/// Tier-3 fallback: ranks services by character-n-gram cosine between the
/// query text and service names. No embeddings involved.
class TextRanker : public Ranker {
 public:
  TextRanker(std::vector<std::string> query_texts,
             const std::vector<std::string>& service_texts);

  RankedList Rank(uint32_t query, size_t k) const override;

 private:
  models::NgramTextEncoder encoder_;
  std::vector<std::string> query_texts_;
  std::vector<models::SparseVector> service_embeddings_;
};

/// Tier-4 fallback: a fixed query-independent ordering by popularity
/// weight (e.g. MAU, exposure, or global CTR). Always answers.
class PopularityRanker : public Ranker {
 public:
  explicit PopularityRanker(const std::vector<double>& popularity);

  RankedList Rank(uint32_t query, size_t k) const override;

 private:
  RankedList ranked_;  // full precomputed ordering
};

struct ResilienceConfig {
  size_t max_attempts = 3;          // primary lookups per request
  uint64_t deadline_micros = 50000; // per-request budget
  core::BackoffConfig backoff;
  BreakerConfig breaker;
  uint64_t seed = 7;                // base of the per-request jitter streams
  /// Simulated time between request arrivals (advanced at the top of each
  /// Rank call). Gives the breaker cooldown a chance to elapse even while
  /// lookups are being short-circuited: 100us ~= a 10k-QPS replica.
  uint64_t inter_request_micros = 100;
};

/// Wraps the EmbeddingRanker scoring path (inner-product top-K over the
/// service matrix) with the fault-tolerance machinery above. Thread-safe
/// and deterministic under concurrency (see the header comment): the
/// resolve phase — fault draws, retries, breaker, tier decision — runs
/// under one mutex in ascending request-index order; scoring runs outside
/// it.
class ResilientRanker : public Ranker {
 public:
  ResilientRanker(EmbeddingStore fresh_queries, EmbeddingStore services,
                  ResilienceConfig config = {});

  // --- optional tiers & fault wiring (call before serving traffic) ---

  /// Routes fresh-store lookups through a seeded FaultInjector.
  void SetFaultProfile(const FaultProfile& profile);
  /// Tier 1: yesterday's query-embedding snapshot.
  void SetStaleSnapshot(EmbeddingStore stale_queries);
  /// Tier 2: head_anchor_of[q] is the mined head-anchor query id of q, or
  /// -1 when no anchor was mined (see models::AnchorHeadOf).
  void SetHeadAnchors(std::vector<int32_t> head_anchor_of);
  /// Tier 3: text-similarity fallback ranker.
  void SetTextFallback(std::shared_ptr<const Ranker> text_ranker);
  /// Tier 4: popularity prior. A uniform prior is installed by default so
  /// the chain always terminates; this replaces it with a real one.
  void SetPopularityFallback(std::shared_ptr<const Ranker> popularity_ranker);

  /// Fresh scoring path: an IVF index over the SAME service catalog
  /// (serving/ivf_index.h). When installed, every embedding-tier request
  /// probes the index (`nprobe` lists; 0 = the index's build-time default)
  /// instead of brute-force scanning the catalog; the scan stays in the
  /// degradation chain as the scoring fallback whenever no index is
  /// installed. The index is immutable and shared — concurrent requests
  /// probe it with no synchronization — and the choice of scoring path
  /// never perturbs the resolve phase, so the per-request TIER sequence
  /// under a fault profile is identical with and without the index.
  /// A quantized (SQ8) index must have its re-rank catalog attached
  /// before installation (CHECKed); `rerank_k` overrides its exact
  /// re-rank depth per request (0 = the index's build-time default).
  /// Installation also records IvfIndex::MemoryBytes() on ServingHealth.
  void SetRetrievalIndex(std::shared_ptr<const IvfIndex> index,
                         size_t nprobe = 0, size_t rerank_k = 0);

  /// Loads an index dump and installs it via SetRetrievalIndex. A corrupt
  /// dump (bit flip, truncation — rejected by the per-section CRCs) leaves
  /// the brute-force scoring path serving, increments
  /// ServingHealth::index_load_failures, and returns the load error.
  /// A quantized (GIV2) dump is re-attached to this ranker's own service
  /// catalog for the exact re-rank stage before installation.
  core::Status LoadRetrievalIndex(const std::string& path, size_t nprobe = 0,
                                  size_t rerank_k = 0);

  // --- serving ---

  /// Never aborts: every request is answered by some tier (possibly the
  /// popularity prior). Unknown / cold-start ids degrade instead of
  /// crashing. Assigns the next arrival index and forwards to RankAt();
  /// safe to call concurrently, but only explicit-index RankAt() calls are
  /// reproducible across interleavings (arrival order is not).
  RankedList Rank(uint32_t query, size_t k) const override;

  /// Deterministic entry point used by BatchRanker and the stress tests.
  /// Within one run (since construction or the last PrepareForRun) the
  /// caller must cover a dense index range starting at 0 — every index is
  /// resolved exactly once, in ascending order; a gap would block its
  /// successors. Do not mix auto-indexed Rank() and explicit RankAt() in
  /// the same run.
  RankedList RankAt(uint64_t request_index, uint32_t query,
                    size_t k) const override;

  /// RankAt plus the tier that served the request (tests/telemetry).
  RankedList RankAt(uint64_t request_index, uint32_t query, size_t k,
                    ServingTier* served_tier) const;

  /// RunAbTest hook: resets breaker/health/injector/clock and the request
  /// index sequence so runs with the same profile and seed are
  /// bit-identical; installs `profile` when set. Must not race in-flight
  /// Rank calls.
  void PrepareForRun(const FaultProfile* profile,
                     uint64_t seed) const override;

  /// Snapshot of the health counters (breaker transitions included).
  ServingHealth health() const;
  CircuitBreaker::State breaker_state() const;
  /// Simulated time consumed so far (manual clock only).
  uint64_t clock_micros() const;
  /// Test/simulation helper: lets simulated idle time pass (e.g. so an
  /// open breaker's cooldown can elapse without traffic).
  void AdvanceClockMicros(uint64_t micros) const;

  const ResilienceConfig& config() const { return config_; }

 private:
  /// Outcome of the locked resolve phase: which tier answers and, for the
  /// embedding tiers, a copy of the query-side vector (copied because the
  /// injector's scratch row and the lock are both released before scoring).
  struct Resolved {
    ServingTier tier = ServingTier::kPopularity;
    std::vector<float> embedding;  // non-empty iff an embedding tier serves
  };

  /// The sequenced resolve phase: holds the ticket gate's turn for
  /// request_index (so every earlier index has already resolved and later
  /// ones wait their turn), then runs fault draws / retries / breaker /
  /// tier selection, advancing the shared clock exactly like a serial
  /// pass. Only the state mutations are sequenced; scoring never enters
  /// the gate.
  Resolved ResolveRequest(uint64_t request_index, uint32_t query) const;

  /// One pass over tier 0 (retry loop). Returns the embedding or nullptr.
  /// backoff_rng is the request's private jitter stream.
  const float* FreshLookup(uint32_t query, DeadlineBudget* budget,
                           core::Rng* backoff_rng) const;
  /// Raw lookup through the injector when set, else the plain store.
  LookupOutcome RawLookup(uint32_t id) const;

  EmbeddingStore fresh_;
  EmbeddingStore services_;
  ResilienceConfig config_;

  std::optional<EmbeddingStore> stale_;
  std::vector<int32_t> head_anchor_of_;
  std::shared_ptr<const Ranker> text_;
  std::shared_ptr<const Ranker> popularity_;
  /// Fresh scoring path (null = brute-force scan). Set before serving
  /// traffic, immutable afterwards, like the tiers above.
  std::shared_ptr<const IvfIndex> index_;
  size_t index_nprobe_ = 0;    // 0 = index default
  size_t index_rerank_k_ = 0;  // 0 = index default (SQ8 only)

  /// Guards the shared mutable state below for accessor visibility
  /// (health(), breaker_state(), ...). The resolve phase itself is
  /// serialized by resolve_gate_, so mu_ is only ever held briefly —
  /// accessors no longer block behind a resolve's backoff sleeps.
  mutable std::mutex mu_;
  /// Ascending-index handoff for the resolve phase: request t's resolve
  /// releases exactly request t+1 (DESIGN.md §5j release rules).
  mutable core::TicketGate resolve_gate_;
  mutable std::atomic<uint64_t> next_arrival_index_{0};  // handed out by Rank()
  mutable uint64_t run_seed_ = 0;  // from PrepareForRun
  mutable core::ManualClock clock_;
  mutable std::optional<FaultInjector> injector_;
  mutable CircuitBreaker breaker_;
  mutable ServingHealth health_;
};

/// True when every entry of the row is finite and sane (|x| < 1e30).
/// Catches the bit-flip corruption mode before a poisoned embedding is
/// scored against the whole service catalog.
bool RowLooksValid(const float* row, size_t dim);

}  // namespace garcia::serving

#endif  // GARCIA_SERVING_RESILIENT_RANKER_H_
