#include "serving/resilient_ranker.h"

#include <algorithm>
#include <cmath>

#include "serving/ivf_index.h"

namespace garcia::serving {

bool RowLooksValid(const float* row, size_t dim) {
  for (size_t i = 0; i < dim; ++i) {
    if (!std::isfinite(row[i]) || std::fabs(row[i]) > 1e30f) return false;
  }
  return true;
}

// ---------------------------------------------------------------- TextRanker

TextRanker::TextRanker(std::vector<std::string> query_texts,
                       const std::vector<std::string>& service_texts)
    : query_texts_(std::move(query_texts)),
      service_embeddings_(encoder_.EncodeBatch(service_texts)) {}

RankedList TextRanker::Rank(uint32_t query, size_t k) const {
  RankedList scored;
  scored.reserve(service_embeddings_.size());
  const models::SparseVector q_emb =
      query < query_texts_.size() ? encoder_.Encode(query_texts_[query])
                                  : models::SparseVector{};
  for (size_t s = 0; s < service_embeddings_.size(); ++s) {
    const double sim =
        models::NgramTextEncoder::Cosine(q_emb, service_embeddings_[s]);
    scored.push_back({static_cast<uint32_t>(s), static_cast<float>(sim)});
  }
  k = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  scored.resize(k);
  return scored;
}

// ---------------------------------------------------------- PopularityRanker

PopularityRanker::PopularityRanker(const std::vector<double>& popularity) {
  ranked_.reserve(popularity.size());
  for (size_t s = 0; s < popularity.size(); ++s) {
    ranked_.push_back(
        {static_cast<uint32_t>(s), static_cast<float>(popularity[s])});
  }
  std::stable_sort(ranked_.begin(), ranked_.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) return a.second > b.second;
                     return a.first < b.first;
                   });
}

RankedList PopularityRanker::Rank(uint32_t /*query*/, size_t k) const {
  RankedList out = ranked_;
  out.resize(std::min(k, out.size()));
  return out;
}

// ----------------------------------------------------------- ResilientRanker

ResilientRanker::ResilientRanker(EmbeddingStore fresh_queries,
                                 EmbeddingStore services,
                                 ResilienceConfig config)
    : fresh_(std::move(fresh_queries)),
      services_(std::move(services)),
      config_(config),
      breaker_(config.breaker, &clock_) {
  GARCIA_CHECK(!services_.empty());
  GARCIA_CHECK(fresh_.empty() || fresh_.dim() == services_.dim());
  // Default terminal tier: uniform popularity = deterministic id order.
  popularity_ = std::make_shared<PopularityRanker>(
      std::vector<double>(services_.size(), 1.0));
}

void ResilientRanker::SetFaultProfile(const FaultProfile& profile) {
  std::lock_guard<std::mutex> lock(mu_);
  injector_.emplace(&fresh_, profile);
}

void ResilientRanker::SetStaleSnapshot(EmbeddingStore stale_queries) {
  GARCIA_CHECK(stale_queries.empty() ||
               stale_queries.dim() == services_.dim());
  stale_ = std::move(stale_queries);
}

void ResilientRanker::SetHeadAnchors(std::vector<int32_t> head_anchor_of) {
  head_anchor_of_ = std::move(head_anchor_of);
}

void ResilientRanker::SetTextFallback(
    std::shared_ptr<const Ranker> text_ranker) {
  text_ = std::move(text_ranker);
}

void ResilientRanker::SetPopularityFallback(
    std::shared_ptr<const Ranker> popularity_ranker) {
  GARCIA_CHECK(popularity_ranker != nullptr);
  popularity_ = std::move(popularity_ranker);
}

void ResilientRanker::SetRetrievalIndex(std::shared_ptr<const IvfIndex> index,
                                        size_t nprobe, size_t rerank_k) {
  GARCIA_CHECK(index != nullptr);
  // The index must cover exactly this catalog: same dimensionality and the
  // same id space, or probed ids would name different services.
  GARCIA_CHECK_EQ(index->dim(), services_.dim());
  GARCIA_CHECK_EQ(index->size(), services_.size());
  // A quantized index scores approximately and re-ranks exactly against
  // the original rows — installing one without its re-rank source would
  // fail on the first request, so fail here instead.
  GARCIA_CHECK(!index->quantized() || index->has_rerank_catalog())
      << "quantized index installed without a re-rank catalog";
  index_ = std::move(index);
  index_nprobe_ = nprobe;
  index_rerank_k_ = rerank_k;
  std::lock_guard<std::mutex> lock(mu_);
  health_.index_memory_bytes = index_->MemoryBytes();
}

core::Status ResilientRanker::LoadRetrievalIndex(const std::string& path,
                                                 size_t nprobe,
                                                 size_t rerank_k) {
  auto loaded = IvfIndex::Load(path);
  if (!loaded.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++health_.index_load_failures;
    return loaded.status();
  }
  auto index = std::make_shared<IvfIndex>(std::move(loaded.value()));
  // A GIV2 dump carries codes + scales only; the exact re-rank stage reads
  // this ranker's own service catalog (the dump must cover the same
  // catalog — SetRetrievalIndex CHECKs the shape).
  if (index->quantized()) index->AttachRerankCatalog(services_.matrix());
  SetRetrievalIndex(std::move(index), nprobe, rerank_k);
  return core::Status::Ok();
}

LookupOutcome ResilientRanker::RawLookup(uint32_t id) const {
  if (injector_.has_value()) return injector_->Lookup(id);
  LookupOutcome out;
  out.row = fresh_.Find(id);
  out.status = out.row != nullptr
                   ? core::Status::Ok()
                   : core::Status::NotFound("id not in store");
  return out;
}

const float* ResilientRanker::FreshLookup(uint32_t query,
                                          DeadlineBudget* budget,
                                          core::Rng* backoff_rng) const {
  for (size_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (budget->expired()) {
      ++health_.deadline_exceeded;
      return nullptr;
    }
    if (!breaker_.AllowRequest()) {
      ++health_.breaker_short_circuits;
      return nullptr;
    }
    ++health_.attempts;
    LookupOutcome outcome = RawLookup(query);
    clock_.SleepMicros(outcome.latency_micros);
    if (budget->expired()) {
      // The lookup answered too late (e.g. a latency spike ate the whole
      // budget); the caller cannot use it and the store gets the blame.
      breaker_.RecordFailure();
      ++health_.deadline_exceeded;
      return nullptr;
    }
    if (outcome.status.ok()) {
      if (RowLooksValid(outcome.row, services_.dim())) {
        breaker_.RecordSuccess();
        return outcome.row;
      }
      // Corrupt row: the store responded, but with garbage. Retryable when
      // the corruption is transient (our bit-flip model).
      ++health_.corrupt_rows;
      breaker_.RecordFailure();
    } else if (outcome.status.code() == core::StatusCode::kNotFound) {
      // A miss is an authoritative answer, not a store failure: the id is
      // simply not in the dump (cold-start tail query). Not retryable.
      ++health_.missing_ids;
      breaker_.RecordSuccess();
      return nullptr;
    } else {
      ++health_.transient_failures;
      breaker_.RecordFailure();
    }
    if (attempt + 1 < config_.max_attempts) {
      const uint64_t delay =
          core::BackoffDelayMicros(config_.backoff, attempt, backoff_rng);
      if (delay >= budget->remaining_micros()) {
        ++health_.deadline_exceeded;
        return nullptr;
      }
      clock_.SleepMicros(delay);
      ++health_.retries;
    }
  }
  return nullptr;
}

ResilientRanker::Resolved ResilientRanker::ResolveRequest(
    uint64_t request_index, uint32_t query) const {
  // Wait for the turn, not for a lock: request t-1's FinishTurn releases
  // exactly this request. (WaitTurn checks that a request index below the
  // gate's turn — a reused index, or Rank() mixed with explicit RankAt()
  // — fails loudly instead of deadlocking the sequence.) The gate makes
  // this resolve the only one in flight, so the mutex below is held only
  // for accessor visibility of the shared counters, never contended by
  // other resolves.
  resolve_gate_.WaitTurn(request_index);
  std::unique_lock<std::mutex> lock(mu_);

  clock_.AdvanceMicros(config_.inter_request_micros);
  ++health_.requests;
  DeadlineBudget budget(&clock_, config_.deadline_micros);
  // Per-request streams: the request's fault and jitter draws depend only
  // on (seeds, index), never on what other requests consumed.
  if (injector_.has_value()) injector_->BeginRequest(request_index);
  core::Rng backoff_rng(
      PerRequestSeed(config_.seed ^ run_seed_, request_index));

  // Tier 0: fresh store, with retries / breaker / deadline.
  ServingTier tier = ServingTier::kFresh;
  const float* vec = FreshLookup(query, &budget, &backoff_rng);

  // Tier 1: stale snapshot. Plain local read: yesterday's dump is already
  // resident, so none of the remote-store failure modes apply.
  if (vec == nullptr && stale_.has_value()) {
    const float* stale_row = stale_->Find(query);
    if (stale_row != nullptr && RowLooksValid(stale_row, services_.dim())) {
      vec = stale_row;
      tier = ServingTier::kStale;
    }
  }

  // Tier 2: mined head-anchor embedding. Head queries are ~always present
  // in every dump; one non-retried lookup (fresh path first, then stale).
  if (vec == nullptr && query < head_anchor_of_.size() &&
      head_anchor_of_[query] >= 0) {
    const uint32_t head = static_cast<uint32_t>(head_anchor_of_[query]);
    const float* head_row = nullptr;
    if (!budget.expired() && breaker_.AllowRequest()) {
      ++health_.attempts;
      LookupOutcome outcome = RawLookup(head);
      clock_.SleepMicros(outcome.latency_micros);
      if (outcome.status.ok() &&
          RowLooksValid(outcome.row, services_.dim())) {
        breaker_.RecordSuccess();
        head_row = outcome.row;
      } else if (!outcome.status.ok() &&
                 outcome.status.code() != core::StatusCode::kNotFound) {
        breaker_.RecordFailure();
      }
    }
    if (head_row == nullptr && stale_.has_value()) {
      head_row = stale_->Find(head);
      if (head_row != nullptr && !RowLooksValid(head_row, services_.dim())) {
        head_row = nullptr;
      }
    }
    if (head_row != nullptr) {
      vec = head_row;
      tier = ServingTier::kHeadAnchor;
    }
  }

  Resolved out;
  if (vec != nullptr) {
    out.tier = tier;
    out.embedding.assign(vec, vec + services_.dim());
  } else {
    out.tier =
        text_ != nullptr ? ServingTier::kText : ServingTier::kPopularity;
  }
  lock.unlock();
  resolve_gate_.FinishTurn(request_index);
  return out;
}

RankedList ResilientRanker::RankAt(uint64_t request_index, uint32_t query,
                                   size_t k,
                                   ServingTier* served_tier) const {
  Resolved r = ResolveRequest(request_index, query);

  // Score outside the lock: the top-K probe/scan over the service catalog
  // is the expensive part, is independent across requests, and overlaps
  // with the store I/O of later requests' resolve phases. When an IVF
  // index is installed it is the fresh scoring path; the brute-force scan
  // is its always-correct degradation fallback. Neither choice touches the
  // resolve phase, so the tier sequence is scoring-path-independent.
  ServingTier tier = r.tier;
  const bool via_index = !r.embedding.empty() && index_ != nullptr;
  RankedList result;
  IvfIndex::QueryStats qstats;
  if (via_index) {
    result = index_->Query(
        core::CurrentExecution(), r.embedding.data(), k,
        index_nprobe_ != 0 ? index_nprobe_ : index_->default_nprobe(),
        index_rerank_k_ != 0 ? index_rerank_k_ : index_->default_rerank_k(),
        &qstats);
  } else if (!r.embedding.empty()) {
    result = TopKInnerProduct(r.embedding.data(), services_.dim(),
                              services_.matrix(), k);
  } else if (tier == ServingTier::kText) {
    result = text_->Rank(query, k);
  } else {
    result = popularity_->Rank(query, k);
  }
  // An embedding-free tier that still produced nothing (e.g. empty query
  // text) falls through to the popularity prior.
  if (result.empty() && tier != ServingTier::kPopularity) {
    tier = ServingTier::kPopularity;
    result = popularity_->Rank(query, k);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++health_.served_at_tier[static_cast<size_t>(tier)];
    if (!r.embedding.empty()) {
      ++(via_index ? health_.scored_via_index : health_.scored_brute_force);
    }
    if (via_index && index_->quantized()) {
      ++health_.quantized_scans;
      health_.rerank_rows += qstats.rerank_rows;
    }
  }
  if (served_tier != nullptr) *served_tier = tier;
  return result;
}

RankedList ResilientRanker::RankAt(uint64_t request_index, uint32_t query,
                                   size_t k) const {
  return RankAt(request_index, query, k, nullptr);
}

RankedList ResilientRanker::Rank(uint32_t query, size_t k) const {
  const uint64_t request_index =
      next_arrival_index_.fetch_add(1, std::memory_order_relaxed);
  return RankAt(request_index, query, k, nullptr);
}

void ResilientRanker::PrepareForRun(const FaultProfile* profile,
                                    uint64_t seed) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (profile != nullptr) {
    injector_.emplace(&fresh_, *profile);
  } else if (injector_.has_value()) {
    injector_->Reset();
  }
  clock_.Reset();
  breaker_.Reset();
  health_.Reset();
  // The installed index survives runs; its footprint is a gauge, not a
  // per-run counter.
  if (index_ != nullptr) health_.index_memory_bytes = index_->MemoryBytes();
  next_arrival_index_.store(0, std::memory_order_relaxed);
  resolve_gate_.Reset(0);
  run_seed_ = seed;
}

ServingHealth ResilientRanker::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServingHealth snapshot = health_;
  snapshot.breaker_to_open = breaker_.transitions_to_open();
  snapshot.breaker_to_half_open = breaker_.transitions_to_half_open();
  snapshot.breaker_to_closed = breaker_.transitions_to_closed();
  return snapshot;
}

CircuitBreaker::State ResilientRanker::breaker_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaker_.state();
}

uint64_t ResilientRanker::clock_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_.NowMicros();
}

void ResilientRanker::AdvanceClockMicros(uint64_t micros) const {
  std::lock_guard<std::mutex> lock(mu_);
  clock_.AdvanceMicros(micros);
}

}  // namespace garcia::serving
