// Copyright (c) 2026 GARCIA reproduction authors.
// Concurrent batched serving on the kernel execution layer.
//
// BatchRanker is the serving-side analogue of core::ExecutionContext: one
// facade that accepts a batch of requests and runs them through a Ranker
// either serially or on a private thread pool, with the same determinism
// contract the kernel layer has — the results (and, for ResilientRanker,
// the per-request tier decisions and health counters) are bit-identical to
// a serial pass for any thread count and batch size.
//
// How that works: every request gets a monotonically increasing index from
// the facade's stream. Stateless rankers ignore it; ResilientRanker keys
// its per-request fault/backoff streams on it and resolves shared state in
// ascending index order (DESIGN.md §5f). Workers claim indices through an
// atomic cursor — ascending claim order — so request i's sequenced resolve
// phase overlaps with the top-K scoring of earlier requests instead of
// waiting behind a whole contiguous shard.

#ifndef GARCIA_SERVING_BATCH_RANKER_H_
#define GARCIA_SERVING_BATCH_RANKER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/threadpool.h"
#include "serving/ranking_service.h"

namespace garcia::serving {

/// One serving request: rank the top `k` services for `query`.
struct ServeRequest {
  uint32_t query = 0;
  size_t k = 10;
};

/// Batched-serving knobs, plumbed through RunAbTest and the bench driver.
struct ServeConfig {
  /// Worker threads for request-level parallelism. 0 or 1 serves inline on
  /// the calling thread (the serial reference path).
  size_t num_threads = 0;
  /// Requests dispatched per scheduling wave. Results are identical for any
  /// value; smaller waves bound the latency skew between the first and last
  /// request of a wave, larger waves amortize pool wake-ups.
  size_t batch_size = 256;
};

/// Facade that fans a vector of requests out over a (possibly concurrent)
/// Ranker. Owns its thread pool when num_threads > 1. One dispatcher: the
/// facade itself is not re-entrant — issue one RankBatch() at a time (the
/// wrapped Ranker may additionally be hammered from other threads if it is
/// thread-safe, as ResilientRanker is).
class BatchRanker {
 public:
  explicit BatchRanker(std::shared_ptr<const Ranker> ranker,
                       ServeConfig config = {});

  /// Drains any in-flight asynchronous work and tears the owned pool down
  /// BEFORE any other member. The default member-destruction order would
  /// destroy state declared after the pool while stragglers (and their
  /// latency-sink / completion callbacks) can still be executing queued
  /// tasks inside the pool's shutdown path — a use-after-destruction the
  /// explicit ordering here closes (regression-tested by destroying the
  /// facade mid-flight under ASan).
  ~BatchRanker();

  BatchRanker(const BatchRanker&) = delete;
  BatchRanker& operator=(const BatchRanker&) = delete;

  /// Ranks every request; result i corresponds to requests[i]. Request
  /// indices continue the facade's stream: the j-th request ever submitted
  /// (since construction or Reset()) gets index j, matching what a serial
  /// pass over the same requests would hand the ranker.
  std::vector<RankedList> RankBatch(const std::vector<ServeRequest>& requests);

  /// Same, and when `latency_micros` is non-null also records the
  /// wall-clock service time of each request (bench telemetry; excluded
  /// from the determinism contract).
  std::vector<RankedList> RankBatch(const std::vector<ServeRequest>& requests,
                                    std::vector<double>* latency_micros);

  /// Per-request completion callback of the asynchronous path. Runs on the
  /// worker that served the request; must be thread-safe. `i` is the
  /// position in the submitted batch.
  using LatencySink = std::function<void(size_t i, double micros)>;

  /// Asynchronous batch: dispatches and returns immediately (serial
  /// configurations serve inline before returning). results->at(i) is
  /// written by the worker serving request i; `sink`, when set, fires per
  /// completed request. The caller keeps `results` (and anything `sink`
  /// touches) alive until Drain() or destruction; the batch claims its
  /// request indices from the facade's stream at call time, so results are
  /// bit-identical to the synchronous path over the same requests.
  void RankBatchAsync(const std::vector<ServeRequest>& requests,
                      std::vector<RankedList>* results,
                      LatencySink sink = nullptr);

  /// Blocks until every request dispatched so far (sync or async) has been
  /// served and its callbacks have returned.
  void Drain();

  /// Rewinds the request-index stream to 0. Pair with the wrapped ranker's
  /// PrepareForRun() when replaying a run. Do not call with async work in
  /// flight (Drain() first).
  void Reset();

  /// Next index the facade will assign.
  uint64_t next_index() const { return next_index_; }

  const ServeConfig& config() const { return config_; }

 private:
  std::shared_ptr<const Ranker> ranker_;
  ServeConfig config_;
  std::unique_ptr<core::ThreadPool> pool_;  // null when serving inline
  uint64_t next_index_ = 0;
};

}  // namespace garcia::serving

#endif  // GARCIA_SERVING_BATCH_RANKER_H_
