#include "serving/batch_ranker.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "core/macros.h"

namespace garcia::serving {

namespace {

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

BatchRanker::BatchRanker(std::shared_ptr<const Ranker> ranker,
                         ServeConfig config)
    : ranker_(std::move(ranker)), config_(config) {
  GARCIA_CHECK(ranker_ != nullptr);
  GARCIA_CHECK(config_.batch_size > 0);
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<core::ThreadPool>(config_.num_threads);
  }
}

BatchRanker::~BatchRanker() {
  // Drain, then destroy the pool while every other member is still alive.
  // ThreadPool's shutdown path runs queued tasks to completion; without
  // this ordering those stragglers — and any latency-sink callback they
  // fire — could observe members the default reverse-declaration-order
  // destruction had already torn down.
  Drain();
  pool_.reset();
}

void BatchRanker::Drain() {
  if (pool_ != nullptr) pool_->Wait();
}

void BatchRanker::RankBatchAsync(const std::vector<ServeRequest>& requests,
                                 std::vector<RankedList>* results,
                                 LatencySink sink) {
  GARCIA_CHECK(results != nullptr);
  results->resize(requests.size());
  const uint64_t base = next_index_;
  next_index_ += requests.size();
  // The batch control block is shared by the worker tasks, never the
  // facade itself: a task holds everything it touches (ranker handle,
  // request copies, output pointer, sink) through this one shared_ptr, so
  // the only facade state a straggler can reach is the pool it runs on —
  // which the destructor keeps alive until Drain() completes.
  struct AsyncBatch {
    std::shared_ptr<const Ranker> ranker;
    std::vector<ServeRequest> requests;
    std::vector<RankedList>* results;
    LatencySink sink;
    uint64_t base = 0;
    std::atomic<size_t> cursor{0};
  };
  auto batch = std::make_shared<AsyncBatch>();
  batch->ranker = ranker_;
  batch->requests = requests;
  batch->results = results;
  batch->sink = std::move(sink);
  batch->base = base;
  const auto serve_one = [](AsyncBatch* b, size_t i) {
    const double start = b->sink != nullptr ? NowMicros() : 0.0;
    (*b->results)[i] =
        b->ranker->RankAt(b->base + i, b->requests[i].query, b->requests[i].k);
    if (b->sink != nullptr) b->sink(i, NowMicros() - start);
  };
  if (pool_ == nullptr) {
    for (size_t i = 0; i < requests.size(); ++i) serve_one(batch.get(), i);
    return;
  }
  // Same ascending atomic-cursor claim discipline as the synchronous path,
  // so ResilientRanker's index-ordered resolve never waits behind a
  // contiguous shard.
  const size_t workers = std::min(pool_->num_threads(), requests.size());
  for (size_t w = 0; w < workers; ++w) {
    pool_->Submit([batch, serve_one] {
      for (;;) {
        const size_t i =
            batch->cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch->requests.size()) return;
        serve_one(batch.get(), i);
      }
    });
  }
}

std::vector<RankedList> BatchRanker::RankBatch(
    const std::vector<ServeRequest>& requests) {
  return RankBatch(requests, nullptr);
}

std::vector<RankedList> BatchRanker::RankBatch(
    const std::vector<ServeRequest>& requests,
    std::vector<double>* latency_micros) {
  std::vector<RankedList> results(requests.size());
  if (latency_micros != nullptr) latency_micros->assign(requests.size(), 0.0);
  const uint64_t base = next_index_;
  next_index_ += requests.size();

  const auto serve_one = [&](size_t i) {
    const double start =
        latency_micros != nullptr ? NowMicros() : 0.0;
    results[i] =
        ranker_->RankAt(base + i, requests[i].query, requests[i].k);
    if (latency_micros != nullptr) {
      (*latency_micros)[i] = NowMicros() - start;
    }
  };

  for (size_t offset = 0; offset < requests.size();
       offset += config_.batch_size) {
    const size_t wave_end =
        std::min(requests.size(), offset + config_.batch_size);
    if (pool_ == nullptr) {
      for (size_t i = offset; i < wave_end; ++i) serve_one(i);
      continue;
    }
    // Dynamic scheduling: workers claim the next request through an atomic
    // cursor, so indices are claimed in ascending order. A contiguous-shard
    // split would make worker 1's first request wait for worker 0's entire
    // shard inside ResilientRanker's index-ordered resolve sequencer; with
    // the cursor, request i's resolve overlaps the scoring of requests < i.
    std::atomic<size_t> cursor{offset};
    const size_t workers =
        std::min(pool_->num_threads(), wave_end - offset);
    for (size_t w = 0; w < workers; ++w) {
      pool_->Submit([&cursor, wave_end, &serve_one] {
        for (;;) {
          const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= wave_end) return;
          serve_one(i);
        }
      });
    }
    pool_->Wait();
  }
  return results;
}

void BatchRanker::Reset() { next_index_ = 0; }

}  // namespace garcia::serving
