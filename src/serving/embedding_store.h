// Copyright (c) 2026 GARCIA reproduction authors.
// Persistent embedding store: the offline-to-online hand-off of Fig. 9
// ("embedding inference for queries and services is daily executed for
// online serving"). Binary format with a small header; load verifies shape.

#ifndef GARCIA_SERVING_EMBEDDING_STORE_H_
#define GARCIA_SERVING_EMBEDDING_STORE_H_

#include <string>

#include "core/matrix.h"
#include "core/status.h"

namespace garcia::serving {

/// Row i holds entity i's embedding.
class EmbeddingStore {
 public:
  EmbeddingStore() = default;
  explicit EmbeddingStore(core::Matrix embeddings)
      : embeddings_(std::move(embeddings)) {}

  size_t size() const { return embeddings_.rows(); }
  size_t dim() const { return embeddings_.cols(); }
  bool empty() const { return embeddings_.empty(); }

  const core::Matrix& matrix() const { return embeddings_; }
  const float* vector(uint32_t id) const;

  /// Binary serialization ("GEMB" magic + dims + row-major floats).
  core::Status Save(const std::string& path) const;
  static core::Result<EmbeddingStore> Load(const std::string& path);

 private:
  core::Matrix embeddings_;
};

}  // namespace garcia::serving

#endif  // GARCIA_SERVING_EMBEDDING_STORE_H_
