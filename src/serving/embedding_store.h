// Copyright (c) 2026 GARCIA reproduction authors.
// Persistent embedding store: the offline-to-online hand-off of Fig. 9
// ("embedding inference for queries and services is daily executed for
// online serving"). Binary format with a small versioned header; v2 adds a
// CRC-32 payload checksum so a corrupt daily dump is rejected at load time
// instead of silently serving garbage embeddings.

#ifndef GARCIA_SERVING_EMBEDDING_STORE_H_
#define GARCIA_SERVING_EMBEDDING_STORE_H_

#include <cstdint>
#include <string>

#include "core/matrix.h"
#include "core/status.h"

namespace garcia::serving {

/// Row i holds entity i's embedding.
class EmbeddingStore {
 public:
  EmbeddingStore() = default;
  explicit EmbeddingStore(core::Matrix embeddings)
      : embeddings_(std::move(embeddings)) {}

  size_t size() const { return embeddings_.rows(); }
  size_t dim() const { return embeddings_.cols(); }
  bool empty() const { return embeddings_.empty(); }

  const core::Matrix& matrix() const { return embeddings_; }

  /// Row of a known-valid id. Aborts on out-of-range — use only where the
  /// id was already validated; serving paths should prefer Find().
  const float* vector(uint32_t id) const;

  /// Non-aborting lookup: nullptr when the id is not in the store (e.g. a
  /// cold-start tail query absent from yesterday's dump).
  const float* Find(uint32_t id) const;
  bool Contains(uint32_t id) const { return id < embeddings_.rows(); }

  /// Binary serialization. Save writes format v2: "GEM2" magic, u32
  /// version, u64 rows/cols, CRC-32 of the payload, row-major floats.
  /// Load also accepts legacy v1 ("GEMB", no checksum) with a warning.
  /// Both versions reject truncation, trailing garbage, and headers whose
  /// claimed payload exceeds the actual file size or the global cap.
  core::Status Save(const std::string& path) const;
  static core::Result<EmbeddingStore> Load(const std::string& path);

  /// Hard cap on the payload a header may claim (guards a crafted tiny
  /// file from triggering an enormous allocation).
  static constexpr uint64_t kMaxPayloadBytes = 1ull << 34;  // 16 GiB

 private:
  core::Matrix embeddings_;
};

}  // namespace garcia::serving

#endif  // GARCIA_SERVING_EMBEDDING_STORE_H_
