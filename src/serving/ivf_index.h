// Copyright (c) 2026 GARCIA reproduction authors.
// IVF-style clustered inner-product retrieval index (DESIGN.md §5k).
//
// Serving answered every request with core::kernels::TopKDot — a brute-force
// scan of the whole catalog. That is O(catalog) per request: fine at bench
// scale, hopeless at the ROADMAP's million-service north star. This file
// adds the standard sub-linear alternative: a coarse quantizer (seeded
// k-means over the exported service embeddings) partitions the catalog into
// nlist inverted lists; a query scores the nlist centroids, probes the
// nprobe best lists with EXACT dot products, and merges the candidates
// under the same (score desc, id asc) total order TopKDot uses.
//
// Determinism contract (the same one every kernel in this repo keeps):
//   * Build is thread-count-invariant. k-means runs a FIXED iteration
//     count; the assignment step shards over points (each point's nearest
//     centroid is an independent computation with ties broken by ascending
//     centroid id); the update step shards over centroids, each centroid
//     averaging its members in ascending point id with double accumulation
//     — exactly the serial order, so any ExecutionContext builds the same
//     index byte for byte.
//   * Query is thread-count-invariant. Scores are double-accumulated dots
//     cast to float — the exact expression TopKDot evaluates — and
//     selection under the (score desc, id asc) TOTAL order is unique, so
//     any probe-scan partitioning returns the identical ranked list.
//   * At nprobe == nlist every candidate is probed, so the result is
//     BYTE-IDENTICAL to TopKDot over the same catalog: the brute-force
//     scan stays available as the recall oracle behind the
//     RetrievalConfig::mode knob (serving/ranking_service.h), and the
//     property harness (tests/serving_retrieval_test.cc) pins the
//     equivalence per seed, catalog, K and thread count.
//
// SQ8 quantized storage (RetrievalMode::kIvfSq8, DESIGN.md §5l): the probe
// scan above is bandwidth-bound on float32 list rows. In SQ8 mode the index
// stores each list row as int8 codes with ONE float scale per row
// (core::kernels::sq8 — symmetric range, |v_j - s*c_j| <= s/2), shrinking
// resident list storage ~4x, and answers queries in two stages:
//   1. quantized scan: the asymmetric sq8::ScanDots kernel scores every
//      probed candidate (int32 block accumulation, thread-count-invariant);
//   2. exact re-rank: the top rerank_k candidates by approximate score —
//      PLUS every candidate within the quantization error band 2B of the
//      rerank_k-th best, where B = max_probed_scale * Q(query) bounds
//      |exact - approx| (kernels.h derivation) — are re-scored with the
//      exact float expression against the ORIGINAL catalog rows and the
//      top k selected under the same (score desc, id asc) total order.
// The band extension turns the re-rank from a heuristic into a guarantee:
// any candidate below the cutoff provably ranks behind >= rerank_k >= k
// re-ranked candidates in EXACT score, so the quantized path returns the
// exact top-k of the probed candidate set — identical to the float index
// at every (nprobe, rerank_k >= k) and hence byte-identical to brute force
// at full probe. Quantization costs memory traffic only, never recall.
// Exact re-rank reads the original catalog (the index does NOT keep a
// float copy — that is where the 4x comes from): Build() auto-attaches the
// catalog it was given, Load() requires AttachRerankCatalog() before the
// first query. The caller owns the catalog and must keep it alive.
//
// Persistence: a "GIV1" sectioned container in the GCK1 style
// (train/checkpoint.h) — magic + version header, one CRC-32 per section
// (meta, centroids, lists, vectors), published with
// core::WriteFileAtomic. A bit-flipped or truncated dump is rejected at
// load time with the failing section named; serving then degrades to the
// brute-force scan (ResilientRanker counts the fallback in ServingHealth).
// Quantized indexes write a "GIV2" container instead (meta, centroids,
// lists, codes, scales — same per-section CRC discipline); Load()
// dispatches on the magic, so float GIV1 dumps stay loadable forever.

#ifndef GARCIA_SERVING_IVF_INDEX_H_
#define GARCIA_SERVING_IVF_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/kernels.h"
#include "core/matrix.h"
#include "core/status.h"
#include "serving/ranking_service.h"

namespace garcia::serving {

/// Inverted-file inner-product index over one embedding catalog snapshot.
/// Immutable after Build()/Load(): safe to share across any number of
/// serving threads (BatchRanker workers probe concurrently with no
/// synchronization).
class IvfIndex {
 public:
  /// Per-query instrumentation for the SQ8 path (ServingHealth feeds).
  struct QueryStats {
    size_t quantized_rows = 0;  // candidates scored by the int8 scan
    size_t rerank_rows = 0;     // candidates exactly re-scored
  };

  IvfIndex() = default;

  /// Clusters `catalog` (rows = service embeddings) into
  /// ResolveNlist(config.nlist, rows) lists with seeded k-means (fixed
  /// kKmeansIterations sweeps, init sampled from Rng(config.seed)), then
  /// lays every list out contiguously in one pass. Thread-count-invariant
  /// for any `ctx` (see header comment). Requires a non-empty catalog.
  /// With config.mode == RetrievalMode::kIvfSq8 the lists are stored as
  /// SQ8 codes + per-row scales instead of floats and `catalog` is
  /// attached as the re-rank source (caller keeps it alive).
  static IvfIndex Build(const core::Matrix& catalog,
                        const RetrievalConfig& config,
                        const core::ExecutionContext& ctx =
                            core::SerialExecution());

  /// Top-k of <query, catalog row> over the union of the `nprobe` probed
  /// lists, sorted (score desc, id asc). nprobe is clamped to [1, nlist];
  /// nprobe >= nlist is byte-identical to kernels::TopKDot. Always returns
  /// min(k, size()) results: when the nprobe-best lists hold fewer than
  /// min(k, size()) candidates (dead clusters), the probe prefix extends
  /// down the same centroid ranking until it has enough — probe sets stay
  /// nested in nprobe, so recall stays monotone. A quantized index runs
  /// the two-stage scan+re-rank with ResolveRerankK(rerank_k, k)
  /// candidates (the header's band guarantee makes the result identical
  /// to the float index for every rerank_k).
  RankedList Query(const core::ExecutionContext& ctx, const float* query,
                   size_t k, size_t nprobe, size_t rerank_k = 0,
                   QueryStats* stats = nullptr) const;

  /// Same, probing the index's default_nprobe() (and, when quantized, its
  /// default_rerank_k()) through the ambient core::CurrentExecution().
  RankedList Query(const float* query, size_t k) const;

  size_t size() const { return ids_.size(); }     // catalog rows indexed
  size_t dim() const { return centroids_.cols(); }
  size_t nlist() const { return centroids_.rows(); }
  bool empty() const { return ids_.empty(); }

  /// The nprobe Query(query, k) uses: ResolveNprobe(config.nprobe, nlist)
  /// captured at build time (and serialized with the index).
  size_t default_nprobe() const { return default_nprobe_; }
  uint64_t seed() const { return seed_; }

  /// True when the lists are stored as SQ8 codes (two-stage query path).
  bool quantized() const { return quantized_; }
  /// The raw config.rerank_k captured at build time (0 = auto); resolved
  /// against the request's k by ResolveRerankK at query time.
  size_t default_rerank_k() const { return default_rerank_k_; }

  /// Points the exact re-rank stage at the original catalog (row r of
  /// `catalog` must be the embedding of service id r used at Build time).
  /// Non-owning: `catalog` must outlive every Query. Required after
  /// Load() of a quantized index; Build() attaches its own argument.
  void AttachRerankCatalog(const core::Matrix& catalog);
  bool has_rerank_catalog() const { return catalog_ != nullptr; }

  /// Resident bytes of the stored list payload only: codes + scales when
  /// quantized (~4x below float), the float rows otherwise. The SQ8
  /// headline memory number — excludes the shared centroids/offsets/ids.
  size_t ListStorageBytes() const;
  /// Total resident index bytes: centroids + offsets + ids +
  /// ListStorageBytes(). Surfaced on the ServingHealth dashboard.
  size_t MemoryBytes() const;

  const core::Matrix& centroids() const { return centroids_; }
  /// Original catalog ids grouped by list, ascending id within each list;
  /// list l spans ids()[list_offsets()[l] .. list_offsets()[l + 1]).
  const std::vector<uint32_t>& ids() const { return ids_; }
  const std::vector<uint32_t>& list_offsets() const { return list_offsets_; }

  /// Sectioned "GIV1" container ("GIV2" when quantized — see header
  /// comment), written atomically.
  core::Status Save(const std::string& path) const;
  /// Rejects wrong magic/version, truncation, trailing garbage, section
  /// CRC mismatches (naming the section), and inconsistent layout claims.
  /// Dispatches on the magic: both float GIV1 and quantized GIV2 load.
  static core::Result<IvfIndex> Load(const std::string& path);

  /// nlist == 0 resolves to round(sqrt(rows)), clamped to [1, rows].
  static size_t ResolveNlist(size_t nlist, size_t rows);
  /// nprobe == 0 resolves to max(1, nlist / 4); nonzero clamps to
  /// [1, nlist].
  static size_t ResolveNprobe(size_t nprobe, size_t nlist);
  /// rerank_k == 0 resolves to max(4k, 32); nonzero clamps up to k. The
  /// band guarantee makes every resolution return identical results —
  /// rerank_k only tunes how much exact re-scoring headroom is paid for
  /// up front before the band extension kicks in.
  static size_t ResolveRerankK(size_t rerank_k, size_t k);

  /// Fixed k-means sweep count: enough to converge the bench catalogs,
  /// constant so build cost and the result are seed-determined.
  static constexpr size_t kKmeansIterations = 10;
  /// Hard cap on an index file (refuses bogus multi-GiB artifacts).
  static constexpr uint64_t kMaxIndexBytes = 1ull << 34;  // 16 GiB

 private:
  RankedList QuerySq8(const core::ExecutionContext& ctx, const float* query,
                      size_t k, const RankedList& probes, size_t rerank_k,
                      QueryStats* stats) const;
  void RecomputeListScaleMax();

  core::Matrix centroids_;             // nlist x dim coarse quantizer
  std::vector<uint32_t> list_offsets_; // nlist + 1 prefix offsets into ids_
  std::vector<uint32_t> ids_;          // original id of each stored row
  core::Matrix vectors_;               // rows x dim, grouped by list
                                       // (float mode only)
  bool quantized_ = false;
  std::vector<int8_t> codes_;          // rows x dim SQ8 codes (SQ8 mode)
  std::vector<float> scales_;          // one scale per stored row
  std::vector<float> list_scale_max_;  // per-list max scale (band bound;
                                       // recomputed, never serialized)
  const core::Matrix* catalog_ = nullptr;  // non-owning re-rank source
  size_t default_nprobe_ = 1;
  size_t default_rerank_k_ = 0;        // raw config value; 0 = auto
  uint64_t seed_ = 0;
};

}  // namespace garcia::serving

#endif  // GARCIA_SERVING_IVF_INDEX_H_
