// Copyright (c) 2026 GARCIA reproduction authors.
// IVF-style clustered inner-product retrieval index (DESIGN.md §5k).
//
// Serving answered every request with core::kernels::TopKDot — a brute-force
// scan of the whole catalog. That is O(catalog) per request: fine at bench
// scale, hopeless at the ROADMAP's million-service north star. This file
// adds the standard sub-linear alternative: a coarse quantizer (seeded
// k-means over the exported service embeddings) partitions the catalog into
// nlist inverted lists; a query scores the nlist centroids, probes the
// nprobe best lists with EXACT dot products, and merges the candidates
// under the same (score desc, id asc) total order TopKDot uses.
//
// Determinism contract (the same one every kernel in this repo keeps):
//   * Build is thread-count-invariant. k-means runs a FIXED iteration
//     count; the assignment step shards over points (each point's nearest
//     centroid is an independent computation with ties broken by ascending
//     centroid id); the update step shards over centroids, each centroid
//     averaging its members in ascending point id with double accumulation
//     — exactly the serial order, so any ExecutionContext builds the same
//     index byte for byte.
//   * Query is thread-count-invariant. Scores are double-accumulated dots
//     cast to float — the exact expression TopKDot evaluates — and
//     selection under the (score desc, id asc) TOTAL order is unique, so
//     any probe-scan partitioning returns the identical ranked list.
//   * At nprobe == nlist every candidate is probed, so the result is
//     BYTE-IDENTICAL to TopKDot over the same catalog: the brute-force
//     scan stays available as the recall oracle behind the
//     RetrievalConfig::mode knob (serving/ranking_service.h), and the
//     property harness (tests/serving_retrieval_test.cc) pins the
//     equivalence per seed, catalog, K and thread count.
//
// Persistence: a "GIV1" sectioned container in the GCK1 style
// (train/checkpoint.h) — magic + version header, one CRC-32 per section
// (meta, centroids, lists, vectors), published with
// core::WriteFileAtomic. A bit-flipped or truncated dump is rejected at
// load time with the failing section named; serving then degrades to the
// brute-force scan (ResilientRanker counts the fallback in ServingHealth).

#ifndef GARCIA_SERVING_IVF_INDEX_H_
#define GARCIA_SERVING_IVF_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/kernels.h"
#include "core/matrix.h"
#include "core/status.h"
#include "serving/ranking_service.h"

namespace garcia::serving {

/// Inverted-file inner-product index over one embedding catalog snapshot.
/// Immutable after Build()/Load(): safe to share across any number of
/// serving threads (BatchRanker workers probe concurrently with no
/// synchronization).
class IvfIndex {
 public:
  IvfIndex() = default;

  /// Clusters `catalog` (rows = service embeddings) into
  /// ResolveNlist(config.nlist, rows) lists with seeded k-means (fixed
  /// kKmeansIterations sweeps, init sampled from Rng(config.seed)), then
  /// lays every list out contiguously in one pass. Thread-count-invariant
  /// for any `ctx` (see header comment). Requires a non-empty catalog.
  static IvfIndex Build(const core::Matrix& catalog,
                        const RetrievalConfig& config,
                        const core::ExecutionContext& ctx =
                            core::SerialExecution());

  /// Top-k of <query, catalog row> over the union of the `nprobe` probed
  /// lists, sorted (score desc, id asc). nprobe is clamped to [1, nlist];
  /// nprobe >= nlist is byte-identical to kernels::TopKDot. Always returns
  /// min(k, size()) results: when the nprobe-best lists hold fewer than
  /// min(k, size()) candidates (dead clusters), the probe prefix extends
  /// down the same centroid ranking until it has enough — probe sets stay
  /// nested in nprobe, so recall stays monotone.
  RankedList Query(const core::ExecutionContext& ctx, const float* query,
                   size_t k, size_t nprobe) const;

  /// Same, probing the index's default_nprobe() through the ambient
  /// core::CurrentExecution().
  RankedList Query(const float* query, size_t k) const;

  size_t size() const { return ids_.size(); }     // catalog rows indexed
  size_t dim() const { return centroids_.cols(); }
  size_t nlist() const { return centroids_.rows(); }
  bool empty() const { return ids_.empty(); }

  /// The nprobe Query(query, k) uses: ResolveNprobe(config.nprobe, nlist)
  /// captured at build time (and serialized with the index).
  size_t default_nprobe() const { return default_nprobe_; }
  uint64_t seed() const { return seed_; }

  const core::Matrix& centroids() const { return centroids_; }
  /// Original catalog ids grouped by list, ascending id within each list;
  /// list l spans ids()[list_offsets()[l] .. list_offsets()[l + 1]).
  const std::vector<uint32_t>& ids() const { return ids_; }
  const std::vector<uint32_t>& list_offsets() const { return list_offsets_; }

  /// Sectioned "GIV1" container (see header comment), written atomically.
  core::Status Save(const std::string& path) const;
  /// Rejects wrong magic/version, truncation, trailing garbage, section
  /// CRC mismatches (naming the section), and inconsistent layout claims.
  static core::Result<IvfIndex> Load(const std::string& path);

  /// nlist == 0 resolves to round(sqrt(rows)), clamped to [1, rows].
  static size_t ResolveNlist(size_t nlist, size_t rows);
  /// nprobe == 0 resolves to max(1, nlist / 4); nonzero clamps to
  /// [1, nlist].
  static size_t ResolveNprobe(size_t nprobe, size_t nlist);

  /// Fixed k-means sweep count: enough to converge the bench catalogs,
  /// constant so build cost and the result are seed-determined.
  static constexpr size_t kKmeansIterations = 10;
  /// Hard cap on an index file (refuses bogus multi-GiB artifacts).
  static constexpr uint64_t kMaxIndexBytes = 1ull << 34;  // 16 GiB

 private:
  core::Matrix centroids_;             // nlist x dim coarse quantizer
  std::vector<uint32_t> list_offsets_; // nlist + 1 prefix offsets into ids_
  std::vector<uint32_t> ids_;          // original id of each stored row
  core::Matrix vectors_;               // rows_ x dim, grouped by list
  size_t default_nprobe_ = 1;
  uint64_t seed_ = 0;
};

}  // namespace garcia::serving

#endif  // GARCIA_SERVING_IVF_INDEX_H_
