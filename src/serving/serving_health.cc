#include "serving/serving_health.h"

#include <sstream>

#include "core/logging.h"

namespace garcia::serving {

const char* ServingTierName(ServingTier tier) {
  switch (tier) {
    case ServingTier::kFresh:
      return "fresh";
    case ServingTier::kStale:
      return "stale";
    case ServingTier::kHeadAnchor:
      return "head-anchor";
    case ServingTier::kText:
      return "text";
    case ServingTier::kPopularity:
      return "popularity";
  }
  return "unknown";
}

double ServingHealth::MeanFallbackDepth() const {
  uint64_t served = 0, weighted = 0;
  for (size_t t = 0; t < kNumServingTiers; ++t) {
    served += served_at_tier[t];
    weighted += served_at_tier[t] * t;
  }
  return served == 0 ? 0.0
                     : static_cast<double>(weighted) /
                           static_cast<double>(served);
}

double ServingHealth::FreshServeRate() const {
  return requests == 0 ? 0.0
                       : static_cast<double>(served_at_tier[0]) /
                             static_cast<double>(requests);
}

std::string ServingHealth::ToString() const {
  std::ostringstream os;
  os << "requests=" << requests << " attempts=" << attempts
     << " retries=" << retries << " transient=" << transient_failures
     << " missing=" << missing_ids << " corrupt=" << corrupt_rows
     << " deadline_exceeded=" << deadline_exceeded
     << " short_circuits=" << breaker_short_circuits << " breaker(open="
     << breaker_to_open << ",half_open=" << breaker_to_half_open
     << ",closed=" << breaker_to_closed << ") tiers[";
  for (size_t t = 0; t < kNumServingTiers; ++t) {
    if (t) os << " ";
    os << ServingTierName(static_cast<ServingTier>(t)) << "="
       << served_at_tier[t];
  }
  os << "] scoring[index=" << scored_via_index
     << ",brute=" << scored_brute_force
     << ",index_load_failures=" << index_load_failures
     << "] sq8[scans=" << quantized_scans << ",rerank_rows=" << rerank_rows
     << "] index_memory_bytes=" << index_memory_bytes
     << " mean_depth=" << MeanFallbackDepth();
  return os.str();
}

void ServingHealth::Log() const {
  GARCIA_LOG(Info) << "serving health: " << ToString();
}

}  // namespace garcia::serving
