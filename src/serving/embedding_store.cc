#include "serving/embedding_store.h"

#include <cstring>
#include <fstream>

#include "core/crc32.h"
#include "core/fileio.h"
#include "core/logging.h"

namespace garcia::serving {

namespace {

constexpr char kMagicV1[4] = {'G', 'E', 'M', 'B'};
constexpr char kMagicV2[4] = {'G', 'E', 'M', '2'};
constexpr uint32_t kVersion = 2;
constexpr uint64_t kMaxRows = 1ull << 32;
constexpr uint64_t kMaxCols = 1ull << 16;

template <typename T>
bool ReadPod(std::ifstream& f, T* out) {
  f.read(reinterpret_cast<char*>(out), sizeof(T));
  return static_cast<bool>(f);
}

}  // namespace

const float* EmbeddingStore::vector(uint32_t id) const {
  GARCIA_CHECK_LT(id, embeddings_.rows());
  return embeddings_.row(id);
}

const float* EmbeddingStore::Find(uint32_t id) const {
  if (id >= embeddings_.rows()) return nullptr;
  return embeddings_.row(id);
}

core::Status EmbeddingStore::Save(const std::string& path) const {
  // Serialize to a buffer, then publish atomically (temp + fsync +
  // rename): a crash mid-save leaves either the previous dump intact or
  // the new one complete, never a torn file a reloading server would
  // reject at startup.
  const uint64_t rows = embeddings_.rows();
  const uint64_t cols = embeddings_.cols();
  const uint64_t payload_bytes = rows * cols * sizeof(float);
  const uint32_t crc = core::Crc32(embeddings_.data(), payload_bytes);
  std::string bytes;
  bytes.reserve(24 + payload_bytes);
  bytes.append(kMagicV2, 4);
  bytes.append(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  bytes.append(reinterpret_cast<const char*>(&rows), sizeof(rows));
  bytes.append(reinterpret_cast<const char*>(&cols), sizeof(cols));
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  bytes.append(reinterpret_cast<const char*>(embeddings_.data()),
               payload_bytes);
  return core::WriteFileAtomic(path, bytes.data(), bytes.size());
}

core::Result<EmbeddingStore> EmbeddingStore::Load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return core::Status::IoError("cannot open " + path);
  f.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(f.tellg());
  f.seekg(0, std::ios::beg);

  char magic[4];
  f.read(magic, 4);
  if (!f) return core::Status::InvalidArgument(path + " is too short");

  uint32_t expected_crc = 0;
  bool has_crc = false;
  if (std::memcmp(magic, kMagicV2, 4) == 0) {
    uint32_t version = 0;
    if (!ReadPod(f, &version)) {
      return core::Status::InvalidArgument("truncated header in " + path);
    }
    if (version != kVersion) {
      return core::Status::InvalidArgument(
          "unsupported embedding store version " + std::to_string(version));
    }
    has_crc = true;
  } else if (std::memcmp(magic, kMagicV1, 4) == 0) {
    GARCIA_LOG(Warning) << path
                        << " is a legacy v1 embedding store (no checksum); "
                           "re-save to upgrade";
  } else {
    return core::Status::InvalidArgument(path + " is not an embedding store");
  }

  uint64_t rows = 0, cols = 0;
  if (!ReadPod(f, &rows) || !ReadPod(f, &cols)) {
    return core::Status::InvalidArgument("truncated header in " + path);
  }
  if (rows == 0 || cols == 0 || rows > kMaxRows || cols > kMaxCols) {
    return core::Status::InvalidArgument("corrupt embedding store header");
  }
  // rows*cols*4 cannot overflow: bounded by 2^32 * 2^16 * 4 = 2^50.
  const uint64_t payload_bytes = rows * cols * sizeof(float);
  if (payload_bytes > kMaxPayloadBytes) {
    return core::Status::InvalidArgument(
        "embedding store header claims " + std::to_string(payload_bytes) +
        " payload bytes, over the " + std::to_string(kMaxPayloadBytes) +
        " cap");
  }
  if (has_crc && !ReadPod(f, &expected_crc)) {
    return core::Status::InvalidArgument("truncated header in " + path);
  }
  // Validate the claimed payload against the actual file size BEFORE
  // allocating: a crafted 20-byte header must not drive a huge allocation,
  // and trailing garbage means the file is not what the header says.
  const uint64_t header_bytes = static_cast<uint64_t>(f.tellg());
  if (file_size < header_bytes + payload_bytes) {
    return core::Status::IoError("truncated embedding store " + path);
  }
  if (file_size > header_bytes + payload_bytes) {
    return core::Status::InvalidArgument(
        "trailing garbage after embedding payload in " + path);
  }

  core::Matrix m(rows, cols);
  f.read(reinterpret_cast<char*>(m.data()),
         static_cast<std::streamsize>(payload_bytes));
  if (!f) return core::Status::IoError("truncated embedding store " + path);
  if (has_crc) {
    const uint32_t actual_crc = core::Crc32(m.data(), payload_bytes);
    if (actual_crc != expected_crc) {
      return core::Status::InvalidArgument(
          "embedding store checksum mismatch in " + path +
          " (stored dump is corrupt)");
    }
  }
  return EmbeddingStore(std::move(m));
}

}  // namespace garcia::serving
