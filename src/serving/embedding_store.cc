#include "serving/embedding_store.h"

#include <cstring>
#include <fstream>

namespace garcia::serving {

namespace {
constexpr char kMagic[4] = {'G', 'E', 'M', 'B'};
}

const float* EmbeddingStore::vector(uint32_t id) const {
  GARCIA_CHECK_LT(id, embeddings_.rows());
  return embeddings_.row(id);
}

core::Status EmbeddingStore::Save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return core::Status::IoError("cannot open " + path);
  f.write(kMagic, 4);
  const uint64_t rows = embeddings_.rows();
  const uint64_t cols = embeddings_.cols();
  f.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  f.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  f.write(reinterpret_cast<const char*>(embeddings_.data()),
          static_cast<std::streamsize>(rows * cols * sizeof(float)));
  if (!f) return core::Status::IoError("write failed for " + path);
  return core::Status::Ok();
}

core::Result<EmbeddingStore> EmbeddingStore::Load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return core::Status::IoError("cannot open " + path);
  char magic[4];
  f.read(magic, 4);
  if (!f || std::memcmp(magic, kMagic, 4) != 0) {
    return core::Status::InvalidArgument(path + " is not an embedding store");
  }
  uint64_t rows = 0, cols = 0;
  f.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  f.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!f || rows * cols == 0 || rows > (1ull << 32) || cols > (1ull << 16)) {
    return core::Status::InvalidArgument("corrupt embedding store header");
  }
  core::Matrix m(rows, cols);
  f.read(reinterpret_cast<char*>(m.data()),
         static_cast<std::streamsize>(rows * cols * sizeof(float)));
  if (!f) return core::Status::IoError("truncated embedding store " + path);
  return EmbeddingStore(std::move(m));
}

}  // namespace garcia::serving
