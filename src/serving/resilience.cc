#include "serving/resilience.h"

namespace garcia::serving {

const char* BreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

bool CircuitBreaker::AllowRequest() {
  switch (state_) {
    case State::kClosed:
    case State::kHalfOpen:
      return true;
    case State::kOpen:
      if (clock_->NowMicros() - opened_at_micros_ >=
          config_.open_cooldown_micros) {
        state_ = State::kHalfOpen;
        half_open_successes_ = 0;
        ++to_half_open_;
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    if (++half_open_successes_ >= config_.half_open_successes) {
      state_ = State::kClosed;
      ++to_closed_;
    }
  }
}

void CircuitBreaker::RecordFailure() {
  if (state_ == State::kHalfOpen) {
    // A failed probe re-opens immediately.
    state_ = State::kOpen;
    opened_at_micros_ = clock_->NowMicros();
    consecutive_failures_ = 0;
    ++to_open_;
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= config_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_micros_ = clock_->NowMicros();
    consecutive_failures_ = 0;
    ++to_open_;
  }
}

void CircuitBreaker::Reset() {
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  opened_at_micros_ = 0;
  to_open_ = 0;
  to_half_open_ = 0;
  to_closed_ = 0;
}

}  // namespace garcia::serving
