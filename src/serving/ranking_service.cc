#include "serving/ranking_service.h"

#include <algorithm>

#include "serving/ivf_index.h"

namespace garcia::serving {

const char* RetrievalModeName(RetrievalMode mode) {
  switch (mode) {
    case RetrievalMode::kBruteForce:
      return "brute-force";
    case RetrievalMode::kIvf:
      return "ivf";
    case RetrievalMode::kIvfSq8:
      return "ivf-sq8";
  }
  return "unknown";
}

RankedList TopKInnerProduct(const core::ExecutionContext& ctx,
                            const float* query_vec, size_t dim,
                            const core::Matrix& candidates, size_t k) {
  return core::kernels::TopKDot(ctx, query_vec, dim, candidates, k);
}

RankedList TopKInnerProduct(const float* query_vec, size_t dim,
                            const core::Matrix& candidates, size_t k) {
  return TopKInnerProduct(core::CurrentExecution(), query_vec, dim, candidates,
                          k);
}

EmbeddingRanker::EmbeddingRanker(EmbeddingStore queries,
                                 EmbeddingStore services)
    : EmbeddingRanker(std::move(queries), std::move(services),
                      RetrievalConfig{}) {}

EmbeddingRanker::EmbeddingRanker(EmbeddingStore queries,
                                 EmbeddingStore services,
                                 const RetrievalConfig& retrieval)
    : queries_(std::move(queries)),
      services_(std::move(services)),
      retrieval_(retrieval) {
  GARCIA_CHECK(!queries_.empty());
  GARCIA_CHECK(!services_.empty());
  GARCIA_CHECK_EQ(queries_.dim(), services_.dim());
  if (retrieval_.mode != RetrievalMode::kBruteForce) {
    // Build from the member store: the SQ8 re-rank catalog pointer refers
    // to services_.matrix(), which lives exactly as long as this ranker.
    index_ = std::make_shared<const IvfIndex>(
        IvfIndex::Build(services_.matrix(), retrieval_));
  }
}

RankedList EmbeddingRanker::Rank(uint32_t query, size_t k) const {
  if (index_ != nullptr) {
    return index_->Query(core::CurrentExecution(), queries_.vector(query), k,
                         index_->default_nprobe(),
                         index_->default_rerank_k());
  }
  return TopKInnerProduct(queries_.vector(query), queries_.dim(),
                          services_.matrix(), k);
}

}  // namespace garcia::serving
