#include "serving/ranking_service.h"

#include <algorithm>

namespace garcia::serving {

RankedList TopKInnerProduct(const float* query_vec, size_t dim,
                            const core::Matrix& candidates, size_t k) {
  GARCIA_CHECK_EQ(candidates.cols(), dim);
  const size_t n = candidates.rows();
  RankedList scored(n);
  for (size_t i = 0; i < n; ++i) {
    const float* row = candidates.row(i);
    double dot = 0.0;
    for (size_t j = 0; j < dim; ++j) dot += static_cast<double>(query_vec[j]) * row[j];
    scored[i] = {static_cast<uint32_t>(i), static_cast<float>(dot)};
  }
  k = std::min(k, n);
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;  // deterministic ties
                    });
  scored.resize(k);
  return scored;
}

EmbeddingRanker::EmbeddingRanker(EmbeddingStore queries,
                                 EmbeddingStore services)
    : queries_(std::move(queries)), services_(std::move(services)) {
  GARCIA_CHECK(!queries_.empty());
  GARCIA_CHECK(!services_.empty());
  GARCIA_CHECK_EQ(queries_.dim(), services_.dim());
}

RankedList EmbeddingRanker::Rank(uint32_t query, size_t k) const {
  return TopKInnerProduct(queries_.vector(query), queries_.dim(),
                          services_.matrix(), k);
}

}  // namespace garcia::serving
