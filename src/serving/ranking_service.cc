#include "serving/ranking_service.h"

#include <algorithm>

namespace garcia::serving {

RankedList TopKInnerProduct(const core::ExecutionContext& ctx,
                            const float* query_vec, size_t dim,
                            const core::Matrix& candidates, size_t k) {
  return core::kernels::TopKDot(ctx, query_vec, dim, candidates, k);
}

RankedList TopKInnerProduct(const float* query_vec, size_t dim,
                            const core::Matrix& candidates, size_t k) {
  return TopKInnerProduct(core::CurrentExecution(), query_vec, dim, candidates,
                          k);
}

EmbeddingRanker::EmbeddingRanker(EmbeddingStore queries,
                                 EmbeddingStore services)
    : queries_(std::move(queries)), services_(std::move(services)) {
  GARCIA_CHECK(!queries_.empty());
  GARCIA_CHECK(!services_.empty());
  GARCIA_CHECK_EQ(queries_.dim(), services_.dim());
}

RankedList EmbeddingRanker::Rank(uint32_t query, size_t k) const {
  return TopKInnerProduct(queries_.vector(query), queries_.dim(),
                          services_.matrix(), k);
}

}  // namespace garcia::serving
