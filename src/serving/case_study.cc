#include "serving/case_study.h"

#include <algorithm>

namespace garcia::serving {

double CaseStudy::MeanMau(const std::vector<CaseStudyEntry>& list) {
  if (list.empty()) return 0.0;
  double s = 0.0;
  for (const auto& e : list) s += static_cast<double>(e.mau);
  return s / list.size();
}

double CaseStudy::MeanRating(const std::vector<CaseStudyEntry>& list) {
  if (list.empty()) return 0.0;
  double s = 0.0;
  for (const auto& e : list) s += e.rating;
  return s / list.size();
}

namespace {

std::vector<CaseStudyEntry> Annotate(const data::Scenario& s,
                                     const RankedList& list) {
  std::vector<CaseStudyEntry> out;
  out.reserve(list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    const uint32_t svc = list[i].first;
    const data::ServiceMeta& m = s.services[svc];
    out.push_back({static_cast<uint32_t>(i + 1), svc, m.name, m.mau,
                   m.rating});
  }
  return out;
}

}  // namespace

CaseStudy BuildCaseStudy(const data::Scenario& scenario,
                         const Ranker& baseline, const Ranker& treatment,
                         uint32_t query, size_t k) {
  GARCIA_CHECK_LT(query, scenario.num_queries());
  CaseStudy cs;
  cs.query = query;
  cs.query_text = scenario.query_text[query];
  cs.baseline = Annotate(scenario, baseline.Rank(query, k));
  cs.treatment = Annotate(scenario, treatment.Rank(query, k));
  return cs;
}

std::vector<uint32_t> PickTailCaseQueries(const data::Scenario& scenario,
                                          size_t count) {
  // Tail queries with the most exposure among tails: rare but real queries,
  // like the paper's "Iphone rental".
  std::vector<uint32_t> tails = scenario.split.tail_queries;
  std::stable_sort(tails.begin(), tails.end(), [&](uint32_t a, uint32_t b) {
    return scenario.query_exposure[a] > scenario.query_exposure[b];
  });
  if (tails.size() > count) tails.resize(count);
  return tails;
}

}  // namespace garcia::serving
