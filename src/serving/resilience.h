// Copyright (c) 2026 GARCIA reproduction authors.
// Resilience primitives for the online ranker: per-request deadline
// budgets and a per-store circuit breaker.
//
// Both are driven by a core::Clock, so the same logic runs deterministically
// under a ManualClock in tests/simulation and against wall time in a real
// deployment.

#ifndef GARCIA_SERVING_RESILIENCE_H_
#define GARCIA_SERVING_RESILIENCE_H_

#include <cstddef>
#include <cstdint>

#include "core/clock.h"

namespace garcia::serving {

/// Tracks how much of a request's latency budget remains.
class DeadlineBudget {
 public:
  DeadlineBudget(const core::Clock* clock, uint64_t budget_micros)
      : clock_(clock), start_(clock->NowMicros()), budget_(budget_micros) {}

  uint64_t elapsed_micros() const { return clock_->NowMicros() - start_; }
  uint64_t remaining_micros() const {
    const uint64_t e = elapsed_micros();
    return e >= budget_ ? 0 : budget_ - e;
  }
  bool expired() const { return remaining_micros() == 0; }

 private:
  const core::Clock* clock_;  // not owned
  uint64_t start_;
  uint64_t budget_;
};

struct BreakerConfig {
  size_t failure_threshold = 5;          // consecutive failures to open
  uint64_t open_cooldown_micros = 250000;  // open -> half-open delay
  size_t half_open_successes = 2;        // probe successes to close
};

/// Classic closed / open / half-open circuit breaker.
///
/// Closed: requests flow; `failure_threshold` consecutive failures open it.
/// Open: requests are short-circuited until the cooldown elapses, then the
/// breaker becomes half-open. Half-open: probe requests flow; one failure
/// re-opens, `half_open_successes` consecutive successes close it.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(const BreakerConfig& config, const core::Clock* clock)
      : config_(config), clock_(clock) {}

  /// True when a request may proceed. Performs the open -> half-open
  /// transition when the cooldown has elapsed.
  bool AllowRequest();

  void RecordSuccess();
  void RecordFailure();

  State state() const { return state_; }
  void Reset();

  // Cumulative transition counters (for ServingHealth).
  uint64_t transitions_to_open() const { return to_open_; }
  uint64_t transitions_to_half_open() const { return to_half_open_; }
  uint64_t transitions_to_closed() const { return to_closed_; }

 private:
  BreakerConfig config_;
  const core::Clock* clock_;  // not owned
  State state_ = State::kClosed;
  size_t consecutive_failures_ = 0;
  size_t half_open_successes_ = 0;
  uint64_t opened_at_micros_ = 0;
  uint64_t to_open_ = 0;
  uint64_t to_half_open_ = 0;
  uint64_t to_closed_ = 0;
};

const char* BreakerStateName(CircuitBreaker::State state);

}  // namespace garcia::serving

#endif  // GARCIA_SERVING_RESILIENCE_H_
