#include "serving/fault_injector.h"

#include <cstring>

namespace garcia::serving {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kUnavailable:
      return "unavailable";
    case FaultKind::kMissingId:
      return "missing-id";
    case FaultKind::kBitFlip:
      return "bit-flip";
    case FaultKind::kLatencySpike:
      return "latency-spike";
  }
  return "unknown";
}

uint64_t PerRequestSeed(uint64_t base_seed, uint64_t request_index) {
  uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL * (request_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

FaultInjector::FaultInjector(const EmbeddingStore* store,
                             const FaultProfile& profile)
    : store_(store), profile_(profile), rng_(profile.seed) {
  GARCIA_CHECK(store_ != nullptr);
}

void FaultInjector::Reset() { Reset(profile_.seed); }

void FaultInjector::Reset(uint64_t seed) {
  profile_.seed = seed;
  rng_ = core::Rng(seed);
  num_lookups_ = 0;
  fault_counts_.fill(0);
  scratch_.clear();
}

void FaultInjector::BeginRequest(uint64_t request_index) {
  rng_ = core::Rng(PerRequestSeed(profile_.seed, request_index));
}

LookupOutcome FaultInjector::Lookup(uint32_t id) {
  ++num_lookups_;
  LookupOutcome out;
  out.latency_micros = profile_.base_latency_micros;
  // The fault draws happen unconditionally and in a fixed order so the rng
  // stream — and therefore the whole run — depends only on the seed and the
  // lookup sequence, never on which branch was taken.
  const bool unavailable = rng_.Bernoulli(profile_.lookup_failure_rate);
  const bool missing = rng_.Bernoulli(profile_.missing_id_rate);
  const bool flip = rng_.Bernoulli(profile_.bit_flip_rate);
  const bool spike = rng_.Bernoulli(profile_.latency_spike_rate);

  if (spike) {
    out.latency_spike = true;
    out.latency_micros += profile_.spike_latency_micros;
    ++fault_counts_[static_cast<size_t>(FaultKind::kLatencySpike)];
  }
  if (unavailable) {
    out.fault = FaultKind::kUnavailable;
    ++fault_counts_[static_cast<size_t>(FaultKind::kUnavailable)];
    out.status = core::Status::Unavailable("injected transient failure");
    return out;
  }
  if (missing) {
    out.fault = FaultKind::kMissingId;
    ++fault_counts_[static_cast<size_t>(FaultKind::kMissingId)];
    out.status = core::Status::NotFound("injected cold-start miss for id " +
                                        std::to_string(id));
    return out;
  }
  const float* row = store_->Find(id);
  if (row == nullptr) {
    out.status = core::Status::NotFound("id " + std::to_string(id) +
                                        " not in store");
    return out;
  }
  if (flip) {
    out.fault = FaultKind::kBitFlip;
    ++fault_counts_[static_cast<size_t>(FaultKind::kBitFlip)];
    const size_t dim = store_->dim();
    scratch_.assign(row, row + dim);
    const size_t elem = static_cast<size_t>(rng_.UniformInt(
        static_cast<uint64_t>(dim)));
    uint32_t bits;
    std::memcpy(&bits, &scratch_[elem], sizeof(bits));
    // Force the exponent bits high: the element decodes to +/-inf or NaN,
    // so the corruption is reliably detectable by a cheap row validator.
    // (An arbitrary single-bit flip can produce a plausible value; catching
    // those is the load-time CRC's job, not the per-lookup check's.)
    bits |= 0x7f800000u;
    std::memcpy(&scratch_[elem], &bits, sizeof(bits));
    out.row = scratch_.data();
  } else {
    out.row = row;
  }
  out.status = core::Status::Ok();
  return out;
}

}  // namespace garcia::serving
