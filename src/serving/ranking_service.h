// Copyright (c) 2026 GARCIA reproduction authors.
// Online ranking module (Fig. 9): "once a new-coming user issues a request,
// efficient embedding retrieval and similarity calculation are successively
// employed ... the system only keeps top K services with the highest
// similarities".

#ifndef GARCIA_SERVING_RANKING_SERVICE_H_
#define GARCIA_SERVING_RANKING_SERVICE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/kernels.h"
#include "serving/embedding_store.h"

namespace garcia::serving {

struct FaultProfile;  // serving/fault_injector.h
class IvfIndex;       // serving/ivf_index.h

/// (service id, score), sorted by descending score.
using RankedList = std::vector<std::pair<uint32_t, float>>;

/// How the serving stack retrieves top-K candidates from the catalog.
enum class RetrievalMode : int {
  /// Exact brute-force scan (core::kernels::TopKDot) — the recall oracle.
  kBruteForce = 0,
  /// IVF clustered index (serving/ivf_index.h): sub-linear probing,
  /// byte-identical to brute force at nprobe == nlist.
  kIvf = 1,
  /// IVF with SQ8-quantized list storage (~4x smaller, faster probe scans)
  /// and band-guaranteed exact re-rank: results equal kIvf's bit for bit
  /// at every (nprobe, rerank_k >= k), so full probe is still
  /// byte-identical to brute force.
  kIvfSq8 = 2,
};

const char* RetrievalModeName(RetrievalMode mode);

/// Retrieval knobs, plumbed through EmbeddingRanker / ResilientRanker and
/// the bench drivers. The defaults (0) auto-resolve against the catalog:
/// see IvfIndex::ResolveNlist / ResolveNprobe.
struct RetrievalConfig {
  RetrievalMode mode = RetrievalMode::kBruteForce;
  size_t nlist = 0;    // 0 = round(sqrt(catalog rows))
  size_t nprobe = 0;   // 0 = max(1, nlist / 4)
  size_t rerank_k = 0; // kIvfSq8 exact re-rank depth; 0 = max(4k, 32),
                       // nonzero clamps up to k (IvfIndex::ResolveRerankK)
  uint64_t seed = 13;  // k-means init stream
};

/// Exact inner-product top-K over a candidate matrix, sharded through the
/// given execution context (core::kernels::TopKDot): block-partitioned
/// partial top-K heaps merged deterministically, bit-identical to serial
/// for any thread count. Ties break by ascending service id.
RankedList TopKInnerProduct(const core::ExecutionContext& ctx,
                            const float* query_vec, size_t dim,
                            const core::Matrix& candidates, size_t k);

/// Same, dispatching through the ambient core::CurrentExecution() (the
/// serial reference unless a ScopedExecution is installed).
RankedList TopKInnerProduct(const float* query_vec, size_t dim,
                            const core::Matrix& candidates, size_t k);

/// Anything that can rank services for a query (A/B arms implement this).
class Ranker {
 public:
  virtual ~Ranker() = default;
  virtual RankedList Rank(uint32_t query, size_t k) const = 0;

  /// Indexed entry point used by the batched serving path (BatchRanker).
  /// `request_index` identifies the request's position in the serving
  /// sequence; stateful rankers (ResilientRanker) key their per-request
  /// fault/backoff streams and their resolve order on it, which is what
  /// makes concurrent serving bit-identical to a serial pass over the same
  /// indices. Stateless rankers ignore it. Implementations must be safe to
  /// call concurrently from multiple threads.
  virtual RankedList RankAt(uint64_t /*request_index*/, uint32_t query,
                            size_t k) const {
    return Rank(query, k);
  }

  /// Called by RunAbTest before the first request of a run. Fault-aware
  /// rankers (ResilientRanker) override this to install `profile` (may be
  /// null) and reset their injector / breaker / health state so that runs
  /// are bit-identical for a fixed profile and seed. Default: no-op.
  virtual void PrepareForRun(const FaultProfile* /*profile*/,
                             uint64_t /*seed*/) const {}
};

/// Embedding-retrieval ranker: score(q, s) = <z_q, z_s> (the paper's online
/// inner-product variant of Eq. 12). Default construction scans the whole
/// service catalog per request; passing a RetrievalConfig with
/// RetrievalMode::kIvf or kIvfSq8 builds an IvfIndex over the catalog at
/// construction and probes it instead (brute force stays one knob away as
/// the recall oracle; the SQ8 index re-ranks against the service store's
/// own matrix, which this ranker owns). The index is immutable and shared:
/// Rank() is safe from any number of threads in every mode.
class EmbeddingRanker : public Ranker {
 public:
  EmbeddingRanker(EmbeddingStore queries, EmbeddingStore services);
  EmbeddingRanker(EmbeddingStore queries, EmbeddingStore services,
                  const RetrievalConfig& retrieval);

  RankedList Rank(uint32_t query, size_t k) const override;

  size_t num_queries() const { return queries_.size(); }
  size_t num_services() const { return services_.size(); }

  const RetrievalConfig& retrieval() const { return retrieval_; }
  /// Non-null iff retrieval().mode is kIvf or kIvfSq8.
  const IvfIndex* index() const { return index_.get(); }

 private:
  EmbeddingStore queries_;
  EmbeddingStore services_;
  RetrievalConfig retrieval_;
  std::shared_ptr<const IvfIndex> index_;  // null in brute-force mode
};

}  // namespace garcia::serving

#endif  // GARCIA_SERVING_RANKING_SERVICE_H_
