#include "serving/ab_test.h"

#include "core/rng.h"

namespace garcia::serving {

double AbTestResult::CtrImprovement(size_t day) const {
  return treatment[day].ctr - baseline[day].ctr;
}

double AbTestResult::ValidCtrImprovement(size_t day) const {
  return treatment[day].valid_ctr - baseline[day].valid_ctr;
}

double AbTestResult::MeanCtrImprovement() const {
  double s = 0.0;
  for (size_t d = 0; d < baseline.size(); ++d) s += CtrImprovement(d);
  return baseline.empty() ? 0.0 : s / baseline.size();
}

double AbTestResult::MeanValidCtrImprovement() const {
  double s = 0.0;
  for (size_t d = 0; d < baseline.size(); ++d) s += ValidCtrImprovement(d);
  return baseline.empty() ? 0.0 : s / baseline.size();
}

namespace {

/// Simulates one request against one arm; returns {clicked, valid}.
std::pair<bool, bool> SimulateRequest(const data::Scenario& s,
                                      const Ranker& ranker, uint32_t query,
                                      const AbTestConfig& cfg,
                                      core::Rng* rng) {
  const RankedList list = ranker.Rank(query, cfg.top_k);
  double examine = 1.0;
  for (const auto& [service, score] : list) {
    if (rng->Bernoulli(examine * s.TrueClickProbability(query, service))) {
      // Second-stage "valid" click: conversion odds grow with quality.
      const double p_valid = 0.25 + 0.6 * s.services[service].quality;
      return {true, rng->Bernoulli(p_valid)};
    }
    examine *= cfg.position_decay;
  }
  return {false, false};
}

}  // namespace

AbTestResult RunAbTest(const data::Scenario& scenario, const Ranker& baseline,
                       const Ranker& treatment, const AbTestConfig& config) {
  baseline.PrepareForRun(config.fault_profile, config.seed);
  treatment.PrepareForRun(config.fault_profile, config.seed);
  core::Rng traffic_rng(config.seed);
  core::ZipfSampler traffic(scenario.num_queries(),
                            scenario.config.zipf_exponent);
  AbTestResult result;
  result.baseline.resize(config.num_days);
  result.treatment.resize(config.num_days);
  for (size_t day = 0; day < config.num_days; ++day) {
    size_t clicks_a = 0, valid_a = 0, clicks_b = 0, valid_b = 0;
    for (size_t r = 0; r < config.requests_per_day; ++r) {
      const uint32_t query =
          static_cast<uint32_t>(traffic.Sample(&traffic_rng));
      // Paired buckets: identical query and an identically-seeded user for
      // both arms, so day-level noise cancels.
      core::Rng user_a = traffic_rng.Fork();
      core::Rng user_b = user_a;  // same user behavior stream
      auto [ca, va] = SimulateRequest(scenario, baseline, query, config,
                                      &user_a);
      auto [cb, vb] = SimulateRequest(scenario, treatment, query, config,
                                      &user_b);
      clicks_a += ca;
      valid_a += va;
      clicks_b += cb;
      valid_b += vb;
    }
    const double n = static_cast<double>(config.requests_per_day);
    result.baseline[day] = {clicks_a / n, valid_a / n};
    result.treatment[day] = {clicks_b / n, valid_b / n};
  }
  return result;
}

}  // namespace garcia::serving
