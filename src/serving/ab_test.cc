#include "serving/ab_test.h"

#include "core/rng.h"

namespace garcia::serving {

double AbTestResult::CtrImprovement(size_t day) const {
  return treatment[day].ctr - baseline[day].ctr;
}

double AbTestResult::ValidCtrImprovement(size_t day) const {
  return treatment[day].valid_ctr - baseline[day].valid_ctr;
}

double AbTestResult::MeanCtrImprovement() const {
  double s = 0.0;
  for (size_t d = 0; d < baseline.size(); ++d) s += CtrImprovement(d);
  return baseline.empty() ? 0.0 : s / baseline.size();
}

double AbTestResult::MeanValidCtrImprovement() const {
  double s = 0.0;
  for (size_t d = 0; d < baseline.size(); ++d) s += ValidCtrImprovement(d);
  return baseline.empty() ? 0.0 : s / baseline.size();
}

namespace {

/// Simulates the user's reaction to one ranked list; returns
/// {clicked, valid}.
std::pair<bool, bool> SimulateClicks(const data::Scenario& s,
                                     const RankedList& list, uint32_t query,
                                     const AbTestConfig& cfg,
                                     core::Rng* rng) {
  double examine = 1.0;
  for (const auto& [service, score] : list) {
    if (rng->Bernoulli(examine * s.TrueClickProbability(query, service))) {
      // Second-stage "valid" click: conversion odds grow with quality.
      const double p_valid = 0.25 + 0.6 * s.services[service].quality;
      return {true, rng->Bernoulli(p_valid)};
    }
    examine *= cfg.position_decay;
  }
  return {false, false};
}

/// Non-owning shared_ptr view of an arm held by the caller.
std::shared_ptr<const Ranker> Borrow(const Ranker& ranker) {
  return std::shared_ptr<const Ranker>(std::shared_ptr<const Ranker>(),
                                       &ranker);
}

}  // namespace

AbTestResult RunAbTest(const data::Scenario& scenario, const Ranker& baseline,
                       const Ranker& treatment, const AbTestConfig& config) {
  baseline.PrepareForRun(config.fault_profile, config.seed);
  treatment.PrepareForRun(config.fault_profile, config.seed);
  // One batched dispatcher per arm; the request-index streams run across
  // days, exactly like the request sequence a serial loop would produce.
  BatchRanker batch_a(Borrow(baseline), config.serve);
  BatchRanker batch_b(Borrow(treatment), config.serve);
  core::Rng traffic_rng(config.seed);
  core::ZipfSampler traffic(scenario.num_queries(),
                            scenario.config.zipf_exponent);
  AbTestResult result;
  result.baseline.resize(config.num_days);
  result.treatment.resize(config.num_days);
  std::vector<ServeRequest> requests(config.requests_per_day);
  std::vector<core::Rng> users(config.requests_per_day);
  for (size_t day = 0; day < config.num_days; ++day) {
    // Draw the day's traffic first — queries and per-user behavior streams
    // come off traffic_rng in the same order as a request-at-a-time loop —
    // then rank the whole day through the batched path.
    for (size_t r = 0; r < config.requests_per_day; ++r) {
      requests[r].query = static_cast<uint32_t>(traffic.Sample(&traffic_rng));
      requests[r].k = config.top_k;
      // Paired buckets: identical query and an identically-seeded user for
      // both arms, so day-level noise cancels.
      users[r] = traffic_rng.Fork();
    }
    const std::vector<RankedList> lists_a = batch_a.RankBatch(requests);
    const std::vector<RankedList> lists_b = batch_b.RankBatch(requests);
    size_t clicks_a = 0, valid_a = 0, clicks_b = 0, valid_b = 0;
    for (size_t r = 0; r < config.requests_per_day; ++r) {
      core::Rng user_a = users[r];
      core::Rng user_b = users[r];  // same user behavior stream
      auto [ca, va] = SimulateClicks(scenario, lists_a[r], requests[r].query,
                                     config, &user_a);
      auto [cb, vb] = SimulateClicks(scenario, lists_b[r], requests[r].query,
                                     config, &user_b);
      clicks_a += ca;
      valid_a += va;
      clicks_b += cb;
      valid_b += vb;
    }
    const double n = static_cast<double>(config.requests_per_day);
    result.baseline[day] = {clicks_a / n, valid_a / n};
    result.treatment[day] = {clicks_b / n, valid_b / n};
  }
  return result;
}

}  // namespace garcia::serving
