// Copyright (c) 2026 GARCIA reproduction authors.
// Deterministic fault injection for embedding lookups.
//
// The offline-to-online hand-off of Fig. 9 (daily embedding dumps consumed
// by a latency-critical ranker) fails in practice in four characteristic
// ways, each modeled here: transient lookup unavailability, latency spikes,
// ids missing from yesterday's dump (cold-start tail queries), and silent
// row corruption (bit flips). The injector draws every fault from one
// seeded Rng, so a run is bit-identical for a fixed seed and lookup
// sequence — failures can be replayed exactly.

#ifndef GARCIA_SERVING_FAULT_INJECTOR_H_
#define GARCIA_SERVING_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "serving/embedding_store.h"

namespace garcia::serving {

/// Knobs of one fault scenario. Rates are independent per-lookup
/// probabilities, checked in the order unavailable > missing id > bit flip
/// (at most one fault per lookup; latency spikes stack on any outcome).
struct FaultProfile {
  uint64_t seed = 42;
  double lookup_failure_rate = 0.0;  // transient kUnavailable
  double missing_id_rate = 0.0;      // id "absent from the dump" (cold start)
  double bit_flip_rate = 0.0;        // one bit of the returned row flipped
  double latency_spike_rate = 0.0;   // lookup takes spike_latency_micros
  uint64_t base_latency_micros = 50;
  uint64_t spike_latency_micros = 20000;
};

enum class FaultKind : int {
  kNone = 0,
  kUnavailable = 1,
  kMissingId = 2,
  kBitFlip = 3,
  kLatencySpike = 4,
};
constexpr size_t kNumFaultKinds = 5;

const char* FaultKindName(FaultKind kind);

/// Deterministic stream seed for one serving request: a SplitMix64 finalize
/// of (base_seed, request_index). Concurrent requests draw from independent
/// streams whose content depends only on the pair — never on how lookups
/// from different requests interleave — which is what makes batched serving
/// replay bit-identically against a serial pass (see ResilientRanker).
uint64_t PerRequestSeed(uint64_t base_seed, uint64_t request_index);

/// Result of one (possibly perturbed) lookup.
struct LookupOutcome {
  core::Status status;           // Ok, NotFound (missing id) or Unavailable
  const float* row = nullptr;    // valid until the next Lookup() call
  uint64_t latency_micros = 0;   // simulated service time of this lookup
  FaultKind fault = FaultKind::kNone;       // primary fault
  bool latency_spike = false;               // orthogonal to `fault`
};

/// Wraps an EmbeddingStore lookup with seeded fault injection. Not
/// thread-safe; callers serialize access (ResilientRanker holds a lock).
class FaultInjector {
 public:
  FaultInjector(const EmbeddingStore* store, const FaultProfile& profile);

  /// Looks up `id`, possibly perturbed. A bit-flipped row points into an
  /// internal scratch buffer, so it is invalidated by the next Lookup().
  LookupOutcome Lookup(uint32_t id);

  /// Restores the injector to its initial state (profile seed, counters).
  void Reset();
  /// Same, but overrides the seed (for paired A/B runs).
  void Reset(uint64_t seed);

  /// Rewinds the fault stream to the per-request stream
  /// PerRequestSeed(profile seed, request_index). Opt-in: callers that
  /// never invoke it keep the single continuous stream. ResilientRanker
  /// calls it at the top of every request so a request's fault draws are a
  /// function of (profile seed, request index) alone. Counters are NOT
  /// reset — they stay cumulative across the run.
  void BeginRequest(uint64_t request_index);

  const FaultProfile& profile() const { return profile_; }
  uint64_t num_lookups() const { return num_lookups_; }
  uint64_t num_faults(FaultKind kind) const {
    return fault_counts_[static_cast<size_t>(kind)];
  }

 private:
  const EmbeddingStore* store_;  // not owned
  FaultProfile profile_;
  core::Rng rng_;
  std::vector<float> scratch_;   // holds a corrupted row copy
  uint64_t num_lookups_ = 0;
  std::array<uint64_t, kNumFaultKinds> fault_counts_{};
};

}  // namespace garcia::serving

#endif  // GARCIA_SERVING_FAULT_INJECTOR_H_
