// Copyright (c) 2026 GARCIA reproduction authors.
// Crash-safe file primitives shared by every on-disk artifact (embedding
// dumps, training checkpoints).
//
// The atomic write protocol is the classic temp-file dance: write the full
// payload to "<path>.tmp", fsync the file, rename(2) it over the final
// path, then fsync the containing directory. A crash at any instant leaves
// either the previous version of `path` intact or the new one complete —
// never a torn file under the final name. (A stray .tmp may survive a
// crash; readers must ignore it and writers overwrite it.)

#ifndef GARCIA_CORE_FILEIO_H_
#define GARCIA_CORE_FILEIO_H_

#include <cstddef>
#include <limits>
#include <string>

#include "core/status.h"

namespace garcia::core {

/// Atomically replaces `path` with the given bytes (see header comment).
/// On failure the previous content of `path`, if any, is untouched.
Status WriteFileAtomic(const std::string& path, const void* data,
                       size_t num_bytes);

/// Whole-file read. Fails with kIoError when the file is missing or larger
/// than `max_bytes` (a cap against reading a bogus multi-GiB artifact into
/// memory before any header validation has run).
Result<std::string> ReadFile(
    const std::string& path,
    size_t max_bytes = std::numeric_limits<size_t>::max());

}  // namespace garcia::core

#endif  // GARCIA_CORE_FILEIO_H_
