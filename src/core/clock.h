// Copyright (c) 2026 GARCIA reproduction authors.
// Virtualized time for the serving resilience layer.
//
// Deadline budgets, retry backoff and circuit-breaker cooldowns all need a
// notion of "now" and of "sleeping". Wiring them to a Clock interface keeps
// the fault-tolerance logic deterministic: simulations and tests use a
// ManualClock whose Sleep() merely advances simulated time, while a real
// deployment swaps in SystemClock without touching the callers.

#ifndef GARCIA_CORE_CLOCK_H_
#define GARCIA_CORE_CLOCK_H_

#include <cstdint>

namespace garcia::core {

/// Monotonic microsecond clock with a cooperative sleep.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds. Only differences are meaningful.
  virtual uint64_t NowMicros() const = 0;

  /// Blocks (or pretends to) for the given duration.
  virtual void SleepMicros(uint64_t micros) = 0;
};

/// Deterministic clock: time moves only when explicitly advanced or slept.
class ManualClock : public Clock {
 public:
  explicit ManualClock(uint64_t start_micros = 0) : now_(start_micros) {}

  uint64_t NowMicros() const override { return now_; }
  void SleepMicros(uint64_t micros) override { now_ += micros; }
  void AdvanceMicros(uint64_t micros) { now_ += micros; }
  void Reset(uint64_t start_micros = 0) { now_ = start_micros; }

 private:
  uint64_t now_;
};

/// Wall-clock implementation backed by std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  uint64_t NowMicros() const override;
  void SleepMicros(uint64_t micros) override;
};

}  // namespace garcia::core

#endif  // GARCIA_CORE_CLOCK_H_
