// Copyright (c) 2026 GARCIA reproduction authors.
// Dependency-tracked task scheduling on top of ThreadPool.
//
// The execution layer historically ran bulk-synchronous: every phase
// (sample, pack, encode, reduce, resolve) submitted its shards and then
// drained the pool to idle before the next phase started. TaskGraph
// replaces those phase barriers with point-to-point dependency release:
// each node carries an atomic in-degree countdown, and the completion of
// a producer decrements its consumers, submitting any that reach zero
// directly onto the pool. No condition variable is involved per phase
// edge; the only cv is the one WaitAll() blocks on.
//
// Determinism contract: TaskGraph schedules *when* work runs, never what
// it computes. Callers keep results bit-identical to the barriered code
// by merging at join points in ascending shard / request order (see
// kernels::OrderedShardMerge), exactly as the barriered kernels did.

#ifndef GARCIA_CORE_TASKGRAPH_H_
#define GARCIA_CORE_TASKGRAPH_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "core/macros.h"
#include "core/threadpool.h"

namespace garcia::core {

/// A one-shot dependency graph of void() tasks executed on a ThreadPool.
///
/// Usage: Add() nodes (dependencies must refer to already-added nodes),
/// then WaitAll(). Nodes with no unmet dependencies are submitted
/// immediately, so execution overlaps graph construction. With a null
/// pool every node runs inline at Add() time in program order — the
/// serial reference semantics that the parallel schedule must reproduce
/// bit for bit.
///
/// Thread safety: Add() and WaitAll() may be called from the owning
/// thread while node bodies run on pool workers. Node bodies may not
/// call Add() on their own graph.
class TaskGraph {
 public:
  using NodeId = size_t;

  /// pool == nullptr runs every node inline at Add() time.
  explicit TaskGraph(ThreadPool* pool) : pool_(pool) {}

  /// Destruction requires the graph to be drained (WaitAll or no nodes).
  ~TaskGraph();

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a node depending on `deps` (each id must come from an earlier
  /// Add on this graph). Returns the node's id.
  NodeId Add(std::function<void()> fn, const std::vector<NodeId>& deps = {});

  /// Blocks until every added node has finished.
  void WaitAll();

  size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    std::function<void()> fn;
    /// Unsatisfied dependency count + 1 registration guard. The guard is
    /// released at the end of Add(), so a node can never fire while its
    /// consumer edges are still being wired.
    std::atomic<size_t> pending{0};
    std::vector<Node*> consumers;  // guarded by mu_
    bool done = false;             // guarded by mu_
  };

  void Dispatch(Node* node);
  void RunNode(Node* node);

  ThreadPool* pool_;
  std::deque<Node> nodes_;  // deque: stable addresses across Add()
  std::mutex mu_;
  std::condition_variable drained_;
  size_t outstanding_ = 0;  // guarded by mu_
};

/// Single-assignment cell for cross-stage handoff: a producer task Sets
/// the value exactly once; consumers block in Take()/Peek() until it is
/// available. This is the point-to-point replacement for "wait for the
/// whole phase, then read the buffer".
template <typename T>
class Promise {
 public:
  Promise() = default;
  Promise(const Promise&) = delete;
  Promise& operator=(const Promise&) = delete;

  /// Fulfils the promise. Must be called exactly once.
  void Set(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      GARCIA_CHECK(!ready_);
      value_ = std::move(value);
      ready_ = true;
    }
    cv_.notify_all();
  }

  /// Blocks until Set, then moves the value out. Single consumer.
  T Take() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return ready_; });
    ready_ = false;
    return std::move(value_);
  }

  bool ready() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ready_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  T value_{};
  bool ready_ = false;
};

/// Ascending-ticket sequencer: thread t calls WaitTurn(t), performs its
/// ordered critical section, then FinishTurn(t) hands the turn to t+1.
/// This is the per-request countdown handoff used by the serving resolve
/// phase — a ring of slot cvs so each FinishTurn wakes only the slot the
/// next ticket waits on, instead of a single cv broadcast to every
/// blocked request.
class TicketGate {
 public:
  explicit TicketGate(size_t slots = 16);

  TicketGate(const TicketGate&) = delete;
  TicketGate& operator=(const TicketGate&) = delete;

  /// Blocks until `ticket` holds the turn. Each ticket value must be
  /// used at most once; a ticket below the current turn means the caller
  /// reused an index and is a checked bug.
  void WaitTurn(uint64_t ticket);

  /// Releases the turn held by `ticket` to ticket + 1.
  void FinishTurn(uint64_t ticket);

  /// Restarts the sequence at `next`. Callers must ensure no thread is
  /// waiting when they reset (run boundaries in the serving harness).
  void Reset(uint64_t next = 0);

  uint64_t current_turn() const {
    return turn_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    std::mutex m;
    std::condition_variable cv;
  };

  std::deque<Slot> slots_;  // deque: Slot is not movable
  std::atomic<uint64_t> turn_{0};
};

}  // namespace garcia::core

#endif  // GARCIA_CORE_TASKGRAPH_H_
