// Copyright (c) 2026 GARCIA reproduction authors.
// Lightweight Status / Result<T> error handling in the Arrow/RocksDB idiom.
//
// Functions whose failure depends on external input (files, configs,
// user-provided ids) return Status or Result<T>. Internal invariants use
// GARCIA_CHECK instead.

#ifndef GARCIA_CORE_STATUS_H_
#define GARCIA_CORE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "core/macros.h"

namespace garcia::core {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error. Access to the value when !ok() aborts.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {   // NOLINT(runtime/explicit)
    GARCIA_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    GARCIA_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    GARCIA_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    GARCIA_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace garcia::core

/// Propagates a non-OK status to the caller.
#define GARCIA_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::garcia::core::Status _st = (expr);      \
    if (!_st.ok()) return _st;                \
  } while (false)

#endif  // GARCIA_CORE_STATUS_H_
