#include "core/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/macros.h"

namespace garcia::core {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  GARCIA_CHECK_GT(n, 0u);
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t x;
  do {
    x = NextU64();
  } while (x >= limit);
  return x % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GARCIA_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  GARCIA_CHECK_LE(k, n);
  if (k == 0) return {};
  if (k * 3 >= n) {
    // Dense path: partial Fisher-Yates.
    std::vector<size_t> pool(n);
    for (size_t i = 0; i < n; ++i) pool[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(UniformInt(static_cast<uint64_t>(n - i)));
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }
  // Sparse path: rejection into a hash set.
  std::unordered_set<size_t> seen;
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    size_t x = static_cast<size_t>(UniformInt(static_cast<uint64_t>(n)));
    if (seen.insert(x).second) out.push_back(x);
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xa0761d6478bd642fULL); }

RngState Rng::ExportState() const {
  RngState st;
  for (size_t i = 0; i < 4; ++i) st.words[i] = state_[i];
  st.has_cached_normal = has_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Rng::RestoreState(const RngState& state) {
  GARCIA_CHECK((state.words[0] | state.words[1] | state.words[2] |
                state.words[3]) != 0)
      << "all-zero rng state (corrupt snapshot)";
  for (size_t i = 0; i < 4; ++i) state_[i] = state.words[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

ZipfSampler::ZipfSampler(size_t n, double s) : s_(s) {
  GARCIA_CHECK_GT(n, 0u);
  GARCIA_CHECK_GT(s, 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  const double norm = 1.0 / acc;
  for (auto& c : cdf_) c *= norm;
  cdf_.back() = 1.0;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->Uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t rank) const {
  GARCIA_CHECK_LT(rank, cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  GARCIA_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    GARCIA_CHECK_GE(w, 0.0);
    total += w;
  }
  GARCIA_CHECK_GT(total, 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

size_t AliasSampler::Sample(Rng* rng) const {
  const size_t i = static_cast<size_t>(
      rng->UniformInt(static_cast<uint64_t>(prob_.size())));
  return rng->Uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace garcia::core
