// Copyright (c) 2026 GARCIA reproduction authors.
// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant) for integrity
// checking of serialized artifacts such as embedding dumps.

#ifndef GARCIA_CORE_CRC32_H_
#define GARCIA_CORE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace garcia::core {

/// One-shot CRC-32 of a buffer.
uint32_t Crc32(const void* data, size_t num_bytes);

/// Streaming form: feed `crc` from the previous call (start with 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t num_bytes);

}  // namespace garcia::core

#endif  // GARCIA_CORE_CRC32_H_
