#include "core/table.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/string_util.h"

namespace garcia::core {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  GARCIA_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  GARCIA_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void Table::AddNumericRow(const std::string& label,
                          const std::vector<double>& vals, int decimals) {
  GARCIA_CHECK_EQ(vals.size() + 1, header_.size());
  std::vector<std::string> row;
  row.reserve(header_.size());
  row.push_back(label);
  for (double v : vals) row.push_back(FormatFixed(v, decimals));
  AddRow(std::move(row));
}

std::string Table::ToAscii() const {
  std::vector<size_t> widths(header_.size());
  for (size_t j = 0; j < header_.size(); ++j) widths[j] = header_[j].size();
  for (const auto& r : rows_) {
    for (size_t j = 0; j < r.size(); ++j) {
      widths[j] = std::max(widths[j], r[j].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& r) {
    std::string line = "|";
    for (size_t j = 0; j < r.size(); ++j) {
      line += " " + r[j] + std::string(widths[j] - r[j].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string sep = "|";
  for (size_t j = 0; j < widths.size(); ++j) {
    sep += std::string(widths[j] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& r : rows_) out += render_row(r);
  return out;
}

namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t j = 0; j < r.size(); ++j) {
      if (j) os << ",";
      os << CsvEscape(r[j]);
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  f << ToCsv();
  if (!f) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace garcia::core
