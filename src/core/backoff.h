// Copyright (c) 2026 GARCIA reproduction authors.
// Exponential backoff with decorrelating jitter for retry loops.

#ifndef GARCIA_CORE_BACKOFF_H_
#define GARCIA_CORE_BACKOFF_H_

#include <cstddef>
#include <cstdint>

namespace garcia::core {

class Rng;

struct BackoffConfig {
  uint64_t initial_micros = 1000;  // delay before the first retry
  double multiplier = 2.0;         // growth per subsequent retry
  uint64_t max_micros = 64000;     // cap on any single delay
  double jitter = 0.5;             // delay drawn from [d*(1-j), d] uniformly
};

/// Delay before retry number `retry` (0-based: the delay after the first
/// failed attempt is retry 0). Jitter draws from the rng, so passing the
/// same seeded Rng reproduces the exact delay sequence.
uint64_t BackoffDelayMicros(const BackoffConfig& config, size_t retry,
                            Rng* rng);

}  // namespace garcia::core

#endif  // GARCIA_CORE_BACKOFF_H_
