// Copyright (c) 2026 GARCIA reproduction authors.
// Pluggable kernel execution layer.
//
// Every hot compute loop of the training/serving stack — the packed
// cache-blocked GEMM, the elementwise activations, row gather and its
// scatter-add adjoint, the segment reductions behind graph aggregation, and
// the softmax cross-entropy inside InfoNCE — dispatches through the kernels
// in this file. Each kernel has a serial reference implementation and a
// ParallelFor-sharded one; an ExecutionContext (thread pool handle +
// KernelTuning shard/panel policy) selects between them.
//
// Determinism contract: for ANY ExecutionContext the parallel path is
// bit-identical to the serial reference, not merely close. Kernels shard
// over independent output coordinates (rows, elements, segments); reduction
// kernels (scatter-add, segment sum/softmax, cross-entropy) shard by
// destination segment and accumulate each destination's contributions in
// ascending source order — exactly the order of the serial loop. A model
// trained with num_threads=N therefore reproduces the num_threads=0 loss
// trajectory to the last bit (asserted by tests/core_kernels_test.cc and
// tests/models_garcia_test.cc).
//
// How to add a kernel: write the serial loop; identify the independent
// output coordinate; express the parallel path as ShardedFor over that
// coordinate with per-destination source order fixed to ascending; add a
// serial-vs-parallel bit-identity case to core_kernels_test.

#ifndef GARCIA_CORE_KERNELS_H_
#define GARCIA_CORE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/matrix.h"
#include "core/threadpool.h"

namespace garcia::core {

/// Per-context kernel tuning knobs: GEMM packing panel sizes and the
/// shard-size floors of every sharded kernel. The defaults reproduce the
/// historical hard-coded values; none of the knobs affects results (the
/// kernels are bit-identical across backends and tunings by construction),
/// only how work is blocked and split. Seed overrides from
/// `bench/micro_kernels --speedup_json` measurements on the target machine
/// (BENCH_kernels.json) and install them per context via
/// ExecutionContext::set_tuning.
struct KernelTuning {
  // ----- Packed GEMM (see kernels.cc) -----
  /// Row-block height MC of a packed A block (floats). An MC x KC A block
  /// should fit L2 alongside the KC x NR B micro-panels streaming through
  /// L1.
  size_t gemm_mc = 64;
  /// K-panel depth KC shared by the packed A block and B panel.
  size_t gemm_kc = 256;
  /// Column-panel width NC of a packed B panel.
  size_t gemm_nc = 256;
  /// Floors the 2-D shard grid refinement: when a parallel context splits
  /// the output into (row block x column panel) tiles and the grid is too
  /// coarse to feed every worker, blocks are halved but never below these.
  size_t gemm_min_rows_per_shard = 8;
  size_t gemm_min_cols_per_shard = 16;

  // ----- Shard floors of the other kernels -----
  /// Elementwise kernels: fewer elements than this run inline.
  size_t min_elems_per_shard = size_t{1} << 14;
  /// Row-sharded kernels (gather, normalize, row dot, ...).
  size_t min_rows_per_shard = 64;
  /// Destination-sharded reductions (scatter-add, segment sum/softmax).
  size_t min_segments_per_shard = 64;
  /// Scatter/segment kernels pay an O(R + E) index build on the parallel
  /// path; below this many sources the serial loop is cheaper outright.
  size_t min_scatter_sources = 2048;
  /// Softmax cross-entropy rows (heavier per row than the generic floor).
  size_t min_loss_rows_per_shard = 32;
};

/// Execution policy handed to the compute kernels: either serial (the
/// reference backend) or sharded across a privately owned thread pool.
class ExecutionContext {
 public:
  /// num_threads <= 1 selects the serial backend (no pool is created);
  /// num_threads >= 2 creates a pool of that many workers. The default
  /// matches the historical single-threaded behavior by construction.
  explicit ExecutionContext(size_t num_threads = 0);
  ExecutionContext(size_t num_threads, const KernelTuning& tuning);
  ~ExecutionContext();

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// 1 for the serial backend, the worker count otherwise.
  size_t num_threads() const;
  bool parallel() const { return pool_ != nullptr; }

  /// Shard floors and GEMM panel sizes the kernels dispatch with. Tunings
  /// never change results, only wall-clock; set before sharing the context
  /// across threads.
  const KernelTuning& tuning() const { return tuning_; }
  void set_tuning(const KernelTuning& tuning) { tuning_ = tuning; }

  /// Runs fn(lo, hi) over contiguous, non-overlapping shards covering
  /// [begin, end): one inline call on the serial backend, pool-sharded
  /// otherwise. min_shard bounds the smallest shard so tiny ranges stay
  /// inline.
  void ShardedFor(size_t begin, size_t end, size_t min_shard,
                  const std::function<void(size_t, size_t)>& fn) const;

 private:
  std::unique_ptr<ThreadPool> pool_;  // null = serial backend
  KernelTuning tuning_;
};

/// The process-default serial context.
const ExecutionContext& SerialExecution();

/// The context kernels dispatch through when no explicit one is passed.
/// Defaults to SerialExecution(); models install theirs via ScopedExecution
/// around Fit/Predict/Export so every op and backward closure inside picks
/// it up. Thread-local, so concurrent models on different threads do not
/// interfere.
const ExecutionContext& CurrentExecution();

/// RAII installer for CurrentExecution(). Passing nullptr keeps the serial
/// default. Nestable; the previous context is restored on destruction.
class ScopedExecution {
 public:
  explicit ScopedExecution(const ExecutionContext* ctx);
  ~ScopedExecution();

  ScopedExecution(const ScopedExecution&) = delete;
  ScopedExecution& operator=(const ScopedExecution&) = delete;

 private:
  const ExecutionContext* prev_;
};

namespace kernels {

// ----- GEMM -----

/// C = alpha * op(A) @ op(B) + beta * C (row-major, packed and
/// cache-blocked). The output is tiled into MC-row x NC-column cells; each
/// cell walks KC-deep k-panels in ascending order, packing op(A) and op(B)
/// panels straight from their strided sources (transposed operands are
/// never materialized whole) and running a register-tiled micro-kernel.
/// Parallel contexts shard the 2-D tile grid — row blocks x column panels,
/// refined down to KernelTuning's shard floors when the grid is too coarse
/// for the pool — so trans_a GEMMs with small m (the dW = X^T dY backward
/// shape) parallelize over columns too. Every tiling accumulates each
/// output element in ascending-k order from fl(alpha * a) * b terms, so the
/// result is bit-identical to the naive triple loop for every transpose
/// flag, thread count and tuning (tests/core_gemm_test.cc). IEEE
/// non-finite values propagate: zero operands are not special-cased, so a
/// 0 * Inf term poisons its output element with NaN exactly as the naive
/// reference does. (Exactly-NaN outputs match the reference as a class,
/// not bit for bit — IEEE-754 leaves NaN sign/payload selection to the
/// implementation, so separately compiled code may keep a different NaN;
/// across this kernel's own backends and tunings even NaN bits agree.)
void Gemm(const ExecutionContext& ctx, bool trans_a, bool trans_b,
          float alpha, const Matrix& a, const Matrix& b, float beta,
          Matrix* c);

// ----- Elementwise activations -----

enum class UnaryOp { kRelu, kTanh, kLeakyRelu, kSigmoid };

/// y[i] = f(x[i]) for i < n. `slope` is the LeakyReLU negative slope
/// (ignored by the other ops). x may alias y.
void UnaryForward(const ExecutionContext& ctx, UnaryOp op, float slope,
                  const float* x, float* y, size_t n);

/// dx[i] += dy[i] * f'(x[i]) for i < n, with f' evaluated from the cached
/// input x and output y (whichever the op needs).
void UnaryBackwardAdd(const ExecutionContext& ctx, UnaryOp op, float slope,
                      const float* x, const float* y, const float* dy,
                      float* dx, size_t n);

// ----- Row gather / scatter -----

/// out->row(i) = src.row(idx[i]). out must be idx.size() x src.cols().
void GatherRows(const ExecutionContext& ctx, const Matrix& src,
                const std::vector<uint32_t>& idx, Matrix* out);

/// out->row(i) += src.row(idx[i]) (gather-accumulate; the backward of
/// SegmentSum). Sharded by output row.
void GatherAddRows(const ExecutionContext& ctx, const Matrix& src,
                   const std::vector<uint32_t>& idx, Matrix* out);

/// accum->row(idx[e]) += src.row(e) for e in source order (the adjoint of
/// GatherRows). Destinations may repeat; the parallel backend shards BY
/// DESTINATION ROW and replays each destination's contributions in
/// ascending e — bit-identical to the serial loop.
void ScatterAddRows(const ExecutionContext& ctx, const Matrix& src,
                    const std::vector<uint32_t>& idx, Matrix* accum);

// ----- Segment reductions -----

/// out->row(s) = Σ_{e: seg[e]==s} x.row(e). out must be num_segments x
/// x.cols(); it is zeroed first. Sharded by destination segment.
void SegmentSum(const ExecutionContext& ctx, const Matrix& x,
                const std::vector<uint32_t>& seg, size_t num_segments,
                Matrix* out);

/// Per-segment max-stabilized softmax over Ex1 scores; segments may be
/// empty. out must be Ex1 (may alias scores only on the serial backend; the
/// callers never alias).
void SegmentSoftmax(const ExecutionContext& ctx, const Matrix& scores,
                    const std::vector<uint32_t>& seg, size_t num_segments,
                    Matrix* out);

/// dscores[e] += alpha[e] * (dalpha[e] - Σ_{e' in seg(e)} dalpha[e']
/// alpha[e']). alpha is the forward output; sharded by segment.
void SegmentSoftmaxBackwardAdd(const ExecutionContext& ctx,
                               const Matrix& alpha, const Matrix& dalpha,
                               const std::vector<uint32_t>& seg,
                               size_t num_segments, Matrix* dscores);

// ----- Row broadcast / row reduction -----

/// x->at(i, j) *= w(i, 0) (MulColBroadcast forward, and its dX with x=dY).
void ScaleRowsInPlace(const ExecutionContext& ctx, Matrix* x,
                      const Matrix& w);

/// out(i, 0) += Σ_j a(i, j) * b(i, j), accumulated in double per row
/// (MulColBroadcast's dW). Sharded by row.
void RowDotAdd(const ExecutionContext& ctx, const Matrix& a, const Matrix& b,
               Matrix* out);

// ----- L2 row normalization (InfoNCE forward) -----

/// out->row(i) = x.row(i) / max(||x.row(i)||, eps); rows with norm <= eps
/// map to zero rows. norms receives max(||row||, eps) for the backward.
void L2NormalizeRows(const ExecutionContext& ctx, const Matrix& x, float eps,
                     Matrix* out, std::vector<float>* norms);

/// dx.row(i) += (dy.row(i) - <dy_i, y_i> y.row(i)) / norms[i]; rows whose
/// forward norm was <= eps receive zero gradient.
void L2NormalizeRowsBackwardAdd(const ExecutionContext& ctx, const Matrix& y,
                                const Matrix& dy,
                                const std::vector<float>& norms, float eps,
                                Matrix* dx);

// ----- Softmax cross-entropy (InfoNCE head) -----

/// In-place row softmax of *logits plus the summed loss
/// Σ_i [logsumexp(row_i) - row_i[targets[i]]]. Per-row terms are computed
/// sharded; the final sum always runs serially in row order so the result
/// is backend-independent.
double CrossEntropyForward(const ExecutionContext& ctx, Matrix* logits,
                           const std::vector<uint32_t>& targets);

/// dlogits(i, j) += gout * softmax(i, j), minus gout at the target column.
void CrossEntropyBackwardAdd(const ExecutionContext& ctx,
                             const Matrix& softmax,
                             const std::vector<uint32_t>& targets, float gout,
                             Matrix* dlogits);

// ----- Top-K retrieval (the online serving hot loop) -----

/// Top-k (row index, score) of score[i] = <query, candidates.row(i)>,
/// sorted by descending score with ties broken by ascending index.
///
/// Every backend accumulates each row's dot product in double over
/// ascending columns. The serial reference keeps one bounded partial top-k
/// heap over all rows; the parallel path partitions rows into fixed-size
/// blocks, keeps a partial heap per block, and merges the per-block
/// winners. Selection under the (score desc, index asc) TOTAL order is
/// unique, so the result is bit-identical to the serial reference for any
/// thread count and any block partitioning. k = 0 returns empty; k >= rows
/// returns the full sorted ranking. Candidate scores must not be NaN.
std::vector<std::pair<uint32_t, float>> TopKDot(const ExecutionContext& ctx,
                                                const float* query, size_t dim,
                                                const Matrix& candidates,
                                                size_t k);

}  // namespace kernels
}  // namespace garcia::core

#endif  // GARCIA_CORE_KERNELS_H_
