// Copyright (c) 2026 GARCIA reproduction authors.
// Pluggable kernel execution layer.
//
// Every hot compute loop of the training/serving stack — blocked GEMM, the
// elementwise activations, row gather and its scatter-add adjoint, the
// segment reductions behind graph aggregation, and the softmax
// cross-entropy inside InfoNCE — dispatches through the kernels in this
// file. Each kernel has a serial reference implementation and a
// ParallelFor-sharded one; an ExecutionContext (thread pool handle +
// shard-size policy) selects between them.
//
// Determinism contract: for ANY ExecutionContext the parallel path is
// bit-identical to the serial reference, not merely close. Kernels shard
// over independent output coordinates (rows, elements, segments); reduction
// kernels (scatter-add, segment sum/softmax, cross-entropy) shard by
// destination segment and accumulate each destination's contributions in
// ascending source order — exactly the order of the serial loop. A model
// trained with num_threads=N therefore reproduces the num_threads=0 loss
// trajectory to the last bit (asserted by tests/core_kernels_test.cc and
// tests/models_garcia_test.cc).
//
// How to add a kernel: write the serial loop; identify the independent
// output coordinate; express the parallel path as ShardedFor over that
// coordinate with per-destination source order fixed to ascending; add a
// serial-vs-parallel bit-identity case to core_kernels_test.

#ifndef GARCIA_CORE_KERNELS_H_
#define GARCIA_CORE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/matrix.h"
#include "core/threadpool.h"

namespace garcia::core {

/// Execution policy handed to the compute kernels: either serial (the
/// reference backend) or sharded across a privately owned thread pool.
class ExecutionContext {
 public:
  /// num_threads <= 1 selects the serial backend (no pool is created);
  /// num_threads >= 2 creates a pool of that many workers. The default
  /// matches the historical single-threaded behavior by construction.
  explicit ExecutionContext(size_t num_threads = 0);
  ~ExecutionContext();

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// 1 for the serial backend, the worker count otherwise.
  size_t num_threads() const;
  bool parallel() const { return pool_ != nullptr; }

  /// Runs fn(lo, hi) over contiguous, non-overlapping shards covering
  /// [begin, end): one inline call on the serial backend, pool-sharded
  /// otherwise. min_shard bounds the smallest shard so tiny ranges stay
  /// inline.
  void ShardedFor(size_t begin, size_t end, size_t min_shard,
                  const std::function<void(size_t, size_t)>& fn) const;

 private:
  std::unique_ptr<ThreadPool> pool_;  // null = serial backend
};

/// The process-default serial context.
const ExecutionContext& SerialExecution();

/// The context kernels dispatch through when no explicit one is passed.
/// Defaults to SerialExecution(); models install theirs via ScopedExecution
/// around Fit/Predict/Export so every op and backward closure inside picks
/// it up. Thread-local, so concurrent models on different threads do not
/// interfere.
const ExecutionContext& CurrentExecution();

/// RAII installer for CurrentExecution(). Passing nullptr keeps the serial
/// default. Nestable; the previous context is restored on destruction.
class ScopedExecution {
 public:
  explicit ScopedExecution(const ExecutionContext* ctx);
  ~ScopedExecution();

  ScopedExecution(const ScopedExecution&) = delete;
  ScopedExecution& operator=(const ScopedExecution&) = delete;

 private:
  const ExecutionContext* prev_;
};

namespace kernels {

// ----- GEMM -----

/// C = alpha * op(A) @ op(B) + beta * C (row-major, blocked). Parallel
/// backend shards the rows of C; each row's accumulation order equals the
/// serial kernel's.
void Gemm(const ExecutionContext& ctx, bool trans_a, bool trans_b,
          float alpha, const Matrix& a, const Matrix& b, float beta,
          Matrix* c);

// ----- Elementwise activations -----

enum class UnaryOp { kRelu, kTanh, kLeakyRelu, kSigmoid };

/// y[i] = f(x[i]) for i < n. `slope` is the LeakyReLU negative slope
/// (ignored by the other ops). x may alias y.
void UnaryForward(const ExecutionContext& ctx, UnaryOp op, float slope,
                  const float* x, float* y, size_t n);

/// dx[i] += dy[i] * f'(x[i]) for i < n, with f' evaluated from the cached
/// input x and output y (whichever the op needs).
void UnaryBackwardAdd(const ExecutionContext& ctx, UnaryOp op, float slope,
                      const float* x, const float* y, const float* dy,
                      float* dx, size_t n);

// ----- Row gather / scatter -----

/// out->row(i) = src.row(idx[i]). out must be idx.size() x src.cols().
void GatherRows(const ExecutionContext& ctx, const Matrix& src,
                const std::vector<uint32_t>& idx, Matrix* out);

/// out->row(i) += src.row(idx[i]) (gather-accumulate; the backward of
/// SegmentSum). Sharded by output row.
void GatherAddRows(const ExecutionContext& ctx, const Matrix& src,
                   const std::vector<uint32_t>& idx, Matrix* out);

/// accum->row(idx[e]) += src.row(e) for e in source order (the adjoint of
/// GatherRows). Destinations may repeat; the parallel backend shards BY
/// DESTINATION ROW and replays each destination's contributions in
/// ascending e — bit-identical to the serial loop.
void ScatterAddRows(const ExecutionContext& ctx, const Matrix& src,
                    const std::vector<uint32_t>& idx, Matrix* accum);

// ----- Segment reductions -----

/// out->row(s) = Σ_{e: seg[e]==s} x.row(e). out must be num_segments x
/// x.cols(); it is zeroed first. Sharded by destination segment.
void SegmentSum(const ExecutionContext& ctx, const Matrix& x,
                const std::vector<uint32_t>& seg, size_t num_segments,
                Matrix* out);

/// Per-segment max-stabilized softmax over Ex1 scores; segments may be
/// empty. out must be Ex1 (may alias scores only on the serial backend; the
/// callers never alias).
void SegmentSoftmax(const ExecutionContext& ctx, const Matrix& scores,
                    const std::vector<uint32_t>& seg, size_t num_segments,
                    Matrix* out);

/// dscores[e] += alpha[e] * (dalpha[e] - Σ_{e' in seg(e)} dalpha[e']
/// alpha[e']). alpha is the forward output; sharded by segment.
void SegmentSoftmaxBackwardAdd(const ExecutionContext& ctx,
                               const Matrix& alpha, const Matrix& dalpha,
                               const std::vector<uint32_t>& seg,
                               size_t num_segments, Matrix* dscores);

// ----- Row broadcast / row reduction -----

/// x->at(i, j) *= w(i, 0) (MulColBroadcast forward, and its dX with x=dY).
void ScaleRowsInPlace(const ExecutionContext& ctx, Matrix* x,
                      const Matrix& w);

/// out(i, 0) += Σ_j a(i, j) * b(i, j), accumulated in double per row
/// (MulColBroadcast's dW). Sharded by row.
void RowDotAdd(const ExecutionContext& ctx, const Matrix& a, const Matrix& b,
               Matrix* out);

// ----- L2 row normalization (InfoNCE forward) -----

/// out->row(i) = x.row(i) / max(||x.row(i)||, eps); rows with norm <= eps
/// map to zero rows. norms receives max(||row||, eps) for the backward.
void L2NormalizeRows(const ExecutionContext& ctx, const Matrix& x, float eps,
                     Matrix* out, std::vector<float>* norms);

/// dx.row(i) += (dy.row(i) - <dy_i, y_i> y.row(i)) / norms[i]; rows whose
/// forward norm was <= eps receive zero gradient.
void L2NormalizeRowsBackwardAdd(const ExecutionContext& ctx, const Matrix& y,
                                const Matrix& dy,
                                const std::vector<float>& norms, float eps,
                                Matrix* dx);

// ----- Softmax cross-entropy (InfoNCE head) -----

/// In-place row softmax of *logits plus the summed loss
/// Σ_i [logsumexp(row_i) - row_i[targets[i]]]. Per-row terms are computed
/// sharded; the final sum always runs serially in row order so the result
/// is backend-independent.
double CrossEntropyForward(const ExecutionContext& ctx, Matrix* logits,
                           const std::vector<uint32_t>& targets);

/// dlogits(i, j) += gout * softmax(i, j), minus gout at the target column.
void CrossEntropyBackwardAdd(const ExecutionContext& ctx,
                             const Matrix& softmax,
                             const std::vector<uint32_t>& targets, float gout,
                             Matrix* dlogits);

// ----- Top-K retrieval (the online serving hot loop) -----

/// Top-k (row index, score) of score[i] = <query, candidates.row(i)>,
/// sorted by descending score with ties broken by ascending index.
///
/// Every backend accumulates each row's dot product in double over
/// ascending columns. The serial reference keeps one bounded partial top-k
/// heap over all rows; the parallel path partitions rows into fixed-size
/// blocks, keeps a partial heap per block, and merges the per-block
/// winners. Selection under the (score desc, index asc) TOTAL order is
/// unique, so the result is bit-identical to the serial reference for any
/// thread count and any block partitioning. k = 0 returns empty; k >= rows
/// returns the full sorted ranking. Candidate scores must not be NaN.
std::vector<std::pair<uint32_t, float>> TopKDot(const ExecutionContext& ctx,
                                                const float* query, size_t dim,
                                                const Matrix& candidates,
                                                size_t k);

}  // namespace kernels
}  // namespace garcia::core

#endif  // GARCIA_CORE_KERNELS_H_
