// Copyright (c) 2026 GARCIA reproduction authors.
// Pluggable kernel execution layer.
//
// Every hot compute loop of the training/serving stack — the packed
// cache-blocked GEMM, the elementwise activations, row gather and its
// scatter-add adjoint, the segment reductions behind graph aggregation, and
// the softmax cross-entropy inside InfoNCE — dispatches through the kernels
// in this file. Each kernel has a serial reference implementation and a
// ParallelFor-sharded one; an ExecutionContext (thread pool handle +
// KernelTuning shard/panel policy) selects between them.
//
// Determinism contract: for ANY ExecutionContext the parallel path is
// bit-identical to the serial reference, not merely close. Kernels shard
// over independent output coordinates (rows, elements, segments); reduction
// kernels (scatter-add, segment sum/softmax, cross-entropy) shard by
// destination segment and accumulate each destination's contributions in
// ascending source order — exactly the order of the serial loop. A model
// trained with num_threads=N therefore reproduces the num_threads=0 loss
// trajectory to the last bit (asserted by tests/core_kernels_test.cc and
// tests/models_garcia_test.cc).
//
// How to add a kernel: write the serial loop; identify the independent
// output coordinate; express the parallel path as ShardedFor over that
// coordinate with per-destination source order fixed to ascending; add a
// serial-vs-parallel bit-identity case to core_kernels_test.

#ifndef GARCIA_CORE_KERNELS_H_
#define GARCIA_CORE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/matrix.h"
#include "core/threadpool.h"

namespace garcia::core {

/// Per-context kernel tuning knobs: GEMM packing panel sizes and the
/// shard-size floors of every sharded kernel. The defaults reproduce the
/// historical hard-coded values; none of the knobs affects results (the
/// kernels are bit-identical across backends and tunings by construction),
/// only how work is blocked and split. Seed overrides from
/// `bench/micro_kernels --speedup_json` measurements on the target machine
/// (BENCH_kernels.json) and install them per context via
/// ExecutionContext::set_tuning.
struct KernelTuning {
  // ----- Packed GEMM (see kernels.cc) -----
  /// Row-block height MC of a packed A block (floats). An MC x KC A block
  /// should fit L2 alongside the KC x NR B micro-panels streaming through
  /// L1.
  size_t gemm_mc = 64;
  /// K-panel depth KC shared by the packed A block and B panel.
  size_t gemm_kc = 256;
  /// Column-panel width NC of a packed B panel.
  size_t gemm_nc = 256;
  /// Floors the 2-D shard grid refinement: when a parallel context splits
  /// the output into (row block x column panel) tiles and the grid is too
  /// coarse to feed every worker, blocks are halved but never below these.
  size_t gemm_min_rows_per_shard = 8;
  size_t gemm_min_cols_per_shard = 16;

  // ----- Shard floors of the other kernels -----
  /// Elementwise kernels: fewer elements than this run inline.
  size_t min_elems_per_shard = size_t{1} << 14;
  /// Row-sharded kernels (gather, normalize, row dot, ...).
  size_t min_rows_per_shard = 64;
  /// Destination-sharded reductions (scatter-add, segment sum/softmax).
  size_t min_segments_per_shard = 64;
  /// Scatter/segment kernels pay an O(R + E) index build on the parallel
  /// path; below this many sources the serial loop is cheaper outright.
  size_t min_scatter_sources = 2048;
  /// Softmax cross-entropy rows (heavier per row than the generic floor).
  size_t min_loss_rows_per_shard = 32;
  /// SQ8 asymmetric scan (kernels::sq8::ScanDots): int8 rows are ~4x
  /// cheaper to score than float rows, so a shard has to cover more of
  /// them before forking pays for itself.
  size_t min_sq8_rows_per_shard = 256;
  /// GEMMs whose tile grid has more than one row block pre-pack all op(B)
  /// panels once into a shared buffer (instead of re-packing the same NC
  /// panel per row block) when the buffer fits under this many floats;
  /// larger problems fall back to per-tile packing. Packing order per panel
  /// is unchanged either way, so the knob cannot affect results.
  size_t gemm_shared_b_max_floats = size_t{1} << 24;
};

/// Execution policy handed to the compute kernels: either serial (the
/// reference backend) or sharded across a privately owned thread pool.
class ExecutionContext {
 public:
  /// num_threads <= 1 selects the serial backend (no pool is created);
  /// num_threads >= 2 creates a pool of that many workers. The default
  /// matches the historical single-threaded behavior by construction.
  explicit ExecutionContext(size_t num_threads = 0);
  ExecutionContext(size_t num_threads, const KernelTuning& tuning);
  ~ExecutionContext();

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// 1 for the serial backend, the worker count otherwise.
  size_t num_threads() const;
  bool parallel() const { return pool_ != nullptr; }

  /// Shard floors and GEMM panel sizes the kernels dispatch with. Tunings
  /// never change results, only wall-clock; set before sharing the context
  /// across threads.
  const KernelTuning& tuning() const { return tuning_; }
  void set_tuning(const KernelTuning& tuning) { tuning_ = tuning; }

  /// Eager-vs-fused switch for the nn op layer: when set, nn::ops / nn::loss
  /// capture elementwise ops as lazy op-graph nodes and the fusion pass
  /// (nn/op_graph.h) executes linearized chains through the kernels in
  /// kernels::fused below. Off by default (including SerialExecution()), so
  /// code that never opts in keeps the historical eager dispatch. Fused
  /// execution is bit-identical to eager for any thread count, so this knob
  /// — like the tuning — never changes results. Set before sharing the
  /// context across threads.
  bool fusion() const { return fusion_; }
  void set_fusion(bool on) { fusion_ = on; }

  /// Runs fn(lo, hi) over contiguous, non-overlapping shards covering
  /// [begin, end): one inline call on the serial backend, pool-sharded
  /// otherwise. min_shard bounds the smallest shard so tiny ranges stay
  /// inline.
  void ShardedFor(size_t begin, size_t end, size_t min_shard,
                  const std::function<void(size_t, size_t)>& fn) const;

  /// The backing pool (null on the serial backend). Dependency-tracked
  /// kernels hand this to core::TaskGraph when a phase edge should release
  /// per shard instead of joining the whole pass.
  ThreadPool* pool() const { return pool_.get(); }

 private:
  std::unique_ptr<ThreadPool> pool_;  // null = serial backend
  KernelTuning tuning_;
  bool fusion_ = false;
};

/// The process-default serial context.
const ExecutionContext& SerialExecution();

/// The context kernels dispatch through when no explicit one is passed.
/// Defaults to SerialExecution(); models install theirs via ScopedExecution
/// around Fit/Predict/Export so every op and backward closure inside picks
/// it up. Thread-local, so concurrent models on different threads do not
/// interfere.
const ExecutionContext& CurrentExecution();

/// RAII installer for CurrentExecution(). Passing nullptr keeps the serial
/// default. Nestable; the previous context is restored on destruction.
class ScopedExecution {
 public:
  explicit ScopedExecution(const ExecutionContext* ctx);
  ~ScopedExecution();

  ScopedExecution(const ScopedExecution&) = delete;
  ScopedExecution& operator=(const ScopedExecution&) = delete;

 private:
  const ExecutionContext* prev_;
};

namespace kernels {

// ----- Ordered shard merge -----

/// The ascending-order join shared by every reduction with a sequential
/// merge step: split [0, num_items) into contiguous shards, run
/// compute(lo, hi) for all shards concurrently, and run merge(lo, hi) for
/// shard s as soon as compute(s) AND merge(s-1) have finished — a
/// dependency chain, not a barrier, so late compute shards never hold up
/// the merge of earlier ones. Because merges fire in ascending shard
/// order, the merged result is bit-identical to the serial interleaving
/// "for each shard: compute; merge". The serial backend runs exactly that
/// interleaving inline. Used by TopKDot's per-block winner merge and the
/// serial row-order loss totals of the cross-entropy kernels; the serving
/// resolve phase is the dynamic-ticket form of the same pattern
/// (core::TicketGate), where the merge section is handed from request
/// index t to t+1 instead of shard s to s+1.
void OrderedShardMerge(const ExecutionContext& ctx, size_t num_items,
                       size_t min_shard,
                       const std::function<void(size_t, size_t)>& compute,
                       const std::function<void(size_t, size_t)>& merge);

// ----- GEMM -----

/// C = alpha * op(A) @ op(B) + beta * C (row-major, packed and
/// cache-blocked). The output is tiled into MC-row x NC-column cells; each
/// cell walks KC-deep k-panels in ascending order, packing op(A) and op(B)
/// panels straight from their strided sources (transposed operands are
/// never materialized whole) and running a register-tiled micro-kernel.
/// Parallel contexts shard the 2-D tile grid — row blocks x column panels,
/// refined down to KernelTuning's shard floors when the grid is too coarse
/// for the pool — so trans_a GEMMs with small m (the dW = X^T dY backward
/// shape) parallelize over columns too. Every tiling accumulates each
/// output element in ascending-k order from fl(alpha * a) * b terms, so the
/// result is bit-identical to the naive triple loop for every transpose
/// flag, thread count and tuning (tests/core_gemm_test.cc). IEEE
/// non-finite values propagate: zero operands are not special-cased, so a
/// 0 * Inf term poisons its output element with NaN exactly as the naive
/// reference does. (Exactly-NaN outputs match the reference as a class,
/// not bit for bit — IEEE-754 leaves NaN sign/payload selection to the
/// implementation, so separately compiled code may keep a different NaN;
/// across this kernel's own backends and tunings even NaN bits agree.)
void Gemm(const ExecutionContext& ctx, bool trans_a, bool trans_b,
          float alpha, const Matrix& a, const Matrix& b, float beta,
          Matrix* c);

// ----- Elementwise activations -----

enum class UnaryOp { kRelu, kTanh, kLeakyRelu, kSigmoid };

/// y[i] = f(x[i]) for i < n. `slope` is the LeakyReLU negative slope
/// (ignored by the other ops). x may alias y.
void UnaryForward(const ExecutionContext& ctx, UnaryOp op, float slope,
                  const float* x, float* y, size_t n);

/// dx[i] += dy[i] * f'(x[i]) for i < n, with f' evaluated from the cached
/// input x and output y (whichever the op needs).
void UnaryBackwardAdd(const ExecutionContext& ctx, UnaryOp op, float slope,
                      const float* x, const float* y, const float* dy,
                      float* dx, size_t n);

// ----- Row gather / scatter -----

/// out->row(i) = src.row(idx[i]). out must be idx.size() x src.cols().
void GatherRows(const ExecutionContext& ctx, const Matrix& src,
                const std::vector<uint32_t>& idx, Matrix* out);

/// out->row(i) += src.row(idx[i]) (gather-accumulate; the backward of
/// SegmentSum). Sharded by output row.
void GatherAddRows(const ExecutionContext& ctx, const Matrix& src,
                   const std::vector<uint32_t>& idx, Matrix* out);

/// accum->row(idx[e]) += src.row(e) for e in source order (the adjoint of
/// GatherRows). Destinations may repeat; the parallel backend shards BY
/// DESTINATION ROW and replays each destination's contributions in
/// ascending e — bit-identical to the serial loop.
void ScatterAddRows(const ExecutionContext& ctx, const Matrix& src,
                    const std::vector<uint32_t>& idx, Matrix* accum);

// ----- Segment reductions -----

/// out->row(s) = Σ_{e: seg[e]==s} x.row(e). out must be num_segments x
/// x.cols(); it is zeroed first. Sharded by destination segment.
void SegmentSum(const ExecutionContext& ctx, const Matrix& x,
                const std::vector<uint32_t>& seg, size_t num_segments,
                Matrix* out);

/// Per-segment max-stabilized softmax over Ex1 scores; segments may be
/// empty. out must be Ex1 (may alias scores only on the serial backend; the
/// callers never alias).
void SegmentSoftmax(const ExecutionContext& ctx, const Matrix& scores,
                    const std::vector<uint32_t>& seg, size_t num_segments,
                    Matrix* out);

/// dscores[e] += alpha[e] * (dalpha[e] - Σ_{e' in seg(e)} dalpha[e']
/// alpha[e']). alpha is the forward output; sharded by segment.
void SegmentSoftmaxBackwardAdd(const ExecutionContext& ctx,
                               const Matrix& alpha, const Matrix& dalpha,
                               const std::vector<uint32_t>& seg,
                               size_t num_segments, Matrix* dscores);

// ----- Row broadcast / row reduction -----

/// x->at(i, j) *= w(i, 0) (MulColBroadcast forward, and its dX with x=dY).
void ScaleRowsInPlace(const ExecutionContext& ctx, Matrix* x,
                      const Matrix& w);

/// out(i, 0) += Σ_j a(i, j) * b(i, j), accumulated in double per row
/// (MulColBroadcast's dW). Sharded by row.
void RowDotAdd(const ExecutionContext& ctx, const Matrix& a, const Matrix& b,
               Matrix* out);

// ----- L2 row normalization (InfoNCE forward) -----

/// out->row(i) = x.row(i) / max(||x.row(i)||, eps); rows with norm <= eps
/// map to zero rows. norms receives max(||row||, eps) for the backward.
void L2NormalizeRows(const ExecutionContext& ctx, const Matrix& x, float eps,
                     Matrix* out, std::vector<float>* norms);

/// dx.row(i) += (dy.row(i) - <dy_i, y_i> y.row(i)) / norms[i]; rows whose
/// forward norm was <= eps receive zero gradient.
void L2NormalizeRowsBackwardAdd(const ExecutionContext& ctx, const Matrix& y,
                                const Matrix& dy,
                                const std::vector<float>& norms, float eps,
                                Matrix* dx);

// ----- Row softmax -----

/// In-place row softmax: each row max-stabilized, exponentiated with a
/// double running sum, then scaled by fl(1/sum) — the exact expression
/// sequence of the historical serial loop, sharded by row (rows are
/// independent, so any backend agrees bit for bit).
void SoftmaxRows(const ExecutionContext& ctx, Matrix* x);

/// dx.row(i) += y_i ⊙ (dy_i − <dy_i, y_i>), the softmax Jacobian action
/// with the row dot accumulated in double. y is the forward output.
void SoftmaxRowsBackwardAdd(const ExecutionContext& ctx, const Matrix& y,
                            const Matrix& dy, Matrix* dx);

// ----- Softmax cross-entropy (InfoNCE head) -----

/// In-place row softmax of *logits plus the summed loss
/// Σ_i [logsumexp(row_i) - row_i[targets[i]]]. Per-row terms are computed
/// sharded; the final sum always runs serially in row order so the result
/// is backend-independent.
double CrossEntropyForward(const ExecutionContext& ctx, Matrix* logits,
                           const std::vector<uint32_t>& targets);

/// dlogits(i, j) += gout * softmax(i, j), minus gout at the target column.
void CrossEntropyBackwardAdd(const ExecutionContext& ctx,
                             const Matrix& softmax,
                             const std::vector<uint32_t>& targets, float gout,
                             Matrix* dlogits);

// ----- Top-K retrieval (the online serving hot loop) -----

/// Top-k (row index, score) of score[i] = <query, candidates.row(i)>,
/// sorted by descending score with ties broken by ascending index.
///
/// Every backend accumulates each row's dot product in double over
/// ascending columns. The serial reference keeps one bounded partial top-k
/// heap over all rows; the parallel path partitions rows into fixed-size
/// blocks, keeps a partial heap per block, and merges the per-block
/// winners. Selection under the (score desc, index asc) TOTAL order is
/// unique, so the result is bit-identical to the serial reference for any
/// thread count and any block partitioning. k = 0 returns empty; k >= rows
/// returns the full sorted ranking. Candidate scores must not be NaN.
std::vector<std::pair<uint32_t, float>> TopKDot(const ExecutionContext& ctx,
                                                const float* query, size_t dim,
                                                const Matrix& candidates,
                                                size_t k);

// ----- Fused elementwise→reduction chains -----
//
// Execution backend of the lazy op-graph fusion pass (nn/op_graph.h). A
// linearized producer–consumer chain of elementwise ops is compiled into a
// Program — a straight-line sequence of Steps evaluated per element, with
// operand buffers loaded by kInput steps and intermediate values living in
// registers — and run in ONE sharded pass, optionally terminated by a
// reduction head (L2 normalize, row softmax, segment softmax, softmax
// cross-entropy) that consumes the chain values in place of a materialized
// input matrix.
//
// Bit-identity argument (the contract fused execution inherits): every Step
// applies exactly the scalar expression of the eager kernel it replaces, in
// the same order; a float store/load is exact, so a chain value kept in a
// register equals the value the eager path would round-trip through an
// intermediate matrix. The reduction heads re-run the eager head algorithms
// verbatim on those values (double row sums, per-segment ascending-source
// order, serial row-order loss total). Builds use no FMA contraction
// (baseline x86-64, no -march), so register residency cannot re-round.
// ChainBackward mirrors the eager backward closures the same way, including
// the fl(0 + g) normalization an eager gradient picks up when it is first
// accumulated into a zeroed scratch buffer.
namespace fused {

/// Elementwise opcodes a fused program can contain. kInput loads from a
/// materialized buffer; the rest mirror nn::ops one for one.
enum class EltOp : uint8_t {
  kInput,
  kAdd,
  kSub,
  kMul,
  kScale,      // attr = factor
  kAddScalar,  // attr = addend
  kRelu,
  kTanh,
  kLeakyRelu,  // attr = negative slope
  kSigmoid,
};

/// One straight-line instruction. `a`/`b` index earlier steps (the value
/// registers); `in` is the source buffer of a kInput step; a non-null
/// `spill` materializes this step's value (used for backward caches and for
/// interior nodes another consumer reads later).
struct Step {
  EltOp op = EltOp::kInput;
  int a = -1;
  int b = -1;
  float attr = 0.0f;
  const float* in = nullptr;
  float* spill = nullptr;
};

/// Straight-line chain program; the last step's value is the chain output.
using Program = std::vector<Step>;

/// Longest program the per-element register file accepts; the fusion pass
/// stops extending chains at this depth.
inline constexpr size_t kMaxProgramSteps = 32;

/// Evaluates the program for all n elements in one sharded pass; every
/// materialization happens through Step::spill (the last step must spill —
/// this is the headless flush of a captured chain).
void EltwiseForward(const ExecutionContext& ctx, const Program& prog,
                    size_t n);

/// Chain values fed to kernels::L2NormalizeRows semantics: out->row(i) =
/// chain.row(i) / max(||chain.row(i)||, eps), norms as in the eager kernel.
void L2NormalizeRowsForward(const ExecutionContext& ctx, const Program& prog,
                            float eps, Matrix* out, std::vector<float>* norms);

/// Chain values fed to the eager SoftmaxRows algorithm, one pass per row.
void SoftmaxRowsForward(const ExecutionContext& ctx, const Program& prog,
                        Matrix* out);

/// Chain values fed to kernels::CrossEntropyForward: *softmax receives the
/// row softmax of the chain values, the return value is the summed loss
/// (serial row-order total, backend-independent).
double CrossEntropyForward(const ExecutionContext& ctx, const Program& prog,
                           const std::vector<uint32_t>& targets,
                           Matrix* softmax);

/// Chain values (Ex1 scores) fed to kernels::SegmentSoftmax.
void SegmentSoftmaxForward(const ExecutionContext& ctx, const Program& prog,
                           const std::vector<uint32_t>& seg,
                           size_t num_segments, Matrix* out);

/// One backward step of a fused chain, ordered head-side first: steps[0]
/// produced the head (or flush) input, steps[num_steps-1] consumes the
/// chain base. The gradient flows along the "spine" (the in-chain operand)
/// in registers; each step assigns its side operand's contribution — the
/// exact expression of the eager backward closure — into d_side for the
/// caller to apply at that op's own tape position.
struct BackwardStep {
  EltOp op = EltOp::kInput;   // must be an elementwise op, never kInput
  float attr = 0.0f;
  bool spine_is_b = false;    // binary ops: chain continues through operand b
  const float* x = nullptr;      // spine input values (kRelu / kLeakyRelu)
  const float* y = nullptr;      // this step's output values (kTanh / kSigmoid)
  const float* spine = nullptr;  // spine operand values (kMul side factor)
  const float* other = nullptr;  // non-spine operand values (kMul spine factor)
  float* d_side = nullptr;       // side contribution, assigned; may be null
};

/// Runs the whole backward chain in one sharded pass. d_top is the head's
/// gradient into the chain (already carrying the fl(0 + g) normalization of
/// a first accumulation, as the head backward kernels produce by writing
/// into zeroed scratch). d_base, if non-null, is ASSIGNED the raw final
/// contribution to the chain base; a kRelu bottom step assigns 0 where its
/// input was <= 0 and the caller must replay the eager conditional add
/// (skip, not add zero) when applying it.
void ChainBackward(const ExecutionContext& ctx, const BackwardStep* steps,
                   size_t num_steps, const float* d_top, float* d_base,
                   size_t n);

}  // namespace fused

// ----- SQ8 scalar quantization (the IVF list-storage codec) -----
//
// Symmetric-range int8 codes with one float scale per row: row v maps to
// codes c_j = clamp(round(v_j / s), -127, 127) with s = max_j|v_j| / 127,
// so v_j ≈ s * c_j with |v_j - s * c_j| <= s/2 per coordinate (the -128
// slot is deliberately unused: a symmetric range keeps the bound uniform).
// Stored bytes drop 4x; the probe scan — the bandwidth-bound serving hot
// loop — reads int8 codes instead of float rows.
//
// The scan is ASYMMETRIC: the query stays at full precision at the API
// boundary and is quantized once per query to int16 (15-bit range, so the
// query-side rounding error is ~256x below the storage-side error). A
// score is then an exact INTEGER dot — int32-accumulated over fixed
// kDimBlock-coordinate blocks (64 * 32767 * 127 per quarter-block stays
// far under INT32_MAX), each block total widened to double at the block
// boundary — times the two scales. Integer accumulation is associative,
// so the unrolled multi-accumulator inner loop is exact, every backend
// agrees bit for bit, and sharding only ever splits over rows (disjoint
// output slots, pure per-row function): thread-count-invariance is by
// construction, the same discipline that makes TopKDot's ascending-order
// merge unique under its total order.
//
// Error band (what makes exact re-rank a GUARANTEE, not a heuristic — see
// serving/ivf_index.h): with q' = qscale * qcodes the dequantized query,
//   |exact_dot(q, v) - approx(q, v)|
//     <= |dot(q - q', v)| + |dot(q', v - v')|
//     <= s_v * qscale * (0.5 * Σ|qcodes_j| + 63.75 * dim)  =  s_v * Q(q)
// (63.75 = 127.5 / 2: a true coordinate reaches s_v * 127.5, half a step
// past the top code, and the query-side rounding is qscale / 2 per
// coordinate). Q(q) = QueryCodes::ErrorBandPerUnitScale(dim) is one
// per-query constant and s_v is the row's scale. Any candidate whose
// approx score is more than 2 * max(s_v) * Q(q) below the R-th best
// approx score provably cannot enter the exact top-k (R >= k).
// Floating-point rounding of the score expressions themselves cannot
// breach the band: |approx| <= 127 * qscale * s_v * Σ|qcodes| is at most
// 254x the band's first term, so every half-ulp rounding is <= ~8e-6 of
// the band — absorbed by the band's 0.1% inflation with 100x to spare.
namespace sq8 {

/// Coordinates per int32 accumulation block. 256 products of
/// |int16| <= 32767 by |int8| <= 127 peak at ~2^30 — half of INT32_MAX.
inline constexpr size_t kDimBlock = 256;
/// Symmetric code ranges (the -128 / -32768 slots are unused).
inline constexpr int kCodeMax = 127;
inline constexpr int kQueryCodeMax = 32767;

/// One row encoded: codes[0..dim) and *scale as described above. A zero
/// row gets scale 0 and all-zero codes (dequantizes exactly).
void EncodeRow(const float* row, size_t dim, int8_t* codes, float* scale);

/// Every row of src encoded into codes (src.rows() x src.cols(), row-major
/// int8) and scales (src.rows()). Sharded by row (disjoint outputs of a
/// pure per-row function): bit-identical for any backend.
void EncodeRows(const ExecutionContext& ctx, const Matrix& src,
                int8_t* codes, float* scales);

/// A query quantized for the asymmetric scan.
struct QueryCodes {
  std::vector<int16_t> codes;
  float scale = 0.0f;       // dequantized query: q'_j = scale * codes[j]
  uint64_t abs_code_sum = 0;  // Σ|codes[j]|

  /// Q(q): |exact - approx| <= row_scale * Q(q) (see the namespace
  /// comment). Includes a 0.1% inflation so floating-point rounding of
  /// the two score expressions themselves can never breach the bound.
  double ErrorBandPerUnitScale(size_t dim) const;
};

QueryCodes QuantizeQuery(const float* query, size_t dim);

/// Asymmetric scan: out[slot] = fl(qscale * scales[row] * intdot) for the
/// slots covering `row_ranges` in order (slot 0 = ranges[0].first, ...,
/// concatenated). `codes` / `scales` hold ALL rows (row r at
/// codes + r * dim); ranges select which rows are scanned, in what output
/// order. Sharded over flat slots with the min_sq8_rows_per_shard floor;
/// disjoint pure writes, so any backend is bit-identical.
void ScanDots(const ExecutionContext& ctx, const QueryCodes& query,
              const int8_t* codes, const float* scales, size_t dim,
              const std::vector<std::pair<uint32_t, uint32_t>>& row_ranges,
              float* out);

}  // namespace sq8

}  // namespace kernels
}  // namespace garcia::core

#endif  // GARCIA_CORE_KERNELS_H_
