#include "core/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "core/rng.h"

namespace garcia::core {

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    GARCIA_CHECK_EQ(r.size(), cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0f;
  return m;
}

Matrix Matrix::Randn(size_t rows, size_t cols, Rng* rng, float mean,
                     float stddev) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) {
    x = static_cast<float>(rng->Normal(mean, stddev));
  }
  return m;
}

Matrix Matrix::Xavier(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& x : m.data_) {
    x = static_cast<float>(rng->Uniform(-bound, bound));
  }
  return m;
}

namespace {

// Inner kernel: c[mxn] += alpha * a_block[mxk] * b_block[kxn] where a is
// accessed as a(i, l) with stride lda etc. Plain loops; -O2 vectorizes the
// innermost loop well at the sizes we use (d <= 256).
inline void GemmBlockNN(size_t m, size_t n, size_t k, float alpha,
                        const float* a, size_t lda, const float* b, size_t ldb,
                        float* c, size_t ldc) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t l = 0; l < k; ++l) {
      const float av = alpha * a[i * lda + l];
      if (av == 0.0f) continue;
      const float* brow = b + l * ldb;
      float* crow = c + i * ldc;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void Matrix::Gemm(bool trans_a, bool trans_b, float alpha, const Matrix& a,
                  const Matrix& b, float beta, Matrix* c) {
  const size_t m = trans_a ? a.cols() : a.rows();
  const size_t k = trans_a ? a.rows() : a.cols();
  const size_t kb = trans_b ? b.cols() : b.rows();
  const size_t n = trans_b ? b.rows() : b.cols();
  GARCIA_CHECK_EQ(k, kb) << "GEMM inner dimension mismatch";
  GARCIA_CHECK_EQ(c->rows(), m);
  GARCIA_CHECK_EQ(c->cols(), n);

  if (beta == 0.0f) {
    c->Fill(0.0f);
  } else if (beta != 1.0f) {
    c->Scale(beta);
  }
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  if (!trans_a && !trans_b) {
    GemmBlockNN(m, n, k, alpha, a.data(), a.cols(), b.data(), b.cols(),
                c->data(), c->cols());
    return;
  }

  // Transposed paths: materialize the transposed operand once. The matrices
  // in this codebase are small enough (parameters and activations) that the
  // copy is cheaper than a strided kernel.
  auto transpose = [](const Matrix& x) {
    Matrix t(x.cols(), x.rows());
    for (size_t i = 0; i < x.rows(); ++i) {
      for (size_t j = 0; j < x.cols(); ++j) t.at(j, i) = x.at(i, j);
    }
    return t;
  };
  const Matrix at = trans_a ? transpose(a) : Matrix();
  const Matrix bt = trans_b ? transpose(b) : Matrix();
  const Matrix& aa = trans_a ? at : a;
  const Matrix& bb = trans_b ? bt : b;
  GemmBlockNN(m, n, k, alpha, aa.data(), aa.cols(), bb.data(), bb.cols(),
              c->data(), c->cols());
}

Matrix Matrix::Matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  Gemm(false, false, 1.0f, a, b, 0.0f, &c);
  return c;
}

void Matrix::Add(const Matrix& other) {
  GARCIA_CHECK_EQ(rows_, other.rows_);
  GARCIA_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Sub(const Matrix& other) {
  GARCIA_CHECK_EQ(rows_, other.rows_);
  GARCIA_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::Scale(float s) {
  for (auto& x : data_) x *= s;
}

void Matrix::Hadamard(const Matrix& other) {
  GARCIA_CHECK_EQ(rows_, other.rows_);
  GARCIA_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

double Matrix::Sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

float Matrix::AbsMax() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

void Matrix::CopyRowFrom(const Matrix& from, size_t src, size_t dst) {
  GARCIA_CHECK_EQ(cols_, from.cols_);
  GARCIA_CHECK_LT(src, from.rows_);
  GARCIA_CHECK_LT(dst, rows_);
  std::memcpy(row(dst), from.row(src), cols_ * sizeof(float));
}

bool Matrix::AllClose(const Matrix& other, float atol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > atol) return false;
  }
  return true;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")";
  if (rows_ <= 8 && cols_ <= 8) {
    os << " [";
    for (size_t i = 0; i < rows_; ++i) {
      os << (i == 0 ? "[" : ", [");
      for (size_t j = 0; j < cols_; ++j) {
        os << (j == 0 ? "" : ", ") << at(i, j);
      }
      os << "]";
    }
    os << "]";
  }
  return os.str();
}

}  // namespace garcia::core
