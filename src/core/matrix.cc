#include "core/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "core/kernels.h"
#include "core/rng.h"

namespace garcia::core {

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    GARCIA_CHECK_EQ(r.size(), cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0f;
  return m;
}

Matrix Matrix::Randn(size_t rows, size_t cols, Rng* rng, float mean,
                     float stddev) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) {
    x = static_cast<float>(rng->Normal(mean, stddev));
  }
  return m;
}

Matrix Matrix::Xavier(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& x : m.data_) {
    x = static_cast<float>(rng->Uniform(-bound, bound));
  }
  return m;
}

void Matrix::Gemm(bool trans_a, bool trans_b, float alpha, const Matrix& a,
                  const Matrix& b, float beta, Matrix* c) {
  // The packed kernel reads strided op(A)/op(B) during panel packing, so
  // transpose flags cost no extra materialization here.
  kernels::Gemm(CurrentExecution(), trans_a, trans_b, alpha, a, b, beta, c);
}

Matrix Matrix::Matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  Gemm(false, false, 1.0f, a, b, 0.0f, &c);
  return c;
}

void Matrix::Add(const Matrix& other) {
  GARCIA_CHECK_EQ(rows_, other.rows_);
  GARCIA_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Sub(const Matrix& other) {
  GARCIA_CHECK_EQ(rows_, other.rows_);
  GARCIA_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::Scale(float s) {
  for (auto& x : data_) x *= s;
}

void Matrix::Hadamard(const Matrix& other) {
  GARCIA_CHECK_EQ(rows_, other.rows_);
  GARCIA_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

double Matrix::Sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

float Matrix::AbsMax() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

void Matrix::CopyRowFrom(const Matrix& from, size_t src, size_t dst) {
  GARCIA_CHECK_EQ(cols_, from.cols_);
  GARCIA_CHECK_LT(src, from.rows_);
  GARCIA_CHECK_LT(dst, rows_);
  std::memcpy(row(dst), from.row(src), cols_ * sizeof(float));
}

bool Matrix::AllClose(const Matrix& other, float atol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > atol) return false;
  }
  return true;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")";
  if (rows_ <= 8 && cols_ <= 8) {
    os << " [";
    for (size_t i = 0; i < rows_; ++i) {
      os << (i == 0 ? "[" : ", [");
      for (size_t j = 0; j < cols_; ++j) {
        os << (j == 0 ? "" : ", ") << at(i, j);
      }
      os << "]";
    }
    os << "]";
  }
  return os.str();
}

}  // namespace garcia::core
