#include "core/taskgraph.h"

#include <utility>

namespace garcia::core {

TaskGraph::~TaskGraph() {
  // A graph abandoned with nodes in flight would let workers touch freed
  // memory; drain instead of crashing later.
  WaitAll();
}

TaskGraph::NodeId TaskGraph::Add(std::function<void()> fn,
                                 const std::vector<NodeId>& deps) {
  if (pool_ == nullptr) {
    // Serial reference semantics: dependencies were added earlier, hence
    // already ran inline; the new node runs now, in program order.
    NodeId id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      id = nodes_.size();
      nodes_.emplace_back();
      nodes_.back().fn = std::move(fn);
      nodes_.back().done = true;
    }
    for (NodeId dep : deps) GARCIA_CHECK_LT(dep, id);
    nodes_[id].fn();
    return id;
  }

  NodeId id;
  size_t satisfied = 0;
  Node* node = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = nodes_.size();
    nodes_.emplace_back();
    node = &nodes_.back();
    node->fn = std::move(fn);
    // +1 registration guard: the node cannot fire until we finish wiring
    // consumer edges below, even if every dependency completes meanwhile.
    node->pending.store(deps.size() + 1, std::memory_order_relaxed);
    for (NodeId dep : deps) {
      GARCIA_CHECK_LT(dep, id);
      if (nodes_[dep].done) {
        ++satisfied;
      } else {
        nodes_[dep].consumers.push_back(node);
      }
    }
    ++outstanding_;
  }
  // Drop the guard plus any dependencies that had already completed.
  const size_t drop = satisfied + 1;
  if (node->pending.fetch_sub(drop, std::memory_order_acq_rel) == drop) {
    Dispatch(node);
  }
  return id;
}

void TaskGraph::Dispatch(Node* node) {
  pool_->Submit([this, node] { RunNode(node); });
}

void TaskGraph::RunNode(Node* node) {
  node->fn();
  std::vector<Node*> consumers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    node->done = true;
    consumers.swap(node->consumers);
    --outstanding_;
    if (outstanding_ == 0) drained_.notify_all();
  }
  for (Node* c : consumers) {
    if (c->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Dispatch(c);
    }
  }
}

void TaskGraph::WaitAll() {
  if (pool_ == nullptr) return;  // everything ran inline at Add() time
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] { return outstanding_ == 0; });
}

TicketGate::TicketGate(size_t slots) : slots_(slots == 0 ? 1 : slots) {}

void TicketGate::WaitTurn(uint64_t ticket) {
  // A ticket below the published turn was already finished: an index was
  // issued twice, which would silently corrupt the ordered section.
  GARCIA_CHECK_GE(ticket, turn_.load(std::memory_order_acquire));
  if (turn_.load(std::memory_order_acquire) == ticket) return;
  Slot& slot = slots_[ticket % slots_.size()];
  std::unique_lock<std::mutex> lock(slot.m);
  slot.cv.wait(lock, [&] {
    return turn_.load(std::memory_order_acquire) >= ticket;
  });
  GARCIA_CHECK_EQ(turn_.load(std::memory_order_acquire), ticket);
}

void TicketGate::FinishTurn(uint64_t ticket) {
  GARCIA_CHECK_EQ(turn_.load(std::memory_order_acquire), ticket);
  turn_.store(ticket + 1, std::memory_order_release);
  Slot& slot = slots_[(ticket + 1) % slots_.size()];
  {
    // Empty critical section: a waiter is either before its predicate
    // check (and will observe the new turn) or parked in wait (and will
    // receive the notify). Without the lock the store/notify pair could
    // slip between the two and the wakeup would be lost.
    std::lock_guard<std::mutex> lock(slot.m);
  }
  slot.cv.notify_all();
}

void TicketGate::Reset(uint64_t next) {
  turn_.store(next, std::memory_order_release);
}

}  // namespace garcia::core
