// Copyright (c) 2026 GARCIA reproduction authors.
// A small fixed-size thread pool with a blocking ParallelFor helper.

#ifndef GARCIA_CORE_THREADPOOL_H_
#define GARCIA_CORE_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace garcia::core {

/// Fixed-size worker pool. Tasks are void() closures; Wait() blocks until
/// every submitted task has finished. Tasks may Submit further tasks
/// (TaskGraph continuations release consumers from worker threads), and
/// ParallelFor/ParallelForShards may be called from inside a pool task:
/// each call joins on its own completion latch — not on pool idleness —
/// and the calling thread helps drain the queue while it waits, so nested
/// sharded calls cannot deadlock and never block on unrelated in-flight
/// work (e.g. a pipelined training step's lookahead node).
class ThreadPool {
 public:
  /// num_threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Runs fn(i) for i in [begin, end), partitioned into contiguous shards
  /// across the pool; blocks until done. Executes inline when the range is
  /// small or the pool has a single thread.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn,
                   size_t min_shard = 256);

  /// Shard-granular variant: runs fn(lo, hi) once per contiguous shard of
  /// [begin, end); blocks until done. Shards never overlap and cover the
  /// range exactly, so callers writing disjoint output ranges need no
  /// synchronization. Executes fn(begin, end) inline when the range is
  /// small or the pool has a single thread. The caller runs the first
  /// shard itself and then joins on a per-call latch, helping with queued
  /// tasks while any of its shards are still pending.
  void ParallelForShards(size_t begin, size_t end,
                         const std::function<void(size_t, size_t)>& fn,
                         size_t min_shard = 256);

  /// Process-wide shared pool (lazily created).
  static ThreadPool* Global();

 private:
  void WorkerLoop();
  /// Pops and runs one queued task if any; returns false when the queue
  /// was empty. Used by waiting ParallelForShards callers to help.
  bool RunOneTask();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace garcia::core

#endif  // GARCIA_CORE_THREADPOOL_H_
