// Copyright (c) 2026 GARCIA reproduction authors.
// Assertion macros used across the library.
//
// GARCIA_CHECK is always on and aborts with a readable message; it guards
// programming errors (shape mismatches, invalid ids). Fallible operations
// that depend on external input return core::Status instead.

#ifndef GARCIA_CORE_MACROS_H_
#define GARCIA_CORE_MACROS_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace garcia::core {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

namespace internal {

/// Stream-style message collector used by the CHECK macros.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

/// Swallows the streamed message when the check passes.
struct Voidify {
  void operator&(const CheckMessageBuilder&) {}
};

}  // namespace internal
}  // namespace garcia::core

#define GARCIA_CHECK(condition)                                        \
  (condition) ? (void)0                                                \
              : ::garcia::core::internal::Voidify() &                  \
                    ::garcia::core::internal::CheckMessageBuilder(     \
                        __FILE__, __LINE__, #condition)

#define GARCIA_CHECK_EQ(a, b) GARCIA_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define GARCIA_CHECK_NE(a, b) GARCIA_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define GARCIA_CHECK_LT(a, b) GARCIA_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define GARCIA_CHECK_LE(a, b) GARCIA_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define GARCIA_CHECK_GT(a, b) GARCIA_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define GARCIA_CHECK_GE(a, b) GARCIA_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#ifndef NDEBUG
#define GARCIA_DCHECK(condition) GARCIA_CHECK(condition)
#else
#define GARCIA_DCHECK(condition) \
  while (false) GARCIA_CHECK(condition)
#endif

#endif  // GARCIA_CORE_MACROS_H_
