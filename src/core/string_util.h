// Copyright (c) 2026 GARCIA reproduction authors.
// Small string helpers shared across modules.

#ifndef GARCIA_CORE_STRING_UTIL_H_
#define GARCIA_CORE_STRING_UTIL_H_

#include <string>
#include <vector>

namespace garcia::core {

/// Splits on a single character; empty fields are kept.
std::vector<std::string> Split(const std::string& s, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// Lowercases ASCII letters.
std::string ToLower(const std::string& s);

/// True if s starts with prefix.
bool StartsWith(const std::string& s, const std::string& prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with the given number of decimals ("0.8285").
std::string FormatFixed(double v, int decimals);

/// Formats a count with scientific-ish shorthand ("1.39e9" style) used in
/// the paper's tables.
std::string FormatScientific(double v, int decimals = 2);

/// Jaccard similarity of whitespace-tokenized strings; the simplified
/// "semantic relevance" used by KTCL anchor mining (see DESIGN.md).
double TokenJaccard(const std::string& a, const std::string& b);

}  // namespace garcia::core

#endif  // GARCIA_CORE_STRING_UTIL_H_
