#include "core/threadpool.h"

#include <algorithm>

#include "core/macros.h"

namespace garcia::core {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    GARCIA_CHECK(!shutting_down_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn,
                             size_t min_shard) {
  ParallelForShards(
      begin, end,
      [&fn](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) fn(i);
      },
      min_shard);
}

namespace {

/// Per-call completion latch for ParallelForShards. Joining on the latch
/// instead of pool idleness lets unrelated tasks (TaskGraph nodes, batch
/// serving work) stay in flight across a sharded kernel call.
struct ShardLatch {
  std::mutex m;
  std::condition_variable cv;
  size_t remaining = 0;
};

}  // namespace

void ThreadPool::ParallelForShards(size_t begin, size_t end,
                                   const std::function<void(size_t, size_t)>& fn,
                                   size_t min_shard) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t threads = num_threads();
  if (threads <= 1 || n < min_shard * 2) {
    fn(begin, end);
    return;
  }
  const size_t want = std::min(threads, (n + min_shard - 1) / min_shard);
  const size_t per_shard = (n + want - 1) / want;
  const size_t shards = (n + per_shard - 1) / per_shard;  // drop empty tails
  if (shards <= 1) {
    fn(begin, end);
    return;
  }
  ShardLatch latch;
  latch.remaining = shards - 1;
  // Shards 1..n-1 go to the pool; the caller runs shard 0 itself so one
  // shard's worth of work never pays a queue round-trip.
  for (size_t s = 1; s < shards; ++s) {
    const size_t lo = begin + s * per_shard;
    const size_t hi = std::min(end, lo + per_shard);
    Submit([lo, hi, &fn, &latch] {
      fn(lo, hi);
      {
        // Notify under the lock: the waiter cannot destroy the latch
        // until this critical section ends.
        std::lock_guard<std::mutex> lock(latch.m);
        if (--latch.remaining == 0) latch.cv.notify_all();
      }
    });
  }
  fn(begin, begin + std::min(n, per_shard));
  // Help drain the queue while our shards are pending. Once the queue is
  // empty every one of our shards is executing (FIFO: they were enqueued
  // before we started helping), so parking on the latch cv is safe. The
  // helping loop is what makes nested ParallelForShards calls from pool
  // tasks deadlock-free.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(latch.m);
      if (latch.remaining == 0) return;
    }
    if (!RunOneTask()) {
      std::unique_lock<std::mutex> lock(latch.m);
      latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
      return;
    }
  }
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
    if (in_flight_ == 0) all_done_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();
  return pool;
}

}  // namespace garcia::core
