#include "core/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <set>
#include <sstream>

namespace garcia::core {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatFixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FormatScientific(double v, int decimals) {
  if (v == 0.0) return "0";
  const double exp10 = std::floor(std::log10(std::fabs(v)));
  const double mant = v / std::pow(10.0, exp10);
  std::ostringstream os;
  os << FormatFixed(mant, decimals) << "e" << static_cast<long long>(exp10);
  return os.str();
}

double TokenJaccard(const std::string& a, const std::string& b) {
  auto tokenize = [](const std::string& s) {
    std::set<std::string> tokens;
    std::istringstream is(s);
    std::string tok;
    while (is >> tok) tokens.insert(ToLower(tok));
    return tokens;
  };
  const auto ta = tokenize(a);
  const auto tb = tokenize(b);
  if (ta.empty() && tb.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& t : ta) inter += tb.count(t);
  const size_t uni = ta.size() + tb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace garcia::core
