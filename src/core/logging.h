// Copyright (c) 2026 GARCIA reproduction authors.
// Minimal leveled logger. Thread-safe, stderr-backed, printf-free.

#ifndef GARCIA_CORE_LOGGING_H_
#define GARCIA_CORE_LOGGING_H_

#include <mutex>
#include <sstream>
#include <string>

namespace garcia::core {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// One log statement; flushes its buffer on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace garcia::core

#define GARCIA_LOG(level)                               \
  ::garcia::core::internal::LogMessage(                 \
      ::garcia::core::LogLevel::k##level, __FILE__, __LINE__)

#endif  // GARCIA_CORE_LOGGING_H_
