// Copyright (c) 2026 GARCIA reproduction authors.
// Text/CSV table emitter used by the benchmark harness to print rows in the
// same layout as the paper's tables and figure series.

#ifndef GARCIA_CORE_TABLE_H_
#define GARCIA_CORE_TABLE_H_

#include <string>
#include <vector>

#include "core/status.h"

namespace garcia::core {

/// A rectangular table with a header row. Cells are strings; numeric helpers
/// format through FormatFixed.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  size_t num_columns() const { return header_.size(); }
  size_t num_rows() const { return rows_.size(); }

  /// Appends a row; must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Appends a row from doubles with fixed formatting.
  void AddNumericRow(const std::string& label, const std::vector<double>& vals,
                     int decimals = 4);

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

  /// ASCII render with aligned columns and a separator under the header.
  std::string ToAscii() const;

  /// RFC-4180-ish CSV (quotes fields containing commas/quotes/newlines).
  std::string ToCsv() const;

  /// Writes the CSV form to a file.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace garcia::core

#endif  // GARCIA_CORE_TABLE_H_
