#include "core/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace garcia::core {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (!enabled_) return;
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << "\n";
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace garcia::core
