#include "core/crc32.h"

#include <array>

namespace garcia::core {

namespace {

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t num_bytes) {
  static const std::array<uint32_t, 256> kTable = MakeTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xffffffffu;
  for (size_t i = 0; i < num_bytes; ++i) {
    c = kTable[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(const void* data, size_t num_bytes) {
  return Crc32Update(0, data, num_bytes);
}

}  // namespace garcia::core
