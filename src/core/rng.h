// Copyright (c) 2026 GARCIA reproduction authors.
// Deterministic random number generation.
//
// All stochastic components of the library (data synthesis, initialization,
// negative sampling, dropout) draw from an explicitly seeded Rng so that
// every experiment is reproducible bit-for-bit on a given platform.

#ifndef GARCIA_CORE_RNG_H_
#define GARCIA_CORE_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace garcia::core {

/// The complete state of an Rng stream: the four xoshiro256++ words plus
/// the Box-Muller half-pair cache (without it a restored stream would skip
/// or repeat one Normal() draw). Serialized into training checkpoints so a
/// resumed run continues the stream bit for bit.
struct RngState {
  std::array<uint64_t, 4> words{};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// xoshiro256++ generator seeded via SplitMix64.
///
/// Small, fast, and statistically strong enough for simulation workloads;
/// intentionally not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (one value cached).
  double Normal();

  /// Normal with the given mean / stddev.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(static_cast<uint64_t>(i + 1)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// k distinct indices uniformly sampled from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator (for per-worker streams).
  Rng Fork();

  /// Snapshot of the full stream position (checkpointing).
  RngState ExportState() const;

  /// Restores a snapshot taken by ExportState. The next draw after a
  /// restore equals the next draw after the snapshot. Rejects the
  /// degenerate all-zero xoshiro state (which only a corrupt snapshot can
  /// carry — a seeded stream never reaches it).
  void RestoreState(const RngState& state);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Zipf(s) sampler over ranks {0, 1, ..., n-1}: P(rank k) ∝ 1/(k+1)^s.
///
/// Uses a precomputed CDF with binary-search inversion — exact and fast for
/// the catalog sizes used in this repo (≤ a few million).
class ZipfSampler {
 public:
  /// Requires n > 0 and exponent s > 0.
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of a rank.
  double Pmf(size_t rank) const;

  size_t n() const { return cdf_.size(); }
  double exponent() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;
};

/// Walker alias method for O(1) sampling from an arbitrary discrete
/// distribution. Weights need not be normalized; they must be non-negative
/// with a positive sum.
class AliasSampler {
 public:
  explicit AliasSampler(const std::vector<double>& weights);

  size_t Sample(Rng* rng) const;
  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace garcia::core

#endif  // GARCIA_CORE_RNG_H_
