#include "core/clock.h"

#include <chrono>
#include <thread>

namespace garcia::core {

uint64_t SystemClock::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SystemClock::SleepMicros(uint64_t micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace garcia::core
