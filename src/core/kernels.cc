#include "core/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/macros.h"
#include "core/taskgraph.h"

#if defined(__x86_64__) || defined(__i386__)
#define GARCIA_SQ8_X86 1
#include <immintrin.h>
#endif

namespace garcia::core {

namespace {

thread_local const ExecutionContext* tls_execution = nullptr;

}  // namespace

ExecutionContext::ExecutionContext(size_t num_threads) {
  if (num_threads >= 2) pool_ = std::make_unique<ThreadPool>(num_threads);
}

ExecutionContext::ExecutionContext(size_t num_threads,
                                   const KernelTuning& tuning)
    : ExecutionContext(num_threads) {
  tuning_ = tuning;
}

ExecutionContext::~ExecutionContext() = default;

size_t ExecutionContext::num_threads() const {
  return pool_ != nullptr ? pool_->num_threads() : 1;
}

void ExecutionContext::ShardedFor(
    size_t begin, size_t end, size_t min_shard,
    const std::function<void(size_t, size_t)>& fn) const {
  if (begin >= end) return;
  if (pool_ == nullptr) {
    fn(begin, end);
    return;
  }
  pool_->ParallelForShards(begin, end, fn, min_shard);
}

const ExecutionContext& SerialExecution() {
  static const ExecutionContext* serial = new ExecutionContext(0);
  return *serial;
}

const ExecutionContext& CurrentExecution() {
  return tls_execution != nullptr ? *tls_execution : SerialExecution();
}

ScopedExecution::ScopedExecution(const ExecutionContext* ctx)
    : prev_(tls_execution) {
  if (ctx != nullptr) tls_execution = ctx;
}

ScopedExecution::~ScopedExecution() { tls_execution = prev_; }

namespace kernels {
namespace {

// ----- Packed GEMM -----
//
// C = beta*C + alpha*op(A)@op(B) as a BLIS-style packed kernel. The output
// is tiled into (row block x column panel) cells; each cell walks the k
// dimension in KC-deep panels, packing op(A) into MR-row panels and op(B)
// into NR-column panels read STRIDED from their sources (so transposed
// operands are packed in place, never materialized as whole matrices), and
// a register-tiled MR x NR micro-kernel does the arithmetic.
//
// Bit-identity argument: the value of C[i,j] is
//   fl(beta*C[i,j]) then += fl(fl(alpha*a_op[i,l]) * b_op[l,j]),
//   l = 0..k-1 ascending,
// for EVERY tiling. k is never split across tiles; k-panels run in
// ascending order within a tile; between panels the partial sum round-trips
// through C (or stays in the micro-kernel accumulator), and a float
// store/load is exact. Tile shapes therefore cannot change the result, so
// serial, any thread count, any KernelTuning and all four transpose flags
// agree bit for bit — the same contract as every other kernel here.
//
// Zero operands are NOT skipped: a 0 in op(A) still contributes
// fl(0 * b_op[l,j]), so IEEE non-finite values in B propagate (0*Inf = NaN)
// exactly as in the naive reference.

// Micro-kernel register tile. MR*NR accumulators fit the 16 SSE registers
// of baseline x86-64 without spilling; the packed panel layouts below are
// keyed to these.
constexpr size_t kGemmMr = 4;
constexpr size_t kGemmNr = 8;

inline size_t CeilDiv(size_t a, size_t b) { return (a + b - 1) / b; }

// Per-thread packing scratch, reused across calls and k-panels. Workers
// each see their own copy (thread_local), so packing is race-free without
// synchronization.
struct GemmPackBuffers {
  std::vector<float> a;  // ceil(mb/MR) panels of kc x MR
  std::vector<float> b;  // ceil(nb/NR) panels of kc x NR
  /// Shared pre-packed op(B): every (column panel x k panel) group packed
  /// once, reused by all row blocks. Owned by the thread that called Gemm
  /// (workers only write disjoint groups into it during the pack phase).
  std::vector<float> b_shared;
};

GemmPackBuffers& TlsGemmBuffers() {
  static thread_local GemmPackBuffers bufs;
  return bufs;
}

// Packs op(A)[i0:i0+mb, l0:l0+kc), scaled by alpha, into MR-row panels:
// packed[(p*kc + l)*MR + r] = fl(alpha * a_op(i0 + p*MR + r, l0 + l)),
// zero-padded to a multiple of MR rows. Reads A directly at its source
// stride for either transpose flag.
void PackA(bool trans_a, float alpha, const float* a, size_t lda, size_t i0,
           size_t mb, size_t l0, size_t kc, float* packed) {
  const size_t panels = CeilDiv(mb, kGemmMr);
  if (trans_a) {
    // a_op(i, l) = a[l*lda + i]: row l of A is contiguous in i, so walk l
    // outermost and copy row slices into each panel.
    for (size_t p = 0; p < panels; ++p) {
      const size_t r_valid = std::min(kGemmMr, mb - p * kGemmMr);
      float* dst = packed + p * kc * kGemmMr;
      for (size_t l = 0; l < kc; ++l) {
        const float* src = a + (l0 + l) * lda + i0 + p * kGemmMr;
        for (size_t r = 0; r < r_valid; ++r) dst[l * kGemmMr + r] = alpha * src[r];
        for (size_t r = r_valid; r < kGemmMr; ++r) dst[l * kGemmMr + r] = 0.0f;
      }
    }
    return;
  }
  // a_op(i, l) = a[i*lda + l]: row i is contiguous in l, so walk rows and
  // scatter each into its panel column.
  for (size_t p = 0; p < panels; ++p) {
    const size_t r_valid = std::min(kGemmMr, mb - p * kGemmMr);
    float* dst = packed + p * kc * kGemmMr;
    for (size_t r = 0; r < r_valid; ++r) {
      const float* src = a + (i0 + p * kGemmMr + r) * lda + l0;
      for (size_t l = 0; l < kc; ++l) dst[l * kGemmMr + r] = alpha * src[l];
    }
    for (size_t r = r_valid; r < kGemmMr; ++r) {
      for (size_t l = 0; l < kc; ++l) dst[l * kGemmMr + r] = 0.0f;
    }
  }
}

// Packs op(B)[l0:l0+kc, j0:j0+nb) into NR-column panels:
// packed[(p*kc + l)*NR + c] = b_op(l0 + l, j0 + p*NR + c), zero-padded to a
// multiple of NR columns.
void PackB(bool trans_b, const float* b, size_t ldb, size_t l0, size_t kc,
           size_t j0, size_t nb, float* packed) {
  const size_t panels = CeilDiv(nb, kGemmNr);
  if (trans_b) {
    // b_op(l, j) = b[j*ldb + l]: column j of op(B) is contiguous in l.
    for (size_t p = 0; p < panels; ++p) {
      const size_t c_valid = std::min(kGemmNr, nb - p * kGemmNr);
      float* dst = packed + p * kc * kGemmNr;
      for (size_t c = 0; c < c_valid; ++c) {
        const float* src = b + (j0 + p * kGemmNr + c) * ldb + l0;
        for (size_t l = 0; l < kc; ++l) dst[l * kGemmNr + c] = src[l];
      }
      for (size_t c = c_valid; c < kGemmNr; ++c) {
        for (size_t l = 0; l < kc; ++l) dst[l * kGemmNr + c] = 0.0f;
      }
    }
    return;
  }
  // b_op(l, j) = b[l*ldb + j]: row l is contiguous in j.
  for (size_t p = 0; p < panels; ++p) {
    const size_t c_valid = std::min(kGemmNr, nb - p * kGemmNr);
    float* dst = packed + p * kc * kGemmNr;
    for (size_t l = 0; l < kc; ++l) {
      const float* src = b + (l0 + l) * ldb + j0 + p * kGemmNr;
      for (size_t c = 0; c < c_valid; ++c) dst[l * kGemmNr + c] = src[c];
      for (size_t c = c_valid; c < kGemmNr; ++c) dst[l * kGemmNr + c] = 0.0f;
    }
  }
}

// MR x NR register-tiled micro-kernel over one packed A panel and one
// packed B panel: loads the valid C sub-tile into the accumulator (padded
// lanes start at 0 and are never stored back), streams kc ascending
// fl(alpha*a)*b terms, and stores the valid region. The j loop has fixed
// trip count kGemmNr so -O2 keeps the accumulator in vector registers.
inline void GemmMicroKernel(const float* ap, const float* bp, size_t kc,
                            float* c, size_t ldc, size_t m_valid,
                            size_t n_valid) {
  float acc[kGemmMr][kGemmNr];
  for (size_t r = 0; r < kGemmMr; ++r) {
    for (size_t j = 0; j < kGemmNr; ++j) {
      acc[r][j] = (r < m_valid && j < n_valid) ? c[r * ldc + j] : 0.0f;
    }
  }
  for (size_t l = 0; l < kc; ++l) {
    const float* arow = ap + l * kGemmMr;
    const float* brow = bp + l * kGemmNr;
    for (size_t r = 0; r < kGemmMr; ++r) {
      const float av = arow[r];
      for (size_t j = 0; j < kGemmNr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (size_t r = 0; r < m_valid; ++r) {
    for (size_t j = 0; j < n_valid; ++j) c[r * ldc + j] = acc[r][j];
  }
}

template <typename F>
inline void ForEachElement(const ExecutionContext& ctx, size_t n, F&& f) {
  ctx.ShardedFor(0, n, ctx.tuning().min_elems_per_shard,
                 [&f](size_t lo, size_t hi) {
                   for (size_t i = lo; i < hi; ++i) f(i);
                 });
}

template <typename F>
inline void ForEachRow(const ExecutionContext& ctx, size_t rows,
                       size_t min_shard, F&& f) {
  ctx.ShardedFor(0, rows, min_shard, [&f](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) f(i);
  });
}

// Destination-major index over a scatter/segment id list: offsets[d] ..
// offsets[d+1] bound the positions of destination d in `order`, which holds
// source ids in ascending order within each destination — the serial loop's
// per-destination accumulation order.
struct DestIndex {
  std::vector<size_t> offsets;   // num_dests + 1
  std::vector<uint32_t> order;   // one entry per source
};

DestIndex BuildDestIndex(const std::vector<uint32_t>& idx, size_t num_dests) {
  DestIndex di;
  di.offsets.assign(num_dests + 1, 0);
  for (uint32_t d : idx) {
    GARCIA_CHECK_LT(d, num_dests);
    ++di.offsets[d + 1];
  }
  for (size_t d = 0; d < num_dests; ++d) di.offsets[d + 1] += di.offsets[d];
  di.order.resize(idx.size());
  std::vector<size_t> cursor(di.offsets.begin(), di.offsets.end() - 1);
  for (size_t e = 0; e < idx.size(); ++e) {
    di.order[cursor[idx[e]]++] = static_cast<uint32_t>(e);
  }
  return di;
}

// Shared skeleton of the destination-sharded reductions (scatter-add,
// segment softmax forward/backward): run the serial source-order loop when
// the context is serial or the source list is below the index-build
// break-even, otherwise build the destination-major index once and shard
// destinations, replaying each destination's sources in ascending order —
// the serial loop's accumulation order, hence bit-identical to it.
template <typename Serial, typename PerDest>
void DestShardedReduce(const ExecutionContext& ctx,
                       const std::vector<uint32_t>& idx, size_t num_dests,
                       Serial&& serial, PerDest&& per_dest) {
  if (!ctx.parallel() || idx.size() < ctx.tuning().min_scatter_sources) {
    serial();
    return;
  }
  const DestIndex di = BuildDestIndex(idx, num_dests);
  const size_t* offsets = di.offsets.data();
  const uint32_t* order = di.order.data();
  ctx.ShardedFor(0, num_dests, ctx.tuning().min_segments_per_shard,
                 [&](size_t lo, size_t hi) {
                   for (size_t d = lo; d < hi; ++d) {
                     per_dest(d, offsets[d], offsets[d + 1], order);
                   }
                 });
}

// The contiguous shard boundaries ShardedFor would pick for [0, n): used
// when a pass is laid out as explicit TaskGraph nodes instead of one
// blocking sharded call. Boundaries never affect results (the kernels are
// sharding-invariant by construction); they only set node granularity.
std::vector<std::pair<size_t, size_t>> ShardRanges(size_t n, size_t threads,
                                                   size_t min_shard) {
  std::vector<std::pair<size_t, size_t>> ranges;
  if (n == 0) return ranges;
  if (threads <= 1 || n < min_shard * 2) {
    ranges.emplace_back(0, n);
    return ranges;
  }
  const size_t want = std::min(threads, CeilDiv(n, min_shard));
  const size_t per = CeilDiv(n, want);
  const size_t shards = CeilDiv(n, per);
  ranges.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    const size_t lo = s * per;
    ranges.emplace_back(lo, std::min(n, lo + per));
  }
  return ranges;
}

inline void AddRow(float* dst, const float* src, size_t cols) {
  for (size_t j = 0; j < cols; ++j) dst[j] += src[j];
}

// One segment's max-stabilized softmax over positions [p0, p1) of a
// destination-major order list — the per-destination body shared by the
// sharded SegmentSoftmax kernel and the fused-chain per-shard head release.
inline void SegmentSoftmaxOneSegment(const Matrix& scores,
                                     const uint32_t* order, size_t p0,
                                     size_t p1, Matrix* out) {
  if (p0 == p1) return;
  float mx = -1e30f;
  for (size_t p = p0; p < p1; ++p) {
    mx = std::max(mx, scores.at(order[p], 0));
  }
  double sum = 0.0;
  for (size_t p = p0; p < p1; ++p) {
    const uint32_t e = order[p];
    out->at(e, 0) = std::exp(scores.at(e, 0) - mx);
    sum += out->at(e, 0);
  }
  for (size_t p = p0; p < p1; ++p) {
    const uint32_t e = order[p];
    out->at(e, 0) = static_cast<float>(out->at(e, 0) / sum);
  }
}

}  // namespace

void OrderedShardMerge(const ExecutionContext& ctx, size_t num_items,
                       size_t min_shard,
                       const std::function<void(size_t, size_t)>& compute,
                       const std::function<void(size_t, size_t)>& merge) {
  if (num_items == 0) return;
  const auto ranges = ShardRanges(num_items, ctx.num_threads(), min_shard);
  if (!ctx.parallel() || ranges.size() <= 1) {
    // Serial reference: interleave compute and merge per shard, ascending.
    // The parallel schedule below reproduces exactly this merge order.
    for (const auto& r : ranges) {
      compute(r.first, r.second);
      merge(r.first, r.second);
    }
    return;
  }
  // merge(s) waits on {compute(s), merge(s-1)}: a dependency chain through
  // the merges, with all computes free to run concurrently. No barrier —
  // shard 0's merge can fire while the last shard is still computing.
  TaskGraph graph(ctx.pool());
  TaskGraph::NodeId prev_merge = 0;
  bool has_prev = false;
  for (const auto& r : ranges) {
    const size_t lo = r.first, hi = r.second;
    const TaskGraph::NodeId c =
        graph.Add([&compute, lo, hi] { compute(lo, hi); });
    std::vector<TaskGraph::NodeId> deps{c};
    if (has_prev) deps.push_back(prev_merge);
    prev_merge = graph.Add([&merge, lo, hi] { merge(lo, hi); }, deps);
    has_prev = true;
  }
  graph.WaitAll();
}

void Gemm(const ExecutionContext& ctx, bool trans_a, bool trans_b, float alpha,
          const Matrix& a, const Matrix& b, float beta, Matrix* c) {
  const size_t m = trans_a ? a.cols() : a.rows();
  const size_t k = trans_a ? a.rows() : a.cols();
  const size_t kb = trans_b ? b.cols() : b.rows();
  const size_t n = trans_b ? b.rows() : b.cols();
  GARCIA_CHECK_EQ(k, kb) << "GEMM inner dimension mismatch";
  GARCIA_CHECK_EQ(c->rows(), m);
  GARCIA_CHECK_EQ(c->cols(), n);

  if (beta == 0.0f) {
    c->Fill(0.0f);
  } else if (beta != 1.0f) {
    c->Scale(beta);
  }
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  const KernelTuning& tune = ctx.tuning();
  const size_t kc_max = std::max<size_t>(1, tune.gemm_kc);
  size_t mb = std::min(m, std::max<size_t>(1, tune.gemm_mc));
  size_t nb = std::min(n, std::max<size_t>(1, tune.gemm_nc));
  if (ctx.parallel()) {
    // Refine the tile grid until every worker has a couple of tiles, never
    // below the tuning floors. Small-m trans_a GEMMs (dW = X^T dY: m = n =
    // hidden dim, k = node count) split over columns and finer row blocks
    // here instead of collapsing onto a handful of row shards. The chosen
    // grid cannot change the result (see the bit-identity argument above).
    const size_t target = 2 * ctx.num_threads();
    const size_t mb_floor = std::max<size_t>(1, tune.gemm_min_rows_per_shard);
    const size_t nb_floor = std::max<size_t>(1, tune.gemm_min_cols_per_shard);
    while (CeilDiv(m, mb) * CeilDiv(n, nb) < target) {
      const bool can_m = mb / 2 >= mb_floor;
      const bool can_n = nb / 2 >= nb_floor;
      if (!can_m && !can_n) break;
      if (can_m && (mb >= nb || !can_n)) {
        mb /= 2;
      } else {
        nb /= 2;
      }
    }
  }
  const size_t row_blocks = CeilDiv(m, mb);
  const size_t col_panels = CeilDiv(n, nb);

  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c->data();
  const size_t lda = a.cols(), ldb = b.cols(), ldc = c->cols();
  const size_t a_pack_floats = CeilDiv(mb, kGemmMr) * kGemmMr * kc_max;
  const size_t b_pack_floats = CeilDiv(nb, kGemmNr) * kGemmNr * kc_max;

  // With more than one row block, every row block walks the same op(B)
  // panels, so pack them ONCE into a shared buffer — one (column panel x
  // k panel) group per slot, at a uniform stride — and let the tile loop
  // read them instead of re-packing per row block. The pack phase shards
  // over groups (disjoint writes); ShardedFor's completion barrier
  // publishes the buffer to the compute phase. Each group's contents are
  // byte-identical to what the per-tile PackB would produce, so sharing
  // cannot change the result. Falls back to per-tile packing when the
  // buffer would exceed the tuning cap.
  const size_t kc_count = CeilDiv(k, kc_max);
  const size_t b_group_stride = CeilDiv(nb, kGemmNr) * kGemmNr * kc_max;
  const size_t b_shared_floats = b_group_stride * col_panels * kc_count;
  const bool share_b =
      row_blocks > 1 && b_shared_floats <= tune.gemm_shared_b_max_floats;
  GemmPackBuffers& caller_bufs = TlsGemmBuffers();
  if (share_b) {
    if (caller_bufs.b_shared.size() < b_shared_floats) {
      caller_bufs.b_shared.resize(b_shared_floats);
    }
    float* shared = caller_bufs.b_shared.data();
    ctx.ShardedFor(0, col_panels * kc_count, /*min_shard=*/1,
                   [&](size_t g_begin, size_t g_end) {
                     for (size_t g = g_begin; g < g_end; ++g) {
                       const size_t jp = g / kc_count;
                       const size_t lp = g % kc_count;
                       const size_t j0 = jp * nb;
                       const size_t l0 = lp * kc_max;
                       PackB(trans_b, bd, ldb, l0, std::min(kc_max, k - l0),
                             j0, std::min(nb, n - j0),
                             shared + g * b_group_stride);
                     }
                   });
  }
  const float* b_shared = share_b ? caller_bufs.b_shared.data() : nullptr;

  // Shard the flattened 2-D tile grid. Tiles write disjoint C regions, so
  // shards need no synchronization; each shard packs its own A panels (and,
  // without sharing, B panels) into thread-local scratch.
  ctx.ShardedFor(
      0, row_blocks * col_panels, /*min_shard=*/1,
      [&](size_t t_begin, size_t t_end) {
        GemmPackBuffers& bufs = TlsGemmBuffers();
        if (bufs.a.size() < a_pack_floats) bufs.a.resize(a_pack_floats);
        if (!share_b && bufs.b.size() < b_pack_floats) {
          bufs.b.resize(b_pack_floats);
        }
        for (size_t t = t_begin; t < t_end; ++t) {
          const size_t i0 = (t / col_panels) * mb;
          const size_t jp = t % col_panels;
          const size_t j0 = jp * nb;
          const size_t mbt = std::min(mb, m - i0);
          const size_t nbt = std::min(nb, n - j0);
          for (size_t l0 = 0; l0 < k; l0 += kc_max) {
            const size_t kct = std::min(kc_max, k - l0);
            PackA(trans_a, alpha, ad, lda, i0, mbt, l0, kct, bufs.a.data());
            const float* b_panels;
            if (share_b) {
              b_panels = b_shared +
                         (jp * kc_count + l0 / kc_max) * b_group_stride;
            } else {
              PackB(trans_b, bd, ldb, l0, kct, j0, nbt, bufs.b.data());
              b_panels = bufs.b.data();
            }
            for (size_t jr = 0; jr < nbt; jr += kGemmNr) {
              const float* bp = b_panels + (jr / kGemmNr) * kct * kGemmNr;
              for (size_t ir = 0; ir < mbt; ir += kGemmMr) {
                GemmMicroKernel(
                    bufs.a.data() + (ir / kGemmMr) * kct * kGemmMr, bp, kct,
                    cd + (i0 + ir) * ldc + j0 + jr, ldc,
                    std::min(kGemmMr, mbt - ir), std::min(kGemmNr, nbt - jr));
              }
            }
          }
        }
      });
}

void UnaryForward(const ExecutionContext& ctx, UnaryOp op, float slope,
                  const float* x, float* y, size_t n) {
  switch (op) {
    case UnaryOp::kRelu:
      ForEachElement(ctx, n, [=](size_t i) {
        y[i] = x[i] > 0.0f ? x[i] : 0.0f;
      });
      break;
    case UnaryOp::kTanh:
      ForEachElement(ctx, n, [=](size_t i) { y[i] = std::tanh(x[i]); });
      break;
    case UnaryOp::kLeakyRelu:
      ForEachElement(ctx, n, [=](size_t i) {
        y[i] = x[i] > 0.0f ? x[i] : slope * x[i];
      });
      break;
    case UnaryOp::kSigmoid:
      ForEachElement(ctx, n, [=](size_t i) {
        const float v = x[i];
        y[i] = v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                         : std::exp(v) / (1.0f + std::exp(v));
      });
      break;
  }
}

void UnaryBackwardAdd(const ExecutionContext& ctx, UnaryOp op, float slope,
                      const float* x, const float* y, const float* dy,
                      float* dx, size_t n) {
  switch (op) {
    case UnaryOp::kRelu:
      ForEachElement(ctx, n, [=](size_t i) {
        if (x[i] > 0.0f) dx[i] += dy[i];
      });
      break;
    case UnaryOp::kTanh:
      ForEachElement(ctx, n, [=](size_t i) {
        dx[i] += dy[i] * (1.0f - y[i] * y[i]);
      });
      break;
    case UnaryOp::kLeakyRelu:
      ForEachElement(ctx, n, [=](size_t i) {
        dx[i] += dy[i] * (x[i] > 0.0f ? 1.0f : slope);
      });
      break;
    case UnaryOp::kSigmoid:
      ForEachElement(ctx, n, [=](size_t i) {
        dx[i] += dy[i] * (y[i] * (1.0f - y[i]));
      });
      break;
  }
}

void GatherRows(const ExecutionContext& ctx, const Matrix& src,
                const std::vector<uint32_t>& idx, Matrix* out) {
  GARCIA_CHECK_EQ(out->rows(), idx.size());
  GARCIA_CHECK_EQ(out->cols(), src.cols());
  const size_t cols = src.cols();
  ForEachRow(ctx, idx.size(), ctx.tuning().min_rows_per_shard, [&](size_t i) {
    GARCIA_CHECK_LT(idx[i], src.rows());
    std::memcpy(out->row(i), src.row(idx[i]), cols * sizeof(float));
  });
}

void GatherAddRows(const ExecutionContext& ctx, const Matrix& src,
                   const std::vector<uint32_t>& idx, Matrix* out) {
  GARCIA_CHECK_EQ(out->rows(), idx.size());
  GARCIA_CHECK_EQ(out->cols(), src.cols());
  const size_t cols = src.cols();
  ForEachRow(ctx, idx.size(), ctx.tuning().min_rows_per_shard, [&](size_t i) {
    GARCIA_CHECK_LT(idx[i], src.rows());
    AddRow(out->row(i), src.row(idx[i]), cols);
  });
}

void ScatterAddRows(const ExecutionContext& ctx, const Matrix& src,
                    const std::vector<uint32_t>& idx, Matrix* accum) {
  GARCIA_CHECK_EQ(src.rows(), idx.size());
  GARCIA_CHECK_EQ(src.cols(), accum->cols());
  const size_t cols = src.cols();
  DestShardedReduce(
      ctx, idx, accum->rows(),
      [&] {
        for (size_t e = 0; e < idx.size(); ++e) {
          GARCIA_CHECK_LT(idx[e], accum->rows());
          AddRow(accum->row(idx[e]), src.row(e), cols);
        }
      },
      [&](size_t d, size_t p0, size_t p1, const uint32_t* order) {
        float* dst = accum->row(d);
        for (size_t p = p0; p < p1; ++p) {
          AddRow(dst, src.row(order[p]), cols);
        }
      });
}

void SegmentSum(const ExecutionContext& ctx, const Matrix& x,
                const std::vector<uint32_t>& seg, size_t num_segments,
                Matrix* out) {
  GARCIA_CHECK_EQ(out->rows(), num_segments);
  out->Fill(0.0f);
  ScatterAddRows(ctx, x, seg, out);
}

void SegmentSoftmax(const ExecutionContext& ctx, const Matrix& scores,
                    const std::vector<uint32_t>& seg, size_t num_segments,
                    Matrix* out) {
  GARCIA_CHECK_EQ(scores.cols(), 1u);
  GARCIA_CHECK_EQ(seg.size(), scores.rows());
  GARCIA_CHECK_EQ(out->rows(), seg.size());
  GARCIA_CHECK_EQ(out->cols(), 1u);
  const size_t e_count = seg.size();
  DestShardedReduce(
      ctx, seg, num_segments,
      [&] {
        std::vector<float> seg_max(num_segments, -1e30f);
        for (size_t e = 0; e < e_count; ++e) {
          GARCIA_CHECK_LT(seg[e], num_segments);
          seg_max[seg[e]] = std::max(seg_max[seg[e]], scores.at(e, 0));
        }
        std::vector<double> seg_sum(num_segments, 0.0);
        for (size_t e = 0; e < e_count; ++e) {
          out->at(e, 0) = std::exp(scores.at(e, 0) - seg_max[seg[e]]);
          seg_sum[seg[e]] += out->at(e, 0);
        }
        for (size_t e = 0; e < e_count; ++e) {
          out->at(e, 0) = static_cast<float>(out->at(e, 0) / seg_sum[seg[e]]);
        }
      },
      [&](size_t /*s*/, size_t p0, size_t p1, const uint32_t* order) {
        SegmentSoftmaxOneSegment(scores, order, p0, p1, out);
      });
}

void SegmentSoftmaxBackwardAdd(const ExecutionContext& ctx,
                               const Matrix& alpha, const Matrix& dalpha,
                               const std::vector<uint32_t>& seg,
                               size_t num_segments, Matrix* dscores) {
  GARCIA_CHECK_EQ(alpha.rows(), seg.size());
  GARCIA_CHECK_EQ(dalpha.rows(), seg.size());
  GARCIA_CHECK_EQ(dscores->rows(), seg.size());
  const size_t e_count = seg.size();
  DestShardedReduce(
      ctx, seg, num_segments,
      [&] {
        std::vector<double> seg_dot(num_segments, 0.0);
        for (size_t e = 0; e < e_count; ++e) {
          GARCIA_CHECK_LT(seg[e], num_segments);
          seg_dot[seg[e]] +=
              static_cast<double>(dalpha.at(e, 0)) * alpha.at(e, 0);
        }
        for (size_t e = 0; e < e_count; ++e) {
          dscores->at(e, 0) +=
              alpha.at(e, 0) *
              (dalpha.at(e, 0) - static_cast<float>(seg_dot[seg[e]]));
        }
      },
      [&](size_t /*s*/, size_t p0, size_t p1, const uint32_t* order) {
        double dot = 0.0;
        for (size_t p = p0; p < p1; ++p) {
          const uint32_t e = order[p];
          dot += static_cast<double>(dalpha.at(e, 0)) * alpha.at(e, 0);
        }
        for (size_t p = p0; p < p1; ++p) {
          const uint32_t e = order[p];
          dscores->at(e, 0) +=
              alpha.at(e, 0) * (dalpha.at(e, 0) - static_cast<float>(dot));
        }
      });
}

void ScaleRowsInPlace(const ExecutionContext& ctx, Matrix* x,
                      const Matrix& w) {
  GARCIA_CHECK_EQ(w.cols(), 1u);
  GARCIA_CHECK_EQ(w.rows(), x->rows());
  const size_t cols = x->cols();
  ForEachRow(ctx, x->rows(), ctx.tuning().min_rows_per_shard, [&](size_t i) {
    const float wi = w.at(i, 0);
    float* r = x->row(i);
    for (size_t j = 0; j < cols; ++j) r[j] *= wi;
  });
}

void RowDotAdd(const ExecutionContext& ctx, const Matrix& a, const Matrix& b,
               Matrix* out) {
  GARCIA_CHECK_EQ(a.rows(), b.rows());
  GARCIA_CHECK_EQ(a.cols(), b.cols());
  GARCIA_CHECK_EQ(out->rows(), a.rows());
  GARCIA_CHECK_EQ(out->cols(), 1u);
  const size_t cols = a.cols();
  ForEachRow(ctx, a.rows(), ctx.tuning().min_rows_per_shard, [&](size_t i) {
    double acc = 0.0;
    const float* ra = a.row(i);
    const float* rb = b.row(i);
    for (size_t j = 0; j < cols; ++j) {
      acc += static_cast<double>(ra[j]) * rb[j];
    }
    out->at(i, 0) += static_cast<float>(acc);
  });
}

void L2NormalizeRows(const ExecutionContext& ctx, const Matrix& x, float eps,
                     Matrix* out, std::vector<float>* norms) {
  GARCIA_CHECK_EQ(out->rows(), x.rows());
  GARCIA_CHECK_EQ(out->cols(), x.cols());
  const size_t d = x.cols();
  norms->resize(x.rows());
  ForEachRow(ctx, x.rows(), ctx.tuning().min_rows_per_shard, [&](size_t i) {
    const float* r = x.row(i);
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) s += static_cast<double>(r[j]) * r[j];
    const float norm = static_cast<float>(std::sqrt(s));
    (*norms)[i] = std::max(norm, eps);
    const float inv = norm > eps ? 1.0f / norm : 0.0f;
    // Zero rows (norm <= eps) map to zero rows.
    float* o = out->row(i);
    for (size_t j = 0; j < d; ++j) o[j] = r[j] * inv;
  });
}

void L2NormalizeRowsBackwardAdd(const ExecutionContext& ctx, const Matrix& y,
                                const Matrix& dy,
                                const std::vector<float>& norms, float eps,
                                Matrix* dx) {
  GARCIA_CHECK_EQ(norms.size(), y.rows());
  GARCIA_CHECK_EQ(dx->rows(), y.rows());
  const size_t d = y.cols();
  ForEachRow(ctx, y.rows(), ctx.tuning().min_rows_per_shard, [&](size_t i) {
    if (norms[i] <= eps) return;  // zero row: zero gradient
    const float* yi = y.row(i);
    const float* dyi = dy.row(i);
    double dot = 0.0;
    for (size_t j = 0; j < d; ++j) {
      dot += static_cast<double>(dyi[j]) * yi[j];
    }
    const float inv = 1.0f / norms[i];
    float* gi = dx->row(i);
    for (size_t j = 0; j < d; ++j) {
      gi[j] += (dyi[j] - static_cast<float>(dot) * yi[j]) * inv;
    }
  });
}

void SoftmaxRows(const ExecutionContext& ctx, Matrix* x) {
  const size_t cols = x->cols();
  ForEachRow(ctx, x->rows(), ctx.tuning().min_rows_per_shard, [&](size_t i) {
    float* r = x->row(i);
    float mx = r[0];
    for (size_t j = 1; j < cols; ++j) mx = std::max(mx, r[j]);
    double sum = 0.0;
    for (size_t j = 0; j < cols; ++j) {
      r[j] = std::exp(r[j] - mx);
      sum += r[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (size_t j = 0; j < cols; ++j) r[j] *= inv;
  });
}

void SoftmaxRowsBackwardAdd(const ExecutionContext& ctx, const Matrix& y,
                            const Matrix& dy, Matrix* dx) {
  GARCIA_CHECK_EQ(dy.rows(), y.rows());
  GARCIA_CHECK_EQ(dy.cols(), y.cols());
  GARCIA_CHECK_EQ(dx->rows(), y.rows());
  GARCIA_CHECK_EQ(dx->cols(), y.cols());
  const size_t cols = y.cols();
  ForEachRow(ctx, y.rows(), ctx.tuning().min_rows_per_shard, [&](size_t i) {
    const float* yi = y.row(i);
    const float* dyi = dy.row(i);
    double dot = 0.0;
    for (size_t j = 0; j < cols; ++j) {
      dot += static_cast<double>(dyi[j]) * yi[j];
    }
    float* gi = dx->row(i);
    for (size_t j = 0; j < cols; ++j) {
      gi[j] += yi[j] * (dyi[j] - static_cast<float>(dot));
    }
  });
}

double CrossEntropyForward(const ExecutionContext& ctx, Matrix* logits,
                           const std::vector<uint32_t>& targets) {
  const size_t n = logits->rows(), m = logits->cols();
  GARCIA_CHECK_EQ(targets.size(), n);
  GARCIA_CHECK_GT(n, 0u);
  std::vector<double> row_loss(n);
  // The total is summed in ascending row order regardless of backend so
  // the scalar loss is backend-independent; OrderedShardMerge lets each
  // row shard fold into the total as soon as it (and every earlier shard)
  // is done, instead of joining the whole pass first.
  double loss = 0.0;
  OrderedShardMerge(
      ctx, n, ctx.tuning().min_loss_rows_per_shard,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          GARCIA_CHECK_LT(targets[i], m);
          float* r = logits->row(i);
          float mx = r[0];
          for (size_t j = 1; j < m; ++j) mx = std::max(mx, r[j]);
          double sum = 0.0;
          for (size_t j = 0; j < m; ++j) {
            sum += std::exp(static_cast<double>(r[j]) - mx);
          }
          const double lse = mx + std::log(sum);
          row_loss[i] = lse - r[targets[i]];
          for (size_t j = 0; j < m; ++j) {
            r[j] =
                static_cast<float>(std::exp(static_cast<double>(r[j]) - lse));
          }
        }
      },
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) loss += row_loss[i];
      });
  return loss;
}

void CrossEntropyBackwardAdd(const ExecutionContext& ctx,
                             const Matrix& softmax,
                             const std::vector<uint32_t>& targets, float gout,
                             Matrix* dlogits) {
  GARCIA_CHECK_EQ(dlogits->rows(), softmax.rows());
  GARCIA_CHECK_EQ(dlogits->cols(), softmax.cols());
  const size_t m = softmax.cols();
  ForEachRow(ctx, softmax.rows(), ctx.tuning().min_rows_per_shard, [&](size_t i) {
    const float* s = softmax.row(i);
    float* gr = dlogits->row(i);
    for (size_t j = 0; j < m; ++j) gr[j] += gout * s[j];
    gr[targets[i]] -= gout;
  });
}

// ----- Top-K retrieval -----

namespace {

using ScoredId = std::pair<uint32_t, float>;

// Fixed block size for the parallel partial-heap path. Independent of the
// thread count on purpose: the result is order-invariant anyway (unique
// selection under a total order), but fixed blocks keep the work split
// reproducible and give every worker cache-sized chunks.
constexpr size_t kTopKBlockRows = 1024;

// The retrieval total order: higher score first, ties by ascending id.
inline bool RanksBefore(const ScoredId& a, const ScoredId& b) {
  if (a.second != b.second) return a.second > b.second;
  return a.first < b.first;
}

inline float DotRowDouble(const float* query, const float* row, size_t dim) {
  double dot = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    dot += static_cast<double>(query[j]) * row[j];
  }
  return static_cast<float>(dot);
}

// Bounded top-k over rows [lo, hi): a k-element heap whose top is the
// currently-worst kept candidate (std::*_heap with RanksBefore puts the
// comparator-maximal element — the one ranking LAST — on top). out is left
// sorted best-first.
void PartialTopKRows(const float* query, size_t dim, const Matrix& cands,
                     size_t lo, size_t hi, size_t k,
                     std::vector<ScoredId>* out) {
  out->clear();
  if (k == 0) return;
  for (size_t i = lo; i < hi; ++i) {
    const ScoredId cand{static_cast<uint32_t>(i),
                        DotRowDouble(query, cands.row(i), dim)};
    if (out->size() < k) {
      out->push_back(cand);
      std::push_heap(out->begin(), out->end(), RanksBefore);
    } else if (RanksBefore(cand, out->front())) {
      std::pop_heap(out->begin(), out->end(), RanksBefore);
      out->back() = cand;
      std::push_heap(out->begin(), out->end(), RanksBefore);
    }
  }
  std::sort_heap(out->begin(), out->end(), RanksBefore);
}

}  // namespace

std::vector<ScoredId> TopKDot(const ExecutionContext& ctx, const float* query,
                              size_t dim, const Matrix& candidates, size_t k) {
  const size_t n = candidates.rows();
  GARCIA_CHECK_EQ(candidates.cols(), dim);
  k = std::min(k, n);
  std::vector<ScoredId> result;
  if (k == 0) return result;
  if (!ctx.parallel() || n <= kTopKBlockRows) {
    PartialTopKRows(query, dim, candidates, 0, n, k, &result);
    return result;
  }
  const size_t num_blocks = (n + kTopKBlockRows - 1) / kTopKBlockRows;
  std::vector<std::vector<ScoredId>> partial(num_blocks);
  // Merge the per-block winners in ascending block order. The k best of
  // the union of block top-k lists are exactly the global top-k, and the
  // total order makes that selection (and its sort) unique. The ordered
  // merge releases per block shard: early blocks append to the result
  // while later blocks are still scanning.
  OrderedShardMerge(
      ctx, num_blocks, /*min_shard=*/1,
      [&](size_t blo, size_t bhi) {
        for (size_t b = blo; b < bhi; ++b) {
          const size_t lo = b * kTopKBlockRows;
          PartialTopKRows(query, dim, candidates, lo,
                          std::min(n, lo + kTopKBlockRows), k, &partial[b]);
        }
      },
      [&](size_t blo, size_t bhi) {
        for (size_t b = blo; b < bhi; ++b) {
          result.insert(result.end(), partial[b].begin(), partial[b].end());
        }
      });
  std::partial_sort(result.begin(), result.begin() + k, result.end(),
                    RanksBefore);
  result.resize(k);
  return result;
}

// ----- Fused elementwise→reduction chains -----

namespace fused {
namespace {

/// Elements per block in the range evaluator: wide enough that each step's
/// loop vectorizes and amortizes its dispatch, small enough that the whole
/// block register file (kMaxProgramSteps rows) stays L1-resident.
constexpr size_t kEvalBlock = 128;

// Evaluates the straight-line program over elements [lo, hi) in blocks:
// one tight per-step loop per block, so each op's loop vectorizes exactly
// like its eager kernel would (a switch per element would defeat that).
// Intermediates live in the block register file (never in memory unless a
// step spills); every scalar expression is the one the eager kernel for
// that op applies, so chain values are bit-identical to what the eager
// path would round-trip through intermediate matrices. When dst is
// non-null, dst[i - lo] receives element i's final chain value.
inline void EvalRange(const Step* steps, size_t num_steps, size_t lo,
                      size_t hi, float* dst) {
  float regs[kMaxProgramSteps][kEvalBlock];
  for (size_t b = lo; b < hi; b += kEvalBlock) {
    const size_t m = std::min(kEvalBlock, hi - b);
    for (size_t s = 0; s < num_steps; ++s) {
      const Step& st = steps[s];
      float* o = regs[s];
      const float* va = regs[st.a];
      const float* vb = regs[st.b];
      switch (st.op) {
        case EltOp::kInput: {
          const float* in = st.in + b;
          for (size_t j = 0; j < m; ++j) o[j] = in[j];
          break;
        }
        case EltOp::kAdd:
          for (size_t j = 0; j < m; ++j) o[j] = va[j] + vb[j];
          break;
        case EltOp::kSub:
          for (size_t j = 0; j < m; ++j) o[j] = va[j] - vb[j];
          break;
        case EltOp::kMul:
          for (size_t j = 0; j < m; ++j) o[j] = va[j] * vb[j];
          break;
        case EltOp::kScale:
          for (size_t j = 0; j < m; ++j) o[j] = va[j] * st.attr;
          break;
        case EltOp::kAddScalar:
          for (size_t j = 0; j < m; ++j) o[j] = va[j] + st.attr;
          break;
        case EltOp::kRelu:
          for (size_t j = 0; j < m; ++j) {
            o[j] = va[j] > 0.0f ? va[j] : 0.0f;
          }
          break;
        case EltOp::kTanh:
          for (size_t j = 0; j < m; ++j) o[j] = std::tanh(va[j]);
          break;
        case EltOp::kLeakyRelu:
          for (size_t j = 0; j < m; ++j) {
            o[j] = va[j] > 0.0f ? va[j] : st.attr * va[j];
          }
          break;
        case EltOp::kSigmoid:
          for (size_t j = 0; j < m; ++j) {
            const float x = va[j];
            o[j] = x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                             : std::exp(x) / (1.0f + std::exp(x));
          }
          break;
      }
      if (st.spill != nullptr) {
        float* sp = st.spill + b;
        for (size_t j = 0; j < m; ++j) sp[j] = o[j];
      }
    }
    if (dst != nullptr) {
      const float* last = regs[num_steps - 1];
      float* d = dst + (b - lo);
      for (size_t j = 0; j < m; ++j) d[j] = last[j];
    }
  }
}

inline void CheckProgram(const Program& prog) {
  GARCIA_CHECK(!prog.empty());
  GARCIA_CHECK_LE(prog.size(), kMaxProgramSteps);
}

}  // namespace

void EltwiseForward(const ExecutionContext& ctx, const Program& prog,
                    size_t n) {
  CheckProgram(prog);
  GARCIA_CHECK(prog.back().spill != nullptr)
      << "headless chain must materialize its output";
  const Step* steps = prog.data();
  const size_t num_steps = prog.size();
  ctx.ShardedFor(0, n, ctx.tuning().min_elems_per_shard,
                 [=](size_t lo, size_t hi) {
                   EvalRange(steps, num_steps, lo, hi, nullptr);
                 });
}

void L2NormalizeRowsForward(const ExecutionContext& ctx, const Program& prog,
                            float eps, Matrix* out,
                            std::vector<float>* norms) {
  CheckProgram(prog);
  const Step* steps = prog.data();
  const size_t num_steps = prog.size();
  const size_t d = out->cols();
  norms->resize(out->rows());
  ForEachRow(ctx, out->rows(), ctx.tuning().min_rows_per_shard, [&](size_t i) {
    // Chain values land in the output row, then the eager L2NormalizeRows
    // body runs on them in place (o[j] holds exactly the eager r[j]).
    float* o = out->row(i);
    const size_t base = i * d;
    EvalRange(steps, num_steps, base, base + d, o);
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) s += static_cast<double>(o[j]) * o[j];
    const float norm = static_cast<float>(std::sqrt(s));
    (*norms)[i] = std::max(norm, eps);
    const float inv = norm > eps ? 1.0f / norm : 0.0f;
    for (size_t j = 0; j < d; ++j) o[j] = o[j] * inv;
  });
}

void SoftmaxRowsForward(const ExecutionContext& ctx, const Program& prog,
                        Matrix* out) {
  CheckProgram(prog);
  const Step* steps = prog.data();
  const size_t num_steps = prog.size();
  const size_t cols = out->cols();
  ForEachRow(ctx, out->rows(), ctx.tuning().min_rows_per_shard, [&](size_t i) {
    float* r = out->row(i);
    const size_t base = i * cols;
    EvalRange(steps, num_steps, base, base + cols, r);
    // The eager SoftmaxRows body (kernels::SoftmaxRows), in place.
    float mx = r[0];
    for (size_t j = 1; j < cols; ++j) mx = std::max(mx, r[j]);
    double sum = 0.0;
    for (size_t j = 0; j < cols; ++j) {
      r[j] = std::exp(r[j] - mx);
      sum += r[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (size_t j = 0; j < cols; ++j) r[j] *= inv;
  });
}

double CrossEntropyForward(const ExecutionContext& ctx, const Program& prog,
                           const std::vector<uint32_t>& targets,
                           Matrix* softmax) {
  CheckProgram(prog);
  const Step* steps = prog.data();
  const size_t num_steps = prog.size();
  const size_t n = softmax->rows(), m = softmax->cols();
  GARCIA_CHECK_EQ(targets.size(), n);
  GARCIA_CHECK_GT(n, 0u);
  std::vector<double> row_loss(n);
  // Ascending-row-order total via the ordered merge, exactly as in the
  // eager kernel: backend-independent, and each row shard folds into the
  // total without waiting for the whole pass.
  double loss = 0.0;
  OrderedShardMerge(
      ctx, n, ctx.tuning().min_loss_rows_per_shard,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          GARCIA_CHECK_LT(targets[i], m);
          float* r = softmax->row(i);
          const size_t base = i * m;
          EvalRange(steps, num_steps, base, base + m, r);
          // The eager kernels::CrossEntropyForward row body, on chain
          // values.
          float mx = r[0];
          for (size_t j = 1; j < m; ++j) mx = std::max(mx, r[j]);
          double sum = 0.0;
          for (size_t j = 0; j < m; ++j) {
            sum += std::exp(static_cast<double>(r[j]) - mx);
          }
          const double lse = mx + std::log(sum);
          row_loss[i] = lse - r[targets[i]];
          for (size_t j = 0; j < m; ++j) {
            r[j] =
                static_cast<float>(std::exp(static_cast<double>(r[j]) - lse));
          }
        }
      },
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) loss += row_loss[i];
      });
  return loss;
}

void SegmentSoftmaxForward(const ExecutionContext& ctx, const Program& prog,
                           const std::vector<uint32_t>& seg,
                           size_t num_segments, Matrix* out) {
  CheckProgram(prog);
  GARCIA_CHECK_EQ(out->cols(), 1u);
  GARCIA_CHECK_EQ(out->rows(), seg.size());
  const Step* steps = prog.data();
  const size_t num_steps = prog.size();
  // Segment softmax needs every element's value in both its max and its exp
  // pass, so the chain lands in an Ex1 scratch first (still one chain pass;
  // the head consumes the scratch per destination segment).
  const size_t e_count = seg.size();
  Matrix scores(e_count, 1);
  float* sd = scores.data();
  // Fast path: segment ids ascending (block layers emit destination-sorted
  // edges), a parallel context, and enough sources to beat the index
  // build. Then each destination shard's sources occupy one contiguous
  // element range, so the reduction head can be released PER DESTINATION
  // SHARD: a TaskGraph where head node h depends only on the chain-eval
  // nodes covering its element range, instead of the whole chain pass
  // joining before any head work starts. Chain values and the per-segment
  // head arithmetic are unchanged, and segments never straddle a head
  // node, so the result is bit-identical to the barriered path.
  if (ctx.parallel() && e_count >= ctx.tuning().min_scatter_sources &&
      std::is_sorted(seg.begin(), seg.end())) {
    const DestIndex di = BuildDestIndex(seg, num_segments);
    const auto eval_shards =
        ShardRanges(e_count, ctx.num_threads(), ctx.tuning().min_elems_per_shard);
    const auto head_shards = ShardRanges(num_segments, ctx.num_threads(),
                                         ctx.tuning().min_segments_per_shard);
    TaskGraph graph(ctx.pool());
    std::vector<TaskGraph::NodeId> eval_ids;
    eval_ids.reserve(eval_shards.size());
    for (const auto& r : eval_shards) {
      const size_t lo = r.first, hi = r.second;
      eval_ids.push_back(graph.Add(
          [=] { EvalRange(steps, num_steps, lo, hi, sd + lo); }));
    }
    const uint32_t* order = di.order.data();
    const size_t* offsets = di.offsets.data();
    const Matrix& scores_ref = scores;
    for (const auto& r : head_shards) {
      const size_t s0 = r.first, s1 = r.second;
      // Ascending seg: the sources of segments [s0, s1) are exactly the
      // contiguous elements [offsets[s0], offsets[s1]).
      const size_t elo = offsets[s0], ehi = offsets[s1];
      std::vector<TaskGraph::NodeId> deps;
      for (size_t e = 0; e < eval_shards.size(); ++e) {
        if (eval_shards[e].first < ehi && eval_shards[e].second > elo) {
          deps.push_back(eval_ids[e]);
        }
      }
      graph.Add(
          [&scores_ref, order, offsets, s0, s1, out] {
            for (size_t s = s0; s < s1; ++s) {
              SegmentSoftmaxOneSegment(scores_ref, order, offsets[s],
                                       offsets[s + 1], out);
            }
          },
          deps);
    }
    graph.WaitAll();
    return;
  }
  ctx.ShardedFor(0, e_count, ctx.tuning().min_elems_per_shard,
                 [=](size_t lo, size_t hi) {
                   EvalRange(steps, num_steps, lo, hi, sd + lo);
                 });
  SegmentSoftmax(ctx, scores, seg, num_segments, out);
}

void ChainBackward(const ExecutionContext& ctx, const BackwardStep* steps,
                   size_t num_steps, const float* d_top, float* d_base,
                   size_t n) {
  GARCIA_CHECK_GT(num_steps, 0u);
  // Block-vectorized like EvalRange: dv holds the running spine gradient d,
  // cv this step's contribution c to its spine operand — each computed with
  // the exact scalar expression of the eager backward closure.
  ctx.ShardedFor(
      0, n, ctx.tuning().min_elems_per_shard, [=](size_t lo, size_t hi) {
        float dv[kEvalBlock], cv[kEvalBlock];
        for (size_t b = lo; b < hi; b += kEvalBlock) {
          const size_t m = std::min(kEvalBlock, hi - b);
          for (size_t j = 0; j < m; ++j) dv[j] = d_top[b + j];
          for (size_t s = 0; s < num_steps; ++s) {
            const BackwardStep& st = steps[s];
            bool relu = false;
            switch (st.op) {
              case EltOp::kAdd:
                if (st.d_side != nullptr) {
                  float* ds = st.d_side + b;
                  for (size_t j = 0; j < m; ++j) ds[j] = dv[j];
                }
                for (size_t j = 0; j < m; ++j) cv[j] = dv[j];
                break;
              case EltOp::kSub:
                if (st.spine_is_b) {
                  if (st.d_side != nullptr) {
                    float* ds = st.d_side + b;
                    for (size_t j = 0; j < m; ++j) ds[j] = dv[j];
                  }
                  for (size_t j = 0; j < m; ++j) cv[j] = dv[j] * -1.0f;
                } else {
                  if (st.d_side != nullptr) {
                    float* ds = st.d_side + b;
                    for (size_t j = 0; j < m; ++j) ds[j] = dv[j] * -1.0f;
                  }
                  for (size_t j = 0; j < m; ++j) cv[j] = dv[j];
                }
                break;
              case EltOp::kMul: {
                const float* ot = st.other + b;
                if (st.d_side != nullptr) {
                  const float* sp = st.spine + b;
                  float* ds = st.d_side + b;
                  for (size_t j = 0; j < m; ++j) ds[j] = dv[j] * sp[j];
                }
                for (size_t j = 0; j < m; ++j) cv[j] = dv[j] * ot[j];
                break;
              }
              case EltOp::kScale:
                for (size_t j = 0; j < m; ++j) cv[j] = dv[j] * st.attr;
                break;
              case EltOp::kAddScalar:
                for (size_t j = 0; j < m; ++j) cv[j] = dv[j];
                break;
              case EltOp::kRelu: {
                // The eager closure adds nothing at all where x <= 0; the
                // inter-step normalization below must replay that, not 0+c.
                const float* x = st.x + b;
                for (size_t j = 0; j < m; ++j) {
                  cv[j] = x[j] > 0.0f ? dv[j] : 0.0f;
                }
                relu = true;
                break;
              }
              case EltOp::kLeakyRelu: {
                const float* x = st.x + b;
                for (size_t j = 0; j < m; ++j) {
                  cv[j] = dv[j] * (x[j] > 0.0f ? 1.0f : st.attr);
                }
                break;
              }
              case EltOp::kTanh: {
                const float* y = st.y + b;
                for (size_t j = 0; j < m; ++j) {
                  cv[j] = dv[j] * (1.0f - y[j] * y[j]);
                }
                break;
              }
              case EltOp::kSigmoid: {
                const float* y = st.y + b;
                for (size_t j = 0; j < m; ++j) {
                  cv[j] = dv[j] * (y[j] * (1.0f - y[j]));
                }
                break;
              }
              case EltOp::kInput:
                GARCIA_CHECK(false) << "kInput in a backward chain";
                break;
            }
            if (s + 1 == num_steps) {
              if (d_base != nullptr) {
                float* db = d_base + b;
                for (size_t j = 0; j < m; ++j) db[j] = cv[j];
              }
            } else if (relu) {
              // Where the eager kRelu closure skipped its add, the next
              // node's scratch gradient stays exactly 0.0f.
              const float* x = st.x + b;
              for (size_t j = 0; j < m; ++j) {
                dv[j] = x[j] > 0.0f ? 0.0f + cv[j] : 0.0f;
              }
            } else {
              // In eager execution the next step's node receives this
              // contribution as its FIRST accumulation into a zeroed
              // scratch gradient: fl(0 + c). Replaying that addition keeps
              // the register spine bit-identical (it normalizes -0 to +0
              // exactly as the eager round-trip does).
              for (size_t j = 0; j < m; ++j) dv[j] = 0.0f + cv[j];
            }
          }
        }
      });
}

}  // namespace fused

// ----- SQ8 scalar quantization -----

namespace sq8 {
namespace {

/// Integer part of one block of the asymmetric dot: sum of qc[j]*codes[j]
/// over n <= kDimBlock coordinates, exact in int32 (peak magnitude
/// kDimBlock * 32767 * 127 < 2^31). Four independent accumulators —
/// integer addition is associative, so the unroll cannot change the value.
int32_t Sq8BlockDotScalar(const int16_t* qc, const int8_t* codes, size_t n) {
  int32_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    acc0 += static_cast<int32_t>(qc[j]) * codes[j];
    acc1 += static_cast<int32_t>(qc[j + 1]) * codes[j + 1];
    acc2 += static_cast<int32_t>(qc[j + 2]) * codes[j + 2];
    acc3 += static_cast<int32_t>(qc[j + 3]) * codes[j + 3];
  }
  for (; j < n; ++j) acc0 += static_cast<int32_t>(qc[j]) * codes[j];
  return acc0 + acc1 + acc2 + acc3;
}

#if defined(GARCIA_SQ8_X86)
/// AVX2 variant of the block dot. vpmaddwd forms int16*int16 products and
/// sums adjacent pairs into int32 lanes; per-lane peak over a block is
/// (kDimBlock/16) * 2 * 32767 * 127 < 2^28, and the final cross-lane
/// reduction is bounded by the scalar peak, so every add is exact. Lane
/// sums are a reassociation of the same int32 terms the scalar loop adds,
/// and integer addition is associative — the return value is bit-identical
/// to Sq8BlockDotScalar, which keeps results independent of the dispatch
/// target as well as the thread count.
__attribute__((target("avx2"))) int32_t Sq8BlockDotAvx2(const int16_t* qc,
                                                        const int8_t* codes,
                                                        size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m256i q = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(qc + j));
    const __m256i c = _mm256_cvtepi8_epi16(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(codes + j)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(q, c));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
  int32_t total = _mm_cvtsi128_si32(s);
  for (; j < n; ++j) total += static_cast<int32_t>(qc[j]) * codes[j];
  return total;
}

bool HasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}
#endif  // GARCIA_SQ8_X86

inline int32_t Sq8BlockDot(const int16_t* qc, const int8_t* codes, size_t n) {
#if defined(GARCIA_SQ8_X86)
  if (HasAvx2()) return Sq8BlockDotAvx2(qc, codes, n);
#endif
  return Sq8BlockDotScalar(qc, codes, n);
}

/// One asymmetric dot: exact integer accumulation in int32 over kDimBlock
/// blocks, widened to double at each block boundary, then scaled. The
/// integer block sum is value-identical across backends (see above) and
/// the double/float expression sequence is fixed, so every call site and
/// backend produces the same float bits.
float Sq8DotOne(const int16_t* qc, const int8_t* codes, size_t dim,
                double qscale, float vscale) {
  double total = 0.0;
  for (size_t j0 = 0; j0 < dim; j0 += kDimBlock) {
    const size_t j1 = std::min(dim, j0 + kDimBlock);
    total += static_cast<double>(Sq8BlockDot(qc + j0, codes + j0, j1 - j0));
  }
  return static_cast<float>(qscale * static_cast<double>(vscale) * total);
}

}  // namespace

void EncodeRow(const float* row, size_t dim, int8_t* codes, float* scale) {
  float maxabs = 0.0f;
  for (size_t j = 0; j < dim; ++j) maxabs = std::max(maxabs, std::fabs(row[j]));
  if (maxabs == 0.0f) {
    std::fill(codes, codes + dim, int8_t{0});
    *scale = 0.0f;
    return;
  }
  const float s = maxabs / static_cast<float>(kCodeMax);
  const double inv = 1.0 / static_cast<double>(s);
  for (size_t j = 0; j < dim; ++j) {
    const long c = std::lround(static_cast<double>(row[j]) * inv);
    codes[j] = static_cast<int8_t>(
        std::clamp<long>(c, -kCodeMax, kCodeMax));
  }
  *scale = s;
}

void EncodeRows(const ExecutionContext& ctx, const Matrix& src, int8_t* codes,
                float* scales) {
  const size_t dim = src.cols();
  ctx.ShardedFor(0, src.rows(), ctx.tuning().min_rows_per_shard,
                 [&](size_t lo, size_t hi) {
                   for (size_t i = lo; i < hi; ++i) {
                     EncodeRow(src.row(i), dim, codes + i * dim, &scales[i]);
                   }
                 });
}

QueryCodes QuantizeQuery(const float* query, size_t dim) {
  QueryCodes out;
  out.codes.resize(dim);
  float maxabs = 0.0f;
  for (size_t j = 0; j < dim; ++j) {
    maxabs = std::max(maxabs, std::fabs(query[j]));
  }
  if (maxabs == 0.0f) return out;  // scale 0, all-zero codes
  out.scale = maxabs / static_cast<float>(kQueryCodeMax);
  const double inv = 1.0 / static_cast<double>(out.scale);
  for (size_t j = 0; j < dim; ++j) {
    const long c = std::lround(static_cast<double>(query[j]) * inv);
    const long clamped = std::clamp<long>(c, -kQueryCodeMax, kQueryCodeMax);
    out.codes[j] = static_cast<int16_t>(clamped);
    out.abs_code_sum += static_cast<uint64_t>(std::labs(clamped));
  }
  return out;
}

double QueryCodes::ErrorBandPerUnitScale(size_t dim) const {
  // s_v * Q bounds |exact - approx| in real arithmetic (kernels.h); the
  // 1.001 factor absorbs every floating-point rounding the two score
  // expressions and the scale divisions can contribute (those are at the
  // 2^-24 relative level, five orders of magnitude below the slack).
  const double q = static_cast<double>(scale) *
                   (0.5 * static_cast<double>(abs_code_sum) +
                    63.75 * static_cast<double>(dim));
  return q * 1.001;
}

void ScanDots(const ExecutionContext& ctx, const QueryCodes& query,
              const int8_t* codes, const float* scales, size_t dim,
              const std::vector<std::pair<uint32_t, uint32_t>>& row_ranges,
              float* out) {
  GARCIA_CHECK_EQ(query.codes.size(), dim);
  std::vector<size_t> prefix(row_ranges.size() + 1, 0);
  for (size_t r = 0; r < row_ranges.size(); ++r) {
    GARCIA_CHECK_LE(row_ranges[r].first, row_ranges[r].second);
    prefix[r + 1] = prefix[r] + (row_ranges[r].second - row_ranges[r].first);
  }
  const size_t total = prefix.back();
  if (total == 0) return;
  const int16_t* qc = query.codes.data();
  const double qscale = static_cast<double>(query.scale);
  ctx.ShardedFor(
      0, total, ctx.tuning().min_sq8_rows_per_shard,
      [&](size_t lo, size_t hi) {
        // Locate the range containing slot lo, then walk segment pieces.
        size_t seg = static_cast<size_t>(
            std::upper_bound(prefix.begin(), prefix.end(), lo) -
            prefix.begin() - 1);
        size_t slot = lo;
        while (slot < hi) {
          while (prefix[seg + 1] <= slot) ++seg;
          const size_t piece_end = std::min(hi, prefix[seg + 1]);
          size_t row = row_ranges[seg].first + (slot - prefix[seg]);
          for (; slot < piece_end; ++slot, ++row) {
            out[slot] = Sq8DotOne(qc, codes + row * dim, dim, qscale,
                                  scales[row]);
          }
        }
      });
}

}  // namespace sq8

}  // namespace kernels
}  // namespace garcia::core
