#include "core/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/macros.h"

namespace garcia::core {

namespace {

// Shard-size floors: below these a range runs inline even on a parallel
// context, keeping dispatch overhead off tiny problems. They never affect
// results (the kernels are bit-identical across backends by construction).
constexpr size_t kMinGemmRowsPerShard = 8;
constexpr size_t kMinElemsPerShard = 1 << 14;
constexpr size_t kMinRowsPerShard = 64;
constexpr size_t kMinSegmentsPerShard = 64;
// Scatter/segment kernels pay an O(R + E) index build on the parallel
// path; below this many sources the serial loop is cheaper outright.
constexpr size_t kMinScatterSources = 2048;

thread_local const ExecutionContext* tls_execution = nullptr;

}  // namespace

ExecutionContext::ExecutionContext(size_t num_threads) {
  if (num_threads >= 2) pool_ = std::make_unique<ThreadPool>(num_threads);
}

ExecutionContext::~ExecutionContext() = default;

size_t ExecutionContext::num_threads() const {
  return pool_ != nullptr ? pool_->num_threads() : 1;
}

void ExecutionContext::ShardedFor(
    size_t begin, size_t end, size_t min_shard,
    const std::function<void(size_t, size_t)>& fn) const {
  if (begin >= end) return;
  if (pool_ == nullptr) {
    fn(begin, end);
    return;
  }
  pool_->ParallelForShards(begin, end, fn, min_shard);
}

const ExecutionContext& SerialExecution() {
  static const ExecutionContext* serial = new ExecutionContext(0);
  return *serial;
}

const ExecutionContext& CurrentExecution() {
  return tls_execution != nullptr ? *tls_execution : SerialExecution();
}

ScopedExecution::ScopedExecution(const ExecutionContext* ctx)
    : prev_(tls_execution) {
  if (ctx != nullptr) tls_execution = ctx;
}

ScopedExecution::~ScopedExecution() { tls_execution = prev_; }

namespace kernels {
namespace {

// Inner GEMM kernel over a row range of C: c[i,:] += alpha * a[i,:] @ b for
// i in [i_begin, i_end). Plain loops; -O2 vectorizes the innermost loop
// well at the sizes we use.
inline void GemmRowsNN(size_t i_begin, size_t i_end, size_t n, size_t k,
                       float alpha, const float* a, size_t lda, const float* b,
                       size_t ldb, float* c, size_t ldc) {
  for (size_t i = i_begin; i < i_end; ++i) {
    for (size_t l = 0; l < k; ++l) {
      const float av = alpha * a[i * lda + l];
      if (av == 0.0f) continue;
      const float* brow = b + l * ldb;
      float* crow = c + i * ldc;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

template <typename F>
inline void ForEachElement(const ExecutionContext& ctx, size_t n, F&& f) {
  ctx.ShardedFor(0, n, kMinElemsPerShard, [&f](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) f(i);
  });
}

template <typename F>
inline void ForEachRow(const ExecutionContext& ctx, size_t rows,
                       size_t min_shard, F&& f) {
  ctx.ShardedFor(0, rows, min_shard, [&f](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) f(i);
  });
}

// Destination-major index over a scatter/segment id list: offsets[d] ..
// offsets[d+1] bound the positions of destination d in `order`, which holds
// source ids in ascending order within each destination — the serial loop's
// per-destination accumulation order.
struct DestIndex {
  std::vector<size_t> offsets;   // num_dests + 1
  std::vector<uint32_t> order;   // one entry per source
};

DestIndex BuildDestIndex(const std::vector<uint32_t>& idx, size_t num_dests) {
  DestIndex di;
  di.offsets.assign(num_dests + 1, 0);
  for (uint32_t d : idx) {
    GARCIA_CHECK_LT(d, num_dests);
    ++di.offsets[d + 1];
  }
  for (size_t d = 0; d < num_dests; ++d) di.offsets[d + 1] += di.offsets[d];
  di.order.resize(idx.size());
  std::vector<size_t> cursor(di.offsets.begin(), di.offsets.end() - 1);
  for (size_t e = 0; e < idx.size(); ++e) {
    di.order[cursor[idx[e]]++] = static_cast<uint32_t>(e);
  }
  return di;
}

inline void AddRow(float* dst, const float* src, size_t cols) {
  for (size_t j = 0; j < cols; ++j) dst[j] += src[j];
}

}  // namespace

void Gemm(const ExecutionContext& ctx, bool trans_a, bool trans_b, float alpha,
          const Matrix& a, const Matrix& b, float beta, Matrix* c) {
  const size_t m = trans_a ? a.cols() : a.rows();
  const size_t k = trans_a ? a.rows() : a.cols();
  const size_t kb = trans_b ? b.cols() : b.rows();
  const size_t n = trans_b ? b.rows() : b.cols();
  GARCIA_CHECK_EQ(k, kb) << "GEMM inner dimension mismatch";
  GARCIA_CHECK_EQ(c->rows(), m);
  GARCIA_CHECK_EQ(c->cols(), n);

  if (beta == 0.0f) {
    c->Fill(0.0f);
  } else if (beta != 1.0f) {
    c->Scale(beta);
  }
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  // Transposed operands are materialized once; the matrices in this
  // codebase are small enough (parameters and activations) that the copy is
  // cheaper than a strided kernel.
  auto transpose = [](const Matrix& x) {
    Matrix t(x.cols(), x.rows());
    for (size_t i = 0; i < x.rows(); ++i) {
      for (size_t j = 0; j < x.cols(); ++j) t.at(j, i) = x.at(i, j);
    }
    return t;
  };
  const Matrix at = trans_a ? transpose(a) : Matrix();
  const Matrix bt = trans_b ? transpose(b) : Matrix();
  const Matrix& aa = trans_a ? at : a;
  const Matrix& bb = trans_b ? bt : b;

  const float* ad = aa.data();
  const float* bd = bb.data();
  float* cd = c->data();
  const size_t lda = aa.cols(), ldb = bb.cols(), ldc = c->cols();
  ctx.ShardedFor(0, m, kMinGemmRowsPerShard,
                 [=](size_t lo, size_t hi) {
                   GemmRowsNN(lo, hi, n, k, alpha, ad, lda, bd, ldb, cd, ldc);
                 });
}

void UnaryForward(const ExecutionContext& ctx, UnaryOp op, float slope,
                  const float* x, float* y, size_t n) {
  switch (op) {
    case UnaryOp::kRelu:
      ForEachElement(ctx, n, [=](size_t i) {
        y[i] = x[i] > 0.0f ? x[i] : 0.0f;
      });
      break;
    case UnaryOp::kTanh:
      ForEachElement(ctx, n, [=](size_t i) { y[i] = std::tanh(x[i]); });
      break;
    case UnaryOp::kLeakyRelu:
      ForEachElement(ctx, n, [=](size_t i) {
        y[i] = x[i] > 0.0f ? x[i] : slope * x[i];
      });
      break;
    case UnaryOp::kSigmoid:
      ForEachElement(ctx, n, [=](size_t i) {
        const float v = x[i];
        y[i] = v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                         : std::exp(v) / (1.0f + std::exp(v));
      });
      break;
  }
}

void UnaryBackwardAdd(const ExecutionContext& ctx, UnaryOp op, float slope,
                      const float* x, const float* y, const float* dy,
                      float* dx, size_t n) {
  switch (op) {
    case UnaryOp::kRelu:
      ForEachElement(ctx, n, [=](size_t i) {
        if (x[i] > 0.0f) dx[i] += dy[i];
      });
      break;
    case UnaryOp::kTanh:
      ForEachElement(ctx, n, [=](size_t i) {
        dx[i] += dy[i] * (1.0f - y[i] * y[i]);
      });
      break;
    case UnaryOp::kLeakyRelu:
      ForEachElement(ctx, n, [=](size_t i) {
        dx[i] += dy[i] * (x[i] > 0.0f ? 1.0f : slope);
      });
      break;
    case UnaryOp::kSigmoid:
      ForEachElement(ctx, n, [=](size_t i) {
        dx[i] += dy[i] * (y[i] * (1.0f - y[i]));
      });
      break;
  }
}

void GatherRows(const ExecutionContext& ctx, const Matrix& src,
                const std::vector<uint32_t>& idx, Matrix* out) {
  GARCIA_CHECK_EQ(out->rows(), idx.size());
  GARCIA_CHECK_EQ(out->cols(), src.cols());
  const size_t cols = src.cols();
  ForEachRow(ctx, idx.size(), kMinRowsPerShard, [&](size_t i) {
    GARCIA_CHECK_LT(idx[i], src.rows());
    std::memcpy(out->row(i), src.row(idx[i]), cols * sizeof(float));
  });
}

void GatherAddRows(const ExecutionContext& ctx, const Matrix& src,
                   const std::vector<uint32_t>& idx, Matrix* out) {
  GARCIA_CHECK_EQ(out->rows(), idx.size());
  GARCIA_CHECK_EQ(out->cols(), src.cols());
  const size_t cols = src.cols();
  ForEachRow(ctx, idx.size(), kMinRowsPerShard, [&](size_t i) {
    GARCIA_CHECK_LT(idx[i], src.rows());
    AddRow(out->row(i), src.row(idx[i]), cols);
  });
}

void ScatterAddRows(const ExecutionContext& ctx, const Matrix& src,
                    const std::vector<uint32_t>& idx, Matrix* accum) {
  GARCIA_CHECK_EQ(src.rows(), idx.size());
  GARCIA_CHECK_EQ(src.cols(), accum->cols());
  const size_t cols = src.cols();
  if (!ctx.parallel() || idx.size() < kMinScatterSources) {
    for (size_t e = 0; e < idx.size(); ++e) {
      GARCIA_CHECK_LT(idx[e], accum->rows());
      AddRow(accum->row(idx[e]), src.row(e), cols);
    }
    return;
  }
  const DestIndex di = BuildDestIndex(idx, accum->rows());
  ctx.ShardedFor(0, accum->rows(), kMinSegmentsPerShard,
                 [&](size_t lo, size_t hi) {
                   for (size_t d = lo; d < hi; ++d) {
                     float* dst = accum->row(d);
                     for (size_t p = di.offsets[d]; p < di.offsets[d + 1];
                          ++p) {
                       AddRow(dst, src.row(di.order[p]), cols);
                     }
                   }
                 });
}

void SegmentSum(const ExecutionContext& ctx, const Matrix& x,
                const std::vector<uint32_t>& seg, size_t num_segments,
                Matrix* out) {
  GARCIA_CHECK_EQ(out->rows(), num_segments);
  out->Fill(0.0f);
  ScatterAddRows(ctx, x, seg, out);
}

void SegmentSoftmax(const ExecutionContext& ctx, const Matrix& scores,
                    const std::vector<uint32_t>& seg, size_t num_segments,
                    Matrix* out) {
  GARCIA_CHECK_EQ(scores.cols(), 1u);
  GARCIA_CHECK_EQ(seg.size(), scores.rows());
  GARCIA_CHECK_EQ(out->rows(), seg.size());
  GARCIA_CHECK_EQ(out->cols(), 1u);
  const size_t e_count = seg.size();
  if (!ctx.parallel() || e_count < kMinScatterSources) {
    std::vector<float> seg_max(num_segments, -1e30f);
    for (size_t e = 0; e < e_count; ++e) {
      GARCIA_CHECK_LT(seg[e], num_segments);
      seg_max[seg[e]] = std::max(seg_max[seg[e]], scores.at(e, 0));
    }
    std::vector<double> seg_sum(num_segments, 0.0);
    for (size_t e = 0; e < e_count; ++e) {
      out->at(e, 0) = std::exp(scores.at(e, 0) - seg_max[seg[e]]);
      seg_sum[seg[e]] += out->at(e, 0);
    }
    for (size_t e = 0; e < e_count; ++e) {
      out->at(e, 0) = static_cast<float>(out->at(e, 0) / seg_sum[seg[e]]);
    }
    return;
  }
  const DestIndex di = BuildDestIndex(seg, num_segments);
  ctx.ShardedFor(
      0, num_segments, kMinSegmentsPerShard, [&](size_t lo, size_t hi) {
        for (size_t s = lo; s < hi; ++s) {
          const size_t p0 = di.offsets[s], p1 = di.offsets[s + 1];
          if (p0 == p1) continue;
          float mx = -1e30f;
          for (size_t p = p0; p < p1; ++p) {
            mx = std::max(mx, scores.at(di.order[p], 0));
          }
          double sum = 0.0;
          for (size_t p = p0; p < p1; ++p) {
            const uint32_t e = di.order[p];
            out->at(e, 0) = std::exp(scores.at(e, 0) - mx);
            sum += out->at(e, 0);
          }
          for (size_t p = p0; p < p1; ++p) {
            const uint32_t e = di.order[p];
            out->at(e, 0) = static_cast<float>(out->at(e, 0) / sum);
          }
        }
      });
}

void SegmentSoftmaxBackwardAdd(const ExecutionContext& ctx,
                               const Matrix& alpha, const Matrix& dalpha,
                               const std::vector<uint32_t>& seg,
                               size_t num_segments, Matrix* dscores) {
  GARCIA_CHECK_EQ(alpha.rows(), seg.size());
  GARCIA_CHECK_EQ(dalpha.rows(), seg.size());
  GARCIA_CHECK_EQ(dscores->rows(), seg.size());
  const size_t e_count = seg.size();
  if (!ctx.parallel() || e_count < kMinScatterSources) {
    std::vector<double> seg_dot(num_segments, 0.0);
    for (size_t e = 0; e < e_count; ++e) {
      GARCIA_CHECK_LT(seg[e], num_segments);
      seg_dot[seg[e]] +=
          static_cast<double>(dalpha.at(e, 0)) * alpha.at(e, 0);
    }
    for (size_t e = 0; e < e_count; ++e) {
      dscores->at(e, 0) +=
          alpha.at(e, 0) *
          (dalpha.at(e, 0) - static_cast<float>(seg_dot[seg[e]]));
    }
    return;
  }
  const DestIndex di = BuildDestIndex(seg, num_segments);
  ctx.ShardedFor(
      0, num_segments, kMinSegmentsPerShard, [&](size_t lo, size_t hi) {
        for (size_t s = lo; s < hi; ++s) {
          const size_t p0 = di.offsets[s], p1 = di.offsets[s + 1];
          double dot = 0.0;
          for (size_t p = p0; p < p1; ++p) {
            const uint32_t e = di.order[p];
            dot += static_cast<double>(dalpha.at(e, 0)) * alpha.at(e, 0);
          }
          for (size_t p = p0; p < p1; ++p) {
            const uint32_t e = di.order[p];
            dscores->at(e, 0) +=
                alpha.at(e, 0) *
                (dalpha.at(e, 0) - static_cast<float>(dot));
          }
        }
      });
}

void ScaleRowsInPlace(const ExecutionContext& ctx, Matrix* x,
                      const Matrix& w) {
  GARCIA_CHECK_EQ(w.cols(), 1u);
  GARCIA_CHECK_EQ(w.rows(), x->rows());
  const size_t cols = x->cols();
  ForEachRow(ctx, x->rows(), kMinRowsPerShard, [&](size_t i) {
    const float wi = w.at(i, 0);
    float* r = x->row(i);
    for (size_t j = 0; j < cols; ++j) r[j] *= wi;
  });
}

void RowDotAdd(const ExecutionContext& ctx, const Matrix& a, const Matrix& b,
               Matrix* out) {
  GARCIA_CHECK_EQ(a.rows(), b.rows());
  GARCIA_CHECK_EQ(a.cols(), b.cols());
  GARCIA_CHECK_EQ(out->rows(), a.rows());
  GARCIA_CHECK_EQ(out->cols(), 1u);
  const size_t cols = a.cols();
  ForEachRow(ctx, a.rows(), kMinRowsPerShard, [&](size_t i) {
    double acc = 0.0;
    const float* ra = a.row(i);
    const float* rb = b.row(i);
    for (size_t j = 0; j < cols; ++j) {
      acc += static_cast<double>(ra[j]) * rb[j];
    }
    out->at(i, 0) += static_cast<float>(acc);
  });
}

void L2NormalizeRows(const ExecutionContext& ctx, const Matrix& x, float eps,
                     Matrix* out, std::vector<float>* norms) {
  GARCIA_CHECK_EQ(out->rows(), x.rows());
  GARCIA_CHECK_EQ(out->cols(), x.cols());
  const size_t d = x.cols();
  norms->resize(x.rows());
  ForEachRow(ctx, x.rows(), kMinRowsPerShard, [&](size_t i) {
    const float* r = x.row(i);
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) s += static_cast<double>(r[j]) * r[j];
    const float norm = static_cast<float>(std::sqrt(s));
    (*norms)[i] = std::max(norm, eps);
    const float inv = norm > eps ? 1.0f / norm : 0.0f;
    // Zero rows (norm <= eps) map to zero rows.
    float* o = out->row(i);
    for (size_t j = 0; j < d; ++j) o[j] = r[j] * inv;
  });
}

void L2NormalizeRowsBackwardAdd(const ExecutionContext& ctx, const Matrix& y,
                                const Matrix& dy,
                                const std::vector<float>& norms, float eps,
                                Matrix* dx) {
  GARCIA_CHECK_EQ(norms.size(), y.rows());
  GARCIA_CHECK_EQ(dx->rows(), y.rows());
  const size_t d = y.cols();
  ForEachRow(ctx, y.rows(), kMinRowsPerShard, [&](size_t i) {
    if (norms[i] <= eps) return;  // zero row: zero gradient
    const float* yi = y.row(i);
    const float* dyi = dy.row(i);
    double dot = 0.0;
    for (size_t j = 0; j < d; ++j) {
      dot += static_cast<double>(dyi[j]) * yi[j];
    }
    const float inv = 1.0f / norms[i];
    float* gi = dx->row(i);
    for (size_t j = 0; j < d; ++j) {
      gi[j] += (dyi[j] - static_cast<float>(dot) * yi[j]) * inv;
    }
  });
}

double CrossEntropyForward(const ExecutionContext& ctx, Matrix* logits,
                           const std::vector<uint32_t>& targets) {
  const size_t n = logits->rows(), m = logits->cols();
  GARCIA_CHECK_EQ(targets.size(), n);
  GARCIA_CHECK_GT(n, 0u);
  std::vector<double> row_loss(n);
  ForEachRow(ctx, n, /*min_shard=*/32, [&](size_t i) {
    GARCIA_CHECK_LT(targets[i], m);
    float* r = logits->row(i);
    float mx = r[0];
    for (size_t j = 1; j < m; ++j) mx = std::max(mx, r[j]);
    double sum = 0.0;
    for (size_t j = 0; j < m; ++j) {
      sum += std::exp(static_cast<double>(r[j]) - mx);
    }
    const double lse = mx + std::log(sum);
    row_loss[i] = lse - r[targets[i]];
    for (size_t j = 0; j < m; ++j) {
      r[j] = static_cast<float>(std::exp(static_cast<double>(r[j]) - lse));
    }
  });
  // The total is summed serially in row order regardless of backend so the
  // scalar loss is backend-independent.
  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) loss += row_loss[i];
  return loss;
}

void CrossEntropyBackwardAdd(const ExecutionContext& ctx,
                             const Matrix& softmax,
                             const std::vector<uint32_t>& targets, float gout,
                             Matrix* dlogits) {
  GARCIA_CHECK_EQ(dlogits->rows(), softmax.rows());
  GARCIA_CHECK_EQ(dlogits->cols(), softmax.cols());
  const size_t m = softmax.cols();
  ForEachRow(ctx, softmax.rows(), kMinRowsPerShard, [&](size_t i) {
    const float* s = softmax.row(i);
    float* gr = dlogits->row(i);
    for (size_t j = 0; j < m; ++j) gr[j] += gout * s[j];
    gr[targets[i]] -= gout;
  });
}

// ----- Top-K retrieval -----

namespace {

using ScoredId = std::pair<uint32_t, float>;

// Fixed block size for the parallel partial-heap path. Independent of the
// thread count on purpose: the result is order-invariant anyway (unique
// selection under a total order), but fixed blocks keep the work split
// reproducible and give every worker cache-sized chunks.
constexpr size_t kTopKBlockRows = 1024;

// The retrieval total order: higher score first, ties by ascending id.
inline bool RanksBefore(const ScoredId& a, const ScoredId& b) {
  if (a.second != b.second) return a.second > b.second;
  return a.first < b.first;
}

inline float DotRowDouble(const float* query, const float* row, size_t dim) {
  double dot = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    dot += static_cast<double>(query[j]) * row[j];
  }
  return static_cast<float>(dot);
}

// Bounded top-k over rows [lo, hi): a k-element heap whose top is the
// currently-worst kept candidate (std::*_heap with RanksBefore puts the
// comparator-maximal element — the one ranking LAST — on top). out is left
// sorted best-first.
void PartialTopKRows(const float* query, size_t dim, const Matrix& cands,
                     size_t lo, size_t hi, size_t k,
                     std::vector<ScoredId>* out) {
  out->clear();
  if (k == 0) return;
  for (size_t i = lo; i < hi; ++i) {
    const ScoredId cand{static_cast<uint32_t>(i),
                        DotRowDouble(query, cands.row(i), dim)};
    if (out->size() < k) {
      out->push_back(cand);
      std::push_heap(out->begin(), out->end(), RanksBefore);
    } else if (RanksBefore(cand, out->front())) {
      std::pop_heap(out->begin(), out->end(), RanksBefore);
      out->back() = cand;
      std::push_heap(out->begin(), out->end(), RanksBefore);
    }
  }
  std::sort_heap(out->begin(), out->end(), RanksBefore);
}

}  // namespace

std::vector<ScoredId> TopKDot(const ExecutionContext& ctx, const float* query,
                              size_t dim, const Matrix& candidates, size_t k) {
  const size_t n = candidates.rows();
  GARCIA_CHECK_EQ(candidates.cols(), dim);
  k = std::min(k, n);
  std::vector<ScoredId> result;
  if (k == 0) return result;
  if (!ctx.parallel() || n <= kTopKBlockRows) {
    PartialTopKRows(query, dim, candidates, 0, n, k, &result);
    return result;
  }
  const size_t num_blocks = (n + kTopKBlockRows - 1) / kTopKBlockRows;
  std::vector<std::vector<ScoredId>> partial(num_blocks);
  ctx.ShardedFor(0, num_blocks, /*min_shard=*/1, [&](size_t blo, size_t bhi) {
    for (size_t b = blo; b < bhi; ++b) {
      const size_t lo = b * kTopKBlockRows;
      PartialTopKRows(query, dim, candidates, lo,
                      std::min(n, lo + kTopKBlockRows), k, &partial[b]);
    }
  });
  // Merge the per-block winners in ascending block order. The k best of
  // the union of block top-k lists are exactly the global top-k, and the
  // total order makes that selection (and its sort) unique.
  for (const auto& block : partial) {
    result.insert(result.end(), block.begin(), block.end());
  }
  std::partial_sort(result.begin(), result.begin() + k, result.end(),
                    RanksBefore);
  result.resize(k);
  return result;
}

}  // namespace kernels
}  // namespace garcia::core
