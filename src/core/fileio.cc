#include "core/fileio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace garcia::core {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

/// write(2) loop that survives short writes and EINTR.
bool WriteAll(int fd, const char* data, size_t num_bytes) {
  size_t done = 0;
  while (done < num_bytes) {
    const ssize_t n = ::write(fd, data + done, num_bytes - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

/// fsync of the directory holding `path`, so the rename itself is durable.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("cannot open directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("cannot fsync directory", dir);
  return Status::Ok();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, const void* data,
                       size_t num_bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot create", tmp);
  if (!WriteAll(fd, static_cast<const char*>(data), num_bytes)) {
    const Status st = Errno("write failed for", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::fsync(fd) != 0) {
    const Status st = Errno("cannot fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::close(fd) != 0) {
    const Status st = Errno("cannot close", tmp);
    ::unlink(tmp.c_str());
    return st;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status st = Errno("cannot rename to", path);
    ::unlink(tmp.c_str());
    return st;
  }
  return SyncParentDir(path);
}

Result<std::string> ReadFile(const std::string& path, size_t max_bytes) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("cannot open", path);
  std::string out;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Errno("read failed for", path);
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    if (out.size() + static_cast<size_t>(n) > max_bytes) {
      ::close(fd);
      return Status::IoError(path + " exceeds the " +
                             std::to_string(max_bytes) + "-byte read cap");
    }
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace garcia::core
