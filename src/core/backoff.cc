#include "core/backoff.h"

#include <algorithm>
#include <cmath>

#include "core/rng.h"

namespace garcia::core {

uint64_t BackoffDelayMicros(const BackoffConfig& config, size_t retry,
                            Rng* rng) {
  double delay = static_cast<double>(config.initial_micros) *
                 std::pow(config.multiplier, static_cast<double>(retry));
  delay = std::min(delay, static_cast<double>(config.max_micros));
  if (config.jitter > 0.0 && rng != nullptr) {
    const double j = std::clamp(config.jitter, 0.0, 1.0);
    delay *= 1.0 - j * rng->Uniform();
  }
  return static_cast<uint64_t>(delay);
}

}  // namespace garcia::core
